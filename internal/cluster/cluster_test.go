package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func threePeers(t *testing.T) []Peer {
	t.Helper()
	return []Peer{
		{ID: "n1", URL: "http://127.0.0.1:1"},
		{ID: "n2", URL: "http://127.0.0.1:2"},
		{ID: "n3", URL: "http://127.0.0.1:3"},
	}
}

func newTestCluster(t *testing.T, self string, peers []Peer, rf int) *Cluster {
	t.Helper()
	c, err := New(Config{
		SelfID:            self,
		Peers:             peers,
		ReplicationFactor: rf,
		HealthInterval:    time.Hour, // tests poll manually
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	peers := threePeers(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty self", Config{Peers: peers}},
		{"self not in set", Config{SelfID: "nope", Peers: peers}},
		{"single peer", Config{SelfID: "n1", Peers: peers[:1]}},
		{"dup id", Config{SelfID: "n1", Peers: []Peer{peers[0], peers[0]}}},
		{"bad url", Config{SelfID: "n1", Peers: []Peer{peers[0], {ID: "nx", URL: "::::"}}}},
		{"reserved id", Config{SelfID: "a.b", Peers: []Peer{{ID: "a.b", URL: "http://h:1"}, peers[0]}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
}

// Every node must compute the identical ranking for a key — that is the
// whole coordination-free point of rendezvous hashing.
func TestRankingIdenticalAcrossPerspectives(t *testing.T) {
	peers := threePeers(t)
	a := newTestCluster(t, "n1", peers, 2)
	// Same membership, different self, different input order.
	b := newTestCluster(t, "n3", []Peer{peers[2], peers[0], peers[1]}, 2)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("%064x", i)
		ra, rb := a.RankedPeers(key), b.RankedPeers(key)
		for j := range ra {
			if ra[j].ID != rb[j].ID {
				t.Fatalf("key %s rank %d: %s vs %s", key, j, ra[j].ID, rb[j].ID)
			}
		}
	}
}

// Removing one node must only remap the keys that node owned (HRW
// minimal-disruption property).
func TestRendezvousMinimalRemap(t *testing.T) {
	peers := threePeers(t)
	full := newTestCluster(t, "n1", peers, 2)
	small := newTestCluster(t, "n1", peers[:2], 2) // n3 removed
	moved, owned3 := 0, 0
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.RankedPeers(key)[0]
		after := small.RankedPeers(key)[0]
		if before.ID == "n3" {
			owned3++
			continue
		}
		if before.ID != after.ID {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed node changed owner", moved)
	}
	if owned3 == 0 {
		t.Fatal("test vacuous: removed node owned no keys")
	}
}

func TestOwnerSkipsUnhealthy(t *testing.T) {
	c := newTestCluster(t, "n1", threePeers(t), 2)
	key := "some-digest"
	ranked := c.RankedPeers(key)
	if got := c.Owner(key); got.ID != ranked[0].ID {
		t.Fatalf("healthy owner = %s, want top-ranked %s", got.ID, ranked[0].ID)
	}
	c.setState(ranked[0].ID, StateDown)
	if got := c.Owner(key); got.ID != ranked[1].ID {
		t.Fatalf("owner with down top = %s, want %s", got.ID, ranked[1].ID)
	}
	// Degraded ranks below Up but above Down.
	c2 := newTestCluster(t, "n1", threePeers(t), 2)
	r2 := c2.RankedPeers(key)
	c2.setState(r2[0].ID, StateDegraded)
	if got := c2.Owner(key); got.ID != r2[1].ID {
		t.Fatalf("owner with degraded top = %s, want %s", got.ID, r2[1].ID)
	}
	c2.setState(r2[1].ID, StateDown)
	c2.setState(r2[2].ID, StateDown)
	if got := c2.Owner(key); got.ID != r2[0].ID {
		t.Fatalf("owner with only degraded alive = %s, want degraded %s", got.ID, r2[0].ID)
	}
}

func TestReplicaTargetsExcludeSelfAndDown(t *testing.T) {
	c := newTestCluster(t, "n1", threePeers(t), 3)
	key := "k"
	targets := c.ReplicaTargets(key)
	for _, p := range targets {
		if p.ID == "n1" {
			t.Fatal("self in replica targets")
		}
	}
	if len(targets) != 2 {
		t.Fatalf("rf=3 with 3 nodes: want 2 non-self targets, got %d", len(targets))
	}
	c.setState(targets[0].ID, StateDown)
	if got := c.ReplicaTargets(key); len(got) != 1 {
		t.Fatalf("down peer still targeted: %v", got)
	}
}

func TestHealthPollStates(t *testing.T) {
	okSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok","node_id":"n2"}`)
	}))
	defer okSrv.Close()
	degSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"degraded","node_id":"n3","degraded":"store write failed: disk full"}`)
	}))
	defer degSrv.Close()

	var changes atomic.Int64
	c := newTestCluster(t, "n1", []Peer{
		{ID: "n1", URL: "http://127.0.0.1:1"},
		{ID: "n2", URL: okSrv.URL},
		{ID: "n3", URL: degSrv.URL},
		{ID: "n4", URL: "http://127.0.0.1:9"}, // nothing listening
	}, 2)
	c.SetStateHook(func(id string, st State) { changes.Add(1) })
	c.pollAll()
	if got := c.State("n2"); got != StateUp {
		t.Fatalf("n2 state = %s", got)
	}
	if got := c.State("n3"); got != StateDegraded {
		t.Fatalf("n3 state = %s", got)
	}
	if got := c.DegradedReason("n3"); !strings.Contains(got, "disk full") {
		t.Fatalf("n3 reason = %q", got)
	}
	if got := c.State("n4"); got != StateDown {
		t.Fatalf("n4 state = %s", got)
	}
	// n3 degraded + n4 down = two transitions away from the optimistic Up.
	if changes.Load() != 2 {
		t.Fatalf("state hook fired %d times, want 2", changes.Load())
	}
	// A legacy peer answering plain "ok\n" still counts as Up.
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok\n")
	}))
	defer legacy.Close()
	c.setState("n2", StateDown)
	c.pollPeer(Peer{ID: "n2", URL: legacy.URL})
	if got := c.State("n2"); got != StateUp {
		t.Fatalf("legacy ok peer = %s", got)
	}
}

func TestReplicatePushAndStats(t *testing.T) {
	type put struct {
		key, digest string
		body        []byte
	}
	got := make(chan put, 4)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		if r.Method != http.MethodPut || !strings.HasPrefix(r.URL.Path, "/v1/replicate/") {
			http.Error(w, "unexpected "+r.Method+" "+r.URL.Path, http.StatusBadRequest)
			return
		}
		body, _ := io.ReadAll(r.Body)
		got <- put{
			key:    strings.TrimPrefix(r.URL.Path, "/v1/replicate/"),
			digest: r.Header.Get(DigestHeader),
			body:   body,
		}
		w.WriteHeader(http.StatusCreated)
	}))
	defer srv.Close()

	c, err := New(Config{
		SelfID: "n1",
		Peers: []Peer{
			{ID: "n1", URL: "http://127.0.0.1:1"},
			{ID: "n2", URL: srv.URL},
		},
		ReplicationFactor: 2,
		HealthInterval:    time.Hour,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	hooked := make(chan string, 4)
	c.SetReplicateHook(func(peer, key string, lag, dur time.Duration, err error) {
		if err == nil {
			hooked <- peer + "/" + key
		}
	})
	c.Start()
	defer c.Close()

	data := []byte("blob-bytes")
	if n := c.Replicate("t-abc", data); n != 1 {
		t.Fatalf("Replicate enqueued %d, want 1", n)
	}
	select {
	case p := <-got:
		if p.key != "t-abc" {
			t.Fatalf("key = %s", p.key)
		}
		sum := sha256.Sum256(data)
		if p.digest != hex.EncodeToString(sum[:]) {
			t.Fatalf("digest header = %s", p.digest)
		}
		if string(p.body) != string(data) {
			t.Fatalf("body = %q", p.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replication push never arrived")
	}
	select {
	case h := <-hooked:
		if h != "n2/t-abc" {
			t.Fatalf("hook = %s", h)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("replicate hook never fired")
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.ReplicationStats().Pushed < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v", c.ReplicationStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFetchBlobVerifiesDigest(t *testing.T) {
	data := []byte("real-blob")
	sum := sha256.Sum256(data)
	goodDigest := hex.EncodeToString(sum[:])

	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(DigestHeader, goodDigest)
		w.Write([]byte("corrupted!"))
	}))
	defer liar.Close()
	honest := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardHeader) == "" {
			http.Error(w, "probe missing forward header", http.StatusBadRequest)
			return
		}
		w.Header().Set(DigestHeader, goodDigest)
		w.Write(data)
	}))
	defer honest.Close()

	// Rank both remote peers; whichever ranks first, the corrupt answer
	// must be skipped and the honest one returned.
	c, err := New(Config{
		SelfID: "self",
		Peers: []Peer{
			{ID: "self", URL: "http://127.0.0.1:1"},
			{ID: "liar", URL: liar.URL},
			{ID: "honest", URL: honest.URL},
		},
		HealthInterval: time.Hour,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, from, err := c.FetchBlob(context.Background(), "some-key")
	if err != nil {
		t.Fatal(err)
	}
	if from != "honest" {
		t.Fatalf("served by %s", from)
	}
	if string(got) != string(data) {
		t.Fatalf("got %q", got)
	}
	// No peer holds the key -> ErrNotFound.
	missing := httptest.NewServer(http.NotFoundHandler())
	defer missing.Close()
	c2, _ := New(Config{
		SelfID: "self",
		Peers: []Peer{
			{ID: "self", URL: "http://127.0.0.1:1"},
			{ID: "m", URL: missing.URL},
		},
		HealthInterval: time.Hour,
	})
	if _, _, err := c2.FetchBlob(context.Background(), "nope"); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestRetrierRetriesOn503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, "done")
	}))
	defer srv.Close()
	var slept []time.Duration
	r := &Retrier{Max: 4, Base: 10 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }, Logf: t.Logf}
	resp, err := r.Do("test", func() (*http.Response, error) { return http.Get(srv.URL) })
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "done" {
		t.Fatalf("body = %q", body)
	}
	if calls.Load() != 3 || len(slept) != 2 {
		t.Fatalf("calls = %d, sleeps = %d", calls.Load(), len(slept))
	}
}

func TestRetrierBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "full", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	r := &Retrier{Max: 1, Base: time.Millisecond, Sleep: func(time.Duration) {}}
	_, err := r.Do("test", func() (*http.Response, error) { return http.Get(srv.URL) })
	if err == nil || !strings.Contains(err.Error(), "after 1 retries") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseRetryAfter(t *testing.T) {
	resp := &http.Response{Header: http.Header{}}
	if d := ParseRetryAfter(resp); d != 0 {
		t.Fatalf("absent header = %v", d)
	}
	resp.Header.Set("Retry-After", "7")
	if d := ParseRetryAfter(resp); d != 7*time.Second {
		t.Fatalf("seconds = %v", d)
	}
	resp.Header.Set("Retry-After", "garbage")
	if d := ParseRetryAfter(resp); d != 0 {
		t.Fatalf("garbage = %v", d)
	}
	resp.Header.Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
	if d := ParseRetryAfter(resp); d <= 0 || d > 31*time.Second {
		t.Fatalf("http date = %v", d)
	}
}
