// Package footprint implements the locality theory of §II-A of the paper:
// the window footprint of Definition 2, the all-window average footprint
// fp(w) (computed with the Xiang et al. HOTL formula), the conversion of
// footprint into a miss-ratio curve, and the composition of co-run miss
// probability
//
//	P(self.miss) = P(self.FP + peer.FP >= C)            (Eq 1)
//	P(self.icache.miss) = P(self.FP.inst + peer.FP.inst >= C')  (Eq 2)
//
// from which the paper derives its formal definitions of locality,
// defensiveness and politeness. Footprints are measured in symbols
// (distinct code blocks, as the paper approximates) or in bytes when
// block sizes are supplied.
package footprint

import (
	"context"

	"codelayout/internal/obs"
	"codelayout/internal/parallel"
)

// Scratch is a reusable distinct-symbol marker for window footprint
// queries. The naive analyses ask for the footprint of many overlapping
// windows; a per-call map allocation dominated that hot path, so Scratch
// keeps one epoch-stamped buffer indexed by symbol ID: marking is a
// single store, and "clearing" is an epoch bump — no allocation after
// the buffer reaches the alphabet size. The zero value is ready to use;
// a Scratch is not safe for concurrent use (give each worker its own).
type Scratch struct {
	mark  []int32
	epoch int32
}

// WindowFootprint returns the number of distinct symbols in syms[i..j]
// inclusive — the footprint fp<a,b> of Definition 2 for the window formed
// by the occurrences at positions i and j. If weights is non-nil, the
// footprint is the total weight (e.g. code bytes) of the distinct symbols.
func (sc *Scratch) WindowFootprint(syms []int32, i, j int, weights []int32) int64 {
	if i > j {
		i, j = j, i
	}
	sc.epoch++
	if sc.epoch <= 0 { // epoch wrapped: re-zero once every ~2^31 calls
		sc.epoch = 1
		for k := range sc.mark {
			sc.mark[k] = 0
		}
	}
	var total int64
	for k := i; k <= j; k++ {
		s := syms[k]
		if int(s) >= len(sc.mark) {
			sc.grow(int(s) + 1)
		}
		if sc.mark[s] == sc.epoch {
			continue
		}
		sc.mark[s] = sc.epoch
		if weights != nil {
			total += int64(weights[s])
		} else {
			total++
		}
	}
	return total
}

func (sc *Scratch) grow(n int) {
	if n < 2*len(sc.mark) {
		n = 2 * len(sc.mark)
	}
	grown := make([]int32, n)
	copy(grown, sc.mark)
	sc.mark = grown
}

// WindowFootprint is the convenience form for one-off queries; repeated
// callers should hold a Scratch and use its method to avoid the per-call
// buffer allocation.
func WindowFootprint(syms []int32, i, j int, weights []int32) int64 {
	var sc Scratch
	return sc.WindowFootprint(syms, i, j, weights)
}

// Curve is the all-window average footprint function of a trace:
// FP(w) is the average amount of code (symbols or bytes) accessed in a
// window of w consecutive occurrences, averaged over all n-w+1 windows.
type Curve struct {
	// FP[w] is the average footprint of windows of length w; FP[0] = 0
	// and FP has length n+1 for a trace of n occurrences.
	FP []float64
	// Total is the footprint of the whole trace (all distinct symbols,
	// weighted if weights were supplied).
	Total float64
	// N is the trace length.
	N int
}

// NewCurve computes the average footprint curve with the closed-form
// all-window formula of Xiang et al. (HOTL, ASPLOS'13):
//
//	fp(w) = m - (1/(n-w+1)) * [ Σ_i max(f_i - w, 0)
//	                          + Σ_i max(r_i - w, 0)
//	                          + Σ_{t > w} (t - w) * rt(t) ]
//
// where m is the total (weighted) footprint, f_i the first-access time of
// symbol i (1-based), r_i = n - last_i + 1 its reverse last-access time,
// and rt the (weighted) histogram of reuse times. The computation is
// O(n + m) after a single pass over the trace.
//
// weights may be nil for unit (symbol-count) footprints; otherwise
// weights[s] is the weight of symbol s.
//
// NewCurve uses every available core for the per-window evaluation; the
// curve is bit-identical to the serial computation (see NewCurveWorkers).
func NewCurve(syms []int32, weights []int32) *Curve {
	return NewCurveWorkers(syms, weights, 0)
}

// NewCurveCtx is NewCurveWorkers recorded as a footprint.curve span on
// ctx's obs recorder, for callers inside an instrumented pipeline.
func NewCurveCtx(ctx context.Context, syms []int32, weights []int32, workers int) *Curve {
	sp := obs.StartSpan(ctx, "footprint.curve")
	defer sp.End()
	sp.SetAttr("trace_len", int64(len(syms)))
	return NewCurveWorkers(syms, weights, workers)
}

// NewCurveWorkers is NewCurve with bounded concurrency: 0 workers means
// every available core, 1 pins the serial reference path. The single
// trace pass and the deficit sweep stay sequential (they are O(n) with
// loop-carried state); the fp(w) evaluation over the n window lengths —
// each an independent read of the shared deficit table — fans out in
// contiguous chunks. Every FP[w] slot is written by exactly one worker
// with the same float operations the serial loop performs, so the curve
// is bit-identical for any worker count.
func NewCurveWorkers(syms []int32, weights []int32, workers int) *Curve {
	n := len(syms)
	c := &Curve{FP: make([]float64, n+1), N: n}
	if n == 0 {
		return c
	}
	maxSym := int32(0)
	for _, s := range syms {
		if s > maxSym {
			maxSym = s
		}
	}
	first := make([]int, maxSym+1)
	last := make([]int, maxSym+1)
	for i := range first {
		first[i] = -1
	}
	w := func(s int32) float64 {
		if weights == nil {
			return 1
		}
		return float64(weights[s])
	}
	// rt[t] accumulates the weight of reuses with reuse time t.
	rt := make([]float64, n+1)
	var m float64
	for t, s := range syms {
		if first[s] < 0 {
			first[s] = t
			m += w(s)
		} else {
			d := t - last[s]
			rt[d] += w(s)
		}
		last[s] = t
	}
	c.Total = m
	finishCurve(c, m, maxSym, first, last, rt, w, workers)
	return c
}

// finishCurve runs the closing sweeps of the Xiang formula over the
// single-pass tables: shared by the buffered computation above and the
// streaming CurveFeeder, which accumulates the same tables chunk by
// chunk. first/last must cover [0, maxSym] (extra -1 entries are
// ignored); rt may be shorter than n+1 when no long reuse occurred.
func finishCurve(c *Curve, m float64, maxSym int32, first, last []int, rt []float64, w func(int32) float64, workers int) {
	n := c.N
	// wt[v] collects, per window-length value v in [1, n], the weight of
	// first-access times f = v, reverse-last times r = v (both 1-based),
	// and reuse times t = v. The three sums of the Xiang formula then
	// share one deficit: D(w) = Σ_{v>w} (v-w) * wt[v].
	wt := make([]float64, n+2)
	for s := int32(0); s <= maxSym; s++ {
		if first[s] < 0 {
			continue
		}
		wt[first[s]+1] += w(s) // f_i
		wt[n-last[s]] += w(s)  // r_i = n - last (last is 0-based)
	}
	for t := 1; t <= n && t < len(rt); t++ {
		wt[t] += rt[t]
	}

	// Reverse sweep using D(w) = D(w+1) + T(w) and T(w) = T(w+1) + wt[w+1].
	deficit := make([]float64, n+2)
	var tailWeight, tailDeficit float64
	for v := n; v >= 1; v-- {
		if v+1 <= n {
			tailWeight += wt[v+1]
		}
		tailDeficit += tailWeight
		deficit[v] = tailDeficit
	}

	chunks := parallel.Chunks(n, parallel.Workers(workers), 4096)
	_ = parallel.ForEach(workers, len(chunks), func(ci int) error {
		for win := chunks[ci][0] + 1; win <= chunks[ci][1]; win++ {
			windows := float64(n - win + 1)
			c.FP[win] = m - deficit[win]/windows
			if c.FP[win] < 0 {
				c.FP[win] = 0
			}
			if c.FP[win] > m {
				c.FP[win] = m
			}
		}
		return nil
	})
}

// At returns FP(w), clamping w to [0, N].
func (c *Curve) At(w int) float64 {
	if w <= 0 {
		return 0
	}
	if w >= len(c.FP) {
		return c.Total
	}
	return c.FP[w]
}

// Slope returns FP(w+1) - FP(w), the marginal footprint growth, which the
// higher-order theory identifies with the miss rate of a cache holding
// FP(w).
func (c *Curve) Slope(w int) float64 {
	return c.At(w+1) - c.At(w)
}

// MissRatioAt returns the predicted miss ratio of a fully associative LRU
// cache of the given capacity (in the curve's footprint unit). Per the
// higher-order theory, a reuse of window length t misses iff the
// footprint accessed inside the window exceeds the capacity, so the miss
// ratio is the slope of the footprint curve just below the boundary
// window where FP first exceeds the capacity. A capacity at or above the
// total footprint yields 0 (only cold misses, which the asymptotic model
// ignores).
func (c *Curve) MissRatioAt(capacity float64) float64 {
	if c.N == 0 || capacity <= 0 {
		return 1
	}
	if c.Total <= capacity {
		return 0
	}
	w := c.searchExceeds(func(w int) float64 { return c.At(w) }, capacity)
	return clamp01(c.Slope(w - 1))
}

// searchExceeds returns the smallest window w in [1, N] with
// fill(w) > capacity. The caller guarantees fill(N) > capacity.
func (c *Curve) searchExceeds(fill func(int) float64, capacity float64) int {
	lo, hi := 1, c.N
	for lo < hi {
		mid := (lo + hi) / 2
		if fill(mid) > capacity {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// CorunMissRatio predicts the miss ratio of self when sharing a cache of
// the given capacity with peer, per Eq 1/2: a reuse of self with window
// length t misses iff self.FP(t) + peer.FP(t) exceeds the cache size
// (the peer runs concurrently, so during t units of self time the peer
// touches peer.FP(t) of the shared cache). Self's miss ratio is its
// footprint slope just below the boundary window. The two curves must
// use the same footprint unit.
func CorunMissRatio(self, peer *Curve, capacity float64) float64 {
	if self.N == 0 {
		return 0
	}
	if capacity <= 0 {
		return 1
	}
	combined := func(w int) float64 { return self.At(w) + peer.At(min(w, peer.N)) }
	if combined(self.N) <= capacity {
		return 0
	}
	w := self.searchExceeds(combined, capacity)
	return clamp01(self.Slope(w - 1))
}

// SharingReport quantifies the three benefit classes of §II-A for an
// optimization that changes a program's footprint curve from base to opt
// while co-running against peer in a shared cache of size capacity.
type SharingReport struct {
	// Locality: solo miss ratio, base vs optimized (benefit class 1).
	SoloBase, SoloOpt float64
	// Defensiveness: self co-run miss ratio, base vs optimized
	// (benefit class 2).
	SelfCorunBase, SelfCorunOpt float64
	// Politeness: the peer's co-run miss ratio when running against the
	// base vs the optimized program (benefit class 3).
	PeerCorunBase, PeerCorunOpt float64
}

// Analyze computes a SharingReport for the base and optimized footprint
// curves of a program against a peer's curve.
func Analyze(base, opt, peer *Curve, capacity float64) SharingReport {
	return SharingReport{
		SoloBase:      base.MissRatioAt(capacity),
		SoloOpt:       opt.MissRatioAt(capacity),
		SelfCorunBase: CorunMissRatio(base, peer, capacity),
		SelfCorunOpt:  CorunMissRatio(opt, peer, capacity),
		PeerCorunBase: CorunMissRatio(peer, base, capacity),
		PeerCorunOpt:  CorunMissRatio(peer, opt, capacity),
	}
}

// LocalityGain returns the relative solo miss reduction (positive is
// better).
func (r SharingReport) LocalityGain() float64 { return relGain(r.SoloBase, r.SoloOpt) }

// DefensivenessGain returns the relative reduction of self's co-run miss
// ratio.
func (r SharingReport) DefensivenessGain() float64 {
	return relGain(r.SelfCorunBase, r.SelfCorunOpt)
}

// PolitenessGain returns the relative reduction of the peer's co-run miss
// ratio caused by optimizing self.
func (r SharingReport) PolitenessGain() float64 {
	return relGain(r.PeerCorunBase, r.PeerCorunOpt)
}

func relGain(base, opt float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - opt) / base
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
