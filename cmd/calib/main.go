// Command calib prints the calibration of the synthetic benchmark
// suite: every screening program's static size, dynamic size, and solo
// miss ratio on both measurement paths, plus its co-run miss ratios
// against the two probe programs. This is the tool used to keep the
// suite's bands aligned with the paper's Table I and Figure 4; see
// DESIGN.md §2 for what "calibrated" means here.
package main

import (
	"flag"
	"fmt"
	"log"

	"codelayout/internal/experiments"
	"codelayout/internal/progen"
	"codelayout/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("calib: ")
	threshold := flag.Float64("threshold", experiments.NonTrivialMiss,
		"solo miss ratio above which a program counts as non-trivial")
	flag.Parse()

	w := experiments.NewWorkspace()
	gcc, err := w.Bench(progen.ProbeGCC)
	if err != nil {
		log.Fatal(err)
	}
	gamess, err := w.Bench(progen.ProbeGamess)
	if err != nil {
		log.Fatal(err)
	}

	t := &stats.Table{Header: []string{
		"program", "static(B)", "steps", "solo(hw)", "solo(sim)", "corun gcc", "corun gamess",
	}}
	nonTrivial := 0
	for _, spec := range progen.ScreeningSuite() {
		b, err := w.Bench(spec.Name)
		if err != nil {
			log.Fatal(err)
		}
		solo, err := b.HWSolo(experiments.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := b.SimSolo(experiments.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		c1, err := experiments.HWCorunTimed(b, experiments.Baseline, gcc, experiments.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		c2, err := experiments.HWCorunTimed(b, experiments.Baseline, gamess, experiments.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		hw := solo.Counters.ICacheMissRatio()
		if hw >= *threshold {
			nonTrivial++
		}
		t.Add(spec.Name,
			fmt.Sprintf("%d", b.Prog.StaticBytes()),
			fmt.Sprintf("%d", b.Eval.Steps),
			stats.Pct(hw),
			stats.Pct(sim),
			stats.Pct(c1.Counters.ICacheMissRatio()),
			stats.Pct(c2.Counters.ICacheMissRatio()))
	}
	fmt.Print(t.String())
	fmt.Printf("\nnon-trivial programs (solo hw >= %s): %d of %d\n",
		stats.Pct(*threshold), nonTrivial, len(progen.ScreeningSuite()))
}
