package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"codelayout/internal/obs"
)

// ---- inbound traceparent adoption ----

func TestRequestTraceID(t *testing.T) {
	mk := func(h string) *http.Request {
		r, _ := http.NewRequest(http.MethodPost, "/v1/jobs", nil)
		if h != "" {
			r.Header.Set(obs.TraceparentHeader, h)
		}
		return r
	}
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := requestTraceID(mk("00-" + tid + "-00f067aa0ba902b7-01")); got != tid {
		t.Fatalf("standard traceparent not adopted: got %q", got)
	}
	// Legacy 16-hex trace IDs are accepted on read.
	if got := requestTraceID(mk("00-00f067aa0ba902b7-00f067aa0ba902b7-01")); got != "00f067aa0ba902b7" {
		t.Fatalf("legacy traceparent not adopted: got %q", got)
	}
	fresh := regexp.MustCompile(`^[0-9a-f]{32}$`)
	for _, h := range []string{"", "garbage", "00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01"} {
		if got := requestTraceID(mk(h)); !fresh.MatchString(got) || got == tid {
			t.Fatalf("header %q: want fresh 32-hex ID, got %q", h, got)
		}
	}
}

// ---- structured event log ----

func TestDebugEventsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, EventRing: 4})
	s.events.record(eventPeerDown, "n9", "poll timeout")
	s.events.record(eventSweepRepair, "n1", "repaired 2 keys")

	resp, err := http.Get(ts.URL + "/v1/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Events []clusterEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if len(v.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(v.Events))
	}
	// Newest first.
	if v.Events[0].Kind != eventSweepRepair || v.Events[1].Kind != eventPeerDown {
		t.Fatalf("event order wrong: %+v", v.Events)
	}
	if v.Events[1].Node != "n9" || v.Events[1].Detail != "poll timeout" {
		t.Fatalf("event fields wrong: %+v", v.Events[1])
	}
	if v.Events[0].Seq <= v.Events[1].Seq {
		t.Fatalf("sequence not increasing: %+v", v.Events)
	}
	// Each record also incremented layoutd_events_total{kind}.
	if got := seriesOrZero(t, ts, "layoutd_events_total",
		map[string]string{"kind": eventPeerDown}); got != 1 {
		t.Fatalf("layoutd_events_total{kind=peer_down} = %v, want 1", got)
	}
}

func TestEventRingBound(t *testing.T) {
	r := newEventRing(3)
	for i := 0; i < 10; i++ {
		r.record("k", "n", "")
	}
	evs := r.snapshot()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d, want 3", len(evs))
	}
	if evs[0].Seq != 10 || evs[2].Seq != 8 {
		t.Fatalf("wrong retained window: %+v", evs)
	}
}

// ---- runtime telemetry ----

func TestDebugRuntimeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, RuntimeSampleInterval: time.Hour})
	resp, err := http.Get(ts.URL + "/v1/debug/runtime")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		IntervalMS int64               `json:"interval_ms"`
		Samples    []obs.RuntimeSample `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.IntervalMS != time.Hour.Milliseconds() {
		t.Fatalf("interval_ms = %d", v.IntervalMS)
	}
	// Start() takes an immediate sample, so one reading exists.
	if len(v.Samples) < 1 || v.Samples[0].HeapBytes <= 0 || v.Samples[0].Goroutines <= 0 {
		t.Fatalf("no usable runtime sample: %+v", v.Samples)
	}
	// The same sampler feeds the always-on runtime gauges.
	if got := metricValue(t, ts, "layoutd_runtime_goroutines"); got <= 0 {
		t.Fatalf("layoutd_runtime_goroutines = %v, want > 0", got)
	}
	if got := metricValue(t, ts, "layoutd_runtime_heap_bytes"); got <= 0 {
		t.Fatalf("layoutd_runtime_heap_bytes = %v, want > 0", got)
	}
}

// ---- metrics federation ----

func fetchFederation(t *testing.T, url string) ([]byte, *obs.Exposition) {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster/metrics = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("federation Content-Type = %q", ct)
	}
	exp, err := obs.LintPrometheusText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("federated exposition failed lint: %v\n%s", err, raw)
	}
	return raw, exp
}

// TestSingleNodeClusterMetrics: the endpoint works without a cluster —
// one node, node label "self", lint-clean.
func TestSingleNodeClusterMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	_, exp := fetchFederation(t, ts.URL)
	if len(exp.Series) == 0 {
		t.Fatal("empty federation")
	}
	for _, sr := range exp.Series {
		if sr.Labels["node"] != "self" {
			t.Fatalf("series %s labels = %v, want node=self", sr.Name, sr.Labels)
		}
	}
}

// TestClusterMetricsFederation: scraping any node covers every live
// peer, every series carries that peer's node label, and the merged
// exposition is lint-clean (one HELP/TYPE per family, no duplicate
// series, cumulative histograms) — the satellite acceptance check.
func TestClusterMetricsFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("3-node cluster e2e")
	}
	nodes := newTestCluster3(t)
	raw, exp := fetchFederation(t, nodes[0].ts.URL)

	seen := map[string]bool{}
	for _, sr := range exp.Series {
		node := sr.Labels["node"]
		if node == "" {
			t.Fatalf("federated series %s{%v} missing node label", sr.Name, sr.Labels)
		}
		seen[node] = true
	}
	for _, n := range nodes {
		if !seen[n.id] {
			t.Fatalf("federation missing node %s; saw %v\n%s", n.id, seen, raw)
		}
	}
	// Histograms survive relabeling: per-node bucket groups exist for a
	// histogram family every node exposes.
	buckets := 0
	for _, sr := range exp.Series {
		if sr.Name == "layoutd_queue_wait_seconds_bucket" {
			buckets++
		}
	}
	if buckets == 0 {
		t.Fatal("no federated histogram buckets")
	}
	// The coverage header names all three nodes live.
	if !bytes.Contains(raw, []byte("# federation: layoutd cluster metrics, 3/3 nodes")) {
		t.Fatalf("federation header wrong:\n%s", raw[:120])
	}
}

// ---- cross-node trace assembly ----

// TestClusterTraceAssembly is the tentpole acceptance path: a job
// submitted through a NON-owner with an injected W3C traceparent ends
// up with (a) the caller's 32-hex trace ID on the owner's job, and
// (b) a merged trace document on the submit node showing the owner's
// pipeline spans AND the submit node's peer.forward span, each
// attributed to its node, on one re-based time axis.
func TestClusterTraceAssembly(t *testing.T) {
	if testing.Short() {
		t.Skip("3-node cluster e2e")
	}
	nodes := newTestCluster3(t)
	rawTrace, _ := recordedTrace(t)

	routingKey := sha256Hex(rawTrace)
	ownerID := nodes[0].cl.Owner(routingKey).ID
	var submitNode *clusterNode
	for _, n := range nodes {
		if n.id != ownerID {
			submitNode = n
			break
		}
	}

	const callerTID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost,
		submitNode.ts.URL+"/v1/jobs?prog="+testProg+"&opt=func-affinity", bytes.NewReader(rawTrace))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, "00-"+callerTID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit via non-owner = %d: %s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.ID, ownerID+".") {
		t.Fatalf("job %q not owned by %q", v.ID, ownerID)
	}
	// The owner's job adopted the caller's trace ID across the hop.
	if v.TraceID != callerTID {
		t.Fatalf("job traceId = %q, want the injected %q", v.TraceID, callerTID)
	}
	done := waitJob(t, submitNode.ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job did not complete: %+v", done)
	}

	// Fetch the trace through the submit node: assembled, not proxied.
	tresp, err := http.Get(submitNode.ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traw, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d: %s", tresp.StatusCode, traw)
	}
	if got := tresp.Header.Get(headerForwardedTo); got != ownerID {
		t.Fatalf("%s = %q, want %q", headerForwardedTo, got, ownerID)
	}
	var tv traceView
	if err := json.Unmarshal(traw, &tv); err != nil {
		t.Fatal(err)
	}
	if tv.TraceID != callerTID {
		t.Fatalf("trace doc trace_id = %q, want %q", tv.TraceID, callerTID)
	}
	wantNodes := []string{ownerID, submitNode.id}
	if wantNodes[0] > wantNodes[1] {
		wantNodes[0], wantNodes[1] = wantNodes[1], wantNodes[0]
	}
	if len(tv.Nodes) != 2 || tv.Nodes[0] != wantNodes[0] || tv.Nodes[1] != wantNodes[1] {
		t.Fatalf("trace doc nodes = %v, want %v", tv.Nodes, wantNodes)
	}
	var sawForward, sawOwnerSpan bool
	for _, sp := range tv.Spans {
		if sp.StartMS < 0 {
			t.Fatalf("span %s starts before the merged epoch: %+v", sp.Name, sp)
		}
		if sp.Name == "peer.forward" && sp.Node == submitNode.id {
			sawForward = true
		}
		if sp.Node == ownerID && sp.Name == "optimize" {
			sawOwnerSpan = true
		}
	}
	if !sawForward {
		t.Fatalf("merged trace missing the submit node's peer.forward span: %s", traw)
	}
	if !sawOwnerSpan {
		t.Fatalf("merged trace missing the owner's optimize span: %s", traw)
	}

	// The owner itself serves its own (single-node-lane) view.
	oresp, err := http.Get(nodeByID(nodes, ownerID).ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var otv traceView
	err = json.NewDecoder(oresp.Body).Decode(&otv)
	oresp.Body.Close()
	if err != nil || oresp.StatusCode != http.StatusOK {
		t.Fatalf("owner trace fetch: %d %v", oresp.StatusCode, err)
	}
	if len(otv.Nodes) != 1 || otv.Nodes[0] != ownerID {
		t.Fatalf("owner's own trace nodes = %v", otv.Nodes)
	}
}
