package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"codelayout/internal/obs"
)

// ErrNotFound is returned by FetchBlob when no reachable peer holds the
// key.
var ErrNotFound = errors.New("cluster: blob not found on any peer")

// ErrPeerDown short-circuits a replication push whose target the health
// poller has already marked down: retrying into a dead peer burns the
// backoff budget for nothing, and the anti-entropy sweeper repairs the
// key once the peer returns.
var ErrPeerDown = errors.New("cluster: peer is down")

// maxBlobBytes bounds a single replicated blob (result documents are a
// few KB; trace blobs are bounded by the server's MaxTraceBytes, well
// under this).
const maxBlobBytes = 1 << 30

// ReplicationStats is a snapshot of the write-behind replication queue.
type ReplicationStats struct {
	Pushed  int64 // blobs acknowledged by a replica
	Errors  int64 // pushes that failed after retries
	Dropped int64 // enqueues rejected because the queue was full
	Skipped int64 // pushes short-circuited because the peer was down
	Depth   int   // items currently queued
}

type replItem struct {
	key      string
	data     []byte
	peer     Peer
	enqueued time.Time
}

// replicator is the write-behind push queue: Replicate never blocks the
// request path, a single worker drains the queue so a slow replica
// backs up replication, not serving.
type replicator struct {
	c     *Cluster
	queue chan replItem

	pushed  atomic.Int64
	errs    atomic.Int64
	dropped atomic.Int64
	skipped atomic.Int64

	hook     atomic.Value // func(peer, key string, lag, dur time.Duration, err error)
	dropHook atomic.Value // func(peer, key string)
}

func newReplicator(c *Cluster, depth int) *replicator {
	return &replicator{c: c, queue: make(chan replItem, depth)}
}

// Replicate enqueues data for push to every replica target of key and
// returns how many pushes were enqueued. It never blocks: when the
// queue is full the item is dropped and counted — acceptable because a
// reader that misses a replica falls through to the owner or to
// recompute, and content addressing means a later write of the same
// key re-enqueues identical bytes.
func (c *Cluster) Replicate(key string, data []byte) int {
	r := c.repl
	n := 0
	now := time.Now()
	for _, p := range c.ReplicaTargets(key) {
		select {
		case r.queue <- replItem{key: key, data: data, peer: p, enqueued: now}:
			n++
		default:
			r.dropped.Add(1)
			c.logf("cluster: warning: replication queue full, dropping %s -> %s (anti-entropy will repair)", key, p.ID)
			if fn, ok := r.dropHook.Load().(func(string, string)); ok && fn != nil {
				fn(p.ID, key)
			}
		}
	}
	return n
}

// ReplicationStats snapshots queue counters.
func (c *Cluster) ReplicationStats() ReplicationStats {
	r := c.repl
	return ReplicationStats{
		Pushed:  r.pushed.Load(),
		Errors:  r.errs.Load(),
		Dropped: r.dropped.Load(),
		Skipped: r.skipped.Load(),
		Depth:   len(r.queue),
	}
}

// SetDropHook installs fn, called (from the enqueuing goroutine) every
// time a replication enqueue is dropped because the queue is full.
// Used to export the per-peer drop counter so anti-entropy's repair of
// those drops is observable end to end.
func (c *Cluster) SetDropHook(fn func(peer, key string)) {
	c.repl.dropHook.Store(fn)
}

// QueueDepth returns the current replication queue length.
func (c *Cluster) QueueDepth() int { return len(c.repl.queue) }

// SetReplicateHook installs fn, called after every push attempt with
// the target peer, the key, the queue lag (enqueue -> push start), the
// push duration, and the outcome. Used to export replication metrics
// and the store.replicate span timing.
func (c *Cluster) SetReplicateHook(fn func(peer, key string, lag, dur time.Duration, err error)) {
	c.repl.hook.Store(fn)
}

func (r *replicator) run() {
	defer r.c.done.Done()
	for {
		select {
		case <-r.c.stop:
			return
		case it := <-r.queue:
			r.push(it)
		}
	}
}

func (r *replicator) push(it replItem) {
	start := time.Now()
	lag := start.Sub(it.enqueued)
	var err error
	if r.c.State(it.peer.ID) == StateDown {
		// The peer went down between enqueue and drain (ReplicaTargets
		// never enqueues to a down peer): don't burn the retry budget —
		// anti-entropy repairs the key when the peer returns.
		r.skipped.Add(1)
		r.c.logf("cluster: skipping replication %s -> %s: peer is down (anti-entropy will repair)", it.key, it.peer.ID)
		err = ErrPeerDown
	} else if err = r.pushBlob(it.key, it.data, it.peer); err != nil {
		if errors.Is(err, ErrPeerDown) {
			r.skipped.Add(1)
			r.c.logf("cluster: %v", err)
		} else {
			r.errs.Add(1)
			r.c.logf("cluster: %v", err)
			r.c.ReportFailure(it.peer.ID)
		}
	} else {
		r.pushed.Add(1)
	}
	if fn, ok := r.hook.Load().(func(string, string, time.Duration, time.Duration, error)); ok && fn != nil {
		fn(it.peer.ID, it.key, lag, time.Since(start), err)
	}
}

// pushBlob PUTs one blob to one peer through the digest-authenticated
// replication endpoint, retrying transient failures — but bailing out
// between attempts if the health poller marks the peer down mid-backoff.
// Shared by the write-behind queue worker and the anti-entropy sweeper.
func (r *replicator) pushBlob(key string, data []byte, p Peer) error {
	sum := sha256.Sum256(data)
	rt := &Retrier{Max: 2, Base: 50 * time.Millisecond, Logf: r.c.logf,
		Skip: func() error {
			if r.c.State(p.ID) == StateDown {
				return ErrPeerDown
			}
			return nil
		}}
	resp, err := rt.Do("replicate "+key+" -> "+p.ID, func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPut,
			p.URL+"/v1/replicate/"+key, bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(DigestHeader, hex.EncodeToString(sum[:]))
		req.Header.Set(ForwardHeader, r.c.self.ID)
		injectTraceparent(req, "")
		return r.c.client.Do(req)
	})
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated &&
		resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("replicate %s -> %s: %s", key, p.ID, resp.Status)
	}
	return nil
}

// FetchBlob asks peers for a blob this node does not hold, trying every
// non-self peer in rendezvous rank order (replicas of the key rank
// first, but any peer that happens to hold it — e.g. the node that
// computed it — will answer too, because the probe order covers the
// whole set). The response body is verified against the peer's digest
// header before being trusted. Returns the bytes and the serving peer's
// ID.
func (c *Cluster) FetchBlob(ctx context.Context, key string) ([]byte, string, error) {
	for _, p := range c.RankedPeers(key) {
		if p.ID == c.self.ID || c.State(p.ID) == StateDown {
			continue
		}
		data, err := c.fetchFrom(ctx, p, key)
		if err != nil {
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
			continue
		}
		return data, p.ID, nil
	}
	return nil, "", ErrNotFound
}

func (c *Cluster) fetchFrom(ctx context.Context, p Peer, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/v1/store/"+key, nil)
	if err != nil {
		return nil, err
	}
	// Mark the probe so the peer serves only its local store and never
	// fans back out to the cluster (no probe amplification loops).
	req.Header.Set(ForwardHeader, c.self.ID)
	injectTraceparent(req, obs.TraceID(ctx))
	resp, err := c.client.Do(req)
	if err != nil {
		c.ReportFailure(p.ID)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("fetch %s from %s: %s", key, p.ID, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes))
	if err != nil {
		return nil, err
	}
	if want := resp.Header.Get(DigestHeader); want != "" {
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != want {
			return nil, fmt.Errorf("fetch %s from %s: digest mismatch (got %s want %s)", key, p.ID, got, want)
		}
	}
	return data, nil
}
