package search

import (
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/cachesim"
	"codelayout/internal/ir"
	"codelayout/internal/trg"
)

func TestSetOverlap(t *testing.T) {
	cases := []struct {
		sa, la, sb, lb, sets, want int
	}{
		{0, 4, 2, 4, 128, 2},   // partial overlap
		{0, 4, 8, 4, 128, 0},   // disjoint
		{0, 4, 0, 4, 128, 4},   // identical
		{126, 4, 0, 2, 128, 2}, // wrap: [126..2) vs [0..2)
		{126, 4, 3, 2, 128, 0}, // wrap, disjoint
		{0, 128, 5, 3, 128, 3}, // full-cache function
		{0, 200, 5, 300, 128, 128},
	}
	for _, c := range cases {
		if got := setOverlap(c.sa, c.la, c.sb, c.lb, c.sets); got != c.want {
			t.Errorf("setOverlap(%d,%d,%d,%d,%d) = %d, want %d",
				c.sa, c.la, c.sb, c.lb, c.sets, got, c.want)
		}
		// Symmetric.
		if got := setOverlap(c.sb, c.lb, c.sa, c.la, c.sets); got != c.want {
			t.Errorf("setOverlap not symmetric for %+v", c)
		}
	}
}

// buildConflictProg builds a program with two heavily conflicting
// functions whose sizes force same-set mapping in some orders.
func buildConflictProg(t *testing.T, funcs int, bodyBytes int32) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("conflict", 0)
	main := b.Func("main")
	m0 := main.Block("m0", 8)
	m0.Exit()
	for i := 1; i < funcs; i++ {
		f := b.Func("f")
		blk := f.Block("body", bodyBytes)
		blk.Return()
	}
	return b.MustBuild()
}

func TestImproveReducesConflictCost(t *testing.T) {
	// 9 functions of 4 KB in a 32 KB cache: one full wrap + 1. Heavy
	// conflict edges between pairs that an adversarial initial order
	// maps to the same sets.
	p := buildConflictProg(t, 9, 4096)
	g := trg.NewGraph()
	rng := rand.New(rand.NewSource(2))
	for a := int32(1); a < 9; a++ {
		for x := a + 1; x < 9; x++ {
			g.AddWeight(a, x, int64(rng.Intn(100)))
		}
	}
	cost := ConflictCost(p, g, cachesim.L1IDefault)
	initial := make([]ir.FuncID, p.NumFuncs())
	for i := range initial {
		initial[i] = ir.FuncID(i)
	}
	res := Improve(initial, cost, Options{Seed: 7, Iterations: 1500, Restarts: 1})
	if res.FinalCost > res.InitialCost {
		t.Errorf("search worsened cost: %v -> %v", res.InitialCost, res.FinalCost)
	}
	if res.Evaluations < 100 {
		t.Errorf("suspiciously few evaluations: %d", res.Evaluations)
	}
	// Result is a permutation of the input.
	seen := make(map[ir.FuncID]bool)
	for _, f := range res.Order {
		if seen[f] {
			t.Fatalf("duplicate %d in order", f)
		}
		seen[f] = true
	}
	if len(res.Order) != len(initial) {
		t.Fatalf("order length %d, want %d", len(res.Order), len(initial))
	}
}

func TestImproveDeterministic(t *testing.T) {
	p := buildConflictProg(t, 6, 2048)
	g := trg.NewGraph()
	g.AddWeight(1, 2, 50)
	g.AddWeight(3, 4, 40)
	g.AddWeight(1, 5, 30)
	cost := ConflictCost(p, g, cachesim.L1IDefault)
	initial := []ir.FuncID{0, 1, 2, 3, 4, 5}
	a := Improve(initial, cost, Options{Seed: 3})
	b := Improve(initial, cost, Options{Seed: 3})
	if !reflect.DeepEqual(a.Order, b.Order) || a.FinalCost != b.FinalCost {
		t.Error("search not deterministic for the same seed")
	}
}

func TestImproveFindsZeroConflictWhenPossible(t *testing.T) {
	// Two 4 KB functions that conflict heavily, plus filler: a 32 KB
	// cache fits everything without overlap, so the optimum is 0.
	p := buildConflictProg(t, 5, 4096)
	g := trg.NewGraph()
	g.AddWeight(1, 2, 1000)
	cost := ConflictCost(p, g, cachesim.L1IDefault)
	// Adversarial initial order is irrelevant: total size 16KB+ < 32 KB
	// means any layout without wraparound has zero overlap; verify cost
	// is already 0 and search keeps it.
	initial := []ir.FuncID{0, 1, 2, 3, 4}
	res := Improve(initial, cost, Options{Seed: 1, Iterations: 200})
	if res.FinalCost != 0 {
		t.Errorf("FinalCost = %v, want 0 (everything fits)", res.FinalCost)
	}
}

func TestImproveSingleFunction(t *testing.T) {
	p := buildConflictProg(t, 1, 64)
	g := trg.NewGraph()
	cost := ConflictCost(p, g, cachesim.L1IDefault)
	res := Improve([]ir.FuncID{0}, cost, Options{Seed: 1})
	if len(res.Order) != 1 || res.FinalCost != 0 {
		t.Errorf("degenerate search wrong: %+v", res)
	}
}
