# Mirrors .github/workflows/ci.yml: `make ci` runs what CI runs.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench bench-smoke smoke-serve ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run (slow: regenerates every table and figure).
bench:
	$(GO) test -run='^$$' -bench=. ./...

# One iteration of every benchmark — catches bit-rot cheaply.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# End-to-end service smoke: start layoutd, submit a recorded trace via
# layoutctl, assert a completed result and a cache hit on resubmission,
# then drain with SIGTERM.
smoke-serve:
	sh scripts/smoke_serve.sh

ci: build vet fmt-check test race bench-smoke smoke-serve
