package schedule

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randMatrix builds a symmetric zero-diagonal cost matrix with
// non-negative entries — the shape of a real interference matrix.
func randMatrix(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64() * 1000
			m[i][j] = v
			m[j][i] = v
		}
	}
	return m
}

// TestSolveMatchesBruteForceOracle: for every small fleet shape, the
// solver's placement cost must equal the exhaustive optimum — the
// acceptance criterion of the scheduling service.
func TestSolveMatchesBruteForceOracle(t *testing.T) {
	topos := []Topology{
		{Domains: 1, SlotsPerDomain: 2},
		{Domains: 2, SlotsPerDomain: 2},
		{Domains: 3, SlotsPerDomain: 2},
		{Domains: 2, SlotsPerDomain: 3},
		{Domains: 4, SlotsPerDomain: 2},
		{Domains: 6, SlotsPerDomain: 1},
		{Domains: 2, SlotsPerDomain: 4},
	}
	rng := rand.New(rand.NewSource(42))
	for _, topo := range topos {
		for n := 0; n <= 6 && n <= topo.Capacity(); n++ {
			for trial := 0; trial < 20; trial++ {
				m := randMatrix(rng, n)
				got, err := Solve(context.Background(), m, topo)
				if err != nil {
					t.Fatalf("Solve(n=%d, %+v): %v", n, topo, err)
				}
				want := BruteForce(m, topo)
				if math.Abs(got.Cost-want.Cost) > 1e-9 {
					t.Fatalf("n=%d topo=%+v trial=%d: Solve cost %v != oracle %v\nplacement %v vs %v",
						n, topo, trial, got.Cost, want.Cost, got.Domains, want.Domains)
				}
				if !got.Exact {
					t.Fatalf("n=%d topo=%+v: small instance not solved exactly", n, topo)
				}
				assertValidPlacement(t, got, n, topo)
				if c := Cost(m, got.Domains); math.Abs(c-got.Cost) > 1e-9 {
					t.Fatalf("reported cost %v != recomputed %v", got.Cost, c)
				}
			}
		}
	}
}

func assertValidPlacement(t *testing.T, p Placement, n int, topo Topology) {
	t.Helper()
	if len(p.Domains) != topo.Domains {
		t.Fatalf("placement has %d domains, want %d", len(p.Domains), topo.Domains)
	}
	seen := make(map[int]bool)
	for d, members := range p.Domains {
		if len(members) > topo.SlotsPerDomain {
			t.Fatalf("domain %d over capacity: %v", d, members)
		}
		for _, i := range members {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("bad or duplicate program %d in %v", i, p.Domains)
			}
			seen[i] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("placement covers %d of %d programs: %v", len(seen), n, p.Domains)
	}
}

// TestSolveDeterministic: identical inputs give identical placements,
// byte for byte — the serving layer memoizes on that.
func TestSolveDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(rng, 12)
	topo := Topology{Domains: 6, SlotsPerDomain: 2}
	first, err := Solve(context.Background(), m, topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Solve(context.Background(), m, topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged: %+v vs %+v", i, first, again)
		}
	}
}

// TestHeuristicNeverWorseThanWorst: on instances past the enumeration
// budget, the heuristic must still produce a valid placement, and on
// budget-sized ones it must beat (or tie) the exhaustive worst case.
func TestHeuristicBeatsWorstCase(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	topo := Topology{Domains: 5, SlotsPerDomain: 2}
	m := randMatrix(rng, 10)
	p, err := Solve(context.Background(), m, topo)
	if err != nil {
		t.Fatal(err)
	}
	worst, ok := Worst(m, topo)
	if !ok {
		t.Fatal("Worst should enumerate a 10-program fleet")
	}
	if p.Cost > worst.Cost {
		t.Fatalf("solver cost %v exceeds the worst case %v", p.Cost, worst.Cost)
	}
	best := BruteForce(m, topo)
	if math.Abs(p.Cost-best.Cost) > 1e-9 {
		t.Fatalf("10-program fleet should still be exact: %v vs %v", p.Cost, best.Cost)
	}
	if worst.Cost < best.Cost {
		t.Fatalf("worst %v below best %v", worst.Cost, best.Cost)
	}
}

// TestLargeFleetFallsBackToHeuristic: a fleet past the node budget uses
// the heuristic path, stays valid, deterministic, and no worse than the
// trivial in-order placement.
func TestLargeFleetFallsBackToHeuristic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 32
	m := randMatrix(rng, n)
	topo := Topology{Domains: 16, SlotsPerDomain: 2}
	p, err := Solve(context.Background(), m, topo)
	if err != nil {
		t.Fatal(err)
	}
	if p.Exact {
		t.Fatal("32-program fleet should exceed the enumeration budget")
	}
	assertValidPlacement(t, p, n, topo)
	// In-order pairing (0,1), (2,3), ... is the placement a scheduler
	// that ignores interference would produce.
	naive := make([][]int, topo.Domains)
	for i := 0; i < n; i++ {
		naive[i/2] = append(naive[i/2], i)
	}
	if p.Cost > Cost(m, naive) {
		t.Fatalf("heuristic cost %v worse than naive in-order pairing %v", p.Cost, Cost(m, naive))
	}
	again, err := Solve(context.Background(), m, topo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, again) {
		t.Fatal("heuristic placement not deterministic")
	}
}

func TestSolveCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 40)
	topo := Topology{Domains: 20, SlotsPerDomain: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, m, topo); err == nil {
		t.Fatal("canceled context should surface an error")
	}
}

func TestValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Solve(ctx, randMatrix(rand.New(rand.NewSource(1)), 4), Topology{Domains: 1, SlotsPerDomain: 2}); err == nil {
		t.Fatal("over-capacity fleet should be rejected")
	}
	if _, err := Solve(ctx, randMatrix(rand.New(rand.NewSource(1)), 2), Topology{}); err == nil {
		t.Fatal("zero topology should be rejected")
	}
	asym := [][]float64{{0, 1}, {2, 0}}
	if _, err := Solve(ctx, asym, Topology{Domains: 1, SlotsPerDomain: 2}); err == nil {
		t.Fatal("asymmetric matrix should be rejected")
	}
	diag := [][]float64{{1, 0}, {0, 0}}
	if _, err := Solve(ctx, diag, Topology{Domains: 1, SlotsPerDomain: 2}); err == nil {
		t.Fatal("non-zero diagonal should be rejected")
	}
	nan := [][]float64{{0, math.NaN()}, {math.NaN(), 0}}
	if _, err := Solve(ctx, nan, Topology{Domains: 1, SlotsPerDomain: 2}); err == nil {
		t.Fatal("NaN matrix should be rejected")
	}
	ragged := [][]float64{{0, 1}, {1}}
	if _, err := Solve(ctx, ragged, Topology{Domains: 1, SlotsPerDomain: 2}); err == nil {
		t.Fatal("ragged matrix should be rejected")
	}
}

// TestSpreadWhenRoomAllows: with more domains than programs, zero-cost
// isolation is always optimal — everyone gets their own cache.
func TestSpreadWhenRoomAllows(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randMatrix(rng, 4)
	p, err := Solve(context.Background(), m, Topology{Domains: 4, SlotsPerDomain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != 0 {
		t.Fatalf("4 programs over 4 domains should cost 0, got %v (%v)", p.Cost, p.Domains)
	}
}

// BenchmarkScheduleSolve exercises the heuristic path on a 32-program
// fleet — the CI gate holds its allocations to a small constant so the
// solver cannot regress into per-pair allocation.
func BenchmarkScheduleSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	m := randMatrix(rng, 32)
	topo := Topology{Domains: 16, SlotsPerDomain: 2}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ctx, m, topo); err != nil {
			b.Fatal(err)
		}
	}
}
