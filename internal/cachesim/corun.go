package cachesim

import (
	"context"

	"codelayout/internal/layout"
	"codelayout/internal/obs"
	"codelayout/internal/parallel"
)

// This file implements the paper's Pin-style instruction cache
// simulation: address streams replayed through a plain LRU cache, with
// co-run modeled by interleaving the two hyper-threads' fetch streams.
// No timing, no prefetching — exactly the idealized "simulated" numbers
// of Table II.

// SoloResult summarizes one solo simulation.
type SoloResult struct {
	Stats Stats
	// Blocks is the number of block occurrences replayed.
	Blocks int64
}

// soloBatchBlocks is the number of block occurrences SimulateSolo
// resolves per AppendLines batch: large enough to amortize the batching
// away, small enough that the line buffer stays cache-resident.
const soloBatchBlocks = 1024

// SimulateSolo replays one program's fetch stream through a private
// instruction cache. The stream is resolved in batches of pre-computed
// line sequences (Replayer.AppendLines), so the simulation loop is a
// plain slice walk — no per-access closure dispatch.
func SimulateSolo(cfg Config, r *layout.Replayer) SoloResult {
	c := New(cfg)
	var res SoloResult
	buf := make([]int64, 0, 4*soloBatchBlocks)
	for {
		lines, blocks := r.AppendLines(buf[:0], soloBatchBlocks)
		if blocks == 0 {
			return res
		}
		buf = lines[:0]
		for _, ln := range lines {
			c.Access(ln, &res.Stats)
		}
		res.Blocks += int64(blocks)
	}
}

// SimulateSoloCtx is SimulateSolo recorded as a cachesim.replay span on
// ctx's obs recorder, for callers inside an instrumented pipeline.
func SimulateSoloCtx(ctx context.Context, cfg Config, r *layout.Replayer) SoloResult {
	sp := obs.StartSpan(ctx, "cachesim.replay")
	defer sp.End()
	res := SimulateSolo(cfg, r)
	sp.SetAttr("blocks", res.Blocks)
	return res
}

// PeerLineOffset separates the two co-run processes' address spaces: the
// peer's lines are shifted by the equivalent of 4 GB so that identical
// binaries do not share cache lines (two processes never share code
// pages in the physically indexed cache). The offset is a multiple of
// every power-of-two set count, so set mapping within each program is
// unchanged.
const PeerLineOffset int64 = 1 << 26

// CorunResult summarizes a shared-cache co-run simulation of two
// threads.
type CorunResult struct {
	// PerThread holds each thread's demand statistics against the
	// shared cache.
	PerThread [2]Stats
	// Blocks counts block occurrences replayed per thread.
	Blocks [2]int64
	// PeerLaps is how many times the wrapping peer (thread 1) restarted
	// its trace before the primary (thread 0) finished.
	PeerLaps int
}

// SimulateCorun interleaves the two replayers' fetch streams through one
// shared instruction cache, one block occurrence per thread per turn
// (SMT round-robin fetch at block granularity). The simulation ends when
// the primary replayer (index 0) exhausts its trace; the peer is
// expected to be wrapping so it keeps producing interference throughout.
func SimulateCorun(cfg Config, primary, peer *layout.Replayer) CorunResult {
	c := New(cfg)
	var res CorunResult
	// One block per thread per turn preserves the SMT interleaving
	// exactly, but each turn's lines still come pre-resolved from the
	// replay plan instead of a per-line closure.
	var pbuf, qbuf []int64
	for {
		lines, blocks := primary.AppendLines(pbuf[:0], 1)
		if blocks == 0 {
			break
		}
		pbuf = lines[:0]
		for _, ln := range lines {
			c.Access(ln, &res.PerThread[0])
		}
		res.Blocks[0]++
		lines, blocks = peer.AppendLines(qbuf[:0], 1)
		qbuf = lines[:0]
		for _, ln := range lines {
			c.Access(ln+PeerLineOffset, &res.PerThread[1])
		}
		if blocks > 0 {
			res.Blocks[1]++
		}
	}
	res.PeerLaps = peer.Laps()
	return res
}

// CorunJob is one independent co-run simulation: a primary replayer run
// to completion against a wrapping peer. Replayers are stateful, so each
// job must hold its own pair.
type CorunJob struct {
	Primary, Peer *layout.Replayer
}

// SimulateCorunBatch runs independent co-run simulations concurrently
// and returns their results in job order. Each simulation owns its cache
// and replayers, so results are identical to running the jobs one by one
// (workers = 1 pins that serial reference path; 0 means every available
// core).
func SimulateCorunBatch(cfg Config, jobs []CorunJob, workers int) []CorunResult {
	out, _ := parallel.Map(workers, len(jobs), func(i int) (CorunResult, error) {
		return SimulateCorun(cfg, jobs[i].Primary, jobs[i].Peer), nil
	})
	return out
}
