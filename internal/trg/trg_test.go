package trg

import (
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/trace"
)

// TestFigure2Reduction reproduces the reduction walk-through of the
// paper's Figure 2 with 3 code slots. The narrated steps are:
//
//  1. E<A,B> is reduced: A takes slot 1, B takes slot 2.
//  2. E<E,F> is reduced: E takes slot 3 (empty); F conflicts least with
//     slot 1's node A, joins it, and F's edges to the other slot nodes
//     (E<B,F>) are removed.
//  3. C conflicts least with slot 3's node E and is combined with it.
//
// Output sequence: A B E F C (round-robin over the slot lists).
//
// The figure's edge labels are partly illegible in the source; the
// weights below are reconstructed so that every narrated step follows
// from the algorithm (heaviest-edge order A-B, E-F, then a C edge; F's
// minimum conflict is A; C's minimum conflict is E).
func TestFigure2Reduction(t *testing.T) {
	const (
		A int32 = 0
		B int32 = 1
		C int32 = 2
		E int32 = 3
		F int32 = 4
	)
	g := NewGraph()
	// Register nodes in the figure's display order for deterministic
	// isolated-node handling (all nodes gain edges here anyway).
	for _, n := range []int32{A, B, C, E, F} {
		g.AddNode(n)
	}
	g.AddWeight(A, B, 50)
	g.AddWeight(E, F, 45)
	g.AddWeight(C, B, 40)
	g.AddWeight(C, A, 30)
	g.AddWeight(B, F, 20)
	g.AddWeight(C, E, 15)
	g.AddWeight(A, F, 10)

	got := Reduce(g, 3)
	want := []int32{A, B, E, F, C}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Reduce = %v, want %v (A B E F C)", got, want)
	}
}

func TestBuildDefinitionExample(t *testing.T) {
	// Trace: A B A. A's two successive occurrences interleave one B, so
	// edge (A,B) gains weight 1 from A's reuse. B has no reuse.
	g := Build(trace.New([]int32{0, 1, 0}), 0)
	if w := g.Weight(0, 1); w != 1 {
		t.Errorf("Weight(A,B) = %d, want 1", w)
	}
	// Trace: A B A B A — A reuses twice (each over one B), B once.
	g = Build(trace.New([]int32{0, 1, 0, 1, 0}), 0)
	if w := g.Weight(0, 1); w != 3 {
		t.Errorf("Weight(A,B) = %d, want 3 (two A reuses + one B reuse)", w)
	}
}

func TestBuildCountsBothDirections(t *testing.T) {
	// A X A ... X A X: conflicts between A and X accumulate from both
	// endpoints' reuses.
	g := Build(trace.New([]int32{0, 7, 0, 7}), 0)
	// A reuse over X: +1; X reuse over A: +1.
	if w := g.Weight(0, 7); w != 2 {
		t.Errorf("Weight = %d, want 2", w)
	}
}

func TestBuildNoSelfEdgesAndTrims(t *testing.T) {
	g := Build(trace.New([]int32{3, 3, 3, 3}), 0)
	if g.NumEdges() != 0 {
		t.Errorf("self-only trace produced %d edges", g.NumEdges())
	}
	if len(g.Nodes()) != 1 {
		t.Errorf("nodes = %v, want [3]", g.Nodes())
	}
}

func TestBuildWindowBound(t *testing.T) {
	// A ... 5 distinct blocks ... A: with an unbounded window the reuse
	// of A counts 5 conflicts; with a window of 4 blocks it counts none
	// because A's previous occurrence falls outside.
	syms := []int32{0, 1, 2, 3, 4, 5, 0}
	unbounded := Build(trace.New(syms), 0)
	if w := unbounded.Weight(0, 5); w != 1 {
		t.Errorf("unbounded Weight(0,5) = %d, want 1", w)
	}
	bounded := Build(trace.New(syms), 4)
	total := int64(0)
	for _, x := range []int32{1, 2, 3, 4, 5} {
		total += bounded.Weight(0, x)
	}
	if total != 0 {
		t.Errorf("bounded window still counted %d conflicts for A", total)
	}
	// Blocks 1..5 never reuse, so they contribute nothing either way.
	if bounded.NumEdges() != 0 {
		t.Errorf("bounded graph has %d edges, want 0", bounded.NumEdges())
	}
}

func TestReduceOutputsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	syms := make([]int32, 3000)
	for i := range syms {
		syms[i] = int32(rng.Intn(40))
	}
	tr := trace.New(syms)
	g := Build(tr, 16)
	for _, k := range []int{1, 3, 8, 64} {
		seq := Reduce(g, k)
		seen := make(map[int32]bool)
		for _, s := range seq {
			if seen[s] {
				t.Fatalf("k=%d: duplicate %d in sequence", k, s)
			}
			seen[s] = true
		}
		if len(seq) != len(g.Nodes()) {
			t.Fatalf("k=%d: sequence has %d blocks, want %d", k, len(seq), len(g.Nodes()))
		}
	}
}

func TestReduceIsolatedNodesAppended(t *testing.T) {
	g := NewGraph()
	g.AddNode(9)
	g.AddNode(8)
	g.AddWeight(1, 2, 5)
	seq := Reduce(g, 2)
	if len(seq) != 4 {
		t.Fatalf("sequence = %v, want 4 nodes", seq)
	}
	// Isolated nodes 9, 8 come last, in registration order.
	if seq[2] != 9 || seq[3] != 8 {
		t.Errorf("isolated tail = %v, want [... 9 8]", seq[2:])
	}
}

func TestReduceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	syms := make([]int32, 2000)
	for i := range syms {
		syms[i] = int32(rng.Intn(30))
	}
	g1 := Build(trace.New(syms), 12)
	g2 := Build(trace.New(syms), 12)
	a := Reduce(g1, 8)
	b := Reduce(g2, 8)
	if !reflect.DeepEqual(a, b) {
		t.Error("Reduce not deterministic")
	}
}

func TestReduceSeparatesHeaviestConflict(t *testing.T) {
	// The heaviest edge's endpoints must land in different slots (they
	// are the worst conflict pair).
	g := NewGraph()
	g.AddWeight(1, 2, 100)
	g.AddWeight(1, 3, 1)
	g.AddWeight(2, 3, 1)
	seq := Reduce(g, 3)
	// With 3 slots and 3 nodes, each node gets its own slot, so the
	// first sweep emits one per slot: 1 then 2 then 3.
	if !reflect.DeepEqual(seq, []int32{1, 2, 3}) {
		t.Errorf("sequence = %v, want [1 2 3]", seq)
	}
}

func TestParams(t *testing.T) {
	p := DefaultParams(256)
	// 2C = 64 KB, A*B = 256 → 256 sets; a 256-byte block covers 1 set →
	// 256 slots.
	if got := p.Slots(); got != 256 {
		t.Errorf("Slots = %d, want 256", got)
	}
	// Window: 64 KB / 256 B = 256 blocks.
	if got := p.WindowBlocks(); got != 256 {
		t.Errorf("WindowBlocks = %d, want 256", got)
	}
	// Bigger uniform blocks reduce the slot count.
	p = DefaultParams(512)
	if got := p.Slots(); got != 128 {
		t.Errorf("Slots(512B) = %d, want 128", got)
	}
	// WindowScale=1 uses the actual cache size.
	p = Params{CacheBytes: 32 << 10, Assoc: 4, LineBytes: 64, BlockBytes: 256, WindowScale: 1}
	if got := p.WindowBlocks(); got != 128 {
		t.Errorf("WindowBlocks(scale 1) = %d, want 128", got)
	}
}

func TestSequencePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]int32, 4000)
	for i := range syms {
		syms[i] = int32(rng.Intn(50))
	}
	seq := Sequence(trace.New(syms), DefaultParams(512))
	if len(seq) != 50 {
		t.Errorf("Sequence covers %d blocks, want 50", len(seq))
	}
}

func TestEdgesSorted(t *testing.T) {
	g := NewGraph()
	g.AddWeight(1, 2, 5)
	g.AddWeight(3, 4, 50)
	g.AddWeight(1, 4, 5)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("Edges = %v", edges)
	}
	if edges[0].Weight != 50 {
		t.Errorf("heaviest edge first: got %v", edges[0])
	}
	// Equal weights tie-break by node IDs.
	if edges[1].A != 1 || edges[1].B != 2 {
		t.Errorf("tie-break: got %+v", edges[1])
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int32, 200000)
	for i := range syms {
		phase := (i / 8000) % 6
		syms[i] = int32(phase*30 + rng.Intn(30))
	}
	tr := trace.New(syms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(tr, 128)
	}
}

func BenchmarkReduce(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	syms := make([]int32, 100000)
	for i := range syms {
		syms[i] = int32(rng.Intn(300))
	}
	g := Build(trace.New(syms), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reduce(g, 128)
	}
}
