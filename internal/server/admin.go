package server

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Store admin endpoints: the node-local primitives cluster replication
// is built on, useful standalone for ops. They never forward — each
// node answers for its own disk.
//
//	GET    /v1/store           list held blobs (key, kind, size, last access)
//	                           ?kind= filters; ?format=keys emits the
//	                           compact one-key-per-line text census the
//	                           anti-entropy digest-set exchange consumes
//	GET    /v1/store/{key}     raw blob bytes, digest header attached
//	DELETE /v1/store/{key}     evict a blob (disk and memory tiers)
//	PUT    /v1/replicate/{key} accept a replicated blob, digest-checked

// storeEntryView is one row of GET /v1/store.
type storeEntryView struct {
	Key        string `json:"key"`
	Kind       string `json:"kind"`
	Size       int64  `json:"size"`
	LastAccess string `json:"last_access"`
}

// handleStoreList is GET /v1/store: every blob the durable tier holds,
// most recently used first. ?kind= restricts to one key kind
// (result/trace/pair/schedule); ?format=keys switches to a plain-text
// one-key-per-line listing — the compact census the anti-entropy
// sweeper exchanges every period, cheap enough to serve per-peer
// per-sweep without JSON encoding the metadata nobody asked for.
func (s *Server) handleStoreList(w http.ResponseWriter, r *http.Request) {
	if s.disk == nil {
		httpError(w, http.StatusNotFound, errors.New("no durable store configured (-store)"))
		return
	}
	kindFilter := r.URL.Query().Get("kind")
	switch kindFilter {
	case "", kindResult, kindTrace, kindPair, kindSchedule, "unknown":
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown kind %q", kindFilter))
		return
	}
	ents := s.disk.Entries()
	if r.URL.Query().Get("format") == "keys" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range ents {
			if kindFilter != "" {
				kind, ok := storeKeyKind(e.Key)
				if !ok {
					kind = "unknown"
				}
				if kind != kindFilter {
					continue
				}
			}
			fmt.Fprintln(w, e.Key)
		}
		return
	}
	views := make([]storeEntryView, 0, len(ents))
	var total int64
	for _, e := range ents {
		kind, ok := storeKeyKind(e.Key)
		if !ok {
			kind = "unknown"
		}
		if kindFilter != "" && kind != kindFilter {
			continue
		}
		views = append(views, storeEntryView{
			Key:        e.Key,
			Kind:       kind,
			Size:       e.Size,
			LastAccess: e.LastAccess.UTC().Format(time.RFC3339),
		})
		total += e.Size
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"entries": views,
		"count":   len(views),
		"bytes":   total,
	})
}

// handleStoreGet is GET /v1/store/{key}: the raw blob bytes, with the
// payload's SHA-256 in the digest header so a fetching peer can verify
// what it received. Peers use this as the read side of replication
// fall-through.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if _, ok := storeKeyKind(key); !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed store key %q", key))
		return
	}
	if s.disk == nil {
		httpError(w, http.StatusNotFound, errors.New("no durable store configured (-store)"))
		return
	}
	data, ok := s.disk.Get(key)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no blob %q", key))
		return
	}
	sum := sha256.Sum256(data)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(headerDigest, hex.EncodeToString(sum[:]))
	w.Write(data)
}

// handleStoreDelete is DELETE /v1/store/{key}: drop a blob from the
// disk tier and purge the corresponding memory tier so the next read
// cannot resurrect it locally. Safe under content addressing: deleting
// a key never loses information another key depends on, and a re-put of
// the same key carries identical bytes.
func (s *Server) handleStoreDelete(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	kind, ok := storeKeyKind(key)
	if !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed store key %q", key))
		return
	}
	if s.disk == nil {
		httpError(w, http.StatusNotFound, errors.New("no durable store configured (-store)"))
		return
	}
	deleted := s.disk.Delete(key)
	switch kind {
	case kindResult:
		s.cache.drop(key)
	case kindTrace:
		s.traces.drop(key[2:])
	case kindPair:
		s.pairs.drop(key[2:])
	case kindSchedule:
		s.schedules.drop(key[2:])
	}
	if !deleted {
		httpError(w, http.StatusNotFound, fmt.Errorf("no blob %q", key))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": key})
}

// handleReplicate is PUT /v1/replicate/{key}: accept a blob pushed by a
// peer's write-behind replication queue. The request is authenticated
// by content: the digest header must equal the SHA-256 of the body, so
// a corrupted or forged push is rejected without trusting the sender.
// The write is flushed before the ack — a 201 means the replica is
// durable, which is what lets the owner die without losing the blob.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if _, ok := storeKeyKind(key); !ok {
		httpError(w, http.StatusBadRequest, fmt.Errorf("malformed store key %q", key))
		return
	}
	if s.disk == nil {
		httpError(w, http.StatusServiceUnavailable, errors.New("no durable store configured (-store); cannot hold replicas"))
		return
	}
	want := r.Header.Get(headerDigest)
	if want == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing %s header", headerDigest))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes))
	if err != nil {
		httpError(w, badBodyStatus(err), err)
		return
	}
	sum := sha256.Sum256(body)
	if got := hex.EncodeToString(sum[:]); got != want {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("body digest %s does not match %s header %s", got, headerDigest, want))
		return
	}
	s.disk.Put(key, body)
	s.disk.Flush()
	if s.metrics.replicateReceived != nil {
		s.metrics.replicateReceived.Inc()
	}
	writeJSON(w, http.StatusCreated, map[string]string{"replicated": key})
}
