package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"syscall"
	"testing"
	"time"

	"codelayout/internal/fault"
	"codelayout/internal/store"
)

func openTestStore(t *testing.T, cfg store.Config) *store.Store {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	st, err := store.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// healthz returns the status field of the /healthz JSON body.
func healthz(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.Status
}

// TestResultSurvivesRestart is the in-process kill/restart acceptance
// path: a completed layout is written durably, the daemon "crashes"
// (the first server is abandoned without a graceful drain), and a new
// server over the same store directory serves the identical result
// from disk — cache-hit metric and byte-identical report sequence
// included.
func TestResultSurvivesRestart(t *testing.T) {
	raw, _ := recordedTrace(t)
	dir := t.TempDir()

	st1 := openTestStore(t, store.Config{Dir: dir})
	_, ts1 := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, Store: st1})

	v1, code := submitRaw(t, ts1, raw, "prog="+testProg+"&opt=func-affinity")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitJob(t, ts1, v1.ID)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %+v", done)
	}
	// Make the write-behind deterministic, then "crash": no Shutdown,
	// no drain — the second server sees only what hit the disk.
	st1.Flush()

	st2 := openTestStore(t, store.Config{Dir: dir})
	if st2.Stats().Quarantined != 0 {
		t.Fatalf("restart quarantined %d blobs from a clean crash point", st2.Stats().Quarantined)
	}
	_, ts2 := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, Store: st2})

	v2, code := submitRaw(t, ts2, raw, "prog="+testProg+"&opt=func-affinity")
	if code != http.StatusOK {
		t.Fatalf("resubmit after restart status %d, want 200 (cache hit)", code)
	}
	if !v2.Cached || v2.Status != StatusDone || v2.Result == nil {
		t.Fatalf("restarted server recomputed: %+v", v2)
	}
	if v2.Digest != v1.Digest {
		t.Fatalf("digest changed across restart: %s vs %s", v2.Digest, v1.Digest)
	}
	if !reflect.DeepEqual(v2.Result.Report.Sequence, done.Result.Report.Sequence) {
		t.Fatal("restored sequence differs from the originally computed one")
	}
	if got := metricValue(t, ts2, "layoutd_cache_hits_total"); got != 1 {
		t.Errorf("cache_hits_total after restart = %v, want 1", got)
	}
	if got := metricValue(t, ts2, "layoutd_store_hits_total"); got != 1 {
		t.Errorf("store_hits_total after restart = %v, want 1", got)
	}
	if got := metricValue(t, ts2, "layoutd_jobs_completed_total"); got != 0 {
		t.Errorf("jobs_completed_total after restart = %v, want 0 (served from disk)", got)
	}

	// The content address works cold, too: no prior submit needed on a
	// third server over the same dir.
	st3 := openTestStore(t, store.Config{Dir: dir})
	_, ts3 := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, Store: st3})
	resp, err := http.Get(ts3.URL + "/v1/layouts/" + v1.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/layouts/%s on cold server = %d", v1.Digest, resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Report.Sequence, done.Result.Report.Sequence) {
		t.Fatal("cold layout fetch returned a different sequence")
	}
}

// TestDegradedModeKeepsServing: injected ENOSPC trips the store to
// memory-only; the daemon keeps completing jobs, /healthz reports
// degraded and layoutd_store_state drops to 0; when the fault clears
// and the backoff elapses, the next write re-probes and recovers.
func TestDegradedModeKeepsServing(t *testing.T) {
	raw, _ := recordedTrace(t)
	dir := t.TempDir()
	clk := fault.NewFakeClock(time.Unix(0, 0))
	inj := fault.NewInjector(fault.OS(), fault.Rule{Op: fault.OpWrite, Err: syscall.ENOSPC})
	st := openTestStore(t, store.Config{
		Dir: dir, FS: inj, Clock: clk, ProbeBackoff: 10 * time.Second,
	})
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, Store: st})

	if got := healthz(t, ts); got != "ok" {
		t.Fatalf("healthz before faults = %q", got)
	}

	// Job completes even though its blob write fails.
	v1, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=300")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if done := waitJob(t, ts, v1.ID); done.Status != StatusDone {
		t.Fatalf("job under disk fault failed: %+v", done)
	}
	st.Flush()
	if got := healthz(t, ts); got != "degraded" {
		t.Fatalf("healthz under disk fault = %q, want degraded", got)
	}
	if got := metricValue(t, ts, "layoutd_store_state"); got != 0 {
		t.Errorf("store_state under fault = %v, want 0", got)
	}
	if got := metricValue(t, ts, "layoutd_store_write_errors_total"); got != 1 {
		t.Errorf("store_write_errors_total = %v, want 1", got)
	}

	// Degraded is not down: the next job still completes, and its
	// result is served from the in-memory tier.
	v2, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=301")
	if code != http.StatusAccepted {
		t.Fatalf("submit while degraded status %d", code)
	}
	if done := waitJob(t, ts, v2.ID); done.Status != StatusDone {
		t.Fatalf("job while degraded failed: %+v", done)
	}
	v2again, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=301")
	if code != http.StatusOK || !v2again.Cached {
		t.Fatalf("memory tier lost a result while degraded: code %d, %+v", code, v2again)
	}

	// Fault clears; past the backoff the next write probes and heals.
	inj.SetRules()
	clk.Advance(time.Minute)
	v3, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=302")
	if code != http.StatusAccepted {
		t.Fatalf("submit after repair status %d", code)
	}
	if done := waitJob(t, ts, v3.ID); done.Status != StatusDone {
		t.Fatalf("job after repair failed: %+v", done)
	}
	st.Flush()
	if got := healthz(t, ts); got != "ok" {
		t.Fatalf("healthz after recovery = %q, want ok", got)
	}
	if got := metricValue(t, ts, "layoutd_store_state"); got != 1 {
		t.Errorf("store_state after recovery = %v, want 1", got)
	}
	if got := metricValue(t, ts, "layoutd_store_recoveries_total"); got != 1 {
		t.Errorf("store_recoveries_total = %v, want 1", got)
	}
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) (jobView, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
	}
	return v, resp.StatusCode
}

// TestCancelQueuedJob: DELETE /v1/jobs/{id} cancels a queued job (and
// only a queued job — running, finished, and unknown jobs get 409/404),
// the canceled job never runs, and the cancellation is counted.
func TestCancelQueuedJob(t *testing.T) {
	raw, _ := recordedTrace(t)
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	started := make(chan struct{}, 8)
	release := make(chan struct{})
	real := s.optimize
	s.optimize = func(ctx context.Context, req *jobRequest) (*Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return real(ctx, req)
	}

	// j1 occupies the worker; j2 sits in the queue.
	v1, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=400")
	if code != http.StatusAccepted {
		t.Fatalf("submit 1 status %d", code)
	}
	<-started
	v2, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=401")
	if code != http.StatusAccepted {
		t.Fatalf("submit 2 status %d", code)
	}

	if _, code := deleteJob(t, ts, "job-999999"); code != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", code)
	}
	if _, code := deleteJob(t, ts, v1.ID); code != http.StatusConflict {
		t.Errorf("DELETE running job = %d, want 409", code)
	}
	got, code := deleteJob(t, ts, v2.ID)
	if code != http.StatusOK {
		t.Fatalf("DELETE queued job = %d, want 200", code)
	}
	if got.Status != StatusCanceled {
		t.Fatalf("canceled job status %q", got.Status)
	}
	if _, code := deleteJob(t, ts, v2.ID); code != http.StatusConflict {
		t.Errorf("second DELETE = %d, want 409 (already canceled)", code)
	}

	close(release)
	if done := waitJob(t, ts, v1.ID); done.Status != StatusDone {
		t.Fatalf("running job after cancel of its neighbor: %+v", done)
	}
	if _, code := deleteJob(t, ts, v1.ID); code != http.StatusConflict {
		t.Errorf("DELETE completed job = %d, want 409", code)
	}

	// The canceled job never ran: exactly one completion, one
	// cancellation on the books, and its status endpoint still says so.
	if got := metricValue(t, ts, "layoutd_jobs_canceled_total"); got != 1 {
		t.Errorf("jobs_canceled_total = %v, want 1", got)
	}
	if got := metricValue(t, ts, "layoutd_jobs_completed_total"); got != 1 {
		t.Errorf("jobs_completed_total = %v, want 1", got)
	}
	final := waitJob(t, ts, v2.ID)
	if final.Status != StatusCanceled {
		t.Fatalf("canceled job ended as %q", final.Status)
	}
}
