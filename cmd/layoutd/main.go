// Command layoutd serves the layout-optimization pipeline over HTTP:
// clients stream CLTR traces to it, it queues optimization jobs on a
// bounded worker pool, caches results by content address, and exposes
// plain-text metrics. With -store-dir the content-addressed cache is
// durable: completed layouts are written crash-safely to disk and
// survive restarts; disk failures degrade the daemon to memory-only
// (visible in /healthz and layoutd_store_state) instead of taking it
// down. See internal/server for the API surface and cmd/layoutctl for
// a client.
//
// Usage:
//
//	layoutd -addr 127.0.0.1:8080 -jobs 4 -queue 64
//	layoutd -addr 127.0.0.1:0 -ready-file /tmp/layoutd.addr
//	layoutd -store-dir /var/lib/layoutd -store-max-bytes 1073741824
//	layoutd -store-dir /tmp/s -fault-spec 'write:every=1,err=ENOSPC'   # smoke-test degraded mode
//
// On SIGTERM/SIGINT the daemon stops accepting work and drains queued
// and in-flight jobs, bounded by -drain-timeout; a drain that has to
// abandon wedged work exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codelayout/internal/fault"
	"codelayout/internal/server"
	"codelayout/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layoutd: ")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	jobs := flag.Int("jobs", 0, "concurrent optimization jobs: 0 = all cores")
	queue := flag.Int("queue", server.DefaultQueueDepth, "queued-job limit before submissions get 429")
	optWorkers := flag.Int("opt-workers", 1, "analysis concurrency inside one job: 0 = all cores")
	jobTimeout := flag.Duration("job-timeout", server.DefaultJobTimeout, "per-job deadline, queue wait included")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on draining in-flight jobs at shutdown")
	maxTrace := flag.Int64("max-trace-bytes", server.DefaultMaxTraceBytes, "upload size cap")
	jobTTL := flag.Duration("job-ttl", server.DefaultJobTTL, "retention of completed-job status records")
	maxJobs := flag.Int("max-jobs", server.DefaultMaxJobs, "tracked-job cap; oldest completed jobs evicted first")
	readyFile := flag.String("ready-file", "", "write the bound address to this file once listening")
	storeDir := flag.String("store-dir", "", "directory for the durable result store (empty = memory-only)")
	storeMaxBytes := flag.Int64("store-max-bytes", store.DefaultMaxBytes, "LRU byte bound on the durable store")
	storeQueue := flag.Int("store-queue", store.DefaultQueueDepth, "write-behind queue depth of the durable store")
	faultSpec := flag.String("fault-spec", "", "DEBUG: inject store filesystem faults, e.g. 'write:every=1,err=ENOSPC' (requires -store-dir)")
	flag.Parse()

	var st *store.Store
	if *storeDir != "" {
		scfg := store.Config{
			Dir:        *storeDir,
			MaxBytes:   *storeMaxBytes,
			QueueDepth: *storeQueue,
			Logf:       log.Printf,
		}
		if *faultSpec != "" {
			rules, err := fault.ParseSpec(*faultSpec)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("DEBUG: store filesystem faults active: %s", *faultSpec)
			scfg.FS = fault.NewInjector(fault.OS(), rules...)
		}
		var err error
		st, err = store.Open(scfg)
		if err != nil {
			// A broken store directory must not take the service down:
			// run memory-only, exactly like the degraded mode a runtime
			// failure produces.
			log.Printf("durable store disabled (running memory-only): %v", err)
		} else {
			stats := st.Stats()
			log.Printf("durable store %s: %d blobs (%d bytes), %d quarantined",
				*storeDir, stats.Blobs, stats.Bytes, stats.Quarantined)
		}
	} else if *faultSpec != "" {
		log.Fatal("-fault-spec requires -store-dir")
	}

	if err := run(*addr, *readyFile, *drainTimeout, server.Config{
		JobWorkers:    *jobs,
		QueueDepth:    *queue,
		JobTimeout:    *jobTimeout,
		OptWorkers:    *optWorkers,
		MaxTraceBytes: *maxTrace,
		JobTTL:        *jobTTL,
		MaxJobs:       *maxJobs,
		Store:         st,
	}); err != nil {
		log.Fatal(err)
	}
}

func run(addr, readyFile string, drainTimeout time.Duration, cfg server.Config) error {
	s := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", ln.Addr())
	if readyFile != "" {
		if err := os.WriteFile(readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received; draining (bound %s)", drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Shutdown(drainCtx); err != nil {
		// Wedged workers were abandoned: surface it to the supervisor.
		return err
	}
	log.Printf("drained cleanly")
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
