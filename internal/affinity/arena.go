package affinity

import (
	"sync"

	"codelayout/internal/flathash"
	"codelayout/internal/stackdist"
)

// Arena recycles the analysis' internal buffers across BuildHierarchy
// calls: per-shard LRU stacks, partner lists, epoch-stamped scratch and
// the flat pair-histogram tables. A long-lived caller (layoutd running
// repeated optimization jobs) holds one Arena and passes it through
// Options; after the first few calls warm the pools, the stack-pass
// kernel allocates nothing per job. The zero value is ready to use and
// safe for concurrent use — shards borrow from an internal sync.Pool, so
// concurrent builds simply warm more pool entries.
type Arena struct {
	shards sync.Pool // *shardState
	minW   sync.Pool // *flathash.Sum64
}

func (a *Arena) getShard() *shardState {
	if a == nil {
		return &shardState{}
	}
	if st, ok := a.shards.Get().(*shardState); ok {
		return st
	}
	return &shardState{}
}

func (a *Arena) putShard(st *shardState) {
	if a != nil {
		a.shards.Put(st)
	}
}

func (a *Arena) getMinW() *flathash.Sum64 {
	if a == nil {
		return &flathash.Sum64{}
	}
	if t, ok := a.minW.Get().(*flathash.Sum64); ok {
		t.Reset()
		return t
	}
	return &flathash.Sum64{}
}

func (a *Arena) putMinW(t *flathash.Sum64) {
	if a != nil {
		a.minW.Put(t)
	}
}

// shardState is the reusable working set of one shard's two stack
// passes. All buffers grow to the trace's alphabet and window bounds and
// then stay allocation-free across reuses.
type shardState struct {
	stack stackdist.LRUStack

	// topk is the reusable top-w snapshot buffer (stackdist.AppendTopK).
	topk []int32

	// partnerSym and offsets record the forward pass: partners of the
	// occurrence at position lo+i live in partnerSym[offsets[i]:
	// offsets[i+1]], ordered by stack depth, so an entry's coverage depth
	// is its index within the occurrence's span plus 2 — no parallel
	// depth array needed.
	partnerSym []int32
	offsets    []int32

	// sd/touched form the epoch-stamped dense merge scratch indexed by
	// symbol (the footprint.Scratch trick): merging a partner is one load
	// and store instead of a linear scan over the merged set. Each sd
	// entry packs epoch<<8 | depth so the stamp check and the depth
	// compare touch a single word.
	sd      []int64
	touched []int32
	epoch   int32

	// pairs is the shard's flat pair-histogram table.
	pairs flathash.Slab32
}

// prepare sizes the scratch for a trace with symbols in [0, maxSym] and
// clears the pair table for stride counters per pair.
func (st *shardState) prepare(maxSym int32, stride int) {
	n := int(maxSym) + 1
	if cap(st.sd) < n {
		st.sd = make([]int64, n)
		// Fresh stamps are zero; epoch must restart above them.
		st.epoch = 0
	} else {
		st.sd = st.sd[:n]
	}
	st.touched = st.touched[:0]
	st.pairs.Init(stride)
}

// bumpEpoch invalidates the merge scratch in O(1); on int32 wrap-around
// (once per ~2^31 occurrences) it re-zeros the stamps.
func (st *shardState) bumpEpoch() {
	st.epoch++
	if st.epoch <= 0 {
		full := st.sd[:cap(st.sd)]
		for i := range full {
			full[i] = 0
		}
		st.epoch = 1
	}
	st.touched = st.touched[:0]
}

// add merges partner sym with coverage depth d into the occurrence's
// scratch set, keeping the minimum depth per partner.
func (st *shardState) add(sym int32, d uint8) {
	e := int64(st.epoch) << 8
	v := st.sd[sym]
	if v&^0xff == e {
		if int64(d) < v&0xff {
			st.sd[sym] = e | int64(d)
		}
		return
	}
	st.sd[sym] = e | int64(d)
	st.touched = append(st.touched, sym)
}

// depthOf returns the merged minimum depth recorded for sym in the
// current epoch; sym must have been added this epoch.
func (st *shardState) depthOf(sym int32) int {
	return int(uint8(st.sd[sym]))
}

// warmBeforeScratch is warmBefore using the epoch scratch instead of a
// per-call map, so pooled shards warm up without allocating.
func (st *shardState) warmBeforeScratch(syms []int32, lo, need int) int {
	st.bumpEpoch()
	e := int64(st.epoch) << 8
	count := 0
	p := lo
	for p > 0 && count < need {
		p--
		s := syms[p]
		if st.sd[s]&^0xff != e {
			st.sd[s] = e
			count++
		}
	}
	return p
}

// warmAfterScratch is warmAfter on the epoch scratch.
func (st *shardState) warmAfterScratch(syms []int32, hi, need int) int {
	st.bumpEpoch()
	e := int64(st.epoch) << 8
	count := 0
	q := hi
	for q < len(syms) && count < need {
		s := syms[q]
		if st.sd[s]&^0xff != e {
			st.sd[s] = e
			count++
		}
		q++
	}
	return q
}
