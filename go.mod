module codelayout

go 1.22
