package affinity

import (
	"codelayout/internal/flathash"
	"codelayout/internal/trace"
)

// BuildHierarchyNaive constructs the hierarchy straight from the
// definitions, as Algorithm 1 does: for each w, pairwise w-window
// affinity is decided by enumerating the occurrences of each pair and
// measuring window footprints directly. Quadratic in the trace length;
// used to validate BuildHierarchy and to reproduce the paper's Figure 1
// example exactly.
func BuildHierarchyNaive(t *trace.Trace, opt Options) *Hierarchy {
	wmax := opt.WMax
	if wmax <= 0 {
		wmax = DefaultWMax
	}
	tt := t.Trimmed()
	h := newHierarchyShell(tt, wmax)
	if len(tt.Syms) == 0 {
		return h
	}
	// The naive path stays strictly serial (Workers is ignored): it is
	// the oracle the parallel analysis is validated against, so it must
	// remain the obviously-correct transcription of the definitions. Its
	// per-pair map folds into the same flat-table form the level merge
	// queries.
	minW := &flathash.Sum64{}
	for k, w := range pairMinWindows(tt.Syms) {
		minW.Set(k, int64(w))
	}
	buildLevels(h, wmax, minW)
	return h
}

// pairMinWindows returns, for every symbol pair, the smallest w at which
// the pair has w-window affinity: the maximum over all occurrences (of
// either symbol) of the minimum footprint of a window joining that
// occurrence to some occurrence of the other symbol.
func pairMinWindows(syms []int32) map[int64]int {
	n := len(syms)
	// For each occurrence position i and symbol y, bestTo(i, y) is the
	// minimal footprint over windows from position i to any occurrence
	// of y. Scanning outward from i while tracking distinct symbols
	// yields it in O(n) per occurrence.
	minW := make(map[int64]int)
	for i := 0; i < n; i++ {
		x := syms[i]
		// best[y] = minimal window footprint from occurrence i to y.
		best := make(map[int32]int)
		// Scan right.
		seen := map[int32]struct{}{x: {}}
		fp := 1
		for j := i + 1; j < n; j++ {
			s := syms[j]
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				fp++
			}
			if b, ok := best[s]; !ok || fp < b {
				best[s] = fp
			}
		}
		// Scan left.
		seen = map[int32]struct{}{x: {}}
		fp = 1
		for j := i - 1; j >= 0; j-- {
			s := syms[j]
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				fp++
			}
			if b, ok := best[s]; !ok || fp < b {
				best[s] = fp
			}
		}
		// Fold this occurrence's requirement into each pair: the pair's
		// window must cover the worst occurrence.
		for y, b := range best {
			if y == x {
				continue
			}
			k := pairKey(x, y)
			if cur, ok := minW[k]; !ok || b > cur {
				minW[k] = b
			}
		}
	}
	// Every occurrence can reach every other symbol through some window
	// (at worst the whole trace), so minW holds an entry for every pair
	// of co-occurring symbols and the max-fold above already encodes the
	// "every occurrence" quantifier of Definition 3.
	return minW
}
