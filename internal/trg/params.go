package trg

import (
	"context"

	"codelayout/internal/obs"
	"codelayout/internal/trace"
)

// Params derives the reduction's slot count and the construction's
// examination window from the cache geometry, following §II-C:
//
//   - the paper assumes one uniform size S for all code blocks (its
//     compiler works on IR, not binary code, so actual sizes are
//     unknown);
//   - per Gloy & Smith's recommendation, the cache size C used by the
//     model is twice the actual cache size;
//   - a code block occupies ceil(S/(A·B)) cache sets out of C/(A·B), so
//     there are (C/(A·B)) / ceil(S/(A·B)) slots to place code blocks;
//   - the constant 2C also bounds the footprint window examined for
//     co-occurrences, i.e. 2C/S code blocks.
type Params struct {
	// CacheBytes is the actual instruction cache size (e.g. 32 KB).
	CacheBytes int
	// Assoc is the cache associativity A.
	Assoc int
	// LineBytes is the cache block size B.
	LineBytes int
	// BlockBytes is the assumed uniform code block size S.
	BlockBytes int
	// WindowScale multiplies the actual cache size to form the model's
	// window; 0 means the recommended factor 2.
	WindowScale int
	// Workers bounds the construction's concurrency: 0 means every
	// available core, 1 pins the serial reference path. It is an
	// execution knob, not a model parameter — the graph is identical
	// for every setting.
	Workers int
}

// DefaultParams returns the evaluation configuration of the paper: a
// 32 KB 4-way cache with 64-byte lines and the given uniform code-block
// size.
func DefaultParams(blockBytes int) Params {
	return Params{CacheBytes: 32 << 10, Assoc: 4, LineBytes: 64, BlockBytes: blockBytes}
}

func (p Params) scaledCache() int {
	scale := p.WindowScale
	if scale <= 0 {
		scale = 2
	}
	return scale * p.CacheBytes
}

// Slots returns K, the number of code slots for the reduction.
func (p Params) Slots() int {
	c := p.scaledCache()
	setBytes := p.Assoc * p.LineBytes
	sets := c / setBytes
	blockSets := (p.BlockBytes + setBytes - 1) / setBytes
	if blockSets < 1 {
		blockSets = 1
	}
	k := sets / blockSets
	if k < 1 {
		k = 1
	}
	return k
}

// WindowBlocks returns the construction's examination window measured in
// code blocks: the footprint 2C divided by the uniform block size.
func (p Params) WindowBlocks() int {
	w := p.scaledCache() / p.BlockBytes
	if w < 2 {
		w = 2
	}
	return w
}

// Sequence runs the full §II-C pipeline: build the TRG of the trace with
// the parameter-derived window, reduce it with the parameter-derived
// slot count, and return the optimized code sequence.
func Sequence(t *trace.Trace, p Params) []int32 {
	seq, _ := SequenceCtx(context.Background(), t, p, nil)
	return seq
}

// SequenceCtx is Sequence with cancellation (the construction's shard
// loops poll ctx) and buffer reuse; arena may be nil. The built graph is
// recycled through the arena once reduced.
func SequenceCtx(ctx context.Context, t *trace.Trace, p Params, arena *Arena) ([]int32, error) {
	sp := obs.StartSpan(ctx, "trg.build")
	g, err := BuildCtx(ctx, t, p.WindowBlocks(), p.Workers, arena)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.SetAttr("nodes", int64(len(g.nodes)))
	sp.End()
	rp := obs.StartSpan(ctx, "trg.reduce")
	seq := Reduce(g, p.Slots())
	rp.SetAttr("seq_len", int64(len(seq)))
	rp.End()
	arena.PutGraph(g)
	return seq, nil
}
