package server

import (
	"sync"
	"time"

	"codelayout/internal/core"
	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// Result is the completed output of one optimization job — what the
// content-addressed cache stores and `GET /v1/layouts/{digest}` serves.
type Result struct {
	// Digest is the content address: SHA-256 over the trace digest, the
	// optimizer name, and the request parameters.
	Digest string `json:"digest"`
	// TraceDigest is the SHA-256 of the uploaded trace bytes.
	TraceDigest string `json:"traceDigest"`
	Prog        string `json:"prog"`
	Optimizer   string `json:"optimizer"`
	// Report is the pipeline's transformation report, including the
	// optimized code-unit sequence.
	Report core.Report `json:"report"`
	// MissBefore/MissAfter are the simulated solo i-cache miss ratios of
	// the uploaded trace replayed through the original and the optimized
	// layout; MissReduction is the relative improvement.
	MissBefore    float64 `json:"missBefore"`
	MissAfter     float64 `json:"missAfter"`
	MissReduction float64 `json:"missReduction"`
	// ElapsedMS is the optimization wall time (0 for cache hits).
	ElapsedMS float64 `json:"elapsedMS"`
}

// Job states, in lifecycle order.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// jobRequest carries everything a worker needs to run one job. The
// trace and program are fully validated at submission time, so a worker
// can only fail on pipeline errors, not on malformed input.
type jobRequest struct {
	prog        *ir.Program
	progName    string
	opt         core.Optimizer
	pruneTopN   int
	trace       *trace.Trace
	traceDigest string
	digest      string
	deadline    time.Time
}

// Job is one submission's mutable state. All fields behind mu; the
// JSON view is built under the lock.
type Job struct {
	mu       sync.Mutex
	id       string
	status   string
	cached   bool
	err      string
	result   *Result
	digest   string
	created  time.Time
	started  time.Time
	finished time.Time
}

// jobView is the wire representation of a job.
type jobView struct {
	ID     string  `json:"id"`
	Status string  `json:"status"`
	Digest string  `json:"digest"`
	Cached bool    `json:"cached"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:     j.id,
		Status: j.status,
		Digest: j.digest,
		Cached: j.cached,
		Error:  j.err,
		Result: j.result,
	}
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

func (j *Job) complete(r *Result) {
	j.mu.Lock()
	j.status = StatusDone
	j.result = r
	j.finished = time.Now()
	j.mu.Unlock()
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.status = StatusFailed
	j.err = err.Error()
	j.finished = time.Now()
	j.mu.Unlock()
}

// done reports whether the job reached a terminal state.
func (j *Job) done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed
}

// terminal returns the completion time of a done or failed job; ok is
// false while the job is still queued or running.
func (j *Job) terminal() (fin time.Time, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed {
		return j.finished, true
	}
	return time.Time{}, false
}
