package layout

import (
	"sort"

	"codelayout/internal/ir"
)

// ReorderBlocksIntra lays out basic blocks using the given model
// sequence but only *within* each function — the intra-procedural
// baseline the paper contrasts its inter-procedural transformation
// against ("much of the literature in code layout optimization is
// intra-procedural; compilers such as LLVM and GCC provide
// profiling-based basic block reordering, also within a procedure").
//
// Functions stay in source order. Within a function, the entry block is
// pinned first (so calls need no stubs), the remaining blocks are
// ordered by their rank in the model sequence, and blocks absent from
// the sequence follow in source order.
func ReorderBlocksIntra(p *ir.Program, blockOrder []ir.BlockID) *Layout {
	rank := make(map[ir.BlockID]int, len(blockOrder))
	for i, b := range blockOrder {
		if _, ok := rank[b]; !ok && b >= 0 && int(b) < p.NumBlocks() {
			rank[b] = i
		}
	}
	order := make([]ir.BlockID, 0, p.NumBlocks())
	for _, f := range p.Funcs {
		entry := f.Blocks[0]
		rest := make([]ir.BlockID, len(f.Blocks)-1)
		copy(rest, f.Blocks[1:])
		srcPos := make(map[ir.BlockID]int, len(rest))
		for i, b := range rest {
			srcPos[b] = i
		}
		sort.SliceStable(rest, func(i, j int) bool {
			ri, iok := rank[rest[i]]
			rj, jok := rank[rest[j]]
			switch {
			case iok && jok:
				return ri < rj
			case iok:
				return true
			case jok:
				return false
			default:
				return srcPos[rest[i]] < srcPos[rest[j]]
			}
		})
		order = append(order, entry)
		order = append(order, rest...)
	}
	return build(p, "bb-intra-reorder", order, false)
}
