package affinity

import (
	"context"
	"math/rand"
	"testing"

	"codelayout/internal/trace"
)

// zeroAllocTrace is a phased trace big enough to exercise table growth
// during warm-up but small enough for AllocsPerRun to stay fast.
func zeroAllocTrace() *trace.Trace {
	rng := rand.New(rand.NewSource(9))
	syms := make([]int32, 20000)
	for i := range syms {
		phase := (i / 1000) % 4
		syms[i] = int32(phase*16 + rng.Intn(24))
	}
	return trace.New(syms)
}

// TestShardPairHistsZeroAlloc is the steady-state allocation guarantee of
// the stack-pass kernel: once a shard's buffers have grown to the trace's
// alphabet and window bounds, re-running the two passes allocates nothing.
func TestShardPairHistsZeroAlloc(t *testing.T) {
	tt := zeroAllocTrace().Trimmed()
	const wmax = 12
	st := &shardState{}
	ctx := context.Background()
	run := func() {
		if err := shardPairHists(ctx, st, tt.Syms, tt.MaxSym(), wmax, 0, len(tt.Syms)); err != nil {
			t.Fatal(err)
		}
	}
	run() // grow all buffers once
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Errorf("shardPairHists steady state allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkShardPairHists reports the kernel's ns/op and allocs/op for
// the bench-regression harness; allocs/op must stay 0 (the state is
// warmed before the timer starts).
func BenchmarkShardPairHists(b *testing.B) {
	tt := zeroAllocTrace().Trimmed()
	const wmax = 20
	st := &shardState{}
	ctx := context.Background()
	if err := shardPairHists(ctx, st, tt.Syms, tt.MaxSym(), wmax, 0, len(tt.Syms)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := shardPairHists(ctx, st, tt.Syms, tt.MaxSym(), wmax, 0, len(tt.Syms)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildHierarchyArena measures the full analysis with a shared
// Arena, the way layoutd runs repeated jobs: steady-state allocations are
// only the result hierarchy, not the kernel working set.
func BenchmarkBuildHierarchyArena(b *testing.B) {
	tt := zeroAllocTrace()
	arena := &Arena{}
	BuildHierarchy(tt, Options{WMax: 20, Workers: 1, Arena: arena})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildHierarchy(tt, Options{WMax: 20, Workers: 1, Arena: arena})
	}
}
