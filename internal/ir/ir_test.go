package ir

import (
	"strings"
	"testing"
)

// buildLoopProg constructs main -> loop { call X; call Y } used by several
// tests; it mirrors the shape of the paper's Figure 3 example.
func buildLoopProg(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("fig3", 1)

	main := b.Func("main")
	x := b.Func("X")
	y := b.Func("Y")

	// main: loop 100 times { call X; call Y }
	mEntry := main.Block("entry", 8)
	mCallX := main.Block("callX", 8)
	mCallY := main.Block("callY", 8)
	mLatch := main.Block("latch", 8)
	mExit := main.Block("exit", 8)
	mEntry.Jump(mCallX)
	mCallX.Call(x, mCallY)
	mCallY.Call(y, mLatch)
	mLatch.Loop(100, mCallX, mExit)
	mExit.Exit()

	// X: if (random) b=1 else b=2
	x1 := x.Block("X1", 12)
	x2 := x.Block("X2", 24)
	x3 := x.Block("X3", 24)
	xr := x.Block("Xret", 4)
	x1.Branch(Prob{P: 0.5}, x2, x3)
	x2.Set(0, 1)
	x2.Jump(xr)
	x3.Set(0, 2)
	x3.Jump(xr)
	xr.Return()

	// Y: if (b == 1) Y2 else Y3
	y1 := y.Block("Y1", 12)
	y2 := y.Block("Y2", 24)
	y3 := y.Block("Y3", 24)
	yr := y.Block("Yret", 4)
	y1.Branch(GlobalEq{Reg: 0, Val: 1}, y2, y3)
	y2.Jump(yr)
	y3.Jump(yr)
	yr.Return()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderProducesValidProgram(t *testing.T) {
	p := buildLoopProg(t)
	if got, want := p.NumFuncs(), 3; got != want {
		t.Errorf("NumFuncs = %d, want %d", got, want)
	}
	if got, want := p.NumBlocks(), 13; got != want {
		t.Errorf("NumBlocks = %d, want %d", got, want)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBlockAndFuncLookup(t *testing.T) {
	p := buildLoopProg(t)
	f := p.FuncByName("X")
	if f == nil {
		t.Fatal("FuncByName(X) = nil")
	}
	if p.Entry(f.ID) != f.Blocks[0] {
		t.Errorf("Entry(%d) = %d, want %d", f.ID, p.Entry(f.ID), f.Blocks[0])
	}
	blk := p.BlockByName("X", "X2")
	if blk == nil {
		t.Fatal("BlockByName(X, X2) = nil")
	}
	if blk.Fn != f.ID {
		t.Errorf("X2 belongs to function %d, want %d", blk.Fn, f.ID)
	}
	if p.BlockByName("X", "nosuch") != nil {
		t.Error("BlockByName(X, nosuch) != nil")
	}
	if p.BlockByName("nosuch", "X2") != nil {
		t.Error("BlockByName(nosuch, X2) != nil")
	}
}

func TestStaticBytes(t *testing.T) {
	p := buildLoopProg(t)
	var want int64
	for _, b := range p.Blocks {
		want += int64(b.Size)
	}
	if got := p.StaticBytes(); got != want {
		t.Errorf("StaticBytes = %d, want %d", got, want)
	}
	if want == 0 {
		t.Error("StaticBytes is zero for non-empty program")
	}
}

func TestNaturalNext(t *testing.T) {
	p := buildLoopProg(t)
	x1 := p.BlockByName("X", "X1")
	x3 := p.BlockByName("X", "X3")
	if got := x1.NaturalNext(); got != x3.ID {
		t.Errorf("NaturalNext(X1) = %d, want fall-through X3 %d", got, x3.ID)
	}
	x2 := p.BlockByName("X", "X2")
	if got := x2.NaturalNext(); got != NoBlock {
		t.Errorf("NaturalNext(X2 jump) = %d, want NoBlock", got)
	}
	callX := p.BlockByName("main", "callX")
	callY := p.BlockByName("main", "callY")
	if got := callX.NaturalNext(); got != callY.ID {
		t.Errorf("NaturalNext(callX) = %d, want %d", got, callY.ID)
	}
	xr := p.BlockByName("X", "Xret")
	if got := xr.NaturalNext(); got != NoBlock {
		t.Errorf("NaturalNext(return) = %d, want NoBlock", got)
	}
}

func TestValidateRejectsBrokenPrograms(t *testing.T) {
	mk := func() *Program { return buildLoopProg(t) }

	cases := []struct {
		name   string
		break_ func(*Program)
		want   string
	}{
		{
			"cross-function jump",
			func(p *Program) {
				x2 := p.BlockByName("X", "X2")
				y1 := p.BlockByName("Y", "Y1")
				x2.Term = Jump{Target: y1.ID}
			},
			"crosses function boundary",
		},
		{
			"bad callee",
			func(p *Program) {
				c := p.BlockByName("main", "callX")
				c.Term = Call{Callee: 99, Next: c.NaturalNext()}
			},
			"out of range",
		},
		{
			"zero size",
			func(p *Program) { p.BlockByName("X", "X2").Size = 0 },
			"non-positive size",
		},
		{
			"nil terminator",
			func(p *Program) { p.BlockByName("X", "X2").Term = nil },
			"no terminator",
		},
		{
			"bad probability",
			func(p *Program) {
				x1 := p.BlockByName("X", "X1")
				tm := x1.Term.(Branch)
				tm.Cond = Prob{P: 1.5}
				x1.Term = tm
			},
			"out of [0,1]",
		},
		{
			"bad global in condition",
			func(p *Program) {
				y1 := p.BlockByName("Y", "Y1")
				tm := y1.Term.(Branch)
				tm.Cond = GlobalEq{Reg: 7, Val: 1}
				y1.Term = tm
			},
			"out of range",
		},
		{
			"bad global in effect",
			func(p *Program) {
				x2 := p.BlockByName("X", "X2")
				x2.Effects = []Effect{SetGlobal{Reg: 9, Val: 1}}
			},
			"out of range",
		},
		{
			"zero trip loop",
			func(p *Program) {
				l := p.BlockByName("main", "latch")
				tm := l.Term.(Branch)
				tm.Cond = Counter{Trips: 0}
				l.Term = tm
			},
			"< 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mk()
			tc.break_(p)
			err := p.Validate()
			if err == nil {
				t.Fatalf("Validate accepted broken program (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDumpMentionsEveryBlock(t *testing.T) {
	p := buildLoopProg(t)
	d := p.Dump()
	for _, b := range p.Blocks {
		if !strings.Contains(d, b.Name) {
			t.Errorf("Dump missing block %s", b.Name)
		}
	}
	for _, f := range p.Funcs {
		if !strings.Contains(d, "func "+f.Name+":") {
			t.Errorf("Dump missing function %s", f.Name)
		}
	}
}
