package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"codelayout/internal/cluster"
	"codelayout/internal/store"
)

func sha256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ---- digest validation (table-driven) ----

func TestValidDigest(t *testing.T) {
	hex64 := strings.Repeat("ab12", 16)
	cases := []struct {
		in string
		ok bool
	}{
		{hex64, true},
		{strings.Repeat("0", 64), true},
		{"", false},
		{hex64[:63], false},
		{hex64 + "a", false},
		{strings.ToUpper(hex64), false},                // uppercase hex
		{strings.Repeat("g", 64), false},               // non-hex
		{hex64[:60] + "../x", false},                   // traversal chars
		{strings.Repeat("a", 62) + "\x00b", false},     // control byte
		{"t-" + hex64, false},                          // prefixed keys are not digests
		{strings.Repeat("a", 32), false},               // md5-sized
		{strings.Repeat("а", 32), false},               // cyrillic 'а', 64 bytes
		{hex64[:62] + "Ff", false},                     // mixed case at the tail
		{strings.Repeat("0123456789abcdef", 4), true},  // full hex alphabet
		{strings.Repeat("0123456789abcdef", 8), false}, // 128 chars
	}
	for _, c := range cases {
		if got := validDigest(c.in); got != c.ok {
			t.Errorf("validDigest(%.20q...) = %v, want %v", c.in, got, c.ok)
		}
	}
}

func TestStoreKeyKind(t *testing.T) {
	d := strings.Repeat("1f", 32)
	cases := []struct {
		key  string
		kind string
		ok   bool
	}{
		{d, kindResult, true},
		{"t-" + d, kindTrace, true},
		{"p-" + d, kindPair, true},
		{"s-" + d, kindSchedule, true},
		{"x-" + d, "", false},      // unknown prefix
		{"t-" + d[:62], "", false}, // short payload
		{"t-" + strings.ToUpper(d), "", false},
		{"../" + d[3:], "", false},
		{"t-../" + d, "", false},
		{"", "", false},
		{"tt" + d, "", false}, // 66 chars but bad prefix
	}
	for _, c := range cases {
		kind, ok := storeKeyKind(c.key)
		if ok != c.ok || kind != c.kind {
			t.Errorf("storeKeyKind(%.20q...) = (%q, %v), want (%q, %v)", c.key, kind, ok, c.kind, c.ok)
		}
	}
}

func TestCheckDigests(t *testing.T) {
	good := strings.Repeat("ab", 32)
	if err := checkDigests(good, good); err != nil {
		t.Fatalf("checkDigests(good) = %v", err)
	}
	err := checkDigests(good, "nope")
	if err == nil || !strings.Contains(err.Error(), `"nope"`) {
		t.Fatalf("checkDigests should name the malformed digest, got %v", err)
	}
	if err := checkDigests(); err != nil {
		t.Fatalf("checkDigests() = %v", err)
	}
}

// Malformed digests at the read endpoints are 400, not 404: they can
// never name content, so treating them as lookups would leak the
// store's key syntax into filepath operations.
func TestMalformedDigestRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	for _, path := range []string{
		"/v1/layouts/not-a-digest",
		"/v1/corun/NOPE",
		"/v1/store/" + strings.Repeat("Z", 64),
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}
}

// ---- store admin endpoints ----

func doReq(t *testing.T, method, url string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

func TestStoreAdminEndpoints(t *testing.T) {
	st := openTestStore(t, store.Config{Dir: t.TempDir()})
	s, ts := newTestServer(t, Config{JobWorkers: 1, Store: st})
	digest := submitDone(t, ts, "func-affinity")
	s.disk.Flush()

	// The listing holds the result blob and the trace blob.
	resp, raw := doReq(t, http.MethodGet, ts.URL+"/v1/store", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/store = %d: %s", resp.StatusCode, raw)
	}
	var listing struct {
		Entries []storeEntryView `json:"entries"`
		Count   int              `json:"count"`
		Bytes   int64            `json:"bytes"`
	}
	if err := json.Unmarshal(raw, &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Count != 2 || len(listing.Entries) != 2 {
		t.Fatalf("store listing count = %d, want 2 (result + trace): %s", listing.Count, raw)
	}
	kinds := map[string]bool{}
	for _, e := range listing.Entries {
		kinds[e.Kind] = true
		if e.Size <= 0 {
			t.Errorf("entry %s has size %d", e.Key, e.Size)
		}
		if _, err := time.Parse(time.RFC3339, e.LastAccess); err != nil {
			t.Errorf("entry %s last_access %q: %v", e.Key, e.LastAccess, err)
		}
	}
	if !kinds[kindResult] || !kinds[kindTrace] {
		t.Fatalf("listing kinds = %v, want result and trace", kinds)
	}

	// Raw read returns the JSON result blob with a matching digest header.
	resp, raw = doReq(t, http.MethodGet, ts.URL+"/v1/store/"+digest, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/store/{key} = %d", resp.StatusCode)
	}
	if resp.Header.Get(headerDigest) == "" {
		t.Fatal("store read missing digest header")
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil || res.Digest != digest {
		t.Fatalf("store blob does not decode to its own result: %v", err)
	}

	// DELETE drops both tiers; the layout is gone from /v1/layouts too.
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/store/"+digest, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/store/"+digest, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/layouts/"+digest, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/layouts after delete = %d, want 404", resp.StatusCode)
	}
	if got := metricValue(t, ts, "layoutd_store_deletes_total"); got != 1 {
		t.Fatalf("layoutd_store_deletes_total = %v, want 1", got)
	}
}

func TestStoreAdminWithoutDisk(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1})
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/store", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/store without disk = %d, want 404", resp.StatusCode)
	}
	key := strings.Repeat("ab", 32)
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/replicate/"+key, []byte("x"), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("PUT /v1/replicate without disk = %d, want 503", resp.StatusCode)
	}
}

// ---- replication receiver ----

func TestReplicateEndpoint(t *testing.T) {
	st := openTestStore(t, store.Config{Dir: t.TempDir()})
	s, ts := newTestServer(t, Config{JobWorkers: 1, Store: st})
	payload := []byte(`{"synthetic":"blob"}`)
	key := "t-" + strings.Repeat("7e", 32)
	sum := sha256Hex(payload)

	// Digest-authenticated happy path: durable on ack.
	resp, raw := doReq(t, http.MethodPut, ts.URL+"/v1/replicate/"+key, payload,
		map[string]string{headerDigest: sum})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("replicate = %d: %s", resp.StatusCode, raw)
	}
	if data, ok := s.disk.Get(key); !ok || !bytes.Equal(data, payload) {
		t.Fatal("replicated blob not readable from the store")
	}
	if got := metricValue(t, ts, "layoutd_replicate_received_total"); got != 1 {
		t.Fatalf("layoutd_replicate_received_total = %v, want 1", got)
	}

	// A push without the digest header, or with a lying one, is rejected.
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/replicate/"+key, payload, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replicate without digest = %d, want 400", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/replicate/"+key, payload,
		map[string]string{headerDigest: strings.Repeat("0", 64)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replicate with forged digest = %d, want 400", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/v1/replicate/bad..key", payload,
		map[string]string{headerDigest: sum})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replicate with malformed key = %d, want 400", resp.StatusCode)
	}
}

// ---- cluster end to end ----

// swapHandler lets an httptest server exist (so its URL is known for
// the peer set) before the real layoutd handler does. Until the swap it
// answers health polls "ok" and everything else 503.
type swapHandler struct{ h atomic.Value }

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := sh.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	if r.URL.Path == "/healthz" {
		writeJSON(w, http.StatusOK, healthzView{Status: "ok"})
		return
	}
	http.Error(w, "starting", http.StatusServiceUnavailable)
}

// clusterNode is one member of an in-process test cluster.
type clusterNode struct {
	id  string
	srv *Server
	ts  *httptest.Server
	cl  *cluster.Cluster
}

// newTestCluster3 stands up a 3-node cluster, each node with its own
// durable store, replication factor 2.
func newTestCluster3(t *testing.T) []*clusterNode {
	t.Helper()
	ids := []string{"n1", "n2", "n3"}
	nodes := make([]*clusterNode, len(ids))
	peers := make([]cluster.Peer, len(ids))
	swaps := make([]*swapHandler, len(ids))
	for i, id := range ids {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		nodes[i] = &clusterNode{id: id, ts: ts}
		peers[i] = cluster.Peer{ID: id, URL: ts.URL}
	}
	for i, id := range ids {
		cl, err := cluster.New(cluster.Config{
			SelfID:            id,
			Peers:             peers,
			ReplicationFactor: 2,
			HealthInterval:    100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := openTestStore(t, store.Config{Dir: t.TempDir()})
		srv := New(Config{JobWorkers: 1, Store: st, Cluster: cl})
		nodes[i].srv = srv
		nodes[i].cl = cl
		swaps[i].h.Store(srv.Handler())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			n.srv.Shutdown(ctx)
			cancel()
		}
	})
	return nodes
}

func nodeByID(nodes []*clusterNode, id string) *clusterNode {
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// seriesOrZero reads one labeled series from a node's exposition,
// 0 when the series does not exist yet.
func seriesOrZero(t *testing.T, ts *httptest.Server, name string, labels map[string]string) float64 {
	t.Helper()
	exp := scrapeMetrics(t, ts)
	for _, s := range exp.Series {
		if s.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	return 0
}

func TestClusterForwardReplicateAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("3-node cluster e2e")
	}
	nodes := newTestCluster3(t)
	raw, _ := recordedTrace(t)

	// The submit routing key for a raw body is its SHA-256 — the trace
	// digest — so the owner is computable here, and the submission goes
	// to a node that is NOT the owner to force a forward.
	routingKey := sha256Hex(raw)
	ownerID := nodes[0].cl.Owner(routingKey).ID
	var submitNode *clusterNode
	for _, n := range nodes {
		if n.id != ownerID {
			submitNode = n
			break
		}
	}

	req, err := http.NewRequest(http.MethodPost,
		submitNode.ts.URL+"/v1/jobs?prog="+testProg+"&opt=func-affinity", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit via non-owner = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(headerForwardedTo); got != ownerID {
		t.Fatalf("%s header = %q, want owner %q", headerForwardedTo, got, ownerID)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.ID, ownerID+".") {
		t.Fatalf("job ID %q not minted by owner %q", v.ID, ownerID)
	}

	// Polling the job through the submit node transparently follows the
	// node prefix in the job ID.
	done := waitJob(t, submitNode.ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job did not complete: %+v", done)
	}
	digest := done.Digest

	// The forward left its marks on the submitting node: the per-peer
	// counter and the peer.forward phase histogram.
	if got := seriesOrZero(t, submitNode.ts, "layoutd_peer_forwards_total",
		map[string]string{"peer": ownerID}); got < 1 {
		t.Fatalf("layoutd_peer_forwards_total{peer=%q} = %v, want >= 1", ownerID, got)
	}
	if got := seriesOrZero(t, submitNode.ts, "layoutd_phase_seconds_count",
		map[string]string{"phase": "peer.forward"}); got < 1 {
		t.Fatalf("peer.forward phase not observed on the submitting node")
	}

	// Write-behind replication converges: some surviving peer of the
	// owner ends up holding the result blob durably (RF=2 guarantees at
	// least one replica besides the compute node).
	ownerNode := nodeByID(nodes, ownerID)
	waitFor(t, 10*time.Second, "replica holds the result blob", func() bool {
		for _, n := range nodes {
			if n.id == ownerID {
				continue
			}
			resp, err := http.Get(n.ts.URL + "/v1/store/" + digest)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		return false
	})
	// The compute node observed its pushes (store.replicate span folded
	// into the phase histogram).
	if got := seriesOrZero(t, ownerNode.ts, "layoutd_phase_seconds_count",
		map[string]string{"phase": "store.replicate"}); got < 1 {
		t.Fatalf("store.replicate phase not observed on the compute node")
	}
	if got := seriesOrZero(t, ownerNode.ts, "layoutd_replication_pushed_total", nil); got < 1 {
		t.Fatalf("layoutd_replication_pushed_total = %v, want >= 1", got)
	}

	// Every node serves the digest — and nothing recomputed anywhere:
	// exactly one optimization ran in the whole cluster.
	for _, n := range nodes {
		resp, err := http.Get(n.ts.URL + "/v1/layouts/" + digest)
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		err = json.NewDecoder(resp.Body).Decode(&res)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil || res.Digest != digest {
			t.Fatalf("node %s: GET /v1/layouts/{digest} = %d (%v)", n.id, resp.StatusCode, err)
		}
	}
	var completed float64
	for _, n := range nodes {
		completed += seriesOrZero(t, n.ts, "layoutd_jobs_completed_total", nil)
	}
	if completed != 1 {
		t.Fatalf("cluster-wide completed jobs = %v, want exactly 1 (zero recompute)", completed)
	}

	// Kill the owner without ceremony. Both survivors must still serve
	// the digest — from their own disk or by fetching the replica — and
	// still without recomputing.
	ownerNode.ts.Close()
	for _, n := range nodes {
		if n.id == ownerID {
			continue
		}
		var ok bool
		// The first request may race the down-marking of the dead owner;
		// the forward failure falls back to local service, so a couple of
		// attempts always converge.
		for attempt := 0; attempt < 5 && !ok; attempt++ {
			resp, err := http.Get(n.ts.URL + "/v1/layouts/" + digest)
			if err != nil {
				t.Fatal(err)
			}
			var res Result
			err = json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK && err == nil && res.Digest == digest
		}
		if !ok {
			t.Fatalf("node %s cannot serve %s after owner death", n.id, digest)
		}
	}
	completed = 0
	for _, n := range nodes {
		if n.id != ownerID {
			completed += seriesOrZero(t, n.ts, "layoutd_jobs_completed_total", nil)
		}
	}
	if completed != 0 {
		t.Fatalf("survivors recomputed %v jobs after owner death, want 0", completed)
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ---- trace retention vs concurrent corun ----

// TestTraceEvictionRacesCorun drives the trace LRU at capacity 1 while
// corun jobs replay both retained traces concurrently with submissions
// that force evictions. With a durable store behind the LRU every
// replay must still find its trace (disk fall-through); the point of
// the test is the -race interleaving of putMemory eviction against
// get's repopulation.
func TestTraceEvictionRacesCorun(t *testing.T) {
	st := openTestStore(t, store.Config{Dir: t.TempDir()})
	_, ts := newTestServer(t, Config{JobWorkers: 2, TraceCacheEntries: 1, Store: st})

	dA := submitDone(t, ts, "func-affinity")
	dB := submitDone(t, ts, "func-trg")
	raw, _ := recordedTrace(t)

	var wg sync.WaitGroup
	jobs := make(chan string, 16)
	// Half the goroutines hammer corun pairings (each replays both
	// traces), the other half resubmit the trace (cache-hit path calls
	// traces.put, churning the LRU front and evicting).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if g%2 == 0 {
					a, b := dA, dB
					if i%2 == 1 {
						a, b = b, a
					}
					v, errMsg, code := postJSON(t, ts, "/v1/corun", map[string]any{"a": a, "b": b})
					if code != http.StatusAccepted && code != http.StatusOK {
						// 429 under queue pressure is fine; anything else is not.
						if code != http.StatusTooManyRequests {
							t.Errorf("corun status %d: %s", code, errMsg)
						}
						continue
					}
					jobs <- v.ID
				} else {
					submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity")
				}
			}
		}(g)
	}
	wg.Wait()
	close(jobs)
	for id := range jobs {
		if v := waitJob(t, ts, id); v.Status != StatusDone {
			t.Fatalf("corun job %s under eviction pressure: %+v", id, v)
		}
	}
}
