package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Cross-node trace assembly. When a submission enters the cluster
// through a non-owner, the proxy hop records a forward span here, keyed
// by the job ID the owner minted. GET /v1/jobs/{id}/trace on the
// non-owner then follows the ID's node prefix to the owner, fetches its
// span timeline, and merges the local forward spans into one document —
// one trace ID, per-span node attribution, one shared time base.

// DefaultForwardLog bounds the jobs with retained forward spans. FIFO
// eviction: traces are a debugging aid with the same retention spirit
// as the debug-jobs ring, not durable state.
const DefaultForwardLog = 512

// maxForwardedBody caps how much of a forwarded response we buffer to
// learn the job ID; submissions' job views are small, so overflow means
// "not a job view" and the hop simply goes unlogged.
const maxForwardedBody = 1 << 20

// forwardSpan is one proxied hop observed by this node.
type forwardSpan struct {
	traceID string
	peer    string    // the node the request was forwarded to
	start   time.Time // wall-clock start of the hop
	dur     time.Duration
}

// forwardLog is a bounded map of job ID -> forward spans with FIFO
// eviction over job IDs.
type forwardLog struct {
	mu    sync.Mutex
	byJob map[string][]forwardSpan
	order []string // insertion order of job IDs, for eviction
	cap   int
}

func newForwardLog(capacity int) *forwardLog {
	if capacity <= 0 {
		capacity = DefaultForwardLog
	}
	return &forwardLog{byJob: make(map[string][]forwardSpan), cap: capacity}
}

func (l *forwardLog) record(jobID string, fs forwardSpan) {
	if jobID == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.byJob[jobID]; !ok {
		for len(l.order) >= l.cap {
			evict := l.order[0]
			l.order = l.order[1:]
			delete(l.byJob, evict)
		}
		l.order = append(l.order, jobID)
	}
	l.byJob[jobID] = append(l.byJob[jobID], fs)
}

func (l *forwardLog) get(jobID string) []forwardSpan {
	l.mu.Lock()
	defer l.mu.Unlock()
	spans := l.byJob[jobID]
	out := make([]forwardSpan, len(spans))
	copy(out, spans)
	return out
}

// relayForwardedSubmit copies a forwarded POST's response body to the
// client while teeing it into a capped buffer; if the body parses as a
// job view, the hop is recorded as a forward span under that job ID.
func (s *Server) relayForwardedSubmit(w io.Writer, body io.Reader, peerID, traceID string, start time.Time) {
	var buf bytes.Buffer
	_, _ = io.Copy(w, io.TeeReader(io.LimitReader(body, maxForwardedBody), &buf))
	_, _ = io.Copy(w, body) // relay any remainder past the capture cap
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &view); err != nil || view.ID == "" {
		return
	}
	s.fwdlog.record(view.ID, forwardSpan{
		traceID: traceID,
		peer:    peerID,
		start:   start,
		dur:     time.Since(start),
	})
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the job's recorded span
// timeline. Available at any point in the job's life — an in-progress
// job shows its open spans with dur_ms = -1. On a cluster node that
// does not hold the job, the ID's node prefix is followed to the owner
// and the owner's timeline is merged with this node's forward spans.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		tv := j.traceTimeline()
		if self := s.nodeID(); self != "" && s.cluster != nil {
			for i := range tv.Spans {
				tv.Spans[i].Node = self
			}
			tv.Nodes = []string{self}
		}
		writeJSON(w, http.StatusOK, tv)
		return
	}
	// Not held locally: in cluster mode, follow the node prefix — unless
	// the request was itself forwarded (loop prevention).
	if s.shouldForward(r) {
		if tv, peerID, code, err := s.assembleRemoteTrace(r, id); err == nil {
			w.Header().Set(headerForwardedTo, peerID)
			writeJSON(w, http.StatusOK, tv)
			return
		} else if code != http.StatusNotFound {
			httpError(w, code, err)
			return
		}
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
	return
}

// assembleRemoteTrace fetches the owner's span timeline for a
// node-prefixed job ID and merges this node's forward spans into it.
// A StatusNotFound code means "fall through to the local 404" — the ID
// carries no known remote prefix; other codes are relayed to the
// client as-is.
func (s *Server) assembleRemoteTrace(r *http.Request, id string) (traceView, string, int, error) {
	node, _, hasPrefix := strings.Cut(id, ".")
	if !hasPrefix || node == s.cluster.SelfID() {
		return traceView{}, "", http.StatusNotFound, fmt.Errorf("unknown job %q", id)
	}
	peer, known := s.cluster.PeerByID(node)
	if !known {
		return traceView{}, "", http.StatusNotFound, fmt.Errorf("unknown job %q", id)
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet,
		peer.URL+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return traceView{}, "", http.StatusInternalServerError, err
	}
	req.Header.Set(headerForward, s.cluster.SelfID())
	resp, err := s.peerClient.Do(req)
	if err != nil {
		s.cluster.ReportFailure(peer.ID)
		return traceView{}, "", http.StatusBadGateway,
			fmt.Errorf("trace fetch from %s failed: %w", peer.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Relay the owner's verdict (usually its own 404).
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var ev struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(body))
		if json.Unmarshal(body, &ev) == nil && ev.Error != "" {
			msg = ev.Error
		}
		code := resp.StatusCode
		if code == http.StatusNotFound {
			// Owner doesn't know the job either; keep the local 404 shape
			// but don't mask a more specific remote message.
			return traceView{}, "", http.StatusNotFound, fmt.Errorf("%s", msg)
		}
		return traceView{}, "", code, fmt.Errorf("trace fetch from %s: %s", peer.ID, msg)
	}
	var tv traceView
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxForwardedBody)).Decode(&tv); err != nil {
		return traceView{}, "", http.StatusBadGateway,
			fmt.Errorf("trace fetch from %s: bad body: %w", peer.ID, err)
	}
	s.mergeForwardSpans(&tv, peer.ID, id)
	return tv, peer.ID, http.StatusOK, nil
}

// mergeForwardSpans folds this node's forward spans for jobID into the
// owner's timeline. The owner's span offsets are relative to its
// recorder epoch (BeginUnixNS); the merged document re-bases everything
// onto the earliest contributing instant so the waterfall starts at 0,
// with the forward hop typically first — it began before the owner's
// recorder existed.
func (s *Server) mergeForwardSpans(tv *traceView, ownerID, jobID string) {
	self := s.nodeID()
	// The owner stamps nodes itself when clustered, but an older or
	// single-node peer may not have: attribute unstamped spans to it.
	for i := range tv.Spans {
		if tv.Spans[i].Node == "" {
			tv.Spans[i].Node = ownerID
		}
	}
	nodes := map[string]bool{ownerID: true}
	fwd := s.fwdlog.get(jobID)
	if len(fwd) > 0 {
		// New epoch: the earliest of the owner's epoch and the forward
		// hops' starts. When the owner's doc carries no epoch (empty
		// timeline), the forward spans form their own time base.
		epoch := tv.BeginUnixNS
		for _, f := range fwd {
			if ns := f.start.UnixNano(); epoch == 0 || ns < epoch {
				epoch = ns
			}
		}
		if shift := float64(tv.BeginUnixNS-epoch) / 1e6; tv.BeginUnixNS != 0 && shift != 0 {
			for i := range tv.Spans {
				tv.Spans[i].StartMS += shift
			}
		}
		for _, f := range fwd {
			if f.traceID != "" && tv.TraceID == "" {
				tv.TraceID = f.traceID
			}
			tv.Spans = append(tv.Spans, spanView{
				Name:    "peer.forward",
				Node:    self,
				StartMS: float64(f.start.UnixNano()-epoch) / 1e6,
				DurMS:   float64(f.dur) / float64(time.Millisecond),
			})
			nodes[self] = true
		}
		tv.BeginUnixNS = epoch
		sort.SliceStable(tv.Spans, func(i, j int) bool {
			return tv.Spans[i].StartMS < tv.Spans[j].StartMS
		})
	}
	tv.Nodes = tv.Nodes[:0]
	for n := range nodes {
		tv.Nodes = append(tv.Nodes, n)
	}
	sort.Strings(tv.Nodes)
}
