#!/bin/sh
# smoke_stream.sh — streaming-pipeline smoke test, run by
# `make smoke-stream` and the CI stream-smoke job:
#
#   1. build layoutd/layoutctl/tracedump,
#   2. record a trace and tile it with -repeat until the decoded form is
#      far larger than the daemon's streaming window,
#   3. start a buffered daemon (-stream-window 0), submit, and keep its
#      result digest as the oracle,
#   4. start a streaming daemon with a small -stream-window, -upload-dir,
#      and GOMEMLIMIT well below the decoded trace size; submit the same
#      trace over a plain streamed POST and require the identical digest,
#   5. check the streaming metrics: at least one streamed job, many
#      chunks, the buffered-bytes gauge back at zero, and the peak gauge
#      within the configured window,
#   6. exercise the resumable upload protocol: create a session, PATCH
#      the first chunk, replay it with a stale offset (the retry a client
#      sends after a dropped connection) and require 409 plus the durable
#      offset in the Upload-Offset header, then hand the half-finished
#      session to `layoutctl -upload -upload-id` to resume, finalize, and
#      wait — requiring a cache hit on the same digest,
#   7. require overlapped stream.decode/stream.feed spans in the job's
#      trace timeline, zero open upload sessions, and a clean drain.
#
# Set SMOKE_WORK to redirect the scratch dir somewhere that survives the
# run (CI points it at a directory uploaded as an artifact on failure);
# without it a mktemp dir is used and removed.
set -eu

if [ -n "${SMOKE_WORK:-}" ]; then
    WORK=$SMOKE_WORK
    mkdir -p "$WORK"
    KEEP_WORK=1
else
    WORK=$(mktemp -d)
    KEEP_WORK=0
fi
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    [ "$KEEP_WORK" = 1 ] || rm -rf "$WORK"
}
trap cleanup EXIT

PROG=458.sjeng
OPT=func-affinity
REPEAT=32
# 256 KiB of decoded trace in flight per streamed submission; the
# decoded trace itself is ~135x that (REPEAT * 276687 refs * 4 B).
WINDOW=262144
# Soft heap bound far below the decoded trace: a buffered submission
# could not respect this, a streaming one must.
MEMLIMIT=25MiB
CHUNK1=4194304

echo "smoke-stream: building binaries"
go build -o "$WORK/layoutd" ./cmd/layoutd
go build -o "$WORK/layoutctl" ./cmd/layoutctl
go build -o "$WORK/tracedump" ./cmd/tracedump

echo "smoke-stream: recording a $PROG trace tiled x$REPEAT"
"$WORK/tracedump" -prog "$PROG" -record "$WORK/t" -gran bb -repeat "$REPEAT"
TRACE_BYTES=$(wc -c <"$WORK/t.trace")
[ "$TRACE_BYTES" -gt $((8 * WINDOW)) ] || {
    echo "smoke-stream: trace too small ($TRACE_BYTES B) to exercise the window" >&2
    exit 1
}
echo "smoke-stream: trace file is $TRACE_BYTES bytes (window $WINDOW)"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

start_daemon() {
    # $1 = extra flags appended verbatim; $2 = log file; $3 = GOMEMLIMIT or ""
    rm -f "$WORK/addr"
    # shellcheck disable=SC2086
    env ${3:+GOMEMLIMIT=$3} "$WORK/layoutd" -addr 127.0.0.1:0 -jobs 2 -queue 8 \
        -opt-workers 4 $1 -ready-file "$WORK/addr" >"$2" 2>&1 &
    DAEMON_PID=$!
    i=0
    while [ ! -s "$WORK/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-stream: layoutd never became ready" >&2
            cat "$2" >&2
            exit 1
        fi
        kill -0 "$DAEMON_PID" 2>/dev/null || {
            echo "smoke-stream: layoutd exited early" >&2
            cat "$2" >&2
            exit 1
        }
        sleep 0.1
    done
    ADDR="http://$(cat "$WORK/addr")"
}

stop_daemon() {
    kill -TERM "$DAEMON_PID"
    i=0
    while kill -0 "$DAEMON_PID" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "smoke-stream: layoutd did not exit after SIGTERM" >&2
            exit 1
        fi
        sleep 0.1
    done
    wait "$DAEMON_PID" 2>/dev/null || true
    DAEMON_PID=""
}

echo "smoke-stream: buffered oracle run (-stream-window 0)"
start_daemon "-stream-window 0" "$WORK/layoutd-buffered.log" ""
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/buffered.json"
grep -q '"status": "done"' "$WORK/buffered.json"
DIGEST_BUF=$(grep -o '"digest": "[0-9a-f]*"' "$WORK/buffered.json" | head -1 | cut -d'"' -f4)
[ -n "$DIGEST_BUF" ] || { echo "smoke-stream: no buffered digest" >&2; exit 1; }
stop_daemon

echo "smoke-stream: streaming daemon (window $WINDOW, GOMEMLIMIT $MEMLIMIT)"
start_daemon "-stream-window $WINDOW -upload-dir $WORK/uploads" \
    "$WORK/layoutd-stream.log" "$MEMLIMIT"

echo "smoke-stream: streamed POST of the same trace"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/streamed.json"
grep -q '"status": "done"' "$WORK/streamed.json"
DIGEST_STREAM=$(grep -o '"digest": "[0-9a-f]*"' "$WORK/streamed.json" | head -1 | cut -d'"' -f4)
JOB_ID=$(grep -o '"id": "[^"]*"' "$WORK/streamed.json" | head -1 | cut -d'"' -f4)
[ "$DIGEST_STREAM" = "$DIGEST_BUF" ] || {
    echo "smoke-stream: streamed digest $DIGEST_STREAM != buffered $DIGEST_BUF" >&2
    exit 1
}
echo "smoke-stream: streamed digest matches buffered oracle"

echo "smoke-stream: checking streaming metrics"
fetch "$ADDR/metrics" >"$WORK/metrics1.txt"
grep -q '^layoutd_stream_jobs_total 1$' "$WORK/metrics1.txt"
CHUNKS=$(awk '/^layoutd_stream_chunks_total /{print $2}' "$WORK/metrics1.txt")
[ -n "$CHUNKS" ] && [ "$CHUNKS" -gt 8 ] || {
    echo "smoke-stream: expected many streamed chunks, got '$CHUNKS'" >&2
    exit 1
}
grep -q '^layoutd_stream_buffered_bytes 0$' "$WORK/metrics1.txt"
PEAK=$(awk '/^layoutd_stream_buffered_peak_bytes /{print $2}' "$WORK/metrics1.txt")
[ -n "$PEAK" ] && [ "$PEAK" -gt 0 ] && [ "$PEAK" -le "$WINDOW" ] || {
    echo "smoke-stream: peak buffered bytes '$PEAK' outside (0, $WINDOW]" >&2
    exit 1
}
echo "smoke-stream: $CHUNKS chunks streamed, peak $PEAK B buffered (window $WINDOW)"

if command -v curl >/dev/null 2>&1; then
    echo "smoke-stream: resumable upload with a simulated dropped connection"
    curl -fsS -X POST "$ADDR/v1/uploads" >"$WORK/session.json"
    UPLOAD_ID=$(grep -o '"id": "[^"]*"' "$WORK/session.json" | head -1 | cut -d'"' -f4)
    [ -n "$UPLOAD_ID" ] || { echo "smoke-stream: no upload session id" >&2; exit 1; }

    head -c "$CHUNK1" "$WORK/t.trace" >"$WORK/part1"
    curl -fsS -X PATCH -H "Upload-Offset: 0" \
        --data-binary @"$WORK/part1" "$ADDR/v1/uploads/$UPLOAD_ID" >/dev/null

    # A client that lost the 204 retries the same chunk: the daemon must
    # refuse with 409 and report the durable offset to resync from.
    CODE=$(curl -s -o /dev/null -D "$WORK/conflict.hdr" -w '%{http_code}' \
        -X PATCH -H "Upload-Offset: 0" \
        --data-binary @"$WORK/part1" "$ADDR/v1/uploads/$UPLOAD_ID")
    [ "$CODE" = "409" ] || { echo "smoke-stream: stale retry got $CODE, want 409" >&2; exit 1; }
    grep -iq "^upload-offset: $CHUNK1" "$WORK/conflict.hdr" || {
        echo "smoke-stream: 409 did not report durable offset $CHUNK1" >&2
        cat "$WORK/conflict.hdr" >&2
        exit 1
    }
    echo "smoke-stream: stale retry rejected with 409 at offset $CHUNK1"

    echo "smoke-stream: resuming the session with layoutctl -upload-id"
    "$WORK/layoutctl" -addr "$ADDR" -upload "$WORK/t.trace" -upload-id "$UPLOAD_ID" \
        -prog "$PROG" -opt "$OPT" -wait >"$WORK/resumed.json"
    grep -q '"status": "done"' "$WORK/resumed.json"
    grep -q '"cached": true' "$WORK/resumed.json"
    DIGEST_RESUMED=$(grep -o '"digest": "[0-9a-f]*"' "$WORK/resumed.json" | head -1 | cut -d'"' -f4)
    [ "$DIGEST_RESUMED" = "$DIGEST_BUF" ] || {
        echo "smoke-stream: resumed digest $DIGEST_RESUMED != buffered $DIGEST_BUF" >&2
        exit 1
    }
    echo "smoke-stream: resumed upload finalized to a cache hit on the same digest"
else
    echo "smoke-stream: curl not found; driving the full upload through layoutctl"
    "$WORK/layoutctl" -addr "$ADDR" -upload "$WORK/t.trace" \
        -prog "$PROG" -opt "$OPT" -wait >"$WORK/resumed.json"
    grep -q '"status": "done"' "$WORK/resumed.json"
    grep -q '"cached": true' "$WORK/resumed.json"
fi

echo "smoke-stream: checking the overlapped span timeline"
"$WORK/layoutctl" -addr "$ADDR" -trace "$JOB_ID" >"$WORK/trace.txt"
grep -q 'stream.decode' "$WORK/trace.txt"
grep -q 'stream.feed' "$WORK/trace.txt"

fetch "$ADDR/metrics" >"$WORK/metrics2.txt"
grep -q '^layoutd_upload_sessions 0$' "$WORK/metrics2.txt"

echo "smoke-stream: draining"
stop_daemon
grep -q 'drained cleanly' "$WORK/layoutd-stream.log"

echo "smoke-stream: OK"
