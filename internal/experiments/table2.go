package experiments

import (
	"fmt"

	"codelayout/internal/parallel"
	"codelayout/internal/progen"
	"codelayout/internal/stats"
)

// Table2Optimizers lists the three optimizers Table II reports (BB TRG
// "does not show improvement, so we omit it", as the paper does).
var Table2Optimizers = []string{"func-affinity", "bb-affinity", "func-trg"}

// CorunCell is one (program, optimizer, probe) co-run measurement.
type CorunCell struct {
	Probe string
	// Speedup is baseline-primary cycles / optimized-primary cycles in
	// the same co-run (both normalized against the original+original
	// pairing by construction: the peer always runs the baseline).
	Speedup float64
	// MissReductionHW and MissReductionSim are the relative miss-ratio
	// reductions on the hardware-counter and Pin-simulation paths.
	MissReductionHW  float64
	MissReductionSim float64
}

// Table2Row is one (program, optimizer) row: the per-probe cells and
// their averages.
type Table2Row struct {
	Name      string
	Optimizer string
	NA        bool
	Cells     []CorunCell
	// Averages across all probes.
	AvgSpeedup, AvgMissHW, AvgMissSim float64
}

// Table2Result reproduces Table II: average co-run speedup and miss
// ratio reduction of the three optimizers over the main suite. The
// per-probe cells also provide Figure 6's bars.
type Table2Result struct {
	Rows []Table2Row
}

// Table2 runs the full co-run matrix: every main-suite program, under
// every optimizer, against every main-suite probe running the baseline.
func Table2(w *Workspace) (Table2Result, error) {
	return Table2On(w, progen.MainSuiteNames)
}

// Table2On runs the co-run matrix on a subset of the suite (each
// program is both a primary and a probe). The tests use small subsets;
// the benchmark harness runs the full suite. The (primary, optimizer,
// probe) cells are independent measurements; they run concurrently and
// assemble into rows in the serial order, so the result is identical
// for any workspace worker count.
func Table2On(w *Workspace, names []string) (Table2Result, error) {
	var res Table2Result
	suite, err := w.resolve(names)
	if err != nil {
		return res, err
	}
	type cellJob struct{ pi, oi, qi int }
	var jobs []cellJob
	for pi := range suite {
		for oi, optName := range Table2Optimizers {
			if optName == "bb-affinity" && progen.BBReorderUnsupported[suite[pi].Name()] {
				continue
			}
			for qi := range suite {
				jobs = append(jobs, cellJob{pi, oi, qi})
			}
		}
	}
	cells, err := parallel.Map(w.Workers(), len(jobs), func(k int) (CorunCell, error) {
		j := jobs[k]
		return corunCell(suite[j.pi], Table2Optimizers[j.oi], suite[j.qi])
	})
	if err != nil {
		return res, err
	}
	k := 0
	for pi, primary := range suite {
		for oi, optName := range Table2Optimizers {
			row := Table2Row{Name: primary.Name(), Optimizer: optName}
			if optName == "bb-affinity" && progen.BBReorderUnsupported[primary.Name()] {
				row.NA = true
				res.Rows = append(res.Rows, row)
				continue
			}
			var sp, mhw, msim []float64
			for range suite {
				j, cell := jobs[k], cells[k]
				if j.pi != pi || j.oi != oi {
					return res, fmt.Errorf("experiments: table II cell order out of sync")
				}
				k++
				row.Cells = append(row.Cells, cell)
				sp = append(sp, cell.Speedup)
				mhw = append(mhw, cell.MissReductionHW)
				msim = append(msim, cell.MissReductionSim)
			}
			row.AvgSpeedup = stats.Mean(sp)
			row.AvgMissHW = stats.Mean(mhw)
			row.AvgMissSim = stats.Mean(msim)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// corunCell measures one primary+probe pairing: the optimized primary
// against the baseline probe, compared with the baseline primary against
// the same probe.
func corunCell(primary *Bench, optName string, probe *Bench) (CorunCell, error) {
	base, err := HWCorunTimed(primary, Baseline, probe, Baseline)
	if err != nil {
		return CorunCell{}, err
	}
	opt, err := HWCorunTimed(primary, optName, probe, Baseline)
	if err != nil {
		return CorunCell{}, err
	}
	simBase, err := SimCorun(primary, Baseline, probe, Baseline)
	if err != nil {
		return CorunCell{}, err
	}
	simOpt, err := SimCorun(primary, optName, probe, Baseline)
	if err != nil {
		return CorunCell{}, err
	}
	return CorunCell{
		Probe:   probe.Name(),
		Speedup: float64(base.Primary.Cycles) / float64(opt.Primary.Cycles),
		MissReductionHW: stats.Reduction(
			base.Counters.ICacheMissRatio(), opt.Counters.ICacheMissRatio()),
		MissReductionSim: stats.Reduction(simBase, simOpt),
	}, nil
}

// Row returns the row for a (program, optimizer), or nil.
func (r Table2Result) Row(name, optimizer string) *Table2Row {
	for i := range r.Rows {
		if r.Rows[i].Name == name && r.Rows[i].Optimizer == optimizer {
			return &r.Rows[i]
		}
	}
	return nil
}

// BestSpeedup returns the best average co-run speedup for a program
// across the three optimizers (the bold cells of Table II).
func (r Table2Result) BestSpeedup(name string) (string, float64) {
	bestOpt, best := "", 0.0
	for _, row := range r.Rows {
		if row.Name == name && !row.NA && row.AvgSpeedup > best {
			best = row.AvgSpeedup
			bestOpt = row.Optimizer
		}
	}
	return bestOpt, best
}

// String renders Table II.
func (r Table2Result) String() string {
	t := &stats.Table{Header: []string{
		"Benchmark", "Optimizer", "Speedup", "Miss red. (hw)", "Miss red. (sim)",
	}}
	for _, row := range r.Rows {
		if row.NA {
			t.Add(row.Name, row.Optimizer, "N/A", "N/A", "N/A")
			continue
		}
		t.Add(row.Name, row.Optimizer,
			stats.SignedPct(row.AvgSpeedup-1),
			stats.Pct(row.AvgMissHW),
			stats.Pct(row.AvgMissSim))
	}
	return "Table II: average co-run speedup and miss ratio reduction\n\n" + t.String()
}
