package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), ""); err == nil {
		t.Fatal("want error for uncreatable profile path")
	}
}
