// Package trace implements the profiling-trace substrate of the paper's
// system (§II-F): trimmed basic-block and function traces (Definition 1),
// popularity-based pruning (the Hashemi-style top-N selection the paper
// uses on 403.gcc's 8 GB trace), stride sampling, and a compact binary
// file format so traces can be recorded by an instrumentation run and
// consumed later by the locality models.
//
// A Trace is a sequence of symbol IDs. The same container holds
// basic-block traces (symbols are ir.BlockID values) and function traces
// (symbols are ir.FuncID values); the locality models in internal/affinity
// and internal/trg operate on either.
package trace

import "codelayout/internal/ir"

// Trace is a sequence of code-symbol occurrences.
type Trace struct {
	// Syms is the occurrence sequence. IDs must be non-negative.
	Syms []int32
}

// New wraps a symbol sequence in a Trace without copying.
func New(syms []int32) *Trace { return &Trace{Syms: syms} }

// Len returns the number of occurrences.
func (t *Trace) Len() int { return len(t.Syms) }

// MaxSym returns the largest symbol ID in the trace, or -1 if empty.
func (t *Trace) MaxSym() int32 {
	max := int32(-1)
	for _, s := range t.Syms {
		if s > max {
			max = s
		}
	}
	return max
}

// NumDistinct returns the number of distinct symbols.
func (t *Trace) NumDistinct() int {
	seen := make(map[int32]struct{})
	for _, s := range t.Syms {
		seen[s] = struct{}{}
	}
	return len(seen)
}

// Counts returns the occurrence count of every symbol, indexed by symbol
// ID (length MaxSym+1).
func (t *Trace) Counts() []int64 {
	n := t.MaxSym() + 1
	if n <= 0 {
		return nil
	}
	c := make([]int64, n)
	for _, s := range t.Syms {
		c[s]++
	}
	return c
}

// Trimmed returns a new trace with consecutive duplicate occurrences
// collapsed to one, per Definition 1 of the paper ("a sequence of basic
// blocks where no two consecutive blocks are the same").
func (t *Trace) Trimmed() *Trace {
	out := make([]int32, 0, len(t.Syms))
	prev := int32(-1)
	for _, s := range t.Syms {
		if s != prev {
			out = append(out, s)
			prev = s
		}
	}
	return &Trace{Syms: out}
}

// IsTrimmed reports whether no two consecutive occurrences are equal.
func (t *Trace) IsTrimmed() bool {
	for i := 1; i < len(t.Syms); i++ {
		if t.Syms[i] == t.Syms[i-1] {
			return false
		}
	}
	return true
}

// FuncTrace maps a basic-block trace to the trace of enclosing functions
// and trims it, per Definition 1's trimmed function trace.
func FuncTrace(p *ir.Program, blocks *Trace) *Trace {
	out := make([]int32, 0, len(blocks.Syms))
	prev := int32(-1)
	for _, s := range blocks.Syms {
		f := int32(p.Blocks[s].Fn)
		if f != prev {
			out = append(out, f)
			prev = f
		}
	}
	return &Trace{Syms: out}
}

// TopN returns the set of the n most frequently occurring symbols, the
// popularity selection the paper applies before analysis ("selecting the
// 10,000 most frequently executed basic blocks"). Ties are broken toward
// smaller symbol IDs so the result is deterministic.
func (t *Trace) TopN(n int) map[int32]bool {
	counts := t.Counts()
	type sc struct {
		sym int32
		cnt int64
	}
	list := make([]sc, 0, len(counts))
	for sym, cnt := range counts {
		if cnt > 0 {
			list = append(list, sc{int32(sym), cnt})
		}
	}
	// Selection by sort: deterministic and simple; trace alphabets are
	// bounded by the program's block count.
	for i := 1; i < len(list); i++ {
		for j := i; j > 0; j-- {
			a, b := list[j-1], list[j]
			if b.cnt > a.cnt || (b.cnt == a.cnt && b.sym < a.sym) {
				list[j-1], list[j] = b, a
			} else {
				break
			}
		}
	}
	if n > len(list) {
		n = len(list)
	}
	keep := make(map[int32]bool, n)
	for _, e := range list[:n] {
		keep[e.sym] = true
	}
	return keep
}

// Pruned returns a new trace containing only the occurrences of symbols
// for which keep returns true.
func (t *Trace) Pruned(keep func(int32) bool) *Trace {
	out := make([]int32, 0, len(t.Syms))
	for _, s := range t.Syms {
		if keep(s) {
			out = append(out, s)
		}
	}
	return &Trace{Syms: out}
}

// PruneTopN keeps only the occurrences of the n most popular symbols and
// reports the fraction of the original occurrences retained. The paper
// observes that top-10,000 pruning "typically keeps over 90% of the
// original trace".
func (t *Trace) PruneTopN(n int) (*Trace, float64) {
	keep := t.TopN(n)
	pruned := t.Pruned(func(s int32) bool { return keep[s] })
	if len(t.Syms) == 0 {
		return pruned, 1
	}
	return pruned, float64(len(pruned.Syms)) / float64(len(t.Syms))
}

// SampleStride returns a sub-trace consisting of windows of length
// windowLen taken every stride occurrences, the trace-sampling refinement
// mentioned in §II-F. stride must be >= windowLen.
func (t *Trace) SampleStride(windowLen, stride int) *Trace {
	if windowLen <= 0 || stride < windowLen {
		return &Trace{}
	}
	out := make([]int32, 0, len(t.Syms)/stride*windowLen+windowLen)
	for start := 0; start < len(t.Syms); start += stride {
		end := start + windowLen
		if end > len(t.Syms) {
			end = len(t.Syms)
		}
		out = append(out, t.Syms[start:end]...)
	}
	return &Trace{Syms: out}
}

// Concat appends other to a copy of t.
func (t *Trace) Concat(other *Trace) *Trace {
	out := make([]int32, 0, len(t.Syms)+len(other.Syms))
	out = append(out, t.Syms...)
	out = append(out, other.Syms...)
	return &Trace{Syms: out}
}
