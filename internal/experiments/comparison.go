package experiments

import (
	"codelayout/internal/core"
	"codelayout/internal/parallel"
	"codelayout/internal/progen"
	"codelayout/internal/stats"
)

// ComparisonRow is one (program, optimizer) entry of the extension
// comparison.
type ComparisonRow struct {
	Name      string
	Optimizer string
	NA        bool
	// SoloMissReduction is the hardware-counted solo miss reduction.
	SoloMissReduction float64
	// SoloSpeedup is base cycles / optimized cycles in solo run.
	SoloSpeedup float64
	// CorunMissReduction and CorunSpeedup measure the co-run against
	// the gcc probe running the baseline.
	CorunMissReduction float64
	CorunSpeedup       float64
	// OverheadBytes is the transformation's static code-size cost.
	OverheadBytes int64
}

// ComparisonResult is the extension experiment of DESIGN.md §6: the
// paper's four optimizers side by side with the related-work baselines
// it cites — Pettis-Hansen call-graph placement, the Conflict Miss
// Graph, and intra-procedural basic-block reordering. The paper argues
// (a) that whole-program models beat call-pair information and (b) that
// inter-procedural reordering beats intra-procedural when functions
// execute only a fraction of their bodies per invocation; this table
// quantifies both claims on the synthetic suite.
type ComparisonResult struct {
	Rows []ComparisonRow
}

// Comparison measures all optimizers and baselines on a subset of the
// main suite (or the full suite when names is nil). It fans out in two
// stages: baseline solo/co-run measurements per program, then one job
// per (program, optimizer) cell; rows assemble in the serial order.
func Comparison(w *Workspace, names []string) (ComparisonResult, error) {
	var res ComparisonResult
	if names == nil {
		names = progen.MainSuiteNames
	}
	gcc, err := w.Bench(progen.ProbeGCC)
	if err != nil {
		return res, err
	}
	suite, err := w.resolve(names)
	if err != nil {
		return res, err
	}
	type baseMeas struct {
		solo  HWSoloResult
		corun HWCorunResult
	}
	bases, err := parallel.Map(w.Workers(), len(suite), func(i int) (baseMeas, error) {
		solo, err := suite[i].HWSolo(Baseline)
		if err != nil {
			return baseMeas{}, err
		}
		corun, err := HWCorunTimed(suite[i], Baseline, gcc, Baseline)
		if err != nil {
			return baseMeas{}, err
		}
		return baseMeas{solo, corun}, nil
	})
	if err != nil {
		return res, err
	}
	opts := core.AllWithBaselines()
	rows, err := parallel.Map(w.Workers(), len(suite)*len(opts), func(k int) (ComparisonRow, error) {
		b, o := suite[k/len(opts)], opts[k%len(opts)]
		row := ComparisonRow{Name: b.Name(), Optimizer: o.Name()}
		if o.Gran == core.GranBasicBlock && !o.Intra && progen.BBReorderUnsupported[b.Name()] {
			row.NA = true
			return row, nil
		}
		l, err := b.Layout(o.Name())
		if err != nil {
			return row, err
		}
		row.OverheadBytes = l.JumpOverheadBytes()
		solo, err := b.HWSolo(o.Name())
		if err != nil {
			return row, err
		}
		corun, err := HWCorunTimed(b, o.Name(), gcc, Baseline)
		if err != nil {
			return row, err
		}
		base := bases[k/len(opts)]
		row.SoloMissReduction = stats.Reduction(
			base.solo.Counters.ICacheMissRatio(), solo.Counters.ICacheMissRatio())
		row.SoloSpeedup = float64(base.solo.Thread.Cycles) / float64(solo.Thread.Cycles)
		row.CorunMissReduction = stats.Reduction(
			base.corun.Counters.ICacheMissRatio(), corun.Counters.ICacheMissRatio())
		row.CorunSpeedup = float64(base.corun.Primary.Cycles) / float64(corun.Primary.Cycles)
		return row, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// AverageByOptimizer aggregates the mean co-run speedup per optimizer.
func (r ComparisonResult) AverageByOptimizer() map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, row := range r.Rows {
		if row.NA {
			continue
		}
		sums[row.Optimizer] += row.CorunSpeedup
		counts[row.Optimizer]++
	}
	out := make(map[string]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// String renders the comparison table.
func (r ComparisonResult) String() string {
	t := &stats.Table{Header: []string{
		"Benchmark", "Optimizer", "solo miss red.", "solo speedup",
		"corun miss red.", "corun speedup", "overhead(B)",
	}}
	for _, row := range r.Rows {
		if row.NA {
			t.Add(row.Name, row.Optimizer, "N/A", "N/A", "N/A", "N/A", "N/A")
			continue
		}
		t.Add(row.Name, row.Optimizer,
			stats.Pct(row.SoloMissReduction),
			stats.SignedPct(row.SoloSpeedup-1),
			stats.Pct(row.CorunMissReduction),
			stats.SignedPct(row.CorunSpeedup-1),
			itoa(row.OverheadBytes))
	}
	return "Extension: paper optimizers vs related-work baselines (gcc probe)\n\n" + t.String()
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
