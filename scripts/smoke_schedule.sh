#!/bin/sh
# smoke_schedule.sh — scheduling-service smoke test, run by
# `make smoke-schedule` and the CI schedule-smoke job:
#
#   1. build layoutd/layoutctl/tracedump,
#   2. record a trace and optimize it under two optimizers, keeping both
#      cached layout digests,
#   3. POST /v1/corun on the pair via `layoutctl -corun` and require a
#      finished pair document with a positive pair cost,
#   4. resubmit the pair in swapped order and require a pair-cache hit,
#   5. POST /v1/schedule over {A, B, A, B} on a 2x2 topology via
#      `layoutctl -schedule` and require: symmetric matrix with zero
#      diagonal, a placement covering all four slots whose cost does not
#      exceed the enumerated worst case, and the metrics trail
#      (corun jobs, schedule pairs, pair-cache hits),
#   6. SIGTERM and require a clean drain.
#
# Set SMOKE_WORK to redirect the scratch dir somewhere that survives the
# run (CI points it at a directory uploaded as an artifact on failure);
# without it a mktemp dir is used and removed.
set -eu

if [ -n "${SMOKE_WORK:-}" ]; then
    WORK=$SMOKE_WORK
    mkdir -p "$WORK"
    KEEP_WORK=1
else
    WORK=$(mktemp -d)
    KEEP_WORK=0
fi
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    [ "$KEEP_WORK" = 1 ] || rm -rf "$WORK"
}
trap cleanup EXIT

PROG=458.sjeng
OPT_A=func-affinity
OPT_B=func-trg

command -v jq >/dev/null 2>&1 || { echo "smoke-schedule: jq is required" >&2; exit 1; }

echo "smoke-schedule: building binaries"
go build -o "$WORK/layoutd" ./cmd/layoutd
go build -o "$WORK/layoutctl" ./cmd/layoutctl
go build -o "$WORK/tracedump" ./cmd/tracedump

echo "smoke-schedule: recording a $PROG trace"
"$WORK/tracedump" -prog "$PROG" -record "$WORK/t" -gran bb

echo "smoke-schedule: starting layoutd"
"$WORK/layoutd" -addr 127.0.0.1:0 -jobs 2 -queue 8 \
    -ready-file "$WORK/addr" >"$WORK/layoutd.log" 2>&1 &
DAEMON_PID=$!

i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-schedule: layoutd never became ready" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "smoke-schedule: layoutd exited early" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    }
    sleep 0.1
done
ADDR="http://$(cat "$WORK/addr")"
echo "smoke-schedule: layoutd at $ADDR"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

fetch "$ADDR/healthz" | grep -q ok

echo "smoke-schedule: optimizing the trace under $OPT_A and $OPT_B"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT_A" -wait -json >"$WORK/opt-a.json"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT_B" -wait -json >"$WORK/opt-b.json"
DIG_A=$(jq -r .digest "$WORK/opt-a.json")
DIG_B=$(jq -r .digest "$WORK/opt-b.json")
[ -n "$DIG_A" ] && [ -n "$DIG_B" ] && [ "$DIG_A" != "$DIG_B" ] || {
    echo "smoke-schedule: bad layout digests '$DIG_A' / '$DIG_B'" >&2
    exit 1
}

echo "smoke-schedule: co-run analysis of $OPT_A vs $OPT_B"
"$WORK/layoutctl" -addr "$ADDR" -corun "$DIG_A,$DIG_B" -json >"$WORK/corun.json"
jq -e '.status == "done" and .corun.pairCost > 0' "$WORK/corun.json" >/dev/null
jq -e '.corun.a.missCorun >= .corun.a.missSolo' "$WORK/corun.json" >/dev/null
PAIR_DIGEST=$(jq -r .corun.digest "$WORK/corun.json")

echo "smoke-schedule: human-readable pair report"
"$WORK/layoutctl" -addr "$ADDR" -corun "$DIG_A,$DIG_B" >"$WORK/corun.txt"
grep -q 'defensiveness' "$WORK/corun.txt"
grep -q 'politeness' "$WORK/corun.txt"

echo "smoke-schedule: swapped resubmission must hit the pair cache"
"$WORK/layoutctl" -addr "$ADDR" -corun "$DIG_B,$DIG_A" -json >"$WORK/corun-swap.json"
jq -e --arg d "$PAIR_DIGEST" '.cached == true and .digest == $d' "$WORK/corun-swap.json" >/dev/null

echo "smoke-schedule: pair document is addressable by digest"
fetch "$ADDR/v1/corun/$PAIR_DIGEST" | jq -e --arg d "$PAIR_DIGEST" '.digest == $d' >/dev/null

echo "smoke-schedule: placing {A, B, A, B} on a 2x2 topology"
"$WORK/layoutctl" -addr "$ADDR" \
    -schedule "$DIG_A,$DIG_B,$DIG_A,$DIG_B" -domains 2 -slots 2 -json >"$WORK/schedule.json"
jq -e '.status == "done"' "$WORK/schedule.json" >/dev/null

echo "smoke-schedule: matrix must be symmetric with a zero diagonal"
jq -e '
  .schedule.matrix as $m | ($m | length) as $n |
  ($n == 4) and
  ([range(0; $n) as $i | range(0; $n) as $j |
    ($m[$i][$j] == $m[$j][$i]) and (($i != $j) or ($m[$i][$j] == 0))] | all)
' "$WORK/schedule.json" >/dev/null

echo "smoke-schedule: placement must cover all slots and beat the worst case"
jq -e '
  .schedule as $s |
  ($s.placement.domains | map(length) | add) == 4 and
  $s.worstKnown and
  $s.placement.cost <= $s.worstCost
' "$WORK/schedule.json" >/dev/null

echo "smoke-schedule: rendering the placement table"
"$WORK/layoutctl" -addr "$ADDR" \
    -schedule "$DIG_A,$DIG_B,$DIG_A,$DIG_B" -domains 2 -slots 2 >"$WORK/schedule.txt"
grep -q 'pairwise interference' "$WORK/schedule.txt"
grep -q 'domain 0:' "$WORK/schedule.txt"
grep -q 'domain 1:' "$WORK/schedule.txt"
grep -q 'cached=true' "$WORK/schedule.txt"

echo "smoke-schedule: checking the metrics trail"
fetch "$ADDR/metrics" >"$WORK/metrics.txt"
grep -q '^layoutd_corun_jobs_total 3$' "$WORK/metrics.txt"
grep -q '^layoutd_schedule_jobs_total 2$' "$WORK/metrics.txt"
# {A, B, A, B} has three distinct pairs: (A,B) from the pair cache plus
# (A,A) and (B,B) simulated fresh.
grep -q '^layoutd_schedule_pairs_total 2$' "$WORK/metrics.txt"
# Hits: the repeated and swapped corun requests, plus (A,B) inside the
# schedule matrix.
PAIR_HITS=$(awk '/^layoutd_pair_cache_hits_total /{print $2}' "$WORK/metrics.txt")
[ "${PAIR_HITS:-0}" -ge 3 ] || {
    echo "smoke-schedule: expected >=3 pair cache hits, got '$PAIR_HITS'" >&2
    exit 1
}

echo "smoke-schedule: draining daemon with SIGTERM"
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-schedule: layoutd did not exit after SIGTERM" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$DAEMON_PID" 2>/dev/null || true
grep -q 'drained cleanly' "$WORK/layoutd.log"
DAEMON_PID=""

echo "smoke-schedule: OK"
