package experiments

import (
	"math"

	"codelayout/internal/parallel"
	"codelayout/internal/progen"
	"codelayout/internal/stats"
	"codelayout/internal/textplot"
)

// Figure5Row is one program's solo-run effect for one optimizer.
type Figure5Row struct {
	Name string
	// NA marks the paper's "N/A" cells (BB reordering on perlbench and
	// povray).
	NA bool
	// Speedup is base cycles / optimized cycles (1.0 = unchanged).
	Speedup float64
	// MissReduction is the relative I-cache miss-ratio reduction as
	// seen by the hardware counters.
	MissReduction float64
}

// Figure5Result reproduces Figure 5: the solo-run performance speedup
// (a) and instruction-miss reduction (b) of the two affinity optimizers
// on the main suite.
type Figure5Result struct {
	FuncAffinity []Figure5Row
	BBAffinity   []Figure5Row
}

// Figure5 measures the solo-run effect of the affinity optimizers.
func Figure5(w *Workspace) (Figure5Result, error) {
	return Figure5On(w, progen.MainSuiteNames)
}

// Figure5On measures the solo-run effect on a subset of the suite. The
// per-program measurements are independent; they run concurrently and
// the two panels assemble in suite order.
func Figure5On(w *Workspace, names []string) (Figure5Result, error) {
	var res Figure5Result
	suite, err := w.resolve(names)
	if err != nil {
		return res, err
	}
	rows, err := parallel.Map(w.Workers(), len(suite), func(i int) ([2]Figure5Row, error) {
		b := suite[i]
		var out [2]Figure5Row
		base, err := b.HWSolo(Baseline)
		if err != nil {
			return out, err
		}
		for oi, opt := range []struct {
			name string
			na   bool
		}{
			{"func-affinity", false},
			{"bb-affinity", progen.BBReorderUnsupported[b.Name()]},
		} {
			if opt.na {
				out[oi] = Figure5Row{Name: b.Name(), NA: true}
				continue
			}
			o, err := b.HWSolo(opt.name)
			if err != nil {
				return out, err
			}
			out[oi] = Figure5Row{
				Name:    b.Name(),
				Speedup: float64(base.Thread.Cycles) / float64(o.Thread.Cycles),
				MissReduction: stats.Reduction(
					base.Counters.ICacheMissRatio(), o.Counters.ICacheMissRatio()),
			}
		}
		return out, nil
	})
	if err != nil {
		return res, err
	}
	for _, pair := range rows {
		res.FuncAffinity = append(res.FuncAffinity, pair[0])
		res.BBAffinity = append(res.BBAffinity, pair[1])
	}
	return res, nil
}

// MaxMissReduction returns the largest miss reduction across both
// optimizers (the paper: "up to 34% by function reordering and 37% by BB
// reordering" — solo).
func (r Figure5Result) MaxMissReduction() float64 {
	best := math.Inf(-1)
	for _, rows := range [][]Figure5Row{r.FuncAffinity, r.BBAffinity} {
		for _, row := range rows {
			if !row.NA && row.MissReduction > best {
				best = row.MissReduction
			}
		}
	}
	return best
}

// String renders the two panels.
func (r Figure5Result) String() string {
	out := "Figure 5: solo-run effect of the two affinity optimizers\n\n"
	render := func(title string, rows []Figure5Row, pick func(Figure5Row) float64, base float64, format string) string {
		c := &textplot.Chart{Title: title, Width: 30, Format: format, Baseline: base}
		for _, row := range rows {
			if row.NA {
				c.Add(row.Name+" (N/A)", base)
				continue
			}
			c.Add(row.Name, pick(row))
		}
		return c.String() + "\n"
	}
	out += render("(a) speedup, function reordering", r.FuncAffinity,
		func(x Figure5Row) float64 { return x.Speedup }, 1, "%.3fx")
	out += render("(a) speedup, BB reordering", r.BBAffinity,
		func(x Figure5Row) float64 { return x.Speedup }, 1, "%.3fx")
	out += render("(b) miss reduction, function reordering", r.FuncAffinity,
		func(x Figure5Row) float64 { return 100 * x.MissReduction }, 0, "%.1f%%")
	out += render("(b) miss reduction, BB reordering", r.BBAffinity,
		func(x Figure5Row) float64 { return 100 * x.MissReduction }, 0, "%.1f%%")
	return out
}
