package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	g := r.Gauge("test_depth", "Depth.")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Ops.",
		"# TYPE test_ops_total counter",
		"test_ops_total 5",
		"# TYPE test_depth gauge",
		"test_depth 5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.CounterFunc("test_live_total", "Live counter.", func() int64 { return n })
	r.GaugeFunc("test_live_gauge", "Live gauge.", func() int64 { return n * 2 })
	n = 21
	out := render(t, r)
	if !strings.Contains(out, "test_live_total 21\n") || !strings.Contains(out, "test_live_gauge 42\n") {
		t.Fatalf("func metrics not rendered live:\n%s", out)
	}
}

func TestRegistryCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_by_kind_total", "By kind.", "kind")
	v.With("b").Add(2)
	v.With("a").Inc()
	if got := v.With("b"); got.Value() != 2 {
		t.Fatalf("With not cached: %d", got.Value())
	}
	out := render(t, r)
	ia := strings.Index(out, `test_by_kind_total{kind="a"} 1`)
	ib := strings.Index(out, `test_by_kind_total{kind="b"} 2`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("labeled series missing or unsorted:\n%s", out)
	}
}

func TestRegistryGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_peer_health", "Peer health.", "peer")
	v.With("n2").Set(2)
	v.With("n1").Set(1)
	v.With("n2").Set(0)
	if got := v.With("n2"); got.Value() != 0 {
		t.Fatalf("With not cached: %d", got.Value())
	}
	out := render(t, r)
	ia := strings.Index(out, `test_peer_health{peer="n1"} 1`)
	ib := strings.Index(out, `test_peer_health{peer="n2"} 0`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("labeled gauge series missing or unsorted:\n%s", out)
	}
	exp, err := LintPrometheusText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition failed lint: %v\n%s", err, out)
	}
	if exp.Types["test_peer_health"] != "gauge" {
		t.Fatalf("types = %v", exp.Types)
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-55.55) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	out := render(t, r)
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.1"} 1`,
		`test_lat_seconds_bucket{le="1"} 2`,
		`test_lat_seconds_bucket{le="10"} 3`,
		`test_lat_seconds_bucket{le="+Inf"} 4`,
		`test_lat_seconds_sum 55.55`,
		`test_lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_phase_seconds", "Phase.", "phase", []float64{1})
	v.With("decode").Observe(0.5)
	v.With("emit").Observe(2)
	out := render(t, r)
	for _, want := range []string{
		`test_phase_seconds_bucket{phase="decode",le="1"} 1`,
		`test_phase_seconds_bucket{phase="decode",le="+Inf"} 1`,
		`test_phase_seconds_bucket{phase="emit",le="1"} 0`,
		`test_phase_seconds_bucket{phase="emit",le="+Inf"} 1`,
		`test_phase_seconds_sum{phase="emit"} 2`,
		`test_phase_seconds_count{phase="decode"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("test_dup_total", "y")
}

func TestRegistryInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad-name", "x")
}

func TestRegistryBadBucketsPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets did not panic")
		}
	}()
	r.Histogram("test_bad_seconds", "x", []float64{1, 1})
}

// TestRegistryExpositionLints is the strict end-to-end check: a registry
// exercising every metric kind must produce output our own linter (and
// therefore a Prometheus scraper) accepts.
func TestRegistryExpositionLints(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "A.").Inc()
	r.Gauge("test_b", "B.").Set(3)
	r.CounterFunc("test_c_total", "C.", func() int64 { return 9 })
	v := r.CounterVec("test_d_total", "D.", "kind")
	v.With("x").Inc()
	v.With("y").Add(2)
	r.Histogram("test_e_seconds", "E.", nil).Observe(0.42)
	hv := r.HistogramVec("test_f_seconds", "F.", "phase", []float64{0.1, 1})
	hv.With("p1").Observe(0.05)
	hv.With("p2").Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := LintPrometheusText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition failed lint: %v\n%s", err, buf.String())
	}
	if exp.Types["test_e_seconds"] != "histogram" {
		t.Fatalf("types = %v", exp.Types)
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := newHistogram(DefBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.01) })
	if allocs != 0 {
		t.Fatalf("Observe allocs = %v, want 0", allocs)
	}
}

func TestCounterIncZeroAlloc(t *testing.T) {
	c := &Counter{}
	allocs := testing.AllocsPerRun(1000, func() { c.Inc() })
	if allocs != 0 {
		t.Fatalf("Inc allocs = %v, want 0", allocs)
	}
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func BenchmarkRegistryCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkRegistryHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "x", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) / 1024)
	}
}
