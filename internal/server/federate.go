package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"codelayout/internal/cluster"
	"codelayout/internal/obs"
)

// Metrics federation: GET /v1/cluster/metrics scrapes every live peer's
// /metrics concurrently, relabels each family with a node label, and
// serves one merged, lint-clean Prometheus exposition — so one scrape
// target (any node) covers the whole fleet. Unreachable peers degrade
// to a "# federation:" comment rather than failing the scrape.

// peerScrapeTimeout bounds one peer's /metrics fetch during federation.
const peerScrapeTimeout = 5 * time.Second

// maxScrapeBytes caps how much of a peer exposition federation reads.
const maxScrapeBytes = 8 << 20

// fedFamily accumulates one metric family's merged output: TYPE/HELP
// once (first exposition wins), then every node's samples in node
// order, each with the node label injected.
type fedFamily struct {
	name  string
	typ   string
	help  string
	lines []string
}

// handleClusterMetrics is GET /v1/cluster/metrics.
func (s *Server) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	type scrape struct {
		node string
		exp  *obs.Exposition
		err  error
		skip string // non-empty: peer not scraped (down), with reason
	}

	selfID := s.nodeID()
	if selfID == "" {
		selfID = "self"
	}

	var scrapes []scrape
	if cl := s.cluster; cl != nil {
		peers := cl.Peers() // sorted by ID, includes self
		scrapes = make([]scrape, len(peers))
		var wg sync.WaitGroup
		for i, p := range peers {
			if p.ID == cl.SelfID() {
				exp, err := s.selfExposition()
				scrapes[i] = scrape{node: p.ID, exp: exp, err: err}
				continue
			}
			if cl.State(p.ID) == cluster.StateDown {
				scrapes[i] = scrape{node: p.ID, skip: "down"}
				continue
			}
			wg.Add(1)
			go func(i int, p cluster.Peer) {
				defer wg.Done()
				exp, err := s.scrapePeer(r.Context(), p)
				scrapes[i] = scrape{node: p.ID, exp: exp, err: err}
			}(i, p)
		}
		wg.Wait()
	} else {
		exp, err := s.selfExposition()
		scrapes = []scrape{{node: selfID, exp: exp, err: err}}
	}

	famIndex := make(map[string]*fedFamily)
	var order []*fedFamily
	var notes []string
	covered := 0
	for _, sc := range scrapes {
		if sc.skip != "" {
			notes = append(notes, fmt.Sprintf("# federation: skipped node %s (%s)", sc.node, sc.skip))
			continue
		}
		if sc.err != nil {
			s.metrics.federationScrapeErrors.Inc()
			s.logger.Warn("federation scrape failed", "node", sc.node, "error", sc.err)
			notes = append(notes, fmt.Sprintf("# federation: scrape of node %s failed", sc.node))
			continue
		}
		covered++
		for _, sr := range sc.exp.Series {
			fam := sr.Name
			if _, ok := sc.exp.Types[fam]; !ok {
				if f := obs.FamilyOf(sr.Name); f != sr.Name {
					fam = f
				}
			}
			ff := famIndex[fam]
			if ff == nil {
				ff = &fedFamily{name: fam}
				famIndex[fam] = ff
				order = append(order, ff)
			}
			if ff.typ == "" {
				ff.typ = sc.exp.Types[fam]
			}
			if ff.help == "" {
				ff.help = sc.exp.Helps[fam]
			}
			ff.lines = append(ff.lines, federatedSampleLine(sc.node, sr))
		}
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "# federation: layoutd cluster metrics, %d/%d nodes\n", covered, len(scrapes))
	for _, n := range notes {
		b.WriteString(n)
		b.WriteByte('\n')
	}
	for _, ff := range order {
		if ff.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", ff.name, ff.help)
		}
		if ff.typ != "" {
			fmt.Fprintf(&b, "# TYPE %s %s\n", ff.name, ff.typ)
		}
		for _, line := range ff.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}

// selfExposition renders this node's registry and re-parses it, so the
// local samples flow through the exact same relabeling path as peers'.
func (s *Server) selfExposition() (*obs.Exposition, error) {
	var buf bytes.Buffer
	if err := s.metrics.reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return obs.ParsePrometheusText(&buf)
}

// scrapePeer fetches and parses one peer's /metrics.
func (s *Server) scrapePeer(ctx context.Context, p cluster.Peer) (*obs.Exposition, error) {
	ctx, cancel := context.WithTimeout(ctx, peerScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return obs.ParsePrometheusText(io.LimitReader(resp.Body, maxScrapeBytes))
}

// federatedSampleLine renders one sample with the node label injected
// first and the original labels (sorted) preserved after it.
func federatedSampleLine(node string, sr obs.Series) string {
	var b strings.Builder
	b.WriteString(sr.Name)
	b.WriteString(`{node=`)
	b.WriteString(strconv.Quote(node))
	if len(sr.Labels) > 0 {
		keys := make([]string, 0, len(sr.Labels))
		for k := range sr.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteByte(',')
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(strconv.Quote(sr.Labels[k]))
		}
	}
	b.WriteString("} ")
	b.WriteString(formatPromValue(sr.Value))
	return b.String()
}

func formatPromValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
