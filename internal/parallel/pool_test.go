package parallel

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(4, 64)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		if !p.TrySubmit(func(context.Context) { n.Add(1) }) {
			t.Fatalf("submit %d rejected", i)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", n.Load())
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	// Occupy the single worker.
	if !p.TrySubmit(func(context.Context) { close(started); <-release }) {
		t.Fatal("first submit rejected")
	}
	<-started
	// Fill the queue slot.
	if !p.TrySubmit(func(context.Context) {}) {
		t.Fatal("queue-filling submit rejected")
	}
	// Queue full: rejected without blocking.
	if p.TrySubmit(func(context.Context) {}) {
		t.Fatal("submit accepted beyond queue depth")
	}
	if p.QueueDepth() != 1 || p.Running() != 1 {
		t.Fatalf("depth=%d running=%d, want 1/1", p.QueueDepth(), p.Running())
	}
	close(release)
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.TrySubmit(func(context.Context) {}) {
		t.Fatal("submit accepted after shutdown")
	}
}

func TestPoolShutdownDrainsQueued(t *testing.T) {
	p := NewPool(1, 16)
	var order []int
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		i := i
		p.TrySubmit(func(context.Context) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		})
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(order) != 5 {
		t.Fatalf("drained %d of 5 queued tasks", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker ran out of order: %v", order)
		}
	}
}

// TestPoolShutdownAbandonsWedgedWorker: a task that ignores
// cancellation must not hang Shutdown forever — after the grace period
// the pool abandons it and reports an error, so the daemon's SIGTERM
// path can exit nonzero instead of wedging.
func TestPoolShutdownAbandonsWedgedWorker(t *testing.T) {
	oldGrace := AbandonGrace
	AbandonGrace = 50 * time.Millisecond
	t.Cleanup(func() { AbandonGrace = oldGrace })

	p := NewPool(1, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // unwedge the leaked worker at test end
	ok := p.TrySubmit(func(ctx context.Context) {
		close(entered)
		<-release // wedged: never observes ctx
	})
	if !ok {
		t.Fatal("submit rejected")
	}
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Shutdown(ctx)
	if err == nil {
		t.Fatal("Shutdown of a wedged pool returned nil")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown error %v does not wrap the deadline", err)
	}
	if !strings.Contains(err.Error(), "abandoning") {
		t.Fatalf("Shutdown error %q does not name the abandonment", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %s; the bound did not hold", elapsed)
	}
}

func TestPoolShutdownDeadlineCancelsTasks(t *testing.T) {
	p := NewPool(1, 1)
	entered := make(chan struct{})
	var sawCancel atomic.Bool
	ok := p.TrySubmit(func(ctx context.Context) {
		close(entered)
		<-ctx.Done()
		sawCancel.Store(true)
	})
	if !ok {
		t.Fatal("submit rejected")
	}
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	if !sawCancel.Load() {
		t.Fatal("in-flight task never saw cancellation")
	}
}
