package cluster

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Anti-entropy: the repair loop that makes replication eventually
// consistent. Write-behind replication is lossy by design — a push to a
// down peer is skipped, a full queue drops, a crashed owner never
// enqueues — and every one of those losses is invisible to the reader
// until a fetch misses. The sweeper closes the loop: periodically each
// node lists every peer's key set (GET /v1/store?format=keys), computes
// which locally held keys the peer should hold (rendezvous top-RF
// membership) but does not, and re-pushes them through the same
// digest-authenticated PUT /v1/replicate/{key} path the write-behind
// queue uses. Content addressing makes the repair blindly safe: pushing
// a key a peer already has rewrites identical bytes.
//
// The sweep is jittered (a fleet restarted together must not sweep in
// lockstep), rate-limited (MaxPerSweep repairs per sweep with a pause
// between pushes, so repair never competes with serving), degraded-aware
// (a degraded peer is memory-only — pushing blobs at it would be
// politeness-theater; it is skipped until its disk heals), and resumable
// (a per-peer cursor survives budget exhaustion and cancellation, so the
// next sweep continues where this one stopped instead of re-walking the
// prefix).

// Anti-entropy defaults for zero Config values.
const (
	// DefaultAntiEntropyMaxPerSweep bounds repairs pushed per sweep.
	DefaultAntiEntropyMaxPerSweep = 128
	// DefaultAntiEntropyPause is slept between repair pushes.
	DefaultAntiEntropyPause = 10 * time.Millisecond
	// maxKeyListBytes bounds a peer's key listing (66 bytes per key —
	// this covers tens of millions of keys).
	maxKeyListBytes = 1 << 31
)

// AntiEntropyStats is a snapshot of the sweeper's lifetime counters.
type AntiEntropyStats struct {
	Sweeps        int64 // completed sweeps
	Repaired      int64 // keys re-pushed to a peer that was missing them
	Bytes         int64 // payload bytes re-pushed
	LastSweepUnix int64 // unix seconds of the last completed sweep, 0 if none
}

// AntiEntropySweep summarizes one sweep for the hook (metrics, spans).
type AntiEntropySweep struct {
	Peers     int   // peers whose key sets were exchanged
	Missing   int   // replica-set keys found missing on a peer
	Repaired  int   // keys re-pushed successfully
	Bytes     int64 // payload bytes re-pushed
	Truncated bool  // the rate-limit budget ran out; the cursor resumes next sweep
	Duration  time.Duration
}

// aeSource is what the sweeper reads from the local node: the key set
// and blob payloads. The server wires these to the durable store; keys
// returning nil means the store is unavailable (degraded) and the sweep
// is skipped.
type aeSource struct {
	keys func() []string
	get  func(key string) ([]byte, bool)
}

type antiEntropy struct {
	c           *Cluster
	interval    time.Duration
	maxPerSweep int
	pause       time.Duration

	source atomic.Value // aeSource
	hook   atomic.Value // func(AntiEntropySweep)

	sweeps   atomic.Int64
	repaired atomic.Int64
	bytes    atomic.Int64
	last     atomic.Int64

	mu     sync.Mutex
	cursor map[string]string // peer ID -> last repaired key (resume point)
}

func newAntiEntropy(c *Cluster, interval time.Duration, maxPerSweep int, pause time.Duration) *antiEntropy {
	if maxPerSweep <= 0 {
		maxPerSweep = DefaultAntiEntropyMaxPerSweep
	}
	if pause <= 0 {
		pause = DefaultAntiEntropyPause
	}
	return &antiEntropy{
		c:           c,
		interval:    interval,
		maxPerSweep: maxPerSweep,
		pause:       pause,
		cursor:      make(map[string]string),
	}
}

// SetAntiEntropySource wires the sweeper to the local store: keys lists
// every locally held key (nil when the store is unavailable — the sweep
// is skipped), get returns a key's payload. Set before Start.
func (c *Cluster) SetAntiEntropySource(keys func() []string, get func(key string) ([]byte, bool)) {
	c.ae.source.Store(aeSource{keys: keys, get: get})
}

// SetAntiEntropyHook installs fn, called after every completed sweep.
// Used to export the antientropy.sweep span timing.
func (c *Cluster) SetAntiEntropyHook(fn func(AntiEntropySweep)) {
	c.ae.hook.Store(fn)
}

// AntiEntropyStats snapshots the sweeper's counters.
func (c *Cluster) AntiEntropyStats() AntiEntropyStats {
	a := c.ae
	return AntiEntropyStats{
		Sweeps:        a.sweeps.Load(),
		Repaired:      a.repaired.Load(),
		Bytes:         a.bytes.Load(),
		LastSweepUnix: a.last.Load(),
	}
}

// AntiEntropySweepNow runs one sweep synchronously — the deterministic
// entry point for tests and operators (the background loop calls the
// same function on its jittered timer).
func (c *Cluster) AntiEntropySweepNow() AntiEntropySweep {
	return c.ae.sweep()
}

func (a *antiEntropy) run() {
	defer a.c.done.Done()
	for {
		select {
		case <-a.c.stop:
			return
		case <-time.After(a.jittered()):
		}
		a.sweep()
	}
}

// jittered spreads the interval ±25% so peers don't sweep in lockstep.
func (a *antiEntropy) jittered() time.Duration {
	d := a.interval
	return d - d/4 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func (a *antiEntropy) sweep() AntiEntropySweep {
	start := time.Now()
	src, ok := a.source.Load().(aeSource)
	if !ok || src.keys == nil {
		return AntiEntropySweep{}
	}
	local := src.keys()
	if local == nil {
		// The local store is unavailable (degraded to memory-only): this
		// node has nothing durable to offer, and pushing from memory
		// would repair replicas with bytes the source may yet lose.
		a.c.logf("cluster: anti-entropy: local store unavailable, skipping sweep")
		return AntiEntropySweep{}
	}
	sort.Strings(local)

	var sw AntiEntropySweep
	budget := a.maxPerSweep
	var missing []string
	canceled := false

peers:
	for _, p := range a.c.others {
		// Degraded-aware: a degraded peer is memory-only, a down peer is
		// unreachable. Both heal first, repair after.
		if st := a.c.State(p.ID); st != StateUp {
			if st == StateDegraded {
				a.c.logf("cluster: anti-entropy: skipping degraded peer %s", p.ID)
			}
			continue
		}
		remote, err := a.fetchKeys(p)
		if err != nil {
			a.c.logf("cluster: anti-entropy: listing %s: %v", p.ID, err)
			continue
		}
		sw.Peers++
		sort.Strings(remote)
		missing = MissingKeys(local, remote, missing)

		// Keep only keys the peer is actually in the replica set for,
		// then rotate the candidate list past the resume cursor so a
		// truncated or canceled sweep continues instead of re-walking.
		cand := missing[:0]
		for _, k := range missing {
			if a.c.inReplicaSet(p.ID, k) {
				cand = append(cand, k)
			}
		}
		sw.Missing += len(cand)
		startIdx := 0
		if cur := a.cursorFor(p.ID); cur != "" {
			startIdx = sort.SearchStrings(cand, cur)
			if startIdx < len(cand) && cand[startIdx] == cur {
				startIdx++
			}
		}
		for i := 0; i < len(cand); i++ {
			k := cand[(startIdx+i)%len(cand)]
			if budget <= 0 {
				sw.Truncated = true
				break peers
			}
			select {
			case <-a.c.stop:
				canceled = true
				break peers
			default:
			}
			data, ok := src.get(k)
			if !ok {
				continue // evicted since the listing; nothing to offer
			}
			if err := a.c.repl.pushBlob(k, data, p); err != nil {
				a.c.logf("cluster: anti-entropy: repairing %s -> %s: %v", k, p.ID, err)
				a.c.ReportFailure(p.ID)
				continue peers
			}
			budget--
			sw.Repaired++
			sw.Bytes += int64(len(data))
			a.setCursor(p.ID, k)
			select {
			case <-a.c.stop:
				canceled = true
				break peers
			case <-time.After(a.pause):
			}
		}
		// Full pass over this peer's candidates: clear the resume point.
		a.setCursor(p.ID, "")
	}

	sw.Duration = time.Since(start)
	a.repaired.Add(int64(sw.Repaired))
	a.bytes.Add(sw.Bytes)
	if !canceled {
		a.sweeps.Add(1)
		a.last.Store(time.Now().Unix())
	}
	if sw.Repaired > 0 || sw.Missing > 0 {
		a.c.logf("cluster: anti-entropy: sweep repaired %d/%d missing key(s), %d byte(s), %d peer(s) in %s",
			sw.Repaired, sw.Missing, sw.Bytes, sw.Peers, sw.Duration.Round(time.Millisecond))
	}
	if fn, ok := a.hook.Load().(func(AntiEntropySweep)); ok && fn != nil {
		fn(sw)
	}
	return sw
}

func (a *antiEntropy) cursorFor(peerID string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cursor[peerID]
}

func (a *antiEntropy) setCursor(peerID, key string) {
	a.mu.Lock()
	if key == "" {
		delete(a.cursor, peerID)
	} else {
		a.cursor[peerID] = key
	}
	a.mu.Unlock()
}

// fetchKeys lists a peer's store keys via the compact text listing. The
// forward header marks the probe so the peer answers from its local
// store only (no amplification).
func (a *antiEntropy) fetchKeys(p Peer) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, p.URL+"/v1/store?format=keys", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(ForwardHeader, a.c.self.ID)
	injectTraceparent(req, "")
	resp, err := a.c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("listing keys on %s: %s", p.ID, resp.Status)
	}
	var keys []string
	sc := bufio.NewScanner(io.LimitReader(resp.Body, maxKeyListBytes))
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			keys = append(keys, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return keys, nil
}

// MissingKeys returns the elements of local absent from remote. Both
// inputs must be sorted ascending; out is overwritten and reused when
// its capacity allows, so a steady-state caller allocates nothing. This
// is the digest-set computation on the anti-entropy hot path — it runs
// against every peer every sweep, over the full key census.
func MissingKeys(local, remote, out []string) []string {
	out = out[:0]
	j := 0
	for _, k := range local {
		for j < len(remote) && remote[j] < k {
			j++
		}
		if j < len(remote) && remote[j] == k {
			continue
		}
		out = append(out, k)
	}
	return out
}

// inReplicaSet reports whether peerID is among the top-ReplicationFactor
// rendezvous-ranked peers for key. Equivalent to membership in
// RankedPeers(key)[:rf] but allocation-free: it counts peers that rank
// strictly ahead, using the same score-then-ID tie-break.
func (c *Cluster) inReplicaSet(peerID, key string) bool {
	s := rankScore(peerID, key)
	ahead := 0
	for _, p := range c.peers {
		if p.ID == peerID {
			continue
		}
		ps := rankScore(p.ID, key)
		if ps > s || (ps == s && p.ID < peerID) {
			ahead++
		}
	}
	return ahead < c.rf
}
