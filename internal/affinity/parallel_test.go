package affinity

import (
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/trace"
)

// phasedTrace draws a trace with program-like phase locality: the symbol
// alphabet shifts every phaseLen occurrences, with occasional references
// back into the previous phase.
func phasedTrace(rng *rand.Rand, n, phaseLen, alpha int) *trace.Trace {
	syms := make([]int32, n)
	for i := range syms {
		phase := (i / phaseLen) % 8
		if rng.Float64() < 0.1 && phase > 0 {
			phase--
		}
		syms[i] = int32(phase*alpha + rng.Intn(alpha))
	}
	return trace.New(syms)
}

// TestBuildHierarchyWorkersDeterministic is the ISSUE's determinism
// guarantee for the affinity analysis: the hierarchy built with sharded
// concurrent stack passes must be byte-identical to the serial one, on
// seeded random traces of several shapes.
func TestBuildHierarchyWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(20140814))
	traces := []*trace.Trace{
		phasedTrace(rng, 4000, 500, 12),
		phasedTrace(rng, 997, 100, 5), // prime length: uneven shards
		trace.New(func() []int32 { // uniform random, small alphabet
			s := make([]int32, 2000)
			for i := range s {
				s[i] = int32(rng.Intn(9))
			}
			return s
		}()),
		fig1Trace(),
		trace.New([]int32{3}),
		trace.New(nil),
	}
	for ti, tr := range traces {
		for _, wmax := range []int{2, 5, DefaultWMax} {
			serial := BuildHierarchy(tr, Options{WMax: wmax, Workers: 1})
			for _, workers := range []int{2, 3, 8} {
				par := BuildHierarchy(tr, Options{WMax: wmax, Workers: workers})
				if !reflect.DeepEqual(par.Levels, serial.Levels) {
					t.Fatalf("trace %d wmax=%d: workers=%d hierarchy differs from serial", ti, wmax, workers)
				}
				if !reflect.DeepEqual(par.Sequence(), serial.Sequence()) {
					t.Fatalf("trace %d wmax=%d: workers=%d sequence differs from serial", ti, wmax, workers)
				}
			}
		}
	}
}

// TestParallelMatchesNaive closes the loop: the concurrent analysis must
// also agree with the quadratic from-the-definitions oracle.
func TestParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 30 + rng.Intn(150)
		alpha := 3 + rng.Intn(9)
		syms := make([]int32, n)
		for i := range syms {
			syms[i] = int32(rng.Intn(alpha))
		}
		tr := trace.New(syms)
		opt := Options{WMax: 2 + rng.Intn(8), Workers: 8}
		par := BuildHierarchy(tr, opt)
		naive := BuildHierarchyNaive(tr, opt)
		for w := 1; w <= opt.WMax; w++ {
			if !reflect.DeepEqual(par.Partition(w).Groups, naive.Partition(w).Groups) {
				t.Fatalf("trial %d w=%d: parallel %v != naive %v (trace %v)",
					trial, w, par.Partition(w).Groups, naive.Partition(w).Groups, syms)
			}
		}
	}
}

// TestWarmupBounds exercises the warm-up helpers directly on corner
// cases: empty prefixes/suffixes and traces with fewer distinct symbols
// than requested.
func TestWarmupBounds(t *testing.T) {
	syms := []int32{0, 1, 0, 1, 2, 3}
	if got := warmBefore(syms, 0, 4); got != 0 {
		t.Errorf("warmBefore at 0 = %d, want 0", got)
	}
	if got := warmBefore(syms, 6, 2); got != 4 {
		// [4,6) = {2,3}: two distinct.
		t.Errorf("warmBefore(6, 2) = %d, want 4", got)
	}
	if got := warmBefore(syms, 4, 10); got != 0 {
		t.Errorf("warmBefore with excess need = %d, want 0", got)
	}
	if got := warmAfter(syms, 6, 3); got != 6 {
		t.Errorf("warmAfter at end = %d, want 6", got)
	}
	if got := warmAfter(syms, 0, 2); got != 2 {
		// [0,2) = {0,1}: two distinct.
		t.Errorf("warmAfter(0, 2) = %d, want 2", got)
	}
	if got := warmAfter(syms, 2, 10); got != 6 {
		t.Errorf("warmAfter with excess need = %d, want 6", got)
	}
}
