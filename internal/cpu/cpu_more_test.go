package cpu

import (
	"testing"

	"codelayout/internal/layout"
)

func TestIssueWidthMonotone(t *testing.T) {
	// More issue width can only speed up a co-run (weakly).
	pa := loopProgram(t, 64, 64, 200, 0.2)
	pb := loopProgram(t, 64, 64, 200, 0.2)
	var prev int64 = 1 << 62
	for _, width := range []float64{1.0, 1.2, 1.5, 2.0} {
		params := DefaultParams()
		params.IssueWidth = width
		res := RunCorun(params, spec(t, pa, false), spec(t, pb, false))
		if res.MakespanCycles > prev {
			t.Errorf("width %v: makespan %d above narrower width's %d", width, res.MakespanCycles, prev)
		}
		prev = res.MakespanCycles
	}
}

func TestPeerSkewBreaksLockstep(t *testing.T) {
	// Two identical copies: with zero skew forced via a tiny value, the
	// copies stall simultaneously and hide nothing; the default skew
	// must finish at least as fast.
	p := loopProgram(t, 600, 64, 60, 0.25)
	run := func(skew int64) int64 {
		params := DefaultParams()
		params.PeerStartSkew = skew
		res := RunCorun(params, spec(t, p, false), spec(t, p, false))
		return res.MakespanCycles
	}
	if lockstep, skewed := run(1), run(997); skewed > lockstep {
		t.Errorf("skewed makespan %d worse than near-lockstep %d", skewed, lockstep)
	}
}

func TestWrappingPeerReportsProgress(t *testing.T) {
	long := loopProgram(t, 64, 64, 400, 0.1)
	short := loopProgram(t, 64, 64, 5, 0.1)
	res := RunCorunTimed(DefaultParams(), spec(t, long, false), spec(t, short, true))
	if res.Threads[1].Blocks <= res.Threads[0].Blocks/100 {
		t.Errorf("wrapping peer barely ran: %d vs %d blocks", res.Threads[1].Blocks, res.Threads[0].Blocks)
	}
	if res.Threads[0].Cycles == 0 {
		t.Error("primary completion time missing")
	}
	if got := res.Threads[0].IPC(); got <= 0 || got > 1 {
		t.Errorf("primary IPC = %v, want in (0,1]", got)
	}
}

func TestEmptyTraceThread(t *testing.T) {
	p := loopProgram(t, 8, 64, 10, 0)
	empty := layout.NewReplayer(layout.Original(p), emptyTrace(), 64, false)
	res := RunCorun(DefaultParams(),
		spec(t, p, false),
		ThreadSpec{Replayer: empty, DataCPI: 0})
	if res.Threads[1].Instrs != 0 {
		t.Error("empty thread executed instructions")
	}
	if res.Threads[0].Instrs == 0 {
		t.Error("non-empty thread starved")
	}
}
