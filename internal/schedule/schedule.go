// Package schedule turns the paper's pairwise interference numbers into
// placement decisions: given N programs (each with a cached layout) and
// a machine topology of cache domains — groups of cores that share an
// instruction cache, e.g. SMT hyper-thread pairs — it assigns programs
// to domains so that the total Eq-1 predicted co-run miss count is
// minimized. Programs placed in the same domain contend; programs in
// different domains run free of (modeled) interference.
//
// The input is a symmetric pair-cost matrix: Cost[i][j] is the total
// predicted extra misses when i and j share a cache (the sum of both
// directions of the paper's Eq 1 composition, computed by the server's
// co-run pair pipeline). The objective is additive over co-resident
// pairs, so the cost of a placement is the sum of Cost[i][j] over every
// unordered pair {i, j} sharing a domain.
//
// Solve is deterministic and exact on small fleets: it enumerates
// canonical assignments under a node budget, falling back to a greedy
// seeding plus swap/move local search when the instance is too large to
// enumerate. Both paths are context-cancellable.
package schedule

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Topology describes the shared-cache shape of the machine: Domains
// cache domains, each with SlotsPerDomain cores sharing one cache.
// An SMT machine with 8 two-way hyper-threaded cores is
// {Domains: 8, SlotsPerDomain: 2}.
type Topology struct {
	Domains        int `json:"domains"`
	SlotsPerDomain int `json:"slotsPerDomain"`
}

// Capacity is the number of programs the topology can host.
func (t Topology) Capacity() int { return t.Domains * t.SlotsPerDomain }

// Validate checks the topology can host n programs.
func (t Topology) Validate(n int) error {
	if t.Domains <= 0 || t.SlotsPerDomain <= 0 {
		return fmt.Errorf("schedule: non-positive topology %+v", t)
	}
	if n > t.Capacity() {
		return fmt.Errorf("schedule: %d programs exceed topology capacity %d (%d domains x %d slots)",
			n, t.Capacity(), t.Domains, t.SlotsPerDomain)
	}
	return nil
}

// Placement is a solved assignment.
type Placement struct {
	// Domains[d] lists the program indices placed in domain d, in
	// ascending order. Domains may be empty when capacity exceeds N.
	Domains [][]int `json:"domains"`
	// Cost is the total pair cost of the placement.
	Cost float64 `json:"cost"`
	// Exact reports whether the placement came from exhaustive
	// enumeration (guaranteed optimal) rather than the heuristic.
	Exact bool `json:"exact"`
}

// Cost sums the pair costs of every co-resident unordered pair.
func Cost(cost [][]float64, domains [][]int) float64 {
	var total float64
	for _, members := range domains {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				total += cost[members[i]][members[j]]
			}
		}
	}
	return total
}

// ValidateMatrix checks that cost is square, symmetric, zero-diagonal,
// and free of NaNs — the contract the solver assumes.
func ValidateMatrix(cost [][]float64) error {
	n := len(cost)
	for i, row := range cost {
		if len(row) != n {
			return fmt.Errorf("schedule: row %d has %d columns, want %d", i, len(row), n)
		}
		if row[i] != 0 {
			return fmt.Errorf("schedule: non-zero diagonal at %d: %v", i, row[i])
		}
		for j, v := range row {
			if math.IsNaN(v) {
				return fmt.Errorf("schedule: NaN cost at [%d][%d]", i, j)
			}
			if v != cost[j][i] {
				return fmt.Errorf("schedule: asymmetric cost [%d][%d]=%v vs [%d][%d]=%v",
					i, j, v, j, i, cost[j][i])
			}
		}
	}
	return nil
}

// ExactNodeBudget bounds the enumeration tree Solve explores before
// falling back to the heuristic. Pairing 12 programs onto 6 two-slot
// domains explores 10395 leaves; the budget comfortably covers fleets
// of that order while keeping worst-case latency bounded.
const ExactNodeBudget = 1 << 18

// Solve places the n programs of the cost matrix onto the topology,
// minimizing total co-resident pair cost. Small instances are solved
// exactly (Placement.Exact true); larger ones get a deterministic
// greedy seeding refined by swap/move local search. The matrix must be
// symmetric with a zero diagonal (see ValidateMatrix).
func Solve(ctx context.Context, cost [][]float64, topo Topology) (Placement, error) {
	n := len(cost)
	if err := topo.Validate(n); err != nil {
		return Placement{}, err
	}
	if err := ValidateMatrix(cost); err != nil {
		return Placement{}, err
	}
	s := newSolver(cost, topo)
	if p, ok, err := s.exact(ctx); err != nil {
		return Placement{}, err
	} else if ok {
		return p, nil
	}
	return s.heuristic(ctx)
}

// BruteForce exhaustively enumerates every placement and returns the
// cheapest — the oracle the tests hold Solve against. It ignores the
// node budget and must only be called on small instances.
func BruteForce(cost [][]float64, topo Topology) Placement {
	s := newSolver(cost, topo)
	p, ok, err := s.enumerate(context.Background(), math.MaxInt64, false)
	if err != nil || !ok {
		panic("schedule: BruteForce did not terminate") // unreachable: no budget, no ctx
	}
	return p
}

// Worst exhaustively finds the most expensive placement — the
// anti-oracle the smoke tests use to assert the solver beats the
// worst-case pairing. ok is false when the instance exceeds the
// enumeration budget.
func Worst(cost [][]float64, topo Topology) (Placement, bool) {
	s := newSolver(cost, topo)
	s.maximize = true
	p, ok, err := s.enumerate(context.Background(), ExactNodeBudget, true)
	if err != nil {
		return Placement{}, false
	}
	return p, ok
}

// solver holds the flat working state shared by the exact and heuristic
// paths, so the hot loops run on pre-sized slices with no per-node
// allocation.
type solver struct {
	cost     [][]float64
	topo     Topology
	n        int
	assign   []int // assign[i] = domain of program i, -1 unplaced
	count    []int // count[d] = programs in domain d
	best     []int
	bestCost float64
	nodes    int64
	maximize bool
}

func newSolver(cost [][]float64, topo Topology) *solver {
	n := len(cost)
	s := &solver{
		cost:   cost,
		topo:   topo,
		n:      n,
		assign: make([]int, n),
		count:  make([]int, topo.Domains),
		best:   make([]int, n),
	}
	for i := range s.assign {
		s.assign[i] = -1
	}
	return s
}

// marginal is the cost of adding program i to domain d under the
// current assignment.
func (s *solver) marginal(i, d int) float64 {
	var m float64
	row := s.cost[i]
	for j := 0; j < s.n; j++ {
		if s.assign[j] == d {
			m += row[j]
		}
	}
	return m
}

// exact tries exhaustive enumeration under the node budget.
func (s *solver) exact(ctx context.Context) (Placement, bool, error) {
	return s.enumerate(ctx, ExactNodeBudget, true)
}

// enumerate walks every canonical assignment (programs placed in index
// order; a program may open at most the first empty domain, which
// breaks the symmetry between identical empty domains). ok is false
// when the budget ran out before the walk finished.
func (s *solver) enumerate(ctx context.Context, budget int64, respectBudget bool) (Placement, bool, error) {
	if s.maximize {
		s.bestCost = math.Inf(-1)
	} else {
		s.bestCost = math.Inf(1)
	}
	s.nodes = 0
	for i := range s.assign {
		s.assign[i] = -1
	}
	for d := range s.count {
		s.count[d] = 0
	}
	ok, err := s.place(ctx, 0, 0, budget, respectBudget)
	if err != nil || !ok {
		return Placement{}, ok, err
	}
	return s.placementOf(s.best, true), true, nil
}

func (s *solver) place(ctx context.Context, i int, sofar float64, budget int64, respectBudget bool) (bool, error) {
	s.nodes++
	if respectBudget && s.nodes > budget {
		return false, nil
	}
	if s.nodes&1023 == 0 {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	if i == s.n {
		if (s.maximize && sofar > s.bestCost) || (!s.maximize && sofar < s.bestCost) {
			s.bestCost = sofar
			copy(s.best, s.assign)
		}
		return true, nil
	}
	// Branch-and-bound prune: pair costs are predicted miss counts and
	// therefore non-negative, so a partial sum already at or above the
	// best completed placement cannot improve (minimize only).
	if !s.maximize && sofar >= s.bestCost {
		return true, nil
	}
	opened := false
	for d := 0; d < s.topo.Domains; d++ {
		if s.count[d] >= s.topo.SlotsPerDomain {
			continue
		}
		if s.count[d] == 0 {
			if opened {
				continue // identical to the first empty domain already tried
			}
			opened = true
		}
		m := s.marginal(i, d)
		s.assign[i] = d
		s.count[d]++
		ok, err := s.place(ctx, i+1, sofar+m, budget, respectBudget)
		s.assign[i] = -1
		s.count[d]--
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}

// heuristic seeds a placement greedily — heaviest-interfering programs
// first, each into the feasible domain with the smallest marginal cost —
// then refines it with first-improvement swap/move local search until a
// full sweep finds nothing better.
func (s *solver) heuristic(ctx context.Context) (Placement, error) {
	for i := range s.assign {
		s.assign[i] = -1
	}
	for d := range s.count {
		s.count[d] = 0
	}
	// Greedy order: descending total interference, index as tie-break,
	// so the placement is deterministic for any cost matrix.
	order := make([]int, s.n)
	weight := make([]float64, s.n)
	for i := range order {
		order[i] = i
		for j := 0; j < s.n; j++ {
			weight[i] += s.cost[i][j]
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if weight[order[a]] != weight[order[b]] {
			return weight[order[a]] > weight[order[b]]
		}
		return order[a] < order[b]
	})
	var total float64
	for _, i := range order {
		bestD, bestM := -1, math.Inf(1)
		for d := 0; d < s.topo.Domains; d++ {
			if s.count[d] >= s.topo.SlotsPerDomain {
				continue
			}
			if m := s.marginal(i, d); m < bestM {
				bestD, bestM = d, m
			}
		}
		s.assign[i] = bestD
		s.count[bestD]++
		total += bestM
	}

	// Local search: swapping two programs between domains, or moving one
	// into a free slot, taking the first improving move of a
	// deterministic sweep. Each accepted move strictly lowers the cost,
	// and costs are bounded below, so the loop terminates; maxSweeps is
	// a safety bound against float-noise cycling.
	const eps = 1e-12
	maxSweeps := 4 * s.n
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if err := ctx.Err(); err != nil {
			return Placement{}, err
		}
		improved := false
		for i := 0; i < s.n && !improved; i++ {
			di := s.assign[i]
			// Move i into any domain with a free slot.
			ci := s.marginal(i, di) - s.cost[i][i]
			for d := 0; d < s.topo.Domains; d++ {
				if d == di || s.count[d] >= s.topo.SlotsPerDomain {
					continue
				}
				delta := s.marginal(i, d) - ci
				if delta < -eps {
					s.assign[i] = d
					s.count[di]--
					s.count[d]++
					total += delta
					improved = true
					break
				}
			}
			if improved {
				break
			}
			// Swap i with any program in a different domain.
			for j := i + 1; j < s.n; j++ {
				dj := s.assign[j]
				if dj == di {
					continue
				}
				// Cost change of exchanging i and j: each loses its ties
				// to its old domain and gains ties to the other's, with
				// the i-j edge itself unchanged (they still end up in
				// different domains).
				delta := s.marginal(i, dj) - s.cost[i][j] - ci +
					s.marginal(j, di) - s.cost[j][i] - (s.marginal(j, dj) - s.cost[j][j])
				if delta < -eps {
					s.assign[i], s.assign[j] = dj, di
					total += delta
					improved = true
					break
				}
			}
		}
		if !improved {
			break
		}
	}
	return s.placementOf(s.assign, false), nil
}

// placementOf converts a flat assignment into the wire Placement,
// recomputing the cost from scratch (the incremental totals carry float
// noise; the reported cost is the exact sum).
func (s *solver) placementOf(assign []int, exact bool) Placement {
	domains := make([][]int, s.topo.Domains)
	for d := range domains {
		domains[d] = []int{} // empty domains marshal as [], not null
	}
	for i := 0; i < s.n; i++ {
		d := assign[i]
		domains[d] = append(domains[d], i)
	}
	return Placement{Domains: domains, Cost: Cost(s.cost, domains), Exact: exact}
}
