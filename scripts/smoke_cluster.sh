#!/bin/sh
# smoke_cluster.sh — 3-node cluster smoke test, run by `make smoke-cluster`
# and the CI cluster-smoke job:
#
#   1. build layoutd/layoutctl/tracedump,
#   2. start a 3-node cluster (static -peers membership, -replicas 2),
#   3. submit a trace to n1 and learn the owner from the node-prefixed
#      job ID; wait for the result to replicate,
#   4. resubmit the identical trace to a NON-owner and require a cache
#      hit served by transparent forwarding (layoutd_peer_forwards_total
#      on the non-owner, zero local recompute),
#   5. SIGKILL the owner,
#   6. require every survivor to still serve the layout by digest —
#      replica reads and peer fetch-through, never a recompute
#      (layoutd_jobs_completed_total stays 0 on survivors) — and the
#      -cluster client flag to skip the dead endpoint.
#
# Set SMOKE_WORK to redirect the scratch dir somewhere that survives the
# run (CI points it at a directory uploaded as an artifact on failure);
# without it a mktemp dir is used and removed.
set -eu

if [ -n "${SMOKE_WORK:-}" ]; then
    WORK=$SMOKE_WORK
    mkdir -p "$WORK"
    KEEP_WORK=1
else
    WORK=$(mktemp -d)
    KEEP_WORK=0
fi
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill -9 "$pid" 2>/dev/null || true
    done
    [ "$KEEP_WORK" = 1 ] || rm -rf "$WORK"
}
trap cleanup EXIT

PROG=458.sjeng
OPT=func-affinity

echo "smoke-cluster: building binaries"
go build -o "$WORK/layoutd" ./cmd/layoutd
go build -o "$WORK/layoutctl" ./cmd/layoutctl
go build -o "$WORK/tracedump" ./cmd/tracedump

echo "smoke-cluster: recording a $PROG trace"
"$WORK/tracedump" -prog "$PROG" -record "$WORK/t" -gran bb

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# Static membership needs URLs up front, so ports are picked from a
# PID-salted base instead of :0 + ready-file.
BASE=$((20000 + $$ % 20000))
P1=$BASE
P2=$((BASE + 1))
P3=$((BASE + 2))
A1="http://127.0.0.1:$P1"
A2="http://127.0.0.1:$P2"
A3="http://127.0.0.1:$P3"
PEERS="n1=$A1,n2=$A2,n3=$A3"

start_node() {
    # $1 = node ID, $2 = port
    "$WORK/layoutd" -addr "127.0.0.1:$2" -jobs 2 -queue 8 \
        -node-id "$1" -peers "$PEERS" -replicas 2 -health-interval 250ms \
        -store-dir "$WORK/store-$1" >"$WORK/$1.log" 2>&1 &
    eval "PID_$1=$!"
    PIDS="$PIDS $!"
}

start_node n1 "$P1"
start_node n2 "$P2"
start_node n3 "$P3"
echo "smoke-cluster: nodes n1=$A1 n2=$A2 n3=$A3"

wait_healthy() {
    # $1 = node addr, $2 = node ID
    i=0
    while ! fetch "$1/healthz" 2>/dev/null | grep -q '"status": "ok"'; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-cluster: $2 never became healthy" >&2
            cat "$WORK/$2.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    fetch "$1/healthz" | grep -q "\"node_id\": \"$2\"" || {
        echo "smoke-cluster: $2 healthz lacks its node_id" >&2
        exit 1
    }
}
wait_healthy "$A1" n1
wait_healthy "$A2" n2
wait_healthy "$A3" n3

# Wait for membership to converge: the very first health poll races the
# other nodes' listeners and may mark them down; a write before the next
# poll would skip its replica push. Each node must see both peers up.
wait_converged() {
    # $1 = node addr, $2 = node ID
    i=0
    while [ "$(fetch "$1/metrics" | grep -c '^layoutd_peer_health{peer="n[0-9]*"} 2$')" != 2 ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-cluster: $2 never saw both peers up" >&2
            fetch "$1/metrics" | grep '^layoutd_peer_health' >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}
wait_converged "$A1" n1
wait_converged "$A2" n2
wait_converged "$A3" n3

echo "smoke-cluster: submitting job to n1"
"$WORK/layoutctl" -addr "$A1" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result1.json"
grep -q '"status": "done"' "$WORK/result1.json"
DIGEST=$(grep -o '"digest": "[0-9a-f]*"' "$WORK/result1.json" | head -1 | cut -d'"' -f4)
[ -n "$DIGEST" ] || { echo "smoke-cluster: no digest in result" >&2; exit 1; }
# Job IDs are node-prefixed: the prefix names the rendezvous owner.
OWNER=$(grep -o '"id": "n[0-9]*\.' "$WORK/result1.json" | head -1 | cut -d'"' -f4 | cut -d. -f1)
[ -n "$OWNER" ] || { echo "smoke-cluster: job ID is not node-prefixed" >&2; exit 1; }
case $OWNER in
n1) OWNER_ADDR=$A1 ;;
n2) OWNER_ADDR=$A2 ;;
n3) OWNER_ADDR=$A3 ;;
*) echo "smoke-cluster: unknown owner $OWNER" >&2; exit 1 ;;
esac
echo "smoke-cluster: digest $DIGEST owned by $OWNER"

echo "smoke-cluster: waiting for write-behind replication from $OWNER"
i=0
while ! fetch "$OWNER_ADDR/metrics" | grep -q '^layoutd_replication_pushed_total [1-9]'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-cluster: owner never replicated" >&2
        fetch "$OWNER_ADDR/metrics" >&2 || true
        exit 1
    fi
    sleep 0.1
done
fetch "$OWNER_ADDR/metrics" | grep -q '^layoutd_replication_queue_depth' || {
    echo "smoke-cluster: replication queue depth metric missing" >&2
    exit 1
}

# One non-owner must now hold the result blob durably (RF=2).
if [ "$OWNER" = n1 ]; then NONOWNER=n2 NONOWNER_ADDR=$A2; else NONOWNER=n1 NONOWNER_ADDR=$A1; fi
i=0
while true; do
    for a in "$A1" "$A2" "$A3"; do
        [ "$a" = "$OWNER_ADDR" ] && continue
        if fetch "$a/v1/store/$DIGEST" >/dev/null 2>&1; then
            break 2
        fi
    done
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-cluster: no replica holds $DIGEST" >&2
        exit 1
    fi
    sleep 0.1
done

echo "smoke-cluster: resubmitting to non-owner $NONOWNER (expect forwarded cache hit)"
"$WORK/layoutctl" -addr "$NONOWNER_ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result2.json"
grep -q 'cached=true' "$WORK/result2.json"
fetch "$NONOWNER_ADDR/metrics" >"$WORK/metrics-nonowner.txt"
grep -q "^layoutd_peer_forwards_total{peer=\"$OWNER\"} [1-9]" "$WORK/metrics-nonowner.txt" || {
    echo "smoke-cluster: non-owner shows no forward to $OWNER" >&2
    cat "$WORK/metrics-nonowner.txt" >&2
    exit 1
}
grep -q '^layoutd_jobs_completed_total 0$' "$WORK/metrics-nonowner.txt" || {
    echo "smoke-cluster: non-owner recomputed instead of forwarding" >&2
    exit 1
}

echo "smoke-cluster: SIGKILL owner $OWNER"
eval "kill -9 \$PID_$OWNER"

echo "smoke-cluster: survivors must keep serving $DIGEST"
for a in "$A1" "$A2" "$A3"; do
    [ "$a" = "$OWNER_ADDR" ] && continue
    i=0
    # The first read may race the down-detection; retry until the
    # survivor falls back to its replica or fetches from one.
    while ! fetch "$a/v1/layouts/$DIGEST" >"$WORK/layout-survivor.json" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-cluster: survivor $a cannot serve the layout" >&2
            cat "$WORK"/n*.log >&2
            exit 1
        fi
        sleep 0.1
    done
    grep -q "\"digest\": \"$DIGEST\"" "$WORK/layout-survivor.json"
done

# Zero recompute across the failover: no survivor ever ran the job.
for a in "$A1" "$A2" "$A3"; do
    [ "$a" = "$OWNER_ADDR" ] && continue
    fetch "$a/metrics" | grep -q '^layoutd_jobs_completed_total 0$' || {
        echo "smoke-cluster: survivor $a recomputed after failover" >&2
        exit 1
    }
done

echo "smoke-cluster: -cluster client flag must skip the dead endpoint"
"$WORK/layoutctl" -cluster "$OWNER_ADDR,$A1,$A2,$A3" \
    -layout "$DIGEST" >"$WORK/layout-cli.json" 2>"$WORK/cli.log"
grep -q "\"digest\": \"$DIGEST\"" "$WORK/layout-cli.json"
"$WORK/layoutctl" -addr "$NONOWNER_ADDR" -health -json >"$WORK/health.json"
grep -q "\"node_id\": \"$NONOWNER\"" "$WORK/health.json"

echo "smoke-cluster: draining survivors"
for id in n1 n2 n3; do
    [ "$id" = "$OWNER" ] && continue
    eval "pid=\$PID_$id"
    kill -TERM "$pid"
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-cluster: $id did not exit after SIGTERM" >&2
            cat "$WORK/$id.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    wait "$pid" 2>/dev/null || true
    grep -q 'drained cleanly' "$WORK/$id.log"
done
PIDS=""

echo "smoke-cluster: OK"
