// Package experiments regenerates every table and figure of the paper's
// evaluation (§III) on the synthetic suite: the intro contention table,
// Table I (benchmark characteristics), Figures 1-3 (model examples),
// Figure 4 (29-program screening), Figure 5 (solo effect), Table II and
// Figure 6 (co-run effect), Figure 7 (hyper-threading throughput), and
// the §III-F optimized+optimized co-run study. Each experiment returns a
// structured result with a String() rendering; cmd/benchtables prints
// them and bench_test.go wraps each in a testing.B benchmark.
//
// The harness fans independent measurements out across cores (see
// Workspace.SetWorkers): the jobs of an experiment — one per program,
// probe pairing, or optimizer cell — share no mutable state beyond the
// workspace's once-guarded caches, and results are assembled in the
// serial loop order, so every experiment's output is identical for any
// worker count.
package experiments

import (
	"fmt"
	"sync"

	"codelayout/internal/core"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/parallel"
	"codelayout/internal/progen"
)

// Baseline is the layout name of the unoptimized binary.
const Baseline = "original"

// Bench bundles everything the harness needs about one program:
// the generated IR, the training profile (test input), the evaluation
// trace (reference input), and the lazily built layouts.
type Bench struct {
	Spec progen.Spec
	Prog *ir.Program
	// Train is the profiling run (core.TrainSeed).
	Train *core.Profile
	// Eval is the measurement run (core.EvalSeed).
	Eval *core.Profile

	// workers is copied from the workspace at creation and threaded into
	// the optimizers' analysis phase.
	workers int

	mu      sync.Mutex
	layouts map[string]*layoutEntry
}

// layoutEntry is the once-guarded slot for one named layout, so that
// concurrent measurements needing the same layout build it exactly once
// without serializing unrelated builds behind one bench-wide lock.
type layoutEntry struct {
	once sync.Once
	l    *layout.Layout
	rep  core.Report
	rept bool
	err  error
}

// Name returns the program name.
func (b *Bench) Name() string { return b.Spec.Name }

// Layout returns (building and caching on first use) the named layout:
// Baseline or an optimizer name from core.AllOptimizers. It is safe for
// concurrent use; concurrent callers of the same name share one build.
func (b *Bench) Layout(name string) (*layout.Layout, error) {
	e := b.layoutEntry(name)
	e.once.Do(func() { e.build(b, name) })
	return e.l, e.err
}

// Report returns the optimizer report recorded when the named layout was
// built (zero Report and false for Baseline or unbuilt layouts).
func (b *Bench) Report(name string) (core.Report, bool) {
	e := b.layoutEntry(name)
	e.once.Do(func() { e.build(b, name) })
	return e.rep, e.rept
}

func (b *Bench) layoutEntry(name string) *layoutEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.layouts[name]
	if !ok {
		e = &layoutEntry{}
		b.layouts[name] = e
	}
	return e
}

func (e *layoutEntry) build(b *Bench, name string) {
	if name == Baseline {
		e.l = layout.Original(b.Prog)
		return
	}
	opt, err := optimizerByName(name)
	if err != nil {
		e.err = err
		return
	}
	opt.Workers = b.workers
	l, rep, err := opt.Optimize(b.Train)
	if err != nil {
		e.err = fmt.Errorf("experiments: %s on %s: %w", name, b.Name(), err)
		return
	}
	e.l, e.rep, e.rept = l, rep, true
}

// Replayer returns a replayer of the evaluation trace through the named
// layout.
func (b *Bench) Replayer(layoutName string, lineBytes int, wrap bool) (*layout.Replayer, error) {
	l, err := b.Layout(layoutName)
	if err != nil {
		return nil, err
	}
	return layout.NewReplayer(l, b.Eval.Blocks, lineBytes, wrap), nil
}

func optimizerByName(name string) (core.Optimizer, error) {
	o, err := core.OptimizerByName(name)
	if err != nil {
		return core.Optimizer{}, fmt.Errorf("experiments: %w", err)
	}
	return o, nil
}

// Workspace lazily generates, profiles and optimizes suite programs and
// caches everything, so that a sequence of experiments (or benchmark
// iterations) pays each cost once. It is safe for concurrent use.
type Workspace struct {
	mu      sync.Mutex
	workers int
	benches map[string]*benchEntry
}

// benchEntry is the once-guarded slot for one suite program, so that
// concurrent experiments can generate distinct programs in parallel
// while sharing the generation of the same one.
type benchEntry struct {
	once sync.Once
	b    *Bench
	err  error
}

// NewWorkspace creates an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{benches: make(map[string]*benchEntry)}
}

// SetWorkers bounds the concurrency of the workspace's experiments and
// of the optimizers' analysis phase: 0 means every available core, 1
// pins the serial reference path. Results are identical for every
// setting. Set it before running experiments; benches already generated
// keep the worker count they were created with.
func (w *Workspace) SetWorkers(n int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.workers = n
}

// Workers returns the configured worker bound (0 = every core).
func (w *Workspace) Workers() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.workers
}

// Bench returns the named suite program, generating and profiling it on
// first use. Safe for concurrent use; concurrent callers of the same
// name share one generation.
func (w *Workspace) Bench(name string) (*Bench, error) {
	w.mu.Lock()
	e, ok := w.benches[name]
	if !ok {
		e = &benchEntry{}
		w.benches[name] = e
	}
	workers := w.workers
	w.mu.Unlock()
	e.once.Do(func() { e.b, e.err = generateBench(name, workers) })
	return e.b, e.err
}

func generateBench(name string, workers int) (*Bench, error) {
	spec, err := progen.SpecByName(name)
	if err != nil {
		return nil, err
	}
	prog, err := progen.Generate(spec)
	if err != nil {
		return nil, err
	}
	train, err := core.ProfileProgram(prog, core.TrainSeed)
	if err != nil {
		return nil, err
	}
	eval, err := core.ProfileProgram(prog, core.EvalSeed)
	if err != nil {
		return nil, err
	}
	return &Bench{
		Spec:    spec,
		Prog:    prog,
		Train:   train,
		Eval:    eval,
		workers: workers,
		layouts: make(map[string]*layoutEntry),
	}, nil
}

// MainSuite returns the 8 Table I benches, generating missing ones in
// parallel.
func (w *Workspace) MainSuite() ([]*Bench, error) {
	return w.resolve(progen.MainSuiteNames)
}

// ScreeningSuite returns the 29 Figure 4 benches, generating missing
// ones in parallel.
func (w *Workspace) ScreeningSuite() ([]*Bench, error) {
	suite := progen.ScreeningSuite()
	names := make([]string, len(suite))
	for i, s := range suite {
		names[i] = s.Name
	}
	return w.resolve(names)
}

// benchSubset resolves a list of program names to benches; nil means
// the whole screening suite.
func (w *Workspace) benchSubset(names []string) ([]*Bench, error) {
	if names == nil {
		return w.ScreeningSuite()
	}
	return w.resolve(names)
}

// resolve fetches the named benches concurrently (generation dominates
// first use) and returns them in name order; the first error by index
// wins, matching the serial loop.
func (w *Workspace) resolve(names []string) ([]*Bench, error) {
	out := make([]*Bench, len(names))
	err := parallel.ForEach(w.Workers(), len(names), func(i int) error {
		b, err := w.Bench(names[i])
		if err != nil {
			return err
		}
		out[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
