// Package affinity implements the paper's extension of reference affinity
// to whole-program code layout (§II-B).
//
// Two code blocks have w-window affinity (Definition 3) iff every
// occurrence of each has a corresponding occurrence of the other such
// that the footprint of the window formed by the two occurrences is at
// most w. For a given w this induces an affinity partition (Definition
// 4); as w grows from 1 upward the partitions form the affinity
// hierarchy (Definition 5), built here so that lower-level groups take
// precedence (groups at level w merge whole groups of level w-1, which
// both disambiguates the non-unique w-window partition and guarantees a
// hierarchy). The optimized code sequence is a bottom-up traversal of
// the hierarchy.
//
// Two analyses are provided: BuildHierarchyNaive follows Algorithm 1 and
// the definitions directly (quadratic, used for validation), while
// BuildHierarchy is the paper's efficient solution — an LRU stack
// simulation per window size that records co-occurrence coverage in
// O(W·N·w) time. The hot path keeps its working set flat (DESIGN.md §9):
// per-pair histograms live in an open-addressed table with inline
// counter slabs, per-occurrence partner merging uses an epoch-stamped
// dense scratch, and an optional Arena recycles every buffer across
// calls.
package affinity

import (
	"context"
	"sort"

	"codelayout/internal/flathash"
	"codelayout/internal/obs"
	"codelayout/internal/parallel"
	"codelayout/internal/trace"
)

// Options configures the hierarchy construction.
type Options struct {
	// WMax is the largest window size analyzed. The paper chooses w
	// between 2 and 20 ("to improve efficiency, we choose w between 2
	// and 20"); 0 means the default of 20.
	WMax int
	// Workers bounds the analysis concurrency: 0 means every available
	// core, 1 pins the serial reference path. The built hierarchy is
	// byte-identical for every setting — the stack passes shard the
	// trace with exact LRU warm-up and the per-shard histograms merge
	// by commutative addition (DESIGN.md §7).
	Workers int
	// Arena recycles the analysis' internal buffers across calls; nil
	// allocates fresh buffers. It is an execution knob, not a model
	// parameter — the hierarchy is identical either way.
	Arena *Arena
	// FeedShardSpan overrides the span (in trimmed occurrences) of the
	// shards a Feeder cuts from the arriving stream; 0 means a default
	// sized to amortize warm-up replay. Like Workers it is an execution
	// knob: the hierarchy is identical for every setting.
	FeedShardSpan int
}

// DefaultWMax matches the paper's upper end of the analyzed window range.
const DefaultWMax = 20

// Partition is the w-window affinity partition of the trace's symbols.
type Partition struct {
	W int
	// Groups lists the affinity groups; within a group and across
	// groups, symbols are ordered by first occurrence in the trace, so
	// the partition (and the sequence derived from it) is deterministic.
	Groups [][]int32
}

// Hierarchy is the affinity hierarchy: one partition per window size
// from 1 to WMax. Levels[i] is the partition for w = i+1.
type Hierarchy struct {
	Levels []Partition
	// firstOcc maps each symbol to its first-occurrence position (dense,
	// -1 when absent), the tie-breaking order used everywhere.
	firstOcc []int32
	// occCount maps each symbol to its occurrence count in the trimmed
	// trace, used to order sibling groups hot-first in Sequence.
	occCount []int64
}

// Partition returns the partition at window size w (1 <= w <= WMax).
func (h *Hierarchy) Partition(w int) Partition { return h.Levels[w-1] }

// WMax returns the largest analyzed window size.
func (h *Hierarchy) WMax() int { return len(h.Levels) }

// Sequence produces the optimized code sequence: a bottom-up traversal
// of the hierarchy, reading the groups off the top level (each group
// internally preserves the lower levels' order, so strongly affine
// blocks stay adjacent — Figure 1's output B1 B4 B2 B3 B5).
//
// The paper leaves the order of sibling groups unspecified ("simply a
// bottom-up traversal"). Here siblings are ordered by hotness band
// (log2 of the per-block occurrence count, descending) and by first
// occurrence within a band. Banding matters for instruction-cache
// packing: rarely executed groups (cold error paths) sink below all hot
// groups instead of interleaving with them by first-occurrence
// accident, while same-hotness groups keep their temporal (phase)
// order.
func (h *Hierarchy) Sequence() []int32 {
	if len(h.Levels) == 0 {
		return nil
	}
	top := h.Levels[len(h.Levels)-1]
	type ranked struct {
		group []int32
		band  int
		first int32
	}
	groups := make([]ranked, len(top.Groups))
	for i, g := range top.Groups {
		var total int64
		for _, s := range g {
			total += h.occCount[s]
		}
		avg := total / int64(len(g))
		band := 0
		for v := avg; v > 0; v >>= 1 {
			band++
		}
		groups[i] = ranked{group: g, band: band, first: h.firstOcc[g[0]]}
	}
	sort.SliceStable(groups, func(a, b int) bool {
		if groups[a].band != groups[b].band {
			return groups[a].band > groups[b].band
		}
		return groups[a].first < groups[b].first
	})
	var seq []int32
	for _, g := range groups {
		seq = append(seq, g.group...)
	}
	return seq
}

// pairKey packs an unordered symbol pair, smaller symbol first. Pairs
// always hold two distinct symbols, so the packed key is never 0 — the
// empty-slot sentinel of the flat tables.
func pairKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(int32(b))&0xffffffff
}

// BuildHierarchy runs the efficient stack-simulation analysis. For each
// occurrence of a block x, the analysis needs the minimal footprint of a
// window joining the occurrence to some occurrence of each partner y
// (Definition 3 quantifies over every occurrence). Two LRU stack passes
// provide it:
//
//   - forward pass: when x is accessed, a partner y at stack depth d has
//     its last occurrence exactly d distinct blocks back, so the
//     occurrence is covered backward with footprint d;
//   - backward pass over the reversed trace: symmetric, covering the
//     occurrence forward to the next y.
//
// Folding the per-occurrence minima into a per-pair histogram yields,
// for every pair, the smallest w at which all occurrences of both blocks
// are covered — i.e. the level where the pair becomes affine. Total cost
// is O(N·wmax) time, matching the paper's "efficient solution" in §II-B.
func BuildHierarchy(t *trace.Trace, opt Options) *Hierarchy {
	h, _ := BuildHierarchyCtx(context.Background(), t, opt)
	return h
}

// BuildHierarchyCtx is BuildHierarchy with cancellation: the shard loops
// check ctx between chunks and periodically within a shard, so a job
// deadline can interrupt a long analysis mid-phase. On cancellation the
// partial hierarchy is discarded and ctx's error returned.
func BuildHierarchyCtx(ctx context.Context, t *trace.Trace, opt Options) (*Hierarchy, error) {
	wmax := opt.WMax
	if wmax <= 0 {
		wmax = DefaultWMax
	}
	sp := obs.StartSpan(ctx, "affinity.hierarchy")
	defer sp.End()
	tt := t.Trimmed()
	sp.SetAttr("trace_len", int64(len(tt.Syms)))
	sp.SetAttr("wmax", int64(wmax))
	h := newHierarchyShell(tt, wmax)
	if len(tt.Syms) == 0 {
		return h, nil
	}
	minW, err := pairMinWindowsStack(ctx, tt, wmax, opt.Workers, opt.Arena)
	if err != nil {
		return nil, err
	}
	buildLevels(h, wmax, minW)
	opt.Arena.putMinW(minW)
	return h, nil
}

// buildLevels fills hierarchy levels 2..wmax from the per-pair minimal
// affinity windows. Level w's affine-pair set is the threshold query
// minW(pair) <= w, answered directly against the flat table — no
// per-level set materialization. The merge chain is sequential because
// level w merges whole groups of level w-1 (lower-level precedence), but
// it is cheap next to the stack passes.
func buildLevels(h *Hierarchy, wmax int, minW *flathash.Sum64) {
	prev := h.Levels[0]
	for w := 2; w <= wmax; w++ {
		prev = mergeLevel(prev, w, minW, h.firstOcc)
		h.Levels[w-1] = prev
	}
}

// minShardSpan is the smallest shard the sharded stack passes accept, in
// multiples of wmax: warm-up replays up to wmax distinct symbols, so a
// shard must cover several times that to amortize the duplicated work.
const minShardSpan = 4

// cancelCheckMask throttles the in-shard context checks: the shard loops
// poll ctx.Err() once per (cancelCheckMask+1) occurrences.
const cancelCheckMask = 0x3FFF

// pairMinWindowsStack computes, for every symbol pair that becomes affine
// at some w <= wmax, that minimal w, using the two stack passes described
// on BuildHierarchy. The trace is split into contiguous shards, one
// independent pair of passes per shard; each shard warms its LRU stack
// by replaying just enough of the neighboring trace that its top-wmax
// stack views equal the full-trace simulation, so the per-shard
// histograms sum to exactly the serial result. Shard tables merge
// slab-to-slab into the first shard's table.
func pairMinWindowsStack(ctx context.Context, tt *trace.Trace, wmax, workers int, arena *Arena) (*flathash.Sum64, error) {
	n := len(tt.Syms)
	maxSym := tt.MaxSym()
	occCount := tt.Counts()

	chunks := parallel.Chunks(n, parallel.Workers(workers), minShardSpan*wmax)
	states := make([]*shardState, len(chunks))
	err := parallel.ForEachCtx(ctx, workers, len(chunks), func(ctx context.Context, i int) error {
		st := arena.getShard()
		states[i] = st
		return shardPairHists(ctx, st, tt.Syms, maxSym, wmax, chunks[i][0], chunks[i][1])
	})
	if err != nil {
		for _, st := range states {
			if st != nil {
				arena.putShard(st)
			}
		}
		return nil, err
	}
	pairs := &states[0].pairs
	for _, st := range states[1:] {
		pairs.MergeFrom(&st.pairs)
	}

	minW := reduceMinW(pairs, occCount, wmax, arena)
	for _, st := range states {
		arena.putShard(st)
	}
	return minW, nil
}

// reduceMinW folds the merged per-pair coverage histograms into the
// minimal-affine-window table: for each pair, the smallest w at which
// every occurrence of both symbols is covered. Shared by the buffered
// build and the streaming Feeder — the histograms sum identically over
// any contiguous sharding, so both paths reduce to the same table.
func reduceMinW(pairs *flathash.Slab32, occCount []int64, wmax int, arena *Arena) *flathash.Sum64 {
	minW := arena.getMinW()
	pairs.ForEach(func(key int64, counts []uint32) {
		x := int32(key >> 32)
		y := int32(key & 0xffffffff)
		wx := fullCoverageW(counts[:wmax+1], occCount[x])
		wy := fullCoverageW(counts[wmax+1:], occCount[y])
		if wx < 0 || wy < 0 {
			return // some occurrence is never covered within wmax
		}
		// Values are the minimal affine window, always >= 1, so 0 (the
		// table's absent value) keeps meaning "never affine".
		minW.Set(key, int64(max(wx, wy)))
	})
	return minW
}

// shardPairHists runs the two stack passes over positions [lo, hi) and
// accumulates the shard's per-pair coverage histograms into st.pairs:
// counts[dir*(wmax+1)+d] counts occurrences of the dir-side symbol whose
// minimal coverage footprint is d.
func shardPairHists(ctx context.Context, st *shardState, syms []int32, maxSym int32, wmax, lo, hi int) error {
	st.prepare(maxSym, 2*(wmax+1))

	// Pass 1 (forward): snapshot for each position the top wmax of the
	// LRU stack straight into the span buffer, in depth order. Entry 0 of
	// a span is the current symbol itself (the stack top, depth 1), so the
	// partner at span index k has backward-coverage depth k+1. Storing the
	// snapshot verbatim avoids an intermediate buffer and copy. The
	// warm-up replays the span holding the last wmax distinct symbols
	// before lo, which fully determines the stack's top wmax.
	if cap(st.offsets) < hi-lo+1 {
		st.offsets = make([]int32, hi-lo+1)
	} else {
		st.offsets = st.offsets[:hi-lo+1]
	}
	// Each span holds at most wmax entries, so sizing the buffer up front
	// turns every snapshot append into a plain store (no growth copies).
	if spanCap := (hi - lo) * wmax; cap(st.partnerSym) < spanCap {
		st.partnerSym = make([]int32, 0, spanCap)
	} else {
		st.partnerSym = st.partnerSym[:0]
	}
	if cap(st.topk) < wmax {
		st.topk = make([]int32, 0, wmax)
	}
	st.stack.Reset(maxSym)
	stack := &st.stack
	for i := st.warmBeforeScratch(syms, lo, wmax); i < lo; i++ {
		stack.Access(syms[i])
	}
	for i := lo; i < hi; i++ {
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		stack.Access(syms[i])
		st.offsets[i-lo] = int32(len(st.partnerSym))
		st.partnerSym = stack.AppendTopK(st.partnerSym, wmax)
	}
	st.offsets[hi-lo] = int32(len(st.partnerSym))

	// Pass 2 (backward, over the reversed trace): merge forward coverage
	// with pass 1's backward coverage per occurrence, and fold minima
	// into the per-pair histograms. The warm-up replays, in reverse
	// order, the span holding the first wmax distinct symbols at or
	// after hi. The merge scratch is the epoch-stamped dense array of
	// shardState: one load and store per partner instead of a linear
	// scan over the merged set.
	st.stack.Reset(maxSym)
	for i := st.warmAfterScratch(syms, hi, wmax) - 1; i >= hi; i-- {
		stack.Access(syms[i])
	}
	stride := wmax + 1
	for i := hi - 1; i >= lo; i-- {
		if i&cancelCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		cur := syms[i]
		stack.Access(cur)
		st.bumpEpoch()
		// Span entry 0 is cur itself; partners start at index 1 with
		// backward-coverage depth 2.
		base := st.offsets[i-lo]
		for k, y := range st.partnerSym[base+1 : st.offsets[i-lo+1]] {
			st.add(y, uint8(k+2))
		}
		st.topk = stack.AppendTopK(st.topk[:0], wmax)
		for d := 1; d < len(st.topk); d++ {
			st.add(st.topk[d], uint8(d+1))
		}
		for _, y := range st.touched {
			slot := st.depthOf(y)
			if cur > y {
				slot += stride
			}
			st.pairs.Inc(pairKey(cur, y), slot)
		}
	}
	return nil
}

// warmBefore returns the largest p <= lo such that syms[p:lo] contains
// need distinct symbols (or 0 if the prefix holds fewer). Replaying
// syms[p:lo] into an empty LRU stack reproduces the full simulation's
// top-need stack prefix at position lo: the need most recent distinct
// symbols all have their last pre-lo occurrence in [p, lo), and their
// relative recency order is preserved.
//
// The kernel uses the allocation-free shardState.warmBeforeScratch;
// this map-based form is the test oracle for the shard-boundary cases.
func warmBefore(syms []int32, lo, need int) int {
	seen := make(map[int32]struct{}, need)
	p := lo
	for p > 0 && len(seen) < need {
		p--
		seen[syms[p]] = struct{}{}
	}
	return p
}

// warmAfter is warmBefore on the reversed trace: the smallest q >= hi
// such that syms[hi:q] contains need distinct symbols (or len(syms) if
// the suffix holds fewer).
func warmAfter(syms []int32, hi, need int) int {
	seen := make(map[int32]struct{}, need)
	q := hi
	for q < len(syms) && len(seen) < need {
		seen[syms[q]] = struct{}{}
		q++
	}
	return q
}

// fullCoverageW returns the smallest w such that the cumulative count of
// occurrences with minimal footprint <= w reaches total, or -1 if the
// histogram never reaches total.
func fullCoverageW(counts []uint32, total int64) int {
	var cum int64
	for d := 0; d < len(counts); d++ {
		cum += int64(counts[d])
		if cum == total {
			return d
		}
	}
	return -1
}

// newHierarchyShell prepares the hierarchy with the w=1 partition
// (every block its own group, per Definition 5) and first-occurrence
// ordering. A single pass over the trace yields the distinct symbols in
// first-occurrence order directly — no sort needed.
func newHierarchyShell(tt *trace.Trace, wmax int) *Hierarchy {
	var firstOcc []int32
	var occCount []int64
	var syms []int32
	if len(tt.Syms) > 0 {
		n := int(tt.MaxSym()) + 1
		firstOcc = make([]int32, n)
		occCount = make([]int64, n)
		for i := range firstOcc {
			firstOcc[i] = -1
		}
		for i, s := range tt.Syms {
			if firstOcc[s] < 0 {
				firstOcc[s] = int32(i)
				syms = append(syms, s)
			}
			occCount[s]++
		}
	}
	return newHierarchyShellFrom(firstOcc, occCount, syms, wmax)
}

// newHierarchyShellFrom builds the shell from already-accumulated
// first-occurrence and count tables plus the symbols in first-occurrence
// order — the form the streaming Feeder maintains incrementally.
func newHierarchyShellFrom(firstOcc []int32, occCount []int64, order []int32, wmax int) *Hierarchy {
	h := &Hierarchy{Levels: make([]Partition, wmax), firstOcc: firstOcc, occCount: occCount}
	base := Partition{W: 1, Groups: make([][]int32, len(order))}
	for i, s := range order {
		base.Groups[i] = []int32{s}
	}
	h.Levels[0] = base
	for w := 2; w <= wmax; w++ {
		h.Levels[w-1] = base // overwritten by the builder; harmless default
	}
	return h
}

// mergeLevel forms the partition at window w by greedily merging the
// previous level's groups (Algorithm 1 with lower-level precedence):
// units are considered in first-occurrence order; a unit joins the first
// existing group with which *every* cross pair of blocks is affine at
// w, otherwise it starts a new group.
func mergeLevel(prev Partition, w int, minW *flathash.Sum64, firstOcc []int32) Partition {
	type group struct {
		members []int32
	}
	var groups []*group
	for _, unit := range prev.Groups {
		placed := false
		for _, g := range groups {
			if unitCompatible(unit, g.members, minW, int64(w)) {
				g.members = append(g.members, unit...)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, &group{members: append([]int32(nil), unit...)})
		}
	}
	// Units joined a group in first-occurrence order and stay contiguous
	// inside it, so lower-level groups remain adjacent in the sequence
	// (the bottom-up traversal property). Groups were also created in
	// first-occurrence order of their first unit, so no re-sorting is
	// needed — and none is allowed, since sorting members would tear
	// units apart.
	out := Partition{W: w, Groups: make([][]int32, len(groups))}
	for i, g := range groups {
		out.Groups[i] = g.members
	}
	sort.SliceStable(out.Groups, func(a, b int) bool {
		return firstOcc[out.Groups[a][0]] < firstOcc[out.Groups[b][0]]
	})
	return out
}

// unitCompatible reports whether every cross pair between unit and
// members is affine at window w: the pair's minimal affine window is
// recorded (non-zero) and at most w.
func unitCompatible(unit, members []int32, minW *flathash.Sum64, w int64) bool {
	for _, a := range unit {
		for _, b := range members {
			mw := minW.Get(pairKey(a, b))
			if mw == 0 || mw > w {
				return false
			}
		}
	}
	return true
}
