package interp

import (
	"reflect"
	"testing"

	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// straightLine builds main: entry -> mid -> exit.
func straightLine(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("line", 0)
	f := b.Func("main")
	e := f.Block("entry", 8)
	m := f.Block("mid", 16)
	x := f.Block("exit", 4)
	e.Jump(m)
	m.Jump(x)
	x.Exit()
	return b.MustBuild()
}

func TestStraightLineTrace(t *testing.T) {
	p := straightLine(t)
	res, err := Run(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Error("not completed")
	}
	want := []int32{0, 1, 2}
	if !reflect.DeepEqual(res.Blocks.Syms, want) {
		t.Errorf("trace = %v, want %v", res.Blocks.Syms, want)
	}
	if res.Steps != 3 {
		t.Errorf("Steps = %d, want 3", res.Steps)
	}
	if res.DynamicBytes != 28 {
		t.Errorf("DynamicBytes = %d, want 28", res.DynamicBytes)
	}
}

func TestCountedLoop(t *testing.T) {
	b := ir.NewBuilder("loop", 0)
	f := b.Func("main")
	e := f.Block("entry", 8)
	body := f.Block("body", 8)
	x := f.Block("exit", 8)
	e.Jump(body)
	body.Loop(5, body, x)
	x.Exit()
	p := b.MustBuild()

	res, err := Run(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// entry + 5 body iterations + exit.
	want := []int32{0, 1, 1, 1, 1, 1, 2}
	if !reflect.DeepEqual(res.Blocks.Syms, want) {
		t.Errorf("trace = %v, want %v", res.Blocks.Syms, want)
	}
}

func TestNestedLoopCounterResets(t *testing.T) {
	// outer runs 3 times; inner runs 2 times per outer iteration.
	b := ir.NewBuilder("nest", 0)
	f := b.Func("main")
	e := f.Block("entry", 8)
	inner := f.Block("inner", 8)
	outer := f.Block("outerLatch", 8)
	x := f.Block("exit", 8)
	e.Jump(inner)
	inner.Loop(2, inner, outer)
	outer.Loop(3, inner, x)
	x.Exit()
	p := b.MustBuild()

	res, err := Run(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Blocks.Counts()
	if counts[1] != 6 { // 3 outer * 2 inner
		t.Errorf("inner executed %d times, want 6", counts[1])
	}
	if counts[2] != 3 {
		t.Errorf("outer latch executed %d times, want 3", counts[2])
	}
}

func TestCallsAndReturns(t *testing.T) {
	b := ir.NewBuilder("call", 0)
	main := b.Func("main")
	callee := b.Func("F")
	m0 := main.Block("m0", 8)
	m1 := main.Block("m1", 8)
	f0 := callee.Block("f0", 8)
	m0.Call(callee, m1)
	m1.Exit()
	f0.Return()
	p := b.MustBuild()

	res, err := Run(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 2, 1}
	if !reflect.DeepEqual(res.Blocks.Syms, want) {
		t.Errorf("trace = %v, want %v", res.Blocks.Syms, want)
	}
}

func TestReturnFromEntryEndsProgram(t *testing.T) {
	b := ir.NewBuilder("ret", 0)
	f := b.Func("main")
	f.Block("only", 8).Return()
	p := b.MustBuild()
	res, err := Run(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Steps != 1 {
		t.Errorf("Completed=%v Steps=%d, want true/1", res.Completed, res.Steps)
	}
}

func TestGlobalCorrelation(t *testing.T) {
	// X sets g0 = 1 always; Y branches on g0 == 1. Y must always take Y2.
	b := ir.NewBuilder("corr", 1)
	main := b.Func("main")
	x := b.Func("X")
	y := b.Func("Y")

	m0 := main.Block("m0", 8)
	m1 := main.Block("m1", 8)
	m2 := main.Block("m2", 8)
	m0.Call(x, m1)
	m1.Call(y, m2)
	m2.Exit()

	x0 := x.Block("x0", 8)
	x0.Set(0, 1)
	x0.Return()

	y0 := y.Block("y0", 8)
	y2 := y.Block("y2", 8)
	y3 := y.Block("y3", 8)
	y0.Branch(ir.GlobalEq{Reg: 0, Val: 1}, y2, y3)
	y2.Return()
	y3.Return()
	p := b.MustBuild()

	res, err := Run(p, Options{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Blocks.Counts()
	at := func(id ir.BlockID) int64 {
		if int(id) >= len(counts) {
			return 0
		}
		return counts[id]
	}
	if at(ir.BlockID(y2.ID())) != 1 || at(ir.BlockID(y3.ID())) != 0 {
		t.Errorf("Y2=%d Y3=%d, want 1/0", at(ir.BlockID(y2.ID())), at(ir.BlockID(y3.ID())))
	}
}

func probLoopProg(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("prob", 0)
	f := b.Func("main")
	e := f.Block("entry", 8)
	hot := f.Block("hot", 8)
	cold := f.Block("cold", 8)
	latch := f.Block("latch", 8)
	x := f.Block("exit", 8)
	e.Jump(hot)
	hot.Branch(ir.Prob{P: 0.25}, cold, latch)
	cold.Jump(latch)
	latch.Loop(10000, hot, x)
	x.Exit()
	return b.MustBuild()
}

func TestProbBranchFrequency(t *testing.T) {
	p := probLoopProg(t)
	res, err := Run(p, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Blocks.Counts()
	frac := float64(counts[2]) / float64(counts[1])
	if frac < 0.2 || frac > 0.3 {
		t.Errorf("cold fraction = %v, want ~0.25", frac)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	p := probLoopProg(t)
	a, err := Run(p, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Blocks.Syms, b.Blocks.Syms) {
		t.Error("same seed produced different traces")
	}
	c, err := Run(p, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Blocks.Syms, c.Blocks.Syms) {
		t.Error("different seeds produced identical traces (suspicious for a probabilistic program)")
	}
}

func TestMaxStepsStopsRunaway(t *testing.T) {
	b := ir.NewBuilder("spin", 0)
	f := b.Func("main")
	e := f.Block("spin", 8)
	e.Jump(e)
	p := b.MustBuild()

	res, err := Run(p, Options{Seed: 1, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Error("runaway program reported completed")
	}
	if res.Steps != 100 {
		t.Errorf("Steps = %d, want 100", res.Steps)
	}
}

func TestCallDepthGuard(t *testing.T) {
	b := ir.NewBuilder("recurse", 0)
	f := b.Func("main")
	e := f.Block("entry", 8)
	n := f.Block("next", 8)
	e.Call(f, n) // infinite recursion
	n.Return()
	p := b.MustBuild()
	if _, err := Run(p, Options{Seed: 1, MaxCallDepth: 32}); err == nil {
		t.Error("unbounded recursion not rejected")
	}
}

func TestRunRejectsInvalidProgram(t *testing.T) {
	p := straightLine(t)
	p.Blocks[0].Size = 0
	if _, err := Run(p, Options{Seed: 1}); err == nil {
		t.Error("Run accepted invalid program")
	}
}

func TestFuncTraceFromExecution(t *testing.T) {
	b := ir.NewBuilder("ft", 0)
	main := b.Func("main")
	g := b.Func("G")
	m0 := main.Block("m0", 8)
	m1 := main.Block("m1", 8)
	m2 := main.Block("m2", 8)
	g0 := g.Block("g0", 8)
	m0.Call(g, m1)
	m1.Call(g, m2)
	m2.Exit()
	g0.Return()
	p := b.MustBuild()

	res, err := Run(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ft := trace.FuncTrace(p, res.Blocks)
	want := []int32{0, 1, 0, 1, 0}
	if !reflect.DeepEqual(ft.Syms, want) {
		t.Errorf("function trace = %v, want %v", ft.Syms, want)
	}
}
