package textplot

import (
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	c := &Chart{Title: "misses", Width: 10, Format: "%.1f"}
	c.Add("a", 10)
	c.Add("bb", 5)
	c.Add("ccc", 0)
	out := c.String()
	if !strings.HasPrefix(out, "misses\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if strings.Count(lines[2], "#") != 5 {
		t.Errorf("half bar wrong:\n%s", out)
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar should be empty:\n%s", out)
	}
}

func TestChartBaseline(t *testing.T) {
	c := &Chart{Baseline: 1, Width: 10}
	c.Add("faster", 1.10)
	c.Add("slower", 0.95)
	out := c.String()
	if !strings.Contains(out, "#") {
		t.Errorf("above-baseline bar missing:\n%s", out)
	}
	if !strings.Contains(out, "<") {
		t.Errorf("below-baseline marker missing:\n%s", out)
	}
}

func TestChartDefaults(t *testing.T) {
	c := &Chart{}
	c.Add("x", 1)
	out := c.String()
	if !strings.Contains(out, "1.00") {
		t.Errorf("default format not applied:\n%s", out)
	}
}
