package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{32}$`)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !re.MatchString(id) {
			t.Fatalf("trace id %q not 32 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestTraceIDCarriage(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Fatalf("empty ctx trace id = %q, want \"\"", got)
	}
	ctx = WithTraceID(ctx, "abc123")
	if got := TraceID(ctx); got != "abc123" {
		t.Fatalf("trace id = %q, want abc123", got)
	}
}

func TestLoggerCarriage(t *testing.T) {
	ctx := context.Background()
	if got := Logger(ctx); got != NopLogger {
		t.Fatalf("empty ctx logger = %v, want NopLogger", got)
	}
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelInfo)
	ctx = WithLogger(ctx, l.With("trace_id", "t1"))
	Logger(ctx).Info("hello", "k", 42)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["trace_id"] != "t1" || rec["k"] != float64(42) {
		t.Fatalf("log line missing fields: %v", rec)
	}
}

func TestNewLoggerLevel(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, slog.LevelWarn)
	l.Info("dropped")
	if buf.Len() != 0 {
		t.Fatalf("info line emitted at warn level: %s", buf.String())
	}
	l.Warn("kept")
	if buf.Len() == 0 {
		t.Fatal("warn line dropped at warn level")
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	// Must not panic and must report disabled at every level.
	NopLogger.Info("x")
	NopLogger.Error("x")
	if NopLogger.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("NopLogger claims to be enabled")
	}
}

func TestRecorderCarriage(t *testing.T) {
	ctx := context.Background()
	if RecorderFrom(ctx) != nil {
		t.Fatal("empty ctx recorder != nil")
	}
	rec := NewRecorder(8)
	ctx = WithRecorder(ctx, rec)
	if RecorderFrom(ctx) != rec {
		t.Fatal("recorder not carried")
	}
}
