package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanRecording(t *testing.T) {
	rec := NewRecorder(8)
	ctx := WithRecorder(context.Background(), rec)

	s := StartSpan(ctx, "phase.a")
	s.SetAttr("bytes", 1234)
	time.Sleep(time.Millisecond)
	s.End()

	spans, dropped := rec.Snapshot()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(spans) != 1 {
		t.Fatalf("len(spans) = %d, want 1", len(spans))
	}
	sd := spans[0]
	if sd.Name != "phase.a" {
		t.Fatalf("name = %q", sd.Name)
	}
	if sd.Dur <= 0 {
		t.Fatalf("dur = %v, want > 0", sd.Dur)
	}
	if sd.Start < 0 {
		t.Fatalf("start = %v, want >= 0", sd.Start)
	}
	if sd.NAttr != 1 || sd.Attrs[0] != (Attr{Key: "bytes", Value: 1234}) {
		t.Fatalf("attrs = %v (n=%d)", sd.Attrs, sd.NAttr)
	}
}

func TestSpanNoRecorderIsNoop(t *testing.T) {
	s := StartSpan(context.Background(), "ignored")
	s.SetAttr("k", 1) // must not panic
	s.End()
	var zero Span
	zero.End()
	zero.SetAttr("k", 1)
}

func TestSpanInProgressMarker(t *testing.T) {
	rec := NewRecorder(4)
	ctx := WithRecorder(context.Background(), rec)
	_ = StartSpan(ctx, "never.ended")
	spans, _ := rec.Snapshot()
	if len(spans) != 1 || spans[0].Dur != -1 {
		t.Fatalf("in-progress span dur = %v, want -1", spans[0].Dur)
	}
}

func TestRecorderBoundAndDropHook(t *testing.T) {
	rec := NewRecorder(2)
	var hookCalls int
	rec.SetDropHook(func() { hookCalls++ })
	ctx := WithRecorder(context.Background(), rec)

	for i := 0; i < 5; i++ {
		s := StartSpan(ctx, "x")
		s.End()
	}
	spans, dropped := rec.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("len(spans) = %d, want 2 (bounded)", len(spans))
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	if hookCalls != 3 {
		t.Fatalf("drop hook calls = %d, want 3", hookCalls)
	}
	if rec.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", rec.Dropped())
	}
}

func TestRecorderRecordExternal(t *testing.T) {
	rec := NewRecorder(4)
	begin := rec.Begin()
	start := begin.Add(5 * time.Millisecond)
	rec.Record("queue.wait", start, 7*time.Millisecond)
	spans, _ := rec.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("len = %d", len(spans))
	}
	if spans[0].Start != 5*time.Millisecond || spans[0].Dur != 7*time.Millisecond {
		t.Fatalf("span = %+v", spans[0])
	}
}

func TestRecorderReset(t *testing.T) {
	rec := NewRecorder(2)
	ctx := WithRecorder(context.Background(), rec)
	for i := 0; i < 3; i++ {
		StartSpan(ctx, "x").End()
	}
	before := rec.Begin()
	time.Sleep(time.Millisecond)
	rec.Reset()
	spans, dropped := rec.Snapshot()
	if len(spans) != 0 || dropped != 0 {
		t.Fatalf("after reset: %d spans, %d dropped", len(spans), dropped)
	}
	if !rec.Begin().After(before) {
		t.Fatal("reset did not advance epoch")
	}
	// Capacity retained: recording still works and still bounds at 2.
	for i := 0; i < 3; i++ {
		StartSpan(ctx, "y").End()
	}
	spans, dropped = rec.Snapshot()
	if len(spans) != 2 || dropped != 1 {
		t.Fatalf("after reuse: %d spans, %d dropped", len(spans), dropped)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(1024)
	ctx := WithRecorder(context.Background(), rec)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := StartSpan(ctx, "conc")
				s.SetAttr("i", int64(i))
				s.End()
			}
		}()
	}
	wg.Wait()
	spans, dropped := rec.Snapshot()
	if len(spans) != 800 || dropped != 0 {
		t.Fatalf("spans = %d dropped = %d, want 800/0", len(spans), dropped)
	}
	for _, sd := range spans {
		if sd.Dur < 0 {
			t.Fatalf("unfinished span in concurrent run: %+v", sd)
		}
	}
}

func TestSpanZeroAlloc(t *testing.T) {
	rec := NewRecorder(4096)
	ctx := WithRecorder(context.Background(), rec)
	allocs := testing.AllocsPerRun(1000, func() {
		s := StartSpan(ctx, "hot")
		s.SetAttr("n", 1)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("span start/attr/end allocs = %v, want 0", allocs)
	}
}

func TestSpanNoRecorderZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		s := StartSpan(ctx, "hot")
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("no-recorder span allocs = %v, want 0", allocs)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	rec := NewRecorder(1024)
	ctx := WithRecorder(context.Background(), rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1023 == 0 {
			b.StopTimer()
			rec.Reset() // stay on the record path, not the drop path
			b.StartTimer()
		}
		s := StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkSpanStartEndDropped(b *testing.B) {
	// The saturated path: buffer full, every span dropped + counted.
	rec := NewRecorder(1)
	StartSpan(WithRecorder(context.Background(), rec), "fill").End()
	ctx := WithRecorder(context.Background(), rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := StartSpan(ctx, "bench")
		s.End()
	}
}
