package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"codelayout/internal/cachesim"
	"codelayout/internal/core"
	"codelayout/internal/layout"
	"codelayout/internal/obs"
	"codelayout/internal/trace"
)

// testProg is the cheapest suite program to generate and profile.
const testProg = "458.sjeng"

var (
	traceOnce  sync.Once
	traceBytes []byte
	traceProf  *core.Profile
	traceErr   error
)

// recordedTrace profiles testProg once and returns its trimmed
// basic-block trace encoded as CLTR bytes — exactly what
// `tracedump -record` would have written.
func recordedTrace(t *testing.T) ([]byte, *core.Profile) {
	t.Helper()
	traceOnce.Do(func() {
		p, err := core.LoadProgram(testProg)
		if err != nil {
			traceErr = err
			return
		}
		prof, err := core.ProfileProgram(p, core.TrainSeed)
		if err != nil {
			traceErr = err
			return
		}
		var buf bytes.Buffer
		if _, err := prof.Blocks.Trimmed().WriteTo(&buf); err != nil {
			traceErr = err
			return
		}
		traceBytes = buf.Bytes()
		traceProf = prof
	})
	if traceErr != nil {
		t.Fatal(traceErr)
	}
	return traceBytes, traceProf
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func submitRaw(t *testing.T, ts *httptest.Server, body []byte, query string) (jobView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad job JSON %s: %v", raw, err)
		}
	}
	return v, resp.StatusCode
}

func errorBody(t *testing.T, ts *httptest.Server, body []byte, query string) (string, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Error string `json:"error"`
	}
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &v)
	return v.Error, resp.StatusCode
}

func waitJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusDone || v.Status == StatusFailed || v.Status == StatusCanceled {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobView{}
}

// scrapeMetrics fetches /metrics and parses it with the strict
// Prometheus text parser, linting the whole exposition — every scrape
// in the suite revalidates the full format, not just the lines a test
// happens to look at.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("metrics Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	exp, err := obs.LintPrometheusText(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("strict parse/lint of /metrics failed: %v\n%s", err, raw)
	}
	return exp
}

func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	exp := scrapeMetrics(t, ts)
	for _, s := range exp.Series {
		if s.Name == name && len(s.Labels) == 0 {
			return s.Value
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestEndToEnd is the acceptance path: submit a recorded trace, poll
// the job, and check the result against a direct in-process run of the
// same optimizer on the same trace.
func TestEndToEnd(t *testing.T) {
	raw, prof := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 2, QueueDepth: 8, OptWorkers: 1})

	const optName = "func-affinity"
	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt="+optName)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if v.Status != StatusQueued && v.Status != StatusRunning {
		t.Fatalf("fresh job status %q", v.Status)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %+v", done)
	}
	res := done.Result
	if res == nil {
		t.Fatal("done job has no result")
	}

	// Reference: the same pipeline, run directly.
	tr, err := trace.ReadFrom(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.OptimizerByName(optName)
	if err != nil {
		t.Fatal(err)
	}
	opt.Workers = 1
	refProf := &core.Profile{Prog: prof.Prog, Blocks: tr}
	l, rep, err := opt.Optimize(refProf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Report.Sequence, rep.Sequence) {
		t.Error("served sequence differs from direct Optimize call")
	}
	if res.Report.SeqLen != rep.SeqLen || res.Report.TraceLen != rep.TraceLen {
		t.Errorf("served report %+v != direct %+v", res.Report, rep)
	}
	cfg := cachesim.L1IDefault
	wantBefore := cachesim.SimulateSolo(cfg,
		layout.NewReplayer(layout.Original(prof.Prog), tr, cfg.LineBytes, false)).Stats.MissRatio()
	wantAfter := cachesim.SimulateSolo(cfg,
		layout.NewReplayer(l, tr, cfg.LineBytes, false)).Stats.MissRatio()
	if res.MissBefore != wantBefore || res.MissAfter != wantAfter {
		t.Errorf("served miss ratios %v/%v != direct %v/%v",
			res.MissBefore, res.MissAfter, wantBefore, wantAfter)
	}
	if res.MissAfter >= res.MissBefore {
		t.Errorf("optimization did not reduce simulated misses: %v -> %v", res.MissBefore, res.MissAfter)
	}
	if res.TraceDigest != tr.Digest() {
		t.Errorf("trace digest %s != canonical %s", res.TraceDigest, tr.Digest())
	}
}

// TestCacheHit: resubmitting the identical trace+optimizer completes
// instantly from the content-addressed cache, visible in /metrics, and
// the layout stays addressable via /v1/layouts/{digest}.
func TestCacheHit(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1})

	v1, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-trg")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	first := waitJob(t, ts, v1.ID)
	if first.Status != StatusDone {
		t.Fatalf("first job failed: %+v", first)
	}
	if got := metricValue(t, ts, "layoutd_cache_hits_total"); got != 0 {
		t.Fatalf("cache hits before resubmit = %v", got)
	}

	v2, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-trg")
	if code != http.StatusOK {
		t.Fatalf("resubmit status %d, want 200", code)
	}
	if !v2.Cached || v2.Status != StatusDone || v2.Result == nil {
		t.Fatalf("resubmit not served from cache: %+v", v2)
	}
	if v2.Digest != v1.Digest {
		t.Fatalf("digest changed across identical submissions: %s vs %s", v2.Digest, v1.Digest)
	}
	if got := metricValue(t, ts, "layoutd_cache_hits_total"); got != 1 {
		t.Fatalf("cache_hits_total = %v, want 1", got)
	}
	if got := metricValue(t, ts, "layoutd_jobs_completed_total"); got != 1 {
		t.Fatalf("jobs_completed_total = %v, want 1 (cache hit must not recompute)", got)
	}

	// A different optimizer is a different content address.
	v3, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-callgraph")
	if code != http.StatusAccepted || v3.Digest == v1.Digest {
		t.Fatalf("distinct optimizer shared a digest (code %d)", code)
	}
	waitJob(t, ts, v3.ID)

	// Fetch by content address.
	resp, err := http.Get(ts.URL + "/v1/layouts/" + v1.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/layouts/%s = %d", v1.Digest, resp.StatusCode)
	}
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Optimizer != "func-trg" || len(res.Report.Sequence) == 0 {
		t.Fatalf("cached layout lookup returned %+v", res)
	}
}

// TestMultipartSubmission exercises the streaming multipart path with
// params carried as form fields.
func TestMultipartSubmission(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.WriteField("prog", testProg); err != nil {
		t.Fatal(err)
	}
	if err := mw.WriteField("opt", "func-callgraph"); err != nil {
		t.Fatal(err)
	}
	fw, err := mw.CreateFormFile("trace", "t.trace")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(raw); err != nil {
		t.Fatal(err)
	}
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("multipart submit status %d: %s", resp.StatusCode, raw)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("multipart job failed: %+v", done)
	}
}

// TestQueueFull429: with one slow worker and a one-deep queue, the
// third concurrent submission is rejected with 429 and counted.
func TestQueueFull429(t *testing.T) {
	raw, _ := recordedTrace(t)
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 1, OptWorkers: 1})

	started := make(chan struct{}, 8)
	release := make(chan struct{})
	real := s.optimize
	s.optimize = func(ctx context.Context, req *jobRequest) (*Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return real(ctx, req)
	}

	// Occupy the worker, then the queue slot. Distinct prune params keep
	// each submission out of the others' content address.
	v1, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=100")
	if code != http.StatusAccepted {
		t.Fatalf("submit 1 status %d", code)
	}
	<-started
	_, code = submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=101")
	if code != http.StatusAccepted {
		t.Fatalf("submit 2 status %d", code)
	}
	msg, code := errorBody(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=102")
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit 3 status %d, want 429", code)
	}
	if !strings.Contains(msg, "queue full") {
		t.Errorf("429 body %q", msg)
	}
	if got := metricValue(t, ts, "layoutd_jobs_rejected_total"); got != 1 {
		t.Errorf("jobs_rejected_total = %v, want 1", got)
	}
	close(release)
	if done := waitJob(t, ts, v1.ID); done.Status != StatusDone {
		t.Fatalf("job 1 failed after release: %+v", done)
	}
}

// TestShutdownDrainsInFlight: Shutdown waits for queued and running
// jobs to finish, and post-shutdown submissions are rejected.
func TestShutdownDrainsInFlight(t *testing.T) {
	raw, _ := recordedTrace(t)
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	entered := make(chan struct{}, 8)
	real := s.optimize
	s.optimize = func(ctx context.Context, req *jobRequest) (*Result, error) {
		entered <- struct{}{}
		time.Sleep(50 * time.Millisecond) // in flight while Shutdown runs
		return real(ctx, req)
	}

	v1, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=200")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	v2, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=201")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, v := range []jobView{v1, v2} {
		got := waitJob(t, ts, v.ID)
		if got.Status != StatusDone {
			t.Errorf("job %s not drained: %+v", v.ID, got)
		}
	}
	if _, code := errorBody(t, ts, raw, "prog="+testProg+"&opt=func-affinity&prune=202"); code != http.StatusTooManyRequests {
		t.Errorf("post-shutdown submit status %d, want 429", code)
	}
}

// TestBadRequests covers the 400 surface: corrupt container, unknown
// optimizer/program, out-of-range symbols, missing params.
func TestBadRequests(t *testing.T) {
	raw, prof := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	cases := []struct {
		name     string
		body     []byte
		query    string
		wantCode int
		wantMsg  string
	}{
		{"bad magic", []byte("XXXX\x01\x00"), "prog=" + testProg + "&opt=func-affinity", 400, "bad magic"},
		{"truncated", []byte("CLTR\x01\x05\x02"), "prog=" + testProg + "&opt=func-affinity", 400, "occurrence"},
		{"empty trace", encodeTrace(t, nil), "prog=" + testProg + "&opt=func-affinity", 400, "empty"},
		{"unknown optimizer", raw, "prog=" + testProg + "&opt=nope", 400, "unknown optimizer"},
		{"unknown program", raw, "prog=999.nope&opt=func-affinity", 400, "999.nope"},
		{"missing params", raw, "", 400, "prog and opt"},
		{"symbol out of range", encodeTrace(t, []int32{int32(prof.Prog.NumBlocks() + 7)}),
			"prog=" + testProg + "&opt=func-affinity", 400, "out of range"},
	}
	for _, c := range cases {
		msg, code := errorBody(t, ts, c.body, c.query)
		if code != c.wantCode {
			t.Errorf("%s: status %d, want %d", c.name, code, c.wantCode)
		}
		if !strings.Contains(msg, c.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", c.name, msg, c.wantMsg)
		}
	}
}

func encodeTrace(t *testing.T, syms []int32) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := trace.New(syms).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFailedJobIsReported: a pipeline error surfaces as a failed job
// with its message, and counts in the failure metric.
func TestFailedJobIsReported(t *testing.T) {
	raw, _ := recordedTrace(t)
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})
	s.optimize = func(ctx context.Context, req *jobRequest) (*Result, error) {
		return nil, errors.New("synthetic pipeline failure")
	}
	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=bb-trg")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusFailed || !strings.Contains(done.Error, "synthetic") {
		t.Fatalf("job = %+v, want failed with message", done)
	}
	if got := metricValue(t, ts, "layoutd_jobs_failed_total"); got != 1 {
		t.Errorf("jobs_failed_total = %v, want 1", got)
	}
}

// TestHealthAndRegistry: liveness and the optimizer registry endpoint.
func TestHealthAndRegistry(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/optimizers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Optimizers []string `json:"optimizers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v.Optimizers, core.OptimizerNames()) {
		t.Errorf("registry endpoint = %v", v.Optimizers)
	}
}

// seriesValue finds one series by name and exact label set in a parsed
// exposition.
func seriesValue(t *testing.T, exp *obs.Exposition, name string, labels map[string]string) float64 {
	t.Helper()
	for _, s := range exp.Series {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s.Value
		}
	}
	t.Fatalf("series %s%v not found in exposition", name, labels)
	return 0
}

// TestMetricsHistogram: latency observations land in the per-optimizer
// histogram with consistent bucket cumulation, and the whole exposition
// survives the strict parser + linter.
func TestMetricsHistogram(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 1})
	s.metrics.latency.With("func-trg").Observe(3)
	s.metrics.latency.With("func-trg").Observe(30)
	s.metrics.latency.With("func-trg").Observe(60000)
	exp := scrapeMetrics(t, ts)
	for le, want := range map[string]float64{"5": 1, "50": 2, "+Inf": 3} {
		got := seriesValue(t, exp, "layoutd_optimize_latency_ms_bucket",
			map[string]string{"optimizer": "func-trg", "le": le})
		if got != want {
			t.Errorf("latency bucket le=%s = %v, want %v", le, got, want)
		}
	}
	if got := seriesValue(t, exp, "layoutd_optimize_latency_ms_count",
		map[string]string{"optimizer": "func-trg"}); got != 3 {
		t.Errorf("latency count = %v, want 3", got)
	}
	if typ := exp.Types["layoutd_optimize_latency_ms"]; typ != "histogram" {
		t.Errorf("latency TYPE = %q, want histogram", typ)
	}
}

// TestJobTraceTimeline: a finished job exposes its span timeline at
// /v1/jobs/{id}/trace — pipeline phases nested under the optimize span
// — and the same phase names land in layoutd_phase_seconds.
func TestJobTraceTimeline(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	if len(v.TraceID) != 32 {
		t.Fatalf("submit response traceId = %q, want 32 hex chars", v.TraceID)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %+v", done)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", resp.StatusCode)
	}
	var tv traceView
	if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	if tv.JobID != v.ID || tv.TraceID != v.TraceID {
		t.Fatalf("trace identity = %s/%s, want %s/%s", tv.JobID, tv.TraceID, v.ID, v.TraceID)
	}

	byName := map[string]spanView{}
	for _, sp := range tv.Spans {
		if sp.DurMS < 0 {
			t.Errorf("span %s still in progress on a finished job", sp.Name)
		}
		byName[sp.Name] = sp
	}
	for _, want := range []string{
		"queue.wait", "trace.decode", "optimize",
		"trace.prune", "affinity.hierarchy", "layout.emit", "cachesim.replay",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("trace missing span %q (have %v)", want, spanNames(tv.Spans))
		}
	}
	opt := byName["optimize"]
	for _, child := range []string{"trace.prune", "affinity.hierarchy", "layout.emit"} {
		c, ok := byName[child]
		if !ok {
			continue
		}
		if c.StartMS < opt.StartMS || c.DurMS > opt.DurMS+1 {
			t.Errorf("phase %s [%v +%vms] not nested in optimize [%v +%vms]",
				child, c.StartMS, c.DurMS, opt.StartMS, opt.DurMS)
		}
	}
	if hier := byName["affinity.hierarchy"]; hier.Attrs["trace_len"] <= 0 {
		t.Errorf("affinity.hierarchy attrs = %v, want trace_len > 0", hier.Attrs)
	}

	// The phases the trace shows are the phases the histogram counts.
	exp := scrapeMetrics(t, ts)
	for _, phase := range []string{"optimize", "affinity.hierarchy", "layout.emit"} {
		if got := seriesValue(t, exp, "layoutd_phase_seconds_count",
			map[string]string{"phase": phase}); got < 1 {
			t.Errorf("layoutd_phase_seconds_count{phase=%q} = %v, want >= 1", phase, got)
		}
	}

	resp2, err := http.Get(ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job = %d, want 404", resp2.StatusCode)
	}
}

func spanNames(spans []spanView) []string {
	names := make([]string, len(spans))
	for i, sp := range spans {
		names[i] = sp.Name
	}
	return names
}

// syncBuffer makes a bytes.Buffer safe for the server's logging
// goroutines to race against the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestJobLogsCarryTraceID: every structured log line a job emits
// carries the job's trace_id, end to end from accept to finish.
func TestJobLogsCarryTraceID(t *testing.T) {
	raw, _ := recordedTrace(t)
	var logs syncBuffer
	_, ts := newTestServer(t, Config{
		JobWorkers: 1, QueueDepth: 4, OptWorkers: 1,
		Logger: obs.NewLogger(&logs, slog.LevelInfo),
	})

	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-trg")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %+v", done)
	}

	// The finish log is written after the status flips to done; wait for
	// it rather than racing it.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(logs.String(), "job finished") {
		if time.Now().After(deadline) {
			t.Fatalf("no 'job finished' log line; logs:\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	var jobLines int
	for _, line := range strings.Split(strings.TrimSpace(logs.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", line, err)
		}
		if _, ok := rec["job"]; !ok {
			continue
		}
		jobLines++
		if rec["trace_id"] != v.TraceID {
			t.Errorf("log line %q trace_id = %v, want %s", rec["msg"], rec["trace_id"], v.TraceID)
		}
		if rec["job"] != v.ID {
			t.Errorf("log line %q job = %v, want %s", rec["msg"], rec["job"], v.ID)
		}
	}
	if jobLines < 3 { // accepted, started, finished
		t.Errorf("only %d job log lines; logs:\n%s", jobLines, logs.String())
	}
}

// TestDebugJobsRing: finished jobs appear in the bounded debug ring,
// newest first, with their trace identity.
func TestDebugJobsRing(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-callgraph")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job failed: %+v", done)
	}

	resp, err := http.Get(ts.URL + "/v1/debug/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []jobSummary `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	var found *jobSummary
	for i := range body.Jobs {
		if body.Jobs[i].ID == v.ID {
			found = &body.Jobs[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("job %s not in debug ring: %+v", v.ID, body.Jobs)
	}
	if found.TraceID != v.TraceID || found.Status != StatusDone ||
		found.Prog != testProg || found.Optimizer != "func-callgraph" {
		t.Errorf("debug summary = %+v", *found)
	}
	if found.ElapsedMS <= 0 {
		t.Errorf("debug summary elapsed_ms = %v, want > 0", found.ElapsedMS)
	}
}
