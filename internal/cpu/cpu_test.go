package cpu

import (
	"testing"

	"codelayout/internal/cachesim"
	"codelayout/internal/interp"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/trace"
)

// loopProgram builds a cyclic loop over `blocks` blocks of `size` bytes,
// executed `iters` times, with the given data CPI.
func loopProgram(t testing.TB, blocks int, size int32, iters int32, dataCPI float64) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("loop", 0)
	b.SetDataCPI(dataCPI)
	f := b.Func("main")
	bbs := make([]*ir.BlockBuilder, blocks)
	for i := range bbs {
		bbs[i] = f.Block("b", size)
	}
	latch := f.Block("latch", 4)
	exit := f.Block("exit", 4)
	for i := 0; i < blocks-1; i++ {
		bbs[i].Jump(bbs[i+1])
	}
	bbs[blocks-1].Jump(latch)
	latch.Loop(iters, bbs[0], exit)
	exit.Exit()
	return b.MustBuild()
}

func traceOf(t testing.TB, p *ir.Program) *trace.Trace {
	t.Helper()
	res, err := interp.Run(p, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return res.Blocks
}

func spec(t testing.TB, p *ir.Program, wrap bool) ThreadSpec {
	t.Helper()
	l := layout.Original(p)
	return ThreadSpec{
		Replayer: layout.NewReplayer(l, traceOf(t, p), 64, wrap),
		DataCPI:  p.DataCPI,
	}
}

func TestSoloNoStallsMeansCyclesEqualInstrs(t *testing.T) {
	p := loopProgram(t, 8, 64, 2000, 0)
	r := RunSolo(DefaultParams(), spec(t, p, false))
	if r.Instrs == 0 {
		t.Fatal("no instructions")
	}
	// Tiny working set: only a handful of cold misses; cycles must be
	// dominated by issue.
	if r.Cycles < r.Instrs {
		t.Errorf("cycles %d < instrs %d", r.Cycles, r.Instrs)
	}
	slack := float64(r.Cycles-r.Instrs) / float64(r.Instrs)
	if slack > 0.05 {
		t.Errorf("cycles %d exceed instrs %d by %.1f%%, want < 5%% (cold misses only)",
			r.Cycles, r.Instrs, slack*100)
	}
	if r.DataStallCycles != 0 {
		t.Errorf("DataCPI=0 but data stalls = %d", r.DataStallCycles)
	}
}

func TestSoloDataCPIAddsStalls(t *testing.T) {
	p := loopProgram(t, 8, 64, 100, 0.5)
	r := RunSolo(DefaultParams(), spec(t, p, false))
	want := float64(r.Instrs) * 0.5
	got := float64(r.DataStallCycles)
	if got < want*0.99 || got > want*1.01 {
		t.Errorf("data stalls = %v, want ~%v", got, want)
	}
	if r.IPC() >= 1 {
		t.Errorf("IPC = %v, want < 1 with stalls", r.IPC())
	}
}

func TestSoloThrashingCostsFetchStalls(t *testing.T) {
	params := DefaultParams()
	params.PrefetchDegree = 0
	small := loopProgram(t, 16, 64, 50, 0) // 1 KB: fits
	big := loopProgram(t, 1024, 64, 50, 0) // 64 KB: thrashes 32 KB L1I
	rs := RunSolo(params, spec(t, small, false))
	rb := RunSolo(params, spec(t, big, false))
	if rb.L1I.MissRatio() <= rs.L1I.MissRatio() {
		t.Errorf("big miss ratio %v <= small %v", rb.L1I.MissRatio(), rs.L1I.MissRatio())
	}
	if rb.FetchStallCycles == 0 {
		t.Error("thrashing produced no fetch stalls")
	}
	// 64 KB loop fits in the 256 KB L2, so stalls are L2-hit priced.
	if rb.L2.MissRatio() > 0.2 {
		t.Errorf("L2 miss ratio %v, want mostly hits", rb.L2.MissRatio())
	}
}

func TestPrefetchReducesObservedMisses(t *testing.T) {
	// Straight-line sequential code is the prefetcher's best case.
	p := loopProgram(t, 1024, 64, 30, 0)
	base := DefaultParams()
	base.PrefetchDegree = 0
	pf := DefaultParams()
	pf.PrefetchDegree = 2
	r0 := RunSolo(base, spec(t, p, false))
	r1 := RunSolo(pf, spec(t, p, false))
	if r1.L1I.MissRatio() >= r0.L1I.MissRatio() {
		t.Errorf("prefetch did not reduce miss ratio: %v vs %v", r1.L1I.MissRatio(), r0.L1I.MissRatio())
	}
	if r1.L1I.PrefetchHits == 0 {
		t.Error("no prefetch hits recorded")
	}
	if r1.Cycles >= r0.Cycles {
		t.Errorf("prefetch did not speed up: %d vs %d cycles", r1.Cycles, r0.Cycles)
	}
}

func TestCorunThroughputGain(t *testing.T) {
	// Two stall-heavy programs: SMT hides each other's stalls, so
	// finishing both co-run beats running them back to back — the
	// Figure 7(a) effect (15-30%).
	pa := loopProgram(t, 64, 64, 300, 0.3)
	pb := loopProgram(t, 64, 64, 300, 0.3)
	params := DefaultParams()
	sa := RunSolo(params, spec(t, pa, false))
	sb := RunSolo(params, spec(t, pb, false))
	co := RunCorun(params, spec(t, pa, false), spec(t, pb, false))
	seq := sa.Cycles + sb.Cycles
	gain := float64(seq)/float64(co.MakespanCycles) - 1
	if gain < 0.10 || gain > 0.45 {
		t.Errorf("throughput gain = %.1f%%, want in the hyper-threading band", gain*100)
	}
}

func TestCorunNoGainWithoutStalls(t *testing.T) {
	// With no stalls to hide and a strictly shared pipeline
	// (IssueWidth 1), co-run cannot beat sequential throughput.
	pa := loopProgram(t, 8, 64, 300, 0)
	pb := loopProgram(t, 8, 64, 300, 0)
	params := DefaultParams()
	params.IssueWidth = 1.0
	sa := RunSolo(params, spec(t, pa, false))
	sb := RunSolo(params, spec(t, pb, false))
	co := RunCorun(params, spec(t, pa, false), spec(t, pb, false))
	seq := sa.Cycles + sb.Cycles
	gain := float64(seq)/float64(co.MakespanCycles) - 1
	if gain > 0.05 {
		t.Errorf("gain = %.1f%% without stalls, want ~0", gain*100)
	}
	if co.MakespanCycles > seq+seq/20 {
		t.Errorf("co-run much slower than sequential: %d vs %d", co.MakespanCycles, seq)
	}
}

func TestCorunContentionRaisesMisses(t *testing.T) {
	// Each loop is 20 KB: alone it fits the 32 KB L1I, together they
	// contend.
	pa := loopProgram(t, 320, 64, 100, 0.2)
	pb := loopProgram(t, 320, 64, 100, 0.2)
	params := DefaultParams()
	params.PrefetchDegree = 0
	solo := RunSolo(params, spec(t, pa, false))
	co := RunCorunTimed(params, spec(t, pa, false), spec(t, pb, true))
	if co.Threads[0].L1I.MissRatio() <= solo.L1I.MissRatio()*1.5 {
		t.Errorf("co-run miss ratio %v not well above solo %v",
			co.Threads[0].L1I.MissRatio(), solo.L1I.MissRatio())
	}
	// Contention costs time too.
	if co.Threads[0].Cycles <= solo.Cycles {
		t.Errorf("co-run cycles %d <= solo %d", co.Threads[0].Cycles, solo.Cycles)
	}
}

func TestCorunTimedStopsWithPrimary(t *testing.T) {
	pa := loopProgram(t, 16, 64, 50, 0)
	pb := loopProgram(t, 16, 64, 50, 0)
	co := RunCorunTimed(DefaultParams(), spec(t, pa, false), spec(t, pb, true))
	if co.MakespanCycles != co.Threads[0].Cycles {
		t.Errorf("makespan %d != primary cycles %d", co.MakespanCycles, co.Threads[0].Cycles)
	}
	if co.Threads[0].Blocks == 0 || co.Threads[1].Blocks == 0 {
		t.Error("both threads should have run")
	}
}

func TestDeterminism(t *testing.T) {
	pa := loopProgram(t, 64, 64, 80, 0.25)
	pb := loopProgram(t, 96, 64, 60, 0.15)
	a := RunCorun(DefaultParams(), spec(t, pa, false), spec(t, pb, false))
	b := RunCorun(DefaultParams(), spec(t, pa, false), spec(t, pb, false))
	if a.MakespanCycles != b.MakespanCycles ||
		a.Threads[0].Cycles != b.Threads[0].Cycles ||
		a.Threads[1].L1I != b.Threads[1].L1I {
		t.Error("co-run simulation not deterministic")
	}
}

func TestFasterLayoutFinishesSooner(t *testing.T) {
	// A thrashing loop under a layout that doubles spacing (via a
	// scattered block order) must not beat the packed original.
	p := loopProgram(t, 700, 48, 40, 0.1)
	tr := traceOf(t, p)
	orig := layout.Original(p)

	// Scatter: interleave blocks from the two halves, breaking
	// fall-through adjacency and adding jump bytes.
	var scattered []ir.BlockID
	half := p.NumBlocks() / 2
	for i := 0; i < half; i++ {
		scattered = append(scattered, ir.BlockID(i), ir.BlockID(i+half))
	}
	sc := layout.ReorderBlocks(p, scattered)

	params := DefaultParams()
	rOrig := RunSolo(params, ThreadSpec{Replayer: layout.NewReplayer(orig, tr, 64, false), DataCPI: p.DataCPI})
	rScat := RunSolo(params, ThreadSpec{Replayer: layout.NewReplayer(sc, tr, 64, false), DataCPI: p.DataCPI})
	if rScat.Cycles < rOrig.Cycles {
		t.Errorf("scattered layout faster (%d) than original (%d)", rScat.Cycles, rOrig.Cycles)
	}
}

func TestCachesimDefaultsShared(t *testing.T) {
	if DefaultParams().L1I != cachesim.L1IDefault {
		t.Error("cpu default L1I differs from cachesim default")
	}
}
