package layout

import (
	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// Replayer turns an executed basic-block trace into the instruction
// fetch stream of a concrete layout: for each block occurrence it emits
// the cache lines covering the block's address range (plus the entry
// stub's line on calls into stub-carrying layouts). Replaying the same
// block trace through two layouts is exactly how the paper compares an
// optimized binary against the original — the executed blocks are
// identical, only their addresses differ.
type Replayer struct {
	l         *Layout
	t         *trace.Trace
	lineBytes int64
	pos       int
	// Wrap restarts the trace when exhausted, so a co-run peer keeps
	// generating interference until the primary program finishes (the
	// usual co-run measurement methodology).
	wrap bool
	laps int
	// isCall[b] marks blocks that end in a call; the callee's entry
	// fetch then goes through the stub.
	prev ir.BlockID
	// plan is the lazily built per-block line pre-resolution used by the
	// batched AppendLines fast path.
	plan *replayPlan
}

// NewReplayer creates a replayer over the given block trace.
func NewReplayer(l *Layout, t *trace.Trace, lineBytes int, wrap bool) *Replayer {
	return &Replayer{l: l, t: t, lineBytes: int64(lineBytes), wrap: wrap, prev: ir.NoBlock}
}

// Done reports whether a non-wrapping replayer has exhausted its trace.
func (r *Replayer) Done() bool { return !r.wrap && r.pos >= r.t.Len() }

// Laps returns how many times a wrapping replayer restarted the trace.
func (r *Replayer) Laps() int { return r.laps }

// Pos returns the number of block occurrences consumed in the current
// lap.
func (r *Replayer) Pos() int { return r.pos }

// Next replays one block occurrence: it calls emit for every cache line
// fetched and returns the fetched instruction bytes. ok is false when a
// non-wrapping replayer is exhausted.
func (r *Replayer) Next(emit func(line int64)) (bytes int32, ok bool) {
	if r.pos >= r.t.Len() {
		if !r.wrap || r.t.Len() == 0 {
			return 0, false
		}
		r.pos = 0
		r.laps++
		r.prev = ir.NoBlock
	}
	b := ir.BlockID(r.t.Syms[r.pos])
	r.pos++

	blk := r.l.Prog.Blocks[b]
	// A call into a stub-carrying layout fetches the stub jump first.
	if r.l.HasStubs() && r.prev != ir.NoBlock {
		if c, isCall := r.l.Prog.Blocks[r.prev].Term.(ir.Call); isCall && c.Callee == blk.Fn && r.l.Prog.Entry(blk.Fn) == b {
			stub := r.l.StubAddr[blk.Fn]
			first := stub / r.lineBytes
			last := (stub + JumpBytes - 1) / r.lineBytes
			for ln := first; ln <= last; ln++ {
				emit(ln)
			}
			bytes += JumpBytes
		}
	}
	addr := r.l.Addr[b]
	size := int64(r.effectiveSize(b))
	first := addr / r.lineBytes
	last := (addr + size - 1) / r.lineBytes
	for ln := first; ln <= last; ln++ {
		emit(ln)
	}
	bytes += int32(size)
	r.prev = b
	return bytes, true
}

// effectiveSize returns the bytes this occurrence of block b fetches and
// executes. A layout-appended jump (Size[b] > Block.Size) only executes
// on the path it patches: for a Branch it covers the displaced
// fall-through, so it runs only when the trace actually goes to the
// fall successor; for a Call it forwards the return point to the moved
// continuation, so it runs on every execution.
func (r *Replayer) effectiveSize(b ir.BlockID) int32 {
	blk := r.l.Prog.Blocks[b]
	full := r.l.Size[b]
	if full == blk.Size {
		return full
	}
	br, isBranch := blk.Term.(ir.Branch)
	if !isBranch {
		return full
	}
	if next := r.peek(); next == br.Fall {
		return full
	}
	return blk.Size
}

// peek returns the next block in the trace (accounting for wrap), or
// ir.NoBlock at a non-wrapping end.
func (r *Replayer) peek() ir.BlockID {
	if r.pos < r.t.Len() {
		return ir.BlockID(r.t.Syms[r.pos])
	}
	if r.wrap && r.t.Len() > 0 {
		return ir.BlockID(r.t.Syms[0])
	}
	return ir.NoBlock
}

// replayPlan pre-resolves each block's fetched line range (and each
// function's stub lines) against a fixed layout, so the batched replay
// path can emit lines with array lookups only — no map access, interface
// assertion or closure dispatch per occurrence. Built once per Replayer
// on first use; the layout is immutable afterwards by contract.
type replayPlan struct {
	// lineFirst/lastFull bound block b's fetched lines at its full layout
	// size (including any appended jump); lastShort bounds them at the
	// block's own size. Which bound applies per occurrence depends on
	// fall.
	lineFirst []int64
	lastFull  []int64
	lastShort []int64
	// fall is the displaced fall-through successor when block b carries a
	// layout-appended jump patching a Branch (the jump executes only when
	// the trace actually falls through); ir.NoBlock means the full size
	// always applies.
	fall []ir.BlockID
	// callCallee is block b's call target function, or -1 when b does not
	// end in a call.
	callCallee []ir.FuncID
	// entryFn is b's function when b is that function's entry block, else
	// -1: a stub fetch happens exactly when the previous block calls
	// entryFn[b].
	entryFn []ir.FuncID
	// stubFirst/stubLast bound function f's entry-stub lines.
	stubFirst []int64
	stubLast  []int64
}

func buildReplayPlan(l *Layout, lineBytes int64) *replayPlan {
	nb := len(l.Prog.Blocks)
	p := &replayPlan{
		lineFirst:  make([]int64, nb),
		lastFull:   make([]int64, nb),
		lastShort:  make([]int64, nb),
		fall:       make([]ir.BlockID, nb),
		callCallee: make([]ir.FuncID, nb),
		entryFn:    make([]ir.FuncID, nb),
	}
	for b := range l.Prog.Blocks {
		blk := l.Prog.Blocks[b]
		addr := l.Addr[b]
		p.lineFirst[b] = addr / lineBytes
		p.lastFull[b] = (addr + int64(l.Size[b]) - 1) / lineBytes
		p.lastShort[b] = (addr + int64(blk.Size) - 1) / lineBytes
		p.fall[b] = ir.NoBlock
		if br, isBranch := blk.Term.(ir.Branch); isBranch && l.Size[b] != blk.Size {
			p.fall[b] = br.Fall
		}
		p.callCallee[b] = -1
		if c, isCall := blk.Term.(ir.Call); isCall {
			p.callCallee[b] = c.Callee
		}
		p.entryFn[b] = -1
		if l.Prog.Entry(blk.Fn) == ir.BlockID(b) {
			p.entryFn[b] = blk.Fn
		}
	}
	if l.HasStubs() {
		nf := len(l.StubAddr)
		p.stubFirst = make([]int64, nf)
		p.stubLast = make([]int64, nf)
		for f, stub := range l.StubAddr {
			if stub < 0 {
				continue
			}
			p.stubFirst[f] = stub / lineBytes
			p.stubLast[f] = (stub + JumpBytes - 1) / lineBytes
		}
	}
	return p
}

// AppendLines replays up to maxBlocks block occurrences, appending every
// fetched cache line to dst, and returns the extended slice plus the
// number of occurrences replayed (0 when a non-wrapping replayer is
// exhausted). It is the batched form of Next — identical fetch stream,
// but lines come from the pre-resolved plan and land in a reusable
// buffer, so the cache simulation pays no per-access closure dispatch.
func (r *Replayer) AppendLines(dst []int64, maxBlocks int) ([]int64, int) {
	if r.plan == nil {
		r.plan = buildReplayPlan(r.l, r.lineBytes)
	}
	p := r.plan
	syms := r.t.Syms
	n := len(syms)
	hasStubs := r.l.HasStubs()
	pos, prev := r.pos, r.prev
	blocks := 0
	for blocks < maxBlocks {
		if pos >= n {
			if !r.wrap || n == 0 {
				break
			}
			pos = 0
			r.laps++
			prev = ir.NoBlock
		}
		b := ir.BlockID(syms[pos])
		pos++
		if hasStubs && prev != ir.NoBlock {
			if fn := p.entryFn[b]; fn >= 0 && p.callCallee[prev] == fn {
				for ln := p.stubFirst[fn]; ln <= p.stubLast[fn]; ln++ {
					dst = append(dst, ln)
				}
			}
		}
		last := p.lastFull[b]
		if f := p.fall[b]; f != ir.NoBlock {
			// The appended jump executes only when the trace goes to the
			// displaced fall-through (same rule as effectiveSize).
			next := ir.NoBlock
			if pos < n {
				next = ir.BlockID(syms[pos])
			} else if r.wrap && n > 0 {
				next = ir.BlockID(syms[0])
			}
			if next != f {
				last = p.lastShort[b]
			}
		}
		for ln := p.lineFirst[b]; ln <= last; ln++ {
			dst = append(dst, ln)
		}
		prev = b
		blocks++
	}
	r.pos, r.prev = pos, prev
	return dst, blocks
}
