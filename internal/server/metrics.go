package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics is layoutd's dependency-free telemetry: monotonic counters,
// one gauge read from the pool, and a per-optimizer latency histogram,
// rendered in the Prometheus text exposition format so any scraper (or
// grep in the smoke test) can consume it.
type metrics struct {
	mu        sync.Mutex
	accepted  int64
	completed int64
	failed    int64
	rejected  int64
	cacheHits int64
	latency   map[string]*histogram
}

// latencyBucketsMS are the histogram upper bounds in milliseconds.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

type histogram struct {
	counts [len(latencyBucketsMS) + 1]int64 // one per bucket plus +Inf
	sumMS  float64
	total  int64
}

func newMetrics() *metrics {
	return &metrics{latency: make(map[string]*histogram)}
}

func (m *metrics) incAccepted()  { m.mu.Lock(); m.accepted++; m.mu.Unlock() }
func (m *metrics) incCompleted() { m.mu.Lock(); m.completed++; m.mu.Unlock() }
func (m *metrics) incFailed()    { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *metrics) incRejected()  { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) incCacheHit()  { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }

// observeLatency records one completed optimization of the named
// optimizer.
func (m *metrics) observeLatency(optimizer string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[optimizer]
	if !ok {
		h = &histogram{}
		m.latency[optimizer] = h
	}
	h.sumMS += ms
	h.total++
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(latencyBucketsMS)]++
}

// render writes the exposition text. queueDepth, running and
// jobsTracked are read live by the caller.
func (m *metrics) render(queueDepth, running, jobsTracked int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("layoutd_jobs_accepted_total", "Jobs accepted into the queue.", m.accepted)
	counter("layoutd_jobs_completed_total", "Jobs that produced a layout.", m.completed)
	counter("layoutd_jobs_failed_total", "Jobs that errored.", m.failed)
	counter("layoutd_jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.rejected)
	counter("layoutd_cache_hits_total", "Submissions served from the content-addressed cache.", m.cacheHits)
	fmt.Fprintf(&b, "# HELP layoutd_queue_depth Jobs accepted but not yet running.\n# TYPE layoutd_queue_depth gauge\nlayoutd_queue_depth %d\n", queueDepth)
	fmt.Fprintf(&b, "# HELP layoutd_jobs_running Jobs currently optimizing.\n# TYPE layoutd_jobs_running gauge\nlayoutd_jobs_running %d\n", running)
	fmt.Fprintf(&b, "# HELP layoutd_jobs_tracked Job-status records held (bounded by retention).\n# TYPE layoutd_jobs_tracked gauge\nlayoutd_jobs_tracked %d\n", jobsTracked)

	names := make([]string, 0, len(m.latency))
	for n := range m.latency {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("# HELP layoutd_optimize_latency_ms Optimization latency per optimizer.\n# TYPE layoutd_optimize_latency_ms histogram\n")
	}
	for _, n := range names {
		h := m.latency[n]
		cum := int64(0)
		for i, ub := range latencyBucketsMS {
			cum += h.counts[i]
			fmt.Fprintf(&b, "layoutd_optimize_latency_ms_bucket{optimizer=%q,le=\"%g\"} %d\n", n, ub, cum)
		}
		fmt.Fprintf(&b, "layoutd_optimize_latency_ms_bucket{optimizer=%q,le=\"+Inf\"} %d\n", n, h.total)
		fmt.Fprintf(&b, "layoutd_optimize_latency_ms_sum{optimizer=%q} %g\n", n, h.sumMS)
		fmt.Fprintf(&b, "layoutd_optimize_latency_ms_count{optimizer=%q} %d\n", n, h.total)
	}
	return b.String()
}
