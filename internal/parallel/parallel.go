// Package parallel is the repository's worker-pool substrate: a small,
// dependency-free fan-out primitive used by the analysis hot paths
// (per-window affinity simulation, TRG shard accumulation, co-run
// matrices) and the experiment harness.
//
// The design contract, which every caller relies on for the
// Workers=1-vs-N determinism guarantee (DESIGN.md §7):
//
//   - bounded concurrency: at most Workers goroutines run the body, with
//     Workers <= 0 resolving to runtime.GOMAXPROCS(0) and Workers == 1
//     executing inline on the calling goroutine (no goroutines at all,
//     so serial validation runs are exactly the pre-parallel code path);
//   - deterministic ordered collection: Map writes result i into slot i,
//     so the assembled output is independent of scheduling;
//   - deterministic first-error propagation: when several items fail,
//     the error of the lowest index wins — the same error a serial loop
//     would have returned first;
//   - context cancellation: a cancelled context (or a failed item) stops
//     the pool from starting new items; items already running finish.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves the conventional Workers option: n <= 0 means
// runtime.GOMAXPROCS(0) (use every available core), any other value is
// returned unchanged. 1 therefore pins a serial run.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and returns the deterministic first error (lowest index).
func ForEach(workers, n int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), workers, n, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// ForEachCtx is ForEach with cancellation: no new items start once ctx
// is done, and the context passed to fn is cancelled as soon as any item
// fails. If the parent context was cancelled before all items ran,
// ForEachCtx returns the context's error (unless an item error with a
// lower index is available, which takes precedence).
func ForEachCtx(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Inline serial path: identical to the pre-parallel loops, and
		// the reference behavior the concurrent path must reproduce.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		done     atomic.Int64
		mu       sync.Mutex
		errIdx   = n // lowest failing index seen so far
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					record(i, err)
					return
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Every item completed: success regardless of a late cancellation.
	if int(done.Load()) == n {
		return nil
	}
	// The parent context stopped the pool before draining the items.
	return ctx.Err()
}

// Chunks splits [0, n) into at most parts contiguous half-open ranges
// of near-equal size, never producing a chunk smaller than minSize
// (except when n itself is smaller, which yields a single chunk). The
// shard-and-merge analyses use minSize to keep each shard's warm-up
// replay a small fraction of its real work.
func Chunks(n, parts, minSize int) [][2]int {
	if n <= 0 {
		return nil
	}
	if minSize < 1 {
		minSize = 1
	}
	if parts < 1 {
		parts = 1
	}
	if maxParts := n / minSize; parts > maxParts {
		parts = maxParts
	}
	if parts < 1 {
		parts = 1
	}
	out := make([][2]int, parts)
	for i := 0; i < parts; i++ {
		out[i] = [2]int{i * n / parts, (i + 1) * n / parts}
	}
	return out
}

// Map runs fn(i) for every i in [0, n), collecting results in index
// order. On error the partial results are discarded and the
// deterministic first error is returned.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
