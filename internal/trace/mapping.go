package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"codelayout/internal/ir"
)

// Mapping is the paper's instrumentation "mapping file": it assigns
// each basic block or function an index and remembers its name and
// size, so that a recorded trace can be interpreted away from the
// program that produced it (§II-F: "we record a mapping file to assign
// each basic block or function an index, which is used in representing
// the trace and in locality analysis").
type Mapping struct {
	// Names[i] is the human-readable name of symbol i.
	Names []string
	// Sizes[i] is the code size of symbol i in bytes.
	Sizes []int32
}

// BlockMapping builds the mapping of a program's basic blocks
// (symbol = ir.BlockID).
func BlockMapping(p *ir.Program) *Mapping {
	m := &Mapping{
		Names: make([]string, p.NumBlocks()),
		Sizes: make([]int32, p.NumBlocks()),
	}
	for _, f := range p.Funcs {
		for _, id := range f.Blocks {
			b := p.Blocks[id]
			m.Names[id] = f.Name + "." + b.Name
			m.Sizes[id] = b.Size
		}
	}
	return m
}

// FuncMapping builds the mapping of a program's functions
// (symbol = ir.FuncID).
func FuncMapping(p *ir.Program) *Mapping {
	m := &Mapping{
		Names: make([]string, p.NumFuncs()),
		Sizes: make([]int32, p.NumFuncs()),
	}
	for _, f := range p.Funcs {
		var bytes int64
		for _, id := range f.Blocks {
			bytes += int64(p.Blocks[id].Size)
		}
		m.Names[f.ID] = f.Name
		m.Sizes[f.ID] = int32(bytes)
	}
	return m
}

// Len returns the number of mapped symbols.
func (m *Mapping) Len() int { return len(m.Names) }

// Name returns the name of a symbol, or a placeholder when out of
// range (a pruned trace can reference fewer symbols than the mapping).
func (m *Mapping) Name(sym int32) string {
	if sym < 0 || int(sym) >= len(m.Names) {
		return fmt.Sprintf("sym%d", sym)
	}
	return m.Names[sym]
}

const (
	mappingMagic   = "CLMP"
	mappingVersion = 1
	maxNameLen     = 4096
	maxSymbols     = 1 << 26
)

// WriteTo serializes the mapping:
//
//	magic "CLMP" | version u8 | count uvarint |
//	per symbol: size varint, name length uvarint, name bytes
func (m *Mapping) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(mappingMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	if err := bw.WriteByte(mappingVersion); err != nil {
		return written, err
	}
	written++
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		n, err := bw.Write(buf[:k])
		written += int64(n)
		return err
	}
	if err := put(uint64(len(m.Names))); err != nil {
		return written, err
	}
	for i, name := range m.Names {
		if err := put(uint64(uint32(m.Sizes[i]))); err != nil {
			return written, err
		}
		if err := put(uint64(len(name))); err != nil {
			return written, err
		}
		n, err := bw.WriteString(name)
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// ReadMappingFrom parses a mapping written by WriteTo.
func ReadMappingFrom(r io.Reader) (*Mapping, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(mappingMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading mapping magic: %w", err)
	}
	if string(magic) != mappingMagic {
		return nil, fmt.Errorf("trace: bad mapping magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != mappingVersion {
		return nil, fmt.Errorf("trace: unsupported mapping version %d", ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if count > maxSymbols {
		return nil, fmt.Errorf("trace: mapping count %d too large", count)
	}
	m := &Mapping{Names: make([]string, count), Sizes: make([]int32, count)}
	for i := uint64(0); i < count; i++ {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: mapping entry %d size: %w", i, err)
		}
		m.Sizes[i] = int32(uint32(size))
		nameLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: mapping entry %d name length: %w", i, err)
		}
		if nameLen > maxNameLen {
			return nil, fmt.Errorf("trace: mapping entry %d name too long (%d)", i, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("trace: mapping entry %d name: %w", i, err)
		}
		m.Names[i] = string(name)
	}
	return m, nil
}
