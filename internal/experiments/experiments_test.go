package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// sharedWS is reused across tests so programs are generated, profiled
// and optimized once.
var sharedWS = NewWorkspace()

func TestWorkspaceCachesBenches(t *testing.T) {
	w := NewWorkspace()
	a, err := w.Bench("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Bench("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("workspace did not cache the bench")
	}
	if _, err := w.Bench("no.such"); err == nil {
		t.Error("unknown bench accepted")
	}
}

func TestBenchLayoutsCachedAndValid(t *testing.T) {
	b, err := sharedWS.Bench("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := b.Layout(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := b.Layout(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Error("layout not cached")
	}
	if _, err := b.Layout("func-affinity"); err != nil {
		t.Errorf("func-affinity: %v", err)
	}
	if _, err := b.Layout("nonsense"); err == nil {
		t.Error("unknown layout name accepted")
	}
}

func TestFigure1MatchesPaper(t *testing.T) {
	r := Figure1()
	if got, want := r.Sequence, []int32{1, 4, 2, 3, 5}; !reflect.DeepEqual(got, want) {
		t.Errorf("Figure 1 sequence = %v, want %v", got, want)
	}
	s := r.String()
	for _, frag := range []string{"w=5", "(B1,B4)", "B1 B4 B2 B3 B5"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Figure 1 rendering missing %q:\n%s", frag, s)
		}
	}
}

func TestFigure2MatchesPaper(t *testing.T) {
	r := Figure2()
	names := make([]string, len(r.Sequence))
	for i, s := range r.Sequence {
		names[i] = r.Names[s]
	}
	if got := strings.Join(names, " "); got != "A B E F C" {
		t.Errorf("Figure 2 sequence = %q, want \"A B E F C\"", got)
	}
	if !strings.Contains(r.String(), "A B E F C") {
		t.Error("Figure 2 rendering missing the sequence")
	}
}

func TestFigure3PacksCorrelatedBlocks(t *testing.T) {
	r, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// The optimized layout must interleave X and Y blocks: the paper's
	// point is that X2/Y2 and X3/Y3 end up adjacent across function
	// boundaries.
	joined := strings.Join(r.Order, " ")
	x2 := strings.Index(joined, "X.X2")
	y2 := strings.Index(joined, "Y.Y2")
	x3 := strings.Index(joined, "X.X3")
	y3 := strings.Index(joined, "Y.Y3")
	if x2 < 0 || y2 < 0 || x3 < 0 || y3 < 0 {
		t.Fatalf("missing blocks in order: %s", joined)
	}
	// X2 must sit next to Y2 (and X3 next to Y3), i.e. between X2 and
	// Y2 there is no X3/Y3 and vice versa.
	between := func(a, b, c int) bool { return (a < c && c < b) || (b < c && c < a) }
	if between(x2, y2, x3) || between(x2, y2, y3) {
		t.Errorf("variant-1 pair not adjacent: %s", joined)
	}
	if between(x3, y3, x2) || between(x3, y3, y2) {
		t.Errorf("variant-2 pair not adjacent: %s", joined)
	}
	// Packing pulls the correlated pair together: the X2..Y2 span
	// collapses to back-to-back blocks.
	if r.SpanOptimized >= r.SpanOriginal {
		t.Errorf("variant-pair span: optimized %d >= original %d", r.SpanOptimized, r.SpanOriginal)
	}
	// And the per-iteration hot path stays put (±1 line: repositioning
	// 100-byte blocks can add or remove one straddle line).
	if r.HotLinesOptimized > r.HotLinesOriginal+1 {
		t.Errorf("hot lines: optimized %d >> original %d", r.HotLinesOptimized, r.HotLinesOriginal)
	}
}

func TestTable2SubsetShapes(t *testing.T) {
	names := []string{"445.gobmk", "429.mcf", "458.sjeng"}
	res, err := Table2On(sharedWS, names)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(names)*len(Table2Optimizers) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// BB affinity must improve gobmk's average co-run speedup and
	// reduce its misses on both paths (the paper's headline result).
	row := res.Row("445.gobmk", "bb-affinity")
	if row == nil || row.NA {
		t.Fatal("gobmk bb-affinity row missing")
	}
	if row.AvgSpeedup <= 1.0 {
		t.Errorf("gobmk bb-affinity co-run speedup = %v, want > 1", row.AvgSpeedup)
	}
	if row.AvgMissHW <= 0 || row.AvgMissSim <= 0 {
		t.Errorf("gobmk bb-affinity miss reductions hw=%v sim=%v, want > 0",
			row.AvgMissHW, row.AvgMissSim)
	}
	// The simulated reduction should be at least as large as the
	// hardware-counted one (prefetching hides part of the benefit).
	if row.AvgMissSim < row.AvgMissHW-0.05 {
		t.Errorf("simulated reduction %v well below hw %v; expected sim >= hw",
			row.AvgMissSim, row.AvgMissHW)
	}
	if _, best := res.BestSpeedup("445.gobmk"); best <= 1 {
		t.Errorf("best speedup for gobmk = %v", best)
	}
	if !strings.Contains(res.String(), "445.gobmk") {
		t.Error("rendering missing program")
	}
}

func TestTable2NACells(t *testing.T) {
	res, err := Table2On(sharedWS, []string{"400.perlbench"})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Row("400.perlbench", "bb-affinity")
	if row == nil || !row.NA {
		t.Error("perlbench bb-affinity must be N/A (paper's compiler errors)")
	}
	if !strings.Contains(res.String(), "N/A") {
		t.Error("rendering missing N/A cells")
	}
}

func TestFigure6RendersCells(t *testing.T) {
	res, err := Table2On(sharedWS, []string{"445.gobmk", "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	f6 := Figure6FromTable2(res)
	s := f6.String()
	if !strings.Contains(s, "445.gobmk vs 429.mcf") {
		t.Errorf("Figure 6 rendering missing pair bars:\n%s", s)
	}
}

func TestOptOptNegligibleExtraGain(t *testing.T) {
	names := []string{"445.gobmk", "429.mcf", "458.sjeng"}
	t2, err := Table2On(sharedWS, names)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptOpt(sharedWS, t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 3 {
		t.Fatalf("selected %v", res.Selected)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	// §III-F: only negligible extra improvements (but no slowdown of
	// consequence) from optimizing the peer as well.
	extra := res.AvgExtraGain()
	if extra < -0.02 || extra > 0.05 {
		t.Errorf("avg extra gain = %v, want negligible", extra)
	}
	if !strings.Contains(res.String(), "extra gain") {
		t.Error("rendering incomplete")
	}
}

func TestComparisonBaselines(t *testing.T) {
	res, err := Comparison(sharedWS, []string{"458.sjeng"})
	if err != nil {
		t.Fatal(err)
	}
	byOpt := make(map[string]ComparisonRow)
	for _, row := range res.Rows {
		byOpt[row.Optimizer] = row
	}
	inter, okInter := byOpt["bb-affinity"]
	intra, okIntra := byOpt["bb-affinity-intra"]
	if !okInter || !okIntra {
		t.Fatalf("missing rows: %v", byOpt)
	}
	// The paper's argument for inter-procedural reordering: when each
	// invocation executes only part of a function, crossing function
	// boundaries packs better than staying inside them.
	if inter.SoloMissReduction <= intra.SoloMissReduction {
		t.Errorf("inter-procedural reduction %v <= intra %v",
			inter.SoloMissReduction, intra.SoloMissReduction)
	}
	// The call-graph baseline sees only call pairs, not windowed
	// co-occurrence; it must not beat function affinity's miss
	// reduction.
	fa := byOpt["func-affinity"]
	cg := byOpt["func-callgraph"]
	if cg.SoloMissReduction > fa.SoloMissReduction+0.10 {
		t.Errorf("call-graph baseline (%v) clearly beats func affinity (%v)",
			cg.SoloMissReduction, fa.SoloMissReduction)
	}
	avg := res.AverageByOptimizer()
	if len(avg) != 8 {
		t.Errorf("AverageByOptimizer has %d entries, want 8", len(avg))
	}
	if !strings.Contains(res.String(), "bb-affinity-intra") {
		t.Error("rendering missing baseline rows")
	}
}

func TestComparisonNACells(t *testing.T) {
	res, err := Comparison(sharedWS, []string{"453.povray"})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		switch row.Optimizer {
		case "bb-affinity", "bb-trg":
			if !row.NA {
				t.Errorf("%s on povray should be N/A", row.Optimizer)
			}
		case "bb-affinity-intra":
			if row.NA {
				t.Error("intra reordering is not affected by the paper's BB errors")
			}
		}
	}
}

func TestIntroTableSubset(t *testing.T) {
	res, err := IntroTableOn(sharedWS, []string{"458.sjeng", "429.mcf", "445.gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	// mcf is below the non-trivial threshold; the others are not.
	if len(res.Programs) == 0 {
		t.Fatal("no non-trivial programs found")
	}
	for _, p := range res.Programs {
		if p == "429.mcf" {
			t.Error("mcf counted as non-trivial")
		}
	}
	if res.AvgCorun1 <= res.AvgSolo || res.AvgCorun2 <= res.AvgSolo {
		t.Errorf("co-run (%v, %v) not above solo (%v)", res.AvgCorun1, res.AvgCorun2, res.AvgSolo)
	}
	if res.Increase1() <= 0 || res.Increase2() <= 0 {
		t.Error("contention increases not positive")
	}
	if !strings.Contains(res.String(), "co-run 2 (gamess)") {
		t.Error("rendering incomplete")
	}
}

func TestTable1Shapes(t *testing.T) {
	res, err := Table1(sharedWS)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		// Contention must monotonically increase from solo to the
		// aggressive probe for every program.
		if !(r.MissSolo <= r.MissGCC && r.MissGCC <= r.MissGamess+0.005) {
			t.Errorf("%s: miss ordering solo %v, gcc %v, gamess %v", r.Name, r.MissSolo, r.MissGCC, r.MissGamess)
		}
		if r.DynamicInstrs <= 0 || r.StaticBytes <= 0 {
			t.Errorf("%s: empty characteristics", r.Name)
		}
	}
	// Table I orderings: mcf near zero solo, gobmk the highest; mcf the
	// smallest binary, xalancbmk the biggest.
	if byName["429.mcf"].MissSolo > 0.005 {
		t.Errorf("mcf solo = %v, want ~0", byName["429.mcf"].MissSolo)
	}
	if byName["445.gobmk"].MissSolo < byName["458.sjeng"].MissSolo {
		t.Error("gobmk should out-miss sjeng")
	}
	if byName["429.mcf"].StaticBytes > byName["483.xalancbmk"].StaticBytes {
		t.Error("static size ordering wrong")
	}
}

func TestFigure4Subset(t *testing.T) {
	res, err := Figure4On(sharedWS, []string{"458.sjeng", "429.mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.NonTrivialCount() != 1 {
		t.Errorf("NonTrivialCount = %d, want 1 (sjeng only)", res.NonTrivialCount())
	}
	s := res.String()
	if !strings.Contains(s, "416.gamess as probe") {
		t.Error("rendering missing probe panel")
	}
}

func TestFigure5Subset(t *testing.T) {
	res, err := Figure5On(sharedWS, []string{"445.gobmk", "453.povray"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FuncAffinity) != 2 || len(res.BBAffinity) != 2 {
		t.Fatalf("rows: %d/%d", len(res.FuncAffinity), len(res.BBAffinity))
	}
	// povray BB reordering is N/A per the paper.
	if !res.BBAffinity[1].NA {
		t.Error("povray BB row should be N/A")
	}
	// gobmk BB affinity must show a large miss reduction.
	if res.BBAffinity[0].NA || res.BBAffinity[0].MissReduction < 0.2 {
		t.Errorf("gobmk BB reduction = %+v", res.BBAffinity[0])
	}
	if res.MaxMissReduction() < 0.2 {
		t.Errorf("MaxMissReduction = %v", res.MaxMissReduction())
	}
	if !strings.Contains(res.String(), "(N/A)") {
		t.Error("rendering missing N/A marker")
	}
}

func TestFigure7Subset(t *testing.T) {
	res, err := Figure7On(sharedWS, []string{"458.sjeng", "471.omnetpp"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 3 { // (s,s) (s,o) (o,o)
		t.Fatalf("pairs = %d, want 3", len(res.Pairs))
	}
	lo, hi := res.GainBounds()
	if lo < 0.05 || hi > 0.60 {
		t.Errorf("throughput gains [%v, %v] outside plausible hyper-threading band", lo, hi)
	}
	for _, p := range res.Pairs {
		if p.BaseGain <= 0 {
			t.Errorf("pair %s-%s: no hyper-threading benefit (%v)", p.A, p.B, p.BaseGain)
		}
	}
	if !strings.Contains(res.String(), "magnification") {
		t.Error("rendering incomplete")
	}
}

func TestHWCorunBothMakespan(t *testing.T) {
	a, err := sharedWS.Bench("458.sjeng")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sharedWS.Bench("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := HWCorunBoth(a, Baseline, b, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	soloA, err := a.HWSolo(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	soloB, err := b.HWSolo(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	// Makespan covers the later finisher and cannot beat the longer
	// program running alone, nor exceed the back-to-back time.
	longer := soloA.Thread.Cycles
	if soloB.Thread.Cycles > longer {
		longer = soloB.Thread.Cycles
	}
	if res.MakespanCycles < longer {
		t.Errorf("makespan %d beats the longer solo %d", res.MakespanCycles, longer)
	}
	if seq := soloA.Thread.Cycles + soloB.Thread.Cycles; res.MakespanCycles > seq {
		t.Errorf("makespan %d worse than sequential %d", res.MakespanCycles, seq)
	}
	if res.Threads[0].Instrs == 0 || res.Threads[1].Instrs == 0 {
		t.Error("a thread did not run")
	}
}

func TestHWAndSimPathsDiffer(t *testing.T) {
	b, err := sharedWS.Bench("445.gobmk")
	if err != nil {
		t.Fatal(err)
	}
	hw, err := b.HWSolo(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := b.SimSolo(Baseline)
	if err != nil {
		t.Fatal(err)
	}
	// The hardware path prefetches; its observed miss ratio must be
	// below the idealized simulation's.
	if hw.Counters.ICacheMissRatio() >= sim {
		t.Errorf("hw miss %v >= sim miss %v; prefetching should hide misses",
			hw.Counters.ICacheMissRatio(), sim)
	}
}
