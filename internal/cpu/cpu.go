// Package cpu models the paper's measurement platform: one SMT core with
// two hardware threads sharing the instruction fetch path, the L1
// instruction cache and the unified L2 (the Xeon E5520 configuration of
// §III-A). It executes layout.Replayer fetch streams cycle-accountably:
//
//   - issue bandwidth is shared: a lone ready thread issues at 1 IPC,
//     two ready threads split Params.IssueWidth between them (SMT
//     round-robin over a slightly superscalar backend);
//   - cache-miss and data stalls do not consume issue slots, so the
//     co-running thread runs faster while its peer stalls — which is
//     precisely why hyper-threading improves throughput (Figure 7a) and
//     why reducing instruction misses magnifies that benefit
//     (Figure 7b);
//   - a next-line prefetcher (enabled on the "hardware" path only)
//     reproduces the paper's observation that hardware-counted miss
//     reductions are smaller than Pin-simulated ones.
//
// The data side of each program is summarized by ir.Program.DataCPI
// (stall cycles per instruction), since SPEC CPU programs are data
// intensive but this reproduction only models the instruction side in
// detail; see DESIGN.md §2.
package cpu

import (
	"codelayout/internal/cachesim"
	"codelayout/internal/layout"
)

// Params configures the core model.
type Params struct {
	L1I cachesim.Config
	L2  cachesim.Config
	// L2HitLatency is the stall for an L1I miss that hits in L2.
	L2HitLatency int64
	// MemLatency is the stall for a miss in both levels.
	MemLatency int64
	// BytesPerInstr converts fetched bytes to instruction counts.
	BytesPerInstr int
	// PrefetchDegree is the number of sequential lines prefetched into
	// L1I after a demand miss; 0 disables prefetching.
	PrefetchDegree int
	// IssueWidth is the core's total issue bandwidth in instructions
	// per cycle. A single thread issues at most 1 IPC (the front end
	// feeds one stream at a time), so values between 1 and 2 control
	// how much two ready threads compete: at 1.0 they strictly split
	// the pipeline, at 2.0 they never compete. Real SMT cores sit in
	// between; 0 means the default of 1.1.
	IssueWidth float64
	// PeerStartSkew delays the second thread's start by the given
	// number of cycles. Two deterministic copies of the same binary
	// would otherwise run in perfect lockstep and stall simultaneously,
	// an artifact no real machine exhibits; a small odd skew breaks the
	// symmetry. 0 means the default of 997.
	PeerStartSkew int64
}

// DefaultParams returns the evaluation configuration: 32 KB/4-way L1I,
// 256 KB/8-way L2, 20-cycle L2 hit, 200-cycle memory, 4-byte
// instructions, next-line prefetching on.
func DefaultParams() Params {
	return Params{
		L1I:            cachesim.L1IDefault,
		L2:             cachesim.L2Default,
		L2HitLatency:   20,
		MemLatency:     200,
		BytesPerInstr:  4,
		PrefetchDegree: 1,
		IssueWidth:     1.1,
		PeerStartSkew:  997,
	}
}

// sharedRate returns the per-thread issue rate when both threads are
// ready.
func (p Params) sharedRate() float64 {
	w := p.IssueWidth
	if w <= 0 {
		w = 1.1
	}
	r := w / 2
	if r > 1 {
		r = 1
	}
	return r
}

// ThreadSpec is one hardware thread's workload.
type ThreadSpec struct {
	Replayer *layout.Replayer
	// DataCPI is the thread's data-side stall contribution in cycles
	// per instruction (hidden by the peer thread under SMT).
	DataCPI float64
}

// ThreadResult reports one thread's execution.
type ThreadResult struct {
	// Cycles is the thread's completion time (its own trace finished).
	Cycles int64
	// Instrs is the number of instructions issued.
	Instrs int64
	// Blocks is the number of block occurrences executed.
	Blocks int64
	// FetchStallCycles are cycles lost to instruction-cache misses.
	FetchStallCycles int64
	// DataStallCycles are cycles lost to the modeled data side.
	DataStallCycles int64
	// L1I and L2 are the thread's demand statistics at each level.
	L1I cachesim.Stats
	L2  cachesim.Stats
}

// IPC returns instructions per cycle.
func (r ThreadResult) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// Result reports a whole run.
type Result struct {
	Threads []ThreadResult
	// MakespanCycles is the completion time of the last thread (equals
	// Threads[0].Cycles in wrap-peer mode, where only the primary runs
	// to completion).
	MakespanCycles int64
}

type threadState struct {
	spec   ThreadSpec
	done   bool
	res    ThreadResult
	offset int64
	// stallUntil is the absolute time until which the thread is stalled
	// (fetch misses + data stalls of the current block).
	stallUntil float64
	// remain is the number of instructions of the current block still
	// to issue.
	remain float64
}

// core bundles the shared hardware.
type core struct {
	p  Params
	l1 *cachesim.Cache
	l2 *cachesim.Cache
}

// RunSolo executes one thread alone on the core.
func RunSolo(p Params, spec ThreadSpec) ThreadResult {
	res := run(p, []ThreadSpec{spec}, false)
	return res.Threads[0]
}

// RunCorun executes two threads on the SMT core until both complete
// their traces once; a thread finishing early leaves the other to run
// alone (the methodology behind the throughput measurements of
// Figure 7).
func RunCorun(p Params, a, b ThreadSpec) Result {
	return run(p, []ThreadSpec{a, b}, false)
}

// RunCorunTimed executes the primary thread to completion while the
// peer (whose replayer must be wrapping) provides continuous
// interference — the methodology behind the per-program co-run speedups
// of Table II and Figure 6.
func RunCorunTimed(p Params, primary, peer ThreadSpec) Result {
	return run(p, []ThreadSpec{primary, peer}, true)
}

// run is an exact event sweep of the two-thread SMT issue model: at any
// instant a lone ready thread issues at rate 1 instruction/cycle, and
// two ready threads each issue at Params.sharedRate (round-robin over
// the shared backend). Stalled threads issue nothing, so reducing a
// thread's stalls directly increases its issue share — the mechanism
// behind both the hyper-threading throughput gain and the co-run
// speedups of the optimized binaries.
func run(p Params, specs []ThreadSpec, stopWithPrimary bool) Result {
	c := &core{p: p, l1: cachesim.New(p.L1I), l2: cachesim.New(p.L2)}
	threads := make([]*threadState, len(specs))
	now := 0.0
	skew := p.PeerStartSkew
	if skew == 0 {
		skew = 997
	}
	for i, s := range specs {
		threads[i] = &threadState{spec: s}
		if i > 0 {
			threads[i].offset = cachesim.PeerLineOffset * int64(i)
		}
		if !c.loadBlock(threads[i], now) {
			threads[i].done = true
			threads[i].res.Cycles = 0
			continue
		}
		// Stagger thread starts so identical binaries do not run in
		// deterministic lockstep.
		threads[i].stallUntil += float64(int64(i) * skew)
	}

	for {
		if stopWithPrimary && threads[0].done {
			break
		}
		// Classify threads at the current instant.
		var ready []*threadState
		minWake := -1.0
		anyLive := false
		for _, t := range threads {
			if t.done {
				continue
			}
			anyLive = true
			if t.stallUntil > now {
				if minWake < 0 || t.stallUntil < minWake {
					minWake = t.stallUntil
				}
				continue
			}
			ready = append(ready, t)
		}
		if !anyLive {
			break
		}
		if len(ready) == 0 {
			now = minWake
			continue
		}

		// Advance until the first boundary: a ready thread finishing its
		// block, or a stalled thread waking up (which changes the rate).
		rate := 1.0
		if len(ready) == 2 {
			rate = p.sharedRate()
		}
		dt := -1.0
		for _, t := range ready {
			if d := t.remain / rate; dt < 0 || d < dt {
				dt = d
			}
		}
		if minWake >= 0 {
			// A stalled thread waking up changes the issue rate.
			if d := minWake - now; d < dt {
				dt = d
			}
		}
		now += dt
		for _, t := range ready {
			t.remain -= dt * rate
			if t.remain <= 1e-9 {
				t.remain = 0
				if !c.loadBlock(t, now) {
					t.done = true
					t.res.Cycles = int64(now + 0.5)
				}
			}
		}
	}

	out := Result{Threads: make([]ThreadResult, len(threads))}
	for i, t := range threads {
		if !t.done {
			// Wrapping peers never complete; report progress so far.
			t.res.Cycles = int64(now + 0.5)
		}
		out.Threads[i] = t.res
		if t.res.Cycles > out.MakespanCycles && (!stopWithPrimary || i == 0) {
			out.MakespanCycles = t.res.Cycles
		}
	}
	return out
}

// loadBlock fetches t's next block at the given time: it performs the
// block's cache accesses, charges fetch and data stalls, and arms the
// issue segment. It returns false when the trace is exhausted.
func (c *core) loadBlock(t *threadState, now float64) bool {
	var fetchStall int64
	bytes, ok := t.spec.Replayer.Next(func(line int64) {
		fetchStall += c.fetch(line+t.offset, t)
	})
	if !ok {
		return false
	}
	t.res.Blocks++
	instrs := int64((int(bytes) + c.p.BytesPerInstr - 1) / c.p.BytesPerInstr)
	t.res.Instrs += instrs

	dataStall := float64(instrs) * t.spec.DataCPI
	t.res.FetchStallCycles += fetchStall
	t.res.DataStallCycles += int64(dataStall)

	t.stallUntil = now + float64(fetchStall) + dataStall
	t.remain = float64(instrs)
	return true
}

// fetch performs a demand instruction fetch of one line through the
// hierarchy and returns the stall cycles.
func (c *core) fetch(line int64, t *threadState) int64 {
	if c.l1.Access(line, &t.res.L1I) {
		return 0
	}
	var stall int64
	if c.l2.Access(line, &t.res.L2) {
		stall = c.p.L2HitLatency
	} else {
		stall = c.p.MemLatency
	}
	// Next-line prefetch into L1I (through L2, silently).
	for d := 1; d <= c.p.PrefetchDegree; d++ {
		pl := line + int64(d)
		if !c.l1.Contains(pl) {
			c.l2.Access(pl, &t.res.L2)
			c.l1.Prefetch(pl, &t.res.L1I)
		}
	}
	return stall
}
