package cpu

import "codelayout/internal/trace"

func emptyTrace() *trace.Trace { return trace.New(nil) }
