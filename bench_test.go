package codelayout

// bench_test.go regenerates every table and figure of the paper's
// evaluation as testing.B benchmarks (DESIGN.md §4), plus the ablation
// benches for the design choices DESIGN.md §6 calls out. The headline
// number of each experiment is attached to the benchmark via
// b.ReportMetric so that `go test -bench=.` both regenerates and
// summarizes the results; the full rendered tables come from
// cmd/benchtables.

import (
	"math/rand"
	"sync"
	"testing"

	"codelayout/internal/affinity"
	"codelayout/internal/cachesim"
	"codelayout/internal/core"
	"codelayout/internal/experiments"
	"codelayout/internal/footprint"
	"codelayout/internal/layout"
	"codelayout/internal/trace"
	"codelayout/internal/trg"
)

// benchWS is shared across benchmarks so program generation, profiling
// and optimization are paid once per `go test -bench` process.
var (
	benchWS     *Workspace
	benchWSOnce sync.Once
)

func ws() *Workspace {
	benchWSOnce.Do(func() { benchWS = NewWorkspace() })
	return benchWS
}

// --- One benchmark per table/figure -------------------------------------

func BenchmarkIntroTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := IntroTable(ws())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AvgSolo, "solo-miss-%")
		b.ReportMetric(100*res.Increase1(), "gcc-increase-%")
		b.ReportMetric(100*res.Increase2(), "gamess-increase-%")
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table1(ws())
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, row := range res.Rows {
			if row.MissGamess > worst {
				worst = row.MissGamess
			}
		}
		b.ReportMetric(100*worst, "max-corun-miss-%")
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Figure1()
		if len(res.Sequence) != 5 {
			b.Fatal("figure 1 sequence wrong")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := Figure2()
		if len(res.Sequence) != 5 {
			b.Fatal("figure 2 sequence wrong")
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.SpanOriginal), "pair-span-base-B")
		b.ReportMetric(float64(res.SpanOptimized), "pair-span-opt-B")
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure4(ws())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NonTrivialCount()), "non-trivial-programs")
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure5(ws())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MaxMissReduction(), "max-solo-miss-red-%")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Table2(ws())
		if err != nil {
			b.Fatal(err)
		}
		var bestBB float64
		for _, row := range res.Rows {
			if row.Optimizer == "bb-affinity" && !row.NA && row.AvgSpeedup > bestBB {
				bestBB = row.AvgSpeedup
			}
		}
		b.ReportMetric(100*(bestBB-1), "best-bb-corun-speedup-%")
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure6(ws())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table.Rows) == 0 {
			b.Fatal("empty figure 6")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Figure7(ws())
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := res.GainBounds()
		b.ReportMetric(100*lo, "min-ht-gain-%")
		b.ReportMetric(100*hi, "max-ht-gain-%")
		b.ReportMetric(100*res.AvgMagnification(), "avg-magnification-%")
	}
}

func BenchmarkOptOpt(b *testing.B) {
	t2, err := Table2(ws())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := OptOpt(ws(), t2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AvgExtraGain(), "avg-extra-gain-%")
	}
}

// BenchmarkComparison runs the extension experiment: the paper's four
// optimizers against the related-work baselines (Pettis-Hansen call
// graph, Conflict Miss Graph, intra-procedural BB reordering).
func BenchmarkComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Comparison(ws(), nil)
		if err != nil {
			b.Fatal(err)
		}
		avg := res.AverageByOptimizer()
		b.ReportMetric(100*(avg["bb-affinity"]-1), "bb-aff-corun-speedup-%")
		b.ReportMetric(100*(avg["bb-affinity-intra"]-1), "bb-intra-corun-speedup-%")
		b.ReportMetric(100*(avg["func-callgraph"]-1), "callgraph-corun-speedup-%")
	}
}

// --- Ablation benches (DESIGN.md §6) -------------------------------------

// benchProfile returns the shared profile of one mid-sized program.
func benchProfile(b *testing.B) *core.Profile {
	b.Helper()
	bench, err := ws().Bench("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	return bench.Train
}

// ablationMiss measures the simulated solo miss ratio of an optimizer
// variant.
func ablationMiss(b *testing.B, opt core.Optimizer) float64 {
	b.Helper()
	bench, err := ws().Bench("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	l, _, err := opt.Optimize(bench.Train)
	if err != nil {
		b.Fatal(err)
	}
	sim := simSoloMiss(b, bench, l)
	return sim
}

func simSoloMiss(b *testing.B, bench *Bench, l *layout.Layout) float64 {
	b.Helper()
	r := layout.NewReplayer(l, bench.Eval.Blocks, cachesim.L1IDefault.LineBytes, false)
	return cachesim.SimulateSolo(cachesim.L1IDefault, r).Stats.MissRatio()
}

// BenchmarkAblationWmax sweeps the affinity window bound (paper: 2..20).
func BenchmarkAblationWmax(b *testing.B) {
	for _, wmax := range []int{5, 10, 20, 40} {
		b.Run(sprint("wmax=", wmax), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.BBAffinity()
				opt.WMax = wmax
				b.ReportMetric(100*ablationMiss(b, opt), "solo-miss-%")
			}
		})
	}
}

// BenchmarkAblationTRGWindow sweeps the TRG examination window (paper
// recommends twice the cache size).
func BenchmarkAblationTRGWindow(b *testing.B) {
	for _, scale := range []int{1, 2, 4} {
		b.Run(sprint("scale=", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.FuncTRG()
				opt.TRGWindowScale = scale
				b.ReportMetric(100*ablationMiss(b, opt), "solo-miss-%")
			}
		})
	}
}

// BenchmarkAblationPruning sweeps the popularity pruning bound (paper:
// top 10,000 blocks).
func BenchmarkAblationPruning(b *testing.B) {
	for _, topN := range []int{100, 1000, 10000} {
		b.Run(sprint("topN=", topN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.BBAffinity()
				opt.PruneTopN = topN
				b.ReportMetric(100*ablationMiss(b, opt), "solo-miss-%")
			}
		})
	}
}

// BenchmarkAblationTRGSize sweeps the uniform block-size assumption of
// the TRG model.
func BenchmarkAblationTRGSize(b *testing.B) {
	for _, size := range []int{128, 512, 2048} {
		b.Run(sprint("blockBytes=", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := core.FuncTRG()
				opt.TRGBlockBytes = size
				b.ReportMetric(100*ablationMiss(b, opt), "solo-miss-%")
			}
		})
	}
}

// BenchmarkAblationSearch compares the one-pass affinity model against
// iterated local search on the same conflict objective (the
// Petrank-Rawitz wall experiment): how much quality does search add,
// and at what analysis cost.
func BenchmarkAblationSearch(b *testing.B) {
	for _, opt := range []core.Optimizer{core.FuncAffinity(), core.FuncSearch()} {
		b.Run(opt.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.ReportMetric(100*ablationMiss(b, opt), "solo-miss-%")
			}
		})
	}
}

// BenchmarkAblationCacheSize sweeps the instruction-cache size. The
// paper argues (§III-A) that the 32 KB I-cache is pinned by the
// VIPT-lookup trick and "unlikely to increase"; this ablation shows what
// would happen if it did: the optimization's miss reduction is large at
// 16-32 KB and evaporates once the cache holds the whole working set.
func BenchmarkAblationCacheSize(b *testing.B) {
	bench, err := ws().Bench("445.gobmk")
	if err != nil {
		b.Fatal(err)
	}
	base, err := bench.Layout("original")
	if err != nil {
		b.Fatal(err)
	}
	opt, err := bench.Layout("bb-affinity")
	if err != nil {
		b.Fatal(err)
	}
	for _, kb := range []int{16, 32, 64, 128} {
		b.Run(sprint("KB=", kb), func(b *testing.B) {
			cfg := cachesim.Config{SizeBytes: kb << 10, Assoc: 4, LineBytes: 64}
			for i := 0; i < b.N; i++ {
				mb := cachesim.SimulateSolo(cfg,
					layout.NewReplayer(base, bench.Eval.Blocks, 64, false)).Stats.MissRatio()
				mo := cachesim.SimulateSolo(cfg,
					layout.NewReplayer(opt, bench.Eval.Blocks, 64, false)).Stats.MissRatio()
				b.ReportMetric(100*mb, "base-miss-%")
				b.ReportMetric(100*mo, "opt-miss-%")
			}
		})
	}
}

// BenchmarkAblationJumpOverhead reports the code-size cost of the
// basic-block transformation's entry stubs and explicit jumps.
func BenchmarkAblationJumpOverhead(b *testing.B) {
	prof := benchProfile(b)
	for i := 0; i < b.N; i++ {
		l, rep, err := core.BBAffinity().Optimize(prof)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.JumpOverheadBytes), "overhead-B")
		b.ReportMetric(100*float64(rep.JumpOverheadBytes)/float64(l.TotalBytes), "overhead-%")
	}
}

// --- Model complexity benches (§II-B/§II-C claims) ------------------------

func BenchmarkAffinityScaling(b *testing.B) {
	prof := benchProfile(b)
	tt := prof.Blocks.Trimmed()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		affinity.BuildHierarchy(tt, affinity.Options{})
	}
}

func BenchmarkTRGScaling(b *testing.B) {
	prof := benchProfile(b)
	tt := prof.Blocks.Trimmed()
	params := trg.DefaultParams(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trg.Sequence(tt, params)
	}
}

func BenchmarkFootprintClosedForm(b *testing.B) {
	prof := benchProfile(b)
	syms := prof.Blocks.Trimmed().Syms
	if len(syms) > 100000 {
		syms = syms[:100000]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		footprint.NewCurve(syms, nil)
	}
}

// --- Parallel analysis benches (internal/parallel fan-out) ----------------

// phasedBenchTrace draws a 100k-occurrence phased random trace — the
// working-set shape the suite programs produce, large enough for the
// shard warm-up replays to amortize.
func phasedBenchTrace() *trace.Trace {
	rng := rand.New(rand.NewSource(20140814))
	syms := make([]int32, 100000)
	for i := range syms {
		phase := (i / 2000) % 8
		syms[i] = int32(phase*24 + rng.Intn(64))
	}
	return trace.New(syms)
}

// BenchmarkBuildHierarchyWorkers measures the per-window affinity
// analysis (wmax=20, the paper's bound) across worker counts; 1 is the
// serial reference path.
func BenchmarkBuildHierarchyWorkers(b *testing.B) {
	tt := phasedBenchTrace()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(sprint("workers=", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				affinity.BuildHierarchy(tt, affinity.Options{WMax: 20, Workers: workers})
			}
		})
	}
}

// BenchmarkTRGBuildWorkers measures sharded TRG construction across
// worker counts.
func BenchmarkTRGBuildWorkers(b *testing.B) {
	tt := phasedBenchTrace()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(sprint("workers=", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trg.BuildWorkers(tt, 128, workers)
			}
		})
	}
}

// BenchmarkFootprintCurveWorkers measures the fp(w) evaluation fan-out.
func BenchmarkFootprintCurveWorkers(b *testing.B) {
	syms := phasedBenchTrace().Syms
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(sprint("workers=", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				footprint.NewCurveWorkers(syms, nil, workers)
			}
		})
	}
}

// BenchmarkCorunBatchWorkers measures the independent co-run pair
// fan-out through cachesim.SimulateCorunBatch.
func BenchmarkCorunBatchWorkers(b *testing.B) {
	sj, err := ws().Bench("458.sjeng")
	if err != nil {
		b.Fatal(err)
	}
	mcf, err := ws().Bench("429.mcf")
	if err != nil {
		b.Fatal(err)
	}
	mkJobs := func() []cachesim.CorunJob {
		var jobs []cachesim.CorunJob
		for _, pair := range [][2]*Bench{{sj, mcf}, {mcf, sj}, {sj, sj}, {mcf, mcf}} {
			pr, err := pair[0].Replayer(experiments.Baseline, 64, false)
			if err != nil {
				b.Fatal(err)
			}
			er, err := pair[1].Replayer(experiments.Baseline, 64, true)
			if err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, cachesim.CorunJob{Primary: pr, Peer: er})
		}
		return jobs
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(sprint("workers=", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cachesim.SimulateCorunBatch(cachesim.L1IDefault, mkJobs(), workers)
			}
		})
	}
}

// --- helpers --------------------------------------------------------------

func sprint(prefix string, v int) string {
	// small local itoa to avoid fmt in hot bench names
	digits := [20]byte{}
	i := len(digits)
	if v == 0 {
		i--
		digits[i] = '0'
	}
	for v > 0 {
		i--
		digits[i] = byte('0' + v%10)
		v /= 10
	}
	return prefix + string(digits[i:])
}
