package affinity

import (
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/trace"
)

// TestWarmScratchMatchesMapOracle checks the allocation-free epoch-scratch
// warm-up helpers against the map-based oracles at every position of
// several trace shapes, including need values far beyond the alphabet.
func TestWarmScratchMatchesMapOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := [][]int32{
		{},           // empty trace
		{7},          // single occurrence
		{5, 5, 5, 5}, // single symbol repeated
		{0, 1, 2, 3, // strictly increasing: every warm-up hits distinct syms
			4, 5, 6, 7},
		func() []int32 { // random with repeats
			s := make([]int32, 61)
			for i := range s {
				s[i] = int32(rng.Intn(6))
			}
			return s
		}(),
	}
	st := &shardState{}
	for si, syms := range shapes {
		var maxSym int32 = -1
		for _, s := range syms {
			if s > maxSym {
				maxSym = s
			}
		}
		st.prepare(maxSym, 2)
		for _, need := range []int{0, 1, 2, 5, len(syms) + 3} {
			for pos := 0; pos <= len(syms); pos++ {
				if got, want := st.warmBeforeScratch(syms, pos, need), warmBefore(syms, pos, need); got != want {
					t.Fatalf("shape %d: warmBeforeScratch(%d, %d) = %d, oracle %d", si, pos, need, got, want)
				}
				if got, want := st.warmAfterScratch(syms, pos, need), warmAfter(syms, pos, need); got != want {
					t.Fatalf("shape %d: warmAfterScratch(%d, %d) = %d, oracle %d", si, pos, need, got, want)
				}
			}
		}
	}
}

// TestWarmScratchEpochIsolation verifies consecutive warm-ups on one
// pooled shard don't leak "seen" marks into each other: a warm-up that
// touched symbol s must not make a later warm-up skip s.
func TestWarmScratchEpochIsolation(t *testing.T) {
	syms := []int32{4, 4, 4, 4, 4, 4}
	st := &shardState{}
	st.prepare(4, 2)
	// First call marks symbol 4 in its epoch.
	if got := st.warmBeforeScratch(syms, 6, 1); got != 5 {
		t.Fatalf("first warmBeforeScratch = %d, want 5", got)
	}
	// A later call must count symbol 4 afresh, not see the stale mark and
	// walk to position 0.
	if got := st.warmBeforeScratch(syms, 6, 1); got != 5 {
		t.Fatalf("second warmBeforeScratch = %d, want 5 (stale epoch mark leaked)", got)
	}
	if got := st.warmAfterScratch(syms, 0, 1); got != 1 {
		t.Fatalf("warmAfterScratch after warmBeforeScratch = %d, want 1", got)
	}
}

// TestWarmScratchEpochWrap forces the int32 epoch counter through its
// wrap-around re-zeroing and checks warm-ups still match the oracle.
func TestWarmScratchEpochWrap(t *testing.T) {
	syms := []int32{0, 1, 2, 0, 1, 2}
	st := &shardState{}
	st.prepare(2, 2)
	st.epoch = 1<<31 - 2 // next two bumps cross the wrap
	for i := 0; i < 3; i++ {
		if got, want := st.warmBeforeScratch(syms, 6, 3), warmBefore(syms, 6, 3); got != want {
			t.Fatalf("bump %d: warmBeforeScratch = %d, oracle %d", i, got, want)
		}
	}
	if st.epoch <= 0 {
		t.Fatalf("epoch = %d, want positive after wrap", st.epoch)
	}
}

// TestShardBoundaryShortTraces drives the full sharded analysis on traces
// around and below the minimum shard span (minShardSpan*wmax), where
// warm-up spans clamp at position 0 and len(syms): the parallel result
// must stay byte-identical to serial for every worker count.
func TestShardBoundaryShortTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	wmax := 3
	minSpan := minShardSpan * wmax
	lengths := []int{
		0, 1, 2, // degenerate
		minSpan - 1, minSpan, minSpan + 1, // exactly at the chunking floor
		2*minSpan - 1, 2 * minSpan, // first lengths that can split
		5*minSpan + 3,
	}
	for _, n := range lengths {
		syms := make([]int32, n)
		for i := range syms {
			syms[i] = int32(rng.Intn(5))
		}
		tr := trace.New(syms)
		serial := BuildHierarchy(tr, Options{WMax: wmax, Workers: 1})
		for _, workers := range []int{2, 4, 16} {
			par := BuildHierarchy(tr, Options{WMax: wmax, Workers: workers})
			if !reflect.DeepEqual(par.Levels, serial.Levels) {
				t.Fatalf("n=%d workers=%d: hierarchy differs from serial", n, workers)
			}
		}
	}
}

// TestShardBoundaryWarmupSpansWholeTrace picks wmax larger than the
// alphabet so every shard's warm-up wants more distinct symbols than
// exist: warmBefore must clamp to 0 and warmAfter to len(syms), and the
// sharded result must still match serial and the naive oracle.
func TestShardBoundaryWarmupSpansWholeTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	syms := make([]int32, 200)
	for i := range syms {
		syms[i] = int32(rng.Intn(3)) // alphabet 3, wmax 8 below
	}
	tr := trace.New(syms)
	opt := Options{WMax: 8, Workers: 1}
	serial := BuildHierarchy(tr, opt)
	naive := BuildHierarchyNaive(tr, opt)
	for w := 1; w <= opt.WMax; w++ {
		if !reflect.DeepEqual(serial.Partition(w).Groups, naive.Partition(w).Groups) {
			t.Fatalf("w=%d: serial differs from naive oracle", w)
		}
	}
	for _, workers := range []int{2, 7} {
		par := BuildHierarchy(tr, Options{WMax: 8, Workers: workers})
		if !reflect.DeepEqual(par.Levels, serial.Levels) {
			t.Fatalf("workers=%d: hierarchy differs from serial", workers)
		}
	}
}

// TestShardBoundarySingleSymbol covers the single-distinct-symbol trace
// long enough to shard: there are no pairs, so the hierarchy is one
// trivial group at every level, for any worker count.
func TestShardBoundarySingleSymbol(t *testing.T) {
	syms := make([]int32, 100)
	for i := range syms {
		syms[i] = 9
	}
	tr := trace.New(syms)
	for _, workers := range []int{1, 2, 8} {
		h := BuildHierarchy(tr, Options{WMax: 2, Workers: workers})
		if got := h.Sequence(); len(got) != 1 || got[0] != 9 {
			t.Fatalf("workers=%d: sequence = %v, want [9]", workers, got)
		}
	}
}
