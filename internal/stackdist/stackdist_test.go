package stackdist

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLRUStackBasic(t *testing.T) {
	s := NewLRUStack(10)
	if s.Len() != 0 || s.Top() != -1 {
		t.Fatal("new stack not empty")
	}
	if !s.Access(3) {
		t.Error("first access to 3 not reported as first")
	}
	if s.Access(3) {
		t.Error("second access to 3 reported as first")
	}
	s.Access(5)
	s.Access(7)
	// Stack top-down: 7 5 3.
	if got := s.Top(); got != 7 {
		t.Errorf("Top = %d, want 7", got)
	}
	if got := s.DepthOf(3); got != 3 {
		t.Errorf("DepthOf(3) = %d, want 3", got)
	}
	if got := s.DepthOf(9); got != -1 {
		t.Errorf("DepthOf(unseen) = %d, want -1", got)
	}
	s.Access(3) // 3 7 5
	if got := s.DepthOf(3); got != 1 {
		t.Errorf("after reaccess DepthOf(3) = %d, want 1", got)
	}
	if got := s.DepthOf(5); got != 3 {
		t.Errorf("DepthOf(5) = %d, want 3", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(5) || s.Contains(0) {
		t.Error("Contains wrong")
	}
}

func TestLRUStackTopK(t *testing.T) {
	s := NewLRUStack(10)
	for _, sym := range []int32{1, 2, 3, 4} {
		s.Access(sym)
	}
	var got []int32
	s.TopK(3, func(sym int32) bool { got = append(got, sym); return true })
	if !reflect.DeepEqual(got, []int32{4, 3, 2}) {
		t.Errorf("TopK(3) = %v, want [4 3 2]", got)
	}
	// Early stop.
	got = nil
	s.TopK(10, func(sym int32) bool { got = append(got, sym); return len(got) < 2 })
	if len(got) != 2 {
		t.Errorf("TopK early stop visited %d, want 2", len(got))
	}
	// k larger than stack visits everything.
	got = nil
	s.TopK(100, func(sym int32) bool { got = append(got, sym); return true })
	if !reflect.DeepEqual(got, []int32{4, 3, 2, 1}) {
		t.Errorf("TopK(100) = %v", got)
	}
}

// lruStackOracle mirrors LRUStack with a plain slice for verification.
type lruStackOracle struct{ s []int32 }

func (o *lruStackOracle) access(sym int32) bool {
	for i, v := range o.s {
		if v == sym {
			copy(o.s[1:], o.s[:i])
			o.s[0] = sym
			return false
		}
	}
	o.s = append([]int32{sym}, o.s...)
	return true
}

func TestLRUStackMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewLRUStack(31)
	o := &lruStackOracle{}
	for i := 0; i < 5000; i++ {
		sym := int32(rng.Intn(32))
		gotFirst := s.Access(sym)
		wantFirst := o.access(sym)
		if gotFirst != wantFirst {
			t.Fatalf("step %d: first = %v, want %v", i, gotFirst, wantFirst)
		}
		if s.Len() != len(o.s) {
			t.Fatalf("step %d: Len = %d, want %d", i, s.Len(), len(o.s))
		}
		var got []int32
		s.TopK(len(o.s), func(sym int32) bool { got = append(got, sym); return true })
		if !reflect.DeepEqual(got, o.s) {
			t.Fatalf("step %d: stack %v, want %v", i, got, o.s)
		}
	}
}

func TestDistancesSmall(t *testing.T) {
	// Trace:        a b c a   a=dist 3 at t=3... then b at dist 3, c 2...
	syms := []int32{0, 1, 2, 0, 1, 2, 2}
	want := []int{Infinite, Infinite, Infinite, 3, 3, 3, 1}
	got := Distances(syms)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Distances = %v, want %v", got, want)
	}
}

func TestDistancesMatchesNaive(t *testing.T) {
	f := func(raw []uint8) bool {
		syms := make([]int32, len(raw))
		for i, r := range raw {
			syms[i] = int32(r % 12)
		}
		return reflect.DeepEqual(Distances(syms), DistancesNaive(syms))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistancesLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	syms := make([]int32, 3000)
	for i := range syms {
		syms[i] = int32(rng.Intn(100))
	}
	if !reflect.DeepEqual(Distances(syms), DistancesNaive(syms)) {
		t.Error("Distances disagrees with naive on large random trace")
	}
}

func TestHistogramAndMissRatio(t *testing.T) {
	syms := []int32{0, 1, 0, 1, 0, 1}
	d := Distances(syms) // inf inf 2 2 2 2
	hist, cold := Histogram(d)
	if cold != 2 {
		t.Errorf("cold = %d, want 2", cold)
	}
	if hist[2] != 4 {
		t.Errorf("hist[2] = %d, want 4", hist[2])
	}
	mr := MissRatioCurve(hist, cold, int64(len(syms)))
	if mr[0] != 1 {
		t.Errorf("mr[0] = %v, want 1", mr[0])
	}
	// Cache of 1 symbol: every access misses except none (alternating).
	if want := 1.0; mr[1] != want {
		t.Errorf("mr[1] = %v, want %v", mr[1], want)
	}
	// Cache of 2 symbols holds both: only cold misses remain.
	if want := 2.0 / 6.0; mr[2] != want {
		t.Errorf("mr[2] = %v, want %v", mr[2], want)
	}
}

func TestMissRatioCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	syms := make([]int32, 2000)
	for i := range syms {
		syms[i] = int32(rng.Intn(50))
	}
	d := Distances(syms)
	hist, cold := Histogram(d)
	mr := MissRatioCurve(hist, cold, int64(len(syms)))
	for c := 1; c < len(mr); c++ {
		if mr[c] > mr[c-1]+1e-12 {
			t.Fatalf("miss ratio not monotone at c=%d: %v > %v", c, mr[c], mr[c-1])
		}
	}
}

func BenchmarkDistances(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int32, 1<<16)
	for i := range syms {
		syms[i] = int32(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distances(syms)
	}
}
