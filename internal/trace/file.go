package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// File format: the instrumentation phase of the paper's system records
// the block/function trace "in a file" together with a mapping file. The
// format here is a small self-describing binary container:
//
//	magic "CLTR" | version u8 | count uvarint | deltas (zig-zag varint)
//
// Symbols are delta-encoded because consecutive block IDs in real traces
// are strongly clustered, which makes the common case one byte per
// occurrence.

const (
	fileMagic   = "CLTR"
	fileVersion = 1
)

// MaxFileCount bounds the occurrence count a decoder accepts, so a
// corrupt or hostile header cannot request an absurd allocation.
const MaxFileCount = 1 << 31

// WriteTo writes the trace in the binary container format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(fileMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	if err := bw.WriteByte(fileVersion); err != nil {
		return written, err
	}
	written++
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(len(t.Syms)))
	n, err = bw.Write(buf[:k])
	written += int64(n)
	if err != nil {
		return written, err
	}
	prev := int64(0)
	for _, s := range t.Syms {
		k := binary.PutVarint(buf[:], int64(s)-prev)
		n, err = bw.Write(buf[:k])
		written += int64(n)
		if err != nil {
			return written, err
		}
		prev = int64(s)
	}
	return written, bw.Flush()
}

// Decoder reads a CLTR container incrementally from an io.Reader, so a
// consumer (layoutd's upload path, tracedump on a pipe) never needs the
// whole file in memory. NewDecoder validates the header; Next yields one
// occurrence at a time and Decode drains the rest into a Trace.
//
// Every error is wrapped with the byte offset at which decoding failed
// and, where useful, what was expected — a truncated or corrupt upload
// turns into a diagnosable message rather than a raw io error.
type Decoder struct {
	br    *bufio.Reader
	count uint64 // declared occurrence count
	read  uint64 // occurrences decoded so far
	prev  int64  // last decoded symbol (delta base)
	off   int64  // byte offset consumed, for error context
}

// NewDecoder reads and validates the container header. The reader is
// left positioned at the first occurrence delta.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{br: bufio.NewReader(r), prev: 0}
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(d.br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic at offset %d: %w", d.off, noEOF(err))
	}
	d.off += int64(len(magic))
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q at offset 0 (want %q)", magic, fileMagic)
	}
	ver, err := d.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version at offset %d: %w", d.off, noEOF(err))
	}
	if ver != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d at offset %d (want %d)", ver, d.off-1, fileVersion)
	}
	start := d.off
	count, err := binary.ReadUvarint(d)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count at offset %d: %w", start, noEOF(err))
	}
	if count > MaxFileCount {
		return nil, fmt.Errorf("trace: count %d at offset %d exceeds limit %d", count, start, int64(MaxFileCount))
	}
	d.count = count
	return d, nil
}

// ReadByte implements io.ByteReader while tracking the byte offset, so
// varint reads through the decoder keep error context accurate.
func (d *Decoder) ReadByte() (byte, error) {
	b, err := d.br.ReadByte()
	if err == nil {
		d.off++
	}
	return b, err
}

// Len returns the declared occurrence count.
func (d *Decoder) Len() int { return int(d.count) }

// Offset returns the number of container bytes consumed so far.
func (d *Decoder) Offset() int64 { return d.off }

// Next decodes one occurrence. It returns io.EOF after the declared
// count has been delivered; any other error means a corrupt or
// truncated container.
func (d *Decoder) Next() (int32, error) {
	if d.read >= d.count {
		return 0, io.EOF
	}
	start := d.off
	delta, err := binary.ReadVarint(d)
	if err != nil {
		return 0, fmt.Errorf("trace: reading occurrence %d at offset %d: %w", d.read, start, noEOF(err))
	}
	d.prev += delta
	if d.prev < 0 || d.prev > 1<<30 {
		return 0, fmt.Errorf("trace: occurrence %d at offset %d decodes to invalid symbol %d", d.read, start, d.prev)
	}
	d.read++
	return int32(d.prev), nil
}

// NextChunk decodes up to len(dst) occurrences into dst and returns how
// many it wrote. It is the streaming bulk form of Next: a consumer that
// analyzes a trace while it uploads calls NextChunk in a loop with a
// reused fixed-size buffer, so decoding allocates nothing at steady
// state and in-flight memory stays bounded by the buffer, not the trace.
//
// NextChunk returns n > 0 with a nil error as long as occurrences
// remain; (0, io.EOF) after the declared count has been delivered; and
// (n, err) with n possibly non-zero when the container turns out to be
// corrupt or truncated mid-chunk — the occurrences decoded before the
// failure are valid and err carries the byte offset, exactly like Next.
func (d *Decoder) NextChunk(dst []int32) (int, error) {
	if d.read >= d.count {
		return 0, io.EOF
	}
	for n := range dst {
		s, err := d.Next()
		if err != nil {
			if err == io.EOF {
				return n, nil
			}
			return n, err
		}
		dst[n] = s
	}
	return len(dst), nil
}

// Decode drains the remaining occurrences into a Trace. The initial
// allocation is capped so a lying header cannot force a huge up-front
// allocation before any byte of payload has been validated.
func (d *Decoder) Decode() (*Trace, error) {
	capHint := d.count - d.read
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	syms := make([]int32, 0, capHint)
	for {
		s, err := d.Next()
		if err == io.EOF {
			return &Trace{Syms: syms}, nil
		}
		if err != nil {
			return nil, err
		}
		syms = append(syms, s)
	}
}

// noEOF converts a bare io.EOF inside a container into
// io.ErrUnexpectedEOF: the header promised more bytes than arrived.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ReadFrom parses a trace written by WriteTo.
func ReadFrom(r io.Reader) (*Trace, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return d.Decode()
}
