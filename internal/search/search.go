// Package search explores the Petrank-Rawitz wall (§III-D of the
// paper): optimal code placement is NP-hard and inapproximable, so any
// practical optimizer captures specific patterns — affinity and TRG are
// two such patterns. This package adds a third reference point: direct
// local search over function orders against an explicit conflict cost,
// which quantifies how close the pattern-based one-pass models get to
// what iterated search finds, and at what analysis cost.
//
// The cost of an order is the TRG-weighted cache-set overlap: for every
// pair of functions with temporal conflicts (TRG edge weight w), the
// pair contributes w times the number of cache sets both functions
// occupy under the candidate layout. Minimizing it spreads temporally
// conflicting code across different sets — the same objective
// Gloy-Smith's placement greedily optimizes, here optimized by
// first-improvement hill climbing with deterministic restarts.
package search

import (
	"math/rand"

	"codelayout/internal/cachesim"
	"codelayout/internal/ir"
	"codelayout/internal/trg"
)

// Cost evaluates a function order; lower is better.
type Cost func(order []ir.FuncID) float64

// ConflictCost builds the TRG-weighted set-overlap cost for a program
// under the given cache geometry.
func ConflictCost(p *ir.Program, g *trg.Graph, cfg cachesim.Config) Cost {
	sets := cfg.Sets()
	line := cfg.LineBytes
	// Function sizes in lines (source order, no injected jumps — the
	// cost is a placement proxy, not an exact simulation).
	sizeLines := make([]int, p.NumFuncs())
	for _, f := range p.Funcs {
		var bytes int64
		for _, b := range f.Blocks {
			bytes += int64(p.Blocks[b].Size)
		}
		sizeLines[int(f.ID)] = int((bytes + int64(line) - 1) / int64(line))
	}
	edges := g.Edges()
	return func(order []ir.FuncID) float64 {
		// startSet[f] = first cache set of function f under the order.
		startSet := make([]int, p.NumFuncs())
		span := make([]int, p.NumFuncs())
		pos := 0
		for _, f := range order {
			startSet[f] = pos % sets
			span[f] = sizeLines[f]
			pos += sizeLines[f]
		}
		var cost float64
		for _, e := range edges {
			a, b := e.A, e.B
			cost += float64(e.Weight) * float64(setOverlap(
				startSet[a], span[a], startSet[b], span[b], sets))
		}
		return cost
	}
}

// setOverlap counts the cache sets covered by both circular intervals
// [sa, sa+la) and [sb, sb+lb) modulo `sets`.
func setOverlap(sa, la, sb, lb, sets int) int {
	if la >= sets || lb >= sets {
		// A function wrapping the whole cache overlaps everything the
		// other touches.
		if la >= sets && lb >= sets {
			return sets
		}
		if la >= sets {
			return lb
		}
		return la
	}
	overlap := 0
	// Compare as at most two linear intervals each.
	for _, ia := range splitCircular(sa, la, sets) {
		for _, ib := range splitCircular(sb, lb, sets) {
			lo := max(ia[0], ib[0])
			hi := min(ia[1], ib[1])
			if hi > lo {
				overlap += hi - lo
			}
		}
	}
	return overlap
}

// splitCircular turns a circular interval into one or two linear ones.
func splitCircular(start, length, sets int) [][2]int {
	if start+length <= sets {
		return [][2]int{{start, start + length}}
	}
	return [][2]int{{start, sets}, {0, start + length - sets}}
}

// Options configures the search.
type Options struct {
	// Seed drives the candidate move generator.
	Seed int64
	// Iterations is the move budget per restart; 0 means 4000.
	Iterations int
	// Restarts is the number of shuffled restarts beyond the initial
	// order; 0 means 2.
	Restarts int
}

// Result reports the search outcome.
type Result struct {
	Order []ir.FuncID
	// InitialCost and FinalCost bracket the improvement.
	InitialCost, FinalCost float64
	// Evaluations counts cost evaluations (the search's work metric).
	Evaluations int
}

// Improve hill-climbs from the initial order using swap and
// segment-rotate moves, with deterministic shuffled restarts, and
// returns the best order found.
func Improve(initial []ir.FuncID, cost Cost, opt Options) Result {
	iters := opt.Iterations
	if iters == 0 {
		iters = 4000
	}
	restarts := opt.Restarts
	if restarts == 0 {
		restarts = 2
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	best := append([]ir.FuncID(nil), initial...)
	res := Result{InitialCost: cost(initial), Evaluations: 1}
	bestCost := res.InitialCost

	climb := func(start []ir.FuncID) {
		cur := append([]ir.FuncID(nil), start...)
		curCost := cost(cur)
		res.Evaluations++
		n := len(cur)
		if n < 2 {
			return
		}
		for it := 0; it < iters; it++ {
			i := rng.Intn(n)
			j := rng.Intn(n)
			if i == j {
				continue
			}
			var undo func()
			if rng.Intn(3) == 0 {
				// Segment move: take the function at i and insert at j.
				moved := cur[i]
				tmp := append([]ir.FuncID(nil), cur[:i]...)
				tmp = append(tmp, cur[i+1:]...)
				rest := append([]ir.FuncID(nil), tmp[:j*len(tmp)/n]...)
				rest = append(rest, moved)
				rest = append(rest, tmp[j*len(tmp)/n:]...)
				old := cur
				cur = rest
				undo = func() { cur = old }
			} else {
				cur[i], cur[j] = cur[j], cur[i]
				undo = func() { cur[i], cur[j] = cur[j], cur[i] }
			}
			c := cost(cur)
			res.Evaluations++
			if c < curCost {
				curCost = c
			} else {
				undo()
			}
		}
		if curCost < bestCost {
			bestCost = curCost
			best = append(best[:0:0], cur...)
		}
	}

	climb(initial)
	for r := 0; r < restarts; r++ {
		shuffled := append([]ir.FuncID(nil), initial...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		climb(shuffled)
	}

	res.Order = best
	res.FinalCost = bestCost
	return res
}
