// Corun demonstrates the paper's two goals for shared-cache
// optimization — defensiveness and politeness — on a hyper-threaded
// co-run pair, and cross-checks the measurement against the footprint
// theory of §II-A (Eq 2).
package main

import (
	"fmt"
	"log"

	"codelayout"
	"codelayout/internal/experiments"
)

func main() {
	log.SetFlags(0)

	w := codelayout.NewWorkspace()
	primary, err := w.Bench("471.omnetpp")
	if err != nil {
		log.Fatal(err)
	}
	peer, err := w.Bench("403.gcc")
	if err != nil {
		log.Fatal(err)
	}

	// Measured: solo, then co-run with the baseline and the optimized
	// primary (the peer always runs the baseline).
	solo, err := primary.HWSolo(experiments.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	base, err := experiments.HWCorunTimed(primary, experiments.Baseline, peer, experiments.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := experiments.HWCorunTimed(primary, "bb-affinity", peer, experiments.Baseline)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s sharing the 32 KB L1 instruction cache with %s\n\n", primary.Name(), peer.Name())
	fmt.Printf("primary miss ratio: solo %.2f%%  co-run %.2f%%  co-run optimized %.2f%%\n",
		100*solo.Counters.ICacheMissRatio(),
		100*base.Counters.ICacheMissRatio(),
		100*opt.Counters.ICacheMissRatio())
	fmt.Printf("defensiveness: the optimized primary runs %.2f%% faster in the same co-run\n",
		100*(float64(base.Primary.Cycles)/float64(opt.Primary.Cycles)-1))
	fmt.Printf("politeness:    the peer's miss ratio drops %.2f%% -> %.2f%%\n\n",
		100*base.Peer.L1I.MissRatio(), 100*opt.Peer.L1I.MissRatio())

	// Theory: build byte-weighted footprint curves of the instruction
	// streams and evaluate Eq 2. The model operates on the baseline
	// layouts' line traces.
	selfCurve := lineFootprint(primary)
	peerCurve := lineFootprint(peer)
	const cacheLines = 512 // 32 KB / 64 B
	fmt.Printf("footprint theory (Eq 2, in cache lines):\n")
	fmt.Printf("  P(self.miss | solo)  ~ %.2f%%\n", 100*selfCurve.MissRatioAt(cacheLines))
	fmt.Printf("  P(self.miss | co-run) = P(self.FP + peer.FP >= C) ~ %.2f%%\n",
		100*codelayout.PredictCorunMiss(selfCurve, peerCurve, cacheLines))
	fmt.Println("\nthe theory predicts the same qualitative jump the counters measure:")
	fmt.Println("cache sharing turns a near-zero solo miss ratio into real contention.")
}

// lineFootprint builds the footprint curve of a program's instruction
// line trace under its original layout.
func lineFootprint(b *codelayout.Bench) *codelayout.FootprintCurve {
	r, err := b.Replayer(experiments.Baseline, 64, false)
	if err != nil {
		log.Fatal(err)
	}
	var lines []int32
	for {
		if _, ok := r.Next(func(ln int64) {
			lines = append(lines, int32(ln))
		}); !ok {
			break
		}
	}
	// Cap the curve computation; the trace tail repeats the same phases.
	if len(lines) > 200000 {
		lines = lines[:200000]
	}
	return codelayout.NewFootprintCurve(lines, nil)
}
