// Package interp executes ir programs and records their basic-block
// traces. It plays the role of the paper's instrumentation + runtime
// phases: "the modeling step instruments the program and runs it using
// the test data input set" (§II-F). The "input set" here is the random
// seed: the training seed stands in for SPEC's test input and a different
// evaluation seed for the reference input, so an optimizer never trains
// on the exact trace it is judged with.
package interp

import (
	"fmt"
	"math/rand"

	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// Options controls one execution.
type Options struct {
	// Seed selects the program input (branch outcomes and choice
	// effects). Executions are fully deterministic for a given seed.
	Seed int64
	// MaxSteps caps the number of basic-block executions; 0 means the
	// default of 50 million. The interpreter stops with Completed=false
	// when the cap is reached.
	MaxSteps int
	// MaxCallDepth caps the call stack; 0 means the default of 4096.
	MaxCallDepth int
}

// Result is the outcome of one execution.
type Result struct {
	// Blocks is the raw (untrimmed) basic-block trace, one entry per
	// block execution, in execution order.
	Blocks *trace.Trace
	// Steps is the number of blocks executed.
	Steps int
	// DynamicBytes is the total instruction bytes fetched, i.e. the sum
	// of executed block sizes (excluding layout-injected jumps, which
	// depend on the layout and are accounted by the replayer).
	DynamicBytes int64
	// Completed reports whether the program reached Exit (rather than
	// hitting MaxSteps).
	Completed bool
}

const (
	defaultMaxSteps     = 50_000_000
	defaultMaxCallDepth = 4096
)

// Run executes p and records its block trace.
func Run(p *ir.Program, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	maxSteps := opt.MaxSteps
	if maxSteps == 0 {
		maxSteps = defaultMaxSteps
	}
	maxDepth := opt.MaxCallDepth
	if maxDepth == 0 {
		maxDepth = defaultMaxCallDepth
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	globals := make([]int32, p.NumGlobals)
	counters := make([]int32, p.NumBlocks())
	callStack := make([]ir.BlockID, 0, 64)
	syms := make([]int32, 0, 1<<16)

	res := &Result{}
	cur := p.Entry(0)
	for {
		if res.Steps >= maxSteps {
			res.Blocks = trace.New(syms)
			return res, nil
		}
		b := p.Blocks[cur]
		syms = append(syms, int32(cur))
		res.Steps++
		res.DynamicBytes += int64(b.Size)

		for _, e := range b.Effects {
			applyEffect(globals, rng, e)
		}

		switch t := b.Term.(type) {
		case ir.Jump:
			cur = t.Target
		case ir.Branch:
			if evalCond(t.Cond, globals, counters, cur, rng) {
				cur = t.Taken
			} else {
				cur = t.Fall
			}
		case ir.Call:
			if len(callStack) >= maxDepth {
				return nil, fmt.Errorf("interp: call depth exceeds %d at block %s", maxDepth, b)
			}
			callStack = append(callStack, t.Next)
			cur = p.Entry(t.Callee)
		case ir.Return:
			if len(callStack) == 0 {
				// Returning from the entry function ends the program.
				res.Completed = true
				res.Blocks = trace.New(syms)
				return res, nil
			}
			cur = callStack[len(callStack)-1]
			callStack = callStack[:len(callStack)-1]
		case ir.Exit:
			res.Completed = true
			res.Blocks = trace.New(syms)
			return res, nil
		default:
			return nil, fmt.Errorf("interp: block %s has unsupported terminator %T", b, b.Term)
		}
	}
}

func applyEffect(globals []int32, rng *rand.Rand, e ir.Effect) {
	switch t := e.(type) {
	case ir.SetGlobal:
		globals[t.Reg] = t.Val
	case ir.AddGlobal:
		globals[t.Reg] += t.Delta
	case ir.SetGlobalChoice:
		globals[t.Reg] = t.Choices[rng.Intn(len(t.Choices))]
	}
}

func evalCond(c ir.Cond, globals, counters []int32, cur ir.BlockID, rng *rand.Rand) bool {
	switch t := c.(type) {
	case ir.Always:
		return true
	case ir.Prob:
		return rng.Float64() < t.P
	case ir.GlobalEq:
		return globals[t.Reg] == t.Val
	case ir.GlobalLT:
		return globals[t.Reg] < t.Val
	case ir.Counter:
		counters[cur]++
		if counters[cur] < t.Trips {
			return true
		}
		counters[cur] = 0
		return false
	default:
		return false
	}
}
