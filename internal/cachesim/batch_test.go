package cachesim

import (
	"reflect"
	"testing"

	"codelayout/internal/layout"
)

// TestSimulateCorunBatchMatchesIndividual: the batched concurrent co-run
// fan-out must return exactly what running each job through
// SimulateCorun one by one would, in job order, for any worker count.
func TestSimulateCorunBatchMatchesIndividual(t *testing.T) {
	pa := loopProgram(t, 320, 64, 30)
	pb := loopProgram(t, 64, 64, 200)
	pc := loopProgram(t, 16, 64, 100)
	la, lb, lc := layout.Original(pa), layout.Original(pb), layout.Original(pc)
	ta, tb, tc := runTrace(t, pa), runTrace(t, pb), runTrace(t, pc)

	// Each job needs its own replayer pair (replayers are stateful), so
	// build a fresh job list per simulation run.
	mkJobs := func() []CorunJob {
		return []CorunJob{
			{layout.NewReplayer(la, ta, 64, false), layout.NewReplayer(lb, tb, 64, true)},
			{layout.NewReplayer(lb, tb, 64, false), layout.NewReplayer(la, ta, 64, true)},
			{layout.NewReplayer(la, ta, 64, false), layout.NewReplayer(lc, tc, 64, true)},
			{layout.NewReplayer(lc, tc, 64, false), layout.NewReplayer(lc, tc, 64, true)},
			{layout.NewReplayer(lb, tb, 64, false), layout.NewReplayer(lc, tc, 64, true)},
		}
	}

	var want []CorunResult
	for _, j := range mkJobs() {
		want = append(want, SimulateCorun(L1IDefault, j.Primary, j.Peer))
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got := SimulateCorunBatch(L1IDefault, mkJobs(), workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: batch results differ from individual runs", workers)
		}
	}
	if out := SimulateCorunBatch(L1IDefault, nil, 8); len(out) != 0 {
		t.Fatalf("empty batch returned %d results", len(out))
	}
}
