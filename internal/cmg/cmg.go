// Package cmg implements the Conflict Miss Graph model of Kalamatianos &
// Kaeli ("Temporal-based procedure reordering for improved instruction
// cache performance", HPCA 1998), which the paper's related work names
// as TRG's sibling: "a similar model is the Conflict Miss Graph (CMG),
// used for function reordering".
//
// Where TRG counts every interleaving between two blocks' successive
// occurrences, the CMG weights an edge by the *worst-case number of
// conflict misses* the pair could suffer if they mapped to the same
// cache set: a completed alternation (A evicts B, then B evicts A)
// costs at most two misses, while a one-sided interleaving — a block
// executed once between another's reuses — costs none beyond the cold
// miss. Cold code interleaved with hot loops therefore gains no weight
// in the CMG although the TRG counts it, which is the behavioural
// difference the comparison experiment quantifies.
//
// Ordering uses the same slot-based reduction as the TRG (the paper
// adapts Gloy-Smith's placement to produce an order; the CMG paper's own
// color-based placement reduces to the same slot assignment under the
// uniform-block-size assumption).
package cmg

import (
	"codelayout/internal/flathash"
	"codelayout/internal/stackdist"
	"codelayout/internal/trace"
	"codelayout/internal/trg"
)

// Build constructs the conflict miss graph of a code trace.
// windowBlocks bounds the liveness window in distinct code blocks (use
// the same 2C-derived bound as the TRG); 0 means unbounded.
//
// The construction walks the trimmed trace with an LRU stack. When
// block A is re-accessed within the window, each distinct block X
// interleaved since A's previous occurrence contributes conflict
// weight; unlike the TRG, a consecutive run of re-accesses between the
// same pair adds at most 2 per alternation (the worst-case misses of a
// same-set pair), implemented by counting each (A, X) alternation once
// per direction change rather than once per interleaved occurrence.
func Build(t *trace.Trace, windowBlocks int) *trg.Graph {
	tt := t.Trimmed()
	g := trg.NewGraph()
	if len(tt.Syms) == 0 {
		return g
	}
	maxSym := tt.MaxSym()
	limit := windowBlocks
	if limit <= 0 {
		limit = int(maxSym) + 1
	}
	stack := stackdist.NewLRUStack(maxSym)
	// lastDir remembers, per pair, which side was accessed last when
	// weight was added, so a strict alternation A X A X adds weight once
	// per direction change. Stored as symbol+1 in a flat table (0 is the
	// table's absent value).
	lastDir := &flathash.Sum64{}
	scratch := make([]int32, 0, limit)

	for _, cur := range tt.Syms {
		g.AddNode(cur)
		// Snapshot the stack prefix above cur's previous occurrence: the
		// blocks interleaved since it.
		between, found := stack.AppendTopKUntil(scratch[:0], limit, cur)
		scratch = between[:0]
		if found {
			for _, x := range between {
				key := pairKey(cur, x)
				// Worst-case conflict: a same-set pair can lose at most
				// two lines per *completed alternation* (cur evicted x,
				// then x evicted cur). The first one-sided interleaving
				// only arms the direction; weight accrues when the
				// direction flips. A block that executes once between
				// another's reuses therefore carries no worst-case
				// conflict — the key difference from the TRG, which
				// counts every interleaving.
				if d := lastDir.Get(key); d != 0 && d != int64(cur)+1 {
					g.AddWeight(cur, x, 2)
				}
				lastDir.Set(key, int64(cur)+1)
			}
		}
		stack.Access(cur)
	}
	return g
}

func pairKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(int32(b))&0xffffffff
}

// Sequence runs the full CMG pipeline with TRG-compatible parameters:
// build the graph with the parameter-derived window, reduce with the
// parameter-derived slot count.
func Sequence(t *trace.Trace, p trg.Params) []int32 {
	return trg.Reduce(Build(t, p.WindowBlocks()), p.Slots())
}
