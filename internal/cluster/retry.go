package cluster

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Retrier runs HTTP attempts with jittered exponential backoff. An
// attempt is retried on transport errors and on 429/503 responses; any
// other response is returned to the caller as-is.
//
// It started life inside layoutctl and is shared here so the peer
// client (forwarding, replication) and the CLI retry with identical
// semantics: content addressing makes every retried request idempotent,
// so a resubmit either lands on the cached result or re-enqueues the
// same digest, never duplicates completed work.
type Retrier struct {
	Max   int                              // retry budget (0 = single attempt)
	Base  time.Duration                    // base of the exponential backoff window
	Sleep func(time.Duration)              // nil = time.Sleep
	Logf  func(format string, args ...any) // nil = silent
	// Skip, when set, is consulted before every attempt; a non-nil error
	// abandons the remaining budget and is returned immediately. The
	// replication path uses it to stop retrying into a peer the health
	// poller marked down mid-backoff.
	Skip func() error
}

// Retryable reports whether the status code signals "try again later".
func Retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff computes the wait before retry attempt (0-based): an
// exponentially growing window with half-width jitter, so a burst of
// rejected clients spreads out instead of stampeding the queue in
// lockstep. A server-provided Retry-After floor is respected.
func (r *Retrier) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := r.Base << attempt
	if d <= 0 {
		d = time.Millisecond
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// ParseRetryAfter reads a Retry-After header: either delay-seconds or
// an HTTP date. Zero means absent or unparseable.
func ParseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Do runs attempt until it yields a non-retryable outcome or the retry
// budget is spent. attempt must produce a fresh request each call (the
// body of a failed attempt has already been consumed).
func (r *Retrier) Do(what string, attempt func() (*http.Response, error)) (*http.Response, error) {
	sleep := r.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	logf := r.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var lastErr error
	for i := 0; ; i++ {
		if r.Skip != nil {
			if err := r.Skip(); err != nil {
				return nil, fmt.Errorf("%s: %w", what, err)
			}
		}
		resp, err := attempt()
		if err == nil && !Retryable(resp.StatusCode) {
			return resp, nil
		}
		var retryAfter time.Duration
		if err != nil {
			lastErr = err
		} else {
			retryAfter = ParseRetryAfter(resp)
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			lastErr = fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		if i >= r.Max {
			return nil, fmt.Errorf("%s: %w (after %d retries)", what, lastErr, r.Max)
		}
		wait := r.backoff(i, retryAfter)
		logf("%s: %v; retrying in %s (%d/%d)", what, lastErr, wait.Round(time.Millisecond), i+1, r.Max)
		sleep(wait)
	}
}
