package layout

import (
	"reflect"
	"testing"

	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// fig3Prog builds the paper's Figure 3 program: main calls X and Y in a
// loop; X sets a global that decides Y's branch.
func fig3Prog(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("fig3", 1)
	main := b.Func("main")
	x := b.Func("X")
	y := b.Func("Y")

	mEntry := main.Block("entry", 8)
	mCallX := main.Block("callX", 8)
	mCallY := main.Block("callY", 8)
	mLatch := main.Block("latch", 8)
	mExit := main.Block("exit", 8)
	mEntry.Jump(mCallX)
	mCallX.Call(x, mCallY)
	mCallY.Call(y, mLatch)
	mLatch.Loop(100, mCallX, mExit)
	mExit.Exit()

	x1 := x.Block("X1", 12)
	x2 := x.Block("X2", 24)
	x3 := x.Block("X3", 24)
	x1.Branch(ir.Prob{P: 0.5}, x3, x2) // fall-through X2
	x2.Set(0, 1)
	x2.Return()
	x3.Set(0, 2)
	x3.Return()

	y1 := y.Block("Y1", 12)
	y2 := y.Block("Y2", 24)
	y3 := y.Block("Y3", 24)
	y1.Branch(ir.GlobalEq{Reg: 0, Val: 2}, y3, y2)
	y2.Return()
	y3.Return()

	return b.MustBuild()
}

func TestOriginalLayoutContiguous(t *testing.T) {
	p := fig3Prog(t)
	l := Original(p)
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if l.HasStubs() {
		t.Error("original layout has stubs")
	}
	// Source order: block 0 starts at 0; each next block follows.
	var addr int64
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if l.Addr[b] != addr {
				t.Fatalf("block %d at %d, want %d", b, l.Addr[b], addr)
			}
			addr += int64(l.Size[b])
		}
	}
}

func TestOriginalFallThroughNeedsNoJump(t *testing.T) {
	p := fig3Prog(t)
	l := Original(p)
	// X1's fall-through X2 is adjacent in source order: no jump added.
	x1 := p.BlockByName("X", "X1")
	if l.Size[x1.ID] != x1.Size {
		t.Errorf("X1 effective size %d, want %d (fall-through adjacent)", l.Size[x1.ID], x1.Size)
	}
	// callX's natural next is callY, adjacent: no jump.
	c := p.BlockByName("main", "callX")
	if l.Size[c.ID] != c.Size {
		t.Errorf("callX effective size %d, want %d", l.Size[c.ID], c.Size)
	}
}

func TestReorderFunctions(t *testing.T) {
	p := fig3Prog(t)
	// Place Y first, then main; X is appended automatically.
	l := ReorderFunctions(p, []ir.FuncID{2, 0})
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	y1 := p.BlockByName("Y", "Y1")
	if l.Addr[y1.ID] != 0 {
		t.Errorf("Y entry at %d, want 0", l.Addr[y1.ID])
	}
	// X comes last.
	x1 := p.BlockByName("X", "X1")
	m := p.BlockByName("main", "exit")
	if l.Addr[x1.ID] < l.Addr[m.ID] {
		t.Errorf("X (%d) not after main (%d)", l.Addr[x1.ID], l.Addr[m.ID])
	}
	if l.HasStubs() {
		t.Error("function reorder has stubs")
	}
	// Within a function, source order is preserved and contiguous.
	x2 := p.BlockByName("X", "X2")
	if l.Addr[x2.ID] != l.Addr[x1.ID]+int64(l.Size[x1.ID]) {
		t.Error("X2 does not follow X1")
	}
}

func TestReorderFunctionsDropsDuplicatesAndBadIDs(t *testing.T) {
	p := fig3Prog(t)
	full := CompleteFuncOrder(p, []ir.FuncID{2, 2, 99, -1, 0})
	want := []ir.FuncID{2, 0, 1}
	if !reflect.DeepEqual(full, want) {
		t.Errorf("CompleteFuncOrder = %v, want %v", full, want)
	}
}

func TestReorderBlocksInterprocedural(t *testing.T) {
	p := fig3Prog(t)
	// The paper's optimized layout: X2 Y2 X3 Y3 X1 Y1 (hot correlated
	// pairs adjacent, headers after).
	x1 := p.BlockByName("X", "X1").ID
	x2 := p.BlockByName("X", "X2").ID
	x3 := p.BlockByName("X", "X3").ID
	y1 := p.BlockByName("Y", "Y1").ID
	y2 := p.BlockByName("Y", "Y2").ID
	y3 := p.BlockByName("Y", "Y3").ID
	l := ReorderBlocks(p, []ir.BlockID{x2, y2, x3, y3, x1, y1})
	if err := l.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !l.HasStubs() {
		t.Error("BB reorder must add entry stubs")
	}
	// X2 is the first block after the stub table.
	stubEnd := int64(p.NumFuncs()) * JumpBytes
	if l.Addr[x2] != stubEnd {
		t.Errorf("X2 at %d, want %d (right after stubs)", l.Addr[x2], stubEnd)
	}
	// Blocks from different functions interleave.
	if !(l.Addr[x2] < l.Addr[y2] && l.Addr[y2] < l.Addr[x3]) {
		t.Error("cross-function interleaving not realized")
	}
	// X1's fall-through (X2) is not adjacent anymore: jump appended.
	if l.Size[x1] != p.Blocks[x1].Size+JumpBytes {
		t.Errorf("X1 size %d, want %d (explicit fall-through jump)", l.Size[x1], p.Blocks[x1].Size+JumpBytes)
	}
	// Main's blocks were appended in source order after the ordered ones.
	mEntry := p.BlockByName("main", "entry").ID
	if l.Addr[mEntry] < l.Addr[y1] {
		t.Error("unordered blocks must follow ordered ones")
	}
}

func TestJumpOverheadBytes(t *testing.T) {
	p := fig3Prog(t)
	orig := Original(p)
	if got := orig.JumpOverheadBytes(); got != 0 {
		t.Errorf("original overhead = %d, want 0", got)
	}
	// Reversing all blocks forces jumps for most fall-throughs.
	var rev []ir.BlockID
	for b := p.NumBlocks() - 1; b >= 0; b-- {
		rev = append(rev, ir.BlockID(b))
	}
	l := ReorderBlocks(p, rev)
	if got := l.JumpOverheadBytes(); got <= 0 {
		t.Errorf("reversed overhead = %d, want > 0", got)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTouchedLinesPackingEffect(t *testing.T) {
	// Two hot blocks in different functions, separated by large cold
	// blocks in the original layout, share fewer lines when packed.
	b := ir.NewBuilder("pack", 0)
	f1 := b.Func("f1")
	f2 := b.Func("f2")
	h1 := f1.Block("hot1", 16)
	c1 := f1.Block("cold1", 200)
	h2 := f2.Block("hot2", 16)
	c2 := f2.Block("cold2", 200)
	h1.Jump(c1)
	c1.Return()
	h2.Jump(c2)
	c2.Return()
	p := b.MustBuild()

	hot := []ir.BlockID{h1.ID(), h2.ID()}
	orig := Original(p)
	packed := ReorderBlocks(p, hot)
	if got, want := packed.TouchedLines(hot, 64), orig.TouchedLines(hot, 64); got > want {
		t.Errorf("packed layout touches %d lines, original %d", got, want)
	}
	// With 64-byte lines, two adjacent 16B blocks (plus their jumps)
	// share a single line; scattered they need two.
	if packed.TouchedLines(hot, 64) != 1 {
		t.Errorf("packed hot lines = %d, want 1", packed.TouchedLines(hot, 64))
	}
	if orig.TouchedLines(hot, 64) != 2 {
		t.Errorf("original hot lines = %d, want 2", orig.TouchedLines(hot, 64))
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	p := fig3Prog(t)
	l := Original(p)
	l.Addr[3] = l.Addr[2] // force overlap
	if err := l.Validate(); err == nil {
		t.Error("Validate accepted overlapping layout")
	}
}

func TestReplayerEmitsLinesAndBytes(t *testing.T) {
	p := fig3Prog(t)
	l := Original(p)
	// Execute blocks 0 and 1 (entry at addr 0 size 8, callX at 8 size 8).
	tr := trace.New([]int32{0, 1})
	r := NewReplayer(l, tr, 64, false)
	var lines []int64
	var total int32
	for {
		n, ok := r.Next(func(ln int64) { lines = append(lines, ln) })
		if !ok {
			break
		}
		total += n
	}
	if total != 16 {
		t.Errorf("bytes = %d, want 16", total)
	}
	// Both blocks live in line 0.
	if !reflect.DeepEqual(lines, []int64{0, 0}) {
		t.Errorf("lines = %v, want [0 0]", lines)
	}
	if !r.Done() {
		t.Error("replayer not done")
	}
}

func TestReplayerStubAccessOnCalls(t *testing.T) {
	p := fig3Prog(t)
	x1 := p.BlockByName("X", "X1").ID
	callX := p.BlockByName("main", "callX").ID
	// BB layout placing X1 far away, so the stub line differs from X1's.
	var rev []ir.BlockID
	for b := p.NumBlocks() - 1; b >= 0; b-- {
		rev = append(rev, ir.BlockID(b))
	}
	l := ReorderBlocks(p, rev)

	tr := trace.New([]int32{int32(callX), int32(x1)})
	r := NewReplayer(l, tr, 64, false)
	var withStub int32
	for {
		n, ok := r.Next(func(int64) {})
		if !ok {
			break
		}
		withStub += n
	}
	// Stub adds JumpBytes to the fetch stream. callX's appended
	// return-path jump executes (Call continuation moved); X1's appended
	// fall-through jump does not (the trace ends, so the fall path is
	// never taken).
	plain := l.Size[callX] + p.Blocks[x1].Size
	if withStub != plain+JumpBytes {
		t.Errorf("fetched %d bytes, want %d (stub accounted)", withStub, plain+JumpBytes)
	}

	// The original layout has no stubs: fetch is exactly the block sizes.
	lo := Original(p)
	r = NewReplayer(lo, tr, 64, false)
	var noStub int32
	for {
		n, ok := r.Next(func(int64) {})
		if !ok {
			break
		}
		noStub += n
	}
	if noStub != lo.Size[callX]+lo.Size[x1] {
		t.Errorf("original fetched %d, want %d", noStub, lo.Size[callX]+lo.Size[x1])
	}
}

func TestReplayerWrap(t *testing.T) {
	p := fig3Prog(t)
	l := Original(p)
	tr := trace.New([]int32{0, 1, 2})
	r := NewReplayer(l, tr, 64, true)
	for i := 0; i < 10; i++ {
		if _, ok := r.Next(func(int64) {}); !ok {
			t.Fatal("wrapping replayer stopped")
		}
	}
	if r.Laps() != 3 {
		t.Errorf("laps = %d, want 3", r.Laps())
	}
}

func TestReplayerEmptyTrace(t *testing.T) {
	p := fig3Prog(t)
	l := Original(p)
	r := NewReplayer(l, trace.New(nil), 64, true)
	if _, ok := r.Next(func(int64) {}); ok {
		t.Error("empty trace must not replay")
	}
}

func TestLargeBlockSpansMultipleLines(t *testing.T) {
	b := ir.NewBuilder("big", 0)
	f := b.Func("main")
	big := f.Block("big", 200)
	big.Exit()
	p := b.MustBuild()
	l := Original(p)
	r := NewReplayer(l, trace.New([]int32{0}), 64, false)
	var lines []int64
	r.Next(func(ln int64) { lines = append(lines, ln) })
	// 200 bytes from address 0 cover lines 0..3.
	if !reflect.DeepEqual(lines, []int64{0, 1, 2, 3}) {
		t.Errorf("lines = %v, want [0 1 2 3]", lines)
	}
}
