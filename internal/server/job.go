package server

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"codelayout/internal/core"
	"codelayout/internal/ir"
	"codelayout/internal/obs"
	"codelayout/internal/trace"
)

// Result is the completed output of one optimization job — what the
// content-addressed cache stores and `GET /v1/layouts/{digest}` serves.
type Result struct {
	// Digest is the content address: SHA-256 over the trace digest, the
	// optimizer name, and the request parameters.
	Digest string `json:"digest"`
	// TraceDigest is the SHA-256 of the uploaded trace bytes.
	TraceDigest string `json:"traceDigest"`
	Prog        string `json:"prog"`
	Optimizer   string `json:"optimizer"`
	// Report is the pipeline's transformation report, including the
	// optimized code-unit sequence.
	Report core.Report `json:"report"`
	// MissBefore/MissAfter are the simulated solo i-cache miss ratios of
	// the uploaded trace replayed through the original and the optimized
	// layout; MissReduction is the relative improvement.
	MissBefore    float64 `json:"missBefore"`
	MissAfter     float64 `json:"missAfter"`
	MissReduction float64 `json:"missReduction"`
	// ElapsedMS is the optimization wall time (0 for cache hits).
	ElapsedMS float64 `json:"elapsedMS"`
}

// Job states, in lifecycle order. For optimization jobs, Canceled is
// reachable only from Queued (via DELETE /v1/jobs/{id}); a running
// optimization is past the point of no return. Co-run and schedule jobs
// are additionally cancelable while running: DELETE moves them to
// Canceling (their context fires), and the worker finalizes to Canceled
// when the pipeline observes the cancellation.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCanceling = "canceling"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCanceled  = "canceled"
)

// Job kinds. The zero value is an optimization job, keeping the wire
// format of the original endpoint unchanged.
const (
	jobKindOptimize = ""
	jobKindCorun    = "corun"
	jobKindSchedule = "schedule"
)

// jobRequest carries everything a worker needs to run one job. The
// trace and program are fully validated at submission time, so a worker
// can only fail on pipeline errors, not on malformed input.
type jobRequest struct {
	prog        *ir.Program
	progName    string
	opt         core.Optimizer
	pruneTopN   int
	trace       *trace.Trace
	traceDigest string
	digest      string
	deadline    time.Time
	// ctx is the job's own lifetime context; DELETE /v1/jobs/{id}
	// cancels it so the pipeline stops even if the job slipped into
	// running between the status check and the cancel.
	ctx context.Context
}

// Job is one submission's mutable state. All fields behind mu except
// the observability handles (traceID, rec, logger), which are set once
// at creation and read-only after; the JSON view is built under the
// lock.
type Job struct {
	mu       sync.Mutex
	id       string
	kind     string // jobKindOptimize (zero), jobKindCorun, jobKindSchedule
	status   string
	cached   bool
	err      string
	result   *Result
	corun    *CorunDoc
	schedule *ScheduleDoc
	digest   string
	created  time.Time
	started  time.Time
	finished time.Time
	// cancel tears down the job's context (jobRequest.ctx); set for
	// every queued job, called by DELETE and by job completion.
	cancel func()

	// traceID correlates every log line, span, and debug summary the
	// job produces.
	traceID string
	// rec is the job's bounded span buffer, served at
	// GET /v1/jobs/{id}/trace.
	rec *obs.Recorder
	// logger is pre-bound with trace_id and job id.
	logger *slog.Logger
	// progName/optName feed the debug-ring summary.
	progName string
	optName  string
	// traceBytes is the upload size counted in layoutd_inflight_bytes
	// while the job is queued or running (0 for cache hits).
	traceBytes int64
}

// jobView is the wire representation of a job. Kind is empty for
// optimization jobs, so their wire format is unchanged; corun and
// schedule jobs carry their documents in dedicated fields.
type jobView struct {
	ID       string       `json:"id"`
	Kind     string       `json:"kind,omitempty"`
	Status   string       `json:"status"`
	Digest   string       `json:"digest"`
	TraceID  string       `json:"traceId,omitempty"`
	Cached   bool         `json:"cached"`
	Error    string       `json:"error,omitempty"`
	Result   *Result      `json:"result,omitempty"`
	Corun    *CorunDoc    `json:"corun,omitempty"`
	Schedule *ScheduleDoc `json:"schedule,omitempty"`
}

// setDigest publishes a content address learned after acceptance —
// streamed submissions only know their trace digest at end-of-stream.
func (j *Job) setDigest(d string) {
	j.mu.Lock()
	j.digest = d
	j.mu.Unlock()
}

// markCached flags a running job that resolved from the result cache
// (the streamed path's post-upload cache hit).
func (j *Job) markCached() {
	j.mu.Lock()
	j.cached = true
	j.mu.Unlock()
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:       j.id,
		Kind:     j.kind,
		Status:   j.status,
		Digest:   j.digest,
		TraceID:  j.traceID,
		Cached:   j.cached,
		Error:    j.err,
		Result:   j.result,
		Corun:    j.corun,
		Schedule: j.schedule,
	}
}

// spanView is one span in the wire timeline. Node names the cluster
// member that recorded the span; it is empty on a single node and
// filled in by the cross-node trace assembly (see fwdtrace.go).
type spanView struct {
	Name    string           `json:"name"`
	Node    string           `json:"node,omitempty"`
	StartMS float64          `json:"start_ms"`
	DurMS   float64          `json:"dur_ms"` // -1 while still in progress
	Attrs   map[string]int64 `json:"attrs,omitempty"`
}

// traceView is the wire representation of GET /v1/jobs/{id}/trace:
// the job's recorded span timeline, offsets relative to submission.
// BeginUnixNS anchors the timeline to wall time so a non-owner can
// merge its forward spans onto the owner's offsets; Nodes lists every
// cluster member contributing spans (empty single-node).
type traceView struct {
	JobID       string     `json:"job_id"`
	TraceID     string     `json:"trace_id"`
	Status      string     `json:"status"`
	BeginUnixNS int64      `json:"begin_unix_ns,omitempty"`
	Nodes       []string   `json:"nodes,omitempty"`
	Spans       []spanView `json:"spans"`
	Dropped     int64      `json:"dropped,omitempty"`
}

func (j *Job) traceTimeline() traceView {
	tv := traceView{
		JobID:   j.id,
		TraceID: j.traceID,
		Status:  j.statusNow(),
	}
	if j.rec == nil {
		return tv
	}
	tv.BeginUnixNS = j.rec.Begin().UnixNano()
	spans, dropped := j.rec.Snapshot()
	tv.Dropped = dropped
	tv.Spans = make([]spanView, len(spans))
	for i, sd := range spans {
		sv := spanView{
			Name:    sd.Name,
			StartMS: float64(sd.Start) / float64(time.Millisecond),
			DurMS:   float64(sd.Dur) / float64(time.Millisecond),
		}
		if sd.Dur < 0 {
			sv.DurMS = -1
		}
		if sd.NAttr > 0 {
			sv.Attrs = make(map[string]int64, sd.NAttr)
			for a := 0; a < sd.NAttr; a++ {
				sv.Attrs[sd.Attrs[a].Key] = sd.Attrs[a].Value
			}
		}
		tv.Spans[i] = sv
	}
	return tv
}

// tryStart moves a queued job to running; it reports false when the
// job was canceled while waiting in the pool queue, in which case the
// worker must skip it.
func (j *Job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now()
	return true
}

// cancelQueued moves a queued job to canceled and fires its context.
// It reports false — without changing anything — when the job already
// started or finished (the DELETE handler's 409).
func (j *Job) cancelQueued(now time.Time) bool {
	j.mu.Lock()
	if j.status != StatusQueued {
		j.mu.Unlock()
		return false
	}
	j.status = StatusCanceled
	j.err = "canceled before running"
	j.finished = now
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// cancelRunning moves a running cancelable job to canceling and fires
// its context; the worker observes the cancellation in its pipeline and
// finalizes to canceled. It reports false when the job is not running.
func (j *Job) cancelRunning() bool {
	j.mu.Lock()
	if j.status != StatusRunning {
		j.mu.Unlock()
		return false
	}
	j.status = StatusCanceling
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// finalizeCanceled completes a canceling job's teardown: the worker
// calls it after the pipeline unwound from the fired context.
func (j *Job) finalizeCanceled() {
	j.mu.Lock()
	j.status = StatusCanceled
	j.err = "canceled while running"
	j.finished = time.Now()
	j.mu.Unlock()
}

// statusNow returns the current status string.
func (j *Job) statusNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *Job) complete(r *Result) {
	j.mu.Lock()
	j.status = StatusDone
	j.result = r
	j.finished = time.Now()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel() // release the job context's resources
	}
}

func (j *Job) completeCorun(doc *CorunDoc) {
	j.mu.Lock()
	j.status = StatusDone
	j.corun = doc
	j.finished = time.Now()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (j *Job) completeSchedule(doc *ScheduleDoc) {
	j.mu.Lock()
	j.status = StatusDone
	j.schedule = doc
	j.finished = time.Now()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	j.status = StatusFailed
	j.err = err.Error()
	j.finished = time.Now()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// done reports whether the job reached a terminal state.
func (j *Job) done() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled
}

// terminal returns the completion time of a done, failed, or canceled
// job; ok is false while the job is still queued or running.
func (j *Job) terminal() (fin time.Time, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed || j.status == StatusCanceled {
		return j.finished, true
	}
	return time.Time{}, false
}
