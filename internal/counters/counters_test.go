package counters

import (
	"testing"

	"codelayout/internal/cachesim"
	"codelayout/internal/cpu"
)

func sampleThread() cpu.ThreadResult {
	return cpu.ThreadResult{
		Cycles:           2000,
		Instrs:           1000,
		FetchStallCycles: 300,
		DataStallCycles:  200,
		L1I:              cachesim.Stats{Accesses: 400, Misses: 20},
		L2:               cachesim.Stats{Accesses: 20, Misses: 5},
	}
}

func TestFromThreadEvents(t *testing.T) {
	s := FromThread(sampleThread())
	cases := map[string]int64{
		TotIns: 1000,
		TotCyc: 2000,
		L1ICA:  400,
		L1ICM:  20,
		L2ICA:  20,
		L2ICM:  5,
		StlIcy: 500,
	}
	for ev, want := range cases {
		got, err := s.Read(ev)
		if err != nil {
			t.Errorf("Read(%s): %v", ev, err)
			continue
		}
		if got != want {
			t.Errorf("Read(%s) = %d, want %d", ev, got, want)
		}
		if s.MustRead(ev) != want {
			t.Errorf("MustRead(%s) mismatch", ev)
		}
	}
}

func TestUnknownEvent(t *testing.T) {
	s := FromThread(sampleThread())
	if _, err := s.Read("PAPI_NO_SUCH"); err == nil {
		t.Error("unknown event accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustRead did not panic on unknown event")
		}
	}()
	s.MustRead("PAPI_NO_SUCH")
}

func TestDerivedMetrics(t *testing.T) {
	s := FromThread(sampleThread())
	if got, want := s.ICacheMissRatio(), 0.05; got != want {
		t.Errorf("ICacheMissRatio = %v, want %v", got, want)
	}
	if got, want := s.CPI(), 2.0; got != want {
		t.Errorf("CPI = %v, want %v", got, want)
	}
	idle := FromThread(cpu.ThreadResult{})
	if idle.ICacheMissRatio() != 0 || idle.CPI() != 0 {
		t.Error("idle thread metrics should be 0")
	}
}
