package trg

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/trace"
)

func feedGraph(t *testing.T, tr *trace.Trace, windowBlocks, workers, span, chunk int, arena *Arena) *Graph {
	t.Helper()
	f := NewFeeder(context.Background(), windowBlocks, workers, span, arena)
	syms := tr.Syms
	for len(syms) > 0 {
		c := chunk
		if c > len(syms) {
			c = len(syms)
		}
		if err := f.Feed(syms[:c]); err != nil {
			t.Fatal(err)
		}
		syms = syms[c:]
	}
	g, err := f.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func phasedTrace(rng *rand.Rand, n, phaseLen, alpha int) *trace.Trace {
	syms := make([]int32, n)
	for i := range syms {
		phase := (i / phaseLen) % 8
		if rng.Float64() < 0.1 && phase > 0 {
			phase--
		}
		syms[i] = int32(phase*alpha + rng.Intn(alpha))
	}
	return trace.New(syms)
}

// TestFeederMatchesBuffered is the streamed-vs-buffered oracle for the
// TRG construction: feeding a trace chunk by chunk, across shard spans
// small enough to force many arrival-cut shards, must yield the same
// node order, edge set, and reduced sequence as the buffered build, at
// Workers=1 and Workers=N.
func TestFeederMatchesBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	traces := []*trace.Trace{
		phasedTrace(rng, 3000, 400, 10),
		phasedTrace(rng, 997, 100, 5),
		trace.New(func() []int32 {
			s := make([]int32, 1500)
			for i := range s {
				s[i] = int32(rng.Intn(9))
			}
			return s
		}()),
		trace.New([]int32{3}),
		trace.New(nil),
	}
	arena := &Arena{}
	for ti, tr := range traces {
		for _, window := range []int{2, 8, 64} {
			buffered := BuildWorkers(tr, window, 1)
			for _, workers := range []int{1, 4} {
				for _, span := range []int{150, 1 << 20} {
					for _, chunk := range []int{1, 37, 1024} {
						g := feedGraph(t, tr, window, workers, span, chunk, arena)
						if !reflect.DeepEqual(g.Nodes(), buffered.Nodes()) &&
							!(len(g.Nodes()) == 0 && len(buffered.Nodes()) == 0) {
							t.Fatalf("trace %d window=%d workers=%d span=%d chunk=%d: node order differs",
								ti, window, workers, span, chunk)
						}
						if !reflect.DeepEqual(g.Edges(), buffered.Edges()) {
							t.Fatalf("trace %d window=%d workers=%d span=%d chunk=%d: edges differ",
								ti, window, workers, span, chunk)
						}
						if !reflect.DeepEqual(Reduce(g, 16), Reduce(buffered, 16)) {
							t.Fatalf("trace %d window=%d workers=%d span=%d chunk=%d: reduced sequence differs",
								ti, window, workers, span, chunk)
						}
						arena.PutGraph(g)
					}
				}
			}
		}
	}
}

// TestFeederUnboundedWindowDegrades: windowBlocks <= 0 cannot stream (the
// warm span is the whole history); the feeder must still produce the
// buffered result by deferring the single shard to Finish.
func TestFeederUnboundedWindowDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := phasedTrace(rng, 800, 100, 6)
	buffered := BuildWorkers(tr, 0, 1)
	g := feedGraph(t, tr, 0, 4, 64, 100, nil)
	if !reflect.DeepEqual(g.Edges(), buffered.Edges()) {
		t.Fatal("unbounded-window feeder differs from buffered build")
	}
	if !reflect.DeepEqual(g.Nodes(), buffered.Nodes()) {
		t.Fatal("unbounded-window feeder node order differs from buffered build")
	}
}

// TestFeederUntrimmedInput: trimming happens across chunk boundaries,
// matching the buffered path's up-front Trimmed().
func TestFeederUntrimmedInput(t *testing.T) {
	syms := []int32{4, 4, 4, 1, 1, 2, 2, 2, 2, 1, 4, 4}
	tr := trace.New(syms)
	buffered := BuildWorkers(tr, 3, 1)
	for chunk := 1; chunk <= len(syms); chunk++ {
		g := feedGraph(t, tr, 3, 2, 2, chunk, nil)
		if !reflect.DeepEqual(g.Edges(), buffered.Edges()) {
			t.Fatalf("chunk=%d: untrimmed streamed graph differs", chunk)
		}
	}
}

// TestFeederCancellation: canceling the feeder's context surfaces an
// error instead of wedging.
func TestFeederCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	f := NewFeeder(ctx, 8, 4, 64, nil)
	cancel()
	chunk := make([]int32, 4096)
	for i := range chunk {
		chunk[i] = int32(i % 100)
	}
	var err error
	for i := 0; i < 64 && err == nil; i++ {
		err = f.Feed(chunk)
	}
	if err == nil {
		_, err = f.Finish(context.Background())
	}
	if err == nil {
		t.Fatal("canceled feeder reported no error")
	}
	f.Abort()
}
