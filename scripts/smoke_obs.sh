#!/bin/sh
# smoke_obs.sh — observability-plane smoke test across a 3-node cluster,
# run by `make smoke-obs` and the CI obs-smoke job:
#
#   1. build layoutd/layoutctl/tracedump and start a 3-node cluster,
#   2. submit a trace to n1 to learn the rendezvous owner from the
#      node-prefixed job ID,
#   3. resubmit through a NON-owner with an injected W3C traceparent
#      header and require end-to-end propagation: the job adopts the
#      caller's 32-hex trace ID, and `layoutctl -trace` against the
#      non-owner renders ONE merged waterfall with per-node lanes for
#      both the forwarding node and the owner,
#   4. require `layoutctl -top` to pass (it hard-fails unless
#      /v1/cluster/metrics lints clean) and to list all three nodes;
#      spot-check the federation header and node labels in the raw
#      exposition,
#   5. probe every endpoint with `layoutctl -health -cluster`,
#   6. SIGKILL n3 and require a survivor's /v1/debug/events ring to
#      record peer_down; restart n3 and require peer_up,
#   7. require /v1/debug/runtime to serve runtime-telemetry samples.
#
# Set SMOKE_WORK to redirect the scratch dir somewhere that survives the
# run (CI points it at a directory uploaded as an artifact on failure);
# without it a mktemp dir is used and removed.
set -eu

if [ -n "${SMOKE_WORK:-}" ]; then
    WORK=$SMOKE_WORK
    mkdir -p "$WORK"
    KEEP_WORK=1
else
    WORK=$(mktemp -d)
    KEEP_WORK=0
fi
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill -9 "$pid" 2>/dev/null || true
    done
    [ "$KEEP_WORK" = 1 ] || rm -rf "$WORK"
}
trap cleanup EXIT

PROG=458.sjeng
OPT=func-affinity
# The caller's trace ID: every span in the merged waterfall must live
# under it.
TID=4bf92f3577b34da6a3ce929d0e0e4736

echo "smoke-obs: building binaries"
go build -o "$WORK/layoutd" ./cmd/layoutd
go build -o "$WORK/layoutctl" ./cmd/layoutctl
go build -o "$WORK/tracedump" ./cmd/tracedump

echo "smoke-obs: recording a $PROG trace"
"$WORK/tracedump" -prog "$PROG" -record "$WORK/t" -gran bb

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# POST a trace body with a traceparent header; layoutctl has no flag for
# injecting caller trace context, which is the point of this check.
post_traced() {
    # $1 = URL, $2 = body file, $3 = traceparent value
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -X POST -H "traceparent: $3" \
            -H "Content-Type: application/octet-stream" \
            --data-binary "@$2" "$1"
    else
        wget -qO- --header="traceparent: $3" \
            --header="Content-Type: application/octet-stream" \
            --post-file="$2" "$1"
    fi
}

# Static membership needs URLs up front, so ports are picked from a
# PID-salted base instead of :0 + ready-file.
BASE=$((22000 + $$ % 20000))
P1=$BASE
P2=$((BASE + 1))
P3=$((BASE + 2))
A1="http://127.0.0.1:$P1"
A2="http://127.0.0.1:$P2"
A3="http://127.0.0.1:$P3"
PEERS="n1=$A1,n2=$A2,n3=$A3"

start_node() {
    # $1 = node ID, $2 = port
    "$WORK/layoutd" -addr "127.0.0.1:$2" -jobs 2 -queue 8 \
        -node-id "$1" -peers "$PEERS" -replicas 2 -health-interval 250ms \
        -runtime-sample 500ms \
        -store-dir "$WORK/store-$1" >>"$WORK/$1.log" 2>&1 &
    eval "PID_$1=$!"
    PIDS="$PIDS $!"
}

start_node n1 "$P1"
start_node n2 "$P2"
start_node n3 "$P3"
echo "smoke-obs: nodes n1=$A1 n2=$A2 n3=$A3"

wait_healthy() {
    # $1 = node addr, $2 = node ID
    i=0
    while ! fetch "$1/healthz" 2>/dev/null | grep -q '"status": "ok"'; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-obs: $2 never became healthy" >&2
            cat "$WORK/$2.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_healthy "$A1" n1
wait_healthy "$A2" n2
wait_healthy "$A3" n3

# Each node must see both peers up before writes, or the first health
# poll racing the listeners could suppress forwards and replication.
wait_converged() {
    # $1 = node addr, $2 = node ID
    i=0
    while [ "$(fetch "$1/metrics" | grep -c '^layoutd_peer_health{peer="n[0-9]*"} 2$')" != 2 ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-obs: $2 never saw both peers up" >&2
            fetch "$1/metrics" | grep '^layoutd_peer_health' >&2 || true
            exit 1
        fi
        sleep 0.1
    done
}
wait_converged "$A1" n1
wait_converged "$A2" n2
wait_converged "$A3" n3

echo "smoke-obs: submitting job to n1 to learn the owner"
"$WORK/layoutctl" -addr "$A1" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result1.json"
grep -q '"status": "done"' "$WORK/result1.json"
OWNER=$(grep -o '"id": "n[0-9]*\.' "$WORK/result1.json" | head -1 | cut -d'"' -f4 | cut -d. -f1)
[ -n "$OWNER" ] || { echo "smoke-obs: job ID is not node-prefixed" >&2; exit 1; }
if [ "$OWNER" = n1 ]; then NONOWNER=n2 NONOWNER_ADDR=$A2; else NONOWNER=n1 NONOWNER_ADDR=$A1; fi
echo "smoke-obs: owner is $OWNER; resubmitting via $NONOWNER with traceparent 00-$TID-..."

post_traced "$NONOWNER_ADDR/v1/jobs?prog=$PROG&opt=$OPT" "$WORK/t.trace" \
    "00-$TID-00f067aa0ba902b7-01" >"$WORK/result2.json"
# The job — created on the owner, answered through the non-owner —
# must carry the caller's trace ID, not a fresh one.
grep -q "\"traceId\": \"$TID\"" "$WORK/result2.json" || {
    echo "smoke-obs: forwarded job did not adopt the caller's trace ID" >&2
    cat "$WORK/result2.json" >&2
    exit 1
}
JOB=$(grep -o '"id": "n[0-9]*\.job-[0-9]*"' "$WORK/result2.json" | head -1 | cut -d'"' -f4)
[ -n "$JOB" ] || { echo "smoke-obs: no job ID in forwarded response" >&2; exit 1; }
case $JOB in
"$OWNER".*) ;;
*) echo "smoke-obs: forwarded job $JOB is not owned by $OWNER" >&2; exit 1 ;;
esac

echo "smoke-obs: fetching the merged waterfall for $JOB from $NONOWNER"
"$WORK/layoutctl" -addr "$NONOWNER_ADDR" -trace "$JOB" >"$WORK/waterfall.txt"
cat "$WORK/waterfall.txt"
# One merged document: the caller's trace ID in the title, both nodes in
# the "across" list, the owner's pipeline spans in the owner's lane, and
# the forwarding hop in the non-owner's lane.
grep -q "trace $TID" "$WORK/waterfall.txt" || {
    echo "smoke-obs: waterfall is not under the caller's trace ID" >&2
    exit 1
}
grep -q "across" "$WORK/waterfall.txt"
grep -q "\[$OWNER\]" "$WORK/waterfall.txt" || {
    echo "smoke-obs: waterfall has no lane for owner $OWNER" >&2
    exit 1
}
grep -q "\[$NONOWNER\] peer.forward" "$WORK/waterfall.txt" || {
    echo "smoke-obs: waterfall has no peer.forward lane for $NONOWNER" >&2
    exit 1
}

echo "smoke-obs: federated metrics via layoutctl -top (lints the exposition)"
"$WORK/layoutctl" -addr "$A1" -top >"$WORK/top.txt"
cat "$WORK/top.txt"
for id in n1 n2 n3; do
    grep -q "^$id " "$WORK/top.txt" || {
        echo "smoke-obs: -top is missing a row for $id" >&2
        exit 1
    }
done
grep -q 'exposition lint-clean' "$WORK/top.txt"
fetch "$A2/v1/cluster/metrics" >"$WORK/federated.txt"
grep -q '^# federation: layoutd cluster metrics, 3/3 nodes' "$WORK/federated.txt" || {
    echo "smoke-obs: federation header does not report 3/3 nodes" >&2
    head -5 "$WORK/federated.txt" >&2
    exit 1
}
grep -q '^layoutd_jobs_completed_total{node="n3"}' "$WORK/federated.txt"

echo "smoke-obs: cluster health table must cover every endpoint"
"$WORK/layoutctl" -health -cluster "$A1,$A2,$A3" >"$WORK/health.txt"
cat "$WORK/health.txt"
for id in n1 n2 n3; do
    grep -q " $id " "$WORK/health.txt" || {
        echo "smoke-obs: -health -cluster is missing $id" >&2
        exit 1
    }
done
grep -q '^3/3 endpoints live' "$WORK/health.txt"

echo "smoke-obs: runtime telemetry must be sampling"
fetch "$A1/v1/debug/runtime" >"$WORK/runtime.json"
grep -q '"heap_bytes": [1-9]' "$WORK/runtime.json" || {
    echo "smoke-obs: /v1/debug/runtime has no heap sample" >&2
    cat "$WORK/runtime.json" >&2
    exit 1
}
grep -q '"goroutines": [1-9]' "$WORK/runtime.json"

echo "smoke-obs: SIGKILL n3; a survivor's event ring must record peer_down"
eval "kill -9 \$PID_n3"
i=0
while ! fetch "$A1/v1/debug/events" | grep -q '"kind": "peer_down"'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-obs: n1 never recorded peer_down for n3" >&2
        fetch "$A1/v1/debug/events" >&2 || true
        exit 1
    fi
    sleep 0.1
done
fetch "$A1/v1/debug/events" | grep -q '"node": "n3"'

echo "smoke-obs: restarting n3; the event ring must record peer_up"
start_node n3 "$P3"
wait_healthy "$A3" n3
i=0
while ! fetch "$A1/v1/debug/events" | grep -q '"kind": "peer_up"'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-obs: n1 never recorded peer_up after n3 restarted" >&2
        fetch "$A1/v1/debug/events" >&2 || true
        exit 1
    fi
    sleep 0.1
done
fetch "$A1/metrics" | grep -q '^layoutd_events_total{kind="peer_down"} [1-9]' || {
    echo "smoke-obs: layoutd_events_total{kind=peer_down} not incremented" >&2
    exit 1
}

echo "smoke-obs: draining nodes"
for id in n1 n2 n3; do
    eval "pid=\$PID_$id"
    kill -TERM "$pid"
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-obs: $id did not exit after SIGTERM" >&2
            cat "$WORK/$id.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    wait "$pid" 2>/dev/null || true
    grep -q 'drained cleanly' "$WORK/$id.log"
done
PIDS=""

echo "smoke-obs: OK"
