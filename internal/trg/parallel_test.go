package trg

import (
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/trace"
)

// TestBuildWorkersDeterministic: the sharded concurrent TRG construction
// must produce a graph identical to the serial one — same node order
// (global first occurrence), same edge weights, and therefore the same
// sorted edge list and reduction output.
func TestBuildWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(20140814))
	mkTrace := func(n, alpha int) *trace.Trace {
		syms := make([]int32, n)
		for i := range syms {
			phase := (i / 400) % 4
			syms[i] = int32(phase*alpha/2 + rng.Intn(alpha))
		}
		return trace.New(syms)
	}
	traces := []*trace.Trace{
		mkTrace(3000, 16),
		mkTrace(1013, 7), // prime length: uneven shards
		trace.New([]int32{0, 1, 0, 1, 2, 0}),
		trace.New([]int32{5}),
		trace.New(nil),
	}
	for ti, tr := range traces {
		for _, window := range []int{0, 2, 8, 64} {
			serial := BuildWorkers(tr, window, 1)
			for _, workers := range []int{2, 3, 8} {
				par := BuildWorkers(tr, window, workers)
				if !reflect.DeepEqual(par.Nodes(), serial.Nodes()) {
					t.Fatalf("trace %d window=%d workers=%d: node order differs", ti, window, workers)
				}
				if !reflect.DeepEqual(par.Edges(), serial.Edges()) {
					t.Fatalf("trace %d window=%d workers=%d: edges differ", ti, window, workers)
				}
				if len(serial.Nodes()) > 0 {
					slots := 1 + len(serial.Nodes())/2
					if !reflect.DeepEqual(Reduce(par, slots), Reduce(serial, slots)) {
						t.Fatalf("trace %d window=%d workers=%d: reduction differs", ti, window, workers)
					}
				}
			}
		}
	}
}

// TestSequenceWorkersDeterministic checks the full §II-C pipeline
// (build + reduce) through the Params.Workers knob.
func TestSequenceWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	syms := make([]int32, 2500)
	for i := range syms {
		syms[i] = int32(rng.Intn(20))
	}
	tr := trace.New(syms)
	p := DefaultParams(512)
	p.Workers = 1
	serial := Sequence(tr, p)
	for _, workers := range []int{2, 8} {
		p.Workers = workers
		if got := Sequence(tr, p); !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d: sequence %v != serial %v", workers, got, serial)
		}
	}
}
