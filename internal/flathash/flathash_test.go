package flathash

import (
	"math/rand"
	"testing"
)

// pairKey mirrors the packing the analysis kernels use: two distinct
// int32 symbols, smaller first, never producing key 0.
func pairKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(int32(b))&0xffffffff
}

func TestSum64MatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tab Sum64
	ref := make(map[int64]int64)
	for i := 0; i < 20000; i++ {
		a, b := int32(rng.Intn(200)), int32(rng.Intn(200))
		if a == b {
			b = a + 1
		}
		k := pairKey(a, b)
		d := int64(rng.Intn(5) + 1)
		tab.Add(k, d)
		ref[k] += d
	}
	if tab.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(ref))
	}
	for k, v := range ref {
		if got := tab.Get(k); got != v {
			t.Fatalf("Get(%d) = %d, want %d", k, got, v)
		}
	}
	if got := tab.Get(pairKey(500, 501)); got != 0 {
		t.Fatalf("absent key = %d, want 0", got)
	}
	seen := 0
	tab.ForEach(func(k, v int64) {
		if ref[k] != v {
			t.Fatalf("ForEach(%d) = %d, want %d", k, v, ref[k])
		}
		seen++
	})
	if seen != len(ref) {
		t.Fatalf("ForEach visited %d keys, want %d", seen, len(ref))
	}
}

func TestSum64Reset(t *testing.T) {
	var tab Sum64
	tab.Add(pairKey(1, 2), 7)
	tab.Reset()
	if tab.Len() != 0 || tab.Get(pairKey(1, 2)) != 0 {
		t.Fatal("Reset did not clear the table")
	}
	tab.Add(pairKey(1, 2), 3)
	if got := tab.Get(pairKey(1, 2)); got != 3 {
		t.Fatalf("post-reset Get = %d, want 3", got)
	}
}

func TestSlab32MatchesMap(t *testing.T) {
	const stride = 6
	rng := rand.New(rand.NewSource(2))
	var tab Slab32
	tab.Init(stride)
	ref := make(map[int64][]uint32)
	for i := 0; i < 20000; i++ {
		a, b := int32(rng.Intn(150)), int32(rng.Intn(150))
		if a == b {
			b = a + 1
		}
		k := pairKey(a, b)
		d := rng.Intn(stride)
		tab.Counters(k)[d]++
		if ref[k] == nil {
			ref[k] = make([]uint32, stride)
		}
		ref[k][d]++
	}
	if tab.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(ref))
	}
	for k, want := range ref {
		got := tab.Lookup(k)
		if got == nil {
			t.Fatalf("Lookup(%d) = nil", k)
		}
		for d := range want {
			if got[d] != want[d] {
				t.Fatalf("counters(%d)[%d] = %d, want %d", k, d, got[d], want[d])
			}
		}
	}
	if tab.Lookup(pairKey(300, 301)) != nil {
		t.Fatal("Lookup of absent key returned a block")
	}
}

func TestSlab32MergeFrom(t *testing.T) {
	const stride = 4
	var a, b Slab32
	a.Init(stride)
	b.Init(stride)
	a.Counters(pairKey(1, 2))[0] = 5
	a.Counters(pairKey(1, 3))[1] = 1
	b.Counters(pairKey(1, 2))[0] = 2
	b.Counters(pairKey(1, 2))[3] = 9
	b.Counters(pairKey(4, 5))[2] = 7
	a.MergeFrom(&b)
	if got := a.Lookup(pairKey(1, 2)); got[0] != 7 || got[3] != 9 {
		t.Fatalf("merged (1,2) = %v", got)
	}
	if got := a.Lookup(pairKey(1, 3)); got[1] != 1 {
		t.Fatalf("merged (1,3) = %v", got)
	}
	if got := a.Lookup(pairKey(4, 5)); got[2] != 7 {
		t.Fatalf("merged (4,5) = %v", got)
	}
	if a.Len() != 3 {
		t.Fatalf("merged Len = %d, want 3", a.Len())
	}
}

func TestSlab32InitReuse(t *testing.T) {
	var tab Slab32
	tab.Init(3)
	tab.Counters(pairKey(1, 2))[2] = 42
	tab.Init(3)
	if tab.Len() != 0 {
		t.Fatal("Init did not clear the table")
	}
	// The reused slab must come back zeroed.
	if got := tab.Counters(pairKey(1, 2)); got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Fatalf("reused slab not zeroed: %v", got)
	}
}

// TestSlab32SteadyStateAllocs: after warm-up, re-accumulating into an
// Init-cleared table allocates nothing.
func TestSlab32SteadyStateAllocs(t *testing.T) {
	var tab Slab32
	fill := func() {
		tab.Init(8)
		for a := int32(0); a < 64; a++ {
			for b := a + 1; b < 64; b += 3 {
				tab.Counters(pairKey(a, b))[int(b)%8]++
			}
		}
	}
	fill() // warm up capacity
	allocs := testing.AllocsPerRun(10, fill)
	if allocs != 0 {
		t.Fatalf("steady-state fill allocated %.1f times per run, want 0", allocs)
	}
}
