// Command layoutd serves the layout-optimization pipeline over HTTP:
// clients stream CLTR traces to it, it queues optimization jobs on a
// bounded worker pool, caches results by content address, and exposes
// plain-text metrics. See internal/server for the API surface and
// cmd/layoutctl for a client.
//
// Usage:
//
//	layoutd -addr 127.0.0.1:8080 -jobs 4 -queue 64
//	layoutd -addr 127.0.0.1:0 -ready-file /tmp/layoutd.addr
//
// On SIGTERM/SIGINT the daemon stops accepting work and drains queued
// and in-flight jobs, bounded by -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"codelayout/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layoutd: ")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	jobs := flag.Int("jobs", 0, "concurrent optimization jobs: 0 = all cores")
	queue := flag.Int("queue", server.DefaultQueueDepth, "queued-job limit before submissions get 429")
	optWorkers := flag.Int("opt-workers", 1, "analysis concurrency inside one job: 0 = all cores")
	jobTimeout := flag.Duration("job-timeout", server.DefaultJobTimeout, "per-job deadline, queue wait included")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on draining in-flight jobs at shutdown")
	maxTrace := flag.Int64("max-trace-bytes", server.DefaultMaxTraceBytes, "upload size cap")
	jobTTL := flag.Duration("job-ttl", server.DefaultJobTTL, "retention of completed-job status records")
	maxJobs := flag.Int("max-jobs", server.DefaultMaxJobs, "tracked-job cap; oldest completed jobs evicted first")
	readyFile := flag.String("ready-file", "", "write the bound address to this file once listening")
	flag.Parse()

	if err := run(*addr, *readyFile, *drainTimeout, server.Config{
		JobWorkers:    *jobs,
		QueueDepth:    *queue,
		JobTimeout:    *jobTimeout,
		OptWorkers:    *optWorkers,
		MaxTraceBytes: *maxTrace,
		JobTTL:        *jobTTL,
		MaxJobs:       *maxJobs,
	}); err != nil {
		log.Fatal(err)
	}
}

func run(addr, readyFile string, drainTimeout time.Duration, cfg server.Config) error {
	s := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("listening on %s", ln.Addr())
	if readyFile != "" {
		if err := os.WriteFile(readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	log.Printf("signal received; draining (bound %s)", drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := s.Shutdown(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	} else {
		log.Printf("drained cleanly")
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
