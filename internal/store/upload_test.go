package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"codelayout/internal/fault"
)

// failAfter yields n bytes of payload then fails — a client that
// disconnected mid-PATCH.
type failAfter struct {
	r io.Reader
}

func (f *failAfter) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if err == io.EOF {
		return n, errors.New("connection reset")
	}
	return n, err
}

func newUploadsT(t *testing.T) *Uploads {
	t.Helper()
	u, err := NewUploads(filepath.Join(t.TempDir(), "uploads"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestUploadAppendAndSeal: the happy path — chunked appends accumulate
// at the reported offsets and Seal hands back exactly the concatenated
// bytes.
func TestUploadAppendAndSeal(t *testing.T) {
	u := newUploadsT(t)
	up, err := u.Create()
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 {
		t.Fatalf("sessions = %d, want 1", u.Len())
	}
	payload := bytes.Repeat([]byte("chunked-trace-bytes."), 50)
	var off int64
	for len(payload) > int(off) {
		end := off + 128
		if end > int64(len(payload)) {
			end = int64(len(payload))
		}
		next, resumed, err := up.Append(off, bytes.NewReader(payload[off:end]))
		if err != nil {
			t.Fatal(err)
		}
		if resumed {
			t.Fatal("clean append reported as resume")
		}
		if next != end {
			t.Fatalf("offset after append = %d, want %d", next, end)
		}
		off = next
	}
	path, size, err := u.Seal(up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Fatalf("sealed size = %d, want %d", size, len(payload))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("sealed bytes differ from appended bytes")
	}
	if u.Len() != 0 {
		t.Fatalf("sessions after seal = %d, want 0", u.Len())
	}
	if _, ok := u.Get(up.ID); ok {
		t.Fatal("sealed session still resolvable")
	}
}

// TestUploadOffsetMismatch: a PATCH at the wrong offset is rejected
// with the durable offset, and changes nothing.
func TestUploadOffsetMismatch(t *testing.T) {
	u := newUploadsT(t)
	up, _ := u.Create()
	if _, _, err := up.Append(0, strings.NewReader("abcd")); err != nil {
		t.Fatal(err)
	}
	cur, _, err := up.Append(2, strings.NewReader("xy"))
	if !errors.Is(err, ErrOffsetMismatch) {
		t.Fatalf("err = %v, want ErrOffsetMismatch", err)
	}
	if cur != 4 {
		t.Fatalf("reported offset = %d, want 4", cur)
	}
	if up.Offset() != 4 {
		t.Fatalf("offset after rejected append = %d, want 4", up.Offset())
	}
}

// TestUploadInterruptedAppendRollsBack: a client disconnect mid-body
// rolls the spool back to the prior offset; the retry from that offset
// succeeds, is flagged as a resume, and the final bytes are exactly the
// logical stream — no duplicated or torn range.
func TestUploadInterruptedAppendRollsBack(t *testing.T) {
	u := newUploadsT(t)
	up, _ := u.Create()
	if _, _, err := up.Append(0, strings.NewReader("hello ")); err != nil {
		t.Fatal(err)
	}
	cur, _, err := up.Append(6, &failAfter{strings.NewReader("wor")})
	if err == nil {
		t.Fatal("interrupted append succeeded")
	}
	if cur != 6 {
		t.Fatalf("offset after interruption = %d, want 6 (rolled back)", cur)
	}
	next, resumed, err := up.Append(6, strings.NewReader("world"))
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("recovery append not flagged as resume")
	}
	if next != 11 {
		t.Fatalf("offset after resume = %d, want 11", next)
	}
	path, size, err := u.Seal(up.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if size != 11 || string(got) != "hello world" {
		t.Fatalf("sealed %d bytes %q, want 11 %q", size, got, "hello world")
	}
}

// TestUploadSizeBound: an append crossing the per-upload bound is
// rejected whole.
func TestUploadSizeBound(t *testing.T) {
	u, err := NewUploads(filepath.Join(t.TempDir(), "uploads"), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	up, _ := u.Create()
	if _, _, err := up.Append(0, strings.NewReader("12345678")); err != nil {
		t.Fatalf("append at the bound: %v", err)
	}
	cur, _, err := up.Append(8, strings.NewReader("9"))
	if !errors.Is(err, ErrUploadTooLarge) {
		t.Fatalf("err = %v, want ErrUploadTooLarge", err)
	}
	if cur != 8 {
		t.Fatalf("offset after oversize append = %d, want 8", cur)
	}
}

// TestUploadSessionBound: Create past the session cap is refused until
// a slot frees.
func TestUploadSessionBound(t *testing.T) {
	u, err := NewUploads(filepath.Join(t.TempDir(), "uploads"), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := u.Create()
	if _, err := u.Create(); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Create(); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("err = %v, want ErrTooManySessions", err)
	}
	if !u.Discard(a.ID) {
		t.Fatal("discard of live session failed")
	}
	if _, err := u.Create(); err != nil {
		t.Fatalf("create after discard: %v", err)
	}
}

// TestUploadSealedRejectsAppend: finalized and discarded sessions
// refuse further appends.
func TestUploadSealedRejectsAppend(t *testing.T) {
	u := newUploadsT(t)
	up, _ := u.Create()
	path, _, err := u.Seal(up.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(path)
	if _, _, err := up.Append(0, strings.NewReader("x")); !errors.Is(err, ErrUploadSealed) {
		t.Fatalf("err = %v, want ErrUploadSealed", err)
	}
}

// TestUploadsRecoverAcrossRestart: a session abandoned by a dead
// process (open spool + metadata, never sealed) is adopted by the next
// process at the offset the dead one last acknowledged, and the client
// finishes the upload to the exact logical bytes.
func TestUploadsRecoverAcrossRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "uploads")
	u1, err := NewUploads(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	up1, err := u1.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := up1.Append(0, strings.NewReader("hello ")); err != nil {
		t.Fatal(err)
	}
	// SIGKILL: u1 is abandoned without Seal/Discard/Close.

	u2, err := NewUploads(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u2.Recovered() != 1 || u2.Len() != 1 {
		t.Fatalf("recovered = %d sessions = %d, want 1 and 1", u2.Recovered(), u2.Len())
	}
	up2, ok := u2.Get(up1.ID)
	if !ok {
		t.Fatalf("session %s not recovered", up1.ID)
	}
	if !up2.Recovered {
		t.Fatal("recovered session not flagged Recovered")
	}
	if up2.Offset() != 6 {
		t.Fatalf("recovered offset = %d, want 6", up2.Offset())
	}
	// The 409 resync path: a client that lost track appends at a stale
	// offset, learns the durable one, and converges.
	cur, _, err := up2.Append(0, strings.NewReader("hello "))
	if !errors.Is(err, ErrOffsetMismatch) {
		t.Fatalf("stale append err = %v, want ErrOffsetMismatch", err)
	}
	if cur != 6 {
		t.Fatalf("resync offset = %d, want 6", cur)
	}
	if _, _, err := up2.Append(6, strings.NewReader("world")); err != nil {
		t.Fatal(err)
	}
	path, size, err := u2.Seal(up1.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if size != 11 || string(got) != "hello world" {
		t.Fatalf("sealed %d bytes %q, want 11 %q", size, got, "hello world")
	}
	if _, err := os.Stat(filepath.Join(dir, up1.ID+sessSuffix)); !os.IsNotExist(err) {
		t.Fatal("session metadata survived seal")
	}
}

// TestUploadsRecoverTruncatesUnacknowledgedTail: bytes fsynced to the
// spool but never recorded in the metadata (a crash between the spool
// sync and the metadata persist) are dropped at recovery — the offset a
// client resumes from is exactly what it was last told.
func TestUploadsRecoverTruncatesUnacknowledgedTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "uploads")
	u1, err := NewUploads(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	up1, _ := u1.Create()
	if _, _, err := up1.Append(0, strings.NewReader("durable")); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window: extra spool bytes beyond the recorded
	// offset.
	f, err := os.OpenFile(filepath.Join(dir, up1.ID+partSuffix), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("torn-tail"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	u2, err := NewUploads(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	up2, ok := u2.Get(up1.ID)
	if !ok {
		t.Fatal("session not recovered")
	}
	if up2.Offset() != 7 {
		t.Fatalf("recovered offset = %d, want 7", up2.Offset())
	}
	fi, err := os.Stat(filepath.Join(dir, up1.ID+partSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 7 {
		t.Fatalf("spool size after recovery = %d, want 7 (tail truncated)", fi.Size())
	}
}

// TestUploadsStartupQuarantine: the startup scan quarantines what it
// cannot prove — spools without metadata, metadata without spools,
// checksum mismatches — deletes stray temp and dead stream spools, and
// leaves unrelated files alone.
func TestUploadsStartupQuarantine(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "uploads")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("orphanpart"+partSuffix, "orphaned")
	write("orphanmeta"+sessSuffix, `{"id":"orphanmeta","offset":0,"sha256":""}`)
	write("corrupt"+partSuffix, "xxxx")
	write("corrupt"+sessSuffix, `{"id":"corrupt","offset":4,"sha256":"not-the-hash"}`)
	write("junk"+sessSuffix+uploadTmpSuffix, "half-written")
	write("stream-12345.cltr", "dead stream spool")
	write("unrelated.txt", "keep")

	u, err := NewUploads(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 0 || u.Recovered() != 0 {
		t.Fatalf("sessions = %d recovered = %d, want 0 and 0", u.Len(), u.Recovered())
	}
	for _, gone := range []string{
		"orphanpart" + partSuffix, "orphanmeta" + sessSuffix,
		"corrupt" + partSuffix, "corrupt" + sessSuffix,
		"junk" + sessSuffix + uploadTmpSuffix, "stream-12345.cltr",
	} {
		if _, err := os.Stat(filepath.Join(dir, gone)); !os.IsNotExist(err) {
			t.Fatalf("%s survived the startup scan", gone)
		}
	}
	for _, q := range []string{
		"orphanpart" + partSuffix, "orphanmeta" + sessSuffix,
		"corrupt" + partSuffix, "corrupt" + sessSuffix,
	} {
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, q)); err != nil {
			t.Fatalf("%s not quarantined: %v", q, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "unrelated.txt")); err != nil {
		t.Fatal("unrelated file swept")
	}
}

// TestUploadAppendFaultRollbackAndRestart is the end-to-end crash
// story: an ENOSPC partial write mid-append rolls back to the durable
// prefix even when the rollback truncate itself fails, a simulated
// restart recovers the offset of the last fsync'd prefix, and the 409
// resync converges to the exact logical bytes.
func TestUploadAppendFaultRollbackAndRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "uploads")
	inj := fault.NewInjector(fault.OS())
	u1, err := OpenUploads(UploadsConfig{Dir: dir, FS: inj, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	up1, err := u1.Create()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := up1.Append(0, strings.NewReader("hello ")); err != nil {
		t.Fatal(err)
	}

	// The disk fills: the next spool write delivers half the buffer and
	// fails with ENOSPC, and the rollback truncate fails too — the torn
	// bytes stay on disk, only the metadata knows the truth.
	rules, err := fault.ParseSpec("write:every=1,partial;truncate:every=1,err=EIO")
	if err != nil {
		t.Fatal(err)
	}
	inj.SetRules(rules...)
	cur, _, err := up1.Append(6, strings.NewReader("world"))
	if err == nil {
		t.Fatal("append under ENOSPC succeeded")
	}
	if cur != 6 {
		t.Fatalf("offset after failed append = %d, want 6 (rolled back)", cur)
	}
	inj.SetRules()

	// SIGKILL + restart over the same directory.
	u2, err := NewUploads(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	up2, ok := u2.Get(up1.ID)
	if !ok {
		t.Fatal("session not recovered after fault + restart")
	}
	if up2.Offset() != 6 {
		t.Fatalf("recovered offset = %d, want 6 (last fsync'd prefix)", up2.Offset())
	}
	// 409 resync: the client retries at its stale idea of the offset,
	// learns the durable one, and converges.
	cur, _, err = up2.Append(11, strings.NewReader("world"))
	if !errors.Is(err, ErrOffsetMismatch) {
		t.Fatalf("stale append err = %v, want ErrOffsetMismatch", err)
	}
	if cur != 6 {
		t.Fatalf("resync offset = %d, want 6", cur)
	}
	if _, _, err := up2.Append(6, strings.NewReader("world")); err != nil {
		t.Fatal(err)
	}
	path, size, err := u2.Seal(up1.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if size != 11 || string(got) != "hello world" {
		t.Fatalf("sealed %d bytes %q, want 11 %q", size, got, "hello world")
	}
}
