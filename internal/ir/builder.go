package ir

import "fmt"

// Builder constructs a Program incrementally. It exists so that the
// program generator, the examples and the tests can write program
// construction code that reads like a control-flow sketch rather than
// slice bookkeeping.
//
// Typical use:
//
//	b := ir.NewBuilder("demo", 1)
//	f := b.Func("main")
//	entry := f.Block("entry", 16)
//	body := f.Block("body", 48)
//	entry.Jump(body)
//	body.Exit()
//	prog, err := b.Build()
type Builder struct {
	prog *Program
	fns  []*FuncBuilder
}

// NewBuilder creates a Builder for a program with the given number of
// global registers.
func NewBuilder(name string, numGlobals int) *Builder {
	return &Builder{prog: &Program{Name: name, NumGlobals: numGlobals}}
}

// SetDataCPI sets the program's data-side stall contribution.
func (b *Builder) SetDataCPI(cpi float64) { b.prog.DataCPI = cpi }

// Func declares a new function. The first function declared is the
// program entry.
func (b *Builder) Func(name string) *FuncBuilder {
	f := &Function{ID: FuncID(len(b.prog.Funcs)), Name: name}
	b.prog.Funcs = append(b.prog.Funcs, f)
	fb := &FuncBuilder{b: b, fn: f}
	b.fns = append(b.fns, fb)
	return fb
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	for _, fb := range b.fns {
		if len(fb.fn.Blocks) == 0 {
			return nil, fmt.Errorf("ir: function %q has no blocks", fb.fn.Name)
		}
		for _, bb := range fb.blocks {
			if bb.blk.Term == nil {
				return nil, fmt.Errorf("ir: block %s.%s has no terminator", fb.fn.Name, bb.blk.Name)
			}
		}
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build that panics on error; intended for tests and
// generators whose programs are correct by construction.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// FuncBuilder constructs the blocks of one function.
type FuncBuilder struct {
	b      *Builder
	fn     *Function
	blocks []*BlockBuilder
}

// ID returns the function's ID.
func (fb *FuncBuilder) ID() FuncID { return fb.fn.ID }

// Block appends a new basic block of the given size in bytes. The first
// block of a function is its entry.
func (fb *FuncBuilder) Block(name string, size int32) *BlockBuilder {
	blk := &Block{
		ID:   BlockID(len(fb.b.prog.Blocks)),
		Fn:   fb.fn.ID,
		Name: name,
		Size: size,
	}
	fb.b.prog.Blocks = append(fb.b.prog.Blocks, blk)
	fb.fn.Blocks = append(fb.fn.Blocks, blk.ID)
	bb := &BlockBuilder{fb: fb, blk: blk}
	fb.blocks = append(fb.blocks, bb)
	return bb
}

// BlockBuilder sets the effects and terminator of one block.
type BlockBuilder struct {
	fb  *FuncBuilder
	blk *Block
}

// ID returns the block's program-wide ID.
func (bb *BlockBuilder) ID() BlockID { return bb.blk.ID }

// Set adds a SetGlobal effect.
func (bb *BlockBuilder) Set(reg, val int32) *BlockBuilder {
	bb.blk.Effects = append(bb.blk.Effects, SetGlobal{Reg: reg, Val: val})
	return bb
}

// Add adds an AddGlobal effect.
func (bb *BlockBuilder) Add(reg, delta int32) *BlockBuilder {
	bb.blk.Effects = append(bb.blk.Effects, AddGlobal{Reg: reg, Delta: delta})
	return bb
}

// Choose adds a SetGlobalChoice effect.
func (bb *BlockBuilder) Choose(reg int32, choices ...int32) *BlockBuilder {
	bb.blk.Effects = append(bb.blk.Effects, SetGlobalChoice{Reg: reg, Choices: choices})
	return bb
}

// Jump terminates the block with an unconditional jump.
func (bb *BlockBuilder) Jump(target *BlockBuilder) {
	bb.blk.Term = Jump{Target: target.ID()}
}

// Branch terminates the block with a conditional branch.
func (bb *BlockBuilder) Branch(cond Cond, taken, fall *BlockBuilder) {
	bb.blk.Term = Branch{Cond: cond, Taken: taken.ID(), Fall: fall.ID()}
}

// Loop terminates the block with a counted back-edge: control returns to
// header trips-1 times, then falls through to fall.
func (bb *BlockBuilder) Loop(trips int32, header, fall *BlockBuilder) {
	bb.blk.Term = Branch{Cond: Counter{Trips: trips}, Taken: header.ID(), Fall: fall.ID()}
}

// Call terminates the block with a call; control continues at next after
// the callee returns.
func (bb *BlockBuilder) Call(callee *FuncBuilder, next *BlockBuilder) {
	bb.blk.Term = Call{Callee: callee.ID(), Next: next.ID()}
}

// Return terminates the block with a return.
func (bb *BlockBuilder) Return() { bb.blk.Term = Return{} }

// Exit terminates the block by ending the program.
func (bb *BlockBuilder) Exit() { bb.blk.Term = Exit{} }
