#!/bin/sh
# smoke_serve.sh — end-to-end service smoke test, run by `make smoke-serve`
# and the CI service-smoke job:
#
#   1. build layoutd/layoutctl/tracedump,
#   2. record a trace with tracedump,
#   3. start layoutd on a random port,
#   4. submit the trace via layoutctl and wait for a 200 result,
#   5. resubmit the identical trace and assert a cache hit via /metrics,
#   6. SIGTERM the daemon and require a clean drain.
set -eu

WORK=$(mktemp -d)
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT

PROG=458.sjeng
OPT=func-affinity

echo "smoke-serve: building binaries"
go build -o "$WORK/layoutd" ./cmd/layoutd
go build -o "$WORK/layoutctl" ./cmd/layoutctl
go build -o "$WORK/tracedump" ./cmd/tracedump

echo "smoke-serve: recording a $PROG trace"
"$WORK/tracedump" -prog "$PROG" -record "$WORK/t" -gran bb

echo "smoke-serve: starting layoutd"
"$WORK/layoutd" -addr 127.0.0.1:0 -jobs 2 -queue 8 \
    -ready-file "$WORK/addr" >"$WORK/layoutd.log" 2>&1 &
DAEMON_PID=$!

i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-serve: layoutd never became ready" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "smoke-serve: layoutd exited early" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    }
    sleep 0.1
done
ADDR="http://$(cat "$WORK/addr")"
echo "smoke-serve: layoutd at $ADDR"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

fetch "$ADDR/healthz" | grep -q ok

echo "smoke-serve: submitting job"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result1.json"
grep -q '"status": "done"' "$WORK/result1.json"
grep -q '"missBefore"' "$WORK/result1.json"

echo "smoke-serve: resubmitting identical trace (expect cache hit)"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result2.json"
grep -q 'cached=true' "$WORK/result2.json"

fetch "$ADDR/metrics" >"$WORK/metrics.txt"
grep -q '^layoutd_cache_hits_total 1$' "$WORK/metrics.txt"
grep -q '^layoutd_jobs_completed_total 1$' "$WORK/metrics.txt"

echo "smoke-serve: draining daemon with SIGTERM"
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-serve: layoutd did not exit after SIGTERM" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$DAEMON_PID" 2>/dev/null || true
grep -q 'drained cleanly' "$WORK/layoutd.log"
DAEMON_PID=""

echo "smoke-serve: OK"
