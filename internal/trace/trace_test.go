package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTrimmed(t *testing.T) {
	cases := []struct {
		in, want []int32
	}{
		{nil, []int32{}},
		{[]int32{1}, []int32{1}},
		{[]int32{1, 1, 1}, []int32{1}},
		{[]int32{1, 2, 2, 3, 3, 3, 1}, []int32{1, 2, 3, 1}},
		{[]int32{5, 5, 4, 4, 5}, []int32{5, 4, 5}},
	}
	for _, c := range cases {
		got := New(c.in).Trimmed()
		if !reflect.DeepEqual(got.Syms, c.want) {
			t.Errorf("Trimmed(%v) = %v, want %v", c.in, got.Syms, c.want)
		}
		if !got.IsTrimmed() {
			t.Errorf("Trimmed(%v) is not trimmed", c.in)
		}
	}
}

func TestTrimmedIdempotent(t *testing.T) {
	f := func(syms []uint8) bool {
		in := make([]int32, len(syms))
		for i, s := range syms {
			in[i] = int32(s % 8)
		}
		once := New(in).Trimmed()
		twice := once.Trimmed()
		return reflect.DeepEqual(once.Syms, twice.Syms) && once.IsTrimmed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountsAndDistinct(t *testing.T) {
	tr := New([]int32{0, 2, 2, 5, 0, 2})
	c := tr.Counts()
	want := []int64{2, 0, 3, 0, 0, 1}
	if !reflect.DeepEqual(c, want) {
		t.Errorf("Counts = %v, want %v", c, want)
	}
	if got := tr.NumDistinct(); got != 3 {
		t.Errorf("NumDistinct = %d, want 3", got)
	}
	if got := tr.MaxSym(); got != 5 {
		t.Errorf("MaxSym = %d, want 5", got)
	}
	if got := New(nil).MaxSym(); got != -1 {
		t.Errorf("empty MaxSym = %d, want -1", got)
	}
}

func TestTopNAndPruning(t *testing.T) {
	// Symbol 1 occurs 5x, symbol 2 occurs 3x, symbol 3 occurs 1x.
	tr := New([]int32{1, 2, 1, 3, 1, 2, 1, 2, 1})
	top := tr.TopN(2)
	if !top[1] || !top[2] || top[3] {
		t.Errorf("TopN(2) = %v, want {1,2}", top)
	}
	pruned, frac := tr.PruneTopN(2)
	if pruned.Len() != 8 {
		t.Errorf("PruneTopN kept %d occurrences, want 8", pruned.Len())
	}
	if want := 8.0 / 9.0; frac != want {
		t.Errorf("PruneTopN retention = %v, want %v", frac, want)
	}
	for _, s := range pruned.Syms {
		if s == 3 {
			t.Error("PruneTopN kept pruned symbol 3")
		}
	}
	// n larger than the alphabet keeps everything.
	all, frac := tr.PruneTopN(100)
	if all.Len() != tr.Len() || frac != 1 {
		t.Errorf("PruneTopN(100) kept %d (frac %v), want all", all.Len(), frac)
	}
}

func TestTopNDeterministicTieBreak(t *testing.T) {
	tr := New([]int32{4, 7, 4, 7, 2})
	top := tr.TopN(1)
	if len(top) != 1 || !top[4] {
		t.Errorf("TopN(1) tie break = %v, want {4}", top)
	}
}

func TestPrunedPreservesOrder(t *testing.T) {
	tr := New([]int32{9, 1, 9, 2, 9, 1})
	got := tr.Pruned(func(s int32) bool { return s != 9 })
	want := []int32{1, 2, 1}
	if !reflect.DeepEqual(got.Syms, want) {
		t.Errorf("Pruned = %v, want %v", got.Syms, want)
	}
}

func TestSampleStride(t *testing.T) {
	tr := New([]int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	got := tr.SampleStride(2, 5)
	want := []int32{0, 1, 5, 6}
	if !reflect.DeepEqual(got.Syms, want) {
		t.Errorf("SampleStride(2,5) = %v, want %v", got.Syms, want)
	}
	// Tail window shorter than windowLen is kept.
	got = tr.SampleStride(3, 4)
	want = []int32{0, 1, 2, 4, 5, 6, 8, 9}
	if !reflect.DeepEqual(got.Syms, want) {
		t.Errorf("SampleStride(3,4) = %v, want %v", got.Syms, want)
	}
	// Degenerate parameters yield an empty trace.
	if got := tr.SampleStride(0, 5); got.Len() != 0 {
		t.Errorf("SampleStride(0,5) = %v, want empty", got.Syms)
	}
	if got := tr.SampleStride(5, 3); got.Len() != 0 {
		t.Errorf("SampleStride(5,3) = %v, want empty", got.Syms)
	}
}

func TestConcat(t *testing.T) {
	a := New([]int32{1, 2})
	b := New([]int32{3})
	got := a.Concat(b)
	if !reflect.DeepEqual(got.Syms, []int32{1, 2, 3}) {
		t.Errorf("Concat = %v", got.Syms)
	}
	// Concat does not alias its inputs.
	got.Syms[0] = 99
	if a.Syms[0] != 1 {
		t.Error("Concat aliased input")
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 7, 1000, 50000} {
		syms := make([]int32, n)
		cur := int32(500)
		for i := range syms {
			cur += int32(rng.Intn(21) - 10)
			if cur < 0 {
				cur = 0
			}
			syms[i] = cur
		}
		in := New(syms)
		var buf bytes.Buffer
		if _, err := in.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo(n=%d): %v", n, err)
		}
		out, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("ReadFrom(n=%d): %v", n, err)
		}
		if !reflect.DeepEqual(in.Syms, out.Syms) && !(len(in.Syms) == 0 && len(out.Syms) == 0) {
			t.Fatalf("round trip mismatch at n=%d", n)
		}
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("XXXX\x01\x00"))); err == nil {
		t.Error("ReadFrom accepted bad magic")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte("CLTR\x09\x00"))); err == nil {
		t.Error("ReadFrom accepted bad version")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte("CLTR\x01\x05\x02"))); err == nil {
		t.Error("ReadFrom accepted truncated body")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("ReadFrom accepted empty input")
	}
}

func TestFileDeltaEncodingIsCompact(t *testing.T) {
	// Clustered IDs should encode in ~1 byte per occurrence.
	syms := make([]int32, 10000)
	for i := range syms {
		syms[i] = int32(1000 + i%4)
	}
	var buf bytes.Buffer
	if _, err := New(syms).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > len(syms)*2 {
		t.Errorf("encoded size %d bytes for %d clustered occurrences; want < 2 B/occ", buf.Len(), len(syms))
	}
}

func TestFuncTraceUsesEnclosingFunctions(t *testing.T) {
	p := buildTwoFuncProg(t)
	// Block IDs: main has blocks 0,1; F has blocks 2,3.
	bt := New([]int32{0, 1, 2, 3, 2, 1, 0})
	ft := FuncTrace(p, bt)
	want := []int32{0, 1, 0}
	if !reflect.DeepEqual(ft.Syms, want) {
		t.Errorf("FuncTrace = %v, want %v", ft.Syms, want)
	}
	if !ft.IsTrimmed() {
		t.Error("FuncTrace not trimmed")
	}
}
