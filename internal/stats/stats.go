// Package stats provides the small numeric and formatting helpers the
// experiment harness uses to aggregate and render results.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values, 0 for empty
// input. Non-positive entries are skipped.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Min and Max return the extrema; 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Pct formats a fraction as a percentage, e.g. 0.0432 -> "4.32%".
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// SignedPct formats a fraction with an explicit sign, the convention the
// paper's Table II uses (+7.22%, -0.57%).
func SignedPct(x float64) string { return fmt.Sprintf("%+.2f%%", 100*x) }

// RelChange returns (new-old)/old, 0 when old is 0.
func RelChange(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old
}

// Reduction returns (old-new)/old, the "miss ratio reduction" convention
// of the paper (positive is better), 0 when old is 0.
func Reduction(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (old - new) / old
}

// Table renders rows of cells as a fixed-width text table with a header
// row and a separator.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			// Left-align the first column, right-align the rest.
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
