package cachesim

import (
	"reflect"
	"testing"

	"codelayout/internal/ir"
	"codelayout/internal/layout"
)

// TestSoloStreamMatchesSimulateSolo: feeding the block trace chunk by
// chunk must produce a SoloResult identical to the buffered
// SimulateSolo, on both the stub-free original layout and a reversed
// layout carrying stubs and appended jumps (the stream's held-symbol
// logic must agree with the buffered fall-through and stub rules at
// every chunk boundary).
func TestSoloStreamMatchesSimulateSolo(t *testing.T) {
	p := loopProgram(t, 320, 64, 30)
	var rev []ir.BlockID
	for b := p.NumBlocks() - 1; b >= 0; b-- {
		rev = append(rev, ir.BlockID(b))
	}
	layouts := map[string]*layout.Layout{
		"original": layout.Original(p),
		"reversed": layout.ReorderBlocks(p, rev),
	}
	tr := runTrace(t, p)
	for name, l := range layouts {
		want := SimulateSolo(L1IDefault, layout.NewReplayer(l, tr, L1IDefault.LineBytes, false))
		if want.Blocks == 0 || want.Stats.Accesses == 0 {
			t.Fatalf("%s: degenerate buffered result %+v", name, want)
		}
		for _, chunk := range []int{1, 37, 1024, tr.Len()} {
			s := NewSoloStream(L1IDefault, l)
			syms := tr.Syms
			for len(syms) > 0 {
				c := chunk
				if c > len(syms) {
					c = len(syms)
				}
				s.Feed(syms[:c])
				syms = syms[c:]
			}
			got := s.Finish()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s chunk=%d: streamed %+v != buffered %+v", name, chunk, got, want)
			}
		}
	}
}

// TestSoloStreamEmpty: finishing with no chunks matches the buffered
// simulation of an empty trace.
func TestSoloStreamEmpty(t *testing.T) {
	p := loopProgram(t, 16, 64, 10)
	s := NewSoloStream(L1IDefault, layout.Original(p))
	res := s.Finish()
	if res.Blocks != 0 || res.Stats.Accesses != 0 {
		t.Fatalf("empty stream result %+v", res)
	}
}
