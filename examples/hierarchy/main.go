// Hierarchy walks through the paper's two locality models on worked
// examples: the w-window affinity hierarchy of Figure 1 and the TRG
// reduction of Figure 2, then runs both models on a custom trace to
// show where they agree and differ.
package main

import (
	"fmt"

	"codelayout"
	"codelayout/internal/affinity"
	"codelayout/internal/trace"
	"codelayout/internal/trg"
)

func main() {
	// Figure 1: the affinity hierarchy of B1 B4 B2 B4 B2 B3 B5 B1 B4.
	fmt.Println(codelayout.Figure1())

	// Figure 2: TRG reduction with three code slots.
	fmt.Println(codelayout.Figure2())

	// A custom trace: two tightly coupled pairs (0,1) and (2,3) plus a
	// block 4 that interleaves with everything.
	syms := []int32{}
	for i := 0; i < 50; i++ {
		syms = append(syms, 0, 1, 4, 2, 3, 4)
	}
	tr := trace.New(syms)

	h := affinity.BuildHierarchy(tr, affinity.Options{WMax: 6})
	fmt.Println("custom trace: (0 1 4 2 3 4) x 50")
	for w := 2; w <= 4; w++ {
		fmt.Printf("  affinity partition at w=%d: %v\n", w, h.Partition(w).Groups)
	}
	fmt.Printf("  affinity sequence: %v\n", h.Sequence())

	g := trg.Build(tr, 0)
	fmt.Printf("  TRG heaviest edges: ")
	for i, e := range g.Edges() {
		if i == 3 {
			break
		}
		fmt.Printf("(%d,%d):%d ", e.A, e.B, e.Weight)
	}
	fmt.Println()
	fmt.Printf("  TRG sequence (4 slots): %v\n", trg.Reduce(g, 4))
	fmt.Println()
	fmt.Println("affinity keeps each coupled pair adjacent; TRG separates the")
	fmt.Println("blocks with the heaviest conflict edges into different slots.")
}
