package progen

import (
	"reflect"
	"testing"

	"codelayout/internal/interp"
	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

func smallSpec() Spec {
	return tunedSpec("test.small", 7, 12, 36, [2]int{0, 0}, 0.25)
}

func TestGenerateValidProgram(t *testing.T) {
	p, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("generated program invalid: %v", err)
	}
	if p.NumFuncs() < 36 {
		t.Errorf("NumFuncs = %d, want >= Funcs", p.NumFuncs())
	}
	if p.Funcs[0].Name != "main" {
		t.Errorf("entry function %q, want main", p.Funcs[0].Name)
	}
	if p.DataCPI != 0.25 {
		t.Errorf("DataCPI = %v", p.DataCPI)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallSpec())
	b := MustGenerate(smallSpec())
	if a.NumBlocks() != b.NumBlocks() || a.NumFuncs() != b.NumFuncs() {
		t.Fatal("structure differs between identical specs")
	}
	if a.Dump() != b.Dump() {
		t.Error("generated programs differ for the same seed")
	}
	s2 := smallSpec()
	s2.Seed = 8
	c := MustGenerate(s2)
	if a.Dump() == c.Dump() {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratedProgramRunsToCompletion(t *testing.T) {
	p := MustGenerate(smallSpec())
	res, err := interp.Run(p, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Errorf("program hit the step cap after %d steps", res.Steps)
	}
	if res.Steps < 50000 {
		t.Errorf("only %d block executions; phases too short to measure", res.Steps)
	}
	if res.Steps > 5_000_000 {
		t.Errorf("%d block executions; traces this long slow the harness", res.Steps)
	}
}

func TestInputSeedChangesTraceNotStructure(t *testing.T) {
	p := MustGenerate(smallSpec())
	a, err := interp.Run(p, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Run(p, interp.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Blocks.Syms, b.Blocks.Syms) {
		t.Error("different inputs produced identical traces")
	}
}

func TestShuffledSourceOrderScattersCallOrder(t *testing.T) {
	// The source (declaration) order of work functions must differ from
	// their call order — otherwise the original layout would already be
	// optimized and the transformations would have nothing to do.
	p := MustGenerate(smallSpec())
	inOrder := true
	prev := ""
	for _, f := range p.Funcs[1:] {
		if len(f.Name) == 4 && f.Name[0] == 'f' {
			if prev != "" && f.Name < prev {
				inOrder = false
				break
			}
			prev = f.Name
		}
	}
	if inOrder {
		t.Error("work functions declared in logical order; source order must be shuffled")
	}
}

func TestColdBlocksAreCold(t *testing.T) {
	p := MustGenerate(smallSpec())
	res, err := interp.Run(p, interp.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Blocks.Counts()
	at := func(id ir.BlockID) int64 {
		if int(id) >= len(counts) {
			return 0
		}
		return counts[id]
	}
	var hotTotal, coldTotal int64
	for _, f := range p.Funcs {
		for _, bid := range f.Blocks {
			b := p.Blocks[bid]
			if len(b.Name) > 2 && b.Name[len(b.Name)-2] == 'c' {
				continue
			}
			switch {
			case containsTag(b.Name, "_c"):
				coldTotal += at(bid)
			case containsTag(b.Name, "_h"):
				hotTotal += at(bid)
			}
		}
	}
	if hotTotal == 0 {
		t.Fatal("no hot block executions found")
	}
	frac := float64(coldTotal) / float64(hotTotal)
	if frac > 0.15 {
		t.Errorf("cold/hot execution ratio = %v, want << 1", frac)
	}
	if coldTotal == 0 {
		t.Error("cold paths never executed; ColdProb not applied")
	}
}

func containsTag(name, tag string) bool {
	for i := 0; i+len(tag) <= len(name); i++ {
		if name[i:i+len(tag)] == tag {
			return true
		}
	}
	return false
}

func TestCorrelatedPairExists(t *testing.T) {
	s := smallSpec()
	s.CorrelatedFrac = 1.0
	p := MustGenerate(s)
	// Setter/reader pairs have "sel" entry blocks.
	sel := 0
	for _, b := range p.Blocks {
		if b.Name == "sel" {
			sel++
		}
	}
	if sel < s.Funcs/2 {
		t.Errorf("found %d sel blocks, want about %d (CorrelatedFrac=1)", sel, s.Funcs-1)
	}
}

func TestFunctionTraceShowsPhases(t *testing.T) {
	p := MustGenerate(smallSpec())
	res, err := interp.Run(p, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ft := trace.FuncTrace(p, res.Blocks)
	if ft.NumDistinct() < 10 {
		t.Errorf("function trace touches %d functions, want the working sets", ft.NumDistinct())
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{Name: "noFuncs"},
		func() Spec { s := smallSpec(); s.HotChain = [2]int{0, 3}; return s }(),
		func() Spec { s := smallSpec(); s.HotBytes = [2]int{100, 50}; return s }(),
		func() Spec { s := smallSpec(); s.ColdProb = 1.5; return s }(),
		func() Spec { s := smallSpec(); s.FuncsPerPhase = s.Funcs + 1; return s }(),
		func() Spec { s := smallSpec(); s.Phases = 0; return s }(),
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("case %d: bad spec accepted", i)
		}
	}
}

func TestSuites(t *testing.T) {
	screening := ScreeningSuite()
	if len(screening) != 29 {
		t.Fatalf("screening suite has %d programs, want 29", len(screening))
	}
	seen := map[string]bool{}
	for _, s := range screening {
		if err := s.Validate(); err != nil {
			t.Errorf("screening %s: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate name %s", s.Name)
		}
		seen[s.Name] = true
	}
	main := MainSuite()
	if len(main) != 8 {
		t.Fatalf("main suite has %d programs, want 8", len(main))
	}
	for _, s := range main {
		if !seen[s.Name] {
			t.Errorf("main program %s not in screening suite", s.Name)
		}
	}
	if _, err := SpecByName(ProbeGamess); err != nil {
		t.Errorf("gamess probe missing: %v", err)
	}
	if _, err := SpecByName("no.such"); err == nil {
		t.Error("SpecByName accepted unknown program")
	}
	if !BBReorderUnsupported["400.perlbench"] || !BBReorderUnsupported["453.povray"] {
		t.Error("paper's N/A programs not flagged")
	}
}

func TestMainSuiteProgramsGenerate(t *testing.T) {
	for _, s := range MainSuite() {
		p, err := Generate(s)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", s.Name, err)
		}
	}
}
