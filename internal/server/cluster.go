package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime/debug"
	"strings"
	"time"

	"codelayout/internal/cluster"
	"codelayout/internal/obs"
	"codelayout/internal/store"
)

// Header aliases so the rest of the package reads without the cluster
// qualifier.
const (
	headerDigest      = cluster.DigestHeader
	headerForward     = cluster.ForwardHeader
	headerForwardedTo = cluster.ForwardedToHeader
)

// ---- two-tier blob plumbing ----

// blobStore is what the four content caches (results, traces, pair and
// schedule documents) use as their durable tier. A single node talks
// straight to *store.Store; a cluster member goes through clusterBlobs,
// which adds peer fetch-through on a local miss and write-behind
// replication on every put — so all four caches became cluster-aware
// without changing their logic.
type blobStore interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte)
}

type clusterBlobs struct {
	disk *store.Store // may be nil: memory-only cluster member
	cl   *cluster.Cluster
	srv  *Server // set after construction; source of metrics
}

func (b *clusterBlobs) Get(key string) ([]byte, bool) {
	if b.disk != nil {
		if data, ok := b.disk.Get(key); ok {
			return data, true
		}
	}
	// Local miss: ask the peers holding the key's replicas. The fetch
	// verifies the peer's digest header, and the blob is re-put locally
	// so the next read is a disk hit.
	data, _, err := b.cl.FetchBlob(context.Background(), key)
	if err != nil {
		return nil, false
	}
	if m := b.srv.metrics; m != nil && m.clusterFetches != nil {
		m.clusterFetches.Inc()
	}
	if b.disk != nil {
		b.disk.Put(key, data)
	}
	return data, true
}

func (b *clusterBlobs) Put(key string, data []byte) {
	if b.disk != nil {
		b.disk.Put(key, data)
	}
	b.cl.Replicate(key, data)
}

// ---- ownership forwarding ----

// shouldForward reports whether this request is a candidate for
// ownership routing: the node is clustered and the request has not
// already been forwarded once (loop prevention — a forwarded request is
// always served locally, whatever this node thinks about ownership).
func (s *Server) shouldForward(r *http.Request) bool {
	return s.cluster != nil && r.Header.Get(headerForward) == ""
}

// forwardToOwner proxies the request to the effective owner of key when
// that is another node. It reports whether the request was fully
// handled; false means the caller serves locally — either this node
// owns the key, or the owner was unreachable and local service beats an
// error (always correct under content addressing, at worst it
// recomputes).
func (s *Server) forwardToOwner(w http.ResponseWriter, r *http.Request, key string, body []byte) bool {
	owner := s.cluster.Owner(key)
	if owner.ID == s.cluster.SelfID() {
		return false
	}
	return s.proxy(w, r, owner, body)
}

// proxy replays the request against peer with the forward marker set,
// then relays status, headers, and body back, tagging the response with
// the serving node so cluster-aware clients can re-base onto the owner.
// The peer.forward phase is observed whether or not the attempt lands.
//
// The hop carries W3C trace context: the caller's trace ID is adopted
// when the inbound request has a valid traceparent (else one is
// minted), and the outbound header gets a fresh span ID — so the job
// the owner creates joins the caller's trace. Successful forwarded
// POSTs additionally record a local "peer.forward" span keyed by the
// job ID the owner returned, which cross-node trace assembly
// (fwdtrace.go) later merges into the owner's timeline.
func (s *Server) proxy(w http.ResponseWriter, r *http.Request, peer cluster.Peer, body []byte) bool {
	start := time.Now()
	target := peer.URL + r.URL.RequestURI()
	traceID := requestTraceID(r)
	tpHeader := obs.FormatTraceparent(traceID, obs.NewSpanID(), true)
	rt := &cluster.Retrier{Max: 1, Base: 100 * time.Millisecond,
		Logf: func(format string, args ...any) {
			s.logger.Debug("peer retry", "msg", fmt.Sprintf(format, args...))
		}}
	resp, err := rt.Do("forward "+r.Method+" "+r.URL.Path, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, target, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header = r.Header.Clone()
		req.Header.Set(headerForward, s.cluster.SelfID())
		req.Header.Set(obs.TraceparentHeader, tpHeader)
		return s.peerClient.Do(req)
	})
	s.metrics.phase.With("peer.forward").Observe(time.Since(start).Seconds())
	if err != nil {
		// Transport failures mark the peer down so routing moves on
		// before the next health poll; a peer that answered (429/503
		// exhausted the budget) is alive, just busy.
		var uerr *url.Error
		if errors.As(err, &uerr) {
			s.cluster.ReportFailure(peer.ID)
		}
		if s.metrics.forwardErrors != nil {
			s.metrics.forwardErrors.Inc()
		}
		s.logger.Warn("peer forward failed; serving locally",
			"peer", peer.ID, "path", r.URL.Path, "error", err)
		return false
	}
	s.metrics.peerForwards.With(peer.ID).Inc()
	defer resp.Body.Close()
	h := w.Header()
	for k, vv := range resp.Header {
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	h.Set(headerForwardedTo, peer.ID)
	w.WriteHeader(resp.StatusCode)
	if r.Method == http.MethodPost && resp.StatusCode < 300 {
		// A forwarded submission: relay the body while capturing the
		// owner's job ID, then log this hop as a forward span.
		s.relayForwardedSubmit(w, resp.Body, peer.ID, traceID, start)
		return true
	}
	io.Copy(w, resp.Body)
	return true
}

// forwardSubmit wraps POST /v1/jobs: the upload is buffered (bounded by
// MaxTraceBytes), hashed, and routed to the owner of its content
// address. For raw CLTR bodies the routing key equals the trace digest
// the server retains, so resubmissions of a profile always land on the
// node holding its memoized state; multipart bodies hash the whole
// envelope (boundary included), which is deterministic per request but
// not per profile — still correct, just without submit affinity.
func (s *Server) forwardSubmit(next http.HandlerFunc) http.HandlerFunc {
	if s.cluster == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.shouldForward(r) {
			next(w, r)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes))
		if err != nil {
			httpError(w, badBodyStatus(err), err)
			return
		}
		sum := sha256.Sum256(body)
		if s.forwardToOwner(w, r, hex.EncodeToString(sum[:]), body) {
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
		next(w, r)
	}
}

// forwardJSON wraps the JSON job endpoints (/v1/corun, /v1/schedule):
// the small body is buffered, keyFn derives the routing key from it,
// and the request forwards to that key's owner. A body keyFn cannot
// parse is served locally — the handler owns rejecting it properly.
func (s *Server) forwardJSON(keyFn func(body []byte) (string, bool), next http.HandlerFunc) http.HandlerFunc {
	if s.cluster == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.shouldForward(r) {
			next(w, r)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJSONBody))
		if err != nil {
			httpError(w, badBodyStatus(err), err)
			return
		}
		if key, ok := keyFn(body); ok {
			if s.forwardToOwner(w, r, key, body) {
				return
			}
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
		next(w, r)
	}
}

// corunRouteKey routes a pair analysis by its sorted digest pair, so
// (a, b) and (b, a) land on one node and share its memoized entries.
func corunRouteKey(body []byte) (string, bool) {
	var req struct {
		A string `json:"a"`
		B string `json:"b"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.A == "" || req.B == "" {
		return "", false
	}
	a, b := req.A, req.B
	if b < a {
		a, b = b, a
	}
	return a + "+" + b, true
}

// scheduleRouteKey routes a placement request by its digest list in
// request order — identical requests reuse one node's memoized pair
// matrix.
func scheduleRouteKey(body []byte) (string, bool) {
	var req struct {
		Digests []string `json:"digests"`
	}
	if err := json.Unmarshal(body, &req); err != nil || len(req.Digests) == 0 {
		return "", false
	}
	return strings.Join(req.Digests, "+"), true
}

// forwardDigest wraps the by-digest read endpoints (/v1/layouts/{d},
// /v1/corun/{d}): reads route to the digest's owner, whose store
// converges on holding the blob via replication. Malformed digests are
// served (rejected) locally.
func (s *Server) forwardDigest(next http.HandlerFunc) http.HandlerFunc {
	if s.cluster == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("digest")
		if !s.shouldForward(r) || !validDigest(key) {
			next(w, r)
			return
		}
		if s.forwardToOwner(w, r, key, nil) {
			return
		}
		next(w, r)
	}
}

// forwardJobID wraps the by-job-ID endpoints. Cluster job IDs are
// node-prefixed ("n2.job-7"), so any node can route a status poll,
// trace fetch, or cancel straight to the node running the job — no
// hashing involved. Unprefixed or unknown-node IDs are looked up
// locally (and 404 there).
func (s *Server) forwardJobID(next http.HandlerFunc) http.HandlerFunc {
	if s.cluster == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.shouldForward(r) {
			next(w, r)
			return
		}
		node, _, ok := strings.Cut(r.PathValue("id"), ".")
		if !ok || node == s.cluster.SelfID() {
			next(w, r)
			return
		}
		peer, known := s.cluster.PeerByID(node)
		if !known {
			next(w, r)
			return
		}
		if s.proxy(w, r, peer, nil) {
			return
		}
		next(w, r)
	}
}

// newJobID mints a job ID. Clustered nodes prefix their node ID so the
// ID itself routes follow-up requests (peer IDs cannot contain ".",
// so the prefix is unambiguous).
func (s *Server) newJobID() string {
	n := s.nextID.Add(1)
	if s.cluster != nil {
		return fmt.Sprintf("%s.job-%d", s.cluster.SelfID(), n)
	}
	return fmt.Sprintf("job-%d", n)
}

// nodeID names this node in /healthz: the configured override, else the
// cluster self ID, else empty (single node, field omitted).
func (s *Server) nodeID() string {
	if s.cfg.NodeID != "" {
		return s.cfg.NodeID
	}
	if s.cluster != nil {
		return s.cluster.SelfID()
	}
	return ""
}

// buildString renders the running binary's version for /healthz.
func buildString() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	ver := bi.Main.Version
	if ver == "" || ver == "(devel)" {
		ver = "devel"
	}
	return strings.TrimSpace(bi.GoVersion + " " + ver)
}
