// Package fault provides deterministic fault injection for the
// filesystem and clock dependencies of the durable layers
// (internal/store). Production code talks to the FS and Clock
// interfaces; tests (and layoutd's -fault-spec debug flag) wrap the
// real implementations in an Injector that fails the Nth write with
// ENOSPC, truncates a write mid-buffer, delays an op, or errors every
// K-th sync — so recovery paths are provable instead of hoped-for.
//
// A fault spec is a semicolon-separated list of rules:
//
//	write:nth=3,err=ENOSPC        fail the 3rd write with ENOSPC
//	sync:every=2,err=EIO          fail every 2nd fsync with EIO
//	write:nth=1,partial           write half the buffer, then fail
//	read:delay=50ms               sleep 50ms before every read
//	rename:every=1,err=EIO        fail every rename
//
// Counters are per-op across the whole Injector, so a spec's behaviour
// is a pure function of the call sequence — the same test run always
// fails at the same byte.
package fault

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// FS is the slice of filesystem surface the durable store needs.
// fault.OS() is the real thing; NewInjector wraps any FS with faults.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	Create(name string) (File, error)
	Open(name string) (File, error)
	// OpenFile opens with explicit flags — the durable upload layer
	// reopens recovered spools read-write without truncating them.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
}

// File is the open-file surface: sequential read/write, fsync, and the
// truncate/seek pair the upload layer's all-or-nothing append rollback
// needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
}

// osFS is the passthrough FS.
type osFS struct{}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Create(name string) (File, error)             { return os.Create(name) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }

// Op names an injectable filesystem operation.
type Op string

// The injectable operations.
const (
	OpMkdir    Op = "mkdir"
	OpCreate   Op = "create"
	OpOpen     Op = "open"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpReadDir  Op = "readdir"
	OpStat     Op = "stat"
	OpTruncate Op = "truncate"
)

var allOps = []Op{OpMkdir, OpCreate, OpOpen, OpRead, OpWrite, OpSync, OpRename, OpRemove, OpReadDir, OpStat, OpTruncate}

// Rule injects one fault. A rule matches when its Op's call counter
// satisfies Nth (exactly the Nth call, 1-based) or Every (every K-th
// call); with neither set it matches every call. A matching rule
// sleeps Delay first, then fails with Err (Partial writes deliver half
// the buffer before failing). A rule with Delay but no Err and no
// Partial only slows the op down.
type Rule struct {
	Op      Op
	Nth     int
	Every   int
	Err     error
	Partial bool
	Delay   time.Duration
}

func (r Rule) matches(count int) bool {
	if r.Nth > 0 {
		return count == r.Nth
	}
	if r.Every > 0 {
		return count%r.Every == 0
	}
	return true
}

// errByName maps spec error names to errno values.
var errByName = map[string]error{
	"ENOSPC": syscall.ENOSPC,
	"EIO":    syscall.EIO,
	"EACCES": syscall.EACCES,
	"EROFS":  syscall.EROFS,
}

// ParseSpec parses the -fault-spec string format documented in the
// package comment.
func ParseSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		opStr, paramStr, _ := strings.Cut(part, ":")
		op := Op(strings.TrimSpace(opStr))
		valid := false
		for _, o := range allOps {
			if o == op {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("fault: unknown op %q in rule %q", op, part)
		}
		r := Rule{Op: op}
		for _, p := range strings.Split(paramStr, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			key, val, _ := strings.Cut(p, "=")
			var err error
			switch key {
			case "nth":
				r.Nth, err = strconv.Atoi(val)
			case "every":
				r.Every, err = strconv.Atoi(val)
			case "err":
				e, ok := errByName[val]
				if !ok {
					return nil, fmt.Errorf("fault: unknown error name %q in rule %q", val, part)
				}
				r.Err = e
			case "partial":
				r.Partial = true
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			default:
				return nil, fmt.Errorf("fault: unknown parameter %q in rule %q", key, part)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: bad value for %s in rule %q: %w", key, part, err)
			}
		}
		if r.Partial && r.Op != OpWrite {
			return nil, fmt.Errorf("fault: partial only applies to write, not %s", r.Op)
		}
		if r.Err == nil && (r.Partial || r.Delay == 0) {
			// Partial without an explicit error fails with ENOSPC (a
			// short write is what a full disk produces); a rule with
			// neither err, partial, nor delay would be a no-op.
			if r.Partial {
				r.Err = syscall.ENOSPC
			} else if r.Delay == 0 {
				return nil, fmt.Errorf("fault: rule %q injects nothing (need err, partial, or delay)", part)
			}
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// Injector wraps an FS, applying fault rules deterministically.
// SetRules replaces the rule set at any time (and resets no counters),
// so a test can let writes succeed, then make the disk "fail", then
// "repair" it — the store's circuit breaker is exercised end to end.
type Injector struct {
	fs FS

	mu     sync.Mutex
	rules  []Rule
	counts map[Op]int
}

// NewInjector wraps fs with the given rules.
func NewInjector(fs FS, rules ...Rule) *Injector {
	return &Injector{fs: fs, rules: rules, counts: make(map[Op]int)}
}

// SetRules atomically replaces the active rules. Call counters keep
// running, so nth= rules in a new set count from the injector's birth.
func (i *Injector) SetRules(rules ...Rule) {
	i.mu.Lock()
	i.rules = rules
	i.mu.Unlock()
}

// Counts returns a copy of the per-op call counters.
func (i *Injector) Counts() map[Op]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Op]int, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// check advances op's counter and returns the matched rule, if any.
// The rule's Delay is slept here so slow-I/O injection covers every op.
func (i *Injector) check(op Op) *Rule {
	i.mu.Lock()
	i.counts[op]++
	n := i.counts[op]
	var hit *Rule
	for idx := range i.rules {
		if i.rules[idx].Op == op && i.rules[idx].matches(n) {
			hit = &i.rules[idx]
			break
		}
	}
	i.mu.Unlock()
	if hit != nil && hit.Delay > 0 {
		time.Sleep(hit.Delay)
	}
	if hit != nil && hit.Err == nil && !hit.Partial {
		return nil // delay-only rule: slowed, not failed
	}
	return hit
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	if r := i.check(OpMkdir); r != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: r.Err}
	}
	return i.fs.MkdirAll(path, perm)
}

func (i *Injector) Create(name string) (File, error) {
	if r := i.check(OpCreate); r != nil {
		return nil, &os.PathError{Op: "create", Path: name, Err: r.Err}
	}
	f, err := i.fs.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{inj: i, f: f, name: name}, nil
}

func (i *Injector) Open(name string) (File, error) {
	if r := i.check(OpOpen); r != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: r.Err}
	}
	f, err := i.fs.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{inj: i, f: f, name: name}, nil
}

func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if r := i.check(OpOpen); r != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: r.Err}
	}
	f, err := i.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectedFile{inj: i, f: f, name: name}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if r := i.check(OpRename); r != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: r.Err}
	}
	return i.fs.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if r := i.check(OpRemove); r != nil {
		return &os.PathError{Op: "remove", Path: name, Err: r.Err}
	}
	return i.fs.Remove(name)
}

func (i *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if r := i.check(OpReadDir); r != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: r.Err}
	}
	return i.fs.ReadDir(name)
}

func (i *Injector) Stat(name string) (fs.FileInfo, error) {
	if r := i.check(OpStat); r != nil {
		return nil, &os.PathError{Op: "stat", Path: name, Err: r.Err}
	}
	return i.fs.Stat(name)
}

// injectedFile applies read/write/sync rules to an open file.
type injectedFile struct {
	inj  *Injector
	f    File
	name string
}

func (f *injectedFile) Read(p []byte) (int, error) {
	if r := f.inj.check(OpRead); r != nil {
		return 0, &os.PathError{Op: "read", Path: f.name, Err: r.Err}
	}
	return f.f.Read(p)
}

func (f *injectedFile) Write(p []byte) (int, error) {
	if r := f.inj.check(OpWrite); r != nil {
		if r.Partial && len(p) > 1 {
			// Deliver half the buffer before failing — the torn write a
			// crash or full disk leaves behind.
			n, err := f.f.Write(p[: len(p)/2 : len(p)/2])
			if err != nil {
				return n, err
			}
			return n, &os.PathError{Op: "write", Path: f.name, Err: r.Err}
		}
		return 0, &os.PathError{Op: "write", Path: f.name, Err: r.Err}
	}
	return f.f.Write(p)
}

func (f *injectedFile) Sync() error {
	if r := f.inj.check(OpSync); r != nil {
		return &os.PathError{Op: "sync", Path: f.name, Err: r.Err}
	}
	return f.f.Sync()
}

func (f *injectedFile) Truncate(size int64) error {
	if r := f.inj.check(OpTruncate); r != nil {
		return &os.PathError{Op: "truncate", Path: f.name, Err: r.Err}
	}
	return f.f.Truncate(size)
}

// Seek is passthrough: it only moves the file cursor, so there is no
// interesting fault to inject (a failed seek would mask the write or
// truncate fault a test actually cares about).
func (f *injectedFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *injectedFile) Close() error { return f.f.Close() }

// Clock abstracts time for the store's circuit-breaker backoff, so
// tests drive recovery deterministically instead of sleeping.
type Clock interface {
	Now() time.Time
}

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// SystemClock returns the real clock.
func SystemClock() Clock { return systemClock{} }

// FakeClock is a manually advanced Clock for tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at t0.
func NewFakeClock(t0 time.Time) *FakeClock { return &FakeClock{t: t0} }

func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
