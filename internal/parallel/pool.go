package parallel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one unit of pool work. The context is the pool's lifetime
// context, possibly narrowed by the submitter; tasks that can run long
// should observe it.
type Task func(ctx context.Context)

// Pool is a long-lived bounded worker pool with a bounded queue — the
// serving-side sibling of ForEach. Where ForEach fans a fixed batch out
// and returns, a Pool accepts work for the lifetime of a service
// (layoutd's job queue), rejects work beyond its queue depth so the
// caller can apply backpressure (HTTP 429), and drains gracefully on
// shutdown.
type Pool struct {
	tasks   chan queuedTask
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	running atomic.Int64
	// waitHook, when set, observes each task's queue wait (enqueue to
	// worker pickup) — the latency a full pool hides from callers.
	waitHook atomic.Pointer[func(time.Duration)]
}

// queuedTask carries the task plus its enqueue timestamp so workers can
// report queue wait. The channel send happens-before the receive, so
// the worker's reading of enqueued is race-free.
type queuedTask struct {
	fn       Task
	enqueued time.Time
}

// NewPool starts workers goroutines consuming a queue of at most depth
// pending tasks. workers <= 0 resolves via Workers (all cores); depth
// <= 0 means an unbuffered queue: a task is accepted only when a worker
// is already parked in receive, which is inherently racy right after
// construction — services should use depth >= 1.
func NewPool(workers, depth int) *Pool {
	if depth < 0 {
		depth = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		tasks:  make(chan queuedTask, depth),
		ctx:    ctx,
		cancel: cancel,
	}
	n := Workers(workers)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				if h := p.waitHook.Load(); h != nil {
					(*h)(time.Since(t.enqueued))
				}
				p.running.Add(1)
				t.fn(p.ctx)
				p.running.Add(-1)
			}
		}()
	}
	return p
}

// SetQueueWaitHook registers f to observe every task's queue wait, e.g.
// feeding a layoutd_queue_wait_seconds histogram. Safe to call at any
// time; nil clears the hook.
func (p *Pool) SetQueueWaitHook(f func(wait time.Duration)) {
	if f == nil {
		p.waitHook.Store(nil)
		return
	}
	p.waitHook.Store(&f)
}

// TrySubmit enqueues t without blocking. It reports false when the
// queue is full or the pool has been shut down — the backpressure
// signal the caller turns into a 429.
func (p *Pool) TrySubmit(t Task) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- queuedTask{fn: t, enqueued: time.Now()}:
		return true
	default:
		return false
	}
}

// QueueDepth returns the number of tasks accepted but not yet started.
func (p *Pool) QueueDepth() int { return len(p.tasks) }

// Running returns the number of tasks currently executing.
func (p *Pool) Running() int { return int(p.running.Load()) }

// AbandonGrace is how long Shutdown waits for in-flight tasks to
// honor cancellation after its context expires, before it abandons
// them. Variable so tests can tighten it.
var AbandonGrace = 2 * time.Second

// Shutdown stops accepting work, lets queued and in-flight tasks drain,
// and returns once every worker has exited. If ctx expires first, the
// pool context handed to tasks is cancelled (so cooperative tasks stop
// early) and the workers get AbandonGrace to exit; a task that ignores
// cancellation is then abandoned — Shutdown returns an error naming the
// wedged workers instead of hanging the caller's SIGTERM path forever.
// Shutdown is idempotent.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		p.cancel()
		return nil
	case <-ctx.Done():
	}
	p.cancel() // ask in-flight tasks to stop
	select {
	case <-done:
		return ctx.Err()
	case <-time.After(AbandonGrace):
		return fmt.Errorf("abandoning %d wedged worker(s) that ignored cancellation: %w",
			p.Running(), ctx.Err())
	}
}
