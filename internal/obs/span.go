package obs

import (
	"context"
	"sync"
	"time"
)

// DefaultSpanCapacity bounds a Recorder when the caller passes 0: large
// enough for every phase of one optimization job with headroom, small
// enough that a malicious or pathological job cannot grow memory.
const DefaultSpanCapacity = 128

// maxSpanAttrs is the fixed attribute capacity per span; attributes
// beyond it are silently ignored (the hot path never allocates).
const maxSpanAttrs = 4

// Attr is one integer span attribute (bytes processed, items pruned...).
type Attr struct {
	Key   string
	Value int64
}

// SpanData is one recorded span: a named interval relative to the
// recorder's epoch. Dur < 0 marks a span that has started but not ended.
type SpanData struct {
	Name  string
	Start time.Duration // offset from Recorder.Begin()
	Dur   time.Duration // -1 while in progress
	Attrs [maxSpanAttrs]Attr
	NAttr int
}

// Recorder is a bounded per-job span buffer. The capacity is fixed at
// construction: recording within capacity is allocation-free, and spans
// beyond it are dropped and counted rather than grown — a wedged or
// looping job cannot turn its own telemetry into a memory leak.
//
// A Recorder is safe for concurrent use (pipeline phases may overlap
// across pool workers).
type Recorder struct {
	mu      sync.Mutex
	begin   time.Time
	spans   []SpanData
	dropped int64
	onDrop  func()
}

// NewRecorder creates a recorder with the given span capacity (0 means
// DefaultSpanCapacity) whose epoch is now.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &Recorder{begin: time.Now(), spans: make([]SpanData, 0, capacity)}
}

// SetDropHook registers f to be called once per dropped span (e.g. a
// registry counter's Inc). Call before recording starts.
func (r *Recorder) SetDropHook(f func()) { r.onDrop = f }

// Begin returns the recorder's epoch: span Start offsets are relative
// to it.
func (r *Recorder) Begin() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.begin
}

// Reset empties the recorder and moves its epoch to now, keeping the
// buffer capacity. For recorder reuse across jobs.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.begin = time.Now()
	r.spans = r.spans[:0]
	r.dropped = 0
	r.mu.Unlock()
}

// Snapshot returns a copy of the recorded spans (in start order) and
// the number of spans dropped by the capacity bound.
func (r *Recorder) Snapshot() ([]SpanData, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanData, len(r.spans))
	copy(out, r.spans)
	return out, r.dropped
}

// Dropped returns the number of spans lost to the capacity bound.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Record adds an externally timed span (e.g. queue wait measured from
// timestamps the recorder did not observe).
func (r *Recorder) Record(name string, start time.Time, d time.Duration) {
	r.mu.Lock()
	if len(r.spans) == cap(r.spans) {
		r.dropped++
		hook := r.onDrop
		r.mu.Unlock()
		if hook != nil {
			hook()
		}
		return
	}
	idx := len(r.spans)
	r.spans = r.spans[:idx+1]
	sd := &r.spans[idx]
	sd.Name = name
	sd.Start = start.Sub(r.begin)
	sd.Dur = d
	sd.NAttr = 0
	r.mu.Unlock()
}

// startSpan reserves a slot and returns its index, or -1 when the
// buffer is full (the span is dropped and counted).
func (r *Recorder) startSpan(name string, t time.Time) int32 {
	r.mu.Lock()
	if len(r.spans) == cap(r.spans) {
		r.dropped++
		hook := r.onDrop
		r.mu.Unlock()
		if hook != nil {
			hook()
		}
		return -1
	}
	idx := int32(len(r.spans))
	r.spans = r.spans[:idx+1]
	sd := &r.spans[idx]
	sd.Name = name
	sd.Start = t.Sub(r.begin)
	sd.Dur = -1
	sd.NAttr = 0
	r.mu.Unlock()
	return idx
}

// Span is a handle to one in-progress span. The zero value (no recorder
// on the context) is a valid no-op: End and SetAttr do nothing, so
// instrumented code never branches on whether telemetry is attached.
type Span struct {
	rec   *Recorder
	idx   int32
	start time.Time
}

// StartSpan begins a named span recorded into ctx's Recorder. When the
// context carries no recorder the returned Span is a no-op and no clock
// is read. The StartSpan/End pair allocates nothing.
func StartSpan(ctx context.Context, name string) Span {
	rec := RecorderFrom(ctx)
	if rec == nil {
		return Span{idx: -1}
	}
	t := time.Now()
	return Span{rec: rec, idx: rec.startSpan(name, t), start: t}
}

// End completes the span, recording its duration.
func (s Span) End() {
	if s.rec == nil || s.idx < 0 {
		return
	}
	d := time.Since(s.start)
	s.rec.mu.Lock()
	s.rec.spans[s.idx].Dur = d
	s.rec.mu.Unlock()
}

// SetAttr attaches an integer attribute to the span. Attributes beyond
// the fixed per-span capacity are dropped.
func (s Span) SetAttr(key string, v int64) {
	if s.rec == nil || s.idx < 0 {
		return
	}
	s.rec.mu.Lock()
	sd := &s.rec.spans[s.idx]
	if sd.NAttr < maxSpanAttrs {
		sd.Attrs[sd.NAttr] = Attr{Key: key, Value: v}
		sd.NAttr++
	}
	s.rec.mu.Unlock()
}
