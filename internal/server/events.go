package server

import (
	"net/http"
	"sync"
	"time"

	"codelayout/internal/obs"
)

// The structured event log: a bounded ring of cluster and durability
// state transitions — peer up/degraded/down, store breaker trips and
// recoveries, blob quarantines, anti-entropy repairs, replication
// drops — served newest-first at GET /v1/debug/events. Each recorded
// event also increments layoutd_events_total{kind}, so dashboards see
// rates and the ring holds the narrative. Like the debug-jobs ring,
// it is an always-on flight recorder with a hard memory bound.

// DefaultEventRing bounds the retained events when Config.EventRing
// is zero.
const DefaultEventRing = 256

// Event kinds. The store-owned kinds (breaker_trip, breaker_recover,
// quarantine) arrive through store.SetEventHook with these same
// strings.
const (
	eventPeerUp          = "peer_up"
	eventPeerDegraded    = "peer_degraded"
	eventPeerDown        = "peer_down"
	eventSweepRepair     = "sweep_repair"
	eventReplicationDrop = "replication_drop"
)

// clusterEvent is one entry in the event ring.
type clusterEvent struct {
	Seq    int64  `json:"seq"`
	UnixMS int64  `json:"unix_ms"`
	Kind   string `json:"kind"`
	Node   string `json:"node,omitempty"` // the peer the event concerns, if any
	Detail string `json:"detail,omitempty"`
}

// eventRing is a fixed-size, mutex-guarded ring of clusterEvents.
// record is safe from any goroutine, including hook callbacks holding
// other subsystems' locks — it only touches the ring and a counter.
type eventRing struct {
	mu      sync.Mutex
	buf     []clusterEvent
	next    int
	n       int
	seq     int64
	counter *obs.CounterVec // layoutd_events_total{kind}; set once at wiring
}

func newEventRing(size int) *eventRing {
	if size <= 0 {
		size = DefaultEventRing
	}
	return &eventRing{buf: make([]clusterEvent, size)}
}

func (r *eventRing) record(kind, node, detail string) {
	now := time.Now().UnixMilli()
	r.mu.Lock()
	r.seq++
	r.buf[r.next] = clusterEvent{Seq: r.seq, UnixMS: now, Kind: kind, Node: node, Detail: detail}
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	c := r.counter
	r.mu.Unlock()
	if c != nil {
		c.With(kind).Inc()
	}
}

// snapshot returns the retained events, newest first.
func (r *eventRing) snapshot() []clusterEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]clusterEvent, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// handleDebugEvents is GET /v1/debug/events: the bounded ring of state
// transitions, newest first.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]clusterEvent{"events": s.events.snapshot()})
}

// handleDebugRuntime is GET /v1/debug/runtime: the runtime-telemetry
// sampler's bounded ring, newest first, plus its tick interval.
func (s *Server) handleDebugRuntime(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		IntervalMS int64               `json:"interval_ms"`
		Samples    []obs.RuntimeSample `json:"samples"`
	}{
		IntervalMS: s.runtime.Interval().Milliseconds(),
		Samples:    s.runtime.Snapshot(),
	})
}
