package footprint

// NewCurveNaive computes the average footprint curve by enumerating every
// window of every length — O(n^2) time. It is the reference
// implementation the tests compare NewCurve against, and is exported so
// the model-validation benches can quantify the speedup of the
// closed-form computation.
func NewCurveNaive(syms []int32, weights []int32) *Curve {
	n := len(syms)
	c := &Curve{FP: make([]float64, n+1), N: n}
	if n == 0 {
		return c
	}
	w := func(s int32) float64 {
		if weights == nil {
			return 1
		}
		return float64(weights[s])
	}
	seenAll := make(map[int32]struct{})
	for _, s := range syms {
		if _, ok := seenAll[s]; !ok {
			seenAll[s] = struct{}{}
			c.Total += w(s)
		}
	}
	for win := 1; win <= n; win++ {
		var sum float64
		for start := 0; start+win <= n; start++ {
			seen := make(map[int32]struct{}, win)
			var fp float64
			for k := start; k < start+win; k++ {
				s := syms[k]
				if _, ok := seen[s]; !ok {
					seen[s] = struct{}{}
					fp += w(s)
				}
			}
			sum += fp
		}
		c.FP[win] = sum / float64(n-win+1)
	}
	return c
}
