package cachesim

import (
	"codelayout/internal/interp"
	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// interpRun executes p with the fixed test seed and returns its block
// trace.
func interpRun(p *ir.Program) (*trace.Trace, error) {
	res, err := interp.Run(p, interp.Options{Seed: 1})
	if err != nil {
		return nil, err
	}
	return res.Blocks, nil
}
