// Command layoutopt runs one of the paper's four code-layout optimizers
// on a suite program and reports the solo-run effect: the transformation
// report, the instruction-cache miss ratios before and after on both
// measurement paths, and the timed speedup.
//
// Usage:
//
//	layoutopt -prog 445.gobmk -opt bb-affinity
//	layoutopt -prog 458.sjeng -opt all
package main

import (
	"flag"
	"fmt"
	"log"

	"codelayout/internal/core"
	"codelayout/internal/experiments"
	"codelayout/internal/profiling"
	"codelayout/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layoutopt: ")
	prog := flag.String("prog", "445.gobmk", "suite program name (e.g. 445.gobmk)")
	optName := flag.String("opt", "all", "optimizer: func-affinity, bb-affinity, func-trg, bb-trg, func-callgraph, func-cmg, bb-affinity-intra, or all")
	workers := flag.Int("workers", 0, "analysis concurrency: 0 = all cores, 1 = serial")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			log.Print(err)
		}
	}()

	w := experiments.NewWorkspace()
	w.SetWorkers(*workers)
	b, err := w.Bench(*prog)
	if err != nil {
		log.Fatal(err)
	}

	baseHW, err := b.HWSolo(experiments.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	baseSim, err := b.SimSolo(experiments.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d funcs, %d blocks, %d static bytes\n",
		b.Name(), b.Prog.NumFuncs(), b.Prog.NumBlocks(), b.Prog.StaticBytes())
	fmt.Printf("baseline solo: miss %s (hw) / %s (sim), %d cycles\n\n",
		stats.Pct(baseHW.Counters.ICacheMissRatio()), stats.Pct(baseSim), baseHW.Thread.Cycles)

	t := &stats.Table{Header: []string{
		"optimizer", "seq", "overhead(B)", "miss(hw)", "miss(sim)", "miss red.(hw)", "speedup",
	}}
	for _, o := range core.AllWithBaselines() {
		if *optName != "all" && o.Name() != *optName {
			continue
		}
		o.Workers = *workers
		l, rep, err := o.Optimize(b.Train)
		if err != nil {
			log.Fatalf("%s: %v", o.Name(), err)
		}
		if err := l.Validate(); err != nil {
			log.Fatalf("%s: invalid layout: %v", o.Name(), err)
		}
		hw, err := b.HWSolo(o.Name())
		if err != nil {
			log.Fatal(err)
		}
		sim, err := b.SimSolo(o.Name())
		if err != nil {
			log.Fatal(err)
		}
		t.Add(o.Name(),
			fmt.Sprintf("%d", rep.SeqLen),
			fmt.Sprintf("%d", rep.JumpOverheadBytes),
			stats.Pct(hw.Counters.ICacheMissRatio()),
			stats.Pct(sim),
			stats.Pct(stats.Reduction(baseHW.Counters.ICacheMissRatio(), hw.Counters.ICacheMissRatio())),
			fmt.Sprintf("%.3fx", float64(baseHW.Thread.Cycles)/float64(hw.Thread.Cycles)))
	}
	fmt.Print(t.String())
}
