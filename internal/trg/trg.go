// Package trg implements the temporal relationship graph model of §II-C:
// Gloy & Smith's TRG construction adapted by the paper, and the paper's
// own TRG reduction (Algorithm 2) that produces a new code order instead
// of inserting inter-function space.
//
// In the TRG (Definition 6), nodes are code blocks and an edge's weight
// counts potential cache conflicts: the times two successive occurrences
// of one endpoint are interleaved with at least one occurrence of the
// other, and vice versa. Construction only examines interleavings inside
// a bounded footprint window (the paper follows Gloy & Smith's advice of
// twice the cache size).
package trg

import (
	"sort"

	"codelayout/internal/parallel"
	"codelayout/internal/stackdist"
	"codelayout/internal/trace"
)

// Graph is a weighted undirected temporal relationship graph.
type Graph struct {
	weights map[int64]int64
	// nodes lists the distinct symbols in first-occurrence order; the
	// order makes every downstream step deterministic.
	nodes []int32
	seen  map[int32]bool
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{weights: make(map[int64]int64), seen: make(map[int32]bool)}
}

func pairKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(int32(b))&0xffffffff
}

// AddNode registers a node even if it never gains an edge, so that the
// reduction's output remains a permutation of all code blocks.
func (g *Graph) AddNode(s int32) {
	if !g.seen[s] {
		g.seen[s] = true
		g.nodes = append(g.nodes, s)
	}
}

// AddWeight adds delta to the weight of edge (a, b).
func (g *Graph) AddWeight(a, b int32, delta int64) {
	if a == b {
		return
	}
	g.AddNode(a)
	g.AddNode(b)
	g.weights[pairKey(a, b)] += delta
}

// Weight returns the weight of edge (a, b), 0 if absent.
func (g *Graph) Weight(a, b int32) int64 { return g.weights[pairKey(a, b)] }

// Nodes returns the node list in first-occurrence order.
func (g *Graph) Nodes() []int32 { return g.nodes }

// NumEdges returns the number of edges with non-zero weight.
func (g *Graph) NumEdges() int {
	n := 0
	for _, w := range g.weights {
		if w != 0 {
			n++
		}
	}
	return n
}

// Edge is one weighted edge, used by tests and diagnostics.
type Edge struct {
	A, B   int32
	Weight int64
}

// Edges returns all edges sorted by descending weight, then by node IDs.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.weights))
	for k, w := range g.weights {
		if w == 0 {
			continue
		}
		out = append(out, Edge{A: int32(k >> 32), B: int32(k & 0xffffffff), Weight: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Build constructs the TRG of a code trace. windowBlocks bounds the
// examined interleaving window in distinct code blocks (the footprint
// window "2C" of §II-C divided by the uniform block size); 0 means
// unbounded. At each access, if the block's previous occurrence lies
// within the window, every distinct block interleaved between the two
// occurrences receives one conflict count — the hash-table-plus-list
// stack makes the search O(1) per step as the paper describes.
//
// Build uses every available core; the graph is identical to the serial
// construction (see BuildWorkers).
func Build(t *trace.Trace, windowBlocks int) *Graph {
	return BuildWorkers(t, windowBlocks, 0)
}

// BuildWorkers is Build with bounded concurrency: 0 workers means every
// available core, 1 pins the serial reference path. The trace is split
// into contiguous shards; each shard warms a private LRU stack by
// replaying the span holding the last windowBlocks distinct symbols
// before it, so its per-access interleaving views equal the full-trace
// simulation, and the per-shard partial graphs merge deterministically:
// edge weights sum (addition commutes) and shard node lists concatenate
// in trace order, reproducing the global first-occurrence node order.
func BuildWorkers(t *trace.Trace, windowBlocks, workers int) *Graph {
	tt := t.Trimmed()
	g := NewGraph()
	if len(tt.Syms) == 0 {
		return g
	}
	maxSym := tt.MaxSym()
	limit := windowBlocks
	if limit <= 0 {
		limit = int(maxSym) + 1
	}
	// A shard must dwarf its warm-up replay (up to `limit` distinct
	// symbols) for sharding to pay; Chunks collapses to one shard when
	// the trace is too short to split.
	chunks := parallel.Chunks(len(tt.Syms), parallel.Workers(workers), 4*limit)
	if len(chunks) == 1 {
		buildShard(g, tt.Syms, maxSym, limit, 0, len(tt.Syms))
		return g
	}
	partials := make([]*Graph, len(chunks))
	_ = parallel.ForEach(workers, len(chunks), func(i int) error {
		p := NewGraph()
		buildShard(p, tt.Syms, maxSym, limit, chunks[i][0], chunks[i][1])
		partials[i] = p
		return nil
	})
	for _, p := range partials {
		for _, s := range p.nodes {
			g.AddNode(s)
		}
		for k, w := range p.weights {
			g.weights[k] += w
		}
	}
	return g
}

// buildShard accumulates the conflict counts of accesses [lo, hi) into
// g, warming the LRU stack so the shard sees exactly the stack prefix
// the full simulation would.
func buildShard(g *Graph, syms []int32, maxSym int32, limit, lo, hi int) {
	stack := stackdist.NewLRUStack(maxSym)
	for i := warmStart(syms, lo, limit); i < lo; i++ {
		stack.Access(syms[i])
	}
	between := make([]int32, 0, min(limit, hi-lo))
	for i := lo; i < hi; i++ {
		cur := syms[i]
		g.AddNode(cur)
		between = between[:0]
		found := false
		stack.TopK(limit, func(x int32) bool {
			if x == cur {
				found = true
				return false
			}
			between = append(between, x)
			return true
		})
		if found {
			for _, x := range between {
				g.AddWeight(cur, x, 1)
			}
		}
		stack.Access(cur)
	}
}

// warmStart returns the largest p <= lo such that syms[p:lo] contains
// need distinct symbols (or 0 if the prefix holds fewer): replaying
// syms[p:lo] reproduces the full simulation's top-need stack prefix,
// which is all TopK(limit) ever examines.
func warmStart(syms []int32, lo, need int) int {
	seen := make(map[int32]struct{}, need)
	p := lo
	for p > 0 && len(seen) < need {
		p--
		seen[syms[p]] = struct{}{}
	}
	return p
}
