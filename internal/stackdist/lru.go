// Package stackdist implements the stack-processing substrate of §II-F of
// the paper. Both locality models maintain an LRU stack over the code
// trace; the paper's implementation uses "a hash table plus a link list"
// (after the Linux kernel's virtual-page management) so that the stack can
// be searched in O(1) and its hot prefix scanned cheaply. This package
// provides that structure (LRUStack) plus an O(N log N) reuse-distance
// measurement built on a Fenwick tree, following the classic Mattson
// stack-simulation formulation.
package stackdist

// node is one entry of the intrusive doubly-linked stack list.
type node struct {
	sym        int32
	prev, next int32 // node indices; -1 terminates
}

// LRUStack is an LRU stack of symbols: the most recently accessed symbol
// is on top. Lookup is O(1) via a dense index keyed by symbol ID; the
// linked list preserves recency order so callers can scan the top-w
// prefix, which is what the affinity analysis and TRG construction need.
//
// The zero value is not usable; call NewLRUStack.
type LRUStack struct {
	nodes []node
	// pos maps symbol -> node index, or -1 if the symbol was never seen.
	pos  []int32
	head int32
	tail int32
	n    int
}

// NewLRUStack creates a stack for symbols in [0, maxSym].
func NewLRUStack(maxSym int32) *LRUStack {
	pos := make([]int32, maxSym+1)
	for i := range pos {
		pos[i] = -1
	}
	return &LRUStack{pos: pos, head: -1, tail: -1}
}

// Len returns the number of distinct symbols on the stack.
func (s *LRUStack) Len() int { return s.n }

// Contains reports whether sym has been accessed before.
func (s *LRUStack) Contains(sym int32) bool { return s.pos[sym] >= 0 }

// Access moves sym to the top of the stack and reports whether this is
// the first access to sym.
func (s *LRUStack) Access(sym int32) (first bool) {
	idx := s.pos[sym]
	if idx < 0 {
		idx = int32(len(s.nodes))
		s.nodes = append(s.nodes, node{sym: sym, prev: -1, next: s.head})
		s.pos[sym] = idx
		if s.head >= 0 {
			s.nodes[s.head].prev = idx
		} else {
			s.tail = idx
		}
		s.head = idx
		s.n++
		return true
	}
	if idx == s.head {
		return false
	}
	// Unlink.
	nd := &s.nodes[idx]
	if nd.prev >= 0 {
		s.nodes[nd.prev].next = nd.next
	}
	if nd.next >= 0 {
		s.nodes[nd.next].prev = nd.prev
	} else {
		s.tail = nd.prev
	}
	// Push on top.
	nd.prev = -1
	nd.next = s.head
	s.nodes[s.head].prev = idx
	s.head = idx
	return false
}

// TopK visits up to k symbols from the top of the stack (most recent
// first), stopping early if visit returns false.
func (s *LRUStack) TopK(k int, visit func(sym int32) bool) {
	idx := s.head
	for i := 0; i < k && idx >= 0; i++ {
		if !visit(s.nodes[idx].sym) {
			return
		}
		idx = s.nodes[idx].next
	}
}

// AppendTopK appends up to k symbols from the top of the stack (most
// recent first) to dst and returns the extended slice. It is the
// amortization-friendly form of TopK: the analysis kernels take one
// snapshot of the hot stack prefix per access into a reusable buffer and
// then scan it as a plain slice, instead of paying an indirect call per
// visited element.
func (s *LRUStack) AppendTopK(dst []int32, k int) []int32 {
	idx := s.head
	nodes := s.nodes
	for i := 0; i < k && idx >= 0; i++ {
		dst = append(dst, nodes[idx].sym)
		idx = nodes[idx].next
	}
	return dst
}

// AppendTopKUntil appends symbols from the top of the stack (most recent
// first) to dst until stop is met (excluded), k symbols were appended, or
// the stack is exhausted, reporting whether stop was met. It is the
// snapshot form of the TRG construction's interleaving scan: everything
// above the current symbol's previous occurrence is interleaved with it.
func (s *LRUStack) AppendTopKUntil(dst []int32, k int, stop int32) ([]int32, bool) {
	idx := s.head
	nodes := s.nodes
	for i := 0; i < k && idx >= 0; i++ {
		sym := nodes[idx].sym
		if sym == stop {
			return dst, true
		}
		dst = append(dst, sym)
		idx = nodes[idx].next
	}
	return dst, false
}

// Reset empties the stack and re-sizes its symbol index for symbols in
// [0, maxSym], keeping backing capacity so a pooled stack can be reused
// across analyses without reallocating.
func (s *LRUStack) Reset(maxSym int32) {
	n := int(maxSym) + 1
	if cap(s.pos) >= n {
		s.pos = s.pos[:n]
	} else {
		s.pos = make([]int32, n)
	}
	for i := range s.pos {
		s.pos[i] = -1
	}
	s.nodes = s.nodes[:0]
	s.head, s.tail, s.n = -1, -1, 0
}

// Top returns the symbol on top of the stack, or -1 if empty.
func (s *LRUStack) Top() int32 {
	if s.head < 0 {
		return -1
	}
	return s.nodes[s.head].sym
}

// DepthOf returns the 1-based depth of sym (1 = top of stack) by walking
// the list, or -1 if sym was never accessed. This is O(depth); the
// Distances function below measures all depths in O(N log N) instead.
func (s *LRUStack) DepthOf(sym int32) int {
	idx := s.pos[sym]
	if idx < 0 {
		return -1
	}
	d := 1
	for cur := s.head; cur >= 0; cur = s.nodes[cur].next {
		if cur == idx {
			return d
		}
		d++
	}
	return -1
}
