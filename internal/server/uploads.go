package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"

	"codelayout/internal/store"
)

// Resumable chunked uploads (registered only with Config.Uploads set):
//
//	POST   /v1/uploads                create a session → {id, offset: 0}
//	GET    /v1/uploads/{id}           current durable offset
//	PATCH  /v1/uploads/{id}           append bytes at Upload-Offset
//	DELETE /v1/uploads/{id}           discard the session
//	POST   /v1/uploads/{id}/finalize  submit the spooled trace as a job
//	       ?prog=<program>&opt=<optimizer>[&prune=<topN>]
//
// Every PATCH must carry an Upload-Offset header equal to the session's
// current offset; a mismatch gets 409 with the durable offset in both
// the Upload-Offset response header and the JSON body, and a client
// whose PATCH died mid-flight re-GETs the offset and resumes from
// there. Appends are all-or-nothing (store.Upload), so the reported
// offset is always a durable prefix of the logical stream.
//
// In a cluster these endpoints never forward: the spool lives on the
// node that created the session, so the whole upload sequence targets
// one node; the finalized job's result is content-addressed and
// replicates like any other.

// uploadView is the wire representation of an upload session. SHA256 is
// the digest of the durable prefix, so a client resuming after a daemon
// (or client) crash can verify the bytes the server holds are the bytes
// it sent; Recovered marks sessions adopted from a previous process.
type uploadView struct {
	ID        string `json:"id"`
	Offset    int64  `json:"offset"`
	SHA256    string `json:"sha256,omitempty"`
	Recovered bool   `json:"recovered,omitempty"`
}

func (s *Server) handleUploadCreate(w http.ResponseWriter, r *http.Request) {
	up, err := s.uploads.Create()
	if err != nil {
		if errors.Is(err, store.ErrTooManySessions) {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err)
			return
		}
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	s.logger.Info("upload session created", "upload", up.ID)
	writeJSON(w, http.StatusCreated, uploadView{ID: up.ID, Offset: 0})
}

func (s *Server) handleUploadStatus(w http.ResponseWriter, r *http.Request) {
	up, ok := s.uploads.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("unknown upload"))
		return
	}
	writeJSON(w, http.StatusOK, uploadView{
		ID:        up.ID,
		Offset:    up.Offset(),
		SHA256:    up.DigestHex(),
		Recovered: up.Recovered,
	})
}

func (s *Server) handleUploadPatch(w http.ResponseWriter, r *http.Request) {
	up, ok := s.uploads.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("unknown upload"))
		return
	}
	offStr := r.Header.Get("Upload-Offset")
	off, err := strconv.ParseInt(offStr, 10, 64)
	if offStr == "" || err != nil || off < 0 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing or invalid Upload-Offset header %q", offStr))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	newOff, resumed, err := up.Append(off, body)
	// The durable offset rides every response so a client can resync
	// without a separate GET.
	w.Header().Set("Upload-Offset", strconv.FormatInt(newOff, 10))
	switch {
	case err == nil:
		if resumed {
			s.metrics.uploadResumes.Inc()
			s.logger.Info("upload resumed", "upload", up.ID, "offset", off)
		}
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, store.ErrOffsetMismatch) || errors.Is(err, store.ErrUploadSealed):
		httpError(w, http.StatusConflict, fmt.Errorf("%w (current offset %d)", err, newOff))
	case errors.Is(err, store.ErrUploadTooLarge):
		httpError(w, http.StatusRequestEntityTooLarge, err)
	default:
		// Mid-body failure: the spool rolled back to newOff. The client
		// usually never sees this response (its connection is what
		// died); it re-GETs the offset and retries.
		httpError(w, badBodyStatus(err), err)
	}
}

func (s *Server) handleUploadDelete(w http.ResponseWriter, r *http.Request) {
	if !s.uploads.Discard(r.PathValue("id")) {
		httpError(w, http.StatusNotFound, errors.New("unknown upload"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleUploadFinalize seals the session and submits its spooled bytes
// as an optimization job — streamed from disk through the feed-mode
// pipeline when supported (the spool becomes the job's replay source
// directly; nothing is re-buffered), fully decoded otherwise.
func (s *Server) handleUploadFinalize(w http.ResponseWriter, r *http.Request) {
	ctx, sub := s.newSubmissionCtx(r)
	q := r.URL.Query()
	if err := sub.resolve(s, q.Get("prog"), q.Get("opt"), q.Get("prune")); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	id := r.PathValue("id")
	path, size, err := s.uploads.Seal(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if size == 0 {
		os.Remove(path)
		httpError(w, http.StatusBadRequest, errors.New("upload is empty"))
		return
	}
	f, err := os.Open(path)
	if err != nil {
		os.Remove(path)
		httpError(w, http.StatusInternalServerError, fmt.Errorf("opening sealed upload: %w", err))
		return
	}
	defer f.Close()
	sub.logger.Info("upload finalized", "upload", id, "bytes", size,
		"prog", sub.progName, "opt", sub.optName)

	if s.canStream(sub) {
		// The sealed spool is already on disk: no tee, and the consumer
		// takes ownership of the file for its replay pass.
		s.streamIngest(ctx, w, f, nil, path, sub)
		return
	}
	tr, hr, err := decodeUpload(ctx, f)
	os.Remove(path)
	if err != nil {
		sub.logger.Warn("trace decode failed", "upload", id, "error", err)
		httpError(w, badBodyStatus(err), err)
		return
	}
	s.finishBufferedSubmit(ctx, w, sub, tr, hr.Sum(), hr.BytesRead())
}
