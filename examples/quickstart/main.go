// Quickstart: profile a program, optimize its code layout with
// basic-block affinity, and measure the instruction-cache effect — the
// whole pipeline of the paper in about forty lines.
package main

import (
	"fmt"
	"log"

	"codelayout"
)

func main() {
	log.SetFlags(0)

	// 1. Load a benchmark of the synthetic SPEC-like suite.
	prog, err := codelayout.LoadBenchmark("445.gobmk")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program %s: %d functions, %d basic blocks, %d bytes of code\n",
		prog.Name, prog.NumFuncs(), prog.NumBlocks(), prog.StaticBytes())

	// 2. Profile it on the training input (the paper's "test data set").
	prof, err := codelayout.ProfileProgram(prog, codelayout.TrainSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d block executions\n", prof.Steps)

	// 3. Optimize: inter-procedural basic-block reordering driven by the
	// w-window affinity hierarchy — the paper's best optimizer.
	opt, report, err := codelayout.BBAffinity().Optimize(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer %s: ordered %d blocks, retained %.1f%% of the trace, %d bytes of jump overhead\n",
		report.Optimizer, report.SeqLen, 100*report.Retention, report.JumpOverheadBytes)

	// 4. Measure on the evaluation input (the "reference input") through
	// the experiment workspace, which provides both measurement paths.
	w := codelayout.NewWorkspace()
	bench, err := w.Bench("445.gobmk")
	if err != nil {
		log.Fatal(err)
	}
	baseHW, err := bench.HWSolo("original")
	if err != nil {
		log.Fatal(err)
	}
	optHW, err := bench.HWSolo("bb-affinity")
	if err != nil {
		log.Fatal(err)
	}
	baseMR := baseHW.Counters.ICacheMissRatio()
	optMR := optHW.Counters.ICacheMissRatio()
	fmt.Printf("\nsolo run (hardware counters):\n")
	fmt.Printf("  original:    miss ratio %.2f%%, %d cycles\n", 100*baseMR, baseHW.Thread.Cycles)
	fmt.Printf("  bb-affinity: miss ratio %.2f%%, %d cycles\n", 100*optMR, optHW.Thread.Cycles)
	fmt.Printf("  miss reduction %.1f%%, speedup %.3fx\n",
		100*(baseMR-optMR)/baseMR,
		float64(baseHW.Thread.Cycles)/float64(optHW.Thread.Cycles))

	_ = opt // the layout itself: addresses for every basic block
}
