package experiments

import (
	"fmt"
	"sort"

	"codelayout/internal/parallel"
	"codelayout/internal/stats"
)

// OptOptRow is one program's defensiveness+politeness measurement.
type OptOptRow struct {
	Name string
	// Peer is the co-run partner (itself in the paper's
	// optimized-optimized self-pairings; here each of the three most
	// improving programs is paired with the other two and itself).
	Peer string
	// OptBase is the primary's co-run speedup when only the primary is
	// optimized (optimized+baseline vs baseline+baseline).
	OptBase float64
	// OptOpt is the speedup when both are optimized
	// (optimized+optimized vs baseline+baseline).
	OptOpt float64
}

// ExtraGain returns the additional improvement from also optimizing the
// peer — the quantity §III-F reports as negligible.
func (r OptOptRow) ExtraGain() float64 { return r.OptOpt/r.OptBase - 1 }

// OptOptResult reproduces §III-F: combining defensiveness and
// politeness. The paper selects the three most improving programs from
// function affinity and compares optimized-optimized co-run with
// optimized-baseline co-run.
type OptOptResult struct {
	Selected []string
	Rows     []OptOptRow
}

// OptOpt runs the §III-F study, reusing a Table II result to select the
// three most improving programs under function affinity.
func OptOpt(w *Workspace, t2 Table2Result) (OptOptResult, error) {
	var res OptOptResult
	type cand struct {
		name    string
		speedup float64
	}
	var cands []cand
	for _, row := range t2.Rows {
		if row.Optimizer == "func-affinity" && !row.NA {
			cands = append(cands, cand{row.Name, row.AvgSpeedup})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].speedup > cands[j].speedup })
	if len(cands) > 3 {
		cands = cands[:3]
	}
	for _, c := range cands {
		res.Selected = append(res.Selected, c.name)
	}

	const opt = "func-affinity"
	selected, err := w.resolve(res.Selected)
	if err != nil {
		return res, err
	}
	// The (primary, peer) pairings are independent co-run triples; fan
	// them out and keep the serial row order.
	type pairJob struct{ pi, qi int }
	var jobs []pairJob
	for pi := range selected {
		for qi := range selected {
			jobs = append(jobs, pairJob{pi, qi})
		}
	}
	rows, err := parallel.Map(w.Workers(), len(jobs), func(k int) (OptOptRow, error) {
		prim, peer := selected[jobs[k].pi], selected[jobs[k].qi]
		base, err := HWCorunTimed(prim, Baseline, peer, Baseline)
		if err != nil {
			return OptOptRow{}, err
		}
		ob, err := HWCorunTimed(prim, opt, peer, Baseline)
		if err != nil {
			return OptOptRow{}, err
		}
		oo, err := HWCorunTimed(prim, opt, peer, opt)
		if err != nil {
			return OptOptRow{}, err
		}
		return OptOptRow{
			Name:    prim.Name(),
			Peer:    peer.Name(),
			OptBase: float64(base.Primary.Cycles) / float64(ob.Primary.Cycles),
			OptOpt:  float64(base.Primary.Cycles) / float64(oo.Primary.Cycles),
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// AvgExtraGain returns the mean additional gain from optimizing the
// peer too.
func (r OptOptResult) AvgExtraGain() float64 {
	xs := make([]float64, 0, len(r.Rows))
	for _, row := range r.Rows {
		xs = append(xs, row.ExtraGain())
	}
	return stats.Mean(xs)
}

// String renders the study.
func (r OptOptResult) String() string {
	t := &stats.Table{Header: []string{"primary", "peer", "opt+base", "opt+opt", "extra gain"}}
	for _, row := range r.Rows {
		t.Add(row.Name, row.Peer,
			stats.SignedPct(row.OptBase-1),
			stats.SignedPct(row.OptOpt-1),
			stats.SignedPct(row.ExtraGain()))
	}
	return fmt.Sprintf("§III-F: combining defensiveness and politeness (3 most improving programs)\n\n%s\naverage extra gain from optimizing the peer: %s\n",
		t, stats.SignedPct(r.AvgExtraGain()))
}
