package stackdist

// Infinite marks a cold (first) access in a reuse-distance sequence.
const Infinite = -1

// Distances computes the LRU stack distance of every access in the trace:
// the number of distinct symbols accessed since the previous access to
// the same symbol, inclusive of the symbol itself (so an immediate reuse
// has distance 1). First accesses yield Infinite.
//
// The implementation is Bennett-Kruskal style: a Fenwick tree over trace
// positions holds a 1 at the position of each symbol's most recent
// access; the distance of an access at time t whose symbol was last seen
// at time p is the number of marked positions in (p, t] .
func Distances(syms []int32) []int {
	n := len(syms)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	maxSym := int32(0)
	for _, s := range syms {
		if s > maxSym {
			maxSym = s
		}
	}
	last := make([]int, maxSym+1)
	for i := range last {
		last[i] = -1
	}
	bit := newFenwick(n)
	for t, s := range syms {
		p := last[s]
		if p < 0 {
			out[t] = Infinite
		} else {
			// Marked positions in (p, t-1] are the distinct symbols seen
			// strictly between the two accesses; +1 counts s itself.
			out[t] = bit.rangeSum(p+1, t-1) + 1
			bit.add(p, -1)
		}
		bit.add(t, 1)
		last[s] = t
	}
	return out
}

// DistancesNaive is the quadratic reference implementation used to verify
// Distances in tests.
func DistancesNaive(syms []int32) []int {
	out := make([]int, len(syms))
	for t, s := range syms {
		p := -1
		for j := t - 1; j >= 0; j-- {
			if syms[j] == s {
				p = j
				break
			}
		}
		if p < 0 {
			out[t] = Infinite
			continue
		}
		seen := make(map[int32]struct{})
		for j := p + 1; j <= t; j++ {
			seen[syms[j]] = struct{}{}
		}
		out[t] = len(seen)
	}
	return out
}

// Histogram buckets a distance sequence into a histogram: hist[d] counts
// accesses with distance d (d >= 1); the returned cold count is the
// number of Infinite entries.
func Histogram(dists []int) (hist []int64, cold int64) {
	max := 0
	for _, d := range dists {
		if d > max {
			max = d
		}
	}
	hist = make([]int64, max+1)
	for _, d := range dists {
		if d == Infinite {
			cold++
		} else {
			hist[d]++
		}
	}
	return hist, cold
}

// MissRatioCurve converts a stack-distance histogram into the LRU miss
// ratio as a function of cache capacity in symbols: mr[c] is the miss
// ratio of a fully associative LRU cache holding c symbols. mr[0] is 1.
func MissRatioCurve(hist []int64, cold int64, accesses int64) []float64 {
	if accesses == 0 {
		return []float64{1}
	}
	mr := make([]float64, len(hist))
	// misses(c) = cold + sum of accesses with distance > c.
	var tail int64
	for _, h := range hist {
		tail += h
	}
	for c := 0; c < len(hist); c++ {
		if c > 0 {
			tail -= hist[c]
		}
		miss := cold + tail
		if c == 0 {
			miss = accesses
		}
		mr[c] = float64(miss) / float64(accesses)
	}
	return mr
}

// fenwick is a Fenwick (binary indexed) tree over [0, n).
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefixSum returns the sum over [0, i].
func (f *fenwick) prefixSum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum over [lo, hi]; empty if lo > hi.
func (f *fenwick) rangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	s := f.prefixSum(hi)
	if lo > 0 {
		s -= f.prefixSum(lo - 1)
	}
	return s
}
