package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeSampler is an always-on, low-overhead poller over the
// runtime/metrics package: every interval it reads heap size, goroutine
// count, GC activity, and scheduler latency, keeps the latest reading
// for gauge exports, and retains a bounded ring of recent samples for
// GET /v1/debug/runtime. The sample buffers are allocated once and
// reused, so a tick costs a fixed, small number of allocations
// (runtime/metrics reuses histogram buckets across reads) — gated in
// BENCH_PR10.json.

// DefaultRuntimeSampleInterval is the tick period when the configured
// interval is zero.
const DefaultRuntimeSampleInterval = 5 * time.Second

// DefaultRuntimeRing bounds the retained samples when the configured
// ring size is zero: 120 samples x 5s = the last 10 minutes.
const DefaultRuntimeRing = 120

// RuntimeSample is one reading of the Go runtime's vital signs.
type RuntimeSample struct {
	UnixMS            int64 `json:"unix_ms"`
	HeapBytes         int64 `json:"heap_bytes"`
	Goroutines        int64 `json:"goroutines"`
	GCCycles          int64 `json:"gc_cycles"`
	GCPauseP99NS      int64 `json:"gc_pause_p99_ns"`
	SchedLatencyP99NS int64 `json:"sched_latency_p99_ns"`
}

// The runtime/metrics keys the sampler reads, in sample-slice order.
const (
	idxHeap = iota
	idxGoroutines
	idxGCCycles
	idxGCPauses
	idxSchedLat
	numRuntimeSamples
)

var runtimeSampleNames = [numRuntimeSamples]string{
	idxHeap:       "/memory/classes/heap/objects:bytes",
	idxGoroutines: "/sched/goroutines:goroutines",
	idxGCCycles:   "/gc/cycles/total:gc-cycles",
	idxGCPauses:   "/gc/pauses:seconds",
	idxSchedLat:   "/sched/latencies:seconds",
}

// RuntimeSampler polls runtime/metrics into a bounded ring. Create with
// NewRuntimeSampler; Start launches the ticker goroutine, Stop halts it.
// Sample may also be called directly (tests, benchmarks) — it is safe
// concurrently with readers but not with itself.
type RuntimeSampler struct {
	interval time.Duration
	buf      []metrics.Sample // reused across reads

	mu   sync.Mutex
	last RuntimeSample
	ring []RuntimeSample
	next int
	n    int

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewRuntimeSampler builds a sampler with the given tick interval
// (0 means DefaultRuntimeSampleInterval) and ring capacity (0 means
// DefaultRuntimeRing). It does not start the ticker.
func NewRuntimeSampler(interval time.Duration, ringSize int) *RuntimeSampler {
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	if ringSize <= 0 {
		ringSize = DefaultRuntimeRing
	}
	s := &RuntimeSampler{
		interval: interval,
		buf:      make([]metrics.Sample, numRuntimeSamples),
		ring:     make([]RuntimeSample, ringSize),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := range s.buf {
		s.buf[i].Name = runtimeSampleNames[i]
	}
	return s
}

// Interval returns the tick period.
func (s *RuntimeSampler) Interval() time.Duration { return s.interval }

// Start takes an immediate first sample and launches the ticker.
func (s *RuntimeSampler) Start() {
	s.Sample()
	go s.run()
}

// Stop halts the ticker and waits for it to exit. Safe to call more
// than once.
func (s *RuntimeSampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}

func (s *RuntimeSampler) run() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Sample()
		}
	}
}

// Sample takes one reading: read the runtime metrics into the reused
// buffer, derive the sample, and publish it as both the latest value
// and a ring entry.
func (s *RuntimeSampler) Sample() {
	metrics.Read(s.buf)
	sm := RuntimeSample{
		UnixMS:            time.Now().UnixMilli(),
		HeapBytes:         int64(s.buf[idxHeap].Value.Uint64()),
		Goroutines:        int64(s.buf[idxGoroutines].Value.Uint64()),
		GCCycles:          int64(s.buf[idxGCCycles].Value.Uint64()),
		GCPauseP99NS:      histP99NS(s.buf[idxGCPauses].Value.Float64Histogram()),
		SchedLatencyP99NS: histP99NS(s.buf[idxSchedLat].Value.Float64Histogram()),
	}
	s.mu.Lock()
	s.last = sm
	s.ring[s.next] = sm
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	s.mu.Unlock()
}

// Last returns the most recent sample (zero before the first tick).
func (s *RuntimeSampler) Last() RuntimeSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Snapshot returns the retained samples, newest first.
func (s *RuntimeSampler) Snapshot() []RuntimeSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RuntimeSample, 0, s.n)
	for i := 0; i < s.n; i++ {
		idx := (s.next - 1 - i + len(s.ring)) % len(s.ring)
		out = append(out, s.ring[idx])
	}
	return out
}

// histP99NS estimates the 99th percentile of a runtime/metrics duration
// histogram in nanoseconds, taking each crossed bucket's upper bound.
// The runtime's histograms are cumulative over the process lifetime,
// so this is a lifetime p99, cheap and monotonic-friendly — the point
// is spotting pause or latency regressions at a glance, not precision.
func histP99NS(h *metrics.Float64Histogram) int64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := total - total/100 // ceil-ish 99%
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			// Buckets has len(Counts)+1 boundaries; bucket i spans
			// [Buckets[i], Buckets[i+1]). The last upper bound may be
			// +Inf — fall back to the finite lower bound.
			ub := h.Buckets[i+1]
			if ub > 1e18 || ub != ub { // +Inf or NaN guard
				ub = h.Buckets[i]
			}
			if ub < 0 {
				ub = 0
			}
			return int64(ub * 1e9)
		}
	}
	return 0
}
