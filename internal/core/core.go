// Package core assembles the paper's contribution: the whole-program
// code layout optimizers. Each optimizer is a pipeline
//
//	profile (test input) -> trimmed code trace -> popularity pruning ->
//	locality model (w-window affinity or TRG) -> code sequence ->
//	transformation (function or inter-procedural basic-block reordering)
//
// yielding the paper's four optimized binaries: function affinity,
// basic-block affinity, function TRG and basic-block TRG (§II-F).
package core

import (
	"context"
	"fmt"

	"codelayout/internal/affinity"
	"codelayout/internal/cachesim"
	"codelayout/internal/callgraph"
	"codelayout/internal/cmg"
	"codelayout/internal/interp"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/obs"
	"codelayout/internal/progen"
	"codelayout/internal/search"
	"codelayout/internal/trace"
	"codelayout/internal/trg"
)

// Model selects the locality model.
type Model int

const (
	// ModelAffinity is the paper's extended reference affinity (§II-B).
	ModelAffinity Model = iota
	// ModelTRG is the temporal relationship graph (§II-C).
	ModelTRG
	// ModelCMG is the Conflict Miss Graph of Kalamatianos & Kaeli, the
	// TRG sibling named in the paper's related work; a comparison
	// baseline.
	ModelCMG
	// ModelCallGraph is Pettis-Hansen call-graph placement, the
	// classic procedure-positioning baseline; function granularity
	// only.
	ModelCallGraph
	// ModelSearch is direct local search over function orders against
	// the TRG-weighted conflict cost — the Petrank-Rawitz-wall
	// reference point of §III-D; function granularity only.
	ModelSearch
)

func (m Model) String() string {
	switch m {
	case ModelAffinity:
		return "affinity"
	case ModelTRG:
		return "trg"
	case ModelCMG:
		return "cmg"
	case ModelCallGraph:
		return "callgraph"
	case ModelSearch:
		return "search"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Granularity selects the reordered code unit.
type Granularity int

const (
	// GranFunction reorders whole functions (§II-D).
	GranFunction Granularity = iota
	// GranBasicBlock reorders basic blocks across functions (§II-E).
	GranBasicBlock
)

func (g Granularity) String() string {
	switch g {
	case GranFunction:
		return "func"
	case GranBasicBlock:
		return "bb"
	default:
		return fmt.Sprintf("gran(%d)", int(g))
	}
}

// Input seeds: the training seed stands in for SPEC's test input (used
// for profiling) and the evaluation seed for the reference input (used
// for measurement), so an optimizer is never judged on its training
// trace.
const (
	TrainSeed = 101
	EvalSeed  = 202
)

// DefaultPruneTopN is the paper's trace-pruning bound: "selecting the
// 10,000 most frequently executed basic blocks".
const DefaultPruneTopN = 10000

// Optimizer is one of the paper's four code-layout optimizers or one of
// the comparison baselines.
type Optimizer struct {
	Model Model
	Gran  Granularity
	// Intra restricts basic-block reordering to within each function —
	// the intra-procedural baseline the paper contrasts against. Only
	// meaningful with GranBasicBlock.
	Intra bool

	// WMax bounds the affinity analysis window range (paper: 2..20);
	// 0 means affinity.DefaultWMax.
	WMax int
	// TRGBlockBytes is the uniform code block size the TRG model
	// assumes ("we assume the same size for every function and basic
	// block"); 0 means 512 bytes at function granularity and 64 bytes
	// at basic-block granularity.
	TRGBlockBytes int
	// TRGWindowScale overrides the Gloy-Smith 2x cache window; 0 keeps 2.
	TRGWindowScale int
	// PruneTopN bounds the trace alphabet before analysis; 0 means
	// DefaultPruneTopN.
	PruneTopN int

	// Workers bounds the concurrency of the analysis phase (affinity
	// stack passes, TRG sharding): 0 means every available core, 1 pins
	// the serial reference path. It is an execution knob, not a model
	// parameter — the layout is identical for every setting.
	Workers int
	// FeedShardSpan overrides the shard span (in trimmed occurrences)
	// the streaming Feed cuts from an arriving trace; 0 means the
	// kernels' defaults. Like Workers it is an execution knob only.
	FeedShardSpan int
	// Arena recycles the analysis kernels' internal buffers across
	// Optimize calls; nil allocates fresh buffers per call. Like Workers
	// it is an execution knob only — the layout is identical either way.
	Arena *Arena
}

// Arena bundles the analysis kernels' buffer pools so a long-lived
// caller (layoutd running repeated jobs) can reuse every hot-path
// allocation across optimizations. The zero value is ready to use and
// safe for concurrent use; nil is a valid "no reuse" arena.
type Arena struct {
	Affinity affinity.Arena
	TRG      trg.Arena
}

func (a *Arena) affinityArena() *affinity.Arena {
	if a == nil {
		return nil
	}
	return &a.Affinity
}

func (a *Arena) trgArena() *trg.Arena {
	if a == nil {
		return nil
	}
	return &a.TRG
}

// The four optimizers evaluated in the paper.
func FuncAffinity() Optimizer { return Optimizer{Model: ModelAffinity, Gran: GranFunction} }
func BBAffinity() Optimizer   { return Optimizer{Model: ModelAffinity, Gran: GranBasicBlock} }
func FuncTRG() Optimizer      { return Optimizer{Model: ModelTRG, Gran: GranFunction} }
func BBTRG() Optimizer        { return Optimizer{Model: ModelTRG, Gran: GranBasicBlock} }

// Comparison baselines from the related-work tradition (DESIGN.md §6).
func FuncCallGraph() Optimizer { return Optimizer{Model: ModelCallGraph, Gran: GranFunction} }
func FuncCMG() Optimizer       { return Optimizer{Model: ModelCMG, Gran: GranFunction} }
func BBAffinityIntra() Optimizer {
	return Optimizer{Model: ModelAffinity, Gran: GranBasicBlock, Intra: true}
}
func FuncSearch() Optimizer { return Optimizer{Model: ModelSearch, Gran: GranFunction} }

// AllOptimizers returns the four paper optimizers in the paper's order.
func AllOptimizers() []Optimizer {
	return []Optimizer{FuncAffinity(), BBAffinity(), FuncTRG(), BBTRG()}
}

// AllWithBaselines returns the paper optimizers plus the comparison
// baselines used by the extension experiment.
func AllWithBaselines() []Optimizer {
	return append(AllOptimizers(), FuncCallGraph(), FuncCMG(), BBAffinityIntra(), FuncSearch())
}

// OptimizerNames returns the names of AllWithBaselines in their
// canonical order — the registry layoutd advertises.
func OptimizerNames() []string {
	all := AllWithBaselines()
	names := make([]string, len(all))
	for i, o := range all {
		names[i] = o.Name()
	}
	return names
}

// OptimizerByName resolves a short name from OptimizerNames to its
// optimizer configuration. It is the lookup the serving layer and the
// experiment harness use to map request parameters to a pipeline.
func OptimizerByName(name string) (Optimizer, error) {
	for _, o := range AllWithBaselines() {
		if o.Name() == name {
			return o, nil
		}
	}
	return Optimizer{}, fmt.Errorf("core: unknown optimizer %q (known: %v)", name, OptimizerNames())
}

// Name returns the optimizer's short name, e.g. "bb-affinity".
func (o Optimizer) Name() string {
	n := o.Gran.String() + "-" + o.Model.String()
	if o.Intra {
		n += "-intra"
	}
	return n
}

// Profile is a training run of a program.
type Profile struct {
	Prog *ir.Program
	// Blocks is the raw basic-block trace of the training input.
	Blocks *trace.Trace
	// Steps and DynamicBytes summarize the run.
	Steps        int
	DynamicBytes int64
}

// ProfileProgram instruments and runs the program on the given input
// seed, like the paper's instrumentation + test-input run.
func ProfileProgram(p *ir.Program, seed int64) (*Profile, error) {
	res, err := interp.Run(p, interp.Options{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("core: profiling %s: %w", p.Name, err)
	}
	if !res.Completed {
		return nil, fmt.Errorf("core: profiling %s: hit step cap after %d steps", p.Name, res.Steps)
	}
	return &Profile{Prog: p, Blocks: res.Blocks, Steps: res.Steps, DynamicBytes: res.DynamicBytes}, nil
}

// Report describes one optimization for diagnostics and the paper's
// system tables.
type Report struct {
	Optimizer string
	// TraceLen is the trimmed trace length analyzed.
	TraceLen int
	// Retention is the fraction of the trace kept by pruning.
	Retention float64
	// SeqLen is the number of code units the model ordered.
	SeqLen int
	// Sequence is the model's code-unit order (function IDs at
	// GranFunction, block IDs at GranBasicBlock) that produced the
	// layout — the artifact layoutd serves back to clients.
	Sequence []int32 `json:",omitempty"`
	// JumpOverheadBytes is the code-size cost of the transformation.
	JumpOverheadBytes int64
}

// Optimize runs the full pipeline and returns the optimized layout.
func (o Optimizer) Optimize(prof *Profile) (*layout.Layout, Report, error) {
	return o.OptimizeCtx(context.Background(), prof)
}

// OptimizeCtx is Optimize with cancellation: the analysis kernels poll
// ctx inside their shard loops, so a job deadline interrupts a long
// analysis mid-phase instead of waiting for the pipeline to finish.
func (o Optimizer) OptimizeCtx(ctx context.Context, prof *Profile) (*layout.Layout, Report, error) {
	rep := Report{Optimizer: o.Name()}
	if prof == nil || prof.Prog == nil || prof.Blocks == nil {
		return nil, rep, fmt.Errorf("core: nil profile")
	}
	pruneN := o.PruneTopN
	if pruneN == 0 {
		pruneN = DefaultPruneTopN
	}

	// 1. Granularity-specific trimmed trace (Definition 1).
	psp := obs.StartSpan(ctx, "trace.prune")
	var tt *trace.Trace
	switch o.Gran {
	case GranFunction:
		tt = trace.FuncTrace(prof.Prog, prof.Blocks)
	case GranBasicBlock:
		tt = prof.Blocks.Trimmed()
	default:
		psp.End()
		return nil, rep, fmt.Errorf("core: unknown granularity %v", o.Gran)
	}

	// 2. Popularity pruning (§II-F).
	pruned, retention := tt.PruneTopN(pruneN)
	// Pruning can produce new consecutive duplicates; re-trim.
	pruned = pruned.Trimmed()
	rep.TraceLen = pruned.Len()
	rep.Retention = retention
	psp.SetAttr("kept", int64(pruned.Len()))
	psp.End()

	// 3. Locality model.
	var seq []int32
	switch o.Model {
	case ModelAffinity:
		h, err := affinity.BuildHierarchyCtx(ctx, pruned, affinity.Options{
			WMax: o.WMax, Workers: o.Workers, Arena: o.Arena.affinityArena(),
		})
		if err != nil {
			return nil, rep, fmt.Errorf("core: %s analysis: %w", o.Name(), err)
		}
		seq = h.Sequence()
	case ModelTRG:
		params := trg.DefaultParams(o.trgBlockBytes())
		params.WindowScale = o.TRGWindowScale
		params.Workers = o.Workers
		var err error
		seq, err = trg.SequenceCtx(ctx, pruned, params, o.Arena.trgArena())
		if err != nil {
			return nil, rep, fmt.Errorf("core: %s analysis: %w", o.Name(), err)
		}
	case ModelCMG:
		params := trg.DefaultParams(o.trgBlockBytes())
		params.WindowScale = o.TRGWindowScale
		csp := obs.StartSpan(ctx, "cmg.sequence")
		seq = cmg.Sequence(pruned, params)
		csp.End()
	case ModelCallGraph:
		if o.Gran != GranFunction {
			return nil, rep, fmt.Errorf("core: call-graph placement reorders functions only")
		}
		gsp := obs.StartSpan(ctx, "callgraph.build")
		seq = callgraph.Build(prof.Prog, prof.Blocks).Order()
		gsp.End()
	case ModelSearch:
		if o.Gran != GranFunction {
			return nil, rep, fmt.Errorf("core: layout search reorders functions only")
		}
		var err error
		seq, err = searchSequence(ctx, o, prof, pruned)
		if err != nil {
			return nil, rep, fmt.Errorf("core: %s analysis: %w", o.Name(), err)
		}
	default:
		return nil, rep, fmt.Errorf("core: unknown model %v", o.Model)
	}
	rep.SeqLen = len(seq)
	rep.Sequence = seq

	// 4. Transformation.
	l, err := o.emitLayout(ctx, prof.Prog, seq, &rep)
	if err != nil {
		return nil, rep, err
	}
	return l, rep, nil
}

// emitLayout is the pipeline's transformation step: turn the model's
// code sequence into a validated layout and record its costs in rep.
// Shared by the buffered OptimizeCtx and the streaming Feed.
func (o Optimizer) emitLayout(ctx context.Context, prog *ir.Program, seq []int32, rep *Report) (*layout.Layout, error) {
	esp := obs.StartSpan(ctx, "layout.emit")
	esp.SetAttr("seq_len", int64(len(seq)))
	defer esp.End()
	var l *layout.Layout
	switch o.Gran {
	case GranFunction:
		order := make([]ir.FuncID, len(seq))
		for i, s := range seq {
			order[i] = ir.FuncID(s)
		}
		l = layout.ReorderFunctions(prog, order)
	case GranBasicBlock:
		order := make([]ir.BlockID, len(seq))
		for i, s := range seq {
			order[i] = ir.BlockID(s)
		}
		if o.Intra {
			l = layout.ReorderBlocksIntra(prog, order)
		} else {
			l = layout.ReorderBlocks(prog, order)
		}
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("core: %s produced invalid layout: %w", o.Name(), err)
	}
	rep.JumpOverheadBytes = l.JumpOverheadBytes()
	return l, nil
}

// searchSequence runs the Petrank-Rawitz-wall local search: TRG-weighted
// conflict cost, seeded from the affinity order.
func searchSequence(ctx context.Context, o Optimizer, prof *Profile, pruned *trace.Trace) ([]int32, error) {
	params := trg.DefaultParams(o.trgBlockBytes())
	params.WindowScale = o.TRGWindowScale
	g, err := trg.BuildCtx(ctx, pruned, params.WindowBlocks(), o.Workers, o.Arena.trgArena())
	if err != nil {
		return nil, err
	}
	cost := search.ConflictCost(prof.Prog, g, cachesim.Config{
		SizeBytes: params.CacheBytes, Assoc: params.Assoc, LineBytes: params.LineBytes,
	})
	h, err := affinity.BuildHierarchyCtx(ctx, pruned, affinity.Options{
		WMax: o.WMax, Workers: o.Workers, Arena: o.Arena.affinityArena(),
	})
	if err != nil {
		return nil, err
	}
	seed := h.Sequence()
	initial := make([]ir.FuncID, 0, prof.Prog.NumFuncs())
	for _, s := range seed {
		initial = append(initial, ir.FuncID(s))
	}
	initial = layout.CompleteFuncOrder(prof.Prog, initial)
	ssp := obs.StartSpan(ctx, "search.improve")
	res := search.Improve(initial, cost, search.Options{Seed: 1})
	ssp.End()
	out := make([]int32, len(res.Order))
	for i, f := range res.Order {
		out[i] = int32(f)
	}
	return out, nil
}

func (o Optimizer) trgBlockBytes() int {
	if o.TRGBlockBytes != 0 {
		return o.TRGBlockBytes
	}
	if o.Gran == GranFunction {
		return 512
	}
	return 64
}

// LayoutFromSequence rebuilds the layout a cached Report describes: the
// optimizer name picks the transformation (function vs. block
// granularity, intra restriction) and seq is the Report.Sequence it
// recorded. This is how the serving layer turns a stored optimization
// result back into an address map without rerunning the analysis.
func LayoutFromSequence(p *ir.Program, optName string, seq []int32) (*layout.Layout, error) {
	if p == nil {
		return nil, fmt.Errorf("core: nil program")
	}
	o, err := OptimizerByName(optName)
	if err != nil {
		return nil, err
	}
	var l *layout.Layout
	switch o.Gran {
	case GranFunction:
		order := make([]ir.FuncID, len(seq))
		for i, s := range seq {
			order[i] = ir.FuncID(s)
		}
		l = layout.ReorderFunctions(p, order)
	case GranBasicBlock:
		order := make([]ir.BlockID, len(seq))
		for i, s := range seq {
			order[i] = ir.BlockID(s)
		}
		if o.Intra {
			l = layout.ReorderBlocksIntra(p, order)
		} else {
			l = layout.ReorderBlocks(p, order)
		}
	default:
		return nil, fmt.Errorf("core: unknown granularity %v", o.Gran)
	}
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("core: sequence for %s does not fit %s: %w", optName, p.Name, err)
	}
	return l, nil
}

// LoadProgram generates a named suite program — a convenience for the
// CLI tools and examples.
func LoadProgram(name string) (*ir.Program, error) {
	s, err := progen.SpecByName(name)
	if err != nil {
		return nil, err
	}
	return progen.Generate(s)
}
