package affinity

import (
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/trace"
)

// fig1Trace is the paper's Figure 1(a) example: B1 B4 B2 B4 B2 B3 B5 B1 B4.
func fig1Trace() *trace.Trace {
	return trace.New([]int32{1, 4, 2, 4, 2, 3, 5, 1, 4})
}

// TestFigure1Hierarchy reproduces the paper's Figure 1(b) exactly:
//
//	w=2: (B1) (B4) (B2) (B3,B5)
//	w=3: (B1,B4) (B2) (B3,B5)
//	w=4: (B1,B4) (B2,B3,B5)
//	w=5: (B1,B4,B2,B3,B5)
//
// and the output sequence B1 B4 B2 B3 B5.
func TestFigure1Hierarchy(t *testing.T) {
	for name, build := range map[string]func(*trace.Trace, Options) *Hierarchy{
		"efficient": BuildHierarchy,
		"naive":     BuildHierarchyNaive,
	} {
		t.Run(name, func(t *testing.T) {
			h := build(fig1Trace(), Options{WMax: 5})

			wantByW := map[int][][]int32{
				1: {{1}, {4}, {2}, {3}, {5}},
				2: {{1}, {4}, {2}, {3, 5}},
				3: {{1, 4}, {2}, {3, 5}},
				4: {{1, 4}, {2, 3, 5}},
				5: {{1, 4, 2, 3, 5}},
			}
			for w, want := range wantByW {
				got := h.Partition(w).Groups
				if !reflect.DeepEqual(got, want) {
					t.Errorf("w=%d partition = %v, want %v", w, got, want)
				}
			}
			if got, want := h.Sequence(), []int32{1, 4, 2, 3, 5}; !reflect.DeepEqual(got, want) {
				t.Errorf("Sequence = %v, want %v", got, want)
			}
		})
	}
}

func TestHierarchyIsHierarchical(t *testing.T) {
	// Every level's groups must be unions of whole groups of the level
	// below (lower-level groups take precedence).
	rng := rand.New(rand.NewSource(21))
	syms := make([]int32, 600)
	for i := range syms {
		syms[i] = int32(rng.Intn(24))
	}
	h := BuildHierarchy(trace.New(syms), Options{WMax: 12})
	for w := 2; w <= h.WMax(); w++ {
		lower := h.Partition(w - 1)
		upper := h.Partition(w)
		groupOf := make(map[int32]int)
		for gi, g := range upper.Groups {
			for _, s := range g {
				groupOf[s] = gi
			}
		}
		for _, lg := range lower.Groups {
			first := groupOf[lg[0]]
			for _, s := range lg {
				if groupOf[s] != first {
					t.Fatalf("w=%d splits lower-level group %v", w, lg)
				}
			}
		}
	}
}

func TestPartitionIsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	syms := make([]int32, 400)
	for i := range syms {
		syms[i] = int32(rng.Intn(16))
	}
	tr := trace.New(syms)
	h := BuildHierarchy(tr, Options{WMax: 8})
	distinct := tr.Trimmed().NumDistinct()
	for w := 1; w <= h.WMax(); w++ {
		seen := make(map[int32]bool)
		n := 0
		for _, g := range h.Partition(w).Groups {
			if len(g) == 0 {
				t.Fatalf("w=%d has empty group", w)
			}
			for _, s := range g {
				if seen[s] {
					t.Fatalf("w=%d: symbol %d in two groups", w, s)
				}
				seen[s] = true
				n++
			}
		}
		if n != distinct {
			t.Fatalf("w=%d covers %d symbols, want %d", w, n, distinct)
		}
	}
}

func TestSequenceIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	syms := make([]int32, 500)
	for i := range syms {
		syms[i] = int32(rng.Intn(32))
	}
	tr := trace.New(syms)
	seq := BuildHierarchy(tr, Options{}).Sequence()
	seen := make(map[int32]bool)
	for _, s := range seq {
		if seen[s] {
			t.Fatalf("sequence repeats symbol %d", s)
		}
		seen[s] = true
	}
	if len(seq) != tr.NumDistinct() {
		t.Fatalf("sequence has %d symbols, want %d", len(seq), tr.NumDistinct())
	}
}

func TestEfficientMatchesNaiveOnRandomTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(120)
		alpha := 3 + rng.Intn(10)
		syms := make([]int32, n)
		for i := range syms {
			syms[i] = int32(rng.Intn(alpha))
		}
		tr := trace.New(syms)
		opt := Options{WMax: 2 + rng.Intn(8)}
		eff := BuildHierarchy(tr, opt)
		naive := BuildHierarchyNaive(tr, opt)
		for w := 1; w <= opt.WMax; w++ {
			if !reflect.DeepEqual(eff.Partition(w).Groups, naive.Partition(w).Groups) {
				t.Fatalf("trial %d w=%d: efficient %v != naive %v (trace %v)",
					trial, w, eff.Partition(w).Groups, naive.Partition(w).Groups, syms)
			}
		}
	}
}

func TestStronglyAffineBlocksGroupEarly(t *testing.T) {
	// A and B always appear back to back; C appears far away.
	syms := []int32{0, 1, 2, 2, 2, 0, 1, 2, 2, 0, 1}
	// Trimmed: 0 1 2 0 1 2 0 1. fp<0,1> = 2 always.
	h := BuildHierarchy(trace.New(syms), Options{WMax: 4})
	p2 := h.Partition(2).Groups
	found := false
	for _, g := range p2 {
		if len(g) == 2 && g[0] == 0 && g[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("w=2 partition %v does not pair the always-adjacent blocks 0,1", p2)
	}
}

func TestSingleSymbolAndEmptyTraces(t *testing.T) {
	h := BuildHierarchy(trace.New([]int32{7, 7, 7}), Options{WMax: 3})
	if got := h.Sequence(); !reflect.DeepEqual(got, []int32{7}) {
		t.Errorf("single-symbol sequence = %v, want [7]", got)
	}
	h = BuildHierarchy(trace.New(nil), Options{WMax: 3})
	if got := h.Sequence(); len(got) != 0 {
		t.Errorf("empty trace sequence = %v, want empty", got)
	}
}

func TestUntrimmedInputIsTrimmedInternally(t *testing.T) {
	// Duplicated consecutive accesses must not change the analysis
	// (Definition 1 analyses trimmed traces).
	base := fig1Trace()
	dup := make([]int32, 0, base.Len()*3)
	for _, s := range base.Syms {
		dup = append(dup, s, s, s)
	}
	a := BuildHierarchy(base, Options{WMax: 5})
	b := BuildHierarchy(trace.New(dup), Options{WMax: 5})
	for w := 1; w <= 5; w++ {
		if !reflect.DeepEqual(a.Partition(w).Groups, b.Partition(w).Groups) {
			t.Fatalf("w=%d: trimmed vs untrimmed partitions differ", w)
		}
	}
}

func TestDefaultWMax(t *testing.T) {
	h := BuildHierarchy(fig1Trace(), Options{})
	if h.WMax() != DefaultWMax {
		t.Errorf("WMax = %d, want %d", h.WMax(), DefaultWMax)
	}
}

func BenchmarkBuildHierarchy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]int32, 100000)
	for i := range syms {
		// Phased trace: locality structure similar to real programs.
		phase := (i / 5000) % 8
		syms[i] = int32(phase*12 + rng.Intn(12))
	}
	tr := trace.New(syms)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildHierarchy(tr, Options{})
	}
}
