// Package layout assigns code addresses to basic blocks and implements
// the paper's two program transformations (§II-D, §II-E): global function
// reordering and inter-procedural basic-block reordering.
//
// The paper's basic-block transformation works in three steps:
// pre-processing adds a jump at the start of each function (to reach its
// entry block wherever it lands) and appends explicit jumps to blocks
// whose fall-through successor is moved away; reordering lays the blocks
// out in the model's sequence; post-processing removes residual jumps to
// the immediately following block. Here the pre/post pair collapses into
// one uniform rule — a block pays JumpBytes exactly when its natural
// fall-through successor is not placed immediately after it — plus an
// entry-stub table for basic-block layouts.
//
// Since this repository evaluates layouts by replaying traces through a
// cache simulator, assigning addresses is the whole transformation: the
// address stream of the reordered binary is fully determined by the
// block trace and the address map (see Replayer).
package layout

import (
	"fmt"
	"sort"

	"codelayout/internal/ir"
)

// JumpBytes is the size of an unconditional jump instruction appended by
// pre-processing (rel32 jump on x86-64).
const JumpBytes = 5

// Layout maps every basic block of a program to an address.
type Layout struct {
	Prog *ir.Program
	// Kind describes how the layout was produced (for reports).
	Kind string
	// Addr[b] is the start address of block b.
	Addr []int64
	// Size[b] is the effective size of block b in this layout: the
	// block's code plus an appended jump when its fall-through
	// successor is not adjacent.
	Size []int32
	// StubAddr[f] is the address of function f's entry stub, or -1 when
	// calls jump straight to the entry block (original and
	// function-reordered layouts).
	StubAddr []int64
	// TotalBytes is the end of the image.
	TotalBytes int64
	// order is the block placement order, kept for diagnostics.
	order []ir.BlockID
}

// Original lays the program out as the unoptimized compiler would:
// functions in source order, blocks in source order within each
// function, no entry stubs.
func Original(p *ir.Program) *Layout {
	order := make([]ir.BlockID, 0, p.NumBlocks())
	for _, f := range p.Funcs {
		order = append(order, f.Blocks...)
	}
	return build(p, "original", order, false)
}

// ReorderFunctions lays functions out in the given order, keeping each
// function's blocks in source order (§II-D). Functions missing from the
// order are appended in source order; this lets the caller pass a model
// sequence that covers only profiled functions.
func ReorderFunctions(p *ir.Program, funcOrder []ir.FuncID) *Layout {
	full := CompleteFuncOrder(p, funcOrder)
	order := make([]ir.BlockID, 0, p.NumBlocks())
	for _, f := range full {
		order = append(order, p.Funcs[f].Blocks...)
	}
	return build(p, "func-reorder", order, false)
}

// ReorderBlocks lays basic blocks out in the given global order,
// regardless of function boundaries (§II-E). Blocks missing from the
// order are appended in source order. Every function receives an entry
// stub so calls can reach its entry block (the paper's pre-processing).
func ReorderBlocks(p *ir.Program, blockOrder []ir.BlockID) *Layout {
	full := CompleteBlockOrder(p, blockOrder)
	return build(p, "bb-reorder", full, true)
}

// CompleteFuncOrder appends to order every function of p not already in
// it, in source order, and drops duplicates.
func CompleteFuncOrder(p *ir.Program, order []ir.FuncID) []ir.FuncID {
	seen := make(map[ir.FuncID]bool, len(order))
	full := make([]ir.FuncID, 0, p.NumFuncs())
	for _, f := range order {
		if f >= 0 && int(f) < p.NumFuncs() && !seen[f] {
			seen[f] = true
			full = append(full, f)
		}
	}
	for _, f := range p.Funcs {
		if !seen[f.ID] {
			full = append(full, f.ID)
		}
	}
	return full
}

// CompleteBlockOrder appends to order every block of p not already in
// it, in source order, and drops duplicates.
func CompleteBlockOrder(p *ir.Program, order []ir.BlockID) []ir.BlockID {
	seen := make(map[ir.BlockID]bool, len(order))
	full := make([]ir.BlockID, 0, p.NumBlocks())
	for _, b := range order {
		if b >= 0 && int(b) < p.NumBlocks() && !seen[b] {
			seen[b] = true
			full = append(full, b)
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if !seen[b] {
				full = append(full, b)
			}
		}
	}
	return full
}

func build(p *ir.Program, kind string, order []ir.BlockID, stubs bool) *Layout {
	l := &Layout{
		Prog:     p,
		Kind:     kind,
		Addr:     make([]int64, p.NumBlocks()),
		Size:     make([]int32, p.NumBlocks()),
		StubAddr: make([]int64, p.NumFuncs()),
		order:    order,
	}
	var addr int64
	if stubs {
		// Entry-stub table at the front of the image, one jump per
		// function, in function order.
		for f := range l.StubAddr {
			l.StubAddr[f] = addr
			addr += JumpBytes
		}
	} else {
		for f := range l.StubAddr {
			l.StubAddr[f] = -1
		}
	}
	for i, b := range order {
		blk := p.Blocks[b]
		l.Addr[b] = addr
		size := blk.Size
		if needsExtraJump(blk, nextInOrder(order, i)) {
			size += JumpBytes
		}
		l.Size[b] = size
		addr += int64(size)
	}
	l.TotalBytes = addr
	return l
}

func nextInOrder(order []ir.BlockID, i int) ir.BlockID {
	if i+1 < len(order) {
		return order[i+1]
	}
	return ir.NoBlock
}

// needsExtraJump decides whether the block must grow by one jump
// instruction in a layout that places `next` immediately after it.
// Blocks ending in Jump, Return or Exit are always position-independent
// (their transfer is already part of Block.Size). A Call must fall
// through to its continuation (the return address is the next
// instruction), so moving the continuation away costs a jump. A Branch
// can be *inverted* for free: if either successor is adjacent, the
// condition is flipped so that successor becomes the fall-through and
// the other keeps the embedded branch — only when neither successor is
// adjacent does the block need an appended unconditional jump. This is
// the standard retargeting every basic-block reordering compiler
// performs and the reason the paper's post-processing can remove
// "residual" jumps.
func needsExtraJump(blk *ir.Block, next ir.BlockID) bool {
	switch t := blk.Term.(type) {
	case ir.Branch:
		return next != t.Taken && next != t.Fall
	case ir.Call:
		return next != t.Next
	default:
		return false
	}
}

// HasStubs reports whether calls go through the entry-stub table.
func (l *Layout) HasStubs() bool { return len(l.StubAddr) > 0 && l.StubAddr[0] >= 0 }

// Order returns the block placement order.
func (l *Layout) Order() []ir.BlockID { return l.order }

// JumpOverheadBytes returns the total bytes of injected jumps and stubs —
// the code-size cost of the transformation.
func (l *Layout) JumpOverheadBytes() int64 {
	var overhead int64
	if l.HasStubs() {
		overhead += int64(len(l.StubAddr)) * JumpBytes
	}
	for b, blk := range l.Prog.Blocks {
		overhead += int64(l.Size[b] - blk.Size)
	}
	return overhead
}

// Validate checks that the layout covers every block exactly once with
// non-overlapping, contiguous address ranges.
func (l *Layout) Validate() error {
	if len(l.order) != l.Prog.NumBlocks() {
		return fmt.Errorf("layout: order covers %d blocks, program has %d", len(l.order), l.Prog.NumBlocks())
	}
	type span struct {
		start, end int64
	}
	spans := make([]span, 0, len(l.order)+len(l.StubAddr))
	if l.HasStubs() {
		for _, s := range l.StubAddr {
			spans = append(spans, span{s, s + JumpBytes})
		}
	}
	seen := make(map[ir.BlockID]bool, len(l.order))
	for _, b := range l.order {
		if seen[b] {
			return fmt.Errorf("layout: block %d placed twice", b)
		}
		seen[b] = true
		if l.Size[b] < l.Prog.Blocks[b].Size {
			return fmt.Errorf("layout: block %d shrank from %d to %d bytes", b, l.Prog.Blocks[b].Size, l.Size[b])
		}
		spans = append(spans, span{l.Addr[b], l.Addr[b] + int64(l.Size[b])})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	for i := 1; i < len(spans); i++ {
		if spans[i].start < spans[i-1].end {
			return fmt.Errorf("layout: overlapping spans [%d,%d) and [%d,%d)",
				spans[i-1].start, spans[i-1].end, spans[i].start, spans[i].end)
		}
	}
	if n := spans[len(spans)-1].end; n != l.TotalBytes {
		return fmt.Errorf("layout: total %d bytes but spans end at %d", l.TotalBytes, n)
	}
	return nil
}

// TouchedLines returns the number of distinct cache lines touched when
// fetching all of the given blocks — the static footprint of a working
// set under this layout. It is the quantity affinity packing shrinks.
func (l *Layout) TouchedLines(blocks []ir.BlockID, lineBytes int) int {
	lines := make(map[int64]struct{})
	for _, b := range blocks {
		first := l.Addr[b] / int64(lineBytes)
		last := (l.Addr[b] + int64(l.Size[b]) - 1) / int64(lineBytes)
		for ln := first; ln <= last; ln++ {
			lines[ln] = struct{}{}
		}
	}
	return len(lines)
}
