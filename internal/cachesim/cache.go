// Package cachesim implements the memory-hierarchy substrate of the
// evaluation: set-associative LRU caches, a next-line prefetcher, a
// two-level instruction hierarchy, and the Pin-style shared L1
// instruction cache co-run simulation the paper uses for its "simulated"
// miss-ratio columns (32 KB, 4-way, 64-byte lines, shared by the two
// hyper-threads of a core).
package cachesim

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Assoc     int
	LineBytes int
}

// L1IDefault is the paper's simulated instruction cache: 32 KB, 4-way,
// 64-byte lines — "the same as on the real machine".
var L1IDefault = Config{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64}

// L2Default stands in for the per-core unified L2 of the Xeon E5520
// (256 KB, 8-way).
var L2Default = Config{SizeBytes: 256 << 10, Assoc: 8, LineBytes: 64}

// Sets returns the number of cache sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Assoc * c.LineBytes) }

// Validate checks that the geometry is consistent.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	if c.SizeBytes%(c.Assoc*c.LineBytes) != 0 {
		return fmt.Errorf("cachesim: size %d not divisible by assoc*line %d", c.SizeBytes, c.Assoc*c.LineBytes)
	}
	return nil
}

// Stats counts cache events. Per-thread attribution is handled by the
// callers (each thread keeps its own Stats and passes it to Access).
type Stats struct {
	Accesses      int64
	Misses        int64
	PrefetchHits  int64 // demand hits on prefetched lines
	PrefetchFills int64
}

// MissRatio returns Misses/Accesses, 0 when idle.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Accesses += other.Accesses
	s.Misses += other.Misses
	s.PrefetchHits += other.PrefetchHits
	s.PrefetchFills += other.PrefetchFills
}

type way struct {
	line     int64
	valid    bool
	prefetch bool
}

// Cache is a set-associative LRU cache over line numbers
// (line = address / LineBytes). Associativity is expected to be small
// (2-16), so each set is a move-to-front array.
type Cache struct {
	cfg  Config
	sets [][]way
	mask int64
}

// New creates an empty cache.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets()
	sets := make([][]way, n)
	backing := make([]way, n*cfg.Assoc)
	for i := range sets {
		sets[i] = backing[i*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	return &Cache{cfg: cfg, sets: sets, mask: int64(n - 1)}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) set(line int64) []way {
	n := int64(len(c.sets))
	if n&(n-1) == 0 {
		return c.sets[line&c.mask]
	}
	return c.sets[line%n]
}

// Access performs a demand access to a line, updating st. It returns
// true on hit.
func (c *Cache) Access(line int64, st *Stats) bool {
	st.Accesses++
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].line == line {
			if s[i].prefetch {
				st.PrefetchHits++
				s[i].prefetch = false
			}
			mtf(s, i)
			return true
		}
	}
	st.Misses++
	fill(s, line, false)
	return false
}

// Prefetch fills a line without counting a demand access; it does not
// disturb LRU order of present lines and inserts at MRU position.
func (c *Cache) Prefetch(line int64, st *Stats) {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].line == line {
			return // already present
		}
	}
	st.PrefetchFills++
	fill(s, line, true)
}

// Contains reports whether a line is present (without touching LRU).
func (c *Cache) Contains(line int64) bool {
	s := c.set(line)
	for i := range s {
		if s[i].valid && s[i].line == line {
			return true
		}
	}
	return false
}

// Flush invalidates the whole cache.
func (c *Cache) Flush() {
	for _, s := range c.sets {
		for i := range s {
			s[i] = way{}
		}
	}
}

// mtf moves s[i] to the front (MRU) of the set.
func mtf(s []way, i int) {
	if i == 0 {
		return
	}
	w := s[i]
	copy(s[1:i+1], s[:i])
	s[0] = w
}

// fill inserts a line at MRU, evicting the LRU way.
func fill(s []way, line int64, pf bool) {
	copy(s[1:], s[:len(s)-1])
	s[0] = way{line: line, valid: true, prefetch: pf}
}
