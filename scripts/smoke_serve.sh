#!/bin/sh
# smoke_serve.sh — end-to-end service smoke test, run by `make smoke-serve`
# and the CI service-smoke job:
#
#   1. build layoutd/layoutctl/tracedump,
#   2. record a trace with tracedump,
#   3. start layoutd on a random port,
#   4. submit the trace via layoutctl and wait for a 200 result,
#   5. fetch the job's span timeline (/v1/jobs/{id}/trace), render it
#      with `layoutctl -trace`, and assert the pipeline phases landed
#      in layoutd_phase_seconds,
#   6. resubmit the identical trace and assert a cache hit via /metrics,
#   7. SIGTERM the daemon and require a clean drain with every job log
#      line carrying a trace_id.
#
# Set SMOKE_WORK to redirect the scratch dir somewhere that survives the
# run (CI points it at a directory uploaded as an artifact on failure);
# without it a mktemp dir is used and removed.
set -eu

if [ -n "${SMOKE_WORK:-}" ]; then
    WORK=$SMOKE_WORK
    mkdir -p "$WORK"
    KEEP_WORK=1
else
    WORK=$(mktemp -d)
    KEEP_WORK=0
fi
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    [ "$KEEP_WORK" = 1 ] || rm -rf "$WORK"
}
trap cleanup EXIT

PROG=458.sjeng
OPT=func-affinity

echo "smoke-serve: building binaries"
go build -o "$WORK/layoutd" ./cmd/layoutd
go build -o "$WORK/layoutctl" ./cmd/layoutctl
go build -o "$WORK/tracedump" ./cmd/tracedump

echo "smoke-serve: recording a $PROG trace"
"$WORK/tracedump" -prog "$PROG" -record "$WORK/t" -gran bb

echo "smoke-serve: starting layoutd"
"$WORK/layoutd" -addr 127.0.0.1:0 -jobs 2 -queue 8 \
    -ready-file "$WORK/addr" >"$WORK/layoutd.log" 2>&1 &
DAEMON_PID=$!

i=0
while [ ! -s "$WORK/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-serve: layoutd never became ready" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "smoke-serve: layoutd exited early" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    }
    sleep 0.1
done
ADDR="http://$(cat "$WORK/addr")"
echo "smoke-serve: layoutd at $ADDR"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

fetch "$ADDR/healthz" | grep -q ok

echo "smoke-serve: submitting job"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result1.json"
grep -q '"status": "done"' "$WORK/result1.json"
grep -q '"missBefore"' "$WORK/result1.json"

JOB_ID=$(grep -o '"id": "[^"]*"' "$WORK/result1.json" | head -1 | cut -d'"' -f4)
[ -n "$JOB_ID" ] || { echo "smoke-serve: no job id in result" >&2; exit 1; }

echo "smoke-serve: fetching span timeline for $JOB_ID"
fetch "$ADDR/v1/jobs/$JOB_ID/trace" >"$WORK/trace.json"
grep -q '"trace_id"' "$WORK/trace.json"
grep -q '"name": "queue.wait"' "$WORK/trace.json"
grep -q '"name": "optimize"' "$WORK/trace.json"
grep -q '"name": "affinity.hierarchy"' "$WORK/trace.json"
grep -q '"name": "layout.emit"' "$WORK/trace.json"
grep -q '"name": "cachesim.replay"' "$WORK/trace.json"

echo "smoke-serve: rendering the waterfall via layoutctl -trace"
"$WORK/layoutctl" -addr "$ADDR" -trace "$JOB_ID" >"$WORK/waterfall.txt"
grep -q "job $JOB_ID (done) trace " "$WORK/waterfall.txt"
grep -q 'optimize' "$WORK/waterfall.txt"
grep -q '#' "$WORK/waterfall.txt"

echo "smoke-serve: checking phase histograms in /metrics"
fetch "$ADDR/metrics" >"$WORK/metrics-phase.txt"
grep -q '^layoutd_phase_seconds_count{phase="optimize"} 1$' "$WORK/metrics-phase.txt"
grep -q 'layoutd_phase_seconds_bucket{phase="affinity.hierarchy"' "$WORK/metrics-phase.txt"
grep -q 'layoutd_phase_seconds_bucket{phase="layout.emit"' "$WORK/metrics-phase.txt"
grep -q '^layoutd_queue_wait_seconds_count 1$' "$WORK/metrics-phase.txt"

echo "smoke-serve: checking debug job ring"
fetch "$ADDR/v1/debug/jobs" | grep -q "\"id\": \"$JOB_ID\""

echo "smoke-serve: resubmitting identical trace (expect cache hit)"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result2.json"
grep -q 'cached=true' "$WORK/result2.json"

fetch "$ADDR/metrics" >"$WORK/metrics.txt"
grep -q '^layoutd_cache_hits_total 1$' "$WORK/metrics.txt"
grep -q '^layoutd_jobs_completed_total 1$' "$WORK/metrics.txt"

echo "smoke-serve: draining daemon with SIGTERM"
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-serve: layoutd did not exit after SIGTERM" >&2
        cat "$WORK/layoutd.log" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$DAEMON_PID" 2>/dev/null || true
grep -q 'drained cleanly' "$WORK/layoutd.log"
DAEMON_PID=""

echo "smoke-serve: checking structured logs carry trace IDs"
grep -q '"msg":"job accepted"' "$WORK/layoutd.log"
grep -q '"msg":"job finished"' "$WORK/layoutd.log"
if grep '"job":' "$WORK/layoutd.log" | grep -qv '"trace_id":'; then
    echo "smoke-serve: job log line without trace_id" >&2
    grep '"job":' "$WORK/layoutd.log" | grep -v '"trace_id":' >&2
    exit 1
fi

echo "smoke-serve: OK"
