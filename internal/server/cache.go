package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"codelayout/internal/obs"
)

// resultCache is the content-addressed result store: a completed
// optimization is keyed by the digest of everything that determined it
// — the SHA-256 of the uploaded trace bytes, the optimizer name, and
// the request parameters — so resubmitting the same profile is served
// without recomputation and `GET /v1/layouts/{digest}` is a stable
// address for a layout.
//
// It is two-tiered: the in-memory map is the fast tier, and an
// optional persistent store (internal/store) is the durable tier. Puts
// land in memory synchronously and spill to disk behind the request
// path; a memory miss falls through to disk and repopulates memory, so
// layouts computed before a restart keep being served.
type resultCache struct {
	mu      sync.RWMutex
	results map[string]*Result
	disk    blobStore // nil: memory-only
}

func newResultCache(disk blobStore) *resultCache {
	return &resultCache{results: make(map[string]*Result), disk: disk}
}

// resultDigest derives the cache key. The fields are length-prefixed by
// newline framing over hex/known-charset values, so distinct inputs
// cannot collide by concatenation.
func resultDigest(traceDigest, prog, optimizer string, pruneTopN int) string {
	h := sha256.New()
	fmt.Fprintf(h, "layoutd/v1\ntrace:%s\nprog:%s\nopt:%s\nprune:%d\n",
		traceDigest, prog, optimizer, pruneTopN)
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the cached result for the digest, if present, consulting
// the durable tier on a memory miss. The disk read is recorded as a
// store.read span on ctx's recorder, if any.
func (c *resultCache) get(ctx context.Context, digest string) (*Result, bool) {
	c.mu.RLock()
	r, ok := c.results[digest]
	c.mu.RUnlock()
	if ok || c.disk == nil {
		return r, ok
	}
	sp := obs.StartSpan(ctx, "store.read")
	data, ok := c.disk.Get(digest)
	sp.SetAttr("bytes", int64(len(data)))
	sp.End()
	if !ok {
		return nil, false
	}
	var res Result
	if err := json.Unmarshal(data, &res); err != nil || res.Digest != digest {
		// A verified blob that doesn't decode to its own digest is a
		// format drift or foreign file, not corruption; ignore it.
		return nil, false
	}
	c.mu.Lock()
	c.results[digest] = &res
	c.mu.Unlock()
	return &res, true
}

// put stores a completed result under its digest in both tiers. The
// durable write is write-behind: the store.write span covers only the
// marshal and enqueue, never the disk.
func (c *resultCache) put(ctx context.Context, r *Result) {
	c.mu.Lock()
	c.results[r.Digest] = r
	c.mu.Unlock()
	if c.disk != nil {
		sp := obs.StartSpan(ctx, "store.write")
		if data, err := json.Marshal(r); err == nil {
			sp.SetAttr("bytes", int64(len(data)))
			c.disk.Put(r.Digest, data)
		}
		sp.End()
	}
}

// drop purges the memory tier's copy of a digest (the admin DELETE
// path; the disk blob is removed separately).
func (c *resultCache) drop(digest string) {
	c.mu.Lock()
	delete(c.results, digest)
	c.mu.Unlock()
}

// len returns the number of cached layouts.
func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.results)
}
