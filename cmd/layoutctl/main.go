// Command layoutctl is the client for layoutd: it submits recorded
// CLTR traces as optimization jobs, polls them, and fetches cached
// layouts by content address.
//
// Transient failures — connection errors, 429 (queue full), 503 — are
// retried with jittered exponential backoff, honoring the server's
// Retry-After header. Retrying a submission is safe by construction:
// jobs are content-addressed by sha256(trace, optimizer, params), so a
// resubmit either lands on the cached result or re-enqueues the same
// digest, never duplicates work that completed.
//
// Usage:
//
//	layoutctl -addr http://127.0.0.1:8080 -submit /tmp/s.trace -prog 458.sjeng -opt func-affinity -wait
//	layoutctl -addr http://127.0.0.1:8080 -upload /tmp/big.trace -prog 458.sjeng -opt func-affinity -chunk-size 4194304 -wait
//	layoutctl -addr http://127.0.0.1:8080 -upload /tmp/big.trace -upload-id a1b2c3d4e5f60718 ... # resume
//	layoutctl -addr http://127.0.0.1:8080 -job job-1
//	layoutctl -addr http://127.0.0.1:8080 -trace job-1            # ASCII span waterfall
//	layoutctl -addr http://127.0.0.1:8080 -trace job-1 -json      # raw span timeline
//	layoutctl -addr http://127.0.0.1:8080 -cancel job-2
//	layoutctl -addr http://127.0.0.1:8080 -layout <digest>
//	layoutctl -addr http://127.0.0.1:8080 -optimizers
//	layoutctl -addr http://127.0.0.1:8080 -corun <digestA>,<digestB>
//	layoutctl -addr http://127.0.0.1:8080 -pair <pairDigest>
//	layoutctl -addr http://127.0.0.1:8080 -schedule <d1>,<d2>,... -domains 2 -slots 2
//	layoutctl -addr http://127.0.0.1:8080 -health
//	layoutctl -cluster http://127.0.0.1:8080,http://127.0.0.1:8081 -layout <digest>
//
// With -cluster, the first endpoint whose /healthz answers is used as
// the base URL; any node of a layoutd cluster serves any request, so
// picking a live node is all the client-side routing needed.
//
// Exit codes: 0 on success, 1 when the server or the job fails (bad
// response, failed/canceled job, retry budget exhausted), 2 on usage
// errors (unknown flags, missing required flags).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"codelayout/internal/cluster"
	"codelayout/internal/obs"
	"codelayout/internal/textplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layoutctl: ")
	addr := flag.String("addr", "http://127.0.0.1:8080", "layoutd base URL")
	submit := flag.String("submit", "", "path of a CLTR trace to submit as a job")
	upload := flag.String("upload", "", "path of a CLTR trace to send via resumable chunked upload, then submit")
	chunkSize := flag.Int64("chunk-size", 4<<20, "bytes per upload chunk (with -upload)")
	uploadID := flag.String("upload-id", "", "resume an existing upload session instead of creating one (with -upload)")
	prog := flag.String("prog", "", "suite program the trace was recorded from (with -submit)")
	opt := flag.String("opt", "", "optimizer name (with -submit; see -optimizers)")
	prune := flag.Int("prune", 0, "PruneTopN override, 0 = server default (with -submit)")
	wait := flag.Bool("wait", false, "poll the submitted job until it finishes")
	timeout := flag.Duration("timeout", 5*time.Minute, "bound on -wait polling")
	job := flag.String("job", "", "job ID to fetch")
	traceID := flag.String("trace", "", "job ID whose span timeline to fetch (ASCII waterfall; raw with -json)")
	cancelID := flag.String("cancel", "", "queued job ID to cancel")
	layoutDigest := flag.String("layout", "", "layout digest to fetch")
	optimizers := flag.Bool("optimizers", false, "list the server's optimizer registry")
	corunPair := flag.String("corun", "", "two comma-separated layout digests to co-run analyze")
	pairDigest := flag.String("pair", "", "pair-document digest to fetch (from a prior -corun)")
	scheduleList := flag.String("schedule", "", "comma-separated layout digests to place (with -domains and -slots)")
	domains := flag.Int("domains", 0, "shared-cache domains in the topology (with -schedule)")
	slots := flag.Int("slots", 0, "cores per shared-cache domain (with -schedule)")
	cacheGeom := flag.String("cache", "", "cache geometry sizeBytes/assoc/lineBytes, e.g. 32768/4/64 (with -corun/-schedule)")
	health := flag.Bool("health", false, "print the server's /healthz document (node identity, build, degraded reason); with -cluster, probe and tabulate every endpoint")
	top := flag.Bool("top", false, "fleet summary from /v1/cluster/metrics: per-node health, queue, inflight, replication lag, repairs")
	storeList := flag.Bool("store-list", false, "list the node's durable store contents (key, kind, size, last access)")
	storeKind := flag.String("store-kind", "", "restrict -store-list to one kind: result, trace, pair, or schedule")
	clusterList := flag.String("cluster", "", "comma-separated layoutd base URLs; the first live one overrides -addr")
	jsonOut := flag.Bool("json", false, "print raw JSON responses instead of human-readable output")
	retries := flag.Int("retries", 4, "retry budget for transient failures (connection errors, 429, 503)")
	retryBase := flag.Duration("retry-base", 500*time.Millisecond, "base of the jittered exponential retry backoff")
	usage := flag.Usage
	flag.Usage = func() {
		usage()
		fmt.Fprintln(flag.CommandLine.Output(), `
Exit codes:
  0  success
  1  server or job failure (bad response, failed/canceled job, retries exhausted)
  2  usage error (unknown flags, missing required flags)`)
	}
	flag.Parse()

	r := &retrier{Max: *retries, Base: *retryBase, Logf: log.Printf}
	base := strings.TrimRight(*addr, "/")
	if *health && *clusterList != "" {
		// Probe every configured endpoint, not just the first live one.
		if err := doClusterHealth(strings.Split(*clusterList, ","), *jsonOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *clusterList != "" {
		picked, err := pickEndpoint(strings.Split(*clusterList, ","))
		if err != nil {
			log.Fatal(err)
		}
		base = picked
	}
	var err error
	switch {
	case *health:
		err = doHealth(r, base, *jsonOut)
	case *top:
		err = doTop(r, base, *jsonOut)
	case *storeList:
		err = doStoreList(r, base, *storeKind, *jsonOut)
	case *submit != "":
		err = doSubmit(r, base, *submit, *prog, *opt, *prune, *wait, *timeout, *jsonOut)
	case *upload != "":
		err = doUpload(r, base, *upload, *prog, *opt, *prune, *chunkSize, *uploadID, *wait, *timeout, *jsonOut)
	case *job != "":
		err = printGET(r, base+"/v1/jobs/"+url.PathEscape(*job))
	case *traceID != "":
		err = doTrace(r, base, *traceID, *jsonOut)
	case *cancelID != "":
		err = doCancel(r, base, *cancelID)
	case *layoutDigest != "":
		err = printGET(r, base+"/v1/layouts/"+url.PathEscape(*layoutDigest))
	case *optimizers:
		err = printGET(r, base+"/v1/optimizers")
	case *corunPair != "":
		err = doCorun(r, base, *corunPair, *cacheGeom, *timeout, *jsonOut)
	case *pairDigest != "":
		err = doPairDoc(r, base, *pairDigest)
	case *scheduleList != "":
		err = doSchedule(r, base, *scheduleList, *domains, *slots, *cacheGeom, *timeout, *jsonOut)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err) // exit code 1
	}
}

// retrier is the shared retry/backoff engine (internal/cluster): the
// same semantics layoutd peers use for forwarding and replication.
// Transport errors and 429/503 responses are retried with jittered
// exponential backoff honoring Retry-After; content addressing makes
// every retried request idempotent.
type retrier = cluster.Retrier

// jobView mirrors the server's wire format, loosely (unknown fields are
// ignored, so the client tolerates additive server changes).
type jobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Digest string          `json:"digest"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func doSubmit(r *retrier, base, path, prog, opt string, prune int, wait bool, timeout time.Duration, jsonOut bool) error {
	if prog == "" || opt == "" {
		fmt.Fprintln(os.Stderr, "layoutctl: -submit requires -prog and -opt")
		os.Exit(2)
	}
	q := url.Values{"prog": {prog}, "opt": {opt}}
	if prune > 0 {
		q.Set("prune", fmt.Sprint(prune))
	}
	// Each attempt re-opens the trace file: a retried POST needs the
	// body from byte zero, and content addressing makes the resubmit
	// idempotent on the server.
	resp, err := r.Do("submit", func() (*http.Response, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return http.Post(base+"/v1/jobs?"+q.Encode(), "application/octet-stream", f)
	})
	if err != nil {
		return err
	}
	return awaitSubmitted(r, base, resp, wait, timeout, jsonOut)
}

// awaitSubmitted handles a submission response — print the job, and
// with wait poll it to a terminal state. Shared by -submit and the
// finalize step of -upload.
func awaitSubmitted(r *retrier, base string, resp *http.Response, wait bool, timeout time.Duration, jsonOut bool) error {
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		return fmt.Errorf("submit: bad response %q: %w", body, err)
	}
	if jsonOut {
		if !wait || v.Status == "done" || v.Status == "failed" {
			os.Stdout.Write(append(body, '\n'))
			if v.Status == "failed" {
				return fmt.Errorf("job failed: %s", v.Error)
			}
			return nil
		}
	} else {
		fmt.Printf("job %s %s digest %s cached=%v\n", v.ID, v.Status, v.Digest, v.Cached)
		if !wait || v.Status == "done" || v.Status == "failed" {
			if v.Status == "done" {
				os.Stdout.Write(append(body, '\n'))
			}
			if v.Status == "failed" {
				return fmt.Errorf("job failed: %s", v.Error)
			}
			return nil
		}
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
		got, raw, err := getJob(r, base, v.ID)
		if err != nil {
			return err
		}
		switch got.Status {
		case "done":
			os.Stdout.Write(append(raw, '\n'))
			return nil
		case "failed":
			if jsonOut {
				os.Stdout.Write(append(raw, '\n'))
			}
			return fmt.Errorf("job %s failed: %s", got.ID, got.Error)
		case "canceled":
			return fmt.Errorf("job %s was canceled", got.ID)
		}
	}
	return fmt.Errorf("job %s still not finished after %s", v.ID, timeout)
}

// uploadView mirrors the server's upload-session wire format.
type uploadView struct {
	ID     string `json:"id"`
	Offset int64  `json:"offset"`
}

// getUploadOffset asks the server for a session's durable offset — the
// resume point after a lost connection or a lost PATCH response.
func getUploadOffset(base, id string) (int64, error) {
	resp, err := http.Get(base + "/v1/uploads/" + url.PathEscape(id))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET upload %s: %s: %s", id, resp.Status, strings.TrimSpace(string(raw)))
	}
	var v uploadView
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, err
	}
	return v.Offset, nil
}

// doUpload sends the trace through the resumable chunked protocol:
// create (or resume) a session, PATCH -chunk-size slices at the offset
// the server reports, finalize into a job. A dropped connection or a
// lost response re-syncs from the server's durable offset — the 409
// path — so no byte is ever sent to the wrong position; if the retry
// budget runs out, the printed -upload-id resumes the session later.
func doUpload(r *retrier, base, path, prog, opt string, prune int, chunkSize int64, uploadID string, wait bool, timeout time.Duration, jsonOut bool) error {
	if prog == "" || opt == "" {
		fmt.Fprintln(os.Stderr, "layoutctl: -upload requires -prog and -opt")
		os.Exit(2)
	}
	if chunkSize <= 0 {
		fmt.Fprintln(os.Stderr, "layoutctl: -chunk-size must be positive")
		os.Exit(2)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	size := fi.Size()

	id := uploadID
	var off int64
	if id == "" {
		resp, err := r.Do("create upload", func() (*http.Response, error) {
			return http.Post(base+"/v1/uploads", "application/json", nil)
		})
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("create upload: %s: %s", resp.Status, strings.TrimSpace(string(raw)))
		}
		var v uploadView
		if err := json.Unmarshal(raw, &v); err != nil {
			return fmt.Errorf("create upload: bad response %q: %w", raw, err)
		}
		id = v.ID
		log.Printf("upload %s created (%d bytes; resume with -upload-id %s)", id, size, id)
	} else {
		off, err = getUploadOffset(base, id)
		if err != nil {
			return err
		}
		log.Printf("resuming upload %s at offset %d/%d", id, off, size)
	}

	buf := make([]byte, chunkSize)
	failures := 0
	for off < size {
		end := off + chunkSize
		if end > size {
			end = size
		}
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return err
		}
		if _, err := io.ReadFull(f, buf[:end-off]); err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodPatch,
			base+"/v1/uploads/"+url.PathEscape(id), bytes.NewReader(buf[:end-off]))
		if err != nil {
			return err
		}
		req.Header.Set("Upload-Offset", fmt.Sprint(off))
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			failures++
			if failures > r.Max {
				return fmt.Errorf("upload %s interrupted at offset %d after %d retries (resume with -upload-id %s): %w",
					id, off, r.Max, id, err)
			}
			log.Printf("chunk at %d failed (%v); re-syncing offset", off, err)
			time.Sleep(r.Base * time.Duration(failures))
			if cur, oerr := getUploadOffset(base, id); oerr == nil {
				off = cur
			}
			continue
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		srvOff, offErr := strconv.ParseInt(resp.Header.Get("Upload-Offset"), 10, 64)
		switch resp.StatusCode {
		case http.StatusNoContent:
			if offErr != nil {
				return fmt.Errorf("PATCH at %d: bad Upload-Offset %q", off, resp.Header.Get("Upload-Offset"))
			}
			off = srvOff
			failures = 0
		case http.StatusConflict:
			// Out of sync (a lost response, a concurrent writer): the
			// durable offset rides the response; continue from it.
			failures++
			if failures > r.Max || offErr != nil {
				return fmt.Errorf("upload %s stuck at offset %d: %s: %s", id, off, resp.Status, strings.TrimSpace(string(raw)))
			}
			log.Printf("offset out of sync at %d; server reports %d", off, srvOff)
			off = srvOff
		default:
			return fmt.Errorf("PATCH at %d: %s: %s (resume with -upload-id %s)",
				off, resp.Status, strings.TrimSpace(string(raw)), id)
		}
	}

	q := url.Values{"prog": {prog}, "opt": {opt}}
	if prune > 0 {
		q.Set("prune", fmt.Sprint(prune))
	}
	resp, err := r.Do("finalize upload", func() (*http.Response, error) {
		return http.Post(base+"/v1/uploads/"+url.PathEscape(id)+"/finalize?"+q.Encode(), "application/json", nil)
	})
	if err != nil {
		return err
	}
	return awaitSubmitted(r, base, resp, wait, timeout, jsonOut)
}

// traceView mirrors the server's span-timeline wire format, loosely.
// Nodes and per-span node attribution appear on cluster-assembled
// documents (a job traced through a forwarding node).
type traceView struct {
	JobID   string   `json:"job_id"`
	TraceID string   `json:"trace_id"`
	Status  string   `json:"status"`
	Nodes   []string `json:"nodes"`
	Spans   []struct {
		Name    string  `json:"name"`
		Node    string  `json:"node"`
		StartMS float64 `json:"start_ms"`
		DurMS   float64 `json:"dur_ms"`
	} `json:"spans"`
	Dropped int64 `json:"dropped"`
}

func doTrace(r *retrier, base, id string, jsonOut bool) error {
	u := base + "/v1/jobs/" + url.PathEscape(id) + "/trace"
	resp, err := r.Do("GET "+u, func() (*http.Response, error) {
		return http.Get(u)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(raw)))
	}
	if jsonOut {
		os.Stdout.Write(raw)
		return nil
	}
	var tv traceView
	if err := json.Unmarshal(raw, &tv); err != nil {
		return fmt.Errorf("trace: bad response %q: %w", raw, err)
	}
	title := fmt.Sprintf("job %s (%s) trace %s — %d spans", tv.JobID, tv.Status, tv.TraceID, len(tv.Spans))
	if len(tv.Nodes) > 1 {
		title += fmt.Sprintf(" across %s", strings.Join(tv.Nodes, ", "))
	}
	w := textplot.Waterfall{Title: title, Format: "%.1fms"}
	// Multi-node documents get per-node lanes: each span's label is
	// prefixed with the node that recorded it.
	multiNode := len(tv.Nodes) > 1
	for _, sp := range tv.Spans {
		label := sp.Name
		if multiNode && sp.Node != "" {
			label = "[" + sp.Node + "] " + sp.Name
		}
		w.Add(label, sp.StartMS, sp.DurMS)
	}
	os.Stdout.WriteString(w.String())
	if tv.Dropped > 0 {
		fmt.Printf("(%d spans dropped by the per-job buffer bound)\n", tv.Dropped)
	}
	return nil
}

func doCancel(r *retrier, base, id string) error {
	resp, err := r.Do("cancel", func() (*http.Response, error) {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+url.PathEscape(id), nil)
		if err != nil {
			return nil, err
		}
		return http.DefaultClient.Do(req)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	// 200: a queued job was canceled; 202: a running corun/schedule job
	// is winding down and will land in "canceled".
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("cancel %s: %s: %s", id, resp.Status, strings.TrimSpace(string(raw)))
	}
	os.Stdout.Write(raw)
	return nil
}

func getJob(r *retrier, base, id string) (jobView, []byte, error) {
	resp, err := r.Do("poll "+id, func() (*http.Response, error) {
		return http.Get(base + "/v1/jobs/" + url.PathEscape(id))
	})
	if err != nil {
		return jobView{}, nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return jobView{}, nil, fmt.Errorf("GET job %s: %s: %s", id, resp.Status, strings.TrimSpace(string(raw)))
	}
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		return jobView{}, nil, err
	}
	return v, raw, nil
}

// healthView mirrors the server's /healthz wire format, loosely.
type healthView struct {
	Status   string `json:"status"`
	NodeID   string `json:"node_id"`
	Build    string `json:"build"`
	Degraded string `json:"degraded"`
}

// pickEndpoint probes each base URL's /healthz with a short timeout and
// returns the first that answers 200, preferring a non-degraded node
// when one exists. Forwarding is transparent server-side, so liveness
// is the only thing worth selecting on.
func pickEndpoint(endpoints []string) (string, error) {
	client := &http.Client{Timeout: 2 * time.Second}
	firstLive := ""
	for _, ep := range endpoints {
		ep = strings.TrimRight(strings.TrimSpace(ep), "/")
		if ep == "" {
			continue
		}
		resp, err := client.Get(ep + "/healthz")
		if err != nil {
			log.Printf("cluster endpoint %s unreachable: %v", ep, err)
			continue
		}
		var v healthView
		err = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&v)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			log.Printf("cluster endpoint %s unhealthy: %s", ep, resp.Status)
			continue
		}
		if v.Status == "ok" {
			return ep, nil
		}
		if firstLive == "" {
			firstLive = ep
		}
	}
	if firstLive != "" {
		return firstLive, nil
	}
	return "", fmt.Errorf("no live endpoint among %s", strings.Join(endpoints, ", "))
}

func doHealth(r *retrier, base string, jsonOut bool) error {
	u := base + "/healthz"
	resp, err := r.Do("GET "+u, func() (*http.Response, error) {
		return http.Get(u)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if jsonOut {
		os.Stdout.Write(append(raw, '\n'))
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", u, resp.Status)
		}
		return nil
	}
	var v healthView
	if err := json.Unmarshal(raw, &v); err != nil {
		return fmt.Errorf("health: bad response %q: %w", raw, err)
	}
	fmt.Printf("status   %s\n", v.Status)
	if v.NodeID != "" {
		fmt.Printf("node_id  %s\n", v.NodeID)
	}
	if v.Build != "" {
		fmt.Printf("build    %s\n", v.Build)
	}
	if v.Degraded != "" {
		fmt.Printf("degraded %s\n", v.Degraded)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	return nil
}

// clusterHealthRow is one endpoint's probe result for -health -cluster.
type clusterHealthRow struct {
	Endpoint  string `json:"endpoint"`
	NodeID    string `json:"node_id,omitempty"`
	Status    string `json:"status"`
	Degraded  string `json:"degraded,omitempty"`
	LatencyMS int64  `json:"latency_ms"`
}

// doClusterHealth probes every configured endpoint concurrently —
// unreachable ones included in the table, not skipped — so one command
// shows the whole fleet's health. Exit is nonzero only when no
// endpoint answered at all.
func doClusterHealth(endpoints []string, jsonOut bool) error {
	client := &http.Client{Timeout: 2 * time.Second}
	var eps []string
	for _, ep := range endpoints {
		if ep = strings.TrimRight(strings.TrimSpace(ep), "/"); ep != "" {
			eps = append(eps, ep)
		}
	}
	rows := make([]clusterHealthRow, len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep string) {
			defer wg.Done()
			row := clusterHealthRow{Endpoint: ep}
			start := time.Now()
			resp, err := client.Get(ep + "/healthz")
			row.LatencyMS = time.Since(start).Milliseconds()
			if err != nil {
				row.Status = "unreachable"
				row.Degraded = err.Error()
				rows[i] = row
				return
			}
			var v healthView
			derr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&v)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || derr != nil {
				row.Status = "unhealthy"
				row.Degraded = resp.Status
				rows[i] = row
				return
			}
			row.NodeID = v.NodeID
			row.Status = v.Status
			row.Degraded = v.Degraded
			rows[i] = row
		}(i, ep)
	}
	wg.Wait()
	live := 0
	for _, row := range rows {
		if row.Status == "ok" || row.Status == "degraded" {
			live++
		}
	}
	if jsonOut {
		raw, _ := json.MarshalIndent(map[string][]clusterHealthRow{"endpoints": rows}, "", "  ")
		os.Stdout.Write(append(raw, '\n'))
	} else {
		fmt.Printf("%-28s  %-8s  %-11s  %9s  %s\n", "ENDPOINT", "NODE", "STATUS", "LATENCY", "DEGRADED")
		for _, row := range rows {
			node := row.NodeID
			if node == "" {
				node = "-"
			}
			reason := row.Degraded
			if reason == "" {
				reason = "-"
			}
			fmt.Printf("%-28s  %-8s  %-11s  %7dms  %s\n", row.Endpoint, node, row.Status, row.LatencyMS, reason)
		}
		fmt.Printf("%d/%d endpoints live\n", live, len(rows))
	}
	if live == 0 {
		return fmt.Errorf("no live endpoint among %s", strings.Join(eps, ", "))
	}
	return nil
}

// doTop fetches the federated exposition at /v1/cluster/metrics, lints
// it (a lint failure is a hard error — the endpoint's contract is a
// clean exposition), and renders a per-node fleet summary.
func doTop(r *retrier, base string, jsonOut bool) error {
	u := base + "/v1/cluster/metrics"
	resp, err := r.Do("GET "+u, func() (*http.Response, error) {
		return http.Get(u)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(raw)))
	}
	exp, err := obs.LintPrometheusText(bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("federated exposition failed lint: %w", err)
	}
	if jsonOut {
		os.Stdout.Write(raw)
		return nil
	}

	// value[node][metric] for plain per-node series; histogram sums and
	// counts are folded for the average-lag column.
	value := map[string]map[string]float64{}
	nodeSet := map[string]bool{}
	for _, sr := range exp.Series {
		node := sr.Labels["node"]
		if node == "" {
			continue
		}
		nodeSet[node] = true
		if value[node] == nil {
			value[node] = map[string]float64{}
		}
		value[node][sr.Name] += sr.Value
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	get := func(node, metric string) (float64, bool) {
		v, ok := value[node][metric]
		return v, ok
	}
	fmt.Printf("%-8s  %-8s  %5s  %7s  %12s  %9s  %9s  %8s  %6s  %10s\n",
		"NODE", "STORE", "QUEUE", "RUNNING", "INFLIGHT", "COMPLETED", "REPL-Q", "LAG-AVG", "REPAIR", "GOROUTINES")
	for _, n := range nodes {
		storeState := "-"
		if v, ok := get(n, "layoutd_store_state"); ok {
			if v >= 1 {
				storeState = "ok"
			} else {
				storeState = "degraded"
			}
		}
		lag := "-"
		if cnt, ok := get(n, "layoutd_replication_lag_seconds_count"); ok && cnt > 0 {
			sum, _ := get(n, "layoutd_replication_lag_seconds_sum")
			lag = fmt.Sprintf("%.1fms", sum/cnt*1000)
		}
		num := func(metric string) string {
			if v, ok := get(n, metric); ok {
				return strconv.FormatFloat(v, 'f', -1, 64)
			}
			return "-"
		}
		fmt.Printf("%-8s  %-8s  %5s  %7s  %12s  %9s  %9s  %8s  %6s  %10s\n",
			n, storeState,
			num("layoutd_queue_depth"),
			num("layoutd_jobs_running"),
			num("layoutd_inflight_bytes"),
			num("layoutd_jobs_completed_total"),
			num("layoutd_replication_queue_depth"),
			lag,
			num("layoutd_antientropy_repaired_total"),
			num("layoutd_runtime_goroutines"))
	}
	fmt.Printf("%d nodes, %d series, exposition lint-clean\n", len(nodes), len(exp.Series))
	return nil
}

// storeListView mirrors GET /v1/store.
type storeListView struct {
	Entries []struct {
		Key        string `json:"key"`
		Kind       string `json:"kind"`
		Size       int64  `json:"size"`
		LastAccess string `json:"last_access"`
	} `json:"entries"`
	Count int   `json:"count"`
	Bytes int64 `json:"bytes"`
}

func doStoreList(r *retrier, base, kind string, jsonOut bool) error {
	u := base + "/v1/store"
	if kind != "" {
		u += "?kind=" + url.QueryEscape(kind)
	}
	resp, err := r.Do("GET "+u, func() (*http.Response, error) {
		return http.Get(u)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(raw)))
	}
	if jsonOut {
		os.Stdout.Write(append(raw, '\n'))
		return nil
	}
	var v storeListView
	if err := json.Unmarshal(raw, &v); err != nil {
		return fmt.Errorf("store list: bad response %q: %w", raw, err)
	}
	for _, e := range v.Entries {
		fmt.Printf("%-64s  %-8s  %10d  %s\n", e.Key, e.Kind, e.Size, e.LastAccess)
	}
	fmt.Printf("%d blobs, %d bytes\n", v.Count, v.Bytes)
	return nil
}

func printGET(r *retrier, u string) error {
	resp, err := r.Do("GET "+u, func() (*http.Response, error) {
		return http.Get(u)
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(raw)))
	}
	os.Stdout.Write(raw)
	return nil
}
