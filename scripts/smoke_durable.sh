#!/bin/sh
# smoke_durable.sh — durability smoke test, run by `make smoke-durable`
# and the CI durable-smoke job:
#
#   1. build layoutd/layoutctl/tracedump,
#   2. start layoutd with a persistent store, submit a job, wait for it,
#      fetch the layout by digest,
#   3. SIGKILL the daemon mid-flight (no drain at all),
#   4. restart layoutd on the same store directory, resubmit the
#      identical request, and require a disk cache hit with a
#      byte-identical layout and zero quarantined blobs,
#   5. start a second daemon with -fault-spec forcing every write to
#      ENOSPC and require it to keep serving in degraded mode,
#   6. SIGTERM and require a clean drain.
#
# Set SMOKE_WORK to redirect the scratch dir somewhere that survives the
# run (CI points it at a directory uploaded as an artifact on failure);
# without it a mktemp dir is used and removed.
set -eu

if [ -n "${SMOKE_WORK:-}" ]; then
    WORK=$SMOKE_WORK
    mkdir -p "$WORK"
    KEEP_WORK=1
else
    WORK=$(mktemp -d)
    KEEP_WORK=0
fi
DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
    fi
    [ "$KEEP_WORK" = 1 ] || rm -rf "$WORK"
}
trap cleanup EXIT

PROG=458.sjeng
OPT=func-affinity

echo "smoke-durable: building binaries"
go build -o "$WORK/layoutd" ./cmd/layoutd
go build -o "$WORK/layoutctl" ./cmd/layoutctl
go build -o "$WORK/tracedump" ./cmd/tracedump

echo "smoke-durable: recording a $PROG trace"
"$WORK/tracedump" -prog "$PROG" -record "$WORK/t" -gran bb

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

start_daemon() {
    # $1 = extra flags appended verbatim; $2 = log file
    rm -f "$WORK/addr"
    # shellcheck disable=SC2086
    "$WORK/layoutd" -addr 127.0.0.1:0 -jobs 2 -queue 8 \
        -store-dir "$WORK/store" $1 \
        -ready-file "$WORK/addr" >"$2" 2>&1 &
    DAEMON_PID=$!
    i=0
    while [ ! -s "$WORK/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-durable: layoutd never became ready" >&2
            cat "$2" >&2
            exit 1
        fi
        kill -0 "$DAEMON_PID" 2>/dev/null || {
            echo "smoke-durable: layoutd exited early" >&2
            cat "$2" >&2
            exit 1
        }
        sleep 0.1
    done
    ADDR="http://$(cat "$WORK/addr")"
}

start_daemon "" "$WORK/layoutd1.log"
echo "smoke-durable: layoutd at $ADDR (store $WORK/store)"

echo "smoke-durable: submitting job"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result1.json"
grep -q '"status": "done"' "$WORK/result1.json"
DIGEST=$(grep -o '"digest": "[0-9a-f]*"' "$WORK/result1.json" | head -1 | cut -d'"' -f4)
[ -n "$DIGEST" ] || { echo "smoke-durable: no digest in result" >&2; exit 1; }

echo "smoke-durable: waiting for the write-behind to land the blobs"
# Two writes per submission: the retained trace and the result.
i=0
while ! fetch "$ADDR/metrics" | grep -q '^layoutd_store_writes_total 2$'; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-durable: blob never hit disk" >&2
        fetch "$ADDR/metrics" >&2 || true
        exit 1
    fi
    sleep 0.1
done
fetch "$ADDR/v1/layouts/$DIGEST" >"$WORK/layout1.json"

echo "smoke-durable: SIGKILL (simulated crash, no drain)"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "smoke-durable: restarting layoutd on the same store"
start_daemon "" "$WORK/layoutd2.log"
echo "smoke-durable: layoutd back at $ADDR"

echo "smoke-durable: resubmitting identical trace (expect disk cache hit)"
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result2.json"
grep -q 'cached=true' "$WORK/result2.json"

fetch "$ADDR/v1/layouts/$DIGEST" >"$WORK/layout2.json"
cmp "$WORK/layout1.json" "$WORK/layout2.json" || {
    echo "smoke-durable: layout changed across the crash" >&2
    exit 1
}

fetch "$ADDR/metrics" >"$WORK/metrics.txt"
grep -q '^layoutd_store_hits_total 1$' "$WORK/metrics.txt"
grep -q '^layoutd_cache_hits_total 1$' "$WORK/metrics.txt"
grep -q '^layoutd_store_quarantined_total 0$' "$WORK/metrics.txt"
grep -q '^layoutd_jobs_completed_total 0$' "$WORK/metrics.txt"

echo "smoke-durable: draining restarted daemon"
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-durable: layoutd did not exit after SIGTERM" >&2
        cat "$WORK/layoutd2.log" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$DAEMON_PID" 2>/dev/null || true
grep -q 'drained cleanly' "$WORK/layoutd2.log"
DAEMON_PID=""

echo "smoke-durable: starting layoutd with every disk write failing (ENOSPC)"
rm -rf "$WORK/store"
start_daemon "-fault-spec write:every=1,err=ENOSPC" "$WORK/layoutd3.log"
echo "smoke-durable: faulted layoutd at $ADDR"

"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result3.json"
grep -q '"status": "done"' "$WORK/result3.json"

echo "smoke-durable: waiting for degraded health"
i=0
while ! fetch "$ADDR/healthz" | grep -q degraded; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-durable: daemon never reported degraded" >&2
        cat "$WORK/layoutd3.log" >&2
        exit 1
    fi
    sleep 0.1
done
fetch "$ADDR/metrics" | grep -q '^layoutd_store_state 0$'

# Degraded is not down: the identical resubmit is served from memory.
"$WORK/layoutctl" -addr "$ADDR" -submit "$WORK/t.trace" \
    -prog "$PROG" -opt "$OPT" -wait >"$WORK/result4.json"
grep -q 'cached=true' "$WORK/result4.json"

echo "smoke-durable: draining faulted daemon"
kill -TERM "$DAEMON_PID"
i=0
while kill -0 "$DAEMON_PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "smoke-durable: faulted layoutd did not exit after SIGTERM" >&2
        cat "$WORK/layoutd3.log" >&2
        exit 1
    fi
    sleep 0.1
done
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

echo "smoke-durable: OK"
