package server

import "sync"

// DefaultDebugJobRing bounds the recent-job summaries kept for
// GET /v1/debug/jobs when Config.DebugJobRing is zero.
const DefaultDebugJobRing = 64

// jobSummary is one entry in the recent-jobs debug ring: enough to
// correlate a job with its logs (trace_id) and judge its outcome at a
// glance, without holding the full result.
type jobSummary struct {
	ID        string  `json:"id"`
	Kind      string  `json:"kind,omitempty"`
	TraceID   string  `json:"trace_id"`
	Status    string  `json:"status"`
	Prog      string  `json:"prog,omitempty"`
	Optimizer string  `json:"optimizer,omitempty"`
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
}

// debugRing is a fixed-size ring of job summaries. Unlike the jobs map
// (TTL- and count-bounded, holds full results), the ring is a cheap
// always-on flight recorder: the last N terminal jobs, oldest evicted
// first, never more memory than N summaries.
type debugRing struct {
	mu   sync.Mutex
	buf  []jobSummary
	next int
	n    int
}

func newDebugRing(size int) *debugRing {
	if size <= 0 {
		size = DefaultDebugJobRing
	}
	return &debugRing{buf: make([]jobSummary, size)}
}

func (r *debugRing) push(s jobSummary) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// snapshot returns the ring contents newest-first.
func (r *debugRing) snapshot() []jobSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]jobSummary, 0, r.n)
	for i := 0; i < r.n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}
