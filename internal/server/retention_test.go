package server

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func newRetentionServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func storedJob(id, status string, fin time.Time) *Job {
	return &Job{id: id, status: status, finished: fin}
}

func TestJobRetentionTTL(t *testing.T) {
	s := newRetentionServer(t, Config{JobTTL: time.Minute, MaxJobs: 100})
	now := time.Unix(1000, 0)
	s.now = func() time.Time { return now }

	s.storeJob(storedJob("done-old", StatusDone, now))
	s.storeJob(storedJob("failed-old", StatusFailed, now))
	s.storeJob(storedJob("running", StatusRunning, time.Time{}))
	if got := s.JobsTracked(); got != 3 {
		t.Fatalf("tracked = %d, want 3", got)
	}

	// Within TTL nothing expires.
	now = now.Add(30 * time.Second)
	s.storeJob(storedJob("done-new", StatusDone, now))
	if got := s.JobsTracked(); got != 4 {
		t.Fatalf("tracked = %d, want 4", got)
	}

	// Past TTL the old terminal jobs go; running and fresh ones stay.
	now = now.Add(45 * time.Second)
	s.storeJob(storedJob("trigger", StatusQueued, time.Time{}))
	s.mu.Lock()
	_, oldDone := s.jobs["done-old"]
	_, oldFailed := s.jobs["failed-old"]
	_, running := s.jobs["running"]
	_, newDone := s.jobs["done-new"]
	s.mu.Unlock()
	if oldDone || oldFailed {
		t.Error("terminal jobs past TTL were not pruned")
	}
	if !running {
		t.Error("running job was pruned")
	}
	if !newDone {
		t.Error("terminal job within TTL was pruned")
	}
}

func TestJobRetentionMaxJobs(t *testing.T) {
	s := newRetentionServer(t, Config{JobTTL: time.Hour, MaxJobs: 4})
	base := time.Unix(2000, 0)
	s.now = func() time.Time { return base }

	for i := 0; i < 4; i++ {
		s.storeJob(storedJob(fmt.Sprintf("done-%d", i), StatusDone, base.Add(time.Duration(i)*time.Second)))
	}
	s.storeJob(storedJob("overflow", StatusDone, base.Add(10*time.Second)))
	if got := s.JobsTracked(); got > 4 {
		t.Fatalf("tracked = %d, want <= MaxJobs (4)", got)
	}
	s.mu.Lock()
	_, oldest := s.jobs["done-0"]
	_, newest := s.jobs["overflow"]
	s.mu.Unlock()
	if oldest {
		t.Error("oldest terminal job survived the cap")
	}
	if !newest {
		t.Error("newly stored job was evicted")
	}
}

func TestJobRetentionKeepsActiveOverCap(t *testing.T) {
	s := newRetentionServer(t, Config{JobTTL: time.Hour, MaxJobs: 2})
	base := time.Unix(3000, 0)
	s.now = func() time.Time { return base }

	for i := 0; i < 5; i++ {
		s.storeJob(storedJob(fmt.Sprintf("run-%d", i), StatusRunning, time.Time{}))
	}
	// Active jobs are never evicted, even far over the cap.
	if got := s.JobsTracked(); got != 5 {
		t.Fatalf("tracked = %d, want 5 (active jobs exempt from cap)", got)
	}
}
