package experiments

import (
	"fmt"

	"codelayout/internal/parallel"
	"codelayout/internal/progen"
	"codelayout/internal/stats"
)

// Table1Row is one benchmark's characteristics, matching the columns of
// the paper's Table I.
type Table1Row struct {
	Name string
	// DynamicInstrs is the executed instruction count (the paper
	// reports billions; the synthetic analogues run millions).
	DynamicInstrs int64
	// StaticBytes is the program's static code size.
	StaticBytes int64
	// MissSolo, MissGCC and MissGamess are L1 I-cache miss ratios solo
	// and co-running with the two probes (hardware counters).
	MissSolo, MissGCC, MissGamess float64
}

// Table1Result reproduces Table I for the 8-program main suite.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 measures the characteristics of the main suite.
func Table1(w *Workspace) (Table1Result, error) {
	var res Table1Result
	suite, err := w.MainSuite()
	if err != nil {
		return res, err
	}
	gcc, err := w.Bench(progen.ProbeGCC)
	if err != nil {
		return res, err
	}
	gamess, err := w.Bench(progen.ProbeGamess)
	if err != nil {
		return res, err
	}
	// One independent job per program, rows in suite order.
	rows, err := parallel.Map(w.Workers(), len(suite), func(i int) (Table1Row, error) {
		b := suite[i]
		solo, err := b.HWSolo(Baseline)
		if err != nil {
			return Table1Row{}, err
		}
		c1, err := HWCorunTimed(b, Baseline, gcc, Baseline)
		if err != nil {
			return Table1Row{}, err
		}
		c2, err := HWCorunTimed(b, Baseline, gamess, Baseline)
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Name:          b.Name(),
			DynamicInstrs: solo.Thread.Instrs,
			StaticBytes:   b.Prog.StaticBytes(),
			MissSolo:      solo.Counters.ICacheMissRatio(),
			MissGCC:       c1.Counters.ICacheMissRatio(),
			MissGamess:    c2.Counters.ICacheMissRatio(),
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Rows = rows
	return res, nil
}

// String renders Table I.
func (r Table1Result) String() string {
	t := &stats.Table{Header: []string{
		"Prog.", "Instr (dyn, M)", "Static (B)", "Solo", "Co-run gcc", "Co-run gamess",
	}}
	for _, row := range r.Rows {
		t.Add(row.Name,
			fmt.Sprintf("%.2f", float64(row.DynamicInstrs)/1e6),
			fmt.Sprintf("%d", row.StaticBytes),
			stats.Pct(row.MissSolo),
			stats.Pct(row.MissGCC),
			stats.Pct(row.MissGamess))
	}
	return "Table I: characteristics of the 8 benchmarks\n\n" + t.String()
}
