package layout

import "codelayout/internal/ir"

// StreamReplayer is the chunk-fed form of a non-wrapping Replayer: the
// caller pushes block occurrences as they arrive (layoutd decoding an
// upload that is still on the wire) and the fetch stream comes out
// identical to replaying the concatenated trace through AppendLines.
//
// Two per-occurrence rules look one step ahead, so the replayer holds
// back the most recent occurrence until its successor is known:
//
//   - a layout-appended jump patching a Branch only executes when the
//     trace actually goes to the displaced fall-through (the next
//     occurrence decides lastFull vs lastShort);
//   - the held occurrence itself is the "previous block" of the stub
//     rule for whatever follows it.
//
// Finish flushes the held occurrence with no successor — exactly the
// buffered path's non-wrapping trace end.
//
// A StreamReplayer is not safe for concurrent use.
type StreamReplayer struct {
	plan     *replayPlan
	hasStubs bool
	prev     ir.BlockID // last emitted occurrence, for the stub rule
	held     ir.BlockID // most recent occurrence, awaiting its successor
	hasHeld  bool
	blocks   int64
}

// NewStreamReplayer creates a chunk-fed replayer over the given layout.
// The layout is immutable for the replayer's lifetime by contract.
func NewStreamReplayer(l *Layout, lineBytes int) *StreamReplayer {
	return &StreamReplayer{
		plan:     buildReplayPlan(l, int64(lineBytes)),
		hasStubs: l.HasStubs(),
		prev:     ir.NoBlock,
		held:     ir.NoBlock,
	}
}

// emit appends the lines fetched by one occurrence of b whose successor
// in the trace is next (ir.NoBlock at the trace end) — the same rules,
// in the same order, as Replayer.AppendLines.
func (r *StreamReplayer) emit(dst []int64, b, next ir.BlockID) []int64 {
	p := r.plan
	if r.hasStubs && r.prev != ir.NoBlock {
		if fn := p.entryFn[b]; fn >= 0 && p.callCallee[r.prev] == fn {
			for ln := p.stubFirst[fn]; ln <= p.stubLast[fn]; ln++ {
				dst = append(dst, ln)
			}
		}
	}
	last := p.lastFull[b]
	if f := p.fall[b]; f != ir.NoBlock && next != f {
		last = p.lastShort[b]
	}
	for ln := p.lineFirst[b]; ln <= last; ln++ {
		dst = append(dst, ln)
	}
	r.prev = b
	r.blocks++
	return dst
}

// Feed appends the cache lines fetched by chunk's occurrences to dst
// and returns the extended slice. Chunk boundaries are irrelevant: any
// split of a trace yields the same line stream. The lines for the
// chunk's final occurrence appear only once its successor arrives (in
// the next chunk, or at Finish).
func (r *StreamReplayer) Feed(dst []int64, chunk []int32) []int64 {
	for _, s := range chunk {
		b := ir.BlockID(s)
		if r.hasHeld {
			dst = r.emit(dst, r.held, b)
		}
		r.held, r.hasHeld = b, true
	}
	return dst
}

// Finish flushes the held trailing occurrence — its successor is the
// trace end — and returns the extended slice. The replayer is exhausted
// afterwards; further Feed calls start emitting again as if the stream
// continued, so call Finish exactly once, last.
func (r *StreamReplayer) Finish(dst []int64) []int64 {
	if r.hasHeld {
		dst = r.emit(dst, r.held, ir.NoBlock)
		r.held, r.hasHeld = ir.NoBlock, false
	}
	return dst
}

// Blocks returns the number of occurrences emitted so far (the held
// occurrence counts only after Finish or its successor's arrival).
func (r *StreamReplayer) Blocks() int64 { return r.blocks }
