package store

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"codelayout/internal/fault"
)

// Resumable upload sessions: the server-side half of layoutd's chunked
// trace ingest. A client creates a session, PATCHes byte ranges at the
// offset the server reports, and finalizes; if the connection drops
// mid-PATCH it asks for the current offset and continues from there.
//
// Durability model: spooled bytes live in .part files next to the blob
// store, fsynced after every accepted append, and each append is
// all-or-nothing — a failed or short body truncates back to the prior
// offset, so the reported offset always equals the durable prefix.
// Beside every spool sits a .session metadata document (id, durable
// offset, sha256 of the durable prefix) persisted with the same
// tmp+fsync+rename discipline as blobs, written only after the spool
// bytes it describes are themselves fsynced. That makes sessions
// survive a SIGKILL: the startup scan re-opens every spool whose
// metadata checks out (truncating any un-recorded tail a crash left
// behind and re-verifying the prefix checksum), and quarantines only
// truly orphaned or corrupt pairs. A client that held an upload across
// a daemon restart just re-GETs the offset — or learns it from the 409
// resync — and continues.

// Spool-directory file classes. The blob store never scans this
// directory (uploads live in their own subdirectory).
const (
	// partSuffix marks upload spool files.
	partSuffix = ".part"
	// sessSuffix marks the metadata document beside each spool.
	sessSuffix = ".session"
	// uploadTmpSuffix marks in-flight metadata writes, deleted on sight
	// at startup.
	uploadTmpSuffix = ".tmp"
	// streamSpoolPrefix/-Suffix match the server's streamed-submission
	// spools (os.CreateTemp "stream-*.cltr" in this directory). They are
	// request-scoped, so any survivor belongs to a dead process and is
	// deleted at startup.
	streamSpoolPrefix = "stream-"
	streamSpoolSuffix = ".cltr"
)

// Defaults for zero UploadsConfig limits.
const (
	// DefaultUploadMaxBytes bounds one upload's spooled size.
	DefaultUploadMaxBytes = 4 << 30
	// DefaultMaxUploadSessions bounds concurrently open sessions.
	DefaultMaxUploadSessions = 64
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrOffsetMismatch: the PATCH offset is not the session's current
	// offset (409; re-GET the offset and resume from there).
	ErrOffsetMismatch = errors.New("store: upload offset mismatch")
	// ErrUploadTooLarge: the append would exceed the per-upload bound
	// (413).
	ErrUploadTooLarge = errors.New("store: upload exceeds size limit")
	// ErrTooManySessions: the session table is full (429).
	ErrTooManySessions = errors.New("store: too many upload sessions")
	// ErrUploadSealed: the session was already finalized (409).
	ErrUploadSealed = errors.New("store: upload already finalized")
)

// uploadMeta is the .session document: everything needed to adopt the
// spool after a crash. SHA256 is the hex digest of the durable prefix
// (the first Offset bytes), so recovery can prove the spool it found is
// the spool the metadata describes.
type uploadMeta struct {
	ID      string `json:"id"`
	Offset  int64  `json:"offset"`
	SHA256  string `json:"sha256"`
	Created string `json:"created"` // RFC3339, informational
}

// UploadsConfig configures OpenUploads.
type UploadsConfig struct {
	// Dir is the spool directory, created if absent.
	Dir string
	// MaxBytes bounds one upload's size. 0 means DefaultUploadMaxBytes.
	MaxBytes int64
	// MaxSessions bounds concurrently open sessions (recovered sessions
	// are always adopted, even past the bound). 0 means
	// DefaultMaxUploadSessions.
	MaxSessions int
	// FS is the filesystem; nil means fault.OS(). Tests inject faults
	// through it, same as the blob store.
	FS fault.FS
	// Logf receives recovery and quarantine diagnostics. nil means
	// silent.
	Logf func(format string, args ...any)
}

// Uploads manages the upload sessions of one daemon process.
type Uploads struct {
	dir         string
	maxBytes    int64
	maxSessions int
	fs          fault.FS
	logf        func(format string, args ...any)
	recovered   int // sessions adopted by the startup scan

	mu sync.Mutex
	m  map[string]*Upload
}

// NewUploads is the legacy constructor: OpenUploads against the real
// filesystem. maxBytes bounds one upload, maxSessions the open-session
// count; zeros mean the defaults.
func NewUploads(dir string, maxBytes int64, maxSessions int) (*Uploads, error) {
	return OpenUploads(UploadsConfig{Dir: dir, MaxBytes: maxBytes, MaxSessions: maxSessions})
}

// OpenUploads prepares the spool directory and recovers the sessions of
// a previous process: every .part spool with a valid .session metadata
// document is truncated to its durable offset, checksum-verified, and
// re-registered at the offset the dead process last acknowledged.
// Orphaned or corrupt spool/metadata pairs are quarantined; stray
// metadata temp files and dead streamed-submission spools are deleted.
func OpenUploads(cfg UploadsConfig) (*Uploads, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultUploadMaxBytes
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxUploadSessions
	}
	if cfg.FS == nil {
		cfg.FS = fault.OS()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	u := &Uploads{
		dir:         cfg.Dir,
		maxBytes:    cfg.MaxBytes,
		maxSessions: cfg.MaxSessions,
		fs:          cfg.FS,
		logf:        cfg.Logf,
		m:           make(map[string]*Upload),
	}
	if err := u.fs.MkdirAll(u.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating upload dir %s: %w", u.dir, err)
	}
	if err := u.scan(); err != nil {
		return nil, err
	}
	return u, nil
}

// scan classifies every file in the spool directory and recovers or
// quarantines upload sessions.
func (u *Uploads) scan() error {
	ents, err := u.fs.ReadDir(u.dir)
	if err != nil {
		return fmt.Errorf("store: scanning upload dir %s: %w", u.dir, err)
	}
	parts := make(map[string]bool)
	metas := make(map[string]bool)
	for _, de := range ents {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		switch {
		case strings.HasSuffix(name, uploadTmpSuffix):
			// An in-flight metadata write that never renamed into place.
			_ = u.fs.Remove(filepath.Join(u.dir, name))
		case strings.HasPrefix(name, streamSpoolPrefix) && strings.HasSuffix(name, streamSpoolSuffix):
			// A streamed submission spool whose request died with the
			// process.
			u.logf("store: removing dead stream spool %s", name)
			_ = u.fs.Remove(filepath.Join(u.dir, name))
		case strings.HasSuffix(name, partSuffix):
			parts[strings.TrimSuffix(name, partSuffix)] = true
		case strings.HasSuffix(name, sessSuffix):
			metas[strings.TrimSuffix(name, sessSuffix)] = true
		}
	}
	for id := range parts {
		if !metas[id] {
			// A spool with no metadata: Create crashed between the two
			// writes, or the metadata was lost. Nothing proves what the
			// bytes are; set it aside.
			u.quarantine(id+partSuffix, errors.New("no session metadata"))
			continue
		}
		if err := u.recover(id); err != nil {
			u.logf("store: quarantining upload session %s: %v", id, err)
			u.quarantine(id+partSuffix, err)
			u.quarantine(id+sessSuffix, err)
		}
	}
	for id := range metas {
		if !parts[id] {
			// Metadata with no spool: the spool was consumed (sealed) but
			// the metadata removal was lost, or the spool is gone. Either
			// way the session cannot continue.
			u.quarantine(id+sessSuffix, errors.New("no spool for session metadata"))
		}
	}
	u.recovered = len(u.m)
	if u.recovered > 0 {
		u.logf("store: recovered %d upload session(s)", u.recovered)
	}
	return nil
}

// recover adopts one spool/metadata pair: parse, truncate the spool to
// the durable offset, verify the prefix checksum, and register the
// session. Any failure is returned for the caller to quarantine.
func (u *Uploads) recover(id string) error {
	mf, err := u.fs.Open(u.metaPath(id))
	if err != nil {
		return fmt.Errorf("opening metadata: %w", err)
	}
	raw, err := io.ReadAll(io.LimitReader(mf, 1<<16))
	mf.Close()
	if err != nil {
		return fmt.Errorf("reading metadata: %w", err)
	}
	var meta uploadMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		return fmt.Errorf("parsing metadata: %w", err)
	}
	if meta.ID != id || meta.Offset < 0 {
		return fmt.Errorf("metadata names %q offset %d", meta.ID, meta.Offset)
	}
	fi, err := u.fs.Stat(u.partPath(id))
	if err != nil {
		return fmt.Errorf("stat spool: %w", err)
	}
	if fi.Size() < meta.Offset {
		// The durable prefix the client was promised does not exist.
		return fmt.Errorf("spool is %d bytes, durable offset %d", fi.Size(), meta.Offset)
	}
	f, err := u.fs.OpenFile(u.partPath(id), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("reopening spool: %w", err)
	}
	if fi.Size() > meta.Offset {
		// Bytes past the recorded offset were never acknowledged (the
		// crash hit between the spool fsync and the metadata persist);
		// drop them so the spool equals the durable prefix.
		if err := f.Truncate(meta.Offset); err != nil {
			f.Close()
			return fmt.Errorf("truncating spool to durable offset: %w", err)
		}
	}
	h := sha256.New()
	if _, err := io.CopyN(h, f, meta.Offset); err != nil {
		f.Close()
		return fmt.Errorf("hashing durable prefix: %w", err)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != meta.SHA256 {
		f.Close()
		return fmt.Errorf("durable prefix sha256 %s, metadata records %s", got, meta.SHA256)
	}
	up := &Upload{
		ID:        id,
		maxBytes:  u.maxBytes,
		u:         u,
		f:         f,
		offset:    meta.Offset,
		hash:      h,
		created:   meta.Created,
		Recovered: true,
	}
	u.m[id] = up
	u.logf("store: recovered upload session %s at offset %d", id, meta.Offset)
	return nil
}

// quarantine moves a spool-directory file into quarantine/ (or deletes
// it if the move fails), mirroring the blob store's policy: keep the
// evidence for forensics, never let it masquerade as live state.
func (u *Uploads) quarantine(name string, cause error) {
	src := filepath.Join(u.dir, name)
	qdir := filepath.Join(u.dir, quarantineDir)
	_ = u.fs.MkdirAll(qdir, 0o755)
	if err := u.fs.Rename(src, filepath.Join(qdir, name)); err != nil {
		_ = u.fs.Remove(src)
	}
	u.logf("store: quarantined upload file %s: %v", name, cause)
}

// Dir returns the spool directory (the server also parks streamed
// submission spools beside the upload sessions).
func (u *Uploads) Dir() string { return u.dir }

// Recovered returns how many sessions the startup scan adopted from a
// previous process.
func (u *Uploads) Recovered() int { return u.recovered }

// Create opens a new session at offset 0 and persists its metadata, so
// the session exists after a crash even before the first append.
func (u *Uploads) Create() (*Upload, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, fmt.Errorf("store: upload id: %w", err)
	}
	id := hex.EncodeToString(b[:])
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.m) >= u.maxSessions {
		return nil, ErrTooManySessions
	}
	f, err := u.fs.Create(u.partPath(id))
	if err != nil {
		return nil, fmt.Errorf("store: upload spool: %w", err)
	}
	up := &Upload{
		ID:       id,
		maxBytes: u.maxBytes,
		u:        u,
		f:        f,
		hash:     sha256.New(),
		created:  time.Now().UTC().Format(time.RFC3339),
	}
	if err := u.persistMeta(up); err != nil {
		f.Close()
		_ = u.fs.Remove(u.partPath(id))
		return nil, fmt.Errorf("store: upload session metadata: %w", err)
	}
	u.m[id] = up
	return up, nil
}

// persistMeta writes up's metadata document with tmp+fsync+rename, then
// best-effort fsyncs the directory. Callers must hold up.mu or otherwise
// have exclusive use of the session.
func (u *Uploads) persistMeta(up *Upload) error {
	meta := uploadMeta{
		ID:      up.ID,
		Offset:  up.offset,
		SHA256:  hex.EncodeToString(up.hash.Sum(nil)),
		Created: up.created,
	}
	data, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	tmp := u.metaPath(up.ID) + uploadTmpSuffix
	f, err := u.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = u.fs.Remove(tmp)
		return err
	}
	if err := u.fs.Rename(tmp, u.metaPath(up.ID)); err != nil {
		_ = u.fs.Remove(tmp)
		return err
	}
	if d, err := u.fs.Open(u.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Get returns the open session with the given id.
func (u *Uploads) Get(id string) (*Upload, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	up, ok := u.m[id]
	return up, ok
}

// Len returns the number of open sessions (the sessions gauge).
func (u *Uploads) Len() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.m)
}

// Seal finalizes the session: the spool file is synced, closed and
// handed to the caller, the metadata document is removed, and the
// session slot frees up. The caller owns the returned path — typically
// it streams the bytes into a job and then removes the file.
func (u *Uploads) Seal(id string) (path string, size int64, err error) {
	u.mu.Lock()
	up, ok := u.m[id]
	if ok {
		delete(u.m, id)
	}
	u.mu.Unlock()
	if !ok {
		return "", 0, fmt.Errorf("store: unknown upload %s", id)
	}
	up.mu.Lock()
	defer up.mu.Unlock()
	up.sealed = true
	size = up.offset
	if err := up.f.Close(); err != nil {
		_ = u.fs.Remove(u.partPath(id))
		_ = u.fs.Remove(u.metaPath(id))
		return "", 0, fmt.Errorf("store: sealing upload %s: %w", id, err)
	}
	_ = u.fs.Remove(u.metaPath(id))
	return u.partPath(id), size, nil
}

// Discard drops the session and deletes its spool and metadata files,
// reporting whether the session existed.
func (u *Uploads) Discard(id string) bool {
	u.mu.Lock()
	up, ok := u.m[id]
	if ok {
		delete(u.m, id)
	}
	u.mu.Unlock()
	if !ok {
		return false
	}
	up.mu.Lock()
	up.sealed = true
	_ = up.f.Close()
	up.mu.Unlock()
	_ = u.fs.Remove(u.partPath(id))
	_ = u.fs.Remove(u.metaPath(id))
	return true
}

func (u *Uploads) partPath(id string) string {
	return filepath.Join(u.dir, id+partSuffix)
}

func (u *Uploads) metaPath(id string) string {
	return filepath.Join(u.dir, id+sessSuffix)
}

// Upload is one resumable session. Appends serialize on the session;
// a concurrent PATCH simply observes a stale offset and gets
// ErrOffsetMismatch.
type Upload struct {
	ID string
	// Recovered is true when the startup scan adopted this session from
	// a previous process.
	Recovered bool

	maxBytes int64
	u        *Uploads
	created  string

	mu      sync.Mutex
	f       fault.File
	offset  int64
	hash    hash.Hash // sha256 of the durable prefix
	aborted bool      // last append failed mid-body; the next success is a resume
	sealed  bool
}

// Offset returns the durable byte count — where the next Append must
// start.
func (up *Upload) Offset() int64 {
	up.mu.Lock()
	defer up.mu.Unlock()
	return up.offset
}

// DigestHex returns the sha256 of the durable prefix, so clients can
// verify a resumed session matches the bytes they already sent.
func (up *Upload) DigestHex() string {
	up.mu.Lock()
	defer up.mu.Unlock()
	return hex.EncodeToString(up.hash.Sum(nil))
}

// Append writes r's bytes at the given offset. The append is
// all-or-nothing: on any failure (offset mismatch, client disconnect
// mid-body, size bound, disk error) the spool rolls back to the prior
// offset, which is returned alongside the error so the HTTP layer can
// report it. The durable order is spool write → spool fsync → metadata
// persist → acknowledge; a crash between any two steps recovers to the
// last offset a client was actually told. resumed is true when this
// append recovered a session whose previous append failed mid-body —
// the upload-resume counter's signal.
func (up *Upload) Append(offset int64, r io.Reader) (newOffset int64, resumed bool, err error) {
	up.mu.Lock()
	defer up.mu.Unlock()
	if up.sealed {
		return up.offset, false, ErrUploadSealed
	}
	if offset != up.offset {
		return up.offset, false, ErrOffsetMismatch
	}
	// Snapshot the running checksum so a failed append restores it along
	// with the spool bytes it describes.
	hashState, err := up.hash.(encoding.BinaryMarshaler).MarshalBinary()
	if err != nil {
		return up.offset, false, err
	}
	allowed := up.maxBytes - up.offset
	n, err := io.Copy(io.MultiWriter(up.f, up.hash), io.LimitReader(r, allowed+1))
	if err == nil && n > allowed {
		err = ErrUploadTooLarge
	}
	if err == nil {
		err = up.f.Sync()
	}
	if err == nil {
		up.offset += n
		if merr := up.u.persistMeta(up); merr != nil {
			up.offset -= n
			err = merr
		}
	}
	if err != nil {
		// Roll back to the durable prefix so the reported offset stays
		// truthful; the client resumes from it.
		_ = up.f.Truncate(up.offset)
		_, _ = up.f.Seek(up.offset, io.SeekStart)
		_ = up.hash.(encoding.BinaryUnmarshaler).UnmarshalBinary(hashState)
		up.aborted = true
		return up.offset, false, err
	}
	resumed = up.aborted
	up.aborted = false
	return up.offset, resumed, nil
}
