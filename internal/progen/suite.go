package progen

import "fmt"

// The named suites mirror the paper's benchmark selection:
//
//   - ScreeningSuite corresponds to the 29 SPEC CPU2006 programs of
//     Figure 4, with a spread of instruction footprints so that roughly
//     9 of 29 show non-trivial solo I-cache miss ratios (the paper's
//     "30% of the benchmark programs");
//   - MainSuite corresponds to Table I's 8 programs (perlbench, gcc,
//     mcf, gobmk, povray, sjeng, omnetpp, xalancbmk);
//   - the probe programs of the co-run experiments are gcc (moderate
//     contention, "co-run 1") and gamess (aggressive, "co-run 2").
//
// Every program here is a synthetic analogue: its absolute numbers are
// calibrated against the paper's bands (Table I solo miss ratios of
// 0-2.7%, probes higher), not copied, and only the relative shapes are
// expected to match (DESIGN.md §2). The tuning knob is the per-phase
// working-set size (funcsPerPhase): larger working sets sweep more code
// through the 32 KB L1I per phase iteration and raise the miss ratio
// smoothly (about 0.1% at 10 functions/phase to about 5% at 45).

// tunedSpec builds a program spec from the per-program tuning values.
// trips tunes the intra-function loop counts: fewer trips mean the
// program sweeps code faster, which both raises its own miss ratio and
// makes it a more aggressive cache-sharing peer; {0,0} selects the
// default of {10,24}.
func tunedSpec(name string, seed int64, funcsPerPhase, funcs int, trips [2]int, dataCPI float64) Spec {
	if trips[0] == 0 {
		trips = [2]int{8, 18}
	}
	// Keep total executed blocks roughly constant (~300k) across
	// programs: the outer loop count compensates for working-set size
	// and inner loop length.
	avgTrips := (trips[0] + trips[1]) / 2
	phaseLoops := 300 * 17 / (funcsPerPhase * avgTrips)
	if phaseLoops < 6 {
		phaseLoops = 6
	}
	return Spec{
		Name:           name,
		Seed:           seed,
		Funcs:          funcs,
		HotChain:       [2]int{12, 18},
		HotBytes:       [2]int{40, 72},
		ColdBytes:      [2]int{48, 96},
		ColdProb:       0.004,
		InnerTrips:     trips,
		Phases:         4,
		FuncsPerPhase:  funcsPerPhase,
		PhaseLoops:     phaseLoops,
		CallsPerLoop:   funcsPerPhase,
		CorrelatedFrac: 0.5,
		Helpers:        5,
		HelperProb:     0.04,
		DataCPI:        dataCPI,
	}
}

// screeningTable lists the 29 Figure 4 programs. funcsPerPhase is tuned
// so the solo miss-ratio spread resembles Figure 4 (nine programs at or
// above sjeng's ratio, the rest near zero); funcs scales the static code
// size to reflect Table I's ordering (mcf tiny, xalancbmk/gcc huge).
var screeningTable = []struct {
	name          string
	funcsPerPhase int
	funcs         int
	trips         [2]int
	dataCPI       float64
}{
	{"400.perlbench", 19, 70, [2]int{0, 0}, 0.22},
	{"401.bzip2", 8, 20, [2]int{0, 0}, 0.30},
	{"403.gcc", 18, 90, [2]int{0, 0}, 0.25},
	{"410.bwaves", 8, 20, [2]int{0, 0}, 0.35},
	{"416.gamess", 19, 80, [2]int{4, 9}, 0.20},
	{"429.mcf", 10, 25, [2]int{12, 26}, 0.40},
	{"433.milc", 11, 30, [2]int{0, 0}, 0.33},
	{"434.zeusmp", 13, 35, [2]int{0, 0}, 0.28},
	{"435.gromacs", 8, 22, [2]int{0, 0}, 0.26},
	{"436.cactusADM", 10, 28, [2]int{0, 0}, 0.31},
	{"437.leslie3d", 8, 20, [2]int{0, 0}, 0.34},
	{"444.namd", 8, 22, [2]int{0, 0}, 0.24},
	{"445.gobmk", 25, 60, [2]int{0, 0}, 0.18},
	{"447.dealII", 10, 30, [2]int{0, 0}, 0.27},
	{"450.soplex", 10, 28, [2]int{0, 0}, 0.32},
	{"453.povray", 20, 45, [2]int{0, 0}, 0.17},
	{"454.calculix", 8, 20, [2]int{0, 0}, 0.29},
	{"456.hmmer", 8, 20, [2]int{0, 0}, 0.22},
	{"458.sjeng", 12, 35, [2]int{0, 0}, 0.19},
	{"459.GemsFDTD", 8, 20, [2]int{0, 0}, 0.36},
	{"462.libquantum", 6, 15, [2]int{0, 0}, 0.38},
	{"464.h264ref", 8, 22, [2]int{0, 0}, 0.21},
	{"465.tonto", 22, 80, [2]int{6, 12}, 0.23},
	{"470.lbm", 6, 15, [2]int{0, 0}, 0.37},
	{"471.omnetpp", 11, 50, [2]int{0, 0}, 0.35},
	{"473.astar", 8, 20, [2]int{0, 0}, 0.33},
	{"481.wrf", 10, 28, [2]int{0, 0}, 0.30},
	{"482.sphinx3", 10, 28, [2]int{0, 0}, 0.28},
	{"483.xalancbmk", 18, 110, [2]int{0, 0}, 0.26},
}

// ScreeningSuite returns the 29-program Figure 4 suite.
func ScreeningSuite() []Spec {
	out := make([]Spec, len(screeningTable))
	for i, e := range screeningTable {
		out[i] = tunedSpec(e.name, 1000+int64(i)*17, e.funcsPerPhase, e.funcs, e.trips, e.dataCPI)
	}
	return out
}

// MainSuiteNames lists Table I's benchmarks in the paper's order.
var MainSuiteNames = []string{
	"400.perlbench", "403.gcc", "429.mcf", "445.gobmk",
	"453.povray", "458.sjeng", "471.omnetpp", "483.xalancbmk",
}

// MainSuite returns the 8-program Table I suite.
func MainSuite() []Spec {
	out := make([]Spec, 0, len(MainSuiteNames))
	for _, n := range MainSuiteNames {
		s, err := SpecByName(n)
		if err != nil {
			panic(err) // MainSuiteNames ⊂ screeningTable by construction
		}
		out = append(out, s)
	}
	return out
}

// ProbeGCC and ProbeGamess name the two probe programs of the co-run
// experiments ("we use gcc and gamess as peer programs").
const (
	ProbeGCC    = "403.gcc"
	ProbeGamess = "416.gamess"
)

// BBReorderUnsupported lists the programs whose basic-block reordering
// failed in the paper's compiler ("it had errors on two programs,
// perlbench and povray. We show these as N/A"). The harness reproduces
// the N/A cells by skipping them, although this repository's transform
// handles them fine.
var BBReorderUnsupported = map[string]bool{
	"400.perlbench": true,
	"453.povray":    true,
}

// SpecByName returns the spec of a screening-suite program.
func SpecByName(name string) (Spec, error) {
	for i, e := range screeningTable {
		if e.name == name {
			return tunedSpec(e.name, 1000+int64(i)*17, e.funcsPerPhase, e.funcs, e.trips, e.dataCPI), nil
		}
	}
	return Spec{}, fmt.Errorf("progen: unknown program %q", name)
}
