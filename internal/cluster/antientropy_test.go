package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestMissingKeys(t *testing.T) {
	cases := []struct {
		local, remote, want []string
	}{
		{nil, nil, []string{}},
		{[]string{"a", "b"}, nil, []string{"a", "b"}},
		{[]string{"a", "b"}, []string{"a", "b"}, []string{}},
		{[]string{"a", "b", "c"}, []string{"b"}, []string{"a", "c"}},
		{[]string{"b"}, []string{"a", "c"}, []string{"b"}},
		{[]string{"a", "c", "e"}, []string{"b", "d", "f"}, []string{"a", "c", "e"}},
		{nil, []string{"a"}, []string{}},
	}
	for _, tc := range cases {
		got := MissingKeys(tc.local, tc.remote, nil)
		if len(got) != len(tc.want) {
			t.Fatalf("MissingKeys(%v, %v) = %v, want %v", tc.local, tc.remote, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("MissingKeys(%v, %v) = %v, want %v", tc.local, tc.remote, got, tc.want)
			}
		}
	}
	// Reuse: a second call with the returned slice must not allocate a
	// new backing array when capacity suffices.
	out := MissingKeys([]string{"a", "b", "c"}, nil, nil)
	out2 := MissingKeys([]string{"x"}, nil, out)
	if cap(out2) != cap(out) {
		t.Fatal("MissingKeys did not reuse the provided buffer")
	}
}

// TestInReplicaSet: the allocation-free membership test must agree with
// the reference computation via RankedPeers on every (peer, key) pair.
func TestInReplicaSet(t *testing.T) {
	c := newTestCluster(t, "n1", threePeers(t), 2)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("%064x", i)
		ranked := c.RankedPeers(key)
		top := map[string]bool{}
		for _, p := range ranked[:c.rf] {
			top[p.ID] = true
		}
		for _, p := range c.peers {
			if got := c.inReplicaSet(p.ID, key); got != top[p.ID] {
				t.Fatalf("inReplicaSet(%s, %s) = %v, want %v", p.ID, key, got, top[p.ID])
			}
		}
	}
}

// aePeer is a fake peer for sweeper tests: it serves a key listing and
// records digest-verified replication PUTs.
type aePeer struct {
	t  *testing.T
	mu sync.Mutex
	// keys this peer claims to hold (served by the listing endpoint).
	keys []string
	// received maps key -> payload for accepted replication pushes.
	received map[string][]byte
	srv      *httptest.Server
}

func newAEPeer(t *testing.T, keys ...string) *aePeer {
	p := &aePeer{t: t, keys: keys, received: map[string][]byte{}}
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodGet && r.URL.Path == "/v1/store":
			if r.URL.Query().Get("format") != "keys" {
				http.Error(w, "want format=keys", http.StatusBadRequest)
				return
			}
			p.mu.Lock()
			defer p.mu.Unlock()
			for _, k := range p.keys {
				fmt.Fprintln(w, k)
			}
		case r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/replicate/"):
			key := strings.TrimPrefix(r.URL.Path, "/v1/replicate/")
			body, _ := io.ReadAll(r.Body)
			sum := sha256.Sum256(body)
			if got := r.Header.Get(DigestHeader); got != hex.EncodeToString(sum[:]) {
				p.t.Errorf("replicate %s: digest header %q does not match body", key, got)
				http.Error(w, "digest mismatch", http.StatusBadRequest)
				return
			}
			p.mu.Lock()
			p.received[key] = body
			p.keys = append(p.keys, key)
			p.mu.Unlock()
			w.WriteHeader(http.StatusCreated)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *aePeer) got() map[string][]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string][]byte, len(p.received))
	for k, v := range p.received {
		out[k] = v
	}
	return out
}

// newAETestCluster builds a 3-node cluster where n2 and n3 are fake
// peers and self (n1) sources blobs from the given map.
func newAETestCluster(t *testing.T, blobs map[string][]byte, p2, p3 *aePeer, opts Config) *Cluster {
	t.Helper()
	cfg := Config{
		SelfID: "n1",
		Peers: []Peer{
			{ID: "n1", URL: "http://127.0.0.1:1"},
			{ID: "n2", URL: p2.srv.URL},
			{ID: "n3", URL: p3.srv.URL},
		},
		ReplicationFactor:      opts.ReplicationFactor,
		HealthInterval:         time.Hour,
		AntiEntropyMaxPerSweep: opts.AntiEntropyMaxPerSweep,
		AntiEntropyPause:       time.Millisecond,
		Logf:                   t.Logf,
	}
	if cfg.ReplicationFactor == 0 {
		cfg.ReplicationFactor = 3 // every peer replicates every key
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.SetAntiEntropySource(
		func() []string {
			keys := make([]string, 0, len(blobs))
			for k := range blobs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return keys
		},
		func(key string) ([]byte, bool) {
			b, ok := blobs[key]
			return b, ok
		},
	)
	return c
}

// TestAntiEntropySweepRepairs: keys held locally but missing on a
// replica are re-pushed, digest-authenticated; keys the peer already
// holds are not re-sent; stats and the hook observe the sweep.
func TestAntiEntropySweepRepairs(t *testing.T) {
	blobs := map[string][]byte{
		"aaa": []byte("payload-a"),
		"bbb": []byte("payload-b"),
		"ccc": []byte("payload-c"),
	}
	p2 := newAEPeer(t, "bbb") // holds bbb already
	p3 := newAEPeer(t)        // holds nothing
	c := newAETestCluster(t, blobs, p2, p3, Config{})

	var hooked AntiEntropySweep
	c.SetAntiEntropyHook(func(sw AntiEntropySweep) { hooked = sw })

	sw := c.AntiEntropySweepNow()
	if sw.Peers != 2 {
		t.Fatalf("peers swept = %d, want 2", sw.Peers)
	}
	if sw.Repaired != 5 { // 2 to p2 + 3 to p3
		t.Fatalf("repaired = %d, want 5", sw.Repaired)
	}
	if sw.Truncated {
		t.Fatal("sweep truncated with a generous budget")
	}
	for key, want := range blobs {
		for name, p := range map[string]*aePeer{"n2": p2, "n3": p3} {
			if name == "n2" && key == "bbb" {
				continue // already held; must not be re-pushed
			}
			got, ok := p.got()[key]
			if !ok || string(got) != string(want) {
				t.Fatalf("peer %s: key %s not repaired (got %q)", name, key, got)
			}
		}
	}
	if _, resent := p2.got()["bbb"]; resent {
		t.Fatal("key the peer already held was re-pushed")
	}
	st := c.AntiEntropyStats()
	if st.Sweeps != 1 || st.Repaired != 5 || st.Bytes == 0 || st.LastSweepUnix == 0 {
		t.Fatalf("stats = %+v, want 1 sweep, 5 repaired, bytes and timestamp set", st)
	}
	if hooked.Repaired != 5 || hooked.Duration <= 0 {
		t.Fatalf("hook observed %+v", hooked)
	}

	// A second sweep finds everything converged: nothing to repair.
	sw2 := c.AntiEntropySweepNow()
	if sw2.Repaired != 0 || sw2.Missing != 0 {
		t.Fatalf("post-convergence sweep repaired %d missing %d, want 0 and 0", sw2.Repaired, sw2.Missing)
	}
}

// TestAntiEntropySkipsDegradedAndDownPeers: degraded peers are
// memory-only and down peers unreachable — neither is swept.
func TestAntiEntropySkipsDegradedAndDownPeers(t *testing.T) {
	blobs := map[string][]byte{"aaa": []byte("x")}
	p2 := newAEPeer(t)
	p3 := newAEPeer(t)
	c := newAETestCluster(t, blobs, p2, p3, Config{})
	c.setState("n2", StateDegraded)
	c.setState("n3", StateDown)
	sw := c.AntiEntropySweepNow()
	if sw.Peers != 0 || sw.Repaired != 0 {
		t.Fatalf("sweep touched %d peers, repaired %d; want 0 and 0", sw.Peers, sw.Repaired)
	}
	if len(p2.got())+len(p3.got()) != 0 {
		t.Fatal("unhealthy peer received a repair push")
	}
}

// TestAntiEntropySkipsWhenSourceUnavailable: a nil key listing (the
// local store is degraded) skips the sweep entirely.
func TestAntiEntropySkipsWhenSourceUnavailable(t *testing.T) {
	p2 := newAEPeer(t)
	p3 := newAEPeer(t)
	c := newAETestCluster(t, nil, p2, p3, Config{})
	c.SetAntiEntropySource(func() []string { return nil }, nil)
	sw := c.AntiEntropySweepNow()
	if sw.Peers != 0 {
		t.Fatalf("unavailable source swept %d peers, want 0", sw.Peers)
	}
	if c.AntiEntropyStats().Sweeps != 0 {
		t.Fatal("skipped sweep counted as completed")
	}
}

// TestAntiEntropyBudgetAndCursorResume: a sweep that exhausts its
// rate-limit budget is truncated, and the next sweep resumes from the
// cursor instead of re-pushing the same prefix — converging in
// ceil(missing/budget) sweeps.
func TestAntiEntropyBudgetAndCursorResume(t *testing.T) {
	blobs := map[string][]byte{}
	for i := 0; i < 5; i++ {
		blobs[fmt.Sprintf("key-%d", i)] = []byte{byte(i)}
	}
	p2 := newAEPeer(t)
	p3 := newAEPeer(t)
	c := newAETestCluster(t, blobs, p2, p3, Config{AntiEntropyMaxPerSweep: 3})

	sw1 := c.AntiEntropySweepNow()
	if !sw1.Truncated || sw1.Repaired != 3 {
		t.Fatalf("first sweep repaired %d truncated %v, want 3 and true", sw1.Repaired, sw1.Truncated)
	}
	total := sw1.Repaired
	for i := 0; i < 4 && total < 10; i++ {
		total += c.AntiEntropySweepNow().Repaired
	}
	if total != 10 { // 5 keys x 2 peers
		t.Fatalf("repaired %d pushes across sweeps, want 10", total)
	}
	for _, p := range []*aePeer{p2, p3} {
		if len(p.got()) != 5 {
			t.Fatalf("peer holds %d keys after convergence, want 5", len(p.got()))
		}
	}
	// Fully converged: the cursor map must be empty again.
	c.ae.mu.Lock()
	cursors := len(c.ae.cursor)
	c.ae.mu.Unlock()
	if cursors != 0 {
		t.Fatalf("%d stale cursors after convergence", cursors)
	}
}

// TestAntiEntropyRespectsReplicaSet: with RF < cluster size, keys are
// only repaired onto peers in the key's rendezvous replica set.
func TestAntiEntropyRespectsReplicaSet(t *testing.T) {
	blobs := map[string][]byte{}
	for i := 0; i < 40; i++ {
		blobs[fmt.Sprintf("%064x", i)] = []byte{byte(i)}
	}
	p2 := newAEPeer(t)
	p3 := newAEPeer(t)
	c := newAETestCluster(t, blobs, p2, p3, Config{ReplicationFactor: 2})
	c.AntiEntropySweepNow()
	for name, p := range map[string]*aePeer{"n2": p2, "n3": p3} {
		for key := range p.got() {
			if !c.inReplicaSet(name, key) {
				t.Fatalf("peer %s received %s outside its replica set", name, key)
			}
		}
	}
	// Every key must have landed on every in-set peer.
	for key := range blobs {
		for name, p := range map[string]*aePeer{"n2": p2, "n3": p3} {
			if c.inReplicaSet(name, key) {
				if _, ok := p.got()[key]; !ok {
					t.Fatalf("replica-set peer %s missing %s after sweep", name, key)
				}
			}
		}
	}
}

// TestPushSkipsDownPeer (satellite): a queued replication push whose
// target went down between enqueue and drain is short-circuited — no
// HTTP attempt, no retry budget burned, counted as skipped for
// anti-entropy to repair later.
func TestPushSkipsDownPeer(t *testing.T) {
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusCreated)
	}))
	defer srv.Close()
	c := newTestCluster(t, "n1", []Peer{
		{ID: "n1", URL: "http://127.0.0.1:1"},
		{ID: "n2", URL: srv.URL},
	}, 2)
	c.setState("n2", StateDown)
	var hookErr error
	c.SetReplicateHook(func(peer, key string, lag, dur time.Duration, err error) { hookErr = err })
	c.repl.push(replItem{key: "k", data: []byte("v"), peer: c.peers[1], enqueued: time.Now()})
	if attempts != 0 {
		t.Fatalf("push to down peer made %d HTTP attempts, want 0", attempts)
	}
	st := c.ReplicationStats()
	if st.Skipped != 1 || st.Pushed != 0 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want exactly one skip", st)
	}
	if !reflect.DeepEqual(hookErr, ErrPeerDown) {
		t.Fatalf("hook error = %v, want ErrPeerDown", hookErr)
	}
}

// TestRetrierSkip: the Skip check aborts the remaining budget between
// attempts.
func TestRetrierSkip(t *testing.T) {
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		w.WriteHeader(http.StatusServiceUnavailable) // always retryable
	}))
	defer srv.Close()
	calls := 0
	rt := &Retrier{
		Max:   5,
		Base:  time.Millisecond,
		Sleep: func(time.Duration) {},
		Skip: func() error {
			calls++
			if calls > 2 {
				return ErrPeerDown
			}
			return nil
		},
	}
	_, err := rt.Do("test", func() (*http.Response, error) {
		return http.Get(srv.URL)
	})
	if err == nil || !strings.Contains(err.Error(), ErrPeerDown.Error()) {
		t.Fatalf("err = %v, want ErrPeerDown", err)
	}
	if attempts != 2 {
		t.Fatalf("made %d attempts before skip, want 2", attempts)
	}
}

// TestDropHook (satellite): a full queue fires the drop hook with peer
// and key so the server can export the labeled counter.
func TestDropHook(t *testing.T) {
	c, err := New(Config{
		SelfID: "n1",
		Peers: []Peer{
			{ID: "n1", URL: "http://127.0.0.1:1"},
			{ID: "n2", URL: "http://127.0.0.1:2"},
		},
		ReplicationFactor: 2,
		HealthInterval:    time.Hour,
		QueueDepth:        1,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	type drop struct{ peer, key string }
	var drops []drop
	c.SetDropHook(func(peer, key string) { drops = append(drops, drop{peer, key}) })
	// The worker is not running, so the second enqueue overflows.
	c.Replicate("key-1", []byte("a"))
	c.Replicate("key-2", []byte("b"))
	if len(drops) != 1 || drops[0].key != "key-2" || drops[0].peer != "n2" {
		t.Fatalf("drops = %+v, want one drop of key-2 -> n2", drops)
	}
	if st := c.ReplicationStats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
}

// BenchmarkAntiEntropyDiff is the digest-set computation gate: the
// sorted-set difference over a full key census must stay allocation-free
// at steady state (the bench_json.sh budget).
func BenchmarkAntiEntropyDiff(b *testing.B) {
	const n = 4096
	local := make([]string, 0, n)
	for i := 0; i < n; i++ {
		local = append(local, fmt.Sprintf("%064x", i))
	}
	remote := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i%8 != 0 { // the peer is missing every 8th key
			remote = append(remote, local[i])
		}
	}
	out := make([]string, 0, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = MissingKeys(local, remote, out)
	}
	if len(out) != n/8 {
		b.Fatalf("diff = %d keys, want %d", len(out), n/8)
	}
}
