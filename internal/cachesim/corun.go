package cachesim

import (
	"codelayout/internal/layout"
	"codelayout/internal/parallel"
)

// This file implements the paper's Pin-style instruction cache
// simulation: address streams replayed through a plain LRU cache, with
// co-run modeled by interleaving the two hyper-threads' fetch streams.
// No timing, no prefetching — exactly the idealized "simulated" numbers
// of Table II.

// SoloResult summarizes one solo simulation.
type SoloResult struct {
	Stats Stats
	// Blocks is the number of block occurrences replayed.
	Blocks int64
}

// SimulateSolo replays one program's fetch stream through a private
// instruction cache.
func SimulateSolo(cfg Config, r *layout.Replayer) SoloResult {
	c := New(cfg)
	var res SoloResult
	for {
		_, ok := r.Next(func(line int64) {
			c.Access(line, &res.Stats)
		})
		if !ok {
			return res
		}
		res.Blocks++
	}
}

// PeerLineOffset separates the two co-run processes' address spaces: the
// peer's lines are shifted by the equivalent of 4 GB so that identical
// binaries do not share cache lines (two processes never share code
// pages in the physically indexed cache). The offset is a multiple of
// every power-of-two set count, so set mapping within each program is
// unchanged.
const PeerLineOffset int64 = 1 << 26

// CorunResult summarizes a shared-cache co-run simulation of two
// threads.
type CorunResult struct {
	// PerThread holds each thread's demand statistics against the
	// shared cache.
	PerThread [2]Stats
	// Blocks counts block occurrences replayed per thread.
	Blocks [2]int64
	// PeerLaps is how many times the wrapping peer (thread 1) restarted
	// its trace before the primary (thread 0) finished.
	PeerLaps int
}

// SimulateCorun interleaves the two replayers' fetch streams through one
// shared instruction cache, one block occurrence per thread per turn
// (SMT round-robin fetch at block granularity). The simulation ends when
// the primary replayer (index 0) exhausts its trace; the peer is
// expected to be wrapping so it keeps producing interference throughout.
func SimulateCorun(cfg Config, primary, peer *layout.Replayer) CorunResult {
	c := New(cfg)
	var res CorunResult
	for {
		_, ok := primary.Next(func(line int64) {
			c.Access(line, &res.PerThread[0])
		})
		if !ok {
			break
		}
		res.Blocks[0]++
		if _, ok := peer.Next(func(line int64) {
			c.Access(line+PeerLineOffset, &res.PerThread[1])
		}); ok {
			res.Blocks[1]++
		}
	}
	res.PeerLaps = peer.Laps()
	return res
}

// CorunJob is one independent co-run simulation: a primary replayer run
// to completion against a wrapping peer. Replayers are stateful, so each
// job must hold its own pair.
type CorunJob struct {
	Primary, Peer *layout.Replayer
}

// SimulateCorunBatch runs independent co-run simulations concurrently
// and returns their results in job order. Each simulation owns its cache
// and replayers, so results are identical to running the jobs one by one
// (workers = 1 pins that serial reference path; 0 means every available
// core).
func SimulateCorunBatch(cfg Config, jobs []CorunJob, workers int) []CorunResult {
	out, _ := parallel.Map(workers, len(jobs), func(i int) (CorunResult, error) {
		return SimulateCorun(cfg, jobs[i].Primary, jobs[i].Peer), nil
	})
	return out
}
