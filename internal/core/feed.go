package core

import (
	"context"
	"fmt"

	"codelayout/internal/affinity"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/obs"
	"codelayout/internal/trg"
)

// FeedSupported reports whether this optimizer can analyze prog's trace
// incrementally, chunk by chunk, with a result byte-identical to the
// buffered OptimizeCtx. Two conditions gate it:
//
//   - the model must have a streaming kernel (affinity and TRG do; the
//     baselines — CMG, call-graph, search — replay or iterate over the
//     materialized trace);
//   - popularity pruning must be provably the identity, i.e. the prune
//     bound covers the program's whole alphabet at this granularity
//     (every symbol with a non-zero count is kept and retention is
//     exactly 1.0). Pruning by frequency inherently needs the full
//     trace's counts, so a stream with an effective prune cannot start
//     analysis before end-of-stream.
//
// With the paper's default bound of 10,000 blocks and the generated
// suite's program sizes, the gate holds for all four paper optimizers
// at their defaults.
func (o Optimizer) FeedSupported(prog *ir.Program) bool {
	if prog == nil {
		return false
	}
	if o.Model != ModelAffinity && o.Model != ModelTRG {
		return false
	}
	var alphabet int
	switch o.Gran {
	case GranFunction:
		alphabet = prog.NumFuncs()
	case GranBasicBlock:
		alphabet = prog.NumBlocks()
	default:
		return false
	}
	pruneN := o.PruneTopN
	if pruneN == 0 {
		pruneN = DefaultPruneTopN
	}
	return pruneN >= alphabet
}

// Feed is a streaming optimization in progress: the caller pushes
// decoded trace chunks as they arrive (layoutd, while the upload is
// still on the wire) and Finish returns the same layout and Report the
// buffered OptimizeCtx would produce from the concatenated trace.
//
// A Feed is not safe for concurrent use; push chunks from one
// goroutine, then call exactly one of Finish or Abort.
type Feed struct {
	o    Optimizer
	prog *ir.Program

	buf  []int32 // reusable granularity-mapping buffer
	prev int32   // last mapped symbol, for cross-chunk trimming

	aff  *affinity.Feeder
	trgF *trg.Feeder
	trgP trg.Params

	err  error
	done bool
}

// NewFeed starts a streaming optimization bound to ctx. It fails if
// FeedSupported is false for this optimizer and program.
func (o Optimizer) NewFeed(ctx context.Context, prog *ir.Program) (*Feed, error) {
	if !o.FeedSupported(prog) {
		return nil, fmt.Errorf("core: %s does not support feed-mode for %s", o.Name(), progName(prog))
	}
	f := &Feed{o: o, prog: prog, prev: -1}
	switch o.Model {
	case ModelAffinity:
		f.aff = affinity.NewFeeder(ctx, affinity.Options{
			WMax:          o.WMax,
			Workers:       o.Workers,
			Arena:         o.Arena.affinityArena(),
			FeedShardSpan: o.FeedShardSpan,
		})
	case ModelTRG:
		f.trgP = trg.DefaultParams(o.trgBlockBytes())
		f.trgP.WindowScale = o.TRGWindowScale
		f.trgP.Workers = o.Workers
		f.trgF = trg.NewFeeder(ctx, f.trgP.WindowBlocks(), o.Workers, o.FeedShardSpan, o.Arena.trgArena())
	}
	return f, nil
}

func progName(p *ir.Program) string {
	if p == nil {
		return "<nil>"
	}
	return p.Name
}

// Feed pushes one chunk of the raw basic-block trace. Symbols are
// validated against the program, mapped to the optimizer's granularity
// and trimmed across chunk boundaries — exactly the preparation the
// buffered pipeline's trace.prune step performs up front. Chunk
// boundaries are irrelevant to the result.
func (f *Feed) Feed(ctx context.Context, chunk []int32) error {
	if f.err != nil {
		return f.err
	}
	if f.done {
		return fmt.Errorf("core: feed already finished")
	}
	f.buf = f.buf[:0]
	nb := int32(f.prog.NumBlocks())
	for _, s := range chunk {
		if s < 0 || s >= nb {
			f.err = fmt.Errorf("core: trace references block %d, program %s has %d", s, f.prog.Name, nb)
			return f.err
		}
		if f.o.Gran == GranFunction {
			s = int32(f.prog.Blocks[s].Fn)
		}
		if s == f.prev {
			continue
		}
		f.prev = s
		f.buf = append(f.buf, s)
	}
	var err error
	switch {
	case f.aff != nil:
		err = f.aff.Feed(f.buf)
	case f.trgF != nil:
		err = f.trgF.Feed(f.buf)
	}
	if err != nil {
		f.err = err
	}
	return err
}

// Finish seals the stream, completes the analysis and emits the layout.
// The Report is byte-identical to the buffered OptimizeCtx over the
// concatenated chunks: same sequence, lengths, retention (exactly 1.0,
// which the FeedSupported gate guarantees pruning would report) and
// jump overhead.
func (f *Feed) Finish(ctx context.Context) (*layout.Layout, Report, error) {
	rep := Report{Optimizer: f.o.Name()}
	if f.err != nil {
		f.Abort()
		return nil, rep, f.err
	}
	if f.done {
		return nil, rep, fmt.Errorf("core: feed already finished")
	}
	f.done = true
	var seq []int32
	switch {
	case f.aff != nil:
		rep.TraceLen = f.aff.N()
		h, err := f.aff.Finish(ctx)
		if err != nil {
			return nil, rep, fmt.Errorf("core: %s analysis: %w", f.o.Name(), err)
		}
		seq = h.Sequence()
	case f.trgF != nil:
		rep.TraceLen = f.trgF.N()
		g, err := f.trgF.Finish(ctx)
		if err != nil {
			return nil, rep, fmt.Errorf("core: %s analysis: %w", f.o.Name(), err)
		}
		rp := obs.StartSpan(ctx, "trg.reduce")
		seq = trg.Reduce(g, f.trgP.Slots())
		rp.SetAttr("seq_len", int64(len(seq)))
		rp.End()
		f.o.Arena.trgArena().PutGraph(g)
	}
	rep.Retention = 1.0
	rep.SeqLen = len(seq)
	rep.Sequence = seq
	l, err := f.o.emitLayout(ctx, f.prog, seq, &rep)
	if err != nil {
		return nil, rep, err
	}
	return l, rep, nil
}

// Abort discards the stream and recycles kernel buffers. Call it
// instead of Finish when the job fails mid-upload.
func (f *Feed) Abort() {
	if f.done {
		return
	}
	f.done = true
	switch {
	case f.aff != nil:
		f.aff.Abort()
	case f.trgF != nil:
		f.trgF.Abort()
	}
}
