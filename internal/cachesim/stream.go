package cachesim

import "codelayout/internal/layout"

// SoloStream is the chunk-fed form of SimulateSolo: layoutd feeds
// decoded upload chunks as they arrive, and Finish returns the same
// SoloResult the buffered simulation computes over the concatenated
// trace. Memory is bounded by one batch of resolved lines regardless of
// trace length.
//
// A SoloStream is not safe for concurrent use.
type SoloStream struct {
	c   *Cache
	r   *layout.StreamReplayer
	res SoloResult
	buf []int64
}

// NewSoloStream prepares a streaming solo simulation of the given
// layout's fetch stream through a private cache (cfg.LineBytes sizes
// the replayed lines, as in the buffered path).
func NewSoloStream(cfg Config, l *layout.Layout) *SoloStream {
	return &SoloStream{
		c:   New(cfg),
		r:   layout.NewStreamReplayer(l, cfg.LineBytes),
		buf: make([]int64, 0, 4*soloBatchBlocks),
	}
}

// Feed replays one chunk of the block trace through the cache. Chunk
// boundaries are irrelevant to the result. Large chunks are resolved in
// soloBatchBlocks batches so the line buffer stays cache-resident, as
// in SimulateSolo.
func (s *SoloStream) Feed(chunk []int32) {
	for len(chunk) > 0 {
		n := soloBatchBlocks
		if n > len(chunk) {
			n = len(chunk)
		}
		s.drain(s.r.Feed(s.buf[:0], chunk[:n]))
		chunk = chunk[n:]
	}
}

// Finish flushes the held trailing occurrence and returns the result.
// Call it exactly once, after the last Feed.
func (s *SoloStream) Finish() SoloResult {
	s.drain(s.r.Finish(s.buf[:0]))
	s.res.Blocks = s.r.Blocks()
	return s.res
}

func (s *SoloStream) drain(lines []int64) {
	for _, ln := range lines {
		s.c.Access(ln, &s.res.Stats)
	}
	s.buf = lines[:0]
}
