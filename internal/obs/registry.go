package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Families are registered once (duplicate names
// panic — a wiring bug, not a runtime condition) and rendered in
// registration order so scrapes are stable and diffable.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

var nameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// family is one metric name: its metadata plus every series under it.
type family struct {
	name     string
	help     string
	kind     metricKind
	labelKey string    // "" for unlabeled families
	buckets  []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label value ("" when unlabeled) -> metric
	fn     func() int64   // callback-backed value (unlabeled only)
}

func (r *Registry) register(name, help string, kind metricKind, labelKey string, buckets []float64) *family {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if labelKey != "" && !nameRe.MatchString(labelKey) {
		panic(fmt.Sprintf("obs: invalid label name %q", labelKey))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labelKey: labelKey,
		buckets:  buckets,
		series:   make(map[string]any),
	}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// ---- counters ----

// Counter is a monotonically increasing value. Inc/Add are lock-free
// and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "", nil)
	c := &Counter{}
	f.series[""] = c
	return c
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for counters owned by another subsystem (the durable store's
// write totals).
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.register(name, help, kindCounter, "", nil)
	f.fn = fn
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{f: r.register(name, help, kindCounter, labelKey, nil)}
}

// With returns the counter for the label value, creating it on first
// use. Hot paths should hold the returned *Counter rather than calling
// With per increment.
func (v *CounterVec) With(label string) *Counter {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if c, ok := v.f.series[label]; ok {
		return c.(*Counter)
	}
	c := &Counter{}
	v.f.series[label] = c
	return c
}

// ---- gauges ----

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "", nil)
	g := &Gauge{}
	f.series[""] = g
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time — for live values owned elsewhere (pool queue depth, store
// state).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.register(name, help, kindGauge, "", nil)
	f.fn = fn
}

// GaugeVec is a gauge family with one label dimension — e.g. per-peer
// health in a layoutd cluster.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, kindGauge, labelKey, nil)}
}

// With returns the gauge for the label value, creating it on first use.
// Hot paths should hold the returned *Gauge rather than calling With
// per update.
func (v *GaugeVec) With(label string) *Gauge {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if g, ok := v.f.series[label]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{}
	v.f.series[label] = g
	return g
}

// ---- histograms ----

// DefBuckets are the default histogram bounds in seconds, spanning
// sub-millisecond span phases to minute-scale optimizations.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free and allocation-free.
type Histogram struct {
	buckets []float64
	counts  []atomic.Int64 // len(buckets)+1; last is +Inf
	sumBits atomic.Uint64  // float64 bits of the observation sum
	count   atomic.Int64
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not strictly increasing at %d", i))
		}
	}
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := len(h.buckets)
	for i, ub := range h.buckets {
		if v <= ub {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Histogram registers an unlabeled histogram with the given bucket
// upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram, "", buckets)
	h := newHistogram(buckets)
	f.series[""] = h
	return h
}

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family (nil buckets means
// DefBuckets).
func (r *Registry) HistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labelKey, buckets)}
}

// With returns the histogram for the label value, creating it on first
// use.
func (v *HistogramVec) With(label string) *Histogram {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	if h, ok := v.f.series[label]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(v.f.buckets)
	v.f.series[label] = h
	return h
}

// ---- exposition ----

// WritePrometheus renders a snapshot of every family in the Prometheus
// text exposition format (version 0.0.4): HELP and TYPE per family,
// series sorted by label value, histogram buckets cumulative with +Inf,
// _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		f.render(bw)
	}
	return bw.Flush()
}

func (f *family) render(w io.Writer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fn != nil {
		fmt.Fprintf(w, "%s %d\n", f.name, f.fn())
		return
	}
	labels := make([]string, 0, len(f.series))
	for l := range f.series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		switch m := f.series[l].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelPair(l, ""), m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, f.labelPair(l, ""), m.Value())
		case *Histogram:
			cum := int64(0)
			for i, ub := range m.buckets {
				cum += m.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.labelPair(l, formatFloat(ub)), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.labelPair(l, "+Inf"), m.Count())
			fmt.Fprintf(w, "%s_sum%s %g\n", f.name, f.labelPair(l, ""), m.Sum())
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.labelPair(l, ""), m.Count())
		}
	}
}

// labelPair renders the series label set: the family's label (if any)
// plus the histogram le bound (if any).
func (f *family) labelPair(labelValue, le string) string {
	switch {
	case f.labelKey == "" && le == "":
		return ""
	case f.labelKey == "":
		return fmt.Sprintf(`{le=%q}`, le)
	case le == "":
		return fmt.Sprintf(`{%s=%q}`, f.labelKey, labelValue)
	default:
		return fmt.Sprintf(`{%s=%q,le=%q}`, f.labelKey, labelValue, le)
	}
}

// formatFloat renders a bucket bound the way Prometheus clients do:
// shortest representation that round-trips.
func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
