// Package experiments regenerates every table and figure of the paper's
// evaluation (§III) on the synthetic suite: the intro contention table,
// Table I (benchmark characteristics), Figures 1-3 (model examples),
// Figure 4 (29-program screening), Figure 5 (solo effect), Table II and
// Figure 6 (co-run effect), Figure 7 (hyper-threading throughput), and
// the §III-F optimized+optimized co-run study. Each experiment returns a
// structured result with a String() rendering; cmd/benchtables prints
// them and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"sync"

	"codelayout/internal/core"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/progen"
)

// Baseline is the layout name of the unoptimized binary.
const Baseline = "original"

// Bench bundles everything the harness needs about one program:
// the generated IR, the training profile (test input), the evaluation
// trace (reference input), and the lazily built layouts.
type Bench struct {
	Spec progen.Spec
	Prog *ir.Program
	// Train is the profiling run (core.TrainSeed).
	Train *core.Profile
	// Eval is the measurement run (core.EvalSeed).
	Eval *core.Profile

	mu      sync.Mutex
	layouts map[string]*layout.Layout
	reports map[string]core.Report
}

// Name returns the program name.
func (b *Bench) Name() string { return b.Spec.Name }

// Layout returns (building and caching on first use) the named layout:
// Baseline or an optimizer name from core.AllOptimizers.
func (b *Bench) Layout(name string) (*layout.Layout, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if l, ok := b.layouts[name]; ok {
		return l, nil
	}
	var l *layout.Layout
	if name == Baseline {
		l = layout.Original(b.Prog)
	} else {
		opt, err := optimizerByName(name)
		if err != nil {
			return nil, err
		}
		var rep core.Report
		l, rep, err = opt.Optimize(b.Train)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s: %w", name, b.Name(), err)
		}
		b.reports[name] = rep
	}
	b.layouts[name] = l
	return l, nil
}

// Replayer returns a replayer of the evaluation trace through the named
// layout.
func (b *Bench) Replayer(layoutName string, lineBytes int, wrap bool) (*layout.Replayer, error) {
	l, err := b.Layout(layoutName)
	if err != nil {
		return nil, err
	}
	return layout.NewReplayer(l, b.Eval.Blocks, lineBytes, wrap), nil
}

func optimizerByName(name string) (core.Optimizer, error) {
	for _, o := range core.AllWithBaselines() {
		if o.Name() == name {
			return o, nil
		}
	}
	return core.Optimizer{}, fmt.Errorf("experiments: unknown optimizer %q", name)
}

// Workspace lazily generates, profiles and optimizes suite programs and
// caches everything, so that a sequence of experiments (or benchmark
// iterations) pays each cost once.
type Workspace struct {
	mu      sync.Mutex
	benches map[string]*Bench
}

// NewWorkspace creates an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{benches: make(map[string]*Bench)}
}

// Bench returns the named suite program, generating and profiling it on
// first use.
func (w *Workspace) Bench(name string) (*Bench, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if b, ok := w.benches[name]; ok {
		return b, nil
	}
	spec, err := progen.SpecByName(name)
	if err != nil {
		return nil, err
	}
	prog, err := progen.Generate(spec)
	if err != nil {
		return nil, err
	}
	train, err := core.ProfileProgram(prog, core.TrainSeed)
	if err != nil {
		return nil, err
	}
	eval, err := core.ProfileProgram(prog, core.EvalSeed)
	if err != nil {
		return nil, err
	}
	b := &Bench{
		Spec:    spec,
		Prog:    prog,
		Train:   train,
		Eval:    eval,
		layouts: make(map[string]*layout.Layout),
		reports: make(map[string]core.Report),
	}
	w.benches[name] = b
	return b, nil
}

// MainSuite returns the 8 Table I benches.
func (w *Workspace) MainSuite() ([]*Bench, error) {
	out := make([]*Bench, 0, len(progen.MainSuiteNames))
	for _, n := range progen.MainSuiteNames {
		b, err := w.Bench(n)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// ScreeningSuite returns the 29 Figure 4 benches.
func (w *Workspace) ScreeningSuite() ([]*Bench, error) {
	suite := progen.ScreeningSuite()
	out := make([]*Bench, 0, len(suite))
	for _, s := range suite {
		b, err := w.Bench(s.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// benchSubset resolves a list of program names to benches; nil means
// the whole screening suite.
func (w *Workspace) benchSubset(names []string) ([]*Bench, error) {
	if names == nil {
		return w.ScreeningSuite()
	}
	out := make([]*Bench, 0, len(names))
	for _, n := range names {
		b, err := w.Bench(n)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
