// Command benchtables regenerates every table and figure of the paper's
// evaluation on the synthetic suite and prints them as text.
//
// Usage:
//
//	benchtables                 # everything
//	benchtables -exp table2     # one experiment
//
// Experiments: intro, table1, fig1, fig2, fig3, fig4, fig5, table2,
// fig6, fig7, optopt.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"codelayout/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")
	exp := flag.String("exp", "all", "experiment to run (intro, table1, fig1..fig7, table2, optopt, compare, all)")
	workers := flag.Int("workers", 0, "experiment and analysis concurrency: 0 = all cores, 1 = serial")
	flag.Parse()

	w := experiments.NewWorkspace()
	w.SetWorkers(*workers)
	run := func(name string, f func() (fmt.Stringer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res.String())
		fmt.Println()
	}

	// Table II's matrix feeds Figure 6 and §III-F; compute it once.
	var t2 experiments.Table2Result
	t2Ready := false
	needT2 := func() experiments.Table2Result {
		if !t2Ready {
			var err error
			t2, err = experiments.Table2(w)
			if err != nil {
				log.Fatalf("table2: %v", err)
			}
			t2Ready = true
		}
		return t2
	}

	run("fig1", func() (fmt.Stringer, error) { return experiments.Figure1(), nil })
	run("fig2", func() (fmt.Stringer, error) { return experiments.Figure2(), nil })
	run("fig3", func() (fmt.Stringer, error) { return experiments.Figure3() })
	run("intro", func() (fmt.Stringer, error) { return experiments.IntroTable(w) })
	run("table1", func() (fmt.Stringer, error) { return experiments.Table1(w) })
	run("fig4", func() (fmt.Stringer, error) { return experiments.Figure4(w) })
	run("fig5", func() (fmt.Stringer, error) { return experiments.Figure5(w) })
	run("table2", func() (fmt.Stringer, error) { return needT2(), nil })
	run("fig6", func() (fmt.Stringer, error) { return experiments.Figure6FromTable2(needT2()), nil })
	run("fig7", func() (fmt.Stringer, error) { return experiments.Figure7(w) })
	run("optopt", func() (fmt.Stringer, error) { return experiments.OptOpt(w, needT2()) })
	run("compare", func() (fmt.Stringer, error) { return experiments.Comparison(w, nil) })

	if *exp != "all" {
		switch *exp {
		case "fig1", "fig2", "fig3", "intro", "table1", "fig4", "fig5", "table2", "fig6", "fig7", "optopt", "compare":
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
	}
}
