package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// FuzzTraceRoundTrip feeds arbitrary bytes to the CLTR reader. Valid
// containers must round-trip byte-identically through decode→re-encode;
// corrupt magic/version/truncated varints must surface as errors, never
// panics or silent truncation.
func FuzzTraceRoundTrip(f *testing.F) {
	// Well-formed seeds of several shapes.
	for _, syms := range [][]int32{
		{},
		{0},
		{5, 5, 4, 1000000, 0, 7},
		{1, 2, 3, 2, 1, 2, 3, 2},
	} {
		var buf bytes.Buffer
		if _, err := New(syms).WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Corrupt seeds: bad magic, bad version, truncated count/body,
	// negative symbol, huge declared count.
	f.Add([]byte("XXXX\x01\x00"))
	f.Add([]byte("CLTR\x09\x00"))
	f.Add([]byte("CLTR\x01\xff"))
	f.Add([]byte("CLTR\x01\x05\x02"))
	f.Add([]byte("CLTR\x01\x01\x01")) // delta -1 from 0: negative symbol
	f.Add([]byte("CLTR\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))
	// Adversarial corpus: truncated varints, oversized declared
	// lengths, and mid-record EOF in every position a varint can be cut.
	f.Add([]byte("CLTR"))                                                 // EOF before version
	f.Add([]byte("CLTR\x01\x80"))                                         // count varint cut mid-continuation
	f.Add([]byte("CLTR\x01\x80\x80\x80"))                                 // deeper continuation, still cut
	f.Add([]byte("CLTR\x01\x02\x02\x80"))                                 // second delta cut mid-continuation
	f.Add([]byte("CLTR\x01\x03\x02\x02"))                                 // declares 3, body holds 2
	f.Add([]byte("CLTR\x01\x80\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01")) // 11-byte varint: overflow
	f.Add(append([]byte("CLTR\x01\x84\x80\x80\x80\x08"), 0x02))           // count just over MaxFileCount
	f.Add([]byte("CLTR\x01\x02\xfe\xff\xff\xff\x0f"))                     // delta jumps past the symbol cap

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		tr2, err := ReadFrom(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded trace failed: %v", err)
		}
		if !reflect.DeepEqual(tr.Syms, tr2.Syms) && !(len(tr.Syms) == 0 && len(tr2.Syms) == 0) {
			t.Fatal("round trip changed the symbol sequence")
		}
		var buf2 bytes.Buffer
		if _, err := tr2.WriteTo(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("canonical encoding is not byte-stable")
		}
	})
}

func TestDecoderStreamsIncrementally(t *testing.T) {
	syms := []int32{3, 1, 4, 1, 5, 9, 2, 6}
	var buf bytes.Buffer
	if _, err := New(syms).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(syms) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(syms))
	}
	for i, want := range syms {
		got, err := d.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if got != want {
			t.Fatalf("Next(%d) = %d, want %d", i, got, want)
		}
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("Next past end = %v, want io.EOF", err)
	}
}

func TestDecoderErrorsCarryOffsets(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "reading magic"},
		{"bad magic", []byte("XXXX\x01\x00"), "bad magic"},
		{"bad version", []byte("CLTR\x09\x00"), "unsupported version"},
		{"truncated count", []byte("CLTR\x01"), "reading count"},
		{"truncated body", []byte("CLTR\x01\x05\x02"), "occurrence 1"},
		{"negative symbol", []byte("CLTR\x01\x01\x01"), "invalid symbol"},
	}
	for _, c := range cases {
		_, err := ReadFrom(bytes.NewReader(c.data))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !bytes.Contains([]byte(err.Error()), []byte(c.want)) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if !bytes.Contains([]byte(err.Error()), []byte("offset")) &&
			c.name != "bad version" && c.name != "negative symbol" {
			t.Errorf("%s: error %q carries no offset", c.name, err)
		}
	}
}

// TestDecoderAdversarialInputs pins the failure mode for hostile
// containers: truncated varints, oversized declared lengths, and
// mid-record EOF must all return wrapped, offset-carrying errors —
// never a panic, a silent truncation, or a bare io.EOF that a caller
// could mistake for clean end-of-stream.
func TestDecoderAdversarialInputs(t *testing.T) {
	hugeCount := append([]byte("CLTR\x01"), 0x84, 0x80, 0x80, 0x80, 0x08) // 2^31+4 > MaxFileCount
	overflowVarint := append([]byte("CLTR\x01"),
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	cases := []struct {
		name      string
		data      []byte
		wantMsg   string
		wantUnEOF bool // error chain must carry io.ErrUnexpectedEOF
	}{
		{"header cut before version", []byte("CLTR"), "reading version", true},
		{"count varint cut", []byte("CLTR\x01\x80"), "reading count", true},
		{"count varint cut deep", []byte("CLTR\x01\x80\x80\x80"), "reading count", true},
		{"oversized declared count", hugeCount, "exceeds limit", false},
		{"count varint overflow", overflowVarint, "reading count", false},
		{"mid-record EOF", []byte("CLTR\x01\x03\x02\x02"), "occurrence 2", true},
		{"delta varint cut", []byte("CLTR\x01\x02\x02\x80"), "occurrence 1", true},
		{"delta past symbol cap", []byte("CLTR\x01\x02\xfe\xff\xff\xff\x0f"), "invalid symbol", false},
	}
	for _, c := range cases {
		_, err := ReadFrom(bytes.NewReader(c.data))
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantMsg)
		}
		if !strings.Contains(err.Error(), "offset") {
			t.Errorf("%s: error %q carries no offset", c.name, err)
		}
		if c.wantUnEOF && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: error %q does not wrap io.ErrUnexpectedEOF", c.name, err)
		}
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: error %q leaks a bare io.EOF", c.name, err)
		}
	}
}

// TestDecodeBoundedAllocation: a header that declares an enormous
// occurrence count must not force an enormous up-front allocation —
// the decoder caps its capacity hint and grows only as payload bytes
// actually validate.
func TestDecodeBoundedAllocation(t *testing.T) {
	// Declares MaxFileCount occurrences; delivers three bytes of body.
	data := append([]byte("CLTR\x01"), 0x80, 0x80, 0x80, 0x80, 0x08) // uvarint(1<<31)
	data = append(data, 0x02, 0x02, 0x02)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadFrom(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("truncated 2^31-record container was accepted")
	}
	// The 1<<20-symbol cap is 4 MiB; leave slack for test-harness noise
	// but stay far below the 8 GiB a trusting decoder would reserve.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Errorf("decoding a lying header allocated %d bytes", grew)
	}
}

func TestDigestIsContentAddressed(t *testing.T) {
	a := New([]int32{1, 2, 3})
	b := New([]int32{1, 2, 3})
	c := New([]int32{1, 2, 4})
	if a.Digest() != b.Digest() {
		t.Error("equal traces have different digests")
	}
	if a.Digest() == c.Digest() {
		t.Error("different traces share a digest")
	}
	if len(a.Digest()) != 64 {
		t.Errorf("digest %q is not hex sha-256", a.Digest())
	}
}

func TestHashingReaderMatchesDigest(t *testing.T) {
	tr := New([]int32{10, 20, 30, 25, 10})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	hr := NewHashingReader(bytes.NewReader(buf.Bytes()))
	got, err := ReadFrom(hr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, hr); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Syms, tr.Syms) {
		t.Fatal("decode through HashingReader changed the trace")
	}
	if hr.Sum() != tr.Digest() {
		t.Errorf("streamed digest %s != canonical digest %s", hr.Sum(), tr.Digest())
	}
}
