package experiments

import (
	"fmt"

	"codelayout/internal/textplot"
)

// Figure6Result reproduces Figure 6: the per-probe co-run speedups of
// the three optimizers. It is a re-rendering of Table II's cells before
// averaging, exactly as the paper's Figure 6 plots the data behind
// Table II.
type Figure6Result struct {
	Table Table2Result
}

// Figure6 measures (or reuses) the co-run matrix.
func Figure6(w *Workspace) (Figure6Result, error) {
	t, err := Table2(w)
	return Figure6Result{Table: t}, err
}

// Figure6FromTable2 wraps an existing Table II result, avoiding a second
// run of the co-run matrix.
func Figure6FromTable2(t Table2Result) Figure6Result { return Figure6Result{Table: t} }

// String renders one panel per optimizer, one bar per (program, probe).
func (r Figure6Result) String() string {
	out := "Figure 6: co-run speedup of three optimizers (optimized+original vs original+original)\n\n"
	panel := map[string]string{
		"func-affinity": "(a) function layout opt based on affinity model",
		"bb-affinity":   "(b) BB layout opt based on affinity model",
		"func-trg":      "(c) function layout opt based on TRG model",
	}
	for _, opt := range Table2Optimizers {
		c := &textplot.Chart{Title: panel[opt], Width: 30, Format: "%.3fx", Baseline: 1}
		for _, row := range r.Table.Rows {
			if row.Optimizer != opt || row.NA {
				continue
			}
			for _, cell := range row.Cells {
				c.Add(fmt.Sprintf("%s vs %s", row.Name, cell.Probe), cell.Speedup)
			}
		}
		out += c.String() + "\n"
	}
	return out
}
