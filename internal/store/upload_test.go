package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// failAfter yields n bytes of payload then fails — a client that
// disconnected mid-PATCH.
type failAfter struct {
	r io.Reader
}

func (f *failAfter) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if err == io.EOF {
		return n, errors.New("connection reset")
	}
	return n, err
}

func newUploadsT(t *testing.T) *Uploads {
	t.Helper()
	u, err := NewUploads(filepath.Join(t.TempDir(), "uploads"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// TestUploadAppendAndSeal: the happy path — chunked appends accumulate
// at the reported offsets and Seal hands back exactly the concatenated
// bytes.
func TestUploadAppendAndSeal(t *testing.T) {
	u := newUploadsT(t)
	up, err := u.Create()
	if err != nil {
		t.Fatal(err)
	}
	if u.Len() != 1 {
		t.Fatalf("sessions = %d, want 1", u.Len())
	}
	payload := bytes.Repeat([]byte("chunked-trace-bytes."), 50)
	var off int64
	for len(payload) > int(off) {
		end := off + 128
		if end > int64(len(payload)) {
			end = int64(len(payload))
		}
		next, resumed, err := up.Append(off, bytes.NewReader(payload[off:end]))
		if err != nil {
			t.Fatal(err)
		}
		if resumed {
			t.Fatal("clean append reported as resume")
		}
		if next != end {
			t.Fatalf("offset after append = %d, want %d", next, end)
		}
		off = next
	}
	path, size, err := u.Seal(up.ID)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Fatalf("sealed size = %d, want %d", size, len(payload))
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("sealed bytes differ from appended bytes")
	}
	if u.Len() != 0 {
		t.Fatalf("sessions after seal = %d, want 0", u.Len())
	}
	if _, ok := u.Get(up.ID); ok {
		t.Fatal("sealed session still resolvable")
	}
}

// TestUploadOffsetMismatch: a PATCH at the wrong offset is rejected
// with the durable offset, and changes nothing.
func TestUploadOffsetMismatch(t *testing.T) {
	u := newUploadsT(t)
	up, _ := u.Create()
	if _, _, err := up.Append(0, strings.NewReader("abcd")); err != nil {
		t.Fatal(err)
	}
	cur, _, err := up.Append(2, strings.NewReader("xy"))
	if !errors.Is(err, ErrOffsetMismatch) {
		t.Fatalf("err = %v, want ErrOffsetMismatch", err)
	}
	if cur != 4 {
		t.Fatalf("reported offset = %d, want 4", cur)
	}
	if up.Offset() != 4 {
		t.Fatalf("offset after rejected append = %d, want 4", up.Offset())
	}
}

// TestUploadInterruptedAppendRollsBack: a client disconnect mid-body
// rolls the spool back to the prior offset; the retry from that offset
// succeeds, is flagged as a resume, and the final bytes are exactly the
// logical stream — no duplicated or torn range.
func TestUploadInterruptedAppendRollsBack(t *testing.T) {
	u := newUploadsT(t)
	up, _ := u.Create()
	if _, _, err := up.Append(0, strings.NewReader("hello ")); err != nil {
		t.Fatal(err)
	}
	cur, _, err := up.Append(6, &failAfter{strings.NewReader("wor")})
	if err == nil {
		t.Fatal("interrupted append succeeded")
	}
	if cur != 6 {
		t.Fatalf("offset after interruption = %d, want 6 (rolled back)", cur)
	}
	next, resumed, err := up.Append(6, strings.NewReader("world"))
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("recovery append not flagged as resume")
	}
	if next != 11 {
		t.Fatalf("offset after resume = %d, want 11", next)
	}
	path, size, err := u.Seal(up.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if size != 11 || string(got) != "hello world" {
		t.Fatalf("sealed %d bytes %q, want 11 %q", size, got, "hello world")
	}
}

// TestUploadSizeBound: an append crossing the per-upload bound is
// rejected whole.
func TestUploadSizeBound(t *testing.T) {
	u, err := NewUploads(filepath.Join(t.TempDir(), "uploads"), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	up, _ := u.Create()
	if _, _, err := up.Append(0, strings.NewReader("12345678")); err != nil {
		t.Fatalf("append at the bound: %v", err)
	}
	cur, _, err := up.Append(8, strings.NewReader("9"))
	if !errors.Is(err, ErrUploadTooLarge) {
		t.Fatalf("err = %v, want ErrUploadTooLarge", err)
	}
	if cur != 8 {
		t.Fatalf("offset after oversize append = %d, want 8", cur)
	}
}

// TestUploadSessionBound: Create past the session cap is refused until
// a slot frees.
func TestUploadSessionBound(t *testing.T) {
	u, err := NewUploads(filepath.Join(t.TempDir(), "uploads"), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := u.Create()
	if _, err := u.Create(); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Create(); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("err = %v, want ErrTooManySessions", err)
	}
	if !u.Discard(a.ID) {
		t.Fatal("discard of live session failed")
	}
	if _, err := u.Create(); err != nil {
		t.Fatalf("create after discard: %v", err)
	}
}

// TestUploadSealedRejectsAppend: finalized and discarded sessions
// refuse further appends.
func TestUploadSealedRejectsAppend(t *testing.T) {
	u := newUploadsT(t)
	up, _ := u.Create()
	path, _, err := u.Seal(up.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer os.Remove(path)
	if _, _, err := up.Append(0, strings.NewReader("x")); !errors.Is(err, ErrUploadSealed) {
		t.Fatalf("err = %v, want ErrUploadSealed", err)
	}
}

// TestUploadsStartupSweep: part files from a dead process are deleted
// when the manager comes up — sessions do not survive restarts.
func TestUploadsStartupSweep(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "uploads")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "deadbeef"+partSuffix)
	if err := os.WriteFile(stray, []byte("orphaned"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "unrelated.txt")
	if err := os.WriteFile(keep, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewUploads(dir, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray part file survived startup")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatal("unrelated file swept")
	}
}
