package experiments

import (
	"fmt"
	"strings"

	"codelayout/internal/parallel"
	"codelayout/internal/progen"
	"codelayout/internal/stats"
)

// NonTrivialMiss is the solo miss-ratio threshold above which a program
// counts as having a "non-trivial miss ratio" in the paper's sense ("9
// out of 29 SPEC CPU 2006 programs have non-trivial miss ratios").
const NonTrivialMiss = 0.005

// IntroResult reproduces the unnumbered table of §I: the average
// instruction-cache miss ratio of the non-trivial programs under solo
// execution and under hyper-threaded co-run with the two probes.
type IntroResult struct {
	// Programs lists the non-trivial programs.
	Programs []string
	// AvgSolo, AvgCorun1 and AvgCorun2 are the averages over Programs;
	// co-run 1 uses the gcc probe, co-run 2 the gamess probe.
	AvgSolo, AvgCorun1, AvgCorun2 float64
}

// Increase1 and Increase2 return the co-run miss inflation over solo.
func (r IntroResult) Increase1() float64 { return stats.RelChange(r.AvgSolo, r.AvgCorun1) }
func (r IntroResult) Increase2() float64 { return stats.RelChange(r.AvgSolo, r.AvgCorun2) }

// IntroTable measures the §I contention table on the screening suite,
// using the hardware-counter path as the paper did.
func IntroTable(w *Workspace) (IntroResult, error) {
	return IntroTableOn(w, nil)
}

// IntroTableOn measures the contention table on a subset of the
// screening suite (nil means all 29 programs); tests use subsets.
func IntroTableOn(w *Workspace, names []string) (IntroResult, error) {
	suite, err := w.benchSubset(names)
	if err != nil {
		return IntroResult{}, err
	}
	gcc, err := w.Bench(progen.ProbeGCC)
	if err != nil {
		return IntroResult{}, err
	}
	gamess, err := w.Bench(progen.ProbeGamess)
	if err != nil {
		return IntroResult{}, err
	}

	var res IntroResult
	// Per-program jobs run concurrently; each decides its own
	// non-triviality (skipping the co-runs when below threshold), and the
	// filtered averages assemble in suite order.
	type meas struct {
		keep           bool
		solo, co1, co2 float64
	}
	ms, err := parallel.Map(w.Workers(), len(suite), func(i int) (meas, error) {
		b := suite[i]
		s, err := b.HWSolo(Baseline)
		if err != nil {
			return meas{}, err
		}
		mr := s.Counters.ICacheMissRatio()
		if mr < NonTrivialMiss {
			return meas{}, nil
		}
		c1, err := HWCorunTimed(b, Baseline, gcc, Baseline)
		if err != nil {
			return meas{}, err
		}
		c2, err := HWCorunTimed(b, Baseline, gamess, Baseline)
		if err != nil {
			return meas{}, err
		}
		return meas{
			keep: true,
			solo: mr,
			co1:  c1.Counters.ICacheMissRatio(),
			co2:  c2.Counters.ICacheMissRatio(),
		}, nil
	})
	if err != nil {
		return res, err
	}
	var solo, co1, co2 []float64
	for i, m := range ms {
		if !m.keep {
			continue
		}
		res.Programs = append(res.Programs, suite[i].Name())
		solo = append(solo, m.solo)
		co1 = append(co1, m.co1)
		co2 = append(co2, m.co2)
	}
	res.AvgSolo = stats.Mean(solo)
	res.AvgCorun1 = stats.Mean(co1)
	res.AvgCorun2 = stats.Mean(co2)
	return res, nil
}

// String renders the table in the paper's layout.
func (r IntroResult) String() string {
	t := &stats.Table{Header: []string{"", "avg. miss ratio", "increase over solo"}}
	t.Add("solo", stats.Pct(r.AvgSolo), "—")
	t.Add("co-run 1 (gcc)", stats.Pct(r.AvgCorun1), stats.SignedPct(r.Increase1()))
	t.Add("co-run 2 (gamess)", stats.Pct(r.AvgCorun2), stats.SignedPct(r.Increase2()))
	return fmt.Sprintf("Intro table (§I): shared-cache contention over %d non-trivial programs\n(%s)\n\n%s",
		len(r.Programs), strings.Join(r.Programs, ", "), t)
}
