#!/bin/sh
# smoke_chaos.sh — self-healing chaos smoke test, run by `make smoke-chaos`
# and the CI chaos-smoke job. A 3-node cluster is driven through a seeded
# kill/restart/fault schedule and must converge on its own:
#
#   phase 1 (replication loss + anti-entropy repair):
#     SIGKILL one node (the victim, picked by SMOKE_SEED), submit distinct
#     jobs to a survivor until at least one replication push is
#     short-circuited at the down victim (layoutd_replication_skipped_total),
#     restart the victim on its old store dir, and require the anti-entropy
#     sweeps to re-push the missed blobs: layoutd_antientropy_repaired_total
#     > 0 and every store key present on >= -replicas nodes.
#
#   phase 2 (mid-upload SIGKILL + resume):
#     start a resumable upload on the victim, PATCH the first chunk,
#     SIGKILL the victim mid-session, restart it, and require the session
#     back (recovered: true, durable offset intact, 409 offset resync),
#     then resume with layoutctl -upload-id to a finalize that is a cache
#     hit on the phase-1 digest — the resumed bytes are byte-identical to
#     the buffered oracle, and nothing recomputes.
#
#   phase 3 (fault burst + degraded awareness):
#     SIGKILL the victim again and restart it with -fault-spec so every
#     disk write fails with ENOSPC; the victim must degrade (store state
#     0), the survivors must observe it degraded (peer health 1) so
#     anti-entropy stops pushing at it, and the victim must skip its own
#     sweeps (a degraded store has nothing durable to offer). A final
#     clean restart must converge again.
#
#   throughout: zero recompute — layoutd_jobs_completed_total on every
#   node never moves after the phase-1 submissions.
#
# SMOKE_SEED (default 1) picks the victim and varies the schedule.
# Set SMOKE_WORK to redirect the scratch dir somewhere that survives the
# run (CI points it at a directory uploaded as an artifact on failure);
# without it a mktemp dir is used and removed.
set -eu

if [ -n "${SMOKE_WORK:-}" ]; then
    WORK=$SMOKE_WORK
    mkdir -p "$WORK"
    KEEP_WORK=1
else
    WORK=$(mktemp -d)
    KEEP_WORK=0
fi
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill -9 "$pid" 2>/dev/null || true
    done
    [ "$KEEP_WORK" = 1 ] || rm -rf "$WORK"
}
trap cleanup EXIT

PROG=458.sjeng
OPT=func-affinity
RF=2
SEED=${SMOKE_SEED:-1}
VICTIM="n$((SEED % 3 + 1))"
CHUNK1=65536

echo "smoke-chaos: seed $SEED, victim $VICTIM"

echo "smoke-chaos: building binaries"
go build -o "$WORK/layoutd" ./cmd/layoutd
go build -o "$WORK/layoutctl" ./cmd/layoutctl
go build -o "$WORK/tracedump" ./cmd/tracedump

# Distinct traces give distinct content addresses, so the kill schedule
# is guaranteed to strand at least one blob whose replica set includes
# the victim.
echo "smoke-chaos: recording $PROG traces"
for k in 1 2 3 4; do
    "$WORK/tracedump" -prog "$PROG" -record "$WORK/t$k" -gran bb -repeat "$k"
done

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

# Static membership needs URLs up front, so ports are picked from a
# PID-salted base instead of :0 + ready-file.
BASE=$((20000 + ($$ + SEED) % 20000))
P1=$BASE
P2=$((BASE + 1))
P3=$((BASE + 2))
A1="http://127.0.0.1:$P1"
A2="http://127.0.0.1:$P2"
A3="http://127.0.0.1:$P3"
PEERS="n1=$A1,n2=$A2,n3=$A3"

addr_of() {
    case $1 in
    n1) echo "$A1" ;;
    n2) echo "$A2" ;;
    n3) echo "$A3" ;;
    esac
}

start_node() {
    # $1 = node ID, $2 = port, $3 = extra flags appended verbatim
    # shellcheck disable=SC2086
    "$WORK/layoutd" -addr "127.0.0.1:$2" -jobs 2 -queue 8 \
        -node-id "$1" -peers "$PEERS" -replicas $RF -health-interval 250ms \
        -antientropy 500ms -store-dir "$WORK/store-$1" \
        -upload-dir "$WORK/uploads-$1" ${3:-} >>"$WORK/$1.log" 2>&1 &
    eval "PID_$1=$!"
    PIDS="$PIDS $!"
}

kill_node() {
    # $1 = node ID
    eval "pid=\$PID_$1"
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true
}

wait_healthy() {
    # $1 = node ID; tolerates degraded (phase 3 boots into it)
    a=$(addr_of "$1")
    i=0
    while ! fetch "$a/healthz" 2>/dev/null | grep -q "\"node_id\": \"$1\""; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-chaos: $1 never became healthy" >&2
            cat "$WORK/$1.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

wait_metric() {
    # $1 = node ID, $2 = anchored grep pattern, $3 = failure label
    a=$(addr_of "$1")
    i=0
    while ! fetch "$a/metrics" 2>/dev/null | grep -q "$2"; do
        i=$((i + 1))
        if [ "$i" -gt 200 ]; then
            echo "smoke-chaos: $1 never reached: $3" >&2
            fetch "$a/metrics" 2>/dev/null | grep '^layoutd_' >&2 || true
            cat "$WORK/$1.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

metric() {
    # $1 = node ID, $2 = metric name (exact, unlabeled); prints 0 if absent
    v=$(fetch "$(addr_of "$1")/metrics" 2>/dev/null | awk -v m="$2" '$1 == m {print $2}')
    echo "${v:-0}"
}

start_node n1 "$P1"
start_node n2 "$P2"
start_node n3 "$P3"
echo "smoke-chaos: nodes n1=$A1 n2=$A2 n3=$A3"
for id in n1 n2 n3; do wait_healthy "$id"; done
# Membership must converge before the first write, or a racing health
# probe makes replication skip a live peer.
for id in n1 n2 n3; do
    wait_metric "$id" '^layoutd_peer_health{peer="n[0-9]*"} 2$' "both peers up"
done

SURVIVORS=""
for id in n1 n2 n3; do
    [ "$id" = "$VICTIM" ] || SURVIVORS="$SURVIVORS $id"
done
SUB=${SURVIVORS# }     # first survivor takes the submissions
SUB=${SUB%% *}

echo "smoke-chaos: phase 1: SIGKILL $VICTIM, then write while it is down"
kill_node "$VICTIM"
for id in $SURVIVORS; do
    wait_metric "$id" "^layoutd_peer_health{peer=\"$VICTIM\"} 0$" "$VICTIM seen down"
done

# Four distinct traces write eight blobs (result + trace each) while
# the victim is down. Replication never enqueues to a down peer, so any
# blob whose replica set includes the victim is silently missed — only
# the anti-entropy sweeps can deliver it after the restart. A blob's
# replica set includes the victim with probability 2/3 (RF=2 of 3), so
# eight blobs leave nothing to repair with probability ~(1/3)^8.
for k in 1 2 3 4; do
    "$WORK/layoutctl" -addr "$(addr_of "$SUB")" -submit "$WORK/t$k.trace" \
        -prog "$PROG" -opt "$OPT" -wait >"$WORK/result$k.json"
    grep -q '"status": "done"' "$WORK/result$k.json"
done
DIGEST1=$(grep -o '"digest": "[0-9a-f]*"' "$WORK/result1.json" | head -1 | cut -d'"' -f4)
[ -n "$DIGEST1" ] || { echo "smoke-chaos: no digest in result 1" >&2; exit 1; }
SKIPPED=0
for id in $SURVIVORS; do
    SKIPPED=$((SKIPPED + $(metric "$id" layoutd_replication_skipped_total)))
done
echo "smoke-chaos: 4 jobs done while $VICTIM was down ($SKIPPED racing push(es) short-circuited); oracle digest $DIGEST1"

# The labeled drop counter and the drop/skip warnings are the observable
# end of the repair story; the series must exist even at zero.
fetch "$(addr_of "$SUB")/metrics" >"$WORK/metrics-sub.txt"
grep -q "^layoutd_replication_dropped_total{peer=\"$VICTIM\"} " "$WORK/metrics-sub.txt" || {
    echo "smoke-chaos: no per-peer replication drop series for $VICTIM" >&2
    exit 1
}

echo "smoke-chaos: restarting $VICTIM; anti-entropy must repair it"
start_node "$VICTIM" "$(addr_of "$VICTIM" | sed 's/.*://')"
wait_healthy "$VICTIM"

wait_repaired() {
    # total layoutd_antientropy_repaired_total across all nodes > 0
    i=0
    while :; do
        total=0
        for id in n1 n2 n3; do
            total=$((total + $(metric "$id" layoutd_antientropy_repaired_total)))
        done
        [ "$total" -gt 0 ] && { echo "smoke-chaos: $total key(s) repaired"; return 0; }
        i=$((i + 1))
        if [ "$i" -gt 200 ]; then
            echo "smoke-chaos: anti-entropy never repaired anything" >&2
            cat "$WORK"/n*.log >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_repaired

# Convergence: every key any node lists is held by at least RF nodes.
converged() {
    : >"$WORK/census.txt"
    for id in n1 n2 n3; do
        fetch "$(addr_of "$id")/v1/store?format=keys" >>"$WORK/census.txt" 2>/dev/null || return 1
    done
    [ -s "$WORK/census.txt" ] || return 1
    sort "$WORK/census.txt" | uniq -c | awk -v rf=$RF '$1 < rf {exit 1}'
}
wait_converged() {
    i=0
    while ! converged; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "smoke-chaos: cluster never converged; replica census:" >&2
            sort "$WORK/census.txt" | uniq -c >&2
            cat "$WORK"/n*.log >&2
            exit 1
        fi
        sleep 0.1
    done
}
wait_converged
echo "smoke-chaos: every key on >= $RF nodes ($(sort -u "$WORK/census.txt" | wc -l) distinct keys)"

# Zero-recompute baseline: nothing after this point may optimize.
for id in n1 n2 n3; do
    eval "BASE_$id=\$(metric $id layoutd_jobs_completed_total)"
done

echo "smoke-chaos: phase 2: mid-upload SIGKILL on $VICTIM"
VADDR=$(addr_of "$VICTIM")
if command -v curl >/dev/null 2>&1; then
    curl -fsS -X POST "$VADDR/v1/uploads" >"$WORK/session.json"
    UPLOAD_ID=$(grep -o '"id": "[^"]*"' "$WORK/session.json" | head -1 | cut -d'"' -f4)
    [ -n "$UPLOAD_ID" ] || { echo "smoke-chaos: no upload session id" >&2; exit 1; }
    head -c "$CHUNK1" "$WORK/t1.trace" >"$WORK/part1"
    curl -fsS -X PATCH -H "Upload-Offset: 0" \
        --data-binary @"$WORK/part1" "$VADDR/v1/uploads/$UPLOAD_ID" >/dev/null

    kill_node "$VICTIM"
    start_node "$VICTIM" "${VADDR##*:}"
    wait_healthy "$VICTIM"

    fetch "$VADDR/v1/uploads/$UPLOAD_ID" >"$WORK/recovered.json"
    grep -q "\"offset\": $CHUNK1" "$WORK/recovered.json" || {
        echo "smoke-chaos: recovered session lost its durable offset:" >&2
        cat "$WORK/recovered.json" >&2
        exit 1
    }
    grep -q '"recovered": true' "$WORK/recovered.json"
    if command -v sha256sum >/dev/null 2>&1; then
        WANT_SHA=$(sha256sum "$WORK/part1" | cut -d' ' -f1)
        grep -q "\"sha256\": \"$WANT_SHA\"" "$WORK/recovered.json" || {
            echo "smoke-chaos: recovered prefix digest does not match the sent bytes" >&2
            cat "$WORK/recovered.json" >&2
            exit 1
        }
    fi
    wait_metric "$VICTIM" '^layoutd_upload_sessions_recovered_total 1$' "session recovered"

    # The resuming client's first retry carries the pre-crash offset it
    # last attempted; the daemon must answer 409 with the durable one.
    CODE=$(curl -s -o /dev/null -D "$WORK/conflict.hdr" -w '%{http_code}' \
        -X PATCH -H "Upload-Offset: 0" \
        --data-binary @"$WORK/part1" "$VADDR/v1/uploads/$UPLOAD_ID")
    [ "$CODE" = "409" ] || { echo "smoke-chaos: stale retry got $CODE, want 409" >&2; exit 1; }
    grep -iq "^upload-offset: $CHUNK1" "$WORK/conflict.hdr" || {
        echo "smoke-chaos: 409 did not report durable offset $CHUNK1" >&2
        cat "$WORK/conflict.hdr" >&2
        exit 1
    }
    echo "smoke-chaos: session survived SIGKILL at offset $CHUNK1; resuming"
    "$WORK/layoutctl" -addr "$VADDR" -upload "$WORK/t1.trace" -upload-id "$UPLOAD_ID" \
        -prog "$PROG" -opt "$OPT" -wait >"$WORK/resumed.json"
else
    echo "smoke-chaos: curl not found; restart-only upload check via layoutctl"
    kill_node "$VICTIM"
    start_node "$VICTIM" "${VADDR##*:}"
    wait_healthy "$VICTIM"
    "$WORK/layoutctl" -addr "$VADDR" -upload "$WORK/t1.trace" \
        -prog "$PROG" -opt "$OPT" -wait >"$WORK/resumed.json"
fi
grep -q '"status": "done"' "$WORK/resumed.json"
grep -q '"cached": true' "$WORK/resumed.json"
DIGEST_RESUMED=$(grep -o '"digest": "[0-9a-f]*"' "$WORK/resumed.json" | head -1 | cut -d'"' -f4)
[ "$DIGEST_RESUMED" = "$DIGEST1" ] || {
    echo "smoke-chaos: resumed digest $DIGEST_RESUMED != oracle $DIGEST1" >&2
    exit 1
}
echo "smoke-chaos: resumed upload finalized to a cache hit on the oracle digest"

if command -v curl >/dev/null 2>&1 && command -v sha256sum >/dev/null 2>&1; then
    echo "smoke-chaos: phase 3: restart $VICTIM with every disk write failing"
    kill_node "$VICTIM"
    start_node "$VICTIM" "${VADDR##*:}" "-fault-spec write:every=1,err=ENOSPC"
    wait_healthy "$VICTIM"

    # The converged victim holds everything already, so no organic write
    # arrives to trip the breaker; push a fresh content-addressed blob at
    # the replicate endpoint until the failing disk degrades the store.
    # The blob only ever reaches the victim's memory tier (the write
    # fails), so it vanishes at the next restart and never enters the
    # census.
    printf 'chaos-%s' "$SEED" >"$WORK/chaos.blob"
    CHAOS_KEY=$(sha256sum "$WORK/chaos.blob" | cut -d' ' -f1)
    i=0
    while ! fetch "$VADDR/metrics" 2>/dev/null | grep -q '^layoutd_store_state 0$'; do
        curl -s -X PUT -H "X-Layoutd-Digest: $CHAOS_KEY" \
            --data-binary @"$WORK/chaos.blob" \
            "$VADDR/v1/replicate/$CHAOS_KEY" >/dev/null || true
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-chaos: $VICTIM never degraded under the write fault" >&2
            cat "$WORK/$VICTIM.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    for id in $SURVIVORS; do
        wait_metric "$id" "^layoutd_peer_health{peer=\"$VICTIM\"} 1$" "$VICTIM seen degraded"
    done
    # The degraded victim must refuse to seed repairs from memory.
    i=0
    while ! grep -q 'local store unavailable, skipping sweep' "$WORK/$VICTIM.log"; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-chaos: degraded $VICTIM never skipped its own sweep" >&2
            cat "$WORK/$VICTIM.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "smoke-chaos: degraded $VICTIM skipped its sweeps; survivors marked it degraded"
else
    echo "smoke-chaos: curl or sha256sum not found; skipping the fault-burst phase"
fi

echo "smoke-chaos: final clean restart of $VICTIM; cluster must converge"
kill_node "$VICTIM"
start_node "$VICTIM" "${VADDR##*:}"
wait_healthy "$VICTIM"
wait_metric "$VICTIM" '^layoutd_store_state 1$' "store healthy again"
wait_converged
echo "smoke-chaos: converged after the fault burst"

# Zero recompute: the whole repair/resume/fault schedule never ran an
# optimization on any node.
for id in n1 n2 n3; do
    eval "want=\$BASE_$id"
    got=$(metric "$id" layoutd_jobs_completed_total)
    [ "$got" = "$want" ] || {
        echo "smoke-chaos: $id recomputed: jobs_completed $want -> $got" >&2
        exit 1
    }
done
echo "smoke-chaos: zero recompute across the schedule"

echo "smoke-chaos: draining all nodes"
for id in n1 n2 n3; do
    eval "pid=\$PID_$id"
    kill -TERM "$pid"
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "smoke-chaos: $id did not exit after SIGTERM" >&2
            cat "$WORK/$id.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    wait "$pid" 2>/dev/null || true
    grep -q 'drained cleanly' "$WORK/$id.log"
done
PIDS=""

echo "smoke-chaos: OK"
