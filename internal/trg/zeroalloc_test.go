package trg

import (
	"context"
	"math/rand"
	"testing"

	"codelayout/internal/trace"
)

// zeroAllocTrace mirrors the affinity package's steady-state fixture: a
// phased trace that grows the edge table during warm-up.
func zeroAllocTrace() *trace.Trace {
	rng := rand.New(rand.NewSource(9))
	syms := make([]int32, 20000)
	for i := range syms {
		phase := (i / 1000) % 4
		syms[i] = int32(phase*16 + rng.Intn(24))
	}
	return trace.New(syms)
}

// TestBuildShardZeroAlloc is the steady-state allocation guarantee of the
// TRG construction kernel: with a warmed shard state and a recycled
// graph, re-running the interleaving scan allocates nothing.
func TestBuildShardZeroAlloc(t *testing.T) {
	tt := zeroAllocTrace().Trimmed()
	maxSym := tt.MaxSym()
	const limit = 128
	st := &buildState{}
	g := NewGraph()
	ctx := context.Background()
	run := func() {
		g.Reset()
		g.ensureSym(maxSym)
		if err := buildShard(ctx, st, g, tt.Syms, maxSym, limit, 0, len(tt.Syms)); err != nil {
			t.Fatal(err)
		}
	}
	run() // grow the stack, snapshot buffer and edge table once
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Errorf("buildShard steady state allocs/op = %v, want 0", allocs)
	}
}

// BenchmarkBuildShard reports the kernel's ns/op and allocs/op for the
// bench-regression harness; allocs/op must stay 0.
func BenchmarkBuildShard(b *testing.B) {
	tt := zeroAllocTrace().Trimmed()
	maxSym := tt.MaxSym()
	const limit = 128
	st := &buildState{}
	g := NewGraph()
	ctx := context.Background()
	run := func() error {
		g.Reset()
		g.ensureSym(maxSym)
		return buildShard(ctx, st, g, tt.Syms, maxSym, limit, 0, len(tt.Syms))
	}
	if err := run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildArena measures the full construction with a shared Arena,
// recycling the result graph each iteration the way SequenceCtx does.
func BenchmarkBuildArena(b *testing.B) {
	tt := zeroAllocTrace()
	arena := &Arena{}
	ctx := context.Background()
	g, err := BuildCtx(ctx, tt, 128, 1, arena)
	if err != nil {
		b.Fatal(err)
	}
	arena.PutGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := BuildCtx(ctx, tt, 128, 1, arena)
		if err != nil {
			b.Fatal(err)
		}
		arena.PutGraph(g)
	}
}
