package trg

import (
	"container/heap"
)

// Reduce runs the paper's TRG reduction (Algorithm 2) with K code slots
// and returns the new code sequence.
//
// The algorithm repeatedly takes the heaviest remaining edge; each
// unplaced endpoint chooses a slot — the first empty one, otherwise the
// slot whose (merged) node it conflicts with least — is appended to that
// slot's linked list, and is combined with the slot's node in the graph
// (edge weights to common neighbours add up). Edges between the newly
// merged node and the other slots' nodes are removed (steps 19-21).
// Finally the sequence is emitted by sweeping the K lists round-robin,
// popping one header per non-empty list per sweep (steps 25-29), so that
// blocks sharing a slot end up K positions apart.
//
// Nodes that never gain an edge are appended after the reduction output
// in the graph's node order, keeping the result a permutation of all
// nodes.
func Reduce(g *Graph, k int) []int32 {
	if k < 1 {
		k = 1
	}
	r := &reducer{
		g:       g,
		k:       k,
		parent:  make(map[int32]int32),
		adj:     make(map[int32]map[int32]int64),
		slots:   make([][]int32, k),
		slotRep: make([]int32, k),
		slotOf:  make(map[int32]int),
	}
	for _, n := range g.nodes {
		r.parent[n] = n
	}
	pq := &edgeHeap{}
	g.forEachEdge(func(a, b int32, w int64) {
		r.addAdj(a, b, w)
		heap.Push(pq, heapEdge{w: w, a: a, b: b})
	})

	for pq.Len() > 0 {
		e := heap.Pop(pq).(heapEdge)
		a, b := r.find(e.a), r.find(e.b)
		if a == b {
			continue // merged since the entry was pushed
		}
		// Skip stale entries whose weight no longer matches the live edge.
		if r.adj[a][b] != e.w {
			continue
		}
		_, aPlaced := r.slotOf[a]
		_, bPlaced := r.slotOf[b]
		if aPlaced && bPlaced {
			continue
		}
		if !aPlaced {
			r.place(a, pq)
		}
		if !bPlaced {
			// a's placement may have merged b away; re-resolve.
			b = r.find(e.b)
			if _, ok := r.slotOf[b]; !ok {
				r.place(b, pq)
			}
		}
	}

	out := make([]int32, 0, len(g.nodes))
	emitted := make(map[int32]bool, len(g.nodes))
	// Round-robin sweep over slot lists.
	heads := make([]int, k)
	for {
		any := false
		for s := 0; s < k; s++ {
			if heads[s] < len(r.slots[s]) {
				sym := r.slots[s][heads[s]]
				heads[s]++
				out = append(out, sym)
				emitted[sym] = true
				any = true
			}
		}
		if !any {
			break
		}
	}
	// Isolated nodes (never placed) follow in first-occurrence order.
	for _, n := range g.nodes {
		if !emitted[n] {
			out = append(out, n)
		}
	}
	return out
}

type reducer struct {
	g      *Graph
	k      int
	parent map[int32]int32
	// adj holds live edge weights between node representatives.
	adj map[int32]map[int32]int64
	// slots[i] is the linked list of code blocks assigned to slot i, in
	// arrival order. slotRep[i] is the representative of the slot's
	// merged TRG node (only meaningful for non-empty slots).
	slots   [][]int32
	slotRep []int32
	slotOf  map[int32]int // representative -> slot index
}

func (r *reducer) find(x int32) int32 {
	for r.parent[x] != x {
		r.parent[x] = r.parent[r.parent[x]]
		x = r.parent[x]
	}
	return x
}

func (r *reducer) addAdj(a, b int32, w int64) {
	if r.adj[a] == nil {
		r.adj[a] = make(map[int32]int64)
	}
	if r.adj[b] == nil {
		r.adj[b] = make(map[int32]int64)
	}
	r.adj[a][b] += w
	r.adj[b][a] += w
}

func (r *reducer) removeEdge(a, b int32) {
	if m := r.adj[a]; m != nil {
		delete(m, b)
	}
	if m := r.adj[b]; m != nil {
		delete(m, a)
	}
}

// place assigns the unplaced node rep to a slot per steps 4-22 of
// Algorithm 2.
func (r *reducer) place(node int32, pq *edgeHeap) {
	slot := -1
	conflicts := int64(-1) // -1 encodes the algorithm's initial ∞
	for s := 0; s < r.k; s++ {
		if len(r.slots[s]) == 0 {
			slot = s
			conflicts = -2 // marks "empty slot chosen"
			break
		}
		w, ok := r.adj[node][r.slotRep[s]]
		if !ok {
			// No recorded conflicts with this slot's node: Algorithm 2
			// compares the edge weight, and an absent edge weighs 0.
			w = 0
		}
		if conflicts == -1 || w < conflicts {
			slot = s
			conflicts = w
		}
	}
	r.slots[slot] = append(r.slots[slot], node)
	if conflicts == -2 {
		// First occupant: the node becomes the slot's TRG node. Steps
		// 19-21 still apply: its edges to the other slots' nodes are
		// dropped (the nodes now sit in different cache slots, so they
		// no longer conflict).
		r.slotRep[slot] = node
		r.slotOf[node] = slot
		for s := 0; s < r.k; s++ {
			if s != slot && len(r.slots[s]) > 0 {
				r.removeEdge(node, r.slotRep[s])
			}
		}
		return
	}
	// Combine node into the slot's TRG node (step 18).
	rep := r.slotRep[slot]
	merged := r.merge(rep, node, pq)
	r.slotRep[slot] = merged
	delete(r.slotOf, rep)
	r.slotOf[merged] = slot
	// Steps 19-21: remove edges between the merged node and the other
	// slots' nodes.
	for s := 0; s < r.k; s++ {
		if s == slot || len(r.slots[s]) == 0 {
			continue
		}
		r.removeEdge(merged, r.slotRep[s])
	}
}

// merge unions node b into node a in the graph, combining edges, and
// pushes refreshed heap entries for every changed edge.
func (r *reducer) merge(a, b int32, pq *edgeHeap) int32 {
	// Union by adjacency degree: relabel the smaller side.
	if len(r.adj[a]) < len(r.adj[b]) {
		a, b = b, a
	}
	r.parent[b] = a
	for nb, w := range r.adj[b] {
		if nb == a {
			continue
		}
		delete(r.adj[nb], b)
		if r.adj[a] == nil {
			r.adj[a] = make(map[int32]int64)
		}
		r.adj[a][nb] += w
		if r.adj[nb] == nil {
			r.adj[nb] = make(map[int32]int64)
		}
		r.adj[nb][a] += w
		heap.Push(pq, heapEdge{w: r.adj[a][nb], a: a, b: nb})
	}
	delete(r.adj[a], b)
	delete(r.adj, b)
	return a
}

// heapEdge orders edges by descending weight; ties break toward smaller
// node IDs for determinism.
type heapEdge struct {
	w    int64
	a, b int32
}

type edgeHeap []heapEdge

func (h edgeHeap) Len() int { return len(h) }
func (h edgeHeap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w > h[j].w
	}
	ka, kb := pairKey(h[i].a, h[i].b), pairKey(h[j].a, h[j].b)
	return ka < kb
}
func (h edgeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x interface{}) { *h = append(*h, x.(heapEdge)) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
