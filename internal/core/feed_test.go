package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/layout"
	"codelayout/internal/progen"
)

// feedOptimize runs the streaming pipeline over the profile's raw block
// trace split at the given chunk size.
func feedOptimize(t *testing.T, o Optimizer, prof *Profile, chunk int) (*layout.Layout, Report) {
	t.Helper()
	f, err := o.NewFeed(context.Background(), prof.Prog)
	if err != nil {
		t.Fatal(err)
	}
	syms := prof.Blocks.Syms
	for len(syms) > 0 {
		c := chunk
		if c > len(syms) {
			c = len(syms)
		}
		if err := f.Feed(context.Background(), syms[:c]); err != nil {
			t.Fatal(err)
		}
		syms = syms[c:]
	}
	l, rep, err := f.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return l, rep
}

// TestFeedMatchesOptimize is the end-to-end streamed-vs-buffered oracle:
// for every feed-mode optimizer, pushing the trace chunk by chunk must
// produce a Report and layout byte-identical to the buffered
// OptimizeCtx, at Workers=1 and Workers=N, with shard spans small
// enough to force many arrival-cut shards.
func TestFeedMatchesOptimize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2; i++ {
		spec := randomSpec(rng, i)
		p, err := progen.Generate(spec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		prof, err := ProfileProgram(p, TrainSeed)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for _, base := range AllOptimizers() {
			if !base.FeedSupported(p) {
				t.Fatalf("case %d: %s must support feed-mode at defaults", i, base.Name())
			}
			o := base
			o.Workers = 1
			wantL, wantRep, err := o.Optimize(prof)
			if err != nil {
				t.Fatalf("case %d %s: %v", i, o.Name(), err)
			}
			for _, workers := range []int{1, 4} {
				for _, chunk := range []int{97, 8192} {
					o := base
					o.Workers = workers
					o.FeedShardSpan = 300
					l, rep := feedOptimize(t, o, prof, chunk)
					if !reflect.DeepEqual(rep, wantRep) {
						t.Fatalf("case %d %s workers=%d chunk=%d: report %+v != buffered %+v",
							i, o.Name(), workers, chunk, rep, wantRep)
					}
					if !reflect.DeepEqual(l.Addr, wantL.Addr) ||
						!reflect.DeepEqual(l.Order(), wantL.Order()) ||
						!reflect.DeepEqual(l.StubAddr, wantL.StubAddr) ||
						l.TotalBytes != wantL.TotalBytes {
						t.Fatalf("case %d %s workers=%d chunk=%d: layout differs from buffered",
							i, o.Name(), workers, chunk)
					}
				}
			}
		}
	}
}

// TestFeedSupportedGate: baselines never stream; paper optimizers stream
// only while pruning is provably the identity.
func TestFeedSupportedGate(t *testing.T) {
	p, err := LoadProgram("458.sjeng")
	if err != nil {
		t.Fatal(err)
	}
	// The intra baseline shares the affinity analysis — only its final
	// transformation differs — so it streams too.
	for _, o := range append(AllOptimizers(), BBAffinityIntra()) {
		if !o.FeedSupported(p) {
			t.Errorf("%s: want feed-mode at defaults", o.Name())
		}
	}
	for _, o := range []Optimizer{FuncCallGraph(), FuncCMG(), FuncSearch()} {
		if o.FeedSupported(p) {
			t.Errorf("%s: baselines must not claim feed-mode", o.Name())
		}
	}
	tight := BBAffinity()
	tight.PruneTopN = p.NumBlocks() - 1 // a real prune: needs full-trace counts
	if tight.FeedSupported(p) {
		t.Error("effective pruning must disable feed-mode")
	}
	tight.PruneTopN = p.NumBlocks()
	if !tight.FeedSupported(p) {
		t.Error("prune bound covering the alphabet must keep feed-mode")
	}
	if (Optimizer{}).FeedSupported(nil) {
		t.Error("nil program must not claim feed-mode")
	}
}

// TestFeedRejectsOutOfRangeSymbol: a hostile or mismatched trace fails
// fast with a diagnosable error instead of corrupting the analysis.
func TestFeedRejectsOutOfRangeSymbol(t *testing.T) {
	p, err := LoadProgram("458.sjeng")
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Optimizer{FuncAffinity(), BBTRG()} {
		f, err := o.NewFeed(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Feed(context.Background(), []int32{0, int32(p.NumBlocks())}); err == nil {
			t.Errorf("%s: out-of-range block accepted", o.Name())
		}
		f.Abort()
	}
}

// TestFeedEmptyTrace: finishing with no chunks mirrors the buffered
// pipeline on an empty profile trace.
func TestFeedEmptyTrace(t *testing.T) {
	p, err := LoadProgram("458.sjeng")
	if err != nil {
		t.Fatal(err)
	}
	f, err := BBAffinity().NewFeed(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := f.Finish(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TraceLen != 0 || rep.SeqLen != 0 || rep.Retention != 1.0 {
		t.Fatalf("empty feed report = %+v", rep)
	}
}
