package footprint

import (
	"math/rand"
	"testing"
)

// feedCurve drives a CurveFeeder with the trace split at the given
// chunk size.
func feedCurve(syms []int32, weights []int32, workers, chunk int) *Curve {
	f := NewCurveFeeder(weights)
	for len(syms) > 0 {
		c := chunk
		if c > len(syms) {
			c = len(syms)
		}
		f.Feed(syms[:c])
		syms = syms[c:]
	}
	return f.Finish(workers)
}

func curvesBitIdentical(a, b *Curve) bool {
	if a.N != b.N || a.Total != b.Total || len(a.FP) != len(b.FP) {
		return false
	}
	for i := range a.FP {
		if a.FP[i] != b.FP[i] {
			return false
		}
	}
	return true
}

// TestCurveFeederMatchesBuffered is the streamed-vs-buffered oracle for
// the footprint curve: feeding any chunking of a trace must yield a
// curve bit-identical (every float64) to NewCurveWorkers, weighted and
// unweighted, at Workers=1 and Workers=N.
func TestCurveFeederMatchesBuffered(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	traces := [][]int32{
		func() []int32 {
			s := make([]int32, 5000)
			for i := range s {
				s[i] = int32(rng.Intn(200))
			}
			return s
		}(),
		func() []int32 { // skewed: few hot symbols, long reuse tails
			s := make([]int32, 3000)
			for i := range s {
				if rng.Intn(4) == 0 {
					s[i] = int32(rng.Intn(150))
				} else {
					s[i] = int32(rng.Intn(5))
				}
			}
			return s
		}(),
		{7},
		{},
	}
	for ti, syms := range traces {
		var weights []int32
		if len(syms) > 0 {
			weights = make([]int32, 200)
			for i := range weights {
				weights[i] = int32(16 + rng.Intn(512))
			}
		}
		for _, ws := range [][]int32{nil, weights} {
			for _, workers := range []int{1, 4} {
				buffered := NewCurveWorkers(syms, ws, workers)
				for _, chunk := range []int{1, 37, 1024} {
					streamed := feedCurve(syms, ws, workers, chunk)
					if !curvesBitIdentical(streamed, buffered) {
						t.Fatalf("trace %d weighted=%v workers=%d chunk=%d: streamed curve differs",
							ti, ws != nil, workers, chunk)
					}
				}
			}
		}
	}
}

// TestCurveFeederDownstream: the streamed curve must answer the
// higher-level queries (miss ratio, slope) identically too.
func TestCurveFeederDownstream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	syms := make([]int32, 4000)
	for i := range syms {
		syms[i] = int32(rng.Intn(300))
	}
	buffered := NewCurveWorkers(syms, nil, 0)
	streamed := feedCurve(syms, nil, 0, 512)
	for _, capacity := range []float64{10, 50, 150, 299, 500} {
		if got, want := streamed.MissRatioAt(capacity), buffered.MissRatioAt(capacity); got != want {
			t.Fatalf("MissRatioAt(%v) = %v, want %v", capacity, got, want)
		}
	}
}
