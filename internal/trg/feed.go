package trg

import (
	"context"
	"sync"

	"codelayout/internal/parallel"
)

// defaultFeedShardSpan is the streamed shard span when the caller leaves
// it unset: large enough that the warm-up replay (up to windowBlocks
// distinct symbols) is noise against the shard body.
const defaultFeedShardSpan = 1 << 16

// Feeder constructs the TRG incrementally over a trace arriving in
// chunks, producing a graph whose node order and edge weights are
// identical to BuildCtx over the concatenated input: per-shard partial
// graphs merge exactly for ANY contiguous sharding (weights sum, node
// lists concatenate in trace order), so arrival-cut shards land on the
// same graph the buffered build computes.
//
// Unlike the affinity analysis, the construction pass only warms
// backward (the interleaving scan looks at the stack of past accesses),
// so a shard dispatches the moment its body fills — no wait for
// post-cut symbols. The slab kept in memory is bounded by the shard
// span plus the warm span; dispatched slabs recycle through a pool once
// their shard completes.
//
// A Feeder is not safe for concurrent use; call Feed from one
// goroutine, then exactly one of Finish or Abort.
type Feeder struct {
	limit       int
	shardTarget int
	arena       *Arena
	pool        *parallel.FeedPool

	slab []int32 // warm context [0,body) + undispatched body [body,len)
	body int

	prev   int32 // last accepted symbol, for cross-chunk trimming
	n      int   // trimmed occurrences accepted so far
	maxSym int32

	seen      []int64 // epoch stamps for the warm-start scan
	seenEpoch int64

	states   []*buildState // dispatched shards, in trace order
	slabPool sync.Pool     // *[]int32
	err      error
}

// NewFeeder prepares a streaming build bound to ctx. windowBlocks and
// workers are interpreted as by BuildCtx; shardSpan overrides the
// arrival-cut shard span (0 means a default sized to amortize warm-up).
// A windowBlocks <= 0 (unbounded window) cannot stream — the warm span
// would be the whole history — so the feeder degrades to a single shard
// cut at Finish: correct, but with buffered-path memory.
func NewFeeder(ctx context.Context, windowBlocks, workers, shardSpan int, arena *Arena) *Feeder {
	limit := windowBlocks
	target := shardSpan
	if limit <= 0 {
		limit = 1 << 30 // effectively: never cut before Finish
		target = 1 << 30
	}
	if target <= 0 {
		target = defaultFeedShardSpan
	}
	if target < 4*limit {
		target = 4 * limit
	}
	return &Feeder{
		limit:       limit,
		shardTarget: target,
		arena:       arena,
		pool:        parallel.NewFeedPool(ctx, workers),
		prev:        -1,
	}
}

// Feed appends one chunk of the trace. Chunk boundaries are irrelevant:
// feeding any split of a trace yields the same graph. A non-nil error
// means a dispatched shard failed (ctx canceled); the caller should
// stop feeding and call Abort.
func (f *Feeder) Feed(chunk []int32) error {
	if f.err != nil {
		return f.err
	}
	for _, s := range chunk {
		if s == f.prev {
			continue // trimming, as BuildCtx does up front
		}
		f.prev = s
		if int(s) >= len(f.seen) {
			n := int(s) + 1
			if c := 2 * len(f.seen); n < c {
				n = c
			}
			seen := make([]int64, n)
			copy(seen, f.seen)
			f.seen = seen
		}
		if s > f.maxSym {
			f.maxSym = s
		}
		f.n++
		f.slab = append(f.slab, s)
		if len(f.slab)-f.body >= f.shardTarget {
			if err := f.dispatch(len(f.slab)); err != nil {
				f.err = err
				return err
			}
		}
	}
	return nil
}

// N returns the number of trimmed occurrences accepted so far — the
// trace length the construction sees, matching Trimmed().Len() of the
// buffered path.
func (f *Feeder) N() int { return f.n }

// warmStart is warmStart over the slab using the feeder's stamps: the
// largest p such that slab[p:hi] holds limit distinct symbols, or 0.
// The slab-start invariant (each slab begins at a warm-up cut or at the
// trace start) makes the slab-local scan agree with the full-trace one.
func (f *Feeder) warmStart(hi int) int {
	f.seenEpoch++
	count, p := 0, hi
	for p > 0 && count < f.limit {
		p--
		s := f.slab[p]
		if f.seen[s] != f.seenEpoch {
			f.seen[s] = f.seenEpoch
			count++
		}
	}
	return p
}

func (f *Feeder) getSlab(capHint int) []int32 {
	if v := f.slabPool.Get(); v != nil {
		return (*v.(*[]int32))[:0]
	}
	return make([]int32, 0, capHint)
}

func (f *Feeder) putSlab(s []int32) {
	f.slabPool.Put(&s)
}

// dispatch freezes the current slab, hands shard [f.body, hi) to the
// pool, and starts a fresh slab at the shard's warm-up boundary.
func (f *Feeder) dispatch(hi int) error {
	lo, p := f.body, f.warmStart(hi)
	slab, maxSym, limit := f.slab, f.maxSym, f.limit
	next := append(f.getSlab(f.shardTarget+f.limit), slab[p:]...)
	st := f.arena.getShard()
	if st.g == nil {
		st.g = NewGraph()
	} else {
		st.g.Reset()
	}
	st.g.ensureSym(maxSym)
	f.states = append(f.states, st)
	err := f.pool.Submit(func(ctx context.Context) error {
		err := buildShard(ctx, st, st.g, slab, maxSym, limit, lo, hi)
		f.putSlab(slab)
		return err
	})
	f.slab = next
	f.body = hi - p
	return err
}

// Finish seals the stream: the remaining body becomes the last shard,
// and the partial graphs merge in trace order into a graph from the
// arena — edge weights sum and node lists concatenate, reproducing the
// global first-occurrence node order exactly as BuildCtx's merge does.
// The caller owns the returned graph (recycle it via Arena.PutGraph).
func (f *Feeder) Finish(ctx context.Context) (*Graph, error) {
	if f.err == nil && f.body < len(f.slab) {
		lo, hi := f.body, len(f.slab)
		slab, maxSym, limit := f.slab, f.maxSym, f.limit
		st := f.arena.getShard()
		if st.g == nil {
			st.g = NewGraph()
		} else {
			st.g.Reset()
		}
		st.g.ensureSym(maxSym)
		f.states = append(f.states, st)
		if err := f.pool.Submit(func(ctx context.Context) error {
			err := buildShard(ctx, st, st.g, slab, maxSym, limit, lo, hi)
			f.putSlab(slab)
			return err
		}); err != nil && f.err == nil {
			f.err = err
		}
		f.slab = nil
	}
	if err := f.pool.Wait(); err != nil {
		f.release()
		return nil, err
	}
	if err := f.err; err != nil {
		f.release()
		return nil, err
	}
	g := f.arena.GetGraph()
	if f.n == 0 {
		f.release()
		return g, nil
	}
	g.ensureSym(f.maxSym)
	for _, st := range f.states {
		for _, s := range st.g.nodes {
			g.AddNode(s)
		}
		st.g.weights.ForEach(func(key int64, w int64) {
			g.weights.Add(key, w)
		})
	}
	f.release()
	return g, nil
}

// Abort discards the stream: it drains in-flight shards and recycles
// their buffers. Call it instead of Finish when the job is canceled.
func (f *Feeder) Abort() {
	_ = f.pool.Wait()
	f.release()
}

func (f *Feeder) release() {
	for _, st := range f.states {
		f.arena.putShard(st)
	}
	f.states = nil
	f.slab = nil
}
