package callgraph

import (
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/interp"
	"codelayout/internal/ir"
)

func TestAddCallAndWeights(t *testing.T) {
	g := NewGraph()
	g.AddCall(0, 1)
	g.AddCall(0, 1)
	g.AddCall(1, 0) // undirected: same edge
	g.AddCall(2, 2) // self calls ignored
	if w := g.Weight(0, 1); w != 3 {
		t.Errorf("Weight(0,1) = %d, want 3", w)
	}
	if len(g.Nodes()) != 2 {
		t.Errorf("Nodes = %v", g.Nodes())
	}
}

func TestOrderPairsHeaviestCallers(t *testing.T) {
	g := NewGraph()
	for _, n := range []int32{0, 1, 2, 3} {
		g.AddNode(n)
	}
	for i := 0; i < 10; i++ {
		g.AddCall(0, 2)
	}
	g.AddCall(1, 3)
	order := g.Order()
	pos := make(map[int32]int)
	for i, f := range order {
		pos[f] = i
	}
	if d := pos[2] - pos[0]; d != 1 && d != -1 {
		t.Errorf("heaviest pair (0,2) not adjacent in %v", order)
	}
	if d := pos[3] - pos[1]; d != 1 && d != -1 {
		t.Errorf("pair (1,3) not adjacent in %v", order)
	}
}

func TestOrderIsPermutation(t *testing.T) {
	g := NewGraph()
	rng := rand.New(rand.NewSource(4))
	for n := int32(0); n < 30; n++ {
		g.AddNode(n)
	}
	for i := 0; i < 500; i++ {
		g.AddCall(int32(rng.Intn(30)), int32(rng.Intn(30)))
	}
	order := g.Order()
	if len(order) != 30 {
		t.Fatalf("order has %d entries", len(order))
	}
	seen := make(map[int32]bool)
	for _, f := range order {
		if seen[f] {
			t.Fatalf("duplicate %d in %v", f, order)
		}
		seen[f] = true
	}
}

func TestOrderDeterministic(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 300; i++ {
			g.AddCall(int32(rng.Intn(20)), int32(rng.Intn(20)))
		}
		return g
	}
	if !reflect.DeepEqual(build().Order(), build().Order()) {
		t.Error("Order not deterministic")
	}
}

func TestIsolatedNodesKeepRegistrationOrder(t *testing.T) {
	g := NewGraph()
	g.AddNode(5)
	g.AddNode(3)
	g.AddCall(1, 2)
	order := g.Order()
	// 5 and 3 have no edges: they stay in registration order.
	pos := map[int32]int{}
	for i, f := range order {
		pos[f] = i
	}
	if pos[5] > pos[3] {
		t.Errorf("isolated nodes reordered: %v", order)
	}
}

func TestBuildFromTrace(t *testing.T) {
	b := ir.NewBuilder("cg", 0)
	main := b.Func("main")
	f := b.Func("F")
	g := b.Func("G")
	m0 := main.Block("m0", 8)
	m1 := main.Block("m1", 8)
	m2 := main.Block("m2", 8)
	m3 := main.Block("m3", 8)
	m0.Call(f, m1)
	m1.Call(g, m2)
	m2.Call(f, m3)
	m3.Exit()
	f.Block("f0", 8).Return()
	g.Block("g0", 8).Return()
	p := b.MustBuild()

	res, err := interp.Run(p, interp.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cg := Build(p, res.Blocks)
	if w := cg.Weight(0, 1); w != 2 {
		t.Errorf("main->F weight = %d, want 2", w)
	}
	if w := cg.Weight(0, 2); w != 1 {
		t.Errorf("main->G weight = %d, want 1", w)
	}
	edges := cg.Edges()
	if len(edges) != 2 || edges[0][2] != 2 {
		t.Errorf("Edges = %v", edges)
	}
}

func TestChainJoinKeepsEndpointsClose(t *testing.T) {
	// Chain (0 1 2) exists; now merge edge (2,3): 3 must attach at the
	// end where 2 is, not at 0's end.
	g := NewGraph()
	g.AddCall(0, 1)
	g.AddCall(0, 1)
	g.AddCall(0, 1)
	g.AddCall(1, 2)
	g.AddCall(1, 2)
	g.AddCall(2, 3)
	order := g.Order()
	pos := map[int32]int{}
	for i, f := range order {
		pos[f] = i
	}
	d23 := pos[3] - pos[2]
	if d23 != 1 && d23 != -1 {
		t.Errorf("(2,3) not adjacent in %v", order)
	}
}
