// Command layoutctl is the client for layoutd: it submits recorded
// CLTR traces as optimization jobs, polls them, and fetches cached
// layouts by content address.
//
// Usage:
//
//	layoutctl -addr http://127.0.0.1:8080 -submit /tmp/s.trace -prog 458.sjeng -opt func-affinity -wait
//	layoutctl -addr http://127.0.0.1:8080 -job job-1
//	layoutctl -addr http://127.0.0.1:8080 -layout <digest>
//	layoutctl -addr http://127.0.0.1:8080 -optimizers
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("layoutctl: ")
	addr := flag.String("addr", "http://127.0.0.1:8080", "layoutd base URL")
	submit := flag.String("submit", "", "path of a CLTR trace to submit as a job")
	prog := flag.String("prog", "", "suite program the trace was recorded from (with -submit)")
	opt := flag.String("opt", "", "optimizer name (with -submit; see -optimizers)")
	prune := flag.Int("prune", 0, "PruneTopN override, 0 = server default (with -submit)")
	wait := flag.Bool("wait", false, "poll the submitted job until it finishes")
	timeout := flag.Duration("timeout", 5*time.Minute, "bound on -wait polling")
	job := flag.String("job", "", "job ID to fetch")
	layoutDigest := flag.String("layout", "", "layout digest to fetch")
	optimizers := flag.Bool("optimizers", false, "list the server's optimizer registry")
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	var err error
	switch {
	case *submit != "":
		err = doSubmit(base, *submit, *prog, *opt, *prune, *wait, *timeout)
	case *job != "":
		err = printGET(base + "/v1/jobs/" + url.PathEscape(*job))
	case *layoutDigest != "":
		err = printGET(base + "/v1/layouts/" + url.PathEscape(*layoutDigest))
	case *optimizers:
		err = printGET(base + "/v1/optimizers")
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// jobView mirrors the server's wire format, loosely (unknown fields are
// ignored, so the client tolerates additive server changes).
type jobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Digest string          `json:"digest"`
	Cached bool            `json:"cached"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func doSubmit(base, path, prog, opt string, prune int, wait bool, timeout time.Duration) error {
	if prog == "" || opt == "" {
		return fmt.Errorf("-submit requires -prog and -opt")
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	q := url.Values{"prog": {prog}, "opt": {opt}}
	if prune > 0 {
		q.Set("prune", fmt.Sprint(prune))
	}
	resp, err := http.Post(base+"/v1/jobs?"+q.Encode(), "application/octet-stream", f)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		return fmt.Errorf("submit: bad response %q: %w", body, err)
	}
	fmt.Printf("job %s %s digest %s cached=%v\n", v.ID, v.Status, v.Digest, v.Cached)
	if !wait || v.Status == "done" || v.Status == "failed" {
		if v.Status == "done" {
			os.Stdout.Write(append(body, '\n'))
		}
		if v.Status == "failed" {
			return fmt.Errorf("job failed: %s", v.Error)
		}
		return nil
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		time.Sleep(200 * time.Millisecond)
		got, raw, err := getJob(base, v.ID)
		if err != nil {
			return err
		}
		switch got.Status {
		case "done":
			os.Stdout.Write(append(raw, '\n'))
			return nil
		case "failed":
			return fmt.Errorf("job %s failed: %s", got.ID, got.Error)
		}
	}
	return fmt.Errorf("job %s still not finished after %s", v.ID, timeout)
}

func getJob(base, id string) (jobView, []byte, error) {
	resp, err := http.Get(base + "/v1/jobs/" + url.PathEscape(id))
	if err != nil {
		return jobView{}, nil, err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return jobView{}, nil, fmt.Errorf("GET job %s: %s: %s", id, resp.Status, strings.TrimSpace(string(raw)))
	}
	var v jobView
	if err := json.Unmarshal(raw, &v); err != nil {
		return jobView{}, nil, err
	}
	return v, raw, nil
}

func printGET(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(raw)))
	}
	os.Stdout.Write(raw)
	return nil
}
