package experiments

import (
	"fmt"
	"strings"

	"codelayout/internal/affinity"
	"codelayout/internal/core"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/trace"
	"codelayout/internal/trg"
)

// This file regenerates the paper's worked model examples: Figure 1
// (the w-window affinity hierarchy), Figure 2 (TRG reduction) and
// Figure 3 (inter-procedural basic-block reordering).

// Figure1Result reproduces Figure 1: the hierarchical w-window affinity
// of the example trace B1 B4 B2 B4 B2 B3 B5 B1 B4.
type Figure1Result struct {
	Hierarchy *affinity.Hierarchy
	Sequence  []int32
}

// Figure1 runs the affinity analysis on the paper's example trace.
func Figure1() Figure1Result {
	tr := trace.New([]int32{1, 4, 2, 4, 2, 3, 5, 1, 4})
	h := affinity.BuildHierarchy(tr, affinity.Options{WMax: 5})
	return Figure1Result{Hierarchy: h, Sequence: h.Sequence()}
}

// String renders the hierarchy levels and output sequence like Figure 1(b).
func (r Figure1Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 1: hierarchical w-window affinity of trace B1 B4 B2 B4 B2 B3 B5 B1 B4\n\n")
	for w := r.Hierarchy.WMax(); w >= 1; w-- {
		part := r.Hierarchy.Partition(w)
		fmt.Fprintf(&sb, "  w=%d: ", w)
		for _, g := range part.Groups {
			names := make([]string, len(g))
			for i, s := range g {
				names[i] = fmt.Sprintf("B%d", s)
			}
			fmt.Fprintf(&sb, "(%s) ", strings.Join(names, ","))
		}
		sb.WriteByte('\n')
	}
	names := make([]string, len(r.Sequence))
	for i, s := range r.Sequence {
		names[i] = fmt.Sprintf("B%d", s)
	}
	fmt.Fprintf(&sb, "\n  output sequence: %s\n", strings.Join(names, " "))
	return sb.String()
}

// Figure2Result reproduces Figure 2: TRG reduction with 3 code slots.
type Figure2Result struct {
	Graph    *trg.Graph
	Sequence []int32
	Names    map[int32]string
}

// Figure2 builds the example TRG and reduces it. The edge weights are
// reconstructed so every narrated step of the paper follows (the
// figure's labels are partly illegible in the source; see
// internal/trg's Figure 2 test).
func Figure2() Figure2Result {
	const (
		A int32 = 0
		B int32 = 1
		C int32 = 2
		E int32 = 3
		F int32 = 4
	)
	g := trg.NewGraph()
	for _, n := range []int32{A, B, C, E, F} {
		g.AddNode(n)
	}
	g.AddWeight(A, B, 50)
	g.AddWeight(E, F, 45)
	g.AddWeight(C, B, 40)
	g.AddWeight(C, A, 30)
	g.AddWeight(B, F, 20)
	g.AddWeight(C, E, 15)
	g.AddWeight(A, F, 10)
	return Figure2Result{
		Graph:    g,
		Sequence: trg.Reduce(g, 3),
		Names:    map[int32]string{A: "A", B: "B", C: "C", E: "E", F: "F"},
	}
}

// String renders the edges and the reduced sequence.
func (r Figure2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: TRG reduction with 3 code slots\n\n  edges (desc weight):\n")
	for _, e := range r.Graph.Edges() {
		fmt.Fprintf(&sb, "    %s-%s: %d\n", r.Names[e.A], r.Names[e.B], e.Weight)
	}
	names := make([]string, len(r.Sequence))
	for i, s := range r.Sequence {
		names[i] = r.Names[s]
	}
	fmt.Fprintf(&sb, "\n  output sequence: %s\n", strings.Join(names, " "))
	return sb.String()
}

// Figure3Result reproduces Figure 3: inter-procedural basic-block
// reordering of the two correlated functions X and Y.
type Figure3Result struct {
	Prog *ir.Program
	// Original and Optimized are the two layouts.
	Original, Optimized *layout.Layout
	// Order is the BB-affinity block order (named).
	Order []string
	// HotLinesOriginal and HotLinesOptimized count the cache lines the
	// per-iteration hot path touches under each layout.
	HotLinesOriginal, HotLinesOptimized int
	// SpanOriginal and SpanOptimized measure the address span of the
	// variant-1 working set (X2, Y2): inter-procedural packing pulls
	// the correlated pair together.
	SpanOriginal, SpanOptimized int64
}

// Figure3 builds the example program, profiles it, applies BB affinity
// and reports the layout change.
func Figure3() (Figure3Result, error) {
	var res Figure3Result
	p := buildFigure3Program()
	res.Prog = p
	prof, err := core.ProfileProgram(p, core.TrainSeed)
	if err != nil {
		return res, err
	}
	opt, _, err := core.BBAffinity().Optimize(prof)
	if err != nil {
		return res, err
	}
	res.Original = layout.Original(p)
	res.Optimized = opt
	for _, b := range opt.Order() {
		blk := p.Blocks[b]
		res.Order = append(res.Order, p.Funcs[blk.Fn].Name+"."+blk.Name)
	}
	// The per-iteration hot path when g=1: X1 X2 Y1 Y2 (+ main's call
	// blocks). Count its lines under both layouts.
	hot := []ir.BlockID{
		p.BlockByName("X", "X1").ID, p.BlockByName("X", "X2").ID,
		p.BlockByName("Y", "Y1").ID, p.BlockByName("Y", "Y2").ID,
	}
	res.HotLinesOriginal = res.Original.TouchedLines(hot, 64)
	res.HotLinesOptimized = res.Optimized.TouchedLines(hot, 64)
	pair := []ir.BlockID{
		p.BlockByName("X", "X2").ID, p.BlockByName("Y", "Y2").ID,
	}
	res.SpanOriginal = span(res.Original, pair)
	res.SpanOptimized = span(res.Optimized, pair)
	return res, nil
}

// span returns the address extent covering all of the given blocks.
func span(l *layout.Layout, blocks []ir.BlockID) int64 {
	lo, hi := int64(1<<62), int64(0)
	for _, b := range blocks {
		if l.Addr[b] < lo {
			lo = l.Addr[b]
		}
		if end := l.Addr[b] + int64(l.Size[b]); end > hi {
			hi = end
		}
	}
	return hi - lo
}

// buildFigure3Program is the paper's example: main calls X then Y in a
// loop; X randomly sets global b to 1 or 2 and executes the matching
// half; Y branches on b.
func buildFigure3Program() *ir.Program {
	b := ir.NewBuilder("fig3", 1)
	main := b.Func("main")
	x := b.Func("X")
	y := b.Func("Y")

	mEntry := main.Block("entry", 8)
	mCallX := main.Block("callX", 8)
	mCallY := main.Block("callY", 8)
	mLatch := main.Block("latch", 8)
	mExit := main.Block("exit", 8)
	mEntry.Jump(mCallX)
	mCallX.Call(x, mCallY)
	mCallY.Call(y, mLatch)
	mLatch.Loop(100, mCallX, mExit)
	mExit.Exit()

	x1 := x.Block("X1", 100)
	x2 := x.Block("X2", 100)
	x3 := x.Block("X3", 100)
	x1.Choose(0, 1, 2)
	x1.Branch(ir.GlobalEq{Reg: 0, Val: 2}, x3, x2)
	x2.Return()
	x3.Return()

	y1 := y.Block("Y1", 100)
	y2 := y.Block("Y2", 100)
	y3 := y.Block("Y3", 100)
	y1.Branch(ir.GlobalEq{Reg: 0, Val: 2}, y3, y2)
	y2.Return()
	y3.Return()

	p, err := b.Build()
	if err != nil {
		panic(err) // static example; correct by construction
	}
	return p
}

// String renders the before/after layouts.
func (r Figure3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 3: inter-procedural basic-block reordering\n\n")
	sb.WriteString("  optimized block order: " + strings.Join(r.Order, " ") + "\n")
	fmt.Fprintf(&sb, "  hot-path lines (X1 X2 Y1 Y2): original %d, optimized %d\n",
		r.HotLinesOriginal, r.HotLinesOptimized)
	fmt.Fprintf(&sb, "  variant-1 pair span (X2..Y2): original %dB, optimized %dB\n",
		r.SpanOriginal, r.SpanOptimized)
	return sb.String()
}
