// Package ir defines a compact whole-program intermediate representation
// used throughout the repository as the stand-in for LLVM bytecode.
//
// A Program is a set of Functions; a Function is an ordered list of basic
// Blocks; a Block has a byte size, optional side Effects on global
// registers, and exactly one Terminator. The representation is rich enough
// to express the trace properties that make code layout matter for the
// instruction cache: hot/cold paths inside a function, loops with trip
// counts, cross-function calls, and branches whose outcome is correlated
// across functions through global registers (the pattern of Figure 3 in the
// paper).
//
// Blocks carry global IDs (dense, program-wide) so that traces, layouts and
// locality models can index plain slices instead of maps.
package ir

import "fmt"

// FuncID identifies a function within a Program. IDs are dense: the
// function with ID f is Program.Funcs[f].
type FuncID int32

// BlockID identifies a basic block within a Program. IDs are dense and
// program-wide: the block with ID b is Program.Blocks[b].
type BlockID int32

// NoBlock marks the absence of a block reference (e.g. no fall-through).
const NoBlock BlockID = -1

// Program is a whole program: the unit the paper's optimizers operate on
// ("first compiling all program code into a single byte-code file").
type Program struct {
	Name string
	// Funcs holds every function; Funcs[0] is the entry function.
	Funcs []*Function
	// Blocks holds every basic block of every function, indexed by BlockID.
	Blocks []*Block
	// NumGlobals is the number of global integer registers. Globals model
	// the cross-function branch correlation of the paper's Figure 3
	// example (func X sets b, func Y branches on b).
	NumGlobals int
	// DataCPI is the per-instruction stall contribution of the data side
	// (data cache and memory behaviour), in cycles per instruction. The
	// paper notes SPEC CPU is data intensive; since this repository
	// simulates only the instruction side in detail, the data side is a
	// calibrated constant per program. See DESIGN.md §2.
	DataCPI float64
}

// Function is an ordered list of basic blocks. Blocks[0] is the entry
// block. The order of Blocks is the "source order" used by the original
// (unoptimized) code layout.
type Function struct {
	ID     FuncID
	Name   string
	Blocks []BlockID
}

// Block is a basic block: Size bytes of straight-line code ending in a
// single Terminator. Size includes the terminator instruction itself but
// not any layout-injected jump (see the layout package).
type Block struct {
	ID   BlockID
	Fn   FuncID
	Name string
	Size int32
	// Effects run when the block executes, before the terminator.
	Effects []Effect
	Term    Terminator
}

// Effect is a side effect a block applies to the global registers.
type Effect interface{ effect() }

// SetGlobal assigns Val to global register Reg.
type SetGlobal struct {
	Reg int32
	Val int32
}

// AddGlobal adds Delta to global register Reg.
type AddGlobal struct {
	Reg   int32
	Delta int32
}

// SetGlobalChoice assigns a uniformly random element of Choices to Reg.
// The randomness comes from the interpreter's seeded source, so execution
// is deterministic for a given input seed.
type SetGlobalChoice struct {
	Reg     int32
	Choices []int32
}

func (SetGlobal) effect()       {}
func (AddGlobal) effect()       {}
func (SetGlobalChoice) effect() {}

// Terminator ends a basic block.
type Terminator interface{ term() }

// Jump transfers control unconditionally to Target (same function).
type Jump struct{ Target BlockID }

// Branch transfers control to Taken if Cond evaluates true, else to Fall.
// Fall is the natural fall-through successor: in the original encoding it
// needs no jump instruction when placed immediately after this block.
type Branch struct {
	Cond  Cond
	Taken BlockID
	Fall  BlockID
}

// Call invokes Callee; after Callee returns, control continues at Next
// (same function as the caller). Next is the natural fall-through.
type Call struct {
	Callee FuncID
	Next   BlockID
}

// Return returns from the current function.
type Return struct{}

// Exit terminates the program.
type Exit struct{}

func (Jump) term()   {}
func (Branch) term() {}
func (Call) term()   {}
func (Return) term() {}
func (Exit) term()   {}

// Cond is a branch condition.
type Cond interface{ cond() }

// Always is a condition that is always true.
type Always struct{}

// Prob is true with probability P, drawn from the interpreter's seeded
// random source.
type Prob struct{ P float64 }

// GlobalEq is true when global register Reg equals Val.
type GlobalEq struct {
	Reg int32
	Val int32
}

// GlobalLT is true when global register Reg is less than Val.
type GlobalLT struct {
	Reg int32
	Val int32
}

// Counter implements a loop back-edge: it is true (branch taken) the first
// Trips-1 times it is evaluated, then false once, after which the counter
// resets. A Branch{Cond: Counter{N}, Taken: header} therefore executes the
// loop body N times per activation.
type Counter struct{ Trips int32 }

func (Always) cond()   {}
func (Prob) cond()     {}
func (GlobalEq) cond() {}
func (GlobalLT) cond() {}
func (Counter) cond()  {}

// Func returns the function containing block b.
func (p *Program) Func(f FuncID) *Function { return p.Funcs[f] }

// Block returns the block with ID b.
func (p *Program) Block(b BlockID) *Block { return p.Blocks[b] }

// Entry returns the entry block of function f.
func (p *Program) Entry(f FuncID) BlockID { return p.Funcs[f].Blocks[0] }

// NumBlocks returns the total number of basic blocks in the program.
func (p *Program) NumBlocks() int { return len(p.Blocks) }

// NumFuncs returns the number of functions in the program.
func (p *Program) NumFuncs() int { return len(p.Funcs) }

// StaticBytes returns the total static code size in bytes, excluding any
// layout-injected jumps.
func (p *Program) StaticBytes() int64 {
	var total int64
	for _, b := range p.Blocks {
		total += int64(b.Size)
	}
	return total
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// BlockByName returns the block with the given name, or nil. Block names
// are only unique within a function, so the function name is required.
func (p *Program) BlockByName(fn, name string) *Block {
	f := p.FuncByName(fn)
	if f == nil {
		return nil
	}
	for _, id := range f.Blocks {
		if p.Blocks[id].Name == name {
			return p.Blocks[id]
		}
	}
	return nil
}

// NaturalNext returns the fall-through successor of b: the block that
// executes next without an explicit jump instruction when it is placed
// immediately after b. It returns NoBlock for blocks ending in Jump,
// Return or Exit.
func (b *Block) NaturalNext() BlockID {
	switch t := b.Term.(type) {
	case Branch:
		return t.Fall
	case Call:
		return t.Next
	default:
		return NoBlock
	}
}

func (b *Block) String() string {
	return fmt.Sprintf("%s#%d", b.Name, b.ID)
}
