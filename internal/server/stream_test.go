package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"codelayout/internal/store"
)

// streamTestWindow is deliberately tiny — the ring floor of three
// 32 KiB buffers — so even the suite's small traces exercise producer
// backpressure.
const streamTestWindow = 1

func newStreamServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StreamWindow == 0 {
		cfg.StreamWindow = streamTestWindow
	}
	return newTestServer(t, cfg)
}

// TestStreamedMatchesBuffered is the tentpole oracle at the HTTP
// layer: the same trace submitted to a streaming server and a buffered
// server must produce identical results — same content address, same
// report, same miss ratios — at analysis concurrency 1 and N.
func TestStreamedMatchesBuffered(t *testing.T) {
	raw, _ := recordedTrace(t)
	for _, workers := range []int{1, 4} {
		for _, optName := range []string{"func-affinity", "bb-trg"} {
			t.Run(fmt.Sprintf("%s/workers=%d", optName, workers), func(t *testing.T) {
				_, buffered := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: workers})
				_, streamed := newStreamServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: workers})

				query := "prog=" + testProg + "&opt=" + optName
				vb, code := submitRaw(t, buffered, raw, query)
				if code != http.StatusAccepted {
					t.Fatalf("buffered submit status %d", code)
				}
				vs, code := submitRaw(t, streamed, raw, query)
				if code != http.StatusAccepted {
					t.Fatalf("streamed submit status %d", code)
				}
				db := waitJob(t, buffered, vb.ID)
				ds := waitJob(t, streamed, vs.ID)
				if db.Status != StatusDone || ds.Status != StatusDone {
					t.Fatalf("jobs: buffered %+v, streamed %+v", db, ds)
				}
				rb, rs := db.Result, ds.Result
				if rb == nil || rs == nil {
					t.Fatal("missing results")
				}
				// ElapsedMS is wall time, everything else must agree
				// byte for byte.
				rb.ElapsedMS, rs.ElapsedMS = 0, 0
				bj, _ := json.Marshal(rb)
				sj, _ := json.Marshal(rs)
				if !bytes.Equal(bj, sj) {
					t.Errorf("streamed result diverges from buffered:\nbuffered: %s\nstreamed: %s", bj, sj)
				}
				if ds.Digest == "" || ds.Digest != db.Digest {
					t.Errorf("streamed job digest %q, buffered %q", ds.Digest, db.Digest)
				}
			})
		}
	}
}

// TestStreamedCacheHit: resubmitting a streamed trace resolves from
// the content-addressed cache at end-of-stream — the job still runs
// (the digest is only known once the upload finishes) but completes
// cached, without recomputing.
func TestStreamedCacheHit(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newStreamServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})
	query := "prog=" + testProg + "&opt=func-affinity"
	v1, code := submitRaw(t, ts, raw, query)
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}
	d1 := waitJob(t, ts, v1.ID)
	if d1.Status != StatusDone || d1.Cached {
		t.Fatalf("first job %+v", d1)
	}
	v2, code := submitRaw(t, ts, raw, query)
	if code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}
	d2 := waitJob(t, ts, v2.ID)
	if d2.Status != StatusDone || !d2.Cached {
		t.Fatalf("second job not served cached: %+v", d2)
	}
	if d2.Digest != d1.Digest {
		t.Errorf("cached digest %q != original %q", d2.Digest, d1.Digest)
	}
	if got := metricValue(t, ts, "layoutd_cache_hits_total"); got != 1 {
		t.Errorf("cache_hits_total = %v, want 1", got)
	}
}

// TestStreamedBadUploads: producer-side failures (malformed or empty
// containers) surface as 400 on the POST, exactly as in buffered mode.
func TestStreamedBadUploads(t *testing.T) {
	_, ts := newStreamServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1})
	cases := []struct {
		name     string
		body     []byte
		wantCode int
		wantMsg  string
	}{
		{"empty trace", encodeTrace(t, nil), 400, "empty"},
		{"truncated", []byte("CLTR\x01\x05\x02"), 400, "occurrence"},
	}
	for _, c := range cases {
		msg, code := errorBody(t, ts, c.body, "prog="+testProg+"&opt=func-affinity")
		if code != c.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", c.name, code, c.wantCode, msg)
		}
		if !strings.Contains(msg, c.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", c.name, msg, c.wantMsg)
		}
	}
}

// TestStreamedFeedErrorFailsJob: a consumer-side failure (a trace
// referencing blocks the program doesn't have) aborts the stream. The
// error reaches the client either on the POST itself (the feed failed
// while the body was still arriving) or as a failed job (the upload
// completed first) — both ends of the race leave a clear record.
func TestStreamedFeedErrorFailsJob(t *testing.T) {
	_, ts := newStreamServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1})
	body := encodeTrace(t, []int32{0, 1, 1 << 24})
	v, code := submitRaw(t, ts, body, "prog="+testProg+"&opt=func-affinity")
	switch code {
	case http.StatusBadRequest:
		return // producer observed the abort before end-of-stream
	case http.StatusAccepted:
		done := waitJob(t, ts, v.ID)
		if done.Status != StatusFailed || !strings.Contains(done.Error, "references block") {
			t.Fatalf("job = %+v, want failed mentioning the bad block", done)
		}
	default:
		t.Fatalf("submit status %d, want 400 or 202", code)
	}
}

// TestStreamMetricsAndSpans: a streamed job counts in the stream
// family, releases every buffered byte, respects the window bound, and
// records the overlapped stream.decode / stream.feed spans in its
// waterfall.
func TestStreamMetricsAndSpans(t *testing.T) {
	raw, _ := recordedTrace(t)
	s, ts := newStreamServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})
	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("job %+v", done)
	}
	if got := metricValue(t, ts, "layoutd_stream_jobs_total"); got != 1 {
		t.Errorf("stream_jobs_total = %v, want 1", got)
	}
	if got := metricValue(t, ts, "layoutd_stream_chunks_total"); got < 1 {
		t.Errorf("stream_chunks_total = %v, want >= 1", got)
	}
	if got := metricValue(t, ts, "layoutd_stream_buffered_bytes"); got != 0 {
		t.Errorf("stream_buffered_bytes = %v after completion, want 0", got)
	}
	peak := metricValue(t, ts, "layoutd_stream_buffered_peak_bytes")
	bound := float64(minStreamBuffers * streamChunkBytes)
	if peak <= 0 || peak > bound {
		t.Errorf("stream_buffered_peak_bytes = %v, want in (0, %v]", peak, bound)
	}
	if s.streamBytes.Load() != 0 {
		t.Errorf("internal stream byte count %d after completion", s.streamBytes.Load())
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tv traceView
	if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
		t.Fatal(err)
	}
	var haveDecode, haveFeed bool
	for _, sp := range tv.Spans {
		switch sp.Name {
		case "stream.decode":
			haveDecode = true
		case "stream.feed":
			haveFeed = true
		}
	}
	if !haveDecode || !haveFeed {
		t.Errorf("waterfall missing stream spans (decode=%v feed=%v): %+v", haveDecode, haveFeed, tv.Spans)
	}
}

// ---- resumable uploads ----

func newUploadServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	up, err := store.NewUploads(filepath.Join(t.TempDir(), "uploads"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Uploads = up
	return newStreamServer(t, cfg)
}

func uploadCreate(t *testing.T, ts *httptest.Server) uploadView {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/uploads", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	var v uploadView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func uploadPatch(t *testing.T, ts *httptest.Server, id string, offset int64, chunk []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPatch, ts.URL+"/v1/uploads/"+id, bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Upload-Offset", strconv.FormatInt(offset, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, body
}

// TestUploadResumableEndToEnd: chunked upload with an out-of-sync
// PATCH in the middle (the resume protocol: 409 carries the durable
// offset, the client continues from there), finalized into a streamed
// job whose digest matches a direct one-shot submission of the same
// bytes.
func TestUploadResumableEndToEnd(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newUploadServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	up := uploadCreate(t, ts)
	chunk := len(raw)/3 + 1
	var off int64
	replayedStale := false
	for int(off) < len(raw) {
		end := int(off) + chunk
		if end > len(raw) {
			end = len(raw)
		}
		if !replayedStale && off > 0 {
			// A client that lost the previous PATCH's response retries
			// at a stale offset: 409, durable offset in the header.
			replayedStale = true
			resp, _ := uploadPatch(t, ts, up.ID, 0, raw[:chunk])
			if resp.StatusCode != http.StatusConflict {
				t.Fatalf("stale PATCH status %d, want 409", resp.StatusCode)
			}
			got, err := strconv.ParseInt(resp.Header.Get("Upload-Offset"), 10, 64)
			if err != nil || got != off {
				t.Fatalf("409 Upload-Offset %q, want %d", resp.Header.Get("Upload-Offset"), off)
			}
		}
		resp, body := uploadPatch(t, ts, up.ID, off, raw[off:end])
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("PATCH at %d: status %d: %s", off, resp.StatusCode, body)
		}
		off, _ = strconv.ParseInt(resp.Header.Get("Upload-Offset"), 10, 64)
		if off != int64(end) {
			t.Fatalf("PATCH advanced to %d, want %d", off, end)
		}
	}

	// GET reports the durable offset (what a resuming client asks).
	resp, err := http.Get(ts.URL + "/v1/uploads/" + up.ID)
	if err != nil {
		t.Fatal(err)
	}
	var st uploadView
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Offset != int64(len(raw)) {
		t.Fatalf("status offset %d, want %d", st.Offset, len(raw))
	}

	fin, err := http.Post(ts.URL+"/v1/uploads/"+up.ID+"/finalize?prog="+testProg+"&opt=func-affinity", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var v jobView
	if err := json.NewDecoder(fin.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	fin.Body.Close()
	if fin.StatusCode != http.StatusAccepted {
		t.Fatalf("finalize status %d", fin.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("finalized job %+v", done)
	}
	sum := sha256.Sum256(raw)
	if done.Result.TraceDigest != hex.EncodeToString(sum[:]) {
		t.Errorf("trace digest %q, want sha256 of the uploaded bytes", done.Result.TraceDigest)
	}

	// The chunked path and the one-shot path are the same submission:
	// same content address, served from cache on resubmit.
	v2, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt=func-affinity")
	if code != http.StatusAccepted {
		t.Fatalf("direct submit status %d", code)
	}
	d2 := waitJob(t, ts, v2.ID)
	if d2.Status != StatusDone || !d2.Cached || d2.Digest != done.Digest {
		t.Errorf("one-shot submission = %+v, want cached with digest %q", d2, done.Digest)
	}

	// The session is gone after finalize.
	if resp, _ := uploadPatch(t, ts, up.ID, int64(len(raw)), []byte("x")); resp.StatusCode != http.StatusNotFound {
		t.Errorf("PATCH after finalize status %d, want 404", resp.StatusCode)
	}
	if got := metricValue(t, ts, "layoutd_upload_sessions"); got != 0 {
		t.Errorf("upload_sessions = %v after finalize, want 0", got)
	}
}

// TestUploadFinalizeBufferedFallback: an optimizer without feed
// support still works through the chunked-upload door — the sealed
// spool is decoded whole and takes the buffered pipeline.
func TestUploadFinalizeBufferedFallback(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newUploadServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})
	up := uploadCreate(t, ts)
	resp, body := uploadPatch(t, ts, up.ID, 0, raw)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PATCH status %d: %s", resp.StatusCode, body)
	}
	fin, err := http.Post(ts.URL+"/v1/uploads/"+up.ID+"/finalize?prog="+testProg+"&opt=func-callgraph", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fin.Body.Close()
	if fin.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(fin.Body)
		t.Fatalf("finalize status %d: %s", fin.StatusCode, raw)
	}
	var v jobView
	if err := json.NewDecoder(fin.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("fallback job %+v", done)
	}
	if done.Result.Optimizer != "func-callgraph" {
		t.Errorf("optimizer %q", done.Result.Optimizer)
	}
}

// TestUploadEndpointErrors: the protocol's edges — unknown sessions,
// bad offsets, discard, empty finalize.
func TestUploadEndpointErrors(t *testing.T) {
	_, ts := newUploadServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	if resp, _ := uploadPatch(t, ts, "nope", 0, []byte("x")); resp.StatusCode != http.StatusNotFound {
		t.Errorf("PATCH unknown session: %d, want 404", resp.StatusCode)
	}

	up := uploadCreate(t, ts)
	req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/uploads/"+up.ID, strings.NewReader("x"))
	resp, err := http.DefaultClient.Do(req) // no Upload-Offset header
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PATCH without Upload-Offset: %d, want 400", resp.StatusCode)
	}

	// Empty finalize is rejected and consumes the session.
	fin, err := http.Post(ts.URL+"/v1/uploads/"+up.ID+"/finalize?prog="+testProg+"&opt=func-affinity", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	fin.Body.Close()
	if fin.StatusCode != http.StatusBadRequest {
		t.Errorf("empty finalize: %d, want 400", fin.StatusCode)
	}

	// Discard removes the session.
	up2 := uploadCreate(t, ts)
	del, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/uploads/"+up2.ID, nil)
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE: %d, want 204", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/uploads/" + up2.ID); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET after discard: %d, want 404", resp.StatusCode)
		}
	}

	// Finalize with bad params leaves the session intact for a retry.
	up3 := uploadCreate(t, ts)
	fin, err = http.Post(ts.URL+"/v1/uploads/"+up3.ID+"/finalize?prog="+testProg+"&opt=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	fin.Body.Close()
	if fin.StatusCode != http.StatusBadRequest {
		t.Errorf("bad-opt finalize: %d, want 400", fin.StatusCode)
	}
	if resp, _ := uploadPatch(t, ts, up3.ID, 0, []byte{}); resp.StatusCode != http.StatusNoContent {
		t.Errorf("session gone after rejected finalize: %d", resp.StatusCode)
	}
}

// TestMultipartFieldOverflow: an oversize prog/opt/prune form field is
// a 400, not a silent truncation to a plausible-looking value.
func TestMultipartFieldOverflow(t *testing.T) {
	raw, _ := recordedTrace(t)
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 4, OptWorkers: 1})

	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormField("prog")
	fw.Write([]byte(strings.Repeat("x", maxFormFieldBytes+1)))
	tw, _ := mw.CreateFormFile("trace", "trace.cltr")
	tw.Write(raw)
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs?opt=func-affinity", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "exceeds") {
		t.Errorf("error %s does not mention the field bound", body)
	}

	// At exactly the bound the field still works.
	var ok bytes.Buffer
	mw = multipart.NewWriter(&ok)
	fw, _ = mw.CreateFormField("opt")
	fw.Write([]byte("func-affinity"))
	tw, _ = mw.CreateFormFile("trace", "trace.cltr")
	tw.Write(raw)
	mw.Close()
	resp2, err := http.Post(ts.URL+"/v1/jobs?prog="+testProg, mw.FormDataContentType(), &ok)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted && resp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		t.Errorf("in-bound field status %d: %s", resp2.StatusCode, body)
	}
}
