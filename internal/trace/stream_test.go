package trace

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/iotest"
)

// chunkedDecode drains a decoder through NextChunk with the given
// buffer size, returning the symbols delivered before any error.
func chunkedDecode(d *Decoder, chunk int) ([]int32, error) {
	buf := make([]int32, chunk)
	var syms []int32
	for {
		n, err := d.NextChunk(buf)
		syms = append(syms, buf[:n]...)
		if err == io.EOF {
			return syms, nil
		}
		if err != nil {
			return syms, err
		}
	}
}

func encodeTrace(t testing.TB, syms []int32) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := New(syms).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestNextChunkMatchesDecode: every chunk size must deliver exactly the
// sequence Decode produces, including sizes that misalign with the
// trace length and sizes larger than the whole trace.
func TestNextChunkMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	syms := make([]int32, 1000)
	for i := range syms {
		// Mix small deltas with large jumps so varints span 1-5 bytes.
		if rng.Intn(10) == 0 {
			syms[i] = rng.Int31n(1 << 29)
		} else {
			syms[i] = rng.Int31n(64)
		}
	}
	data := encodeTrace(t, syms)
	for _, chunk := range []int{1, 2, 3, 7, 64, 999, 1000, 1001, 4096} {
		d, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		got, err := chunkedDecode(d, chunk)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if !reflect.DeepEqual(got, syms) {
			t.Fatalf("chunk=%d: decoded sequence differs", chunk)
		}
		// After clean end-of-stream, further calls keep returning io.EOF.
		if n, err := d.NextChunk(make([]int32, 4)); n != 0 || err != io.EOF {
			t.Fatalf("chunk=%d: NextChunk past end = (%d, %v), want (0, io.EOF)", chunk, n, err)
		}
	}
}

// TestNextChunkVarintSplitAcrossReads forces every varint to arrive one
// underlying byte at a time: multi-byte deltas must reassemble across
// reader boundaries exactly as from a contiguous buffer.
func TestNextChunkVarintSplitAcrossReads(t *testing.T) {
	syms := []int32{0, 1 << 29, 3, 1<<30 - 1, 0, 1 << 20, 5}
	data := encodeTrace(t, syms)
	d, err := NewDecoder(iotest.OneByteReader(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := chunkedDecode(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatalf("got %v, want %v", got, syms)
	}
}

// TestNextChunkMidRecordEOF: a container that dies mid-stream must hand
// back the occurrences decoded before the failure together with an
// offset-carrying error, and keep failing afterwards — never report a
// clean EOF.
func TestNextChunkMidRecordEOF(t *testing.T) {
	data := []byte("CLTR\x01\x05\x02\x02\x02") // declares 5, carries 3
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int32, 2)
	n, err := d.NextChunk(buf)
	if n != 2 || err != nil {
		t.Fatalf("first chunk = (%d, %v), want (2, nil)", n, err)
	}
	n, err = d.NextChunk(buf)
	if n != 1 {
		t.Fatalf("second chunk n = %d, want 1 (the last valid occurrence)", n)
	}
	if err == nil || err == io.EOF {
		t.Fatalf("second chunk err = %v, want a mid-record error", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("offset")) {
		t.Errorf("error %q carries no offset", err)
	}
	// Next after the failure keeps reporting corruption, not clean EOF.
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next after mid-record EOF = %v, want an error", err)
	}
}

// TestNextChunkStreamedDigest: chunked decoding through a HashingReader
// must yield the canonical content digest once the stream is drained —
// the property the server's streaming submit path depends on.
func TestNextChunkStreamedDigest(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	syms := make([]int32, 5000)
	for i := range syms {
		syms[i] = rng.Int31n(500)
	}
	tr := New(syms)
	data := encodeTrace(t, syms)

	hr := NewHashingReader(bytes.NewReader(data))
	d, err := NewDecoder(hr)
	if err != nil {
		t.Fatal(err)
	}
	got, err := chunkedDecode(d, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatal("chunked decode through HashingReader changed the trace")
	}
	// Drain whatever trails the payload (nothing here, but the submit
	// path always drains before sealing the digest).
	if _, err := io.Copy(io.Discard, hr); err != nil {
		t.Fatal(err)
	}
	if hr.Sum() != tr.Digest() {
		t.Errorf("streamed digest %s != canonical digest %s", hr.Sum(), tr.Digest())
	}
}

// TestNextChunkZeroAllocSteadyState: once the decoder exists, draining
// it chunk by chunk into a reused buffer must not allocate.
func TestNextChunkZeroAllocSteadyState(t *testing.T) {
	syms := make([]int32, 1<<16)
	for i := range syms {
		syms[i] = int32(i % 257)
	}
	data := encodeTrace(t, syms)
	d, err := NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int32, 1024)
	allocs := testing.AllocsPerRun(32, func() {
		if _, err := d.NextChunk(buf); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("NextChunk steady state allocates %.1f/op, want 0", allocs)
	}
}

// FuzzChunkedDecode: for arbitrary container bytes and chunk sizes, the
// chunked decoder must agree with the one-shot decoder on both the
// accepted prefix and the accept/reject verdict — and never panic.
func FuzzChunkedDecode(f *testing.F) {
	for _, syms := range [][]int32{
		{},
		{0},
		{5, 5, 4, 1000000, 0, 7},
		{1, 2, 3, 2, 1, 2, 3, 2},
	} {
		var buf bytes.Buffer
		if _, err := New(syms).WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), uint16(3))
	}
	f.Add([]byte("CLTR\x01\x05\x02\x02\x02"), uint16(1))          // mid-record EOF
	f.Add([]byte("CLTR\x01\x02\x02\x80"), uint16(2))              // delta cut mid-continuation
	f.Add([]byte("CLTR\x01\x01\x01"), uint16(7))                  // negative symbol
	f.Add([]byte("CLTR\x01\x02\xfe\xff\xff\xff\x0f"), uint16(64)) // past symbol cap

	f.Fuzz(func(t *testing.T, data []byte, chunk uint16) {
		d1, err1 := NewDecoder(bytes.NewReader(data))
		d2, err2 := NewDecoder(bytes.NewReader(data))
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("NewDecoder verdict is not deterministic")
		}
		if err1 != nil {
			return
		}
		whole, wholeErr := d1.Decode()
		got, chunkErr := chunkedDecode(d2, int(chunk)%1024+1)
		if (wholeErr == nil) != (chunkErr == nil) {
			t.Fatalf("verdicts differ: Decode err %v, chunked err %v", wholeErr, chunkErr)
		}
		if wholeErr != nil {
			return
		}
		if !reflect.DeepEqual(got, whole.Syms) && !(len(got) == 0 && len(whole.Syms) == 0) {
			t.Fatal("chunked decode disagrees with Decode on an accepted container")
		}
	})
}

// BenchmarkStreamDecode decodes a 64k-occurrence container through the
// chunked streaming API. The per-op cost is one decoder (its bufio
// buffer) over a reused chunk buffer; the gate in scripts/bench_json.sh
// keeps the loop itself allocation-free.
func BenchmarkStreamDecode(b *testing.B) {
	syms := make([]int32, 1<<16)
	rng := rand.New(rand.NewSource(42))
	for i := range syms {
		syms[i] = rng.Int31n(2048)
	}
	data := encodeTrace(b, syms)
	buf := make([]int32, 4096)
	rd := bytes.NewReader(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(data)
		d, err := NewDecoder(rd)
		if err != nil {
			b.Fatal(err)
		}
		for {
			_, err := d.NextChunk(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}
