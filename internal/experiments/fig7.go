package experiments

import (
	"fmt"

	"codelayout/internal/parallel"
	"codelayout/internal/stats"
	"codelayout/internal/textplot"
)

// Figure7Programs lists the 7 programs whose 28 unordered co-run pairs
// Figure 7 plots (the paper's x-axis shows 400, 403, 429, 453, 458, 471
// and 483 — gobmk is not included).
var Figure7Programs = []string{
	"400.perlbench", "403.gcc", "429.mcf", "453.povray",
	"458.sjeng", "471.omnetpp", "483.xalancbmk",
}

// Figure7Pair is one co-run pair's throughput measurements.
type Figure7Pair struct {
	A, B string
	// BaseGain is the throughput improvement of the baseline co-run
	// over running the two programs back to back:
	// (T_A + T_B) / makespan(A,B) - 1. Figure 7(a).
	BaseGain float64
	// OptGain is the same with A optimized by function affinity.
	OptGain float64
}

// Magnification returns how much function affinity magnifies the
// hyper-threading benefit for this pair: OptGain / BaseGain - 1.
// Figure 7(b).
func (p Figure7Pair) Magnification() float64 {
	if p.BaseGain == 0 {
		return 0
	}
	return p.OptGain/p.BaseGain - 1
}

// Figure7Result reproduces Figure 7.
type Figure7Result struct {
	Pairs []Figure7Pair
}

// Figure7 measures the 28 co-run pairs.
func Figure7(w *Workspace) (Figure7Result, error) {
	return Figure7On(w, Figure7Programs)
}

// Figure7On measures the co-run pairs of a subset of programs: solo
// timings fan out per program, then the unordered pair co-runs fan out
// per pair, with results in the serial (i, j>=i) order.
func Figure7On(w *Workspace, programs []string) (Figure7Result, error) {
	var res Figure7Result
	benches, err := w.resolve(programs)
	if err != nil {
		return res, err
	}
	soloCycles, err := parallel.Map(w.Workers(), len(benches), func(i int) (int64, error) {
		s, err := benches[i].HWSolo(Baseline)
		if err != nil {
			return 0, err
		}
		return s.Thread.Cycles, nil
	})
	if err != nil {
		return res, err
	}
	type pairJob struct{ i, j int }
	var jobs []pairJob
	for i := range benches {
		for j := i; j < len(benches); j++ {
			jobs = append(jobs, pairJob{i, j})
		}
	}
	pairs, err := parallel.Map(w.Workers(), len(jobs), func(k int) (Figure7Pair, error) {
		a, b := benches[jobs[k].i], benches[jobs[k].j]
		seq := float64(soloCycles[jobs[k].i] + soloCycles[jobs[k].j])
		base, err := HWCorunBoth(a, Baseline, b, Baseline)
		if err != nil {
			return Figure7Pair{}, err
		}
		// Optimize the longer-running program of the pair: the
		// paper optimizes one of the two, and only the program that
		// dominates the makespan can move the finish-both time.
		aLay, bLay := "func-affinity", Baseline
		if soloCycles[jobs[k].j] > soloCycles[jobs[k].i] {
			aLay, bLay = Baseline, "func-affinity"
		}
		opt, err := HWCorunBoth(a, aLay, b, bLay)
		if err != nil {
			return Figure7Pair{}, err
		}
		return Figure7Pair{
			A:        a.Name(),
			B:        b.Name(),
			BaseGain: seq/float64(base.MakespanCycles) - 1,
			OptGain:  seq/float64(opt.MakespanCycles) - 1,
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Pairs = pairs
	return res, nil
}

// AvgMagnification returns the arithmetic mean of the per-pair
// magnifying effect (the paper reports 7.9%).
func (r Figure7Result) AvgMagnification() float64 {
	mags := make([]float64, 0, len(r.Pairs))
	for _, p := range r.Pairs {
		mags = append(mags, p.Magnification())
	}
	return stats.Mean(mags)
}

// GainBounds returns the min and max baseline throughput gains (the
// paper: "15% to over 30% faster").
func (r Figure7Result) GainBounds() (lo, hi float64) {
	gains := make([]float64, 0, len(r.Pairs))
	for _, p := range r.Pairs {
		gains = append(gains, p.BaseGain)
	}
	return stats.Min(gains), stats.Max(gains)
}

func pairLabel(p Figure7Pair) string {
	return fmt.Sprintf("%s-%s", p.A[:3], p.B[:3])
}

// String renders the two panels.
func (r Figure7Result) String() string {
	out := "Figure 7: hyper-threading throughput and the magnifying effect of function affinity\n\n"
	a := &textplot.Chart{Title: "(a) throughput improvement of baseline co-run over solo-run", Width: 30, Format: "%.1f%%"}
	b := &textplot.Chart{Title: "(b) additional improvement due to function affinity (magnification)", Width: 30, Format: "%+.1f%%"}
	for _, p := range r.Pairs {
		a.Add(pairLabel(p), 100*p.BaseGain)
		b.Add(pairLabel(p), 100*p.Magnification())
	}
	out += a.String() + "\n" + b.String()
	out += fmt.Sprintf("\naverage magnification: %s\n", stats.SignedPct(r.AvgMagnification()))
	return out
}
