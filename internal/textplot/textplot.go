// Package textplot renders the paper's figures as ASCII bar charts so
// the benchmark harness can regenerate every figure, not just the
// tables, in a terminal.
package textplot

import (
	"fmt"
	"strings"
)

// Bar is one labeled value.
type Bar struct {
	Label string
	Value float64
}

// Chart is a horizontal bar chart.
type Chart struct {
	Title string
	Bars  []Bar
	// Width is the maximum bar width in characters (default 50).
	Width int
	// Format formats the value shown after each bar; default "%.2f".
	Format string
	// Baseline, when non-zero (e.g. 1.0 for speedups), draws bars
	// relative to the baseline: values above grow right from it,
	// values below are marked with '<'.
	Baseline float64
}

// Add appends a bar.
func (c *Chart) Add(label string, v float64) { c.Bars = append(c.Bars, Bar{label, v}) }

// String renders the chart.
func (c *Chart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	format := c.Format
	if format == "" {
		format = "%.2f"
	}
	labelW := 0
	maxDev := 0.0
	for _, b := range c.Bars {
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
		dev := b.Value - c.Baseline
		if dev < 0 {
			dev = -dev
		}
		if dev > maxDev {
			maxDev = dev
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title + "\n")
	}
	for _, b := range c.Bars {
		dev := b.Value - c.Baseline
		n := 0
		if maxDev > 0 {
			n = int(float64(width)*abs(dev)/maxDev + 0.5)
		}
		mark := strings.Repeat("#", n)
		if dev < 0 {
			mark = strings.Repeat("<", n)
		}
		fmt.Fprintf(&sb, "%-*s | %-*s "+format+"\n", labelW, b.Label, width, mark, b.Value)
	}
	return sb.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
