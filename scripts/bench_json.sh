#!/bin/sh
# bench_json.sh — bench-regression harness, run by `make bench-json` and
# the CI bench-json job.
#
#   bench_json.sh run [out.json]
#       Run the kernel benchmarks (affinity stack passes, TRG
#       construction, footprint curve, co-run simulation, placement
#       solver, streaming decode and feed) with -benchmem
#       and write one JSON document with ns/op, B/op and allocs/op per
#       benchmark. BENCHTIME overrides -benchtime (default 3x; CI uses
#       1x).
#
#   bench_json.sh check out.json <benchmark> <max-allocs>
#       Exit non-zero if <benchmark>'s allocs_per_op in out.json exceeds
#       <max-allocs>. This is the CI allocation-regression gate.
#
# Plain shell + awk on `go test -bench` output: no external dependencies.
set -eu

OUT_DEFAULT=BENCH_PR10.json
BENCHTIME=${BENCHTIME:-3x}

# The kernel benchmarks the harness tracks, one per analysis subsystem
# plus the end-to-end worker sweeps in the root package, the
# observability hot paths (span start/end, counter, histogram), which
# ride on every instrumented kernel and must stay allocation-free, and
# the anti-entropy digest-set diff, which runs every sweep on every node
# and must reuse its caller's buffer, the traceparent parse/format pair,
# which runs on every inbound request and every peer hop, and the
# runtime-telemetry sampler tick, which fires for the process lifetime.
BENCH_RE='^(BenchmarkBuildHierarchyWorkers|BenchmarkTRGBuildWorkers|BenchmarkFootprintCurveWorkers|BenchmarkCorunBatchWorkers|BenchmarkShardPairHists|BenchmarkBuildHierarchyArena|BenchmarkBuildShard|BenchmarkBuildArena|BenchmarkWindowFootprintScratch|BenchmarkSpanStartEnd|BenchmarkSpanStartEndDropped|BenchmarkRegistryCounterInc|BenchmarkRegistryHistogramObserve|BenchmarkScheduleSolve|BenchmarkStreamDecode|BenchmarkStreamFeed|BenchmarkAntiEntropyDiff|BenchmarkTraceparentParse|BenchmarkTraceparentFormat|BenchmarkRuntimeSamplerTick)$'
PKGS='. ./internal/affinity ./internal/trg ./internal/footprint ./internal/obs ./internal/schedule ./internal/trace ./internal/cluster'

run() {
    out=${1:-$OUT_DEFAULT}
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT

    echo "bench-json: running kernel benchmarks (benchtime=$BENCHTIME)" >&2
    go test -run='^$' -bench="$BENCH_RE" -benchmem -benchtime="$BENCHTIME" $PKGS | tee "$raw" >&2

    awk -v benchtime="$BENCHTIME" '
    /^pkg: /  { pkg = $2 }
    /^goos: / { goos = $2 }
    /^goarch: / { goarch = $2 }
    /^Benchmark/ && / ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)      # strip the GOMAXPROCS suffix
        sub(/^Benchmark/, "", name)
        iters = $2
        ns = ""; bytes = ""; allocs = ""
        for (i = 3; i < NF; i++) {
            if ($(i+1) == "ns/op") ns = $i
            if ($(i+1) == "B/op") bytes = $i
            if ($(i+1) == "allocs/op") allocs = $i
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s",
               pkg, name, iters, ns
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END {
        printf "\n  ],\n"
        printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"benchtime\": \"%s\"\n}\n",
               goos, goarch, benchtime
        if (n == 0) exit 3
    }
    BEGIN {
        printf "{\n  \"generated_by\": \"scripts/bench_json.sh\",\n"
        printf "  \"benchmarks\": [\n"
    }' "$raw" > "$out" || { echo "bench-json: no benchmark lines parsed" >&2; exit 1; }

    echo "bench-json: wrote $out" >&2
}

check() {
    file=$1 bench=$2 maxallocs=$3
    awk -v bench="$bench" -v maxallocs="$maxallocs" '
    {
        # One benchmark object per line in the generated file.
        if (index($0, "\"name\": \"" bench "\"") == 0) next
        if (match($0, /"allocs_per_op": [0-9.]+/)) {
            allocs = substr($0, RSTART + 17, RLENGTH - 17) + 0
            found = 1
            if (allocs > maxallocs) {
                printf "bench-json: %s allocs/op regressed: %d > budget %d\n",
                       bench, allocs, maxallocs > "/dev/stderr"
                exit 1
            }
            printf "bench-json: %s allocs/op = %d (budget %d): ok\n",
                   bench, allocs, maxallocs > "/dev/stderr"
        }
    }
    END { if (!found) { printf "bench-json: benchmark %s not found in %s\n",
                        bench, FILENAME > "/dev/stderr"; exit 2 } }' "$file"
}

cmd=${1:-run}
case "$cmd" in
run)
    shift || true
    run "$@"
    ;;
check)
    [ $# -eq 4 ] || { echo "usage: bench_json.sh check out.json <benchmark> <max-allocs>" >&2; exit 2; }
    shift
    check "$@"
    ;;
*)
    echo "usage: bench_json.sh [run [out.json] | check out.json <benchmark> <max-allocs>]" >&2
    exit 2
    ;;
esac
