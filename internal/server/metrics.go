package server

import (
	"codelayout/internal/obs"
	"codelayout/internal/store"
)

// latencyBucketsMS are the per-optimizer latency histogram upper bounds
// in milliseconds (kept from the pre-registry exposition so dashboards
// survive the migration).
var latencyBucketsMS = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

// serverMetrics is layoutd's telemetry, registered on one obs.Registry
// so job, pool, store, and phase metrics share a namespace and a single
// Prometheus exposition. Counters the request path increments live here
// as *obs.Counter (lock-free); values owned by other subsystems — pool
// queue depth, store stats — are registered as funcs read live at
// scrape time.
type serverMetrics struct {
	reg *obs.Registry

	accepted     *obs.Counter
	completed    *obs.Counter
	failed       *obs.Counter
	rejected     *obs.Counter
	canceled     *obs.Counter
	cacheHits    *obs.Counter
	spansDropped *obs.Counter

	corunJobs     *obs.Counter
	scheduleJobs  *obs.Counter
	schedulePairs *obs.Counter
	pairHits      *obs.Counter
	pairMisses    *obs.Counter

	inflightBytes *obs.Gauge

	// Streaming-ingest family.
	streamJobs    *obs.Counter
	streamChunks  *obs.Counter
	uploadResumes *obs.Counter

	// Cluster family; nil when the server runs single-node.
	peerForwards       *obs.CounterVec
	forwardErrors      *obs.Counter
	peerHealth         *obs.GaugeVec
	clusterFetches     *obs.Counter
	replicationDropped *obs.CounterVec
	replLag            *obs.Histogram
	replicateReceived  *obs.Counter // registered with the store family

	// Observability-plane family.
	events                 *obs.CounterVec // layoutd_events_total{kind}
	federationScrapeErrors *obs.Counter

	queueWait *obs.Histogram
	phase     *obs.HistogramVec
	latency   *obs.HistogramVec
}

// newServerMetrics registers every family. Registration order is
// exposition order. The store family is registered only when the server
// has a durable tier, matching the pre-registry behavior of omitting it
// when running memory-only.
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{reg: r}

	m.accepted = r.Counter("layoutd_jobs_accepted_total", "Jobs accepted into the queue.")
	m.completed = r.Counter("layoutd_jobs_completed_total", "Jobs that produced a layout.")
	m.failed = r.Counter("layoutd_jobs_failed_total", "Jobs that errored.")
	m.rejected = r.Counter("layoutd_jobs_rejected_total", "Submissions rejected with 429 (queue full).")
	m.canceled = r.Counter("layoutd_jobs_canceled_total", "Queued jobs canceled via DELETE /v1/jobs/{id}.")
	m.cacheHits = r.Counter("layoutd_cache_hits_total", "Submissions served from the content-addressed cache.")
	m.corunJobs = r.Counter("layoutd_corun_jobs_total", "Co-run analysis requests accepted at POST /v1/corun.")
	m.scheduleJobs = r.Counter("layoutd_schedule_jobs_total", "Placement requests accepted at POST /v1/schedule.")
	m.schedulePairs = r.Counter("layoutd_schedule_pairs_total", "Interference-matrix pairs computed by co-run simulation for schedule jobs.")
	m.pairHits = r.Counter("layoutd_pair_cache_hits_total", "Pair lookups served from the content-addressed pair cache.")
	m.pairMisses = r.Counter("layoutd_pair_cache_misses_total", "Pair lookups that required a co-run analysis.")
	r.GaugeFunc("layoutd_queue_depth", "Jobs accepted but not yet running.",
		func() int64 { return int64(s.pool.QueueDepth()) })
	r.GaugeFunc("layoutd_jobs_running", "Jobs currently optimizing.",
		func() int64 { return int64(s.pool.Running()) })
	r.GaugeFunc("layoutd_jobs_tracked", "Job-status records held (bounded by retention).",
		func() int64 { return int64(s.JobsTracked()) })
	m.inflightBytes = r.Gauge("layoutd_inflight_bytes",
		"Trace bytes held by queued and running jobs.")
	m.spansDropped = r.Counter("layoutd_spans_dropped_total",
		"Spans lost to per-job trace buffer bounds.")
	m.streamJobs = r.Counter("layoutd_stream_jobs_total",
		"Submissions analyzed while uploading (feed-mode ingest).")
	m.streamChunks = r.Counter("layoutd_stream_chunks_total",
		"Decoded chunks fed into streaming analyses.")
	m.uploadResumes = r.Counter("layoutd_upload_resumes_total",
		"Upload appends that resumed a session after an interrupted PATCH.")
	r.GaugeFunc("layoutd_stream_buffered_bytes",
		"Decoded chunk bytes in flight across streaming submissions (bounded per stream by -stream-window).",
		func() int64 { return s.streamBytes.Load() })
	r.GaugeFunc("layoutd_stream_buffered_peak_bytes",
		"High-water mark of in-flight decoded chunk bytes.",
		func() int64 { return s.streamPeak.Load() })
	if s.uploads != nil {
		up := s.uploads
		r.GaugeFunc("layoutd_upload_sessions", "Open resumable upload sessions.",
			func() int64 { return int64(up.Len()) })
		r.CounterFunc("layoutd_upload_sessions_recovered_total",
			"Upload sessions recovered from a previous process by the startup scan.",
			func() int64 { return int64(up.Recovered()) })
	}

	if s.disk != nil {
		d := s.disk
		r.GaugeFunc("layoutd_store_state", "Durable store state: 1 = ok, 0 = degraded (memory-only).",
			func() int64 {
				if d.State() == store.StateOK {
					return 1
				}
				return 0
			})
		r.GaugeFunc("layoutd_store_blobs", "Layout blobs held on disk.",
			func() int64 { return int64(d.Stats().Blobs) })
		r.GaugeFunc("layoutd_store_bytes", "Payload bytes held on disk (LRU-bounded).",
			func() int64 { return d.Stats().Bytes })
		r.CounterFunc("layoutd_store_hits_total", "Cache lookups served from the on-disk store.",
			func() int64 { return d.Stats().Hits })
		r.CounterFunc("layoutd_store_writes_total", "Blobs durably written.",
			func() int64 { return d.Stats().Writes })
		r.CounterFunc("layoutd_store_write_errors_total", "Failed blob writes (each trips the breaker).",
			func() int64 { return d.Stats().WriteErrors })
		r.CounterFunc("layoutd_store_read_errors_total", "Blob read I/O errors (repeats trip the breaker).",
			func() int64 { return d.Stats().ReadErrors })
		r.CounterFunc("layoutd_store_dropped_writes_total", "Writes dropped (queue full or store degraded).",
			func() int64 { return d.Stats().Dropped })
		r.CounterFunc("layoutd_store_evictions_total", "Blobs evicted by the byte bound.",
			func() int64 { return d.Stats().Evictions })
		r.CounterFunc("layoutd_store_quarantined_total", "Blobs quarantined as truncated or corrupt.",
			func() int64 { return d.Stats().Quarantined })
		r.CounterFunc("layoutd_store_recoveries_total", "Degraded-to-ok breaker transitions.",
			func() int64 { return d.Stats().Recoveries })
		r.CounterFunc("layoutd_store_deletes_total", "Blobs deleted via DELETE /v1/store/{key}.",
			func() int64 { return d.Stats().Deletes })
		m.replicateReceived = r.Counter("layoutd_replicate_received_total",
			"Blobs accepted from peer replication pushes at PUT /v1/replicate/{key}.")
	}

	if cl := s.cluster; cl != nil {
		m.peerForwards = r.CounterVec("layoutd_peer_forwards_total",
			"Requests forwarded to the owning peer, by peer.", "peer")
		m.forwardErrors = r.Counter("layoutd_peer_forward_errors_total",
			"Forwards that failed and fell back to local service.")
		m.peerHealth = r.GaugeVec("layoutd_peer_health",
			"Last observed peer state: 2 = up, 1 = degraded, 0 = down.", "peer")
		m.clusterFetches = r.Counter("layoutd_cluster_fetch_total",
			"Blobs served by fetching from a peer on local store miss.")
		r.GaugeFunc("layoutd_replication_queue_depth", "Blobs awaiting write-behind replication push.",
			func() int64 { return int64(cl.QueueDepth()) })
		r.CounterFunc("layoutd_replication_pushed_total", "Blobs acknowledged by a replica.",
			func() int64 { return cl.ReplicationStats().Pushed })
		r.CounterFunc("layoutd_replication_errors_total", "Replication pushes failed after retries.",
			func() int64 { return cl.ReplicationStats().Errors })
		m.replicationDropped = r.CounterVec("layoutd_replication_dropped_total",
			"Replication enqueues dropped (queue full), by target peer. Anti-entropy repairs these.", "peer")
		r.CounterFunc("layoutd_replication_skipped_total",
			"Replication pushes short-circuited because the target peer was down (anti-entropy repairs these).",
			func() int64 { return cl.ReplicationStats().Skipped })
		m.replLag = r.Histogram("layoutd_replication_lag_seconds",
			"Queue wait between a blob's enqueue and its replication push.", nil)
		r.CounterFunc("layoutd_antientropy_sweeps_total",
			"Completed anti-entropy repair sweeps.",
			func() int64 { return cl.AntiEntropyStats().Sweeps })
		r.CounterFunc("layoutd_antientropy_repaired_total",
			"Keys re-pushed to a replica that was missing them.",
			func() int64 { return cl.AntiEntropyStats().Repaired })
		r.CounterFunc("layoutd_antientropy_bytes_total",
			"Payload bytes re-pushed by anti-entropy repair.",
			func() int64 { return cl.AntiEntropyStats().Bytes })
		r.GaugeFunc("layoutd_antientropy_last_sweep_seconds",
			"Unix time of the last completed anti-entropy sweep (0 until the first).",
			func() int64 { return cl.AntiEntropyStats().LastSweepUnix })
	}

	m.events = r.CounterVec("layoutd_events_total",
		"Structured state-transition events recorded in the /v1/debug/events ring, by kind.", "kind")
	m.federationScrapeErrors = r.Counter("layoutd_federation_scrape_errors_total",
		"Peer scrapes that failed during GET /v1/cluster/metrics federation.")
	rt := s.runtime
	r.GaugeFunc("layoutd_runtime_heap_bytes",
		"Live heap object bytes, from the runtime-telemetry sampler.",
		func() int64 { return rt.Last().HeapBytes })
	r.GaugeFunc("layoutd_runtime_goroutines",
		"Goroutine count, from the runtime-telemetry sampler.",
		func() int64 { return rt.Last().Goroutines })
	r.CounterFunc("layoutd_runtime_gc_cycles_total",
		"Completed GC cycles, from the runtime-telemetry sampler.",
		func() int64 { return rt.Last().GCCycles })
	r.GaugeFunc("layoutd_runtime_gc_pause_p99_ns",
		"Lifetime p99 GC stop-the-world pause, nanoseconds.",
		func() int64 { return rt.Last().GCPauseP99NS })
	r.GaugeFunc("layoutd_runtime_sched_latency_p99_ns",
		"Lifetime p99 goroutine scheduling latency, nanoseconds.",
		func() int64 { return rt.Last().SchedLatencyP99NS })

	m.queueWait = r.Histogram("layoutd_queue_wait_seconds",
		"Time jobs spend in the pool queue before a worker picks them up.", nil)
	m.phase = r.HistogramVec("layoutd_phase_seconds",
		"Wall time per pipeline phase, from per-job trace spans.", "phase", nil)
	m.latency = r.HistogramVec("layoutd_optimize_latency_ms",
		"Optimization latency per optimizer.", "optimizer", latencyBucketsMS)
	return m
}

// observePhases folds a job's completed trace spans into the per-phase
// histograms (in-progress spans, Dur < 0, are skipped).
func (m *serverMetrics) observePhases(spans []obs.SpanData) {
	for _, sd := range spans {
		if sd.Dur < 0 {
			continue
		}
		m.phase.With(sd.Name).Observe(sd.Dur.Seconds())
	}
}
