package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict parser/linter for the Prometheus text exposition
// format (version 0.0.4). It exists so tests can validate every line a
// /metrics endpoint emits — metadata present, no duplicate series,
// histogram buckets cumulative and capped by +Inf — instead of grepping
// for substrings.

// Series is one parsed sample line.
type Series struct {
	Name   string            // metric name as written (includes _bucket/_sum/_count suffixes)
	Labels map[string]string // nil when the line has no label set
	Value  float64
}

// Key returns a canonical identity for duplicate detection: the name
// plus the sorted label pairs.
func (s Series) Key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Exposition is the parsed form of one scrape.
type Exposition struct {
	Series []Series
	Types  map[string]string // family name -> counter|gauge|histogram|summary|untyped
	Helps  map[string]string // family name -> help text
}

// ParsePrometheusText parses a text-format exposition strictly: every
// line must be a well-formed comment or sample, TYPE/HELP must appear at
// most once per family and before that family's samples, and no series
// may repeat.
func ParsePrometheusText(r io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Types: make(map[string]string),
		Helps: make(map[string]string),
	}
	seen := make(map[string]int) // series key -> first line no
	sawSample := make(map[string]bool)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line, sawSample); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		key := s.Key()
		if first, dup := seen[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate series %s (first at line %d)", lineNo, key, first)
		}
		seen[key] = lineNo
		sawSample[familyOf(s.Name)] = true
		exp.Series = append(exp.Series, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

func (e *Exposition) parseComment(line string, sawSample map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := e.Types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sawSample[name] {
			return fmt.Errorf("TYPE for %s appears after its samples", name)
		}
		e.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
		name := fields[2]
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		if _, dup := e.Helps[name]; dup {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		if sawSample[name] {
			return fmt.Errorf("HELP for %s appears after its samples", name)
		}
		e.Helps[name] = help
	}
	return nil
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (Series, error) {
	var s Series
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:i]
	if !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if rest[i] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[i+1 : end])
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	} else {
		rest = rest[i:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "" || strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("expected single value in %q", line)
	}
	v, err := parseValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", rest, line)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	for body != "" {
		eq := strings.Index(body, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without value")
		}
		key := body[:eq]
		if !nameRe.MatchString(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		body = body[eq+1:]
		if body == "" || body[0] != '"' {
			return nil, fmt.Errorf("label value for %s not quoted", key)
		}
		// Find the closing quote, honoring backslash escapes.
		end := -1
		for j := 1; j < len(body); j++ {
			if body[j] == '\\' {
				j++
				continue
			}
			if body[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value for %s", key)
		}
		val, err := strconv.Unquote(body[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value for %s: %v", key, err)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("duplicate label %s", key)
		}
		labels[key] = val
		body = body[end+1:]
		if body != "" {
			if body[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels")
			}
			body = body[1:]
		}
	}
	return labels, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// FamilyOf strips histogram sample suffixes (_bucket, _sum, _count) to
// recover the family name a TYPE/HELP comment would use. Exported for
// consumers that regroup parsed samples by family — e.g. the cluster
// metrics federation endpoint.
func FamilyOf(name string) string { return familyOf(name) }

// familyOf strips histogram sample suffixes to recover the family name
// a TYPE/HELP comment would use.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// LintPrometheusText parses and then cross-checks the exposition:
// every sample's family has TYPE and HELP, histogram families have
// cumulative buckets ending in le="+Inf", the +Inf bucket equals
// _count, and _sum/_count are present for every histogram series.
func LintPrometheusText(r io.Reader) (*Exposition, error) {
	exp, err := ParsePrometheusText(r)
	if err != nil {
		return nil, err
	}

	// Group histogram samples by family + non-le labels.
	type histSeries struct {
		buckets  []Series // in emission order
		hasSum   bool
		hasCount bool
		count    float64
	}
	hists := make(map[string]*histSeries)
	histKey := func(family string, labels map[string]string) string {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		return Series{Name: family, Labels: rest}.Key()
	}

	for _, s := range exp.Series {
		family := s.Name
		isHistSample := false
		if typ, ok := exp.Types[familyOf(s.Name)]; ok && typ == "histogram" && familyOf(s.Name) != s.Name {
			family = familyOf(s.Name)
			isHistSample = true
		}
		if _, ok := exp.Types[family]; !ok {
			return nil, fmt.Errorf("series %s has no TYPE", s.Key())
		}
		if _, ok := exp.Helps[family]; !ok {
			return nil, fmt.Errorf("series %s has no HELP", s.Key())
		}
		if exp.Types[family] == "histogram" && !isHistSample {
			return nil, fmt.Errorf("histogram family %s has bare sample %s", family, s.Key())
		}
		if !isHistSample {
			continue
		}
		hk := histKey(family, s.Labels)
		h := hists[hk]
		if h == nil {
			h = &histSeries{}
			hists[hk] = h
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			if _, ok := s.Labels["le"]; !ok {
				return nil, fmt.Errorf("bucket sample %s missing le label", s.Key())
			}
			h.buckets = append(h.buckets, s)
		case strings.HasSuffix(s.Name, "_sum"):
			h.hasSum = true
		case strings.HasSuffix(s.Name, "_count"):
			h.hasCount = true
			h.count = s.Value
		}
	}

	for hk, h := range hists {
		if !h.hasSum {
			return nil, fmt.Errorf("histogram %s missing _sum", hk)
		}
		if !h.hasCount {
			return nil, fmt.Errorf("histogram %s missing _count", hk)
		}
		if len(h.buckets) == 0 {
			return nil, fmt.Errorf("histogram %s has no buckets", hk)
		}
		prevBound := math.Inf(-1)
		prevCum := -1.0
		sawInf := false
		for _, b := range h.buckets {
			bound, err := parseValue(b.Labels["le"])
			if err != nil {
				return nil, fmt.Errorf("histogram %s: bad le %q", hk, b.Labels["le"])
			}
			if bound <= prevBound {
				return nil, fmt.Errorf("histogram %s: le bounds not increasing at %q", hk, b.Labels["le"])
			}
			if b.Value < prevCum {
				return nil, fmt.Errorf("histogram %s: bucket counts not cumulative at le=%q", hk, b.Labels["le"])
			}
			prevBound = bound
			prevCum = b.Value
			if math.IsInf(bound, 1) {
				sawInf = true
			}
		}
		if !sawInf {
			return nil, fmt.Errorf("histogram %s missing le=\"+Inf\" bucket", hk)
		}
		if last := h.buckets[len(h.buckets)-1]; last.Value != h.count {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %v != _count %v", hk, last.Value, h.count)
		}
	}
	return exp, nil
}
