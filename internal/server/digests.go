package server

import (
	"context"
	"fmt"
	"net/http"
)

// This file is the single home of digest and store-key validation.
// Every externally supplied content address — /v1/layouts/{digest},
// /v1/corun bodies, /v1/schedule digest lists, /v1/store/{key},
// /v1/replicate/{key} — passes through here before it reaches a cache
// or the filesystem, which also closes the path-traversal hole a raw
// key would open through filepath.Join in the store.

// validDigest reports whether s is a well-formed content address: 64
// lowercase hex characters, the fixed output shape of every digest the
// service mints (resultDigest, trace digests, corunDigest,
// scheduleDigest).
func validDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Store-key kind names, derived from the key prefix: result digests are
// bare hex; traces, pair documents, and schedule documents carry the
// "t-"/"p-"/"s-" prefixes.
const (
	kindResult   = "result"
	kindTrace    = "trace"
	kindPair     = "pair"
	kindSchedule = "schedule"
)

// storeKeyKind classifies a durable-store key and reports whether it is
// well-formed. Anything else — wrong length, uppercase, unknown prefix,
// path separators — is rejected.
func storeKeyKind(key string) (string, bool) {
	if validDigest(key) {
		return kindResult, true
	}
	if len(key) == 66 && validDigest(key[2:]) {
		switch key[:2] {
		case traceStoreKey:
			return kindTrace, true
		case pairStoreKey:
			return kindPair, true
		case scheduleStoreKey:
			return kindSchedule, true
		}
	}
	return "", false
}

// checkDigests validates every digest in a request, naming the first
// malformed one.
func checkDigests(digests ...string) error {
	for _, d := range digests {
		if !validDigest(d) {
			return fmt.Errorf("malformed digest %q: want 64 lowercase hex characters", d)
		}
	}
	return nil
}

// resolveEntries materializes the corunEntry behind each digest,
// sharing one entry (and its memoized curves and solo runs) across
// repeated digests — /v1/corun self-pairings and /v1/schedule slot
// repeats hit the same pointer. The int is the HTTP status a failure
// maps to: 400 for malformed digests, then whatever resolveEntry
// reports.
func (s *Server) resolveEntries(ctx context.Context, digests []string) ([]*corunEntry, int, error) {
	if err := checkDigests(digests...); err != nil {
		return nil, http.StatusBadRequest, err
	}
	byDigest := make(map[string]*corunEntry, len(digests))
	entries := make([]*corunEntry, len(digests))
	for i, d := range digests {
		e, ok := byDigest[d]
		if !ok {
			var status int
			var err error
			e, status, err = s.resolveEntry(ctx, d)
			if err != nil {
				return nil, status, err
			}
			byDigest[d] = e
		}
		entries[i] = e
	}
	return entries, 0, nil
}
