package core

import (
	"testing"

	"codelayout/internal/cachesim"
	"codelayout/internal/layout"
	"codelayout/internal/progen"
)

func profileNamed(t testing.TB, name string) *Profile {
	t.Helper()
	p, err := LoadProgram(name)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileProgram(p, TrainSeed)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestOptimizerNames(t *testing.T) {
	want := map[string]bool{
		"func-affinity": true, "bb-affinity": true,
		"func-trg": true, "bb-trg": true,
	}
	for _, o := range AllOptimizers() {
		if !want[o.Name()] {
			t.Errorf("unexpected optimizer name %q", o.Name())
		}
		delete(want, o.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing optimizers: %v", want)
	}
}

func TestAllOptimizersProduceValidLayouts(t *testing.T) {
	prof := profileNamed(t, "458.sjeng")
	for _, o := range AllOptimizers() {
		l, rep, err := o.Optimize(prof)
		if err != nil {
			t.Errorf("%s: %v", o.Name(), err)
			continue
		}
		if err := l.Validate(); err != nil {
			t.Errorf("%s: invalid layout: %v", o.Name(), err)
		}
		if rep.SeqLen == 0 {
			t.Errorf("%s: empty model sequence", o.Name())
		}
		if rep.TraceLen == 0 || rep.Retention <= 0 || rep.Retention > 1 {
			t.Errorf("%s: bad report %+v", o.Name(), rep)
		}
		wantStubs := o.Gran == GranBasicBlock
		if l.HasStubs() != wantStubs {
			t.Errorf("%s: HasStubs = %v, want %v", o.Name(), l.HasStubs(), wantStubs)
		}
	}
}

// evalMiss replays the evaluation-input trace through a layout and
// returns the simulated solo I-cache miss ratio.
func evalMiss(t testing.TB, prof *Profile, l *layout.Layout) float64 {
	t.Helper()
	evalProf, err := ProfileProgram(prof.Prog, EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	res := cachesim.SimulateSolo(cachesim.L1IDefault,
		layout.NewReplayer(l, evalProf.Blocks, cachesim.L1IDefault.LineBytes, false))
	return res.Stats.MissRatio()
}

func TestBBAffinityReducesMisses(t *testing.T) {
	prof := profileNamed(t, "445.gobmk")
	base := evalMiss(t, prof, layout.Original(prof.Prog))
	l, _, err := BBAffinity().Optimize(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := evalMiss(t, prof, l)
	t.Logf("gobmk solo miss: base=%.3f%% bb-affinity=%.3f%%", 100*base, 100*opt)
	if opt >= base*0.8 {
		t.Errorf("bb-affinity reduced misses only from %v to %v (<20%%)", base, opt)
	}
}

func TestFuncAffinityReducesMisses(t *testing.T) {
	prof := profileNamed(t, "445.gobmk")
	base := evalMiss(t, prof, layout.Original(prof.Prog))
	l, _, err := FuncAffinity().Optimize(prof)
	if err != nil {
		t.Fatal(err)
	}
	opt := evalMiss(t, prof, l)
	t.Logf("gobmk solo miss: base=%.3f%% func-affinity=%.3f%%", 100*base, 100*opt)
	if opt >= base {
		t.Errorf("func-affinity did not reduce misses: %v -> %v", base, opt)
	}
}

func TestOptimizeRejectsNilProfile(t *testing.T) {
	if _, _, err := BBAffinity().Optimize(nil); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestProfileUsesSeed(t *testing.T) {
	p, err := LoadProgram("429.mcf")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ProfileProgram(p, TrainSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProfileProgram(p, EvalSeed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Blocks.Len() == 0 || b.Blocks.Len() == 0 {
		t.Fatal("empty profiles")
	}
	same := a.Blocks.Len() == b.Blocks.Len()
	if same {
		for i := range a.Blocks.Syms {
			if a.Blocks.Syms[i] != b.Blocks.Syms[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("train and eval inputs produced identical traces")
	}
}

func TestLoadProgramUnknown(t *testing.T) {
	if _, err := LoadProgram("no.such"); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestPruningBoundsAlphabet(t *testing.T) {
	prof := profileNamed(t, "458.sjeng")
	o := BBAffinity()
	o.PruneTopN = 50
	l, rep, err := o.Optimize(prof)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeqLen > 50 {
		t.Errorf("SeqLen = %d with PruneTopN=50", rep.SeqLen)
	}
	if rep.Retention >= 1 {
		t.Errorf("Retention = %v, want < 1 with tight pruning", rep.Retention)
	}
	// Layout still covers the whole program (unprofiled blocks appended).
	if err := l.Validate(); err != nil {
		t.Errorf("pruned layout invalid: %v", err)
	}
}

var _ = progen.MainSuiteNames // keep the import for documentation parity
