package server

import (
	"bytes"
	"container/list"
	"context"
	"sync"

	"codelayout/internal/obs"
	"codelayout/internal/trace"
)

// traceStoreKey prefixes trace blobs in the durable store so they share
// the directory with layout results ("p-" pair docs and "s-" schedule
// docs likewise) without key collisions: result digests are bare hex.
const traceStoreKey = "t-"

// traceCache retains decoded uploads keyed by their trace digest so the
// scheduling endpoints can replay a profile that was submitted earlier
// without the client re-uploading it. Like resultCache it is two-tiered:
// a bounded in-memory LRU of decoded traces in front of the durable
// store, which holds the canonical CLTR encoding. A memory miss decodes
// from disk and repopulates memory; an evicted or quarantined blob means
// the trace is gone and the caller reports 404.
type traceCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	disk    blobStore
}

type traceEntry struct {
	digest string
	tr     *trace.Trace
}

func newTraceCache(max int, disk blobStore) *traceCache {
	if max <= 0 {
		max = DefaultTraceCacheEntries
	}
	return &traceCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		disk:    disk,
	}
}

// put retains a freshly decoded upload under the upload's digest (the
// key Result.TraceDigest records). The durable write re-encodes the
// trace to canonical CLTR behind the request path (store.Put is
// write-behind); a digest already held in memory is only refreshed in
// LRU order, its bytes are not re-encoded.
func (c *traceCache) put(ctx context.Context, digest string, tr *trace.Trace) {
	if !c.putMemory(digest, tr) || c.disk == nil {
		return
	}
	sp := obs.StartSpan(ctx, "store.write")
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err == nil {
		sp.SetAttr("bytes", int64(buf.Len()))
		c.disk.Put(traceStoreKey+digest, buf.Bytes())
	}
	sp.End()
}

// putEncoded retains an already-encoded CLTR container under its
// digest, durable tier only — streamed uploads are never re-buffered
// into the memory tier; a later get decodes from disk and repopulates
// it. The uploaded bytes are the canonical encoding (varint encodings
// are unique), so this matches what put would have written.
func (c *traceCache) putEncoded(ctx context.Context, digest string, data []byte) {
	if c.disk == nil {
		return
	}
	sp := obs.StartSpan(ctx, "store.write")
	sp.SetAttr("bytes", int64(len(data)))
	c.disk.Put(traceStoreKey+digest, data)
	sp.End()
}

// putMemory inserts into the LRU tier only; it reports false when the
// digest was already held (refreshed in place, nothing to persist).
func (c *traceCache) putMemory(digest string, tr *trace.Trace) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[digest]; ok {
		c.order.MoveToFront(e)
		return false
	}
	c.entries[digest] = c.order.PushFront(&traceEntry{digest: digest, tr: tr})
	for len(c.entries) > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*traceEntry).digest)
	}
	return true
}

// get returns the retained trace for the digest, consulting the durable
// tier on a memory miss.
func (c *traceCache) get(ctx context.Context, digest string) (*trace.Trace, bool) {
	c.mu.Lock()
	if e, ok := c.entries[digest]; ok {
		c.order.MoveToFront(e)
		tr := e.Value.(*traceEntry).tr
		c.mu.Unlock()
		return tr, true
	}
	c.mu.Unlock()
	if c.disk == nil {
		return nil, false
	}
	sp := obs.StartSpan(ctx, "store.read")
	data, ok := c.disk.Get(traceStoreKey + digest)
	sp.SetAttr("bytes", int64(len(data)))
	sp.End()
	if !ok {
		return nil, false
	}
	tr, err := trace.ReadFrom(bytes.NewReader(data))
	if err != nil {
		// The store verified the blob's checksum, so a decode failure is
		// format drift or a foreign file, not corruption; treat as gone.
		return nil, false
	}
	c.putMemory(digest, tr) // already on disk
	return tr, true
}

// drop purges the memory tier's copy of a digest (the admin DELETE
// path; the disk blob is removed separately).
func (c *traceCache) drop(digest string) {
	c.mu.Lock()
	if e, ok := c.entries[digest]; ok {
		c.order.Remove(e)
		delete(c.entries, digest)
	}
	c.mu.Unlock()
}

// len reports the number of traces held in memory (for tests).
func (c *traceCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
