// Package server implements layoutd, the layout-optimization service:
// an HTTP layer over the repository's trace format and optimizer suite.
// Clients stream a CLTR binary trace to POST /v1/jobs together with a
// suite-program name and an optimizer name; the server decodes the
// upload incrementally (trace.Decoder), queues an optimization job on a
// bounded worker pool (parallel.Pool) with per-job deadline and
// backpressure (429 when the queue is full), and stores completed
// results in a content-addressed cache keyed by the SHA-256 of the
// trace bytes plus the optimizer and its parameters, so resubmitting
// the same profile never recomputes. GET /metrics exposes counters and
// per-optimizer latency histograms with no external dependencies.
//
// Endpoints:
//
//	POST /v1/jobs?prog=<suite program>&opt=<optimizer>[&prune=<topN>]
//	     body: raw CLTR trace, or multipart/form-data with a "trace" file
//	GET  /v1/jobs/{id}        job status and, when done, the result
//	GET  /v1/layouts/{digest} cached result by content address
//	GET  /v1/optimizers       the optimizer registry
//	GET  /healthz             liveness
//	GET  /metrics             Prometheus-format text
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"codelayout/internal/cachesim"
	"codelayout/internal/core"
	"codelayout/internal/ir"
	"codelayout/internal/layout"
	"codelayout/internal/parallel"
	"codelayout/internal/stats"
	"codelayout/internal/store"
	"codelayout/internal/trace"
)

// Config sizes the service.
type Config struct {
	// JobWorkers bounds concurrent optimizations; <= 0 means all cores.
	JobWorkers int
	// QueueDepth bounds jobs accepted but not yet running; submissions
	// beyond it get 429. <= 0 means DefaultQueueDepth.
	QueueDepth int
	// JobTimeout bounds a job's life from acceptance (queue wait
	// included) to completion; 0 means DefaultJobTimeout.
	JobTimeout time.Duration
	// OptWorkers is the analysis concurrency inside one job (the
	// core.Optimizer Workers knob); 0 means all cores. Serving many
	// concurrent jobs usually wants 1 here and parallelism across jobs.
	OptWorkers int
	// MaxTraceBytes caps an upload; 0 means DefaultMaxTraceBytes.
	MaxTraceBytes int64
	// JobTTL bounds how long a completed or failed job's status stays
	// queryable at /v1/jobs/{id}; 0 means DefaultJobTTL. Results outlive
	// their job entry in the content-addressed cache (/v1/layouts).
	JobTTL time.Duration
	// MaxJobs bounds the tracked-job map; when exceeded, the oldest
	// terminal jobs are evicted first. 0 means DefaultMaxJobs. Queued and
	// running jobs are never evicted.
	MaxJobs int
	// Store is the optional durable result tier (internal/store). The
	// server takes ownership: Shutdown drains its write-behind queue and
	// closes it. Nil means the cache is memory-only.
	Store *store.Store
}

// Defaults for zero Config fields.
const (
	DefaultJobTimeout    = 5 * time.Minute
	DefaultMaxTraceBytes = 64 << 20
	DefaultQueueDepth    = 64
	DefaultJobTTL        = 15 * time.Minute
	DefaultMaxJobs       = 4096
)

// Server is the layoutd service state. Create with New, serve
// Handler(), stop with Shutdown.
type Server struct {
	cfg     Config
	pool    *parallel.Pool
	cache   *resultCache
	disk    *store.Store // nil: memory-only
	metrics *metrics
	mux     *http.ServeMux

	mu     sync.Mutex
	jobs   map[string]*Job
	progs  map[string]*progEntry
	nextID atomic.Int64

	// arenas recycles the analysis kernels' buffers across jobs: each
	// running job borrows one core.Arena, so a steady request stream
	// reuses the same hot-path allocations instead of re-growing them
	// per job.
	arenas sync.Pool

	// optimize runs one validated job request; tests substitute it to
	// control timing and failure modes.
	optimize func(ctx context.Context, req *jobRequest) (*Result, error)

	// now returns the current time; tests substitute it to drive the
	// retention clock.
	now func() time.Time
}

// progEntry lazily generates one suite program, shared by every job
// that names it.
type progEntry struct {
	once sync.Once
	p    *ir.Program
	err  error
}

// New creates a server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = DefaultJobTimeout
	}
	if cfg.MaxTraceBytes <= 0 {
		cfg.MaxTraceBytes = DefaultMaxTraceBytes
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = DefaultJobTTL
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	s := &Server{
		cfg:     cfg,
		pool:    parallel.NewPool(cfg.JobWorkers, cfg.QueueDepth),
		cache:   newResultCache(cfg.Store),
		disk:    cfg.Store,
		metrics: newMetrics(),
		jobs:    make(map[string]*Job),
		progs:   make(map[string]*progEntry),
	}
	s.optimize = s.runOptimize
	s.now = time.Now
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/layouts/{digest}", s.handleLayout)
	mux.HandleFunc("GET /v1/optimizers", s.handleOptimizers)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops accepting jobs, drains queued and in-flight work
// bounded by ctx (the -drain-timeout flag in cmd/layoutd), then drains
// and closes the durable store so completed results hit the disk.
// Submissions arriving after Shutdown get 429. A non-nil error means
// the drain abandoned wedged work and the process should exit nonzero.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.pool.Shutdown(ctx)
	if s.disk != nil {
		s.disk.Close()
	}
	return err
}

// CacheLen reports the number of cached layouts (for tests and logs).
func (s *Server) CacheLen() int { return s.cache.len() }

// StoreState reports the durable tier's breaker state; ok-and-false
// when the server runs memory-only.
func (s *Server) StoreState() (store.State, bool) {
	if s.disk == nil {
		return store.StateOK, false
	}
	return s.disk.State(), true
}

// ---- submission ----

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	progName := r.URL.Query().Get("prog")
	optName := r.URL.Query().Get("opt")
	pruneStr := r.URL.Query().Get("prune")

	body, cleanup, err := s.traceBody(w, r, &progName, &optName, &pruneStr)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cleanup()

	if progName == "" || optName == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing required parameter: prog and opt"))
		return
	}
	pruneTopN := 0
	if pruneStr != "" {
		pruneTopN, err = strconv.Atoi(pruneStr)
		if err != nil || pruneTopN < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("invalid prune %q", pruneStr))
			return
		}
	}
	opt, err := core.OptimizerByName(optName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	prog, err := s.program(progName)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	// Decode the upload incrementally while fingerprinting the bytes.
	hr := trace.NewHashingReader(body)
	dec, err := trace.NewDecoder(hr)
	if err != nil {
		httpError(w, badBodyStatus(err), err)
		return
	}
	tr, err := dec.Decode()
	if err != nil {
		httpError(w, badBodyStatus(err), err)
		return
	}
	// Drain trailing bytes so the digest covers the whole upload.
	if _, err := io.Copy(io.Discard, hr); err != nil {
		httpError(w, badBodyStatus(err), err)
		return
	}
	if tr.Len() == 0 {
		httpError(w, http.StatusBadRequest, errors.New("trace is empty"))
		return
	}
	if max := tr.MaxSym(); int(max) >= prog.NumBlocks() {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("trace symbol %d out of range for %s (%d blocks); is this a basic-block trace of the named program?",
				max, progName, prog.NumBlocks()))
		return
	}

	req := &jobRequest{
		prog:        prog,
		progName:    progName,
		opt:         opt,
		pruneTopN:   pruneTopN,
		trace:       tr,
		traceDigest: hr.Sum(),
		deadline:    time.Now().Add(s.cfg.JobTimeout),
	}
	req.digest = resultDigest(req.traceDigest, progName, optName, pruneTopN)
	jobCtx, jobCancel := context.WithCancel(context.Background())
	req.ctx = jobCtx

	j := &Job{
		id:      fmt.Sprintf("job-%d", s.nextID.Add(1)),
		status:  StatusQueued,
		digest:  req.digest,
		created: time.Now(),
		cancel:  jobCancel,
	}

	// Content-addressed fast path: an identical (trace, optimizer,
	// params) submission completes instantly from the cache.
	if res, ok := s.cache.get(req.digest); ok {
		j.cached = true
		j.complete(res)
		s.storeJob(j)
		s.metrics.incAccepted()
		s.metrics.incCacheHit()
		writeJSON(w, http.StatusOK, j.view())
		return
	}

	s.storeJob(j)
	accepted := s.pool.TrySubmit(func(poolCtx context.Context) {
		s.runJob(poolCtx, j, req)
	})
	if !accepted {
		s.dropJob(j.id)
		jobCancel()
		s.metrics.incRejected()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, errors.New("job queue full"))
		return
	}
	s.metrics.incAccepted()
	writeJSON(w, http.StatusAccepted, j.view())
}

// traceBody returns the reader holding the CLTR bytes, resolving
// multipart uploads without buffering the trace part. For multipart
// bodies, form fields named prog/opt/prune that appear before the
// "trace" part override empty query parameters.
func (s *Server) traceBody(w http.ResponseWriter, r *http.Request, progName, optName, pruneStr *string) (io.Reader, func(), error) {
	limited := http.MaxBytesReader(w, r.Body, s.cfg.MaxTraceBytes)
	cleanup := func() { limited.Close() }
	ct := r.Header.Get("Content-Type")
	mt, params, _ := mime.ParseMediaType(ct)
	if mt != "multipart/form-data" {
		return limited, cleanup, nil
	}
	boundary := params["boundary"]
	if boundary == "" {
		return nil, cleanup, errors.New("multipart body without boundary")
	}
	mr := multipart.NewReader(limited, boundary)
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			return nil, cleanup, errors.New(`multipart body has no "trace" part`)
		}
		if err != nil {
			return nil, cleanup, fmt.Errorf("reading multipart body: %w", err)
		}
		switch part.FormName() {
		case "trace":
			return part, cleanup, nil
		case "prog", "opt", "prune":
			val, err := io.ReadAll(io.LimitReader(part, 256))
			if err != nil {
				return nil, cleanup, fmt.Errorf("reading %s field: %w", part.FormName(), err)
			}
			switch part.FormName() {
			case "prog":
				setIfEmpty(progName, string(val))
			case "opt":
				setIfEmpty(optName, string(val))
			case "prune":
				setIfEmpty(pruneStr, string(val))
			}
		}
	}
}

func setIfEmpty(dst *string, v string) {
	if *dst == "" {
		*dst = v
	}
}

// badBodyStatus maps a body-read failure to 413 when the upload cap
// tripped, 400 otherwise.
func badBodyStatus(err error) int {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// ---- job execution ----

// runJob is the pool task: honor the job deadline (queue wait counts)
// and the job's own context (DELETE cancellation), run the
// optimization, publish the result to the cache.
func (s *Server) runJob(poolCtx context.Context, j *Job, req *jobRequest) {
	ctx, cancel := context.WithDeadline(poolCtx, req.deadline)
	defer cancel()
	// Propagate a DELETE arriving after the job started into the
	// pipeline context.
	stop := context.AfterFunc(req.ctx, cancel)
	defer stop()
	if err := ctx.Err(); err != nil {
		j.fail(fmt.Errorf("job expired before running: %w", err))
		s.metrics.incFailed()
		return
	}
	if !j.tryStart() {
		// Canceled while queued: the DELETE handler already counted it.
		return
	}
	start := time.Now()
	res, err := s.optimize(ctx, req)
	if err != nil {
		j.fail(err)
		s.metrics.incFailed()
		return
	}
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	s.cache.put(res)
	j.complete(res)
	s.metrics.incCompleted()
	s.metrics.observeLatency(req.opt.Name(), time.Since(start))
}

// runOptimize is the real pipeline: optimize the uploaded profile, then
// replay the same trace through the original and optimized layouts to
// report the simulated miss ratios before and after.
func (s *Server) runOptimize(ctx context.Context, req *jobRequest) (*Result, error) {
	opt := req.opt
	opt.PruneTopN = req.pruneTopN
	opt.Workers = s.cfg.OptWorkers
	opt.Arena = s.getArena()
	defer s.putArena(opt.Arena)
	prof := &core.Profile{Prog: req.prog, Blocks: req.trace}
	l, rep, err := opt.OptimizeCtx(ctx, prof)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("job deadline exceeded after optimization: %w", err)
	}
	cfg := cachesim.L1IDefault
	before := cachesim.SimulateSolo(cfg,
		layout.NewReplayer(layout.Original(req.prog), req.trace, cfg.LineBytes, false)).Stats.MissRatio()
	after := cachesim.SimulateSolo(cfg,
		layout.NewReplayer(l, req.trace, cfg.LineBytes, false)).Stats.MissRatio()
	return &Result{
		Digest:        req.digest,
		TraceDigest:   req.traceDigest,
		Prog:          req.progName,
		Optimizer:     req.opt.Name(),
		Report:        rep,
		MissBefore:    before,
		MissAfter:     after,
		MissReduction: stats.Reduction(before, after),
	}, nil
}

// ---- reads ----

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleCancel is DELETE /v1/jobs/{id}: cancel a still-queued job.
// Unknown IDs get 404; jobs that already started, finished, or were
// previously canceled get 409 — a running optimization is not torn
// down mid-flight, and a completed result is immutable.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if !j.cancelQueued(s.now()) {
		httpError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; only queued jobs can be canceled", id, j.statusNow()))
		return
	}
	s.metrics.incCanceled()
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	res, ok := s.cache.get(digest)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached layout %q", digest))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleOptimizers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"optimizers": core.OptimizerNames()})
}

// handleHealthz reports liveness, and — when the durable store's
// circuit breaker is open — "degraded": the daemon is serving from
// memory only and new results are not being persisted. Both states are
// 200: a degraded layoutd is alive and should not be restarted by an
// orchestrator.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.disk != nil && s.disk.State() == store.StateDegraded {
		io.WriteString(w, "degraded\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var sv *storeView
	if s.disk != nil {
		st := s.disk.Stats()
		sv = &storeView{
			ok:          st.State == store.StateOK,
			blobs:       st.Blobs,
			bytes:       st.Bytes,
			hits:        st.Hits,
			writes:      st.Writes,
			writeErrors: st.WriteErrors,
			dropped:     st.Dropped,
			evictions:   st.Evictions,
			quarantined: st.Quarantined,
			recoveries:  st.Recoveries,
		}
	}
	io.WriteString(w, s.metrics.render(s.pool.QueueDepth(), s.pool.Running(), s.JobsTracked(), sv))
}

// ---- helpers ----

func (s *Server) getArena() *core.Arena {
	if a, ok := s.arenas.Get().(*core.Arena); ok {
		return a
	}
	return &core.Arena{}
}

func (s *Server) putArena(a *core.Arena) { s.arenas.Put(a) }

func (s *Server) storeJob(j *Job) {
	s.mu.Lock()
	s.pruneJobsLocked(s.now())
	s.jobs[j.id] = j
	s.mu.Unlock()
}

// pruneJobsLocked enforces the completed-job retention bound: terminal
// jobs past JobTTL are dropped, and when the map still exceeds MaxJobs
// the oldest terminal jobs go first. Queued and running jobs are always
// kept — only their status record is subject to retention, and the
// result itself stays in the content-addressed cache either way.
func (s *Server) pruneJobsLocked(now time.Time) {
	for id, j := range s.jobs {
		if fin, terminal := j.terminal(); terminal && now.Sub(fin) > s.cfg.JobTTL {
			delete(s.jobs, id)
		}
	}
	if len(s.jobs) < s.cfg.MaxJobs {
		return
	}
	type finished struct {
		id  string
		fin time.Time
	}
	var term []finished
	for id, j := range s.jobs {
		if fin, terminal := j.terminal(); terminal {
			term = append(term, finished{id: id, fin: fin})
		}
	}
	sort.Slice(term, func(i, j int) bool { return term[i].fin.Before(term[j].fin) })
	for i := 0; i < len(term) && len(s.jobs) >= s.cfg.MaxJobs; i++ {
		delete(s.jobs, term[i].id)
	}
}

// JobsTracked reports the number of job-status records currently held
// (for tests and metrics).
func (s *Server) JobsTracked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

func (s *Server) dropJob(id string) {
	s.mu.Lock()
	delete(s.jobs, id)
	s.mu.Unlock()
}

// program generates (once) and returns the named suite program.
func (s *Server) program(name string) (*ir.Program, error) {
	s.mu.Lock()
	e, ok := s.progs[name]
	if !ok {
		e = &progEntry{}
		s.progs[name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.p, e.err = core.LoadProgram(name) })
	return e.p, e.err
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	msg := strings.TrimSpace(err.Error())
	writeJSON(w, code, map[string]string{"error": msg})
}
