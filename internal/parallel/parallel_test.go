package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 8, 64} {
		if got := Workers(n); got != n {
			t.Errorf("Workers(%d) = %d", n, got)
		}
	}
}

func TestForEachRunsEveryItem(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		var hits [n]atomic.Int32
		if err := ForEach(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		out, err := Map(workers, 40, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestFirstErrorIsLowestIndex: when several items fail, the reported
// error must be the one a serial loop would have hit first, regardless
// of scheduling.
func TestFirstErrorIsLowestIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for trial := 0; trial < 10; trial++ {
			err := ForEach(workers, 20, func(i int) error {
				if i%2 == 1 { // items 1, 3, 5, ... fail
					return fmt.Errorf("item %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "item 1" {
				t.Fatalf("workers=%d: err = %v, want item 1", workers, err)
			}
		}
	}
}

func TestErrorStopsSchedulingNewItems(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	err := ForEach(2, 1000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		// Give the pool a moment so cancellation is observable.
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if s := started.Load(); s == 1000 {
		t.Fatalf("all %d items started despite early error", s)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ForEachCtx(ctx, 2, 1000, func(ctx context.Context, i int) error {
		if i == 0 {
			cancel()
		}
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r := ran.Load(); r == 1000 {
		t.Fatal("cancellation did not stop the pool")
	}
}

func TestCompletedRunIgnoresLateCancel(t *testing.T) {
	// A context cancelled after every item completed must not turn a
	// successful run into an error (matching the serial path).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := ForEachCtx(ctx, 4, 16, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSerialPathIsInline(t *testing.T) {
	// Workers == 1 must execute on the calling goroutine in index order.
	var order []int
	if err := ForEach(1, 10, func(i int) error {
		order = append(order, i) // no synchronization: must be same goroutine
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v not sequential", order)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(4, 10, func(i int) (string, error) {
		if i >= 3 {
			return "", fmt.Errorf("fail %d", i)
		}
		return "ok", nil
	})
	if err == nil || err.Error() != "fail 3" {
		t.Fatalf("err = %v, want fail 3", err)
	}
}
