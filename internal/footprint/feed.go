package footprint

// CurveFeeder accumulates the single-pass statistics of the Xiang
// formula — first/last access times, the weighted reuse-time histogram,
// and the total footprint — over a trace arriving in chunks, so the
// average-footprint curve of a streamed upload is computed without ever
// materializing the trace. Finish replays NewCurveWorkers' closing
// sweeps over the accumulated tables, so the curve is bit-identical to
// the buffered computation: the pass accumulates in trace order (float
// addition order matters), and the closing sweeps see identical inputs.
//
// A CurveFeeder is not safe for concurrent use.
type CurveFeeder struct {
	weights []int32
	first   []int // -1 until the symbol's first access
	last    []int
	rt      []float64 // rt[t]: weight of reuses with reuse time t
	m       float64   // total (weighted) footprint so far
	n       int       // occurrences accepted so far
	maxSym  int32
}

// NewCurveFeeder prepares a streaming curve computation; weights may be
// nil for unit (symbol-count) footprints, exactly as in NewCurve.
func NewCurveFeeder(weights []int32) *CurveFeeder {
	return &CurveFeeder{weights: weights, maxSym: -1}
}

func (f *CurveFeeder) w(s int32) float64 {
	if f.weights == nil {
		return 1
	}
	return float64(f.weights[s])
}

// Feed appends one chunk of the trace. Chunk boundaries are irrelevant:
// feeding any split of a trace yields the same curve.
func (f *CurveFeeder) Feed(chunk []int32) {
	for _, s := range chunk {
		if int(s) >= len(f.first) {
			n := int(s) + 1
			if c := 2 * len(f.first); n < c {
				n = c
			}
			first := make([]int, n)
			copy(first, f.first)
			for i := len(f.first); i < n; i++ {
				first[i] = -1
			}
			f.first = first
			last := make([]int, n)
			copy(last, f.last)
			f.last = last
		}
		if s > f.maxSym {
			f.maxSym = s
		}
		t := f.n
		if f.first[s] < 0 {
			f.first[s] = t
			f.m += f.w(s)
		} else {
			d := t - f.last[s]
			if d >= len(f.rt) {
				n := d + 1
				if c := 2 * len(f.rt); n < c {
					n = c
				}
				rt := make([]float64, n)
				copy(rt, f.rt)
				f.rt = rt
			}
			f.rt[d] += f.w(s)
		}
		f.last[s] = t
		f.n++
	}
}

// N returns the number of occurrences accepted so far.
func (f *CurveFeeder) N() int { return f.n }

// Finish runs the closing sweeps of the Xiang formula over the
// accumulated tables and returns the curve — bit-identical to
// NewCurveWorkers over the concatenated input with the same workers
// setting. The feeder must not be reused afterwards.
func (f *CurveFeeder) Finish(workers int) *Curve {
	n := f.n
	c := &Curve{FP: make([]float64, n+1), N: n}
	if n == 0 {
		return c
	}
	c.Total = f.m
	finishCurve(c, f.m, f.maxSym, f.first, f.last, f.rt, f.w, workers)
	return c
}
