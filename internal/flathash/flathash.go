// Package flathash provides the open-addressed hash tables backing the
// analysis hot paths. The affinity and TRG kernels accumulate statistics
// keyed by packed symbol pairs (two int32 symbols in one int64); Go's
// built-in map costs a hashed lookup, possible bucket chase and write
// barrier per increment, which dominated both kernels' profiles. The
// tables here store key and value (or slab offset) side by side in one
// flat entry array with linear probing, so an increment is one
// multiply-shift hash, a probe over contiguous 16-byte entries — key and
// payload on the same cache line — and a plain store. A cleared table
// reuses its backing arrays, so steady-state accumulation allocates
// nothing.
//
// Keys are packed pairs of *distinct* symbols (pairKey(a, b) with
// a != b), which makes 0 — the packing of the impossible pair (0, 0) —
// a free empty-slot sentinel. The tables reject key 0 by documented
// contract rather than a branch per operation.
//
// None of the types are safe for concurrent use; the sharded analyses
// give each worker its own table and merge afterwards.
package flathash

// hash spreads a packed pair key over the table. Fibonacci hashing
// (multiplication by the 64-bit golden ratio, taking the top bits) is
// enough here: keys are already well-mixed pairs and the tables are
// power-of-two sized.
func hash(key int64, shift uint) int {
	return int((uint64(key) * 0x9E3779B97F4A7C15) >> shift)
}

const (
	// minCapacity keeps tiny tables from resizing several times while
	// they warm up.
	minCapacity = 64
	// maxLoadNum/maxLoadDen is the 13/16 (~0.8) load factor at which the
	// tables double. Linear probing degrades sharply past ~0.85.
	maxLoadNum = 13
	maxLoadDen = 16
)

// sumEntry is one Sum64 slot: key and accumulator share a cache line.
type sumEntry struct {
	key int64
	val int64
}

// Sum64 maps packed pair keys to int64 accumulators. It is the edge
// table of the TRG construction: Add is the per-interleaving increment.
// The zero value is ready to use.
type Sum64 struct {
	entries []sumEntry
	n       int
	shift   uint
}

// Len returns the number of distinct keys.
func (t *Sum64) Len() int { return t.n }

// Reset clears the table, keeping capacity for reuse.
func (t *Sum64) Reset() {
	for i := range t.entries {
		t.entries[i] = sumEntry{}
	}
	t.n = 0
}

// Add accumulates delta into the key's value. key must be non-zero.
func (t *Sum64) Add(key int64, delta int64) {
	if t.n*maxLoadDen >= len(t.entries)*maxLoadNum {
		t.grow()
	}
	i := hash(key, t.shift)
	mask := len(t.entries) - 1
	for {
		e := &t.entries[i]
		if e.key == key {
			e.val += delta
			return
		}
		if e.key == 0 {
			e.key = key
			e.val = delta
			t.n++
			return
		}
		i = (i + 1) & mask
	}
}

// Set stores val as the key's value, replacing any prior value. key
// must be non-zero. Storing 0 is allowed but indistinguishable from an
// absent key for Get.
func (t *Sum64) Set(key int64, val int64) {
	if t.n*maxLoadDen >= len(t.entries)*maxLoadNum {
		t.grow()
	}
	i := hash(key, t.shift)
	mask := len(t.entries) - 1
	for {
		e := &t.entries[i]
		if e.key == key {
			e.val = val
			return
		}
		if e.key == 0 {
			e.key = key
			e.val = val
			t.n++
			return
		}
		i = (i + 1) & mask
	}
}

// Get returns the key's value, 0 if absent. key must be non-zero.
func (t *Sum64) Get(key int64) int64 {
	if t.n == 0 {
		return 0
	}
	i := hash(key, t.shift)
	mask := len(t.entries) - 1
	for {
		e := &t.entries[i]
		if e.key == key {
			return e.val
		}
		if e.key == 0 {
			return 0
		}
		i = (i + 1) & mask
	}
}

// ForEach visits every (key, value) pair in unspecified order. The
// callers' downstream steps (edge sorting, heap ordered by a total
// order) are insertion-order independent, matching the Go map iteration
// this replaces.
func (t *Sum64) ForEach(f func(key int64, val int64)) {
	for i := range t.entries {
		if t.entries[i].key != 0 {
			f(t.entries[i].key, t.entries[i].val)
		}
	}
}

func (t *Sum64) grow() {
	old := t.entries
	n := 2 * len(old)
	if n < minCapacity {
		n = minCapacity
	}
	t.entries = make([]sumEntry, n)
	t.shift = shiftFor(n)
	mask := n - 1
	for j := range old {
		if old[j].key == 0 {
			continue
		}
		i := hash(old[j].key, t.shift)
		for t.entries[i].key != 0 {
			i = (i + 1) & mask
		}
		t.entries[i] = old[j]
	}
}

// slabEntry is one Slab32 slot: key and slab offset share a cache line.
type slabEntry struct {
	key int64
	off int32
}

// Slab32 maps packed pair keys to fixed-stride slabs of uint32 counters,
// all living in one backing slice. It is the pair-histogram table of the
// affinity analysis: each pair owns 2*(wmax+1) counters indexed by
// coverage depth and direction, and the per-occurrence update (Inc) is a
// probe plus one counter increment. Stride is fixed at Init time; the
// zero value needs Init before use.
type Slab32 struct {
	entries []slabEntry
	slab    []uint32
	n       int
	shift   uint
	// stride is the per-key counter count.
	stride int
}

// Init clears the table and sets the per-key counter stride, keeping
// backing capacity for reuse.
func (t *Slab32) Init(stride int) {
	t.stride = stride
	t.slab = t.slab[:0]
	t.n = 0
	for i := range t.entries {
		t.entries[i] = slabEntry{}
	}
}

// Len returns the number of distinct keys.
func (t *Slab32) Len() int { return t.n }

// Stride returns the per-key counter count set by Init.
func (t *Slab32) Stride() int { return t.stride }

// findOrInsert returns the slab offset of the key's counter block,
// inserting a zeroed block if absent.
func (t *Slab32) findOrInsert(key int64) int32 {
	if t.n*maxLoadDen >= len(t.entries)*maxLoadNum {
		t.grow()
	}
	i := hash(key, t.shift)
	mask := len(t.entries) - 1
	for {
		e := &t.entries[i]
		if e.key == key {
			return e.off
		}
		if e.key == 0 {
			o := len(t.slab)
			t.slab = appendZeros(t.slab, t.stride)
			e.key = key
			e.off = int32(o)
			t.n++
			return int32(o)
		}
		i = (i + 1) & mask
	}
}

// Inc increments counter slot of the key's block, inserting a zeroed
// block if absent: the kernels' one-call accumulate. key must be
// non-zero; slot must be < stride.
func (t *Slab32) Inc(key int64, slot int) {
	t.slab[int(t.findOrInsert(key))+slot]++
}

// Counters returns the key's counter block, inserting a zeroed block if
// absent. The returned slice aliases the slab and is invalidated by the
// next insertion. key must be non-zero.
func (t *Slab32) Counters(key int64) []uint32 {
	o := int(t.findOrInsert(key))
	return t.slab[o : o+t.stride]
}

// Lookup returns the key's counter block or nil if absent, without
// inserting. key must be non-zero.
func (t *Slab32) Lookup(key int64) []uint32 {
	if t.n == 0 {
		return nil
	}
	i := hash(key, t.shift)
	mask := len(t.entries) - 1
	for {
		e := &t.entries[i]
		if e.key == key {
			o := int(e.off)
			return t.slab[o : o+t.stride]
		}
		if e.key == 0 {
			return nil
		}
		i = (i + 1) & mask
	}
}

// ForEach visits every (key, counter block) pair in unspecified order.
// The block aliases the slab; callers must not retain it across
// insertions.
func (t *Slab32) ForEach(f func(key int64, counts []uint32)) {
	for i := range t.entries {
		if t.entries[i].key != 0 {
			o := int(t.entries[i].off)
			f(t.entries[i].key, t.slab[o:o+t.stride])
		}
	}
}

// MergeFrom adds src's counters into t slab-to-slab: for every key in
// src, the counter blocks add elementwise. Addition commutes, so merging
// shards in any order yields identical tables. Strides must match.
func (t *Slab32) MergeFrom(src *Slab32) {
	for i := range src.entries {
		if src.entries[i].key == 0 {
			continue
		}
		so := int(src.entries[i].off)
		counts := src.slab[so : so+src.stride]
		do := int(t.findOrInsert(src.entries[i].key))
		dst := t.slab[do : do+t.stride]
		for d, c := range counts {
			dst[d] += c
		}
	}
}

func (t *Slab32) grow() {
	old := t.entries
	n := 2 * len(old)
	if n < minCapacity {
		n = minCapacity
	}
	t.entries = make([]slabEntry, n)
	t.shift = shiftFor(n)
	mask := n - 1
	for j := range old {
		if old[j].key == 0 {
			continue
		}
		i := hash(old[j].key, t.shift)
		for t.entries[i].key != 0 {
			i = (i + 1) & mask
		}
		t.entries[i] = old[j]
	}
}

// shiftFor returns the top-bits shift selecting log2(n) bits.
func shiftFor(n int) uint {
	bits := uint(0)
	for 1<<bits < n {
		bits++
	}
	return 64 - bits
}

// appendZeros extends s by n zeroed elements. Reused slabs keep their
// capacity, so steady-state growth is a reslice, not an allocation.
func appendZeros(s []uint32, n int) []uint32 {
	if len(s)+n <= cap(s) {
		t := s[len(s) : len(s)+n]
		for i := range t {
			t[i] = 0
		}
		return s[:len(s)+n]
	}
	return append(s, make([]uint32, n)...)
}
