package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// File format: the instrumentation phase of the paper's system records
// the block/function trace "in a file" together with a mapping file. The
// format here is a small self-describing binary container:
//
//	magic "CLTR" | version u8 | count uvarint | deltas (zig-zag varint)
//
// Symbols are delta-encoded because consecutive block IDs in real traces
// are strongly clustered, which makes the common case one byte per
// occurrence.

const (
	fileMagic   = "CLTR"
	fileVersion = 1
)

// WriteTo writes the trace in the binary container format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.WriteString(fileMagic)
	written += int64(n)
	if err != nil {
		return written, err
	}
	if err := bw.WriteByte(fileVersion); err != nil {
		return written, err
	}
	written++
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], uint64(len(t.Syms)))
	n, err = bw.Write(buf[:k])
	written += int64(n)
	if err != nil {
		return written, err
	}
	prev := int64(0)
	for _, s := range t.Syms {
		k := binary.PutVarint(buf[:], int64(s)-prev)
		n, err = bw.Write(buf[:k])
		written += int64(n)
		if err != nil {
			return written, err
		}
		prev = int64(s)
	}
	return written, bw.Flush()
}

// ReadFrom parses a trace written by WriteTo.
func ReadFrom(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxCount = 1 << 31
	if count > maxCount {
		return nil, fmt.Errorf("trace: count %d too large", count)
	}
	syms := make([]int32, count)
	prev := int64(0)
	for i := range syms {
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading occurrence %d: %w", i, err)
		}
		prev += d
		if prev < 0 || prev > 1<<30 {
			return nil, fmt.Errorf("trace: occurrence %d decodes to invalid symbol %d", i, prev)
		}
		syms[i] = int32(prev)
	}
	return &Trace{Syms: syms}, nil
}
