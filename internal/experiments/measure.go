package experiments

import (
	"codelayout/internal/cachesim"
	"codelayout/internal/counters"
	"codelayout/internal/cpu"
)

// The harness measures every configuration along the paper's two paths:
//
//   - the "hardware" path (HW*): the cpu package's timed SMT core with
//     next-line prefetching, read out through PAPI-style counters — the
//     analogue of running on the Xeon and reading performance counters;
//   - the "simulated" path (Sim*): the Pin-style plain LRU instruction
//     cache simulation of cachesim, no prefetch, no timing.
//
// The paper observes that hardware-counted miss reductions are smaller
// than simulated ones (prefetching and overlap hide part of the
// benefit); keeping both paths reproduces that.

// HWSoloResult is a timed solo run.
type HWSoloResult struct {
	Thread   cpu.ThreadResult
	Counters *counters.Set
}

// HWSolo times one program alone on the core.
func (b *Bench) HWSolo(layoutName string) (HWSoloResult, error) {
	params := cpu.DefaultParams()
	r, err := b.Replayer(layoutName, params.L1I.LineBytes, false)
	if err != nil {
		return HWSoloResult{}, err
	}
	tr := cpu.RunSolo(params, cpu.ThreadSpec{Replayer: r, DataCPI: b.Prog.DataCPI})
	return HWSoloResult{Thread: tr, Counters: counters.FromThread(tr)}, nil
}

// HWCorunResult is a timed co-run where the primary runs to completion
// against a wrapping peer.
type HWCorunResult struct {
	Primary  cpu.ThreadResult
	Peer     cpu.ThreadResult
	Counters *counters.Set // primary's counters
}

// HWCorunTimed times primary (with the given layout) co-running against
// peer (with peerLayout); the peer wraps to provide interference for the
// primary's whole execution — the Table II / Figure 6 methodology.
func HWCorunTimed(primary *Bench, layoutName string, peer *Bench, peerLayout string) (HWCorunResult, error) {
	params := cpu.DefaultParams()
	pr, err := primary.Replayer(layoutName, params.L1I.LineBytes, false)
	if err != nil {
		return HWCorunResult{}, err
	}
	er, err := peer.Replayer(peerLayout, params.L1I.LineBytes, true)
	if err != nil {
		return HWCorunResult{}, err
	}
	res := cpu.RunCorunTimed(params,
		cpu.ThreadSpec{Replayer: pr, DataCPI: primary.Prog.DataCPI},
		cpu.ThreadSpec{Replayer: er, DataCPI: peer.Prog.DataCPI})
	return HWCorunResult{
		Primary:  res.Threads[0],
		Peer:     res.Threads[1],
		Counters: counters.FromThread(res.Threads[0]),
	}, nil
}

// HWCorunBoth runs both programs once to completion on the SMT core and
// returns the makespan — the Figure 7 throughput methodology.
func HWCorunBoth(a *Bench, aLayout string, b *Bench, bLayout string) (cpu.Result, error) {
	params := cpu.DefaultParams()
	ar, err := a.Replayer(aLayout, params.L1I.LineBytes, false)
	if err != nil {
		return cpu.Result{}, err
	}
	br, err := b.Replayer(bLayout, params.L1I.LineBytes, false)
	if err != nil {
		return cpu.Result{}, err
	}
	return cpu.RunCorun(params,
		cpu.ThreadSpec{Replayer: ar, DataCPI: a.Prog.DataCPI},
		cpu.ThreadSpec{Replayer: br, DataCPI: b.Prog.DataCPI}), nil
}

// SimSolo runs the Pin-style solo instruction cache simulation and
// returns the miss ratio.
func (b *Bench) SimSolo(layoutName string) (float64, error) {
	cfg := cachesim.L1IDefault
	r, err := b.Replayer(layoutName, cfg.LineBytes, false)
	if err != nil {
		return 0, err
	}
	res := cachesim.SimulateSolo(cfg, r)
	return res.Stats.MissRatio(), nil
}

// SimCorun runs the Pin-style shared-cache co-run simulation and
// returns the primary's miss ratio.
func SimCorun(primary *Bench, layoutName string, peer *Bench, peerLayout string) (float64, error) {
	cfg := cachesim.L1IDefault
	pr, err := primary.Replayer(layoutName, cfg.LineBytes, false)
	if err != nil {
		return 0, err
	}
	er, err := peer.Replayer(peerLayout, cfg.LineBytes, true)
	if err != nil {
		return 0, err
	}
	res := cachesim.SimulateCorun(cfg, pr, er)
	return res.PerThread[0].MissRatio(), nil
}
