package layout

import (
	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// Replayer turns an executed basic-block trace into the instruction
// fetch stream of a concrete layout: for each block occurrence it emits
// the cache lines covering the block's address range (plus the entry
// stub's line on calls into stub-carrying layouts). Replaying the same
// block trace through two layouts is exactly how the paper compares an
// optimized binary against the original — the executed blocks are
// identical, only their addresses differ.
type Replayer struct {
	l         *Layout
	t         *trace.Trace
	lineBytes int64
	pos       int
	// Wrap restarts the trace when exhausted, so a co-run peer keeps
	// generating interference until the primary program finishes (the
	// usual co-run measurement methodology).
	wrap bool
	laps int
	// isCall[b] marks blocks that end in a call; the callee's entry
	// fetch then goes through the stub.
	prev ir.BlockID
}

// NewReplayer creates a replayer over the given block trace.
func NewReplayer(l *Layout, t *trace.Trace, lineBytes int, wrap bool) *Replayer {
	return &Replayer{l: l, t: t, lineBytes: int64(lineBytes), wrap: wrap, prev: ir.NoBlock}
}

// Done reports whether a non-wrapping replayer has exhausted its trace.
func (r *Replayer) Done() bool { return !r.wrap && r.pos >= r.t.Len() }

// Laps returns how many times a wrapping replayer restarted the trace.
func (r *Replayer) Laps() int { return r.laps }

// Pos returns the number of block occurrences consumed in the current
// lap.
func (r *Replayer) Pos() int { return r.pos }

// Next replays one block occurrence: it calls emit for every cache line
// fetched and returns the fetched instruction bytes. ok is false when a
// non-wrapping replayer is exhausted.
func (r *Replayer) Next(emit func(line int64)) (bytes int32, ok bool) {
	if r.pos >= r.t.Len() {
		if !r.wrap || r.t.Len() == 0 {
			return 0, false
		}
		r.pos = 0
		r.laps++
		r.prev = ir.NoBlock
	}
	b := ir.BlockID(r.t.Syms[r.pos])
	r.pos++

	blk := r.l.Prog.Blocks[b]
	// A call into a stub-carrying layout fetches the stub jump first.
	if r.l.HasStubs() && r.prev != ir.NoBlock {
		if c, isCall := r.l.Prog.Blocks[r.prev].Term.(ir.Call); isCall && c.Callee == blk.Fn && r.l.Prog.Entry(blk.Fn) == b {
			stub := r.l.StubAddr[blk.Fn]
			first := stub / r.lineBytes
			last := (stub + JumpBytes - 1) / r.lineBytes
			for ln := first; ln <= last; ln++ {
				emit(ln)
			}
			bytes += JumpBytes
		}
	}
	addr := r.l.Addr[b]
	size := int64(r.effectiveSize(b))
	first := addr / r.lineBytes
	last := (addr + size - 1) / r.lineBytes
	for ln := first; ln <= last; ln++ {
		emit(ln)
	}
	bytes += int32(size)
	r.prev = b
	return bytes, true
}

// effectiveSize returns the bytes this occurrence of block b fetches and
// executes. A layout-appended jump (Size[b] > Block.Size) only executes
// on the path it patches: for a Branch it covers the displaced
// fall-through, so it runs only when the trace actually goes to the
// fall successor; for a Call it forwards the return point to the moved
// continuation, so it runs on every execution.
func (r *Replayer) effectiveSize(b ir.BlockID) int32 {
	blk := r.l.Prog.Blocks[b]
	full := r.l.Size[b]
	if full == blk.Size {
		return full
	}
	br, isBranch := blk.Term.(ir.Branch)
	if !isBranch {
		return full
	}
	if next := r.peek(); next == br.Fall {
		return full
	}
	return blk.Size
}

// peek returns the next block in the trace (accounting for wrap), or
// ir.NoBlock at a non-wrapping end.
func (r *Replayer) peek() ir.BlockID {
	if r.pos < r.t.Len() {
		return ir.BlockID(r.t.Syms[r.pos])
	}
	if r.wrap && r.t.Len() > 0 {
		return ir.BlockID(r.t.Syms[0])
	}
	return ir.NoBlock
}
