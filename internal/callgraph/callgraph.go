// Package callgraph implements the classic call-graph-based function
// ordering of Pettis & Hansen ("Profile guided code positioning", PLDI
// 1990) as a comparison baseline for the paper's trace-based models.
//
// The paper's related work situates reference affinity and TRG against
// the procedure-placement tradition; Pettis-Hansen is that tradition's
// canonical representative: build a dynamic weighted call graph, then
// repeatedly merge the two nodes joined by the heaviest edge, keeping
// merged chains in caller-callee order. Unlike the affinity and TRG
// models, it only sees call pairs — no windowed co-occurrence — which is
// exactly the contrast the evaluation's comparison experiment
// (experiments.Comparison) quantifies.
package callgraph

import (
	"container/heap"
	"sort"

	"codelayout/internal/ir"
	"codelayout/internal/trace"
)

// Graph is a weighted dynamic call graph: edge (caller, callee) counts
// observed calls.
type Graph struct {
	weights map[int64]int64
	nodes   []int32
	seen    map[int32]bool
}

// NewGraph returns an empty call graph.
func NewGraph() *Graph {
	return &Graph{weights: make(map[int64]int64), seen: make(map[int32]bool)}
}

func pairKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(int32(b))&0xffffffff
}

// AddNode registers a function even if it never calls or is called.
func (g *Graph) AddNode(f int32) {
	if !g.seen[f] {
		g.seen[f] = true
		g.nodes = append(g.nodes, f)
	}
}

// AddCall records one dynamic call from caller to callee. Pettis-Hansen
// treats the graph as undirected for placement purposes.
func (g *Graph) AddCall(caller, callee int32) {
	if caller == callee {
		return
	}
	g.AddNode(caller)
	g.AddNode(callee)
	g.weights[pairKey(caller, callee)]++
}

// Weight returns the call count between two functions.
func (g *Graph) Weight(a, b int32) int64 { return g.weights[pairKey(a, b)] }

// Nodes returns the registered functions in first-seen order.
func (g *Graph) Nodes() []int32 { return g.nodes }

// Build constructs the dynamic call graph of a program run from its
// basic-block trace: a call is observed whenever a block ending in an
// ir.Call is followed by the callee's entry block.
func Build(p *ir.Program, blocks *trace.Trace) *Graph {
	g := NewGraph()
	for _, f := range p.Funcs {
		g.AddNode(int32(f.ID))
	}
	syms := blocks.Syms
	for i := 0; i+1 < len(syms); i++ {
		blk := p.Blocks[syms[i]]
		call, ok := blk.Term.(ir.Call)
		if !ok {
			continue
		}
		next := p.Blocks[syms[i+1]]
		if next.Fn == call.Callee && p.Entry(call.Callee) == next.ID {
			g.AddCall(int32(blk.Fn), int32(call.Callee))
		}
	}
	return g
}

// chain is a merged sequence of functions kept in placement order.
type chain struct {
	funcs []int32
}

// Order runs Pettis-Hansen bottom-up merging and returns the function
// placement order. Functions never observed in the graph keep their
// registration order at the end.
func (g *Graph) Order() []int32 {
	// chainOf maps a function to its current chain; merging is
	// union-find-like but keeps explicit member order.
	chains := make(map[int32]*chain)
	for _, n := range g.nodes {
		chains[n] = &chain{funcs: []int32{n}}
	}

	pq := &edgeHeap{}
	for k, w := range g.weights {
		if w > 0 {
			heap.Push(pq, edge{w: w, a: int32(k >> 32), b: int32(k & 0xffffffff)})
		}
	}

	for pq.Len() > 0 {
		e := heap.Pop(pq).(edge)
		ca, cb := chains[e.a], chains[e.b]
		if ca == cb {
			continue
		}
		// Pettis-Hansen joins the chains at their closest ends; this
		// implementation appends the lighter chain after the heavier
		// one, reversing it when the edge endpoints would otherwise be
		// separated.
		merged := joinChains(ca, cb, e.a, e.b)
		for _, f := range merged.funcs {
			chains[f] = merged
		}
	}

	// Emit chains by the first occurrence of any member in node order.
	emitted := make(map[*chain]bool)
	out := make([]int32, 0, len(g.nodes))
	for _, n := range g.nodes {
		c := chains[n]
		if emitted[c] {
			continue
		}
		emitted[c] = true
		out = append(out, c.funcs...)
	}
	return out
}

// joinChains concatenates the chains of a and b so that a and b end up
// as close as possible: the end of one chain meets the start of the
// other, reversing sides as needed.
func joinChains(ca, cb *chain, a, b int32) *chain {
	// Ensure ca is the longer chain (stable placement of hot spines).
	if len(cb.funcs) > len(ca.funcs) {
		ca, cb = cb, ca
		a, b = b, a
	}
	aAtEnd := ca.funcs[len(ca.funcs)-1] == a
	bAtStart := cb.funcs[0] == b
	var left, right []int32
	switch {
	case aAtEnd && bAtStart:
		left, right = ca.funcs, cb.funcs
	case aAtEnd && !bAtStart:
		left, right = ca.funcs, reversed(cb.funcs)
	case !aAtEnd && bAtStart:
		// a is at (or near) the start of ca: prepend b's chain reversed.
		left, right = reversed(cb.funcs), ca.funcs
	default:
		left, right = cb.funcs, ca.funcs
	}
	out := make([]int32, 0, len(left)+len(right))
	out = append(out, left...)
	out = append(out, right...)
	return &chain{funcs: out}
}

func reversed(xs []int32) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[len(xs)-1-i] = x
	}
	return out
}

// edge is a weighted call-graph edge.
type edge struct {
	w    int64
	a, b int32
}

// edgeHeap orders edges by descending weight, tie-breaking by node IDs
// for determinism.
type edgeHeap []edge

func (h edgeHeap) Len() int { return len(h) }
func (h edgeHeap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w > h[j].w
	}
	ki, kj := pairKey(h[i].a, h[i].b), pairKey(h[j].a, h[j].b)
	return ki < kj
}
func (h edgeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *edgeHeap) Push(x interface{}) { *h = append(*h, x.(edge)) }
func (h *edgeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Edges returns the edges sorted by descending weight (for diagnostics
// and tests).
func (g *Graph) Edges() [][3]int64 {
	out := make([][3]int64, 0, len(g.weights))
	for k, w := range g.weights {
		out = append(out, [3]int64{int64(int32(k >> 32)), int64(int32(k & 0xffffffff)), w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][2] != out[j][2] {
			return out[i][2] > out[j][2]
		}
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
