package ir

import (
	"fmt"
	"strings"
)

// Dump renders the program in a readable assembly-like listing, mostly
// for debugging generated programs and for the examples.
func (p *Program) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s  (%d funcs, %d blocks, %d bytes, %d globals)\n",
		p.Name, len(p.Funcs), len(p.Blocks), p.StaticBytes(), p.NumGlobals)
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s:\n", f.Name)
		for _, id := range f.Blocks {
			b := p.Blocks[id]
			fmt.Fprintf(&sb, "  %-12s #%-5d %4dB", b.Name, b.ID, b.Size)
			for _, e := range b.Effects {
				sb.WriteString(" " + effectString(e))
			}
			sb.WriteString("  " + p.termString(b.Term) + "\n")
		}
	}
	return sb.String()
}

func effectString(e Effect) string {
	switch t := e.(type) {
	case SetGlobal:
		return fmt.Sprintf("g%d=%d", t.Reg, t.Val)
	case AddGlobal:
		return fmt.Sprintf("g%d+=%d", t.Reg, t.Delta)
	case SetGlobalChoice:
		return fmt.Sprintf("g%d=choice%v", t.Reg, t.Choices)
	default:
		return fmt.Sprintf("%T", e)
	}
}

func (p *Program) termString(t Terminator) string {
	name := func(id BlockID) string { return p.Blocks[id].Name }
	switch tt := t.(type) {
	case Jump:
		return "jmp " + name(tt.Target)
	case Branch:
		return fmt.Sprintf("br %s ? %s : %s", condString(tt.Cond), name(tt.Taken), name(tt.Fall))
	case Call:
		return fmt.Sprintf("call %s; -> %s", p.Funcs[tt.Callee].Name, name(tt.Next))
	case Return:
		return "ret"
	case Exit:
		return "exit"
	default:
		return fmt.Sprintf("%T", t)
	}
}

func condString(c Cond) string {
	switch t := c.(type) {
	case Always:
		return "true"
	case Prob:
		return fmt.Sprintf("p=%.2f", t.P)
	case GlobalEq:
		return fmt.Sprintf("g%d==%d", t.Reg, t.Val)
	case GlobalLT:
		return fmt.Sprintf("g%d<%d", t.Reg, t.Val)
	case Counter:
		return fmt.Sprintf("loop x%d", t.Trips)
	default:
		return fmt.Sprintf("%T", c)
	}
}
