package obs

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, text string) *Exposition {
	t.Helper()
	exp, err := ParsePrometheusText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return exp
}

func TestParseSimple(t *testing.T) {
	exp := parseOK(t, `# HELP a_total A.
# TYPE a_total counter
a_total 5
# HELP b B.
# TYPE b gauge
b{env="prod"} -3
`)
	if len(exp.Series) != 2 {
		t.Fatalf("series = %d", len(exp.Series))
	}
	if exp.Series[0].Name != "a_total" || exp.Series[0].Value != 5 {
		t.Fatalf("s0 = %+v", exp.Series[0])
	}
	if exp.Series[1].Labels["env"] != "prod" || exp.Series[1].Value != -3 {
		t.Fatalf("s1 = %+v", exp.Series[1])
	}
	if exp.Types["a_total"] != "counter" || exp.Helps["b"] != "B." {
		t.Fatalf("meta: types=%v helps=%v", exp.Types, exp.Helps)
	}
}

func TestParseEscapedLabelValue(t *testing.T) {
	exp := parseOK(t, "x{k=\"a\\\"b\\\\c\"} 1\n")
	if exp.Series[0].Labels["k"] != `a"b\c` {
		t.Fatalf("label = %q", exp.Series[0].Labels["k"])
	}
}

func TestParseSpecialValues(t *testing.T) {
	exp := parseOK(t, "x_bucket{le=\"+Inf\"} 3\n")
	if exp.Series[0].Labels["le"] != "+Inf" {
		t.Fatalf("le = %q", exp.Series[0].Labels["le"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"duplicate series":   "a 1\na 2\n",
		"duplicate labeled":  "a{k=\"v\"} 1\na{k=\"v\"} 2\n",
		"duplicate TYPE":     "# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate HELP":     "# HELP a x\n# HELP a y\na 1\n",
		"TYPE after sample":  "a 1\n# TYPE a counter\n",
		"bad type":           "# TYPE a widget\na 1\n",
		"bad value":          "a notanumber\n",
		"trailing garbage":   "a 1 2\n",
		"unterminated label": "a{k=\"v 1\n",
		"label no quotes":    "a{k=v} 1\n",
		"duplicate label":    "a{k=\"1\",k=\"2\"} 1\n",
		"bad metric name":    "9a 1\n",
		"no value":           "a_total\n",
	}
	for name, text := range cases {
		if _, err := ParsePrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parse accepted %q", name, text)
		}
	}
}

func TestLintHistogramRules(t *testing.T) {
	good := `# HELP h H.
# TYPE h histogram
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 3
h_sum 4.5
h_count 3
`
	if _, err := LintPrometheusText(strings.NewReader(good)); err != nil {
		t.Fatalf("good histogram rejected: %v", err)
	}

	cases := map[string]string{
		"no TYPE": "a 1\n",
		"no HELP": "# TYPE a counter\na 1\n",
		"non-cumulative buckets": `# HELP h H.
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
`,
		"missing +Inf": `# HELP h H.
# TYPE h histogram
h_bucket{le="1"} 2
h_sum 1
h_count 2
`,
		"inf bucket != count": `# HELP h H.
# TYPE h histogram
h_bucket{le="+Inf"} 2
h_sum 1
h_count 3
`,
		"missing _sum": `# HELP h H.
# TYPE h histogram
h_bucket{le="+Inf"} 2
h_count 2
`,
		"missing _count": `# HELP h H.
# TYPE h histogram
h_bucket{le="+Inf"} 2
h_sum 1
`,
		"bare histogram sample": `# HELP h H.
# TYPE h histogram
h 2
`,
		"bucket missing le": `# HELP h H.
# TYPE h histogram
h_bucket 2
h_bucket{le="+Inf"} 2
h_sum 1
h_count 2
`,
	}
	for name, text := range cases {
		if _, err := LintPrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted\n%s", name, text)
		}
	}
}

func TestLintHistogramPerLabelSeries(t *testing.T) {
	// Two labeled histogram series; each must be checked independently.
	text := `# HELP h H.
# TYPE h histogram
h_bucket{phase="a",le="1"} 1
h_bucket{phase="a",le="+Inf"} 1
h_sum{phase="a"} 0.5
h_count{phase="a"} 1
h_bucket{phase="b",le="1"} 0
h_bucket{phase="b",le="+Inf"} 2
h_sum{phase="b"} 9
h_count{phase="b"} 2
`
	if _, err := LintPrometheusText(strings.NewReader(text)); err != nil {
		t.Fatalf("labeled histograms rejected: %v", err)
	}
	bad := strings.Replace(text, `h_count{phase="b"} 2`, `h_count{phase="b"} 7`, 1)
	if _, err := LintPrometheusText(strings.NewReader(bad)); err == nil {
		t.Fatal("mismatched labeled histogram accepted")
	}
}
