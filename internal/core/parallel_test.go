package core

import (
	"math/rand"
	"reflect"
	"testing"

	"codelayout/internal/progen"
)

// TestOptimizeWorkersDeterministic: the Workers knob is an execution
// detail — for random programs, every optimizer must emit the exact same
// layout and report whether the analysis runs serially or across 8
// workers (the parallel affinity and TRG paths are byte-identical by
// construction; this is the end-to-end check).
func TestOptimizeWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3; i++ {
		spec := randomSpec(rng, i)
		p, err := progen.Generate(spec)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		prof, err := ProfileProgram(p, TrainSeed)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		for _, o := range AllWithBaselines() {
			o.Workers = 1
			serialL, serialRep, err := o.Optimize(prof)
			if err != nil {
				t.Fatalf("case %d %s: %v", i, o.Name(), err)
			}
			for _, workers := range []int{0, 8} {
				o.Workers = workers
				l, rep, err := o.Optimize(prof)
				if err != nil {
					t.Fatalf("case %d %s workers=%d: %v", i, o.Name(), workers, err)
				}
				if !reflect.DeepEqual(rep, serialRep) {
					t.Fatalf("case %d %s workers=%d: report %+v != serial %+v",
						i, o.Name(), workers, rep, serialRep)
				}
				if !reflect.DeepEqual(l.Addr, serialL.Addr) {
					t.Fatalf("case %d %s workers=%d: block addresses differ", i, o.Name(), workers)
				}
				if !reflect.DeepEqual(l.Order(), serialL.Order()) {
					t.Fatalf("case %d %s workers=%d: block order differs", i, o.Name(), workers)
				}
				if !reflect.DeepEqual(l.StubAddr, serialL.StubAddr) {
					t.Fatalf("case %d %s workers=%d: stub table differs", i, o.Name(), workers)
				}
				if l.TotalBytes != serialL.TotalBytes {
					t.Fatalf("case %d %s workers=%d: total size %d != %d",
						i, o.Name(), workers, l.TotalBytes, serialL.TotalBytes)
				}
			}
		}
	}
}
