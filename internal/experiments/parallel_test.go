package experiments

import (
	"reflect"
	"testing"
)

// TestExperimentsWorkersDeterministic: every experiment driver fans its
// measurement jobs out across workers but must assemble results in the
// serial loop order — a workspace pinned to Workers=1 and one running 8
// workers must produce deeply equal results. Uses separate workspaces so
// caching cannot mask an ordering bug in the fan-out itself.
func TestExperimentsWorkersDeterministic(t *testing.T) {
	names := []string{"445.gobmk", "429.mcf"}
	serialWS := NewWorkspace()
	serialWS.SetWorkers(1)
	parWS := NewWorkspace()
	parWS.SetWorkers(8)

	t2s, err := Table2On(serialWS, names)
	if err != nil {
		t.Fatal(err)
	}
	t2p, err := Table2On(parWS, names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t2s, t2p) {
		t.Errorf("Table II differs between workers=1 and workers=8:\n%s\nvs\n%s", t2s, t2p)
	}

	f4s, err := Figure4On(serialWS, names)
	if err != nil {
		t.Fatal(err)
	}
	f4p, err := Figure4On(parWS, names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f4s, f4p) {
		t.Errorf("Figure 4 differs between workers=1 and workers=8")
	}

	f5s, err := Figure5On(serialWS, names)
	if err != nil {
		t.Fatal(err)
	}
	f5p, err := Figure5On(parWS, names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f5s, f5p) {
		t.Errorf("Figure 5 differs between workers=1 and workers=8")
	}

	f7s, err := Figure7On(serialWS, names)
	if err != nil {
		t.Fatal(err)
	}
	f7p, err := Figure7On(parWS, names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f7s, f7p) {
		t.Errorf("Figure 7 differs between workers=1 and workers=8")
	}

	is, err := IntroTableOn(serialWS, names)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := IntroTableOn(parWS, names)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(is, ip) {
		t.Errorf("intro table differs between workers=1 and workers=8")
	}
}

// TestWorkspaceConcurrentBenchSharing: concurrent fetches of the same
// bench must share one generation, and concurrent layout builds of the
// same name must share one optimization.
func TestWorkspaceConcurrentBenchSharing(t *testing.T) {
	w := NewWorkspace()
	w.SetWorkers(8)
	const n = 8
	benches := make([]*Bench, n)
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			b, err := w.Bench("429.mcf")
			benches[i] = b
			done <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if benches[i] != benches[0] {
			t.Fatal("concurrent Bench calls returned distinct instances")
		}
	}
	layouts := make([]interface{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			l, err := benches[0].Layout("func-affinity")
			layouts[i] = l
			done <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < n; i++ {
		if layouts[i] != layouts[0] {
			t.Fatal("concurrent Layout calls returned distinct instances")
		}
	}
	if _, ok := benches[0].Report("func-affinity"); !ok {
		t.Error("optimizer report not recorded")
	}
	if _, ok := benches[0].Report(Baseline); ok {
		t.Error("baseline must not have an optimizer report")
	}
}
