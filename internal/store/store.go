// Package store is layoutd's persistent content-addressed result
// store: one blob file per completed layout, keyed by the result
// digest, so a daemon restart serves previously computed layouts from
// disk instead of recomputing them. Footprint theory makes a layout a
// pure function of (trace digest, optimizer, params), which is what
// makes the blobs immutable and cacheable forever.
//
// Durability model:
//
//   - Writes are crash-safe: blob bytes go to a .tmp file in the store
//     directory, are fsynced, and are renamed into place atomically, so
//     a crash leaves either the complete blob or junk that recovery
//     discards — never a live half-written blob.
//   - Every blob carries a header and a SHA-256 checksum of its
//     payload. The startup scan verifies both and quarantines anything
//     truncated or corrupt into quarantine/ (and deletes stray .tmp
//     files), so one bad sector cannot poison the cache.
//   - Writes are write-behind: Put enqueues and returns immediately;
//     a background writer owns all disk mutation. The request path
//     never blocks on the disk, and a full queue drops the write (the
//     result still lives in the in-memory tier) rather than stalling.
//   - A disk-failure circuit breaker: any write failure — or a run of
//     consecutive read I/O errors (a dead disk fails reads too, and
//     per-blob quarantine alone would grind through every blob) —
//     trips the store to degraded (memory-only) mode. While degraded
//     the store skips disk work and fast-fails reads; it re-probes
//     with the next queued write after an exponentially backed-off
//     interval and closes the circuit on the first success. Read
//     errors that are content rot (bad checksum, truncation) still
//     quarantine the blob without implicating the disk.
//   - An LRU byte bound: Get refreshes recency; inserts past MaxBytes
//     evict the least-recently-used blobs from disk.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"codelayout/internal/fault"
)

// Blob container framing: magic | version | payload len (u64 LE) |
// payload | SHA-256(payload).
const (
	blobMagic   = "CLSB"
	blobVersion = 1
	blobSuffix  = ".blob"
	tmpSuffix   = ".tmp"
	headerLen   = len(blobMagic) + 1 + 8
	sumLen      = sha256.Size
)

// quarantineDir holds blobs that failed verification, kept for
// post-mortems instead of deleted.
const quarantineDir = "quarantine"

// Defaults for zero Config fields.
const (
	DefaultMaxBytes     = 1 << 30
	DefaultQueueDepth   = 256
	DefaultProbeBackoff = time.Second
	DefaultMaxBackoff   = time.Minute
	// DefaultReadTripThreshold is how many consecutive read I/O errors
	// open the breaker. One flaky read shouldn't take the disk tier
	// down, but a short run of them is a dead disk, not bad luck.
	DefaultReadTripThreshold = 3
)

// State is the circuit-breaker position.
type State int32

const (
	// StateOK: the disk is trusted; reads and writes go through.
	StateOK State = iota
	// StateDegraded: a write failed; the store is memory-only until a
	// probe write succeeds.
	StateDegraded
)

func (s State) String() string {
	if s == StateDegraded {
		return "degraded"
	}
	return "ok"
}

// Config sizes and wires a Store.
type Config struct {
	// Dir is the blob directory; created if missing. Required.
	Dir string
	// MaxBytes is the LRU bound on total payload bytes; 0 means
	// DefaultMaxBytes.
	MaxBytes int64
	// QueueDepth bounds the write-behind queue; 0 means
	// DefaultQueueDepth. A full queue drops writes (counted).
	QueueDepth int
	// ProbeBackoff is the initial wait before re-probing a failed disk;
	// it doubles per consecutive failure up to MaxBackoff. Zeros mean
	// DefaultProbeBackoff / DefaultMaxBackoff.
	ProbeBackoff time.Duration
	MaxBackoff   time.Duration
	// ReadTripThreshold is how many consecutive read I/O errors trip
	// the breaker; 0 means DefaultReadTripThreshold. Verification
	// failures (checksum, truncation) never count — they quarantine the
	// blob instead.
	ReadTripThreshold int
	// FS is the filesystem; nil means fault.OS(). Tests inject faults
	// here.
	FS fault.FS
	// Clock drives breaker timing; nil means fault.SystemClock().
	Clock fault.Clock
	// Logf receives recovery and breaker transitions; nil means
	// log.Printf.
	Logf func(format string, args ...any)
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	State       State
	Blobs       int
	Bytes       int64
	Hits        int64 // Get served from disk
	Misses      int64 // Get found nothing (or store degraded)
	Writes      int64 // blobs durably written
	WriteErrors int64 // failed write attempts (each trips the breaker)
	ReadErrors  int64 // read I/O errors (enough in a row trip the breaker)
	Dropped     int64 // Puts dropped: full queue, or degraded pre-probe
	Evictions   int64 // blobs evicted by the LRU byte bound
	Quarantined int64 // blobs quarantined (startup scan or failed Get)
	Recoveries  int64 // degraded→ok transitions
	Deletes     int64 // blobs removed by Delete (admin/eviction API)
	// LastError is the cause of the most recent breaker opening — the
	// degraded-reason string /healthz reports. Empty until a trip.
	LastError string
}

// EntryInfo describes one indexed blob for the admin listing
// (GET /v1/store) — the local primitive cluster replication is built on.
type EntryInfo struct {
	Key        string
	Size       int64
	LastAccess time.Time
}

type entry struct {
	key   string
	size  int64
	atime time.Time // last Get hit or insert (recency for the listing)
	elem  *list.Element
}

type writeReq struct {
	key   string
	data  []byte
	flush chan struct{} // non-nil: a Flush barrier, not a write
}

// Store is the persistent tier. Open it, Put/Get concurrently, Close
// it to drain the write-behind queue.
type Store struct {
	cfg   Config
	fs    fault.FS
	clock fault.Clock
	logf  func(format string, args ...any)

	mu         sync.Mutex
	index      map[string]*entry
	lru        *list.List // front = most recently used
	totalBytes int64
	closed     bool
	state      State
	probeAt    time.Time     // earliest next disk attempt while degraded
	backoff    time.Duration // next backoff step
	readFails  int           // consecutive read I/O errors since last good read
	stats      Stats

	queue chan writeReq
	wg    sync.WaitGroup

	// eventHook observes durability state transitions; see SetEventHook.
	eventHook atomic.Value // func(kind, detail string)
}

// Event kinds passed to the SetEventHook callback.
const (
	EventBreakerTrip    = "breaker_trip"
	EventBreakerRecover = "breaker_recover"
	EventQuarantine     = "quarantine"
)

// SetEventHook installs fn, called on durability state transitions:
// the circuit breaker opening (EventBreakerTrip, once per ok->degraded
// transition, not per failed probe), the breaker closing
// (EventBreakerRecover), and a blob being quarantined (EventQuarantine)
// — with a short human-readable detail. fn runs with internal locks
// held: it must be fast and must not call back into the store.
func (s *Store) SetEventHook(fn func(kind, detail string)) { s.eventHook.Store(fn) }

func (s *Store) fireEvent(kind, detail string) {
	if fn, ok := s.eventHook.Load().(func(string, string)); ok && fn != nil {
		fn(kind, detail)
	}
}

// Open scans dir, recovers the index from the surviving blobs, and
// starts the write-behind goroutine. Truncated or corrupt blobs are
// moved to dir/quarantine; stray temp files are deleted.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: Config.Dir is required")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.ProbeBackoff <= 0 {
		cfg.ProbeBackoff = DefaultProbeBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.ReadTripThreshold <= 0 {
		cfg.ReadTripThreshold = DefaultReadTripThreshold
	}
	if cfg.FS == nil {
		cfg.FS = fault.OS()
	}
	if cfg.Clock == nil {
		cfg.Clock = fault.SystemClock()
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Store{
		cfg:     cfg,
		fs:      cfg.FS,
		clock:   cfg.Clock,
		logf:    cfg.Logf,
		index:   make(map[string]*entry),
		lru:     list.New(),
		backoff: cfg.ProbeBackoff,
		queue:   make(chan writeReq, cfg.QueueDepth),
	}
	if err := s.fs.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", cfg.Dir, err)
	}
	if err := s.fs.MkdirAll(filepath.Join(cfg.Dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: creating quarantine dir: %w", err)
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// scan rebuilds the index from disk, quarantining anything that fails
// verification. Entries are aged by file order (ReadDir sorts by
// name), which is deterministic; precise recency doesn't survive a
// restart and doesn't need to.
func (s *Store) scan() error {
	ents, err := s.fs.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", s.cfg.Dir, err)
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		path := filepath.Join(s.cfg.Dir, name)
		if strings.HasSuffix(name, tmpSuffix) {
			// A crash mid-write: the rename never happened, so the
			// temp file is junk by construction.
			if err := s.fs.Remove(path); err == nil {
				s.logf("store: removed stray temp file %s", name)
			}
			continue
		}
		if !strings.HasSuffix(name, blobSuffix) {
			continue
		}
		key := strings.TrimSuffix(name, blobSuffix)
		payload, err := s.readBlob(path)
		if err != nil {
			s.quarantine(path, name, err)
			continue
		}
		e := &entry{key: key, size: int64(len(payload)), atime: s.clock.Now()}
		e.elem = s.lru.PushBack(e)
		s.index[key] = e
		s.totalBytes += e.size
	}
	s.enforceBoundLocked()
	return nil
}

// quarantine moves a bad blob aside (or deletes it if the move fails)
// and counts it. Caller need not hold mu during startup; at runtime
// Get holds mu.
func (s *Store) quarantine(path, name string, cause error) {
	s.stats.Quarantined++
	s.fireEvent(EventQuarantine, fmt.Sprintf("%s: %v", name, cause))
	dst := filepath.Join(s.cfg.Dir, quarantineDir, name)
	if err := s.fs.Rename(path, dst); err != nil {
		_ = s.fs.Remove(path)
		s.logf("store: quarantining %s: %v (rename failed: %v; removed)", name, cause, err)
		return
	}
	s.logf("store: quarantined %s: %v", name, cause)
}

// readBlob reads and verifies one blob file, returning its payload.
func (s *Store) readBlob(path string) ([]byte, error) {
	f, err := s.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	if len(raw) < headerLen+sumLen {
		return nil, fmt.Errorf("truncated blob: %d bytes", len(raw))
	}
	if string(raw[:len(blobMagic)]) != blobMagic {
		return nil, fmt.Errorf("bad magic %q", raw[:len(blobMagic)])
	}
	if raw[len(blobMagic)] != blobVersion {
		return nil, fmt.Errorf("unsupported blob version %d", raw[len(blobMagic)])
	}
	n := binary.LittleEndian.Uint64(raw[len(blobMagic)+1 : headerLen])
	if int64(n) != int64(len(raw)-headerLen-sumLen) {
		return nil, fmt.Errorf("length mismatch: header says %d, file holds %d", n, len(raw)-headerLen-sumLen)
	}
	payload := raw[headerLen : headerLen+int(n)]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[headerLen+int(n):]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// Get returns the payload stored under key and refreshes its recency.
// While degraded, Get fast-fails: the disk is not trusted until a
// probe write succeeds.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok || s.state == StateDegraded {
		s.stats.Misses++
		return nil, false
	}
	payload, err := s.readBlob(s.blobPath(key))
	if err != nil {
		s.stats.Misses++
		var perr *fs.PathError
		if errors.As(err, &perr) {
			// The disk itself failed (open/read error), not the blob's
			// content. The index entry may still be good, so keep it;
			// enough of these in a row and the disk is sick — open the
			// breaker like a write failure would.
			s.stats.ReadErrors++
			s.readFails++
			if s.readFails >= s.cfg.ReadTripThreshold {
				s.openBreakerLocked(err, "read")
			}
			return nil, false
		}
		// The blob rotted under us: quarantine it and miss.
		s.dropLocked(e)
		s.quarantine(s.blobPath(key), key+blobSuffix, err)
		return nil, false
	}
	s.readFails = 0
	s.lru.MoveToFront(e.elem)
	e.atime = s.clock.Now()
	s.stats.Hits++
	return payload, true
}

// Has reports whether key is indexed (without touching the disk or
// recency).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Put schedules data to be persisted under key. It never blocks: the
// write happens behind the request path, and a full queue or an
// untrusted disk drops the write instead of stalling the caller.
func (s *Store) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.index[key]; ok {
		return // content-addressed: already durable
	}
	select {
	case s.queue <- writeReq{key: key, data: data}:
	default:
		s.stats.Dropped++
	}
}

// Flush blocks until every write queued before it has been attempted.
// Tests and Close use it to make the write-behind queue deterministic.
func (s *Store) Flush() {
	ch := make(chan struct{})
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		select {
		case s.queue <- writeReq{flush: ch}:
			s.mu.Unlock()
			<-ch
			return
		default:
			// Queue full of real writes: let the writer drain a slot,
			// then enqueue the barrier after them.
		}
		s.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
}

// Close drains the write-behind queue (bounded by ctx via the caller's
// patience — each queued write is attempted once) and stops the
// writer. Puts after Close are ignored.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// State returns the breaker position.
func (s *Store) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.State = s.state
	st.Blobs = len(s.index)
	st.Bytes = s.totalBytes
	return st
}

// Len returns the number of durable blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Entries lists every indexed blob (key, payload size, last access),
// most recently used first — the listing GET /v1/store serves and the
// surface cluster replication enumerates.
func (s *Store) Entries() []EntryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]EntryInfo, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, EntryInfo{Key: e.key, Size: e.size, LastAccess: e.atime})
	}
	return out
}

// Delete removes the blob under key from the index and the disk,
// reporting whether it was indexed. Content addressing makes deletion
// safe at any time: a concurrent reader misses and recomputes, and a
// write for the key still queued behind this call may legitimately
// re-create the identical blob (last write wins, and all writes carry
// the same bytes).
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return false
	}
	s.dropLocked(e)
	if err := s.fs.Remove(s.blobPath(key)); err != nil {
		s.logf("store: deleting %s: %v", key, err)
	}
	s.stats.Deletes++
	return true
}

// ---- write-behind ----

// writer owns all disk mutation: it serializes blob writes, applies
// the circuit breaker, and enforces the LRU bound after each insert.
func (s *Store) writer() {
	defer s.wg.Done()
	for req := range s.queue {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		s.mu.Lock()
		if _, ok := s.index[req.key]; ok {
			s.mu.Unlock()
			continue
		}
		if s.state == StateDegraded && s.clock.Now().Before(s.probeAt) {
			// Disk untrusted and it's not probe time: drop, keep serving
			// from memory.
			s.stats.Dropped++
			s.mu.Unlock()
			continue
		}
		probing := s.state == StateDegraded
		err := s.writeBlob(req.key, req.data)
		if err != nil {
			s.tripLocked(err)
			s.mu.Unlock()
			continue
		}
		if probing {
			s.state = StateOK
			s.backoff = s.cfg.ProbeBackoff
			s.readFails = 0
			s.stats.Recoveries++
			s.fireEvent(EventBreakerRecover, "disk recovered; leaving degraded mode")
			s.logf("store: disk recovered; leaving degraded mode")
		}
		e := &entry{key: req.key, size: int64(len(req.data)), atime: s.clock.Now()}
		e.elem = s.lru.PushFront(e)
		s.index[req.key] = e
		s.totalBytes += e.size
		s.stats.Writes++
		s.enforceBoundLocked()
		s.mu.Unlock()
	}
}

// tripLocked opens the circuit after a write failure: the store goes
// memory-only and the next probe is scheduled with exponential backoff.
func (s *Store) tripLocked(cause error) {
	s.stats.WriteErrors++
	s.openBreakerLocked(cause, "write")
}

// openBreakerLocked opens the circuit regardless of which side (read or
// write) observed the disk failure. Recovery is always probed by a
// write: a successful durable write is the strongest evidence the disk
// is back.
func (s *Store) openBreakerLocked(cause error, op string) {
	s.stats.LastError = fmt.Sprintf("store %s failed: %v", op, cause)
	s.probeAt = s.clock.Now().Add(s.backoff)
	wasOK := s.state == StateOK
	s.state = StateDegraded
	if wasOK {
		s.fireEvent(EventBreakerTrip, s.stats.LastError)
		s.logf("store: %s failed (%v); degrading to memory-only, next probe in %s", op, cause, s.backoff)
	} else {
		s.logf("store: %s probe failed (%v); next probe in %s", op, cause, s.backoff)
	}
	s.backoff *= 2
	if s.backoff > s.cfg.MaxBackoff {
		s.backoff = s.cfg.MaxBackoff
	}
}

// writeBlob persists one blob crash-safely: temp file, fsync, atomic
// rename, best-effort directory fsync.
func (s *Store) writeBlob(key string, payload []byte) error {
	tmp := s.blobPath(key) + tmpSuffix
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	var hdr [headerLen]byte
	copy(hdr[:], blobMagic)
	hdr[len(blobMagic)] = blobVersion
	binary.LittleEndian.PutUint64(hdr[len(blobMagic)+1:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	err = writeAll(f, hdr[:], payload, sum[:])
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, s.blobPath(key)); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	// fsync the directory so the rename itself is durable; best-effort
	// (not all FS implementations allow it).
	if d, err := s.fs.Open(s.cfg.Dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

func writeAll(w io.Writer, bufs ...[]byte) error {
	for _, b := range bufs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// enforceBoundLocked evicts least-recently-used blobs until the store
// fits MaxBytes. The newest blob always survives, even if it alone
// exceeds the bound.
func (s *Store) enforceBoundLocked() {
	for s.totalBytes > s.cfg.MaxBytes && s.lru.Len() > 1 {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.dropLocked(e)
		if err := s.fs.Remove(s.blobPath(e.key)); err != nil {
			s.logf("store: evicting %s: %v", e.key, err)
		}
		s.stats.Evictions++
	}
}

// dropLocked removes e from the index and LRU (not from disk).
func (s *Store) dropLocked(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.index, e.key)
	s.totalBytes -= e.size
}

func (s *Store) blobPath(key string) string {
	return filepath.Join(s.cfg.Dir, key+blobSuffix)
}
