package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	rules, err := ParseSpec("write:nth=3,err=ENOSPC; sync:every=2,err=EIO; write:nth=1,partial; read:delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if rules[0].Op != OpWrite || rules[0].Nth != 3 || !errors.Is(rules[0].Err, syscall.ENOSPC) {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].Op != OpSync || rules[1].Every != 2 || !errors.Is(rules[1].Err, syscall.EIO) {
		t.Errorf("rule 1 = %+v", rules[1])
	}
	if !rules[2].Partial || !errors.Is(rules[2].Err, syscall.ENOSPC) {
		t.Errorf("partial rule defaults to ENOSPC: %+v", rules[2])
	}
	if rules[3].Delay != 5*time.Millisecond || rules[3].Err != nil {
		t.Errorf("delay rule = %+v", rules[3])
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"explode:nth=1,err=EIO",    // unknown op
		"write:nth=1,err=EWHAT",    // unknown errno
		"write:frobnicate=1",       // unknown param
		"write:nth=x,err=EIO",      // bad int
		"write:nth=1",              // injects nothing
		"read:nth=1,partial",       // partial is write-only
		"write:delay=notaduration", // bad duration
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

func TestInjectorNthWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS(), Rule{Op: OpWrite, Nth: 2, Err: syscall.ENOSPC})
	f, err := inj.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("second")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2 err = %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("third")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := inj.Counts()[OpWrite]; got != 3 {
		t.Errorf("write count = %d, want 3", got)
	}
}

func TestInjectorEverySync(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS(), Rule{Op: OpSync, Every: 2, Err: syscall.EIO})
	f, err := inj.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 1; i <= 4; i++ {
		err := f.Sync()
		if i%2 == 0 && !errors.Is(err, syscall.EIO) {
			t.Errorf("sync %d err = %v, want EIO", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Errorf("sync %d err = %v, want nil", i, err)
		}
	}
}

func TestInjectorPartialWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	inj := NewInjector(OS(), Rule{Op: OpWrite, Nth: 1, Partial: true, Err: syscall.ENOSPC})
	f, err := inj.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, werr := f.Write(payload)
	f.Close()
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("partial write err = %v, want ENOSPC", werr)
	}
	if n != len(payload)/2 {
		t.Fatalf("partial write n = %d, want %d", n, len(payload)/2)
	}
	// The torn bytes really are on disk — that's the point.
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("on-disk content %q, want the first half", got)
	}
}

func TestInjectorSetRulesRepairsDisk(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS(), Rule{Op: OpCreate, Err: syscall.ENOSPC})
	if _, err := inj.Create(filepath.Join(dir, "a")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("create with fault = %v, want ENOSPC", err)
	}
	inj.SetRules() // disk repaired
	f, err := inj.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("create after repair: %v", err)
	}
	f.Close()
}

func TestInjectorRenameAndReadDir(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS(), Rule{Op: OpRename, Every: 1, Err: syscall.EIO})
	if err := os.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := inj.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename err = %v, want EIO", err)
	}
	ents, err := inj.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "a" {
		t.Fatalf("ReadDir after failed rename = %v, %v", ents, err)
	}
}

func TestFakeClock(t *testing.T) {
	t0 := time.Unix(100, 0)
	c := NewFakeClock(t0)
	if !c.Now().Equal(t0) {
		t.Fatal("fake clock did not start at t0")
	}
	c.Advance(time.Minute)
	if got := c.Now().Sub(t0); got != time.Minute {
		t.Fatalf("advanced %v, want 1m", got)
	}
}
