package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"codelayout/internal/cachesim"
	"codelayout/internal/store"
)

// postJSON posts a JSON body to path and decodes the response into a
// jobView when the request was accepted.
func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (jobView, string, int) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		var v jobView
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("bad job JSON %s: %v", raw, err)
		}
		return v, "", resp.StatusCode
	}
	var e struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(raw, &e)
	return jobView{}, e.Error, resp.StatusCode
}

// submitDone submits the recorded trace under the named optimizer and
// waits for the layout, returning its result digest.
func submitDone(t *testing.T, ts *httptest.Server, optName string) string {
	t.Helper()
	raw, _ := recordedTrace(t)
	v, code := submitRaw(t, ts, raw, "prog="+testProg+"&opt="+optName)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit %s status %d", optName, code)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("optimize %s failed: %+v", optName, done)
	}
	return done.Digest
}

// TestCorunEndToEnd: submit two layouts, pair them, and check the
// document against the semantics the paper defines — plus the
// content-addressed fast path on a repeated (and swapped) pairing.
func TestCorunEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 2, QueueDepth: 8, OptWorkers: 1})
	dA := submitDone(t, ts, "func-affinity")
	dB := submitDone(t, ts, "func-trg")

	v, _, code := postJSON(t, ts, "/v1/corun", map[string]any{"a": dA, "b": dB})
	if code != http.StatusAccepted {
		t.Fatalf("corun submit status %d", code)
	}
	if v.Kind != "corun" {
		t.Fatalf("job kind %q, want corun", v.Kind)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone || done.Corun == nil {
		t.Fatalf("corun job: %+v", done)
	}
	doc := done.Corun
	if doc.Cache != cachesim.L1IDefault {
		t.Errorf("default cache geometry %+v", doc.Cache)
	}
	// Sides are canonical (sorted digest) order and carry both digests.
	if doc.A.Digest > doc.B.Digest {
		t.Errorf("sides not in canonical order: %s > %s", doc.A.Digest, doc.B.Digest)
	}
	got := map[string]bool{doc.A.Digest: true, doc.B.Digest: true}
	if !got[dA] || !got[dB] {
		t.Errorf("doc sides %s/%s, want %s/%s", doc.A.Digest, doc.B.Digest, dA, dB)
	}
	for _, side := range []PairSide{doc.A, doc.B} {
		if side.Prog != testProg {
			t.Errorf("side prog %q", side.Prog)
		}
		if side.MissCorun < side.MissSolo {
			t.Errorf("co-running should not reduce misses: corun %v < solo %v", side.MissCorun, side.MissSolo)
		}
		if math.Abs(side.Contention-(side.MissCorun-side.MissSolo)) > 1e-12 {
			t.Errorf("contention %v != corun-solo %v", side.Contention, side.MissCorun-side.MissSolo)
		}
		if side.PredMissRatio < 0 || side.PredMissRatio > 1 {
			t.Errorf("predicted miss ratio %v out of range", side.PredMissRatio)
		}
		if side.PredMisses < 0 {
			t.Errorf("negative predicted misses %v", side.PredMisses)
		}
	}
	if math.Abs(doc.PairCost-(doc.A.PredMisses+doc.B.PredMisses)) > 1e-9 {
		t.Errorf("pair cost %v != sum of predicted misses", doc.PairCost)
	}
	if doc.PeerLaps[0] < 0 || doc.PeerLaps[1] < 0 {
		t.Errorf("negative peer laps: %v", doc.PeerLaps)
	}

	// The document is addressable by content.
	resp, err := http.Get(ts.URL + "/v1/corun/" + done.Digest)
	if err != nil {
		t.Fatal(err)
	}
	var fetched CorunDoc
	err = json.NewDecoder(resp.Body).Decode(&fetched)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || fetched.Digest != done.Digest {
		t.Fatalf("GET /v1/corun/{digest}: %d %v", resp.StatusCode, err)
	}

	// Same pair in swapped order: instant cache hit, same digest.
	v2, _, code := postJSON(t, ts, "/v1/corun", map[string]any{"a": dB, "b": dA})
	if code != http.StatusOK || !v2.Cached || v2.Status != StatusDone {
		t.Fatalf("swapped resubmit not served from pair cache: %d %+v", code, v2)
	}
	if v2.Digest != done.Digest {
		t.Errorf("swapped pair digest %s != %s", v2.Digest, done.Digest)
	}
	if got := metricValue(t, ts, "layoutd_corun_jobs_total"); got != 2 {
		t.Errorf("corun_jobs_total = %v, want 2", got)
	}
	if got := metricValue(t, ts, "layoutd_pair_cache_hits_total"); got != 1 {
		t.Errorf("pair_cache_hits_total = %v, want 1", got)
	}
}

// TestCorunSelfPairing: a layout co-running with another instance of
// itself is a legal pairing and reports symmetric sides.
func TestCorunSelfPairing(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1})
	d := submitDone(t, ts, "func-affinity")
	v, _, code := postJSON(t, ts, "/v1/corun", map[string]any{"a": d, "b": d})
	if code != http.StatusAccepted {
		t.Fatalf("self-pair submit status %d", code)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone || done.Corun == nil {
		t.Fatalf("self-pair job: %+v", done)
	}
	doc := done.Corun
	if doc.A.Digest != d || doc.B.Digest != d {
		t.Errorf("self-pair sides %s/%s", doc.A.Digest, doc.B.Digest)
	}
	// Identical programs see identical interference.
	if doc.A.MissCorun != doc.B.MissCorun || doc.A.PredMisses != doc.B.PredMisses {
		t.Errorf("self-pair asymmetric: %+v vs %+v", doc.A, doc.B)
	}
}

// TestCorunAdversarialInputs: the request-validation surface.
func TestCorunAdversarialInputs(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1})
	d := submitDone(t, ts, "func-affinity")

	unknown := "deadbeef" + d[8:]
	cases := []struct {
		name string
		body any
		code int
	}{
		{"unknown digest a", map[string]any{"a": unknown, "b": d}, http.StatusNotFound},
		{"unknown digest b", map[string]any{"a": d, "b": unknown}, http.StatusNotFound},
		{"missing b", map[string]any{"a": d}, http.StatusBadRequest},
		{"empty body", map[string]any{}, http.StatusBadRequest},
		{"bad cache geometry", map[string]any{"a": d, "b": d,
			"cache": map[string]any{"SizeBytes": 1000, "Assoc": 3, "LineBytes": 64}}, http.StatusBadRequest},
		{"unknown field", map[string]any{"a": d, "b": d, "bogus": 1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		_, msg, code := postJSON(t, ts, "/v1/corun", tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d (%s), want %d", tc.name, code, msg, tc.code)
		}
	}
}

// TestCorunQuarantinedTrace: a digest whose retained trace blob was
// corrupted on disk (and quarantined by the restart scan) must yield a
// clean 404 telling the client to resubmit the profile — not a 500 or a
// hung job.
func TestCorunQuarantinedTrace(t *testing.T) {
	raw, _ := recordedTrace(t)
	dir := t.TempDir()

	st1 := openTestStore(t, store.Config{Dir: dir})
	_, ts1 := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, Store: st1})
	v, code := submitRaw(t, ts1, raw, "prog="+testProg+"&opt=func-affinity")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitJob(t, ts1, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("optimize failed: %+v", done)
	}
	st1.Flush()

	// Corrupt the trace blob in place; the result blob stays intact.
	traceBlob := filepath.Join(dir, traceStoreKey+done.Result.TraceDigest+".blob")
	data, err := os.ReadFile(traceBlob)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(traceBlob, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, store.Config{Dir: dir})
	if st2.Stats().Quarantined != 1 {
		t.Fatalf("restart scan quarantined %d blobs, want 1", st2.Stats().Quarantined)
	}
	_, ts2 := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, Store: st2})

	// The result itself is still served from disk...
	resp, err := http.Get(ts2.URL + "/v1/layouts/" + done.Digest)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("layout lookup after quarantine: %d", resp.StatusCode)
	}
	// ...but pairing it needs the trace, which is gone.
	_, msg, code := postJSON(t, ts2, "/v1/corun", map[string]any{"a": done.Digest, "b": done.Digest})
	if code != http.StatusNotFound {
		t.Fatalf("corun over quarantined trace: status %d (%s), want 404", code, msg)
	}
	if msg == "" {
		t.Error("quarantined-trace error should tell the client to resubmit")
	}
}

// TestScheduleEndToEnd: four layouts over a 2x2 topology — the matrix
// must be symmetric with a zero diagonal, the placement exact and no
// worse than the enumerated worst case, and the pair cache shared with
// /v1/corun.
func TestScheduleEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 2, QueueDepth: 8, OptWorkers: 1})
	digests := []string{
		submitDone(t, ts, "func-affinity"),
		submitDone(t, ts, "func-trg"),
		submitDone(t, ts, "bb-affinity"),
		submitDone(t, ts, "bb-trg"),
	}
	body := map[string]any{
		"digests":  digests,
		"topology": map[string]int{"domains": 2, "slotsPerDomain": 2},
	}
	v, _, code := postJSON(t, ts, "/v1/schedule", body)
	if code != http.StatusAccepted {
		t.Fatalf("schedule submit status %d", code)
	}
	if v.Kind != "schedule" {
		t.Fatalf("job kind %q, want schedule", v.Kind)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusDone || done.Schedule == nil {
		t.Fatalf("schedule job: %+v", done)
	}
	doc := done.Schedule
	n := len(digests)
	if len(doc.Matrix) != n {
		t.Fatalf("matrix is %dx?, want %dx%d", len(doc.Matrix), n, n)
	}
	for i := 0; i < n; i++ {
		if doc.Matrix[i][i] != 0 {
			t.Errorf("diagonal [%d][%d] = %v", i, i, doc.Matrix[i][i])
		}
		for j := 0; j < n; j++ {
			if doc.Matrix[i][j] != doc.Matrix[j][i] {
				t.Errorf("matrix asymmetric at [%d][%d]", i, j)
			}
			if i != j && doc.Matrix[i][j] < 0 {
				t.Errorf("negative pair cost at [%d][%d]", i, j)
			}
		}
	}
	if !doc.Placement.Exact {
		t.Error("4 programs over 2x2 should be solved exactly")
	}
	if !doc.WorstKnown || doc.Placement.Cost > doc.WorstCost {
		t.Errorf("placement cost %v vs worst %v (known %v)", doc.Placement.Cost, doc.WorstCost, doc.WorstKnown)
	}
	placed := 0
	for _, dom := range doc.Placement.Domains {
		placed += len(dom)
	}
	if placed != n {
		t.Errorf("placement covers %d of %d programs", placed, n)
	}
	if doc.PairsComputed != 6 || doc.PairsCached != 0 {
		t.Errorf("pairs computed/cached = %d/%d, want 6/0", doc.PairsComputed, doc.PairsCached)
	}
	if got := metricValue(t, ts, "layoutd_schedule_pairs_total"); got != 6 {
		t.Errorf("schedule_pairs_total = %v, want 6", got)
	}

	// A corun request over two scheduled digests is a pure pair-cache
	// hit: the matrix already paid for it.
	cv, _, code := postJSON(t, ts, "/v1/corun", map[string]any{"a": digests[0], "b": digests[1]})
	if code != http.StatusOK || !cv.Cached {
		t.Fatalf("corun after schedule not served from pair cache: %d %+v", code, cv)
	}
	if cv.Corun.PairCost != doc.Matrix[0][1] {
		t.Errorf("pair cost %v != matrix cell %v", cv.Corun.PairCost, doc.Matrix[0][1])
	}

	// Identical schedule request: served from the schedule cache.
	v2, _, code := postJSON(t, ts, "/v1/schedule", body)
	if code != http.StatusOK || !v2.Cached || v2.Schedule == nil {
		t.Fatalf("repeat schedule not cached: %d %+v", code, v2)
	}
	if v2.Digest != done.Digest {
		t.Errorf("schedule digest changed: %s vs %s", v2.Digest, done.Digest)
	}
}

// TestScheduleValidation: the request-validation surface.
func TestScheduleValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, MaxScheduleDigests: 4})
	d := submitDone(t, ts, "func-affinity")
	topo := map[string]int{"domains": 2, "slotsPerDomain": 2}
	cases := []struct {
		name string
		body any
		code int
	}{
		{"one digest", map[string]any{"digests": []string{d}, "topology": topo}, http.StatusBadRequest},
		{"too many digests", map[string]any{"digests": []string{d, d, d, d, d}, "topology": topo}, http.StatusBadRequest},
		{"zero topology", map[string]any{"digests": []string{d, d}, "topology": map[string]int{}}, http.StatusBadRequest},
		{"over capacity", map[string]any{"digests": []string{d, d, d},
			"topology": map[string]int{"domains": 1, "slotsPerDomain": 2}}, http.StatusBadRequest},
		{"unknown digest", map[string]any{"digests": []string{d, "deadbeef" + d[8:]}, "topology": topo}, http.StatusNotFound},
	}
	for _, tc := range cases {
		_, msg, code := postJSON(t, ts, "/v1/schedule", tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d (%s), want %d", tc.name, code, msg, tc.code)
		}
	}
}

// TestScheduleCancelMidMatrix: DELETE on a running schedule job fires
// its context mid-matrix; the job lands in canceled, not failed, and
// the canceled metric counts it.
func TestScheduleCancelMidMatrix(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1})
	dA := submitDone(t, ts, "func-affinity")
	dB := submitDone(t, ts, "func-trg")

	started := make(chan struct{})
	var once bool
	s.pairAnalysis = func(ctx context.Context, cfg cachesim.Config, a, b *corunEntry, workers int) (*CorunDoc, error) {
		if !once {
			once = true
			close(started)
		}
		<-ctx.Done() // a pair analysis that never finishes on its own
		return nil, ctx.Err()
	}

	v, _, code := postJSON(t, ts, "/v1/schedule", map[string]any{
		"digests":  []string{dA, dB},
		"topology": map[string]int{"domains": 2, "slotsPerDomain": 1},
	})
	if code != http.StatusAccepted {
		t.Fatalf("schedule submit status %d", code)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("schedule job never reached the matrix")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var mid jobView
	err = json.NewDecoder(resp.Body).Decode(&mid)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE mid-matrix: status %d err %v", resp.StatusCode, err)
	}
	if mid.Status != StatusCanceling {
		t.Fatalf("status after DELETE = %q, want canceling", mid.Status)
	}

	done := waitJob(t, ts, v.ID)
	if done.Status != StatusCanceled {
		t.Fatalf("final status %q, want canceled: %+v", done.Status, done)
	}
	if got := metricValue(t, ts, "layoutd_jobs_canceled_total"); got != 1 {
		t.Errorf("jobs_canceled_total = %v, want 1", got)
	}
	if got := metricValue(t, ts, "layoutd_jobs_failed_total"); got != 0 {
		t.Errorf("jobs_failed_total = %v, want 0", got)
	}
}

// TestCorunCancelRunning: the same cancelable-while-running contract
// holds for single-pair corun jobs, while a running *optimization* keeps
// its 409 (covered by TestCancelRunningConflict elsewhere).
func TestCorunCancelRunning(t *testing.T) {
	s, ts := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1})
	d := submitDone(t, ts, "func-affinity")

	started := make(chan struct{})
	s.pairAnalysis = func(ctx context.Context, cfg cachesim.Config, a, b *corunEntry, workers int) (*CorunDoc, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	v, _, code := postJSON(t, ts, "/v1/corun", map[string]any{"a": d, "b": d})
	if code != http.StatusAccepted {
		t.Fatalf("corun submit status %d", code)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("corun job never started")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running corun: status %d, want 202", resp.StatusCode)
	}
	done := waitJob(t, ts, v.ID)
	if done.Status != StatusCanceled {
		t.Fatalf("final status %q, want canceled", done.Status)
	}
}

// TestTraceRetentionSurvivesRestart: with a durable store, the traces
// behind cached layouts survive a crash/restart, so /v1/corun works on
// digests from a previous daemon life without a re-upload.
func TestTraceRetentionSurvivesRestart(t *testing.T) {
	raw, _ := recordedTrace(t)
	dir := t.TempDir()

	st1 := openTestStore(t, store.Config{Dir: dir})
	_, ts1 := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, Store: st1})
	v, code := submitRaw(t, ts1, raw, "prog="+testProg+"&opt=func-affinity")
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	done := waitJob(t, ts1, v.ID)
	if done.Status != StatusDone {
		t.Fatalf("optimize failed: %+v", done)
	}
	st1.Flush()

	st2 := openTestStore(t, store.Config{Dir: dir})
	srv2, ts2 := newTestServer(t, Config{JobWorkers: 1, QueueDepth: 8, OptWorkers: 1, Store: st2})
	if srv2.traces.len() != 0 {
		t.Fatalf("fresh server should hold no traces in memory, has %d", srv2.traces.len())
	}
	cv, _, code := postJSON(t, ts2, "/v1/corun", map[string]any{"a": done.Digest, "b": done.Digest})
	if code != http.StatusAccepted {
		t.Fatalf("corun after restart: status %d", code)
	}
	cd := waitJob(t, ts2, cv.ID)
	if cd.Status != StatusDone || cd.Corun == nil {
		t.Fatalf("corun after restart: %+v", cd)
	}
	if srv2.traces.len() != 1 {
		t.Errorf("trace not repopulated from disk: %d in memory", srv2.traces.len())
	}
}
