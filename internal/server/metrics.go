package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// metrics is layoutd's dependency-free telemetry: monotonic counters,
// one gauge read from the pool, and a per-optimizer latency histogram,
// rendered in the Prometheus text exposition format so any scraper (or
// grep in the smoke test) can consume it.
type metrics struct {
	mu        sync.Mutex
	accepted  int64
	completed int64
	failed    int64
	rejected  int64
	canceled  int64
	cacheHits int64
	latency   map[string]*histogram
}

// latencyBucketsMS are the histogram upper bounds in milliseconds.
var latencyBucketsMS = [...]float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}

type histogram struct {
	counts [len(latencyBucketsMS) + 1]int64 // one per bucket plus +Inf
	sumMS  float64
	total  int64
}

func newMetrics() *metrics {
	return &metrics{latency: make(map[string]*histogram)}
}

func (m *metrics) incAccepted()  { m.mu.Lock(); m.accepted++; m.mu.Unlock() }
func (m *metrics) incCompleted() { m.mu.Lock(); m.completed++; m.mu.Unlock() }
func (m *metrics) incFailed()    { m.mu.Lock(); m.failed++; m.mu.Unlock() }
func (m *metrics) incRejected()  { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) incCanceled()  { m.mu.Lock(); m.canceled++; m.mu.Unlock() }
func (m *metrics) incCacheHit()  { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }

// observeLatency records one completed optimization of the named
// optimizer.
func (m *metrics) observeLatency(optimizer string, d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[optimizer]
	if !ok {
		h = &histogram{}
		m.latency[optimizer] = h
	}
	h.sumMS += ms
	h.total++
	for i, ub := range latencyBucketsMS {
		if ms <= ub {
			h.counts[i]++
			return
		}
	}
	h.counts[len(latencyBucketsMS)]++
}

// storeView is the snapshot of the durable tier render needs; nil
// means the daemon runs memory-only and the store metric family is
// omitted.
type storeView struct {
	ok          bool // breaker closed (disk trusted)
	blobs       int
	bytes       int64
	hits        int64
	writes      int64
	writeErrors int64
	dropped     int64
	evictions   int64
	quarantined int64
	recoveries  int64
}

// render writes the exposition text. queueDepth, running, jobsTracked
// and sv are read live by the caller.
func (m *metrics) render(queueDepth, running, jobsTracked int, sv *storeView) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("layoutd_jobs_accepted_total", "Jobs accepted into the queue.", m.accepted)
	counter("layoutd_jobs_completed_total", "Jobs that produced a layout.", m.completed)
	counter("layoutd_jobs_failed_total", "Jobs that errored.", m.failed)
	counter("layoutd_jobs_rejected_total", "Submissions rejected with 429 (queue full).", m.rejected)
	counter("layoutd_jobs_canceled_total", "Queued jobs canceled via DELETE /v1/jobs/{id}.", m.canceled)
	counter("layoutd_cache_hits_total", "Submissions served from the content-addressed cache.", m.cacheHits)
	gauge("layoutd_queue_depth", "Jobs accepted but not yet running.", int64(queueDepth))
	gauge("layoutd_jobs_running", "Jobs currently optimizing.", int64(running))
	gauge("layoutd_jobs_tracked", "Job-status records held (bounded by retention).", int64(jobsTracked))
	if sv != nil {
		state := int64(0)
		if sv.ok {
			state = 1
		}
		gauge("layoutd_store_state", "Durable store state: 1 = ok, 0 = degraded (memory-only).", state)
		gauge("layoutd_store_blobs", "Layout blobs held on disk.", int64(sv.blobs))
		gauge("layoutd_store_bytes", "Payload bytes held on disk (LRU-bounded).", sv.bytes)
		counter("layoutd_store_hits_total", "Cache lookups served from the on-disk store.", sv.hits)
		counter("layoutd_store_writes_total", "Blobs durably written.", sv.writes)
		counter("layoutd_store_write_errors_total", "Failed blob writes (each trips the breaker).", sv.writeErrors)
		counter("layoutd_store_dropped_writes_total", "Writes dropped (queue full or store degraded).", sv.dropped)
		counter("layoutd_store_evictions_total", "Blobs evicted by the byte bound.", sv.evictions)
		counter("layoutd_store_quarantined_total", "Blobs quarantined as truncated or corrupt.", sv.quarantined)
		counter("layoutd_store_recoveries_total", "Degraded-to-ok breaker transitions.", sv.recoveries)
	}

	names := make([]string, 0, len(m.latency))
	for n := range m.latency {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("# HELP layoutd_optimize_latency_ms Optimization latency per optimizer.\n# TYPE layoutd_optimize_latency_ms histogram\n")
	}
	for _, n := range names {
		h := m.latency[n]
		cum := int64(0)
		for i, ub := range latencyBucketsMS {
			cum += h.counts[i]
			fmt.Fprintf(&b, "layoutd_optimize_latency_ms_bucket{optimizer=%q,le=\"%g\"} %d\n", n, ub, cum)
		}
		fmt.Fprintf(&b, "layoutd_optimize_latency_ms_bucket{optimizer=%q,le=\"+Inf\"} %d\n", n, h.total)
		fmt.Fprintf(&b, "layoutd_optimize_latency_ms_sum{optimizer=%q} %g\n", n, h.sumMS)
		fmt.Fprintf(&b, "layoutd_optimize_latency_ms_count{optimizer=%q} %d\n", n, h.total)
	}
	return b.String()
}
