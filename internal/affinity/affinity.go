// Package affinity implements the paper's extension of reference affinity
// to whole-program code layout (§II-B).
//
// Two code blocks have w-window affinity (Definition 3) iff every
// occurrence of each has a corresponding occurrence of the other such
// that the footprint of the window formed by the two occurrences is at
// most w. For a given w this induces an affinity partition (Definition
// 4); as w grows from 1 upward the partitions form the affinity
// hierarchy (Definition 5), built here so that lower-level groups take
// precedence (groups at level w merge whole groups of level w-1, which
// both disambiguates the non-unique w-window partition and guarantees a
// hierarchy). The optimized code sequence is a bottom-up traversal of
// the hierarchy.
//
// Two analyses are provided: BuildHierarchyNaive follows Algorithm 1 and
// the definitions directly (quadratic, used for validation), while
// BuildHierarchy is the paper's efficient solution — an LRU stack
// simulation per window size that records co-occurrence coverage in
// O(W·N·w) time.
package affinity

import (
	"sort"

	"codelayout/internal/parallel"
	"codelayout/internal/stackdist"
	"codelayout/internal/trace"
)

// Options configures the hierarchy construction.
type Options struct {
	// WMax is the largest window size analyzed. The paper chooses w
	// between 2 and 20 ("to improve efficiency, we choose w between 2
	// and 20"); 0 means the default of 20.
	WMax int
	// Workers bounds the analysis concurrency: 0 means every available
	// core, 1 pins the serial reference path. The built hierarchy is
	// byte-identical for every setting — the stack passes shard the
	// trace with exact LRU warm-up and the per-shard histograms merge
	// by commutative addition (DESIGN.md §7).
	Workers int
}

// DefaultWMax matches the paper's upper end of the analyzed window range.
const DefaultWMax = 20

// Partition is the w-window affinity partition of the trace's symbols.
type Partition struct {
	W int
	// Groups lists the affinity groups; within a group and across
	// groups, symbols are ordered by first occurrence in the trace, so
	// the partition (and the sequence derived from it) is deterministic.
	Groups [][]int32
}

// Hierarchy is the affinity hierarchy: one partition per window size
// from 1 to WMax. Levels[i] is the partition for w = i+1.
type Hierarchy struct {
	Levels []Partition
	// firstOcc maps each symbol to its first-occurrence position, the
	// tie-breaking order used everywhere.
	firstOcc map[int32]int
	// occCount maps each symbol to its occurrence count in the trimmed
	// trace, used to order sibling groups hot-first in Sequence.
	occCount map[int32]int64
}

// Partition returns the partition at window size w (1 <= w <= WMax).
func (h *Hierarchy) Partition(w int) Partition { return h.Levels[w-1] }

// WMax returns the largest analyzed window size.
func (h *Hierarchy) WMax() int { return len(h.Levels) }

// Sequence produces the optimized code sequence: a bottom-up traversal
// of the hierarchy, reading the groups off the top level (each group
// internally preserves the lower levels' order, so strongly affine
// blocks stay adjacent — Figure 1's output B1 B4 B2 B3 B5).
//
// The paper leaves the order of sibling groups unspecified ("simply a
// bottom-up traversal"). Here siblings are ordered by hotness band
// (log2 of the per-block occurrence count, descending) and by first
// occurrence within a band. Banding matters for instruction-cache
// packing: rarely executed groups (cold error paths) sink below all hot
// groups instead of interleaving with them by first-occurrence
// accident, while same-hotness groups keep their temporal (phase)
// order.
func (h *Hierarchy) Sequence() []int32 {
	if len(h.Levels) == 0 {
		return nil
	}
	top := h.Levels[len(h.Levels)-1]
	type ranked struct {
		group []int32
		band  int
		first int
	}
	groups := make([]ranked, len(top.Groups))
	for i, g := range top.Groups {
		var total int64
		for _, s := range g {
			total += h.occCount[s]
		}
		avg := total / int64(len(g))
		band := 0
		for v := avg; v > 0; v >>= 1 {
			band++
		}
		groups[i] = ranked{group: g, band: band, first: h.firstOcc[g[0]]}
	}
	sort.SliceStable(groups, func(a, b int) bool {
		if groups[a].band != groups[b].band {
			return groups[a].band > groups[b].band
		}
		return groups[a].first < groups[b].first
	})
	var seq []int32
	for _, g := range groups {
		seq = append(seq, g.group...)
	}
	return seq
}

// pairKey packs an unordered symbol pair, smaller symbol first.
func pairKey(a, b int32) int64 {
	if a > b {
		a, b = b, a
	}
	return int64(a)<<32 | int64(int32(b))&0xffffffff
}

// BuildHierarchy runs the efficient stack-simulation analysis. For each
// occurrence of a block x, the analysis needs the minimal footprint of a
// window joining the occurrence to some occurrence of each partner y
// (Definition 3 quantifies over every occurrence). Two LRU stack passes
// provide it:
//
//   - forward pass: when x is accessed, a partner y at stack depth d has
//     its last occurrence exactly d distinct blocks back, so the
//     occurrence is covered backward with footprint d;
//   - backward pass over the reversed trace: symmetric, covering the
//     occurrence forward to the next y.
//
// Folding the per-occurrence minima into a per-pair histogram yields,
// for every pair, the smallest w at which all occurrences of both blocks
// are covered — i.e. the level where the pair becomes affine. Total cost
// is O(N·wmax) time, matching the paper's "efficient solution" in §II-B.
func BuildHierarchy(t *trace.Trace, opt Options) *Hierarchy {
	wmax := opt.WMax
	if wmax <= 0 {
		wmax = DefaultWMax
	}
	tt := t.Trimmed()
	h := newHierarchyShell(tt, wmax)
	if len(tt.Syms) == 0 {
		return h
	}
	minW := pairMinWindowsStack(tt, wmax, opt.Workers)
	buildLevels(h, wmax, minW, opt.Workers)
	return h
}

// buildLevels fills hierarchy levels 2..wmax from the per-pair minimal
// affinity windows. The per-level affine pair sets are independent
// projections of minW and are built concurrently; the merge chain itself
// is sequential because level w merges whole groups of level w-1
// (lower-level precedence), but it is cheap next to the stack passes.
func buildLevels(h *Hierarchy, wmax int, minW map[int64]int, workers int) {
	affines := make([]map[int64]bool, wmax+1)
	_ = parallel.ForEach(workers, wmax-1, func(idx int) error {
		w := idx + 2
		affine := make(map[int64]bool, len(minW))
		for k, mw := range minW {
			if mw <= w {
				affine[k] = true
			}
		}
		affines[w] = affine
		return nil
	})
	prev := h.Levels[0]
	for w := 2; w <= wmax; w++ {
		prev = mergeLevel(prev, w, affines[w], h.firstOcc)
		h.Levels[w-1] = prev
	}
}

// minShardSpan is the smallest shard the sharded stack passes accept, in
// multiples of wmax: warm-up replays up to wmax distinct symbols, so a
// shard must cover several times that to amortize the duplicated work.
const minShardSpan = 4

// pairMinWindowsStack computes, for every symbol pair that becomes affine
// at some w <= wmax, that minimal w, using the two stack passes described
// on BuildHierarchy. The trace is split into contiguous shards, one
// independent pair of passes per shard; each shard warms its LRU stack
// by replaying just enough of the neighboring trace that its TopK views
// equal the full-trace simulation, so the per-shard histograms sum to
// exactly the serial result.
func pairMinWindowsStack(tt *trace.Trace, wmax, workers int) map[int64]int {
	n := len(tt.Syms)
	maxSym := tt.MaxSym()
	occCount := tt.Counts()

	chunks := parallel.Chunks(n, parallel.Workers(workers), minShardSpan*wmax)
	hists := make([]map[int64][]uint32, len(chunks))
	_ = parallel.ForEach(workers, len(chunks), func(i int) error {
		hists[i] = shardPairHists(tt.Syms, maxSym, wmax, chunks[i][0], chunks[i][1])
		return nil
	})
	pairs := hists[0]
	for _, m := range hists[1:] {
		for k, counts := range m {
			if dst := pairs[k]; dst != nil {
				for d, c := range counts {
					dst[d] += c
				}
			} else {
				pairs[k] = counts
			}
		}
	}

	minW := make(map[int64]int, len(pairs))
	for key, counts := range pairs {
		x := int32(key >> 32)
		y := int32(key & 0xffffffff)
		wx := fullCoverageW(counts[:wmax+1], occCount[x])
		wy := fullCoverageW(counts[wmax+1:], occCount[y])
		if wx < 0 || wy < 0 {
			continue // some occurrence is never covered within wmax
		}
		minW[key] = max(wx, wy)
	}
	return minW
}

// shardPairHists runs the two stack passes over positions [lo, hi) and
// returns the shard's per-pair coverage histograms:
// counts[dir*(wmax+1)+d] counts occurrences of the dir-side symbol whose
// minimal coverage footprint is d.
func shardPairHists(syms []int32, maxSym int32, wmax, lo, hi int) map[int64][]uint32 {
	// Pass 1 (forward): record for each position the partners within the
	// top wmax of the LRU stack and their depths (backward coverage).
	// The warm-up replays the span holding the last wmax distinct
	// symbols before lo, which fully determines the stack's top wmax.
	partnerSym := make([]int32, 0, (hi-lo)*2)
	partnerDepth := make([]uint8, 0, (hi-lo)*2)
	offsets := make([]int32, hi-lo+1)
	{
		stack := stackdist.NewLRUStack(maxSym)
		for i := warmBefore(syms, lo, wmax); i < lo; i++ {
			stack.Access(syms[i])
		}
		for i := lo; i < hi; i++ {
			stack.Access(syms[i])
			offsets[i-lo] = int32(len(partnerSym))
			depth := 0
			stack.TopK(wmax, func(x int32) bool {
				depth++
				if depth == 1 {
					return true
				}
				partnerSym = append(partnerSym, x)
				partnerDepth = append(partnerDepth, uint8(depth))
				return true
			})
		}
		offsets[hi-lo] = int32(len(partnerSym))
	}

	// Pass 2 (backward, over the reversed trace): merge forward coverage
	// with pass 1's backward coverage per occurrence, and fold minima
	// into the per-pair histograms. The warm-up replays, in reverse
	// order, the span holding the first wmax distinct symbols at or
	// after hi.
	pairs := make(map[int64][]uint32)

	// scratch holds the merged (partner, minDepth) set of one occurrence.
	scratchSym := make([]int32, 0, 2*wmax)
	scratchDepth := make([]uint8, 0, 2*wmax)
	addScratch := func(sym int32, d uint8) {
		for k, s := range scratchSym {
			if s == sym {
				if d < scratchDepth[k] {
					scratchDepth[k] = d
				}
				return
			}
		}
		scratchSym = append(scratchSym, sym)
		scratchDepth = append(scratchDepth, d)
	}

	stack := stackdist.NewLRUStack(maxSym)
	for i := warmAfter(syms, hi, wmax) - 1; i >= hi; i-- {
		stack.Access(syms[i])
	}
	for i := hi - 1; i >= lo; i-- {
		cur := syms[i]
		stack.Access(cur)
		scratchSym = scratchSym[:0]
		scratchDepth = scratchDepth[:0]
		for k := offsets[i-lo]; k < offsets[i-lo+1]; k++ {
			addScratch(partnerSym[k], partnerDepth[k])
		}
		depth := 0
		stack.TopK(wmax, func(x int32) bool {
			depth++
			if depth == 1 {
				return true
			}
			addScratch(x, uint8(depth))
			return true
		})
		for k, y := range scratchSym {
			key := pairKey(cur, y)
			counts := pairs[key]
			if counts == nil {
				counts = make([]uint32, 2*(wmax+1))
				pairs[key] = counts
			}
			dir := 0
			if cur > y {
				dir = 1
			}
			counts[dir*(wmax+1)+int(scratchDepth[k])]++
		}
	}
	return pairs
}

// warmBefore returns the largest p <= lo such that syms[p:lo] contains
// need distinct symbols (or 0 if the prefix holds fewer). Replaying
// syms[p:lo] into an empty LRU stack reproduces the full simulation's
// top-need stack prefix at position lo: the need most recent distinct
// symbols all have their last pre-lo occurrence in [p, lo), and their
// relative recency order is preserved.
func warmBefore(syms []int32, lo, need int) int {
	seen := make(map[int32]struct{}, need)
	p := lo
	for p > 0 && len(seen) < need {
		p--
		seen[syms[p]] = struct{}{}
	}
	return p
}

// warmAfter is warmBefore on the reversed trace: the smallest q >= hi
// such that syms[hi:q] contains need distinct symbols (or len(syms) if
// the suffix holds fewer).
func warmAfter(syms []int32, hi, need int) int {
	seen := make(map[int32]struct{}, need)
	q := hi
	for q < len(syms) && len(seen) < need {
		seen[syms[q]] = struct{}{}
		q++
	}
	return q
}

// fullCoverageW returns the smallest w such that the cumulative count of
// occurrences with minimal footprint <= w reaches total, or -1 if the
// histogram never reaches total.
func fullCoverageW(counts []uint32, total int64) int {
	var cum int64
	for d := 0; d < len(counts); d++ {
		cum += int64(counts[d])
		if cum == total {
			return d
		}
	}
	return -1
}

// newHierarchyShell prepares the hierarchy with the w=1 partition
// (every block its own group, per Definition 5) and first-occurrence
// ordering.
func newHierarchyShell(tt *trace.Trace, wmax int) *Hierarchy {
	firstOcc := make(map[int32]int)
	occCount := make(map[int32]int64)
	for i, s := range tt.Syms {
		if _, ok := firstOcc[s]; !ok {
			firstOcc[s] = i
		}
		occCount[s]++
	}
	syms := make([]int32, 0, len(firstOcc))
	for s := range firstOcc {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return firstOcc[syms[i]] < firstOcc[syms[j]] })

	h := &Hierarchy{Levels: make([]Partition, wmax), firstOcc: firstOcc, occCount: occCount}
	base := Partition{W: 1, Groups: make([][]int32, len(syms))}
	for i, s := range syms {
		base.Groups[i] = []int32{s}
	}
	h.Levels[0] = base
	for w := 2; w <= wmax; w++ {
		h.Levels[w-1] = base // overwritten by the builder; harmless default
	}
	return h
}

// mergeLevel forms the partition at window w by greedily merging the
// previous level's groups (Algorithm 1 with lower-level precedence):
// units are considered in first-occurrence order; a unit joins the first
// existing group with which *every* cross pair of blocks is affine at
// w, otherwise it starts a new group.
func mergeLevel(prev Partition, w int, affine map[int64]bool, firstOcc map[int32]int) Partition {
	type group struct {
		members []int32
	}
	var groups []*group
	for _, unit := range prev.Groups {
		placed := false
		for _, g := range groups {
			if unitCompatible(unit, g.members, affine) {
				g.members = append(g.members, unit...)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, &group{members: append([]int32(nil), unit...)})
		}
	}
	// Units joined a group in first-occurrence order and stay contiguous
	// inside it, so lower-level groups remain adjacent in the sequence
	// (the bottom-up traversal property). Groups were also created in
	// first-occurrence order of their first unit, so no re-sorting is
	// needed — and none is allowed, since sorting members would tear
	// units apart.
	out := Partition{W: w, Groups: make([][]int32, len(groups))}
	for i, g := range groups {
		out.Groups[i] = g.members
	}
	sort.SliceStable(out.Groups, func(a, b int) bool {
		return firstOcc[out.Groups[a][0]] < firstOcc[out.Groups[b][0]]
	})
	return out
}

func unitCompatible(unit, members []int32, affine map[int64]bool) bool {
	for _, a := range unit {
		for _, b := range members {
			if !affine[pairKey(a, b)] {
				return false
			}
		}
	}
	return true
}
