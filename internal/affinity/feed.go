package affinity

import (
	"context"
	"sync"

	"codelayout/internal/obs"
	"codelayout/internal/parallel"
)

// defaultFeedShardSpan is the streamed shard span when Options leaves it
// unset: large enough that the warm-up replay (up to wmax distinct
// symbols on each side) is noise against the shard body.
const defaultFeedShardSpan = 1 << 16

// Feeder runs the stack-simulation analysis incrementally, over a trace
// that arrives in chunks — layoutd feeding decoded upload chunks into
// the kernel while the rest of the trace is still on the network. It
// produces a Hierarchy byte-identical to BuildHierarchyCtx over the
// concatenated input: the per-shard coverage histograms sum exactly for
// ANY contiguous sharding (the PR 1 determinism invariant), so shards
// cut at arrival-dictated boundaries merge to the same minimal-window
// table the buffered build computes.
//
// The feeder keeps a single slab: the undispatched body plus just
// enough preceding context for the next shard's warm-up replay. When
// the body reaches the shard span, the cut position is remembered and
// the shard is dispatched as soon as wmax distinct symbols have arrived
// past it (the forward warm-up the backward pass needs); the slab then
// shrinks to warmBefore(cut) onward. In-flight memory is therefore
// bounded by the shard span, the warm spans, and the FeedPool's
// 2×workers in-flight cap — not by the trace length. On low-diversity
// tails (fewer than wmax distinct symbols ever arriving after a cut)
// the pending shard is held until Finish, degrading memory to the tail
// length but never correctness.
//
// A Feeder is not safe for concurrent use; call Feed from one
// goroutine, then exactly one of Finish or Abort.
type Feeder struct {
	wmax        int
	shardTarget int
	arena       *Arena
	pool        *parallel.FeedPool

	slab []int32 // warm context [0,body) + undispatched body [body,len)
	body int

	prev     int32 // last accepted symbol, for cross-chunk trimming
	n        int   // trimmed occurrences accepted so far
	maxSym   int32
	firstOcc []int32
	occCount []int64
	order    []int32 // symbols in first-occurrence order

	// seen is the epoch-stamped distinct-symbol scratch shared by the
	// pending-cut wait counter and the warm-start scan (never both live).
	seen      []int64
	seenEpoch int64
	pendingHi int // local cut index awaiting wmax distinct arrivals; -1 none
	distinct  int

	states   []*shardState // dispatched shards, in trace order
	slabPool sync.Pool     // *[]int32
	err      error
}

// NewFeeder prepares a streaming build bound to ctx. opt is interpreted
// exactly as by BuildHierarchyCtx; Workers additionally sizes the
// analysis pool the shards are dispatched to (1 analyzes inline on the
// feeding goroutine — the serial reference path).
func NewFeeder(ctx context.Context, opt Options) *Feeder {
	wmax := opt.WMax
	if wmax <= 0 {
		wmax = DefaultWMax
	}
	target := opt.FeedShardSpan
	if target <= 0 {
		target = defaultFeedShardSpan
	}
	if target < minShardSpan*wmax {
		target = minShardSpan * wmax
	}
	return &Feeder{
		wmax:        wmax,
		shardTarget: target,
		arena:       opt.Arena,
		pool:        parallel.NewFeedPool(ctx, opt.Workers),
		prev:        -1,
		pendingHi:   -1,
	}
}

// grow sizes the dense per-symbol tables for symbol s.
func (f *Feeder) grow(s int32) {
	if int(s) < len(f.firstOcc) {
		return
	}
	n := int(s) + 1
	if c := 2 * len(f.firstOcc); n < c {
		n = c
	}
	firstOcc := make([]int32, n)
	copy(firstOcc, f.firstOcc)
	for i := len(f.firstOcc); i < n; i++ {
		firstOcc[i] = -1
	}
	f.firstOcc = firstOcc
	occCount := make([]int64, n)
	copy(occCount, f.occCount)
	f.occCount = occCount
	seen := make([]int64, n)
	copy(seen, f.seen)
	f.seen = seen
}

// Feed appends one chunk of the trace. Chunk boundaries are irrelevant:
// feeding any split of a trace yields the same hierarchy. A non-nil
// error means a dispatched shard failed (ctx canceled); the caller
// should stop feeding and call Abort.
func (f *Feeder) Feed(chunk []int32) error {
	if f.err != nil {
		return f.err
	}
	for _, s := range chunk {
		if s == f.prev {
			continue // trimming, as BuildHierarchyCtx does up front
		}
		f.prev = s
		f.grow(s)
		if s > f.maxSym {
			f.maxSym = s
		}
		if f.firstOcc[s] < 0 {
			f.firstOcc[s] = int32(f.n)
			f.order = append(f.order, s)
		}
		f.occCount[s]++
		f.n++
		f.slab = append(f.slab, s)
		if f.pendingHi >= 0 {
			// A cut is waiting for its forward warm span: wmax distinct
			// symbols past the cut pin down the backward pass's stack.
			if f.seen[s] != f.seenEpoch {
				f.seen[s] = f.seenEpoch
				f.distinct++
				if f.distinct >= f.wmax {
					if err := f.dispatch(f.pendingHi); err != nil {
						f.err = err
						return err
					}
				}
			}
		} else if len(f.slab)-f.body >= f.shardTarget {
			f.seenEpoch++
			f.distinct = 0
			f.pendingHi = len(f.slab)
		}
	}
	return nil
}

// N returns the number of trimmed occurrences accepted so far — the
// trace length the analysis sees, matching Trimmed().Len() of the
// buffered path.
func (f *Feeder) N() int { return f.n }

// warmStart is warmBefore over the slab using the feeder's stamps: the
// largest p such that slab[p:hi] holds wmax distinct symbols, or 0. The
// slab-start invariant (each slab begins at a warmBefore cut or at the
// trace start) makes the slab-local scan agree with the full-trace one.
func (f *Feeder) warmStart(hi int) int {
	f.seenEpoch++
	count, p := 0, hi
	for p > 0 && count < f.wmax {
		p--
		s := f.slab[p]
		if f.seen[s] != f.seenEpoch {
			f.seen[s] = f.seenEpoch
			count++
		}
	}
	return p
}

func (f *Feeder) getSlab(capHint int) []int32 {
	if v := f.slabPool.Get(); v != nil {
		return (*v.(*[]int32))[:0]
	}
	return make([]int32, 0, capHint)
}

func (f *Feeder) putSlab(s []int32) {
	f.slabPool.Put(&s)
}

// dispatch freezes the current slab, hands shard [f.body, hi) to the
// pool, and starts a fresh slab at the shard's own warm-up boundary so
// the next shard warms up exactly as the full-trace simulation would.
func (f *Feeder) dispatch(hi int) error {
	lo, p := f.body, f.warmStart(hi)
	slab, maxSym, wmax := f.slab, f.maxSym, f.wmax
	next := append(f.getSlab(f.shardTarget+2*f.wmax), slab[p:]...)
	st := f.arena.getShard()
	f.states = append(f.states, st)
	err := f.pool.Submit(func(ctx context.Context) error {
		err := shardPairHists(ctx, st, slab, maxSym, wmax, lo, hi)
		f.putSlab(slab)
		return err
	})
	f.slab = next
	f.body = hi - p
	f.pendingHi = -1
	return err
}

// Finish seals the stream: the remaining body becomes the last shard
// (its backward warm-up span ends at the true trace end, like the last
// buffered chunk's), every shard's histograms merge in trace order, and
// the hierarchy is built exactly as BuildHierarchyCtx builds it.
func (f *Feeder) Finish(ctx context.Context) (*Hierarchy, error) {
	sp := obs.StartSpan(ctx, "affinity.hierarchy")
	defer sp.End()
	sp.SetAttr("trace_len", int64(f.n))
	sp.SetAttr("wmax", int64(f.wmax))
	if f.err == nil && f.body < len(f.slab) {
		f.dispatchFinal()
	}
	if err := f.pool.Wait(); err != nil {
		f.release()
		return nil, err
	}
	if err := f.err; err != nil {
		f.release()
		return nil, err
	}
	h := newHierarchyShellFrom(f.firstOcc, f.occCount, f.order, f.wmax)
	if len(f.states) == 0 {
		return h, nil // empty trace: the shell is the whole answer
	}
	pairs := &f.states[0].pairs
	for _, st := range f.states[1:] {
		pairs.MergeFrom(&st.pairs)
	}
	minW := reduceMinW(pairs, f.occCount, f.wmax, f.arena)
	buildLevels(h, f.wmax, minW)
	f.arena.putMinW(minW)
	f.release()
	return h, nil
}

func (f *Feeder) dispatchFinal() {
	lo, hi := f.body, len(f.slab)
	slab, maxSym, wmax := f.slab, f.maxSym, f.wmax
	st := f.arena.getShard()
	f.states = append(f.states, st)
	if err := f.pool.Submit(func(ctx context.Context) error {
		err := shardPairHists(ctx, st, slab, maxSym, wmax, lo, hi)
		f.putSlab(slab)
		return err
	}); err != nil && f.err == nil {
		f.err = err
	}
	f.slab = nil
}

// Abort discards the stream: it drains in-flight shards and recycles
// their buffers. Call it instead of Finish when the job is canceled.
func (f *Feeder) Abort() {
	_ = f.pool.Wait()
	f.release()
}

func (f *Feeder) release() {
	for _, st := range f.states {
		f.arena.putShard(st)
	}
	f.states = nil
	f.slab = nil
}
