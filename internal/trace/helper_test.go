package trace

import (
	"testing"

	"codelayout/internal/ir"
)

// buildTwoFuncProg builds a minimal two-function program whose block IDs
// are 0,1 (main) and 2,3 (F), used by FuncTrace tests.
func buildTwoFuncProg(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("two", 0)
	main := b.Func("main")
	f := b.Func("F")
	m0 := main.Block("m0", 8)
	m1 := main.Block("m1", 8)
	f0 := f.Block("f0", 8)
	f1 := f.Block("f1", 8)
	m0.Call(f, m1)
	m1.Exit()
	f0.Jump(f1)
	f1.Return()
	return b.MustBuild()
}
