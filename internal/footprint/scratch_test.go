package footprint

import (
	"math/rand"
	"testing"
)

// mapWindowFootprint is the pre-optimization reference implementation
// (per-call map), kept in the tests as the oracle for Scratch and as the
// baseline of the micro-benchmark.
func mapWindowFootprint(syms []int32, i, j int, weights []int32) int64 {
	if i > j {
		i, j = j, i
	}
	seen := make(map[int32]struct{})
	var total int64
	for k := i; k <= j; k++ {
		s := syms[k]
		if _, ok := seen[s]; ok {
			continue
		}
		seen[s] = struct{}{}
		if weights != nil {
			total += int64(weights[s])
		} else {
			total++
		}
	}
	return total
}

func TestScratchMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	syms := make([]int32, 500)
	for i := range syms {
		syms[i] = int32(rng.Intn(40))
	}
	weights := make([]int32, 40)
	for i := range weights {
		weights[i] = int32(1 + rng.Intn(100))
	}
	var sc Scratch // reused across all queries: epochs must isolate them
	for trial := 0; trial < 300; trial++ {
		i := rng.Intn(len(syms))
		j := rng.Intn(len(syms))
		var ws []int32
		if trial%2 == 0 {
			ws = weights
		}
		want := mapWindowFootprint(syms, i, j, ws)
		if got := sc.WindowFootprint(syms, i, j, ws); got != want {
			t.Fatalf("trial %d [%d,%d] weighted=%v: got %d, want %d", trial, i, j, ws != nil, got, want)
		}
		if got := WindowFootprint(syms, i, j, ws); got != want {
			t.Fatalf("trial %d [%d,%d]: free function got %d, want %d", trial, i, j, got, want)
		}
	}
}

func TestScratchEpochWrap(t *testing.T) {
	syms := []int32{0, 1, 2, 1, 0}
	sc := Scratch{epoch: 1<<31 - 2} // two calls from wrapping
	for call := 0; call < 5; call++ {
		if got := sc.WindowFootprint(syms, 0, 4, nil); got != 3 {
			t.Fatalf("call %d across epoch wrap: got %d, want 3", call, got)
		}
	}
}

func TestScratchGrowsForLargeSymbols(t *testing.T) {
	var sc Scratch
	syms := []int32{100000, 5, 100000}
	if got := sc.WindowFootprint(syms, 0, 2, nil); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
}

func TestNewCurveWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 997, 20000} {
		syms := make([]int32, n)
		for i := range syms {
			syms[i] = int32(rng.Intn(50))
		}
		weights := make([]int32, 50)
		for i := range weights {
			weights[i] = int32(1 + rng.Intn(64))
		}
		for _, ws := range [][]int32{nil, weights} {
			serial := NewCurveWorkers(syms, ws, 1)
			for _, workers := range []int{2, 3, 8} {
				par := NewCurveWorkers(syms, ws, workers)
				if par.Total != serial.Total || par.N != serial.N {
					t.Fatalf("n=%d workers=%d: header differs", n, workers)
				}
				for w := range serial.FP {
					if par.FP[w] != serial.FP[w] {
						t.Fatalf("n=%d workers=%d: FP[%d]=%v != serial %v", n, workers, w, par.FP[w], serial.FP[w])
					}
				}
			}
		}
	}
}

// benchWindow draws the micro-benchmark workload: a phased trace and a
// mid-sized window, the shape the naive affinity validation queries.
func benchWindow() ([]int32, int, int) {
	rng := rand.New(rand.NewSource(7))
	syms := make([]int32, 4096)
	for i := range syms {
		syms[i] = int32((i/256)%8*32 + rng.Intn(32))
	}
	return syms, 1000, 1400
}

// BenchmarkWindowFootprintScratch vs BenchmarkWindowFootprintMap is the
// ISSUE's micro-benchmark: the epoch-stamped scratch buffer removes the
// per-call map allocation from the hot path.
func BenchmarkWindowFootprintScratch(b *testing.B) {
	syms, i, j := benchWindow()
	var sc Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		sc.WindowFootprint(syms, i, j, nil)
	}
}

func BenchmarkWindowFootprintMap(b *testing.B) {
	syms, i, j := benchWindow()
	b.ReportAllocs()
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		mapWindowFootprint(syms, i, j, nil)
	}
}

func BenchmarkCurveWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	syms := make([]int32, 200000)
	for i := range syms {
		syms[i] = int32(rng.Intn(4000))
	}
	for _, workers := range []int{1, 8} {
		b.Run(map[bool]string{true: "serial", false: "workers=8"}[workers == 1], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				NewCurveWorkers(syms, nil, workers)
			}
		})
	}
}
